open Testlib

let refine_tests =
  [
    case "refine-never-worsens-cost" (fun () ->
        List.iter
          (fun loop ->
            let rcg = Rcg.Build.of_loop ~machine:ideal16 loop in
            let base = Partition.Greedy.partition ~banks:4 rcg in
            let rec_mii = Ddg.Minii.rec_mii (Ddg.Graph.of_loop loop) in
            let cost a =
              Partition.Refine.cost ~machine:m4x4e ~loop ~rec_mii ~copy_weight:0.05 a
            in
            let refined, moves =
              Partition.Refine.refine ~machine:m4x4e ~loop ~rcg base
            in
            check Alcotest.bool (Ir.Loop.name loop) true (cost refined <= cost base);
            check Alcotest.bool "moves >= 0" true (moves >= 0))
          (sample_loops ~n:16 ()));
    case "refine-keeps-assignment-total" (fun () ->
        let loop = Workload.Kernels.cmul ~unroll:4 in
        let rcg = Rcg.Build.of_loop ~machine:ideal16 loop in
        let base = Partition.Greedy.partition ~banks:4 rcg in
        let refined, _ = Partition.Refine.refine ~machine:m4x4e ~loop ~rcg base in
        check Alcotest.bool "in range" true (Partition.Assign.all_in_range ~banks:4 refined);
        check Alcotest.int "same domain" (Ir.Vreg.Map.cardinal base)
          (Ir.Vreg.Map.cardinal refined));
    case "refine-monolithic-is-identity" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let rcg = Rcg.Build.of_loop ~machine:ideal16 loop in
        let base = Partition.Greedy.partition ~banks:1 rcg in
        let refined, moves = Partition.Refine.refine ~machine:ideal16 ~loop ~rcg base in
        check Alcotest.int "no moves" 0 moves;
        check Alcotest.bool "unchanged" true (Ir.Vreg.Map.equal ( = ) base refined));
    case "refine-respects-pins" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let rcg = Rcg.Build.of_loop ~machine:ideal16 loop in
        let pinned_reg = List.hd (Rcg.Graph.by_weight_desc rcg) in
        Rcg.Graph.pin rcg pinned_reg 3;
        let base = Partition.Greedy.partition ~banks:4 rcg in
        let refined, _ = Partition.Refine.refine ~machine:m4x4e ~loop ~rcg base in
        check Alcotest.int "still pinned" 3 (Partition.Assign.bank refined pinned_reg));
    case "refined-partitioner-pipeline-not-worse-on-average" (fun () ->
        let loops = sample_loops ~n:12 () in
        let deg partitioner =
          Util.Stats.mean
            (List.filter_map
               (fun loop ->
                 match Partition.Driver.pipeline ~partitioner ~machine:m4x4e loop with
                 | Ok r -> Some r.Partition.Driver.degradation
                 | Error _ -> None)
               loops)
        in
        let base = deg (Partition.Driver.Greedy Rcg.Weights.default) in
        let refined = deg (Partition.Refine.partitioner Rcg.Weights.default) in
        (* the cost model is a proxy, so allow a small regression margin *)
        check Alcotest.bool
          (Printf.sprintf "refined %.1f <= base %.1f + 5" refined base)
          true
          (refined <= base +. 5.0));
  ]

let tune_tests =
  [
    case "evaluate-default-weights" (fun () ->
        let loops = sample_loops ~n:6 () in
        let s = Core.Tune.evaluate ~machine:m4x4e ~loops Rcg.Weights.default in
        check Alcotest.bool "sane range" true (s >= 100.0 && s < 300.0));
    case "random-search-never-worse-than-default" (fun () ->
        let loops = sample_loops ~n:6 () in
        let r = Core.Tune.random_search ~budget:6 ~machine:m4x4e ~loops () in
        let default_score = Core.Tune.evaluate ~machine:m4x4e ~loops Rcg.Weights.default in
        check Alcotest.bool "<= default" true (r.Core.Tune.score <= default_score +. 1e-9);
        check Alcotest.int "budget respected" 6 r.Core.Tune.evaluations);
    case "hill-climb-monotone-trace" (fun () ->
        let loops = sample_loops ~n:6 () in
        let r = Core.Tune.hill_climb ~budget:8 ~machine:m4x4e ~loops () in
        let rec monotone = function
          | (_, a) :: ((_, b) :: _ as rest) -> a >= b && monotone rest
          | [ _ ] | [] -> true
        in
        check Alcotest.bool "monotone" true (monotone r.Core.Tune.trace);
        check Alcotest.bool "trace nonempty" true (r.Core.Tune.trace <> []));
    case "deterministic-under-seed" (fun () ->
        let loops = sample_loops ~n:4 () in
        let a = Core.Tune.random_search ~budget:5 ~seed:3 ~machine:m4x4e ~loops () in
        let b = Core.Tune.random_search ~budget:5 ~seed:3 ~machine:m4x4e ~loops () in
        check (Alcotest.float 1e-12) "same score" a.Core.Tune.score b.Core.Tune.score);
  ]

let func_tests =
  [
    case "funcgen-well-formed" (fun () ->
        List.iter
          (fun fn ->
            check Alcotest.bool (Ir.Func.name fn) true (Ir.Func.size fn > 0);
            (* every edge endpoint exists — Func.make already validates;
               entry block must be first *)
            check Alcotest.string "entry first" "entry"
              (Ir.Block.label (Ir.Func.entry fn)))
          (Workload.Funcgen.suite ~n:12 ()));
    case "funcgen-deterministic" (fun () ->
        let a = Workload.Funcgen.generate ~index:4 () in
        let b = Workload.Funcgen.generate ~index:4 () in
        check Alcotest.int "same size" (Ir.Func.size a) (Ir.Func.size b));
    case "func-pipeline-monolithic-100" (fun () ->
        let fn = Workload.Funcgen.generate ~index:0 () in
        match Partition.Func_driver.pipeline ~machine:ideal16 fn with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check (Alcotest.float 1e-9) "100" 100.0 r.Partition.Func_driver.degradation;
            check Alcotest.int "no copies" 0 r.Partition.Func_driver.n_copies);
    case "func-pipeline-clustered" (fun () ->
        List.iter
          (fun fn ->
            match Partition.Func_driver.pipeline ~machine:m4x4e fn with
            | Error e -> Alcotest.failf "%s: %s" (Ir.Func.name fn) (Verify.Stage_error.to_string e)
            | Ok r ->
                check Alcotest.bool "degradation >= 100" true
                  (r.Partition.Func_driver.degradation >= 100.0 -. 1e-9);
                (* weighted cycles positive *)
                check Alcotest.bool "cycles > 0" true (r.Partition.Func_driver.ideal_cycles > 0.0))
          (Workload.Funcgen.suite ~n:10 ()));
    case "func-pipeline-semantics" (fun () ->
        (* executing the rewritten function block by block must equal the
           original (blocks are straight-line; CFG here is a chain) *)
        let fn = Workload.Funcgen.generate ~index:2 () in
        match Partition.Func_driver.pipeline ~machine:m4x4e fn with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            let run f =
              let st = Ir.Eval.create () in
              List.iter (fun blk -> Ir.Eval.run_ops st (Ir.Block.ops blk)) (Ir.Func.blocks f);
              st
            in
            let sa = run fn and sb = run r.Partition.Func_driver.rewritten in
            check Alcotest.bool "memory equal" true (mem_equal sa sb));
    case "func-whole-program-band" (fun () ->
        (* [16] reports ~11% on 4 banks for whole programs; accept a broad
           band around it for the synthetic functions *)
        let fns = Workload.Funcgen.suite ~n:20 () in
        let degs =
          List.filter_map
            (fun fn ->
              match Partition.Func_driver.pipeline ~machine:m4x4e fn with
              | Ok r -> Some r.Partition.Func_driver.degradation
              | Error _ -> None)
            fns
        in
        let mean = Util.Stats.mean degs in
        check Alcotest.bool (Printf.sprintf "100 <= %.1f <= 140" mean) true
          (mean >= 100.0 && mean <= 140.0));
  ]

let superblock_tests =
  [
    case "merges-linear-same-depth-chain" (fun () ->
        let f = Mach.Rclass.Float in
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        Ir.Builder.start_block b "mid";
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
        Ir.Builder.start_block b "end";
        Ir.Builder.store b f (Ir.Addr.scalar "o") y;
        let fn = Ir.Builder.func b ~name:"chain" ~edges:[ ("entry", "mid"); ("mid", "end") ] in
        check Alcotest.int "2 seams" 2 (Ir.Superblock.chain_count fn);
        let merged = Ir.Superblock.merge_chains fn in
        check Alcotest.int "1 block" 1 (List.length (Ir.Func.blocks merged));
        check Alcotest.int "0 seams" 0 (Ir.Superblock.chain_count merged);
        check Alcotest.int "ops preserved" (Ir.Func.size fn) (Ir.Func.size merged);
        (* semantics unchanged *)
        let run f =
          let st = Ir.Eval.create () in
          List.iter (fun blk -> Ir.Eval.run_ops st (Ir.Block.ops blk)) (Ir.Func.blocks f);
          st
        in
        check Alcotest.bool "memory equal" true (mem_equal (run fn) (run merged)));
    case "depth-mismatch-not-merged" (fun () ->
        let f = Mach.Rclass.Float in
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        Ir.Builder.start_block ~depth:1 b "loopy";
        Ir.Builder.store b f (Ir.Addr.scalar "o") x;
        let fn = Ir.Builder.func b ~name:"t" ~edges:[ ("entry", "loopy") ] in
        let merged = Ir.Superblock.merge_chains fn in
        check Alcotest.int "still 2 blocks" 2 (List.length (Ir.Func.blocks merged)));
    case "branchy-cfg-untouched" (fun () ->
        let f = Mach.Rclass.Float in
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        Ir.Builder.start_block b "then";
        Ir.Builder.store b f (Ir.Addr.scalar "a") x;
        Ir.Builder.start_block b "else";
        Ir.Builder.store b f (Ir.Addr.scalar "c") x;
        let fn =
          Ir.Builder.func b ~name:"t" ~edges:[ ("entry", "then"); ("entry", "else") ]
        in
        check Alcotest.int "3 blocks stay" 3
          (List.length (Ir.Func.blocks (Ir.Superblock.merge_chains fn))));
    case "merging-never-lengthens-schedules" (fun () ->
        List.iter
          (fun fn ->
            let merged = Ir.Superblock.merge_chains fn in
            let cycles f =
              match Partition.Func_driver.pipeline ~machine:ideal16 f with
              | Ok r -> r.Partition.Func_driver.ideal_cycles
              | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
            in
            check Alcotest.bool (Ir.Func.name fn) true (cycles merged <= cycles fn))
          (Workload.Funcgen.suite ~n:10 ()));
  ]

let suite =
  [
    ("ext.superblock", superblock_tests);
    ("ext.refine", refine_tests);
    ("ext.tune", tune_tests);
    ("ext.funcdriver", func_tests);
  ]
