open Testlib

(* The resilient driver (lib/robust): one crafted test per ladder rung,
   fault-injection behaviour per fault, and the deterministic stress
   harness with the Verify analyzers as oracle. *)

let cfg = Robust.Driver.default_config

let run ?config ?hooks ~machine loop = Robust.Driver.run ?config ?hooks ~machine loop

let expect_ok label = function
  | Ok r -> r
  | Error e -> Alcotest.failf "%s: %s" label (Verify.Stage_error.to_string e)

let expect_error label = function
  | Ok (r : Robust.Driver.result) ->
      Alcotest.failf "%s: unexpectedly succeeded on rung %s" label
        (Robust.Driver.rung_name r.Robust.Driver.rung)
  | Error e -> e

let no_error_diags r =
  List.for_all
    (fun d -> d.Verify.Diag.severity <> Verify.Diag.Error)
    (Robust.Driver.verify_diags r)

(* hydro-u2 on a 2-cluster machine with 4-register banks spills but
   still pipelines (established empirically; pinned by the test). *)
let tight2 =
  Mach.Machine.make ~name:"tight2" ~regs_per_bank:4 ~clusters:2 ~fus_per_cluster:8
    ~copy_model:Mach.Machine.Embedded ()

let ladder_tests =
  [
    case "clean-input-uses-first-rung" (fun () ->
        let r = expect_ok "daxpy" (run ~machine:m4x4e (Workload.Kernels.daxpy ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Pipelined { partitioner; budget_ratio; respilled } ->
            check Alcotest.string "partitioner" "greedy" partitioner;
            check Alcotest.int "budget" (List.hd cfg.Robust.Driver.budget_schedule) budget_ratio;
            check Alcotest.bool "no respill" false respilled
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.int "no failed attempts" 0 (List.length r.Robust.Driver.attempts);
        check Alcotest.bool "alloc present" true (r.Robust.Driver.alloc <> None);
        check Alcotest.bool "verifies" true (no_error_diags r));
    case "budget-escalation-recovers" (fun () ->
        (* budget_ratio 0 gives the scheduler no placement budget, so the
           first rung must fail and the ladder escalate to budget 10. *)
        let config = { cfg with Robust.Driver.budget_schedule = [ 0; 10 ] } in
        let r = expect_ok "daxpy" (run ~config ~machine:m4x4e (Workload.Kernels.daxpy ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Pipelined { budget_ratio; _ } ->
            check Alcotest.int "escalated budget" 10 budget_ratio
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.bool "attempt log mentions the exhausted budget" true
          (List.exists
             (fun (a : Verify.Stage_error.attempt) -> contains a.Verify.Stage_error.rung "budget=0")
             r.Robust.Driver.attempts));
    case "partitioner-fallback-on-bad-custom" (fun () ->
        (* A partitioner emitting out-of-range banks is rejected (PT002)
           and the chain falls through to greedy. *)
        let bad = Partition.Driver.Custom (fun _ ddg _ ->
            let regs =
              List.fold_left
                (fun acc op ->
                  List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc
                    (Ir.Op.defs op @ Ir.Op.uses op))
                Ir.Vreg.Set.empty (Ddg.Graph.ops_in_order ddg)
            in
            Partition.Assign.of_list (List.map (fun r -> (r, 99)) (Ir.Vreg.Set.elements regs)))
        in
        let config =
          { cfg with Robust.Driver.partitioners =
              [ ("bad", bad); ("greedy", Partition.Driver.Greedy Rcg.Weights.default) ] }
        in
        let r = expect_ok "dot" (run ~config ~machine:m4x4e (Workload.Kernels.dot ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Pipelined { partitioner; _ } ->
            check Alcotest.string "fell through to greedy" "greedy" partitioner
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.bool "PT002 logged" true
          (List.exists
             (fun (a : Verify.Stage_error.attempt) -> a.Verify.Stage_error.at_code = "PT002")
             r.Robust.Driver.attempts));
    case "raising-partitioner-is-contained" (fun () ->
        let bomb = Partition.Driver.Custom (fun _ _ _ -> invalid_arg "partitioner bomb") in
        let config =
          { cfg with Robust.Driver.partitioners =
              [ ("bomb", bomb); ("greedy", Partition.Driver.Greedy Rcg.Weights.default) ] }
        in
        let r = expect_ok "dot" (run ~config ~machine:m4x4e (Workload.Kernels.dot ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Pipelined { partitioner; _ } ->
            check Alcotest.string "fell through to greedy" "greedy" partitioner
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.bool "bomb logged as attempt" true
          (List.exists
             (fun (a : Verify.Stage_error.attempt) ->
               contains a.Verify.Stage_error.detail "partitioner bomb")
             r.Robust.Driver.attempts));
    case "spill-and-reschedule-rung" (fun () ->
        let r = expect_ok "hydro" (run ~machine:tight2 (Workload.Kernels.hydro ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Pipelined { respilled; _ } ->
            check Alcotest.bool "respilled" true respilled
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.bool "spills counted" true (r.Robust.Driver.spill_count > 0);
        check Alcotest.bool "verifies after respill" true (no_error_diags r));
    case "single-bank-merge-rung" (fun () ->
        (* no pipelined partitioners at all -> the merge rung carries it *)
        let config = { cfg with Robust.Driver.partitioners = [] } in
        let r = expect_ok "daxpy" (run ~config ~machine:m4x4e (Workload.Kernels.daxpy ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Single_bank _ -> ()
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.int "merge needs no copies" 0 r.Robust.Driver.n_copies;
        check Alcotest.bool "verifies" true (no_error_diags r));
    case "non-pipelined-surrender-rung" (fun () ->
        (* zero budget everywhere kills every modulo rung; the flat
           list-scheduled surrender must still produce verified code *)
        let config = { cfg with Robust.Driver.budget_schedule = [ 0 ] } in
        let r = expect_ok "daxpy" (run ~config ~machine:m4x4e (Workload.Kernels.daxpy ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Non_pipelined -> ()
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        (match r.Robust.Driver.code with
        | Robust.Driver.Flat _ -> ()
        | Robust.Driver.Kernel _ -> Alcotest.fail "surrender must emit a flat schedule");
        (* budget 0 kills the ideal schedule up front, so the modulo
           rungs never run: the log holds the ideal-stage failure *)
        check Alcotest.bool "ideal failure logged" true
          (List.exists
             (fun (a : Verify.Stage_error.attempt) ->
               a.Verify.Stage_error.at_stage = Verify.Stage_error.Ideal_schedule)
             r.Robust.Driver.attempts);
        check Alcotest.bool "verifies" true (no_error_diags r));
    case "surrender-disabled-fails-structurally" (fun () ->
        let config =
          { cfg with Robust.Driver.budget_schedule = [ 0 ]; allow_non_pipelined = false }
        in
        let e =
          expect_error "daxpy"
            (run ~config ~machine:m4x4e (Workload.Kernels.daxpy ~unroll:2))
        in
        check Alcotest.bool "failed at the ideal schedule" true
          (e.Verify.Stage_error.stage = Verify.Stage_error.Ideal_schedule);
        check Alcotest.bool "attempt trace kept" true
          (List.length e.Verify.Stage_error.attempts >= 1);
        check Alcotest.bool "trace renders" true
          (List.length (Verify.Stage_error.trace e) = List.length e.Verify.Stage_error.attempts));
    case "malformed-ir-rejected-at-the-gate" (fun () ->
        let prng = Util.Prng.create 7 in
        let armed = Robust.Inject.arm ~prng [ Robust.Inject.Malform_ir ] in
        let e =
          expect_error "daxpy"
            (run ~hooks:armed.Robust.Inject.hooks ~machine:m4x4e
               (Workload.Kernels.daxpy ~unroll:2))
        in
        check Alcotest.string "IR004" "IR004" e.Verify.Stage_error.code;
        check Alcotest.bool "stage is ir-input" true
          (e.Verify.Stage_error.stage = Verify.Stage_error.Ir_input);
        check Alcotest.int "rejected before any rung ran" 0
          (List.length e.Verify.Stage_error.attempts));
  ]

(* Deadline pressure: the ?cancel poll must turn into a structured
   PIPE008 error at the next stage boundary — never a hang, never a
   partial artifact — and the attempt trace must keep every rung tried
   before the deadline, including the one cancellation interrupted. *)
let deadline_tests =
  [
    case "immediate-deadline-is-a-structured-error" (fun () ->
        let e =
          expect_error "daxpy"
            (Robust.Driver.run ~cancel:(fun () -> true) ~machine:m4x4e
               (Workload.Kernels.daxpy ~unroll:2))
        in
        check Alcotest.string "PIPE008" Robust.Driver.deadline_code
          e.Verify.Stage_error.code;
        check Alcotest.int "no rung ever started" 0
          (List.length e.Verify.Stage_error.attempts);
        check Alcotest.bool "message names the deadline" true
          (contains e.Verify.Stage_error.message "deadline"));
    case "cancel-mid-ladder-keeps-every-attempt" (fun () ->
        (* Two exploding partitioners ahead of greedy; the cancel poll
           fires once both have failed, so the ladder is abandoned just
           before the rung that would have succeeded. The trace must
           hold both failed rungs, in order. *)
        let rungs_failed = ref 0 in
        let boom name =
          (name, Partition.Driver.Custom (fun _ _ _ ->
               incr rungs_failed;
               invalid_arg (name ^ " exploded")))
        in
        let config =
          { cfg with Robust.Driver.partitioners =
              [ boom "boom1"; boom "boom2";
                ("greedy", Partition.Driver.Greedy Rcg.Weights.default) ];
            budget_schedule = [ 10 ] }
        in
        let e =
          expect_error "dot"
            (Robust.Driver.run ~config
               ~cancel:(fun () -> !rungs_failed >= 2)
               ~machine:m4x4e (Workload.Kernels.dot ~unroll:2))
        in
        check Alcotest.string "PIPE008" Robust.Driver.deadline_code
          e.Verify.Stage_error.code;
        let rungs =
          List.map (fun (a : Verify.Stage_error.attempt) -> a.Verify.Stage_error.rung)
            e.Verify.Stage_error.attempts
        in
        check Alcotest.int "both interrupted rungs traced" 2 (List.length rungs);
        check Alcotest.bool "boom1 first" true (contains (List.nth rungs 0) "boom1");
        check Alcotest.bool "boom2 second" true (contains (List.nth rungs 1) "boom2"));
    case "saturated-ladder-traces-every-rung-tried" (fun () ->
        (* copy_saturation 0.0 rejects every partitioned rung of a
           copy-needing loop with PT005; the single-bank merge rung then
           carries it. The result's trace must list one attempt per
           partitioner x budget — proof the whole ladder was walked. *)
        let config = { cfg with Robust.Driver.copy_saturation = Some 0.0 } in
        let r = expect_ok "cmul" (run ~config ~machine:m4x4e (Workload.Kernels.cmul ~unroll:2)) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Single_bank _ -> ()
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        let expected =
          List.length cfg.Robust.Driver.partitioners
          * List.length cfg.Robust.Driver.budget_schedule
        in
        let saturated =
          List.filter
            (fun (a : Verify.Stage_error.attempt) -> a.Verify.Stage_error.at_code = "PT005")
            r.Robust.Driver.attempts
        in
        check Alcotest.int "one PT005 attempt per partitioned rung" expected
          (List.length saturated));
    case "deadline-token-fires-and-latches" (fun () ->
        (* A real Engine.Cancel token on a hand-cranked clock: each poll
           advances time 0.2 s against a 0.5 s deadline, so the third
           poll trips it. The run must return PIPE008 (not hang, not
           raise) and the token must stay cancelled afterwards. *)
        let t = ref 0.0 in
        let token = Engine.Cancel.make ~deadline:0.5 ~clock:(fun () -> !t) () in
        let cancel () =
          t := !t +. 0.2;
          Engine.Cancel.guard token ()
        in
        let e =
          expect_error "daxpy"
            (Robust.Driver.run ~cancel ~machine:m4x4e
               (Workload.Kernels.daxpy ~unroll:2))
        in
        check Alcotest.string "PIPE008" Robust.Driver.deadline_code
          e.Verify.Stage_error.code;
        check Alcotest.bool "token latched" true (Engine.Cancel.cancelled token);
        (match Engine.Cancel.remaining token with
        | Some s -> check Alcotest.bool "past the deadline" true (s < 0.0)
        | None -> Alcotest.fail "token lost its deadline"));
    case "cancellation-leaves-no-partial-state" (fun () ->
        (* A cancelled run then a clean rerun of the same loop: the
           second run must behave exactly as if the first never
           happened — first rung, empty attempt log, verified code. *)
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let _ =
          expect_error "cancelled" (Robust.Driver.run ~cancel:(fun () -> true) ~machine:m4x4e loop)
        in
        let r = expect_ok "rerun" (run ~machine:m4x4e loop) in
        (match r.Robust.Driver.rung with
        | Robust.Driver.Pipelined { partitioner; _ } ->
            check Alcotest.string "first rung again" "greedy" partitioner
        | rung -> Alcotest.failf "wrong rung: %s" (Robust.Driver.rung_name rung));
        check Alcotest.int "attempt log is fresh" 0 (List.length r.Robust.Driver.attempts);
        check Alcotest.bool "verifies" true (no_error_diags r));
  ]

(* One armed run; returns (fired, result). cmul-u2 on m4x4e needs 12
   copies, so every transient fault (kernel, copy, assignment) finds an
   artifact to corrupt. *)
let armed_run ?(seed = 11) ?(loop = Workload.Kernels.cmul ~unroll:2) ?(machine = m4x4e) fault =
  let prng = Util.Prng.create seed in
  let armed = Robust.Inject.arm ~prng [ fault ] in
  let res = run ~hooks:armed.Robust.Inject.hooks ~machine loop in
  (armed.Robust.Inject.fired (), res)

let inject_tests =
  [
    case "recoverable-faults-fire-and-recover" (fun () ->
        List.iter
          (fun fault ->
            let name = Robust.Inject.fault_name fault in
            let fired, res = armed_run fault in
            check Alcotest.bool (name ^ " fired exactly once") true
              (fired = [ fault ]);
            let r = expect_ok name res in
            check Alcotest.bool (name ^ ": recovered code verifies") true
              (no_error_diags r))
          Robust.Inject.recoverable);
    case "corrupt-kernel-logs-sch001" (fun () ->
        let _, res = armed_run Robust.Inject.Corrupt_kernel in
        let r = expect_ok "cmul" res in
        check Alcotest.bool "SCH001 in the attempt log" true
          (List.exists
             (fun (a : Verify.Stage_error.attempt) -> a.Verify.Stage_error.at_code = "SCH001")
             r.Robust.Driver.attempts));
    case "drop-copy-logs-cross-bank-operand" (fun () ->
        let _, res = armed_run Robust.Inject.Drop_copy in
        let r = expect_ok "cmul" res in
        check Alcotest.bool "PT003 in the attempt log" true
          (List.exists
             (fun (a : Verify.Stage_error.attempt) -> a.Verify.Stage_error.at_code = "PT003")
             r.Robust.Driver.attempts));
    case "shrunken-banks-fail-cleanly" (fun () ->
        let fired, res = armed_run (Robust.Inject.Shrink_banks 1) in
        check Alcotest.bool "fired" true (fired = [ Robust.Inject.Shrink_banks 1 ]);
        let e = expect_error "cmul" res in
        check Alcotest.bool "structured allocation failure" true
          (e.Verify.Stage_error.stage = Verify.Stage_error.Allocation);
        check Alcotest.bool "full ladder was tried" true
          (List.length e.Verify.Stage_error.attempts > 0));
    case "faults-fire-once-across-the-ladder" (fun () ->
        (* even though recovery re-runs stages, a transient fault must
           corrupt exactly one artifact *)
        List.iter
          (fun fault ->
            let fired, _ = armed_run fault in
            check Alcotest.int (Robust.Inject.fault_name fault) 1 (List.length fired))
          Robust.Inject.recoverable);
    case "injection-is-deterministic" (fun () ->
        let outcome fault =
          let fired, res = armed_run ~seed:23 fault in
          let tag =
            match res with
            | Ok r -> "ok:" ^ Robust.Driver.rung_name r.Robust.Driver.rung
            | Error e -> "err:" ^ e.Verify.Stage_error.code
          in
          (List.map Robust.Inject.fault_name fired, tag)
        in
        List.iter
          (fun fault ->
            let a = outcome fault and b = outcome fault in
            check
              Alcotest.(pair (list string) string)
              (Robust.Inject.fault_name fault) a b)
          Robust.Inject.all);
  ]

let synthetic_trial outcome =
  {
    Robust.Stress.index = 0;
    loop_name = "l";
    machine_name = "m";
    plan = [];
    fired = [];
    rung = None;
    n_attempts = 0;
    error = None;
    outcome;
  }

let stress_tests =
  [
    slow_case "fuzz-200-trials-raise-free-and-verified" (fun () ->
        (* the acceptance sweep: fixed seed, faults on, fatal included.
           No raise may escape, every emitted schedule must satisfy the
           independently re-run analyzers, and unsalvageable trials must
           end in structured errors. *)
        let s = Robust.Stress.run ~seed:1995 ~trials:200 () in
        check Alcotest.int "no violations" 0 (List.length s.Robust.Stress.violations);
        check Alcotest.int "no unrecovered" 0 (List.length s.Robust.Stress.unrecovered);
        check Alcotest.int "exit code" 0 (Robust.Stress.exit_code s);
        check Alcotest.int "all trials accounted for" 200
          (s.Robust.Stress.clean + s.Robust.Stress.recovered + s.Robust.Stress.failed_clean);
        check Alcotest.bool "faults actually recovered" true (s.Robust.Stress.recovered > 0);
        check Alcotest.bool "fatal faults exercised" true (s.Robust.Stress.failed_clean > 0);
        (* every structured failure names a stage and carries a code *)
        List.iter
          (fun (t : Robust.Stress.trial) ->
            match t.Robust.Stress.error with
            | None -> ()
            | Some e ->
                check Alcotest.bool "error has a code" true
                  (String.length e.Verify.Stage_error.code > 0))
          s.Robust.Stress.trials);
    case "same-seed-same-report" (fun () ->
        let a = Robust.Stress.run ~seed:42 ~trials:40 () in
        let b = Robust.Stress.run ~seed:42 ~trials:40 () in
        check Alcotest.string "byte-identical report"
          (Robust.Stress.report ~verbose:true a)
          (Robust.Stress.report ~verbose:true b));
    case "report-ends-with-totals" (fun () ->
        let s = Robust.Stress.run ~seed:3 ~trials:5 () in
        check Alcotest.bool "totals line present" true
          (contains (Robust.Stress.report s) "totals: 5 trials"));
    case "exit-codes-follow-the-contract" (fun () ->
        let summary ?(unrecovered = []) ?(violations = []) () =
          {
            Robust.Stress.trials = [];
            clean = 0;
            recovered = 0;
            failed_clean = 0;
            unrecovered;
            violations;
          }
        in
        check Alcotest.int "clean run is 0" 0 (Robust.Stress.exit_code (summary ()));
        check Alcotest.int "unrecovered is 1" 1
          (Robust.Stress.exit_code
             (summary ~unrecovered:[ synthetic_trial Robust.Stress.Unrecovered ] ()));
        check Alcotest.int "violation is 2" 2
          (Robust.Stress.exit_code
             (summary
                ~unrecovered:[ synthetic_trial Robust.Stress.Unrecovered ]
                ~violations:[ synthetic_trial (Robust.Stress.Violation "boom") ]
                ())));
  ]

let suite =
  [
    ("robust.ladder", ladder_tests);
    ("robust.deadline", deadline_tests);
    ("robust.inject", inject_tests);
    ("robust.stress", stress_tests);
  ]
