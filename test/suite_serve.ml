open Testlib
open Serve

(* The compilation service (lib/serve): wire-protocol codec, admission
   control, line framing, concurrent stats, and an end-to-end in-process
   daemon exercised over a real Unix socket — ping, compile, cache hits,
   malformed frames, overload shedding, deadline timeouts, quarantine
   and graceful shutdown. *)

let sample_metrics =
  {
    Core.Metrics.name = "daxpy-u2";
    ideal_ii = 4;
    clustered_ii = 5;
    degradation = 125.0;
    ipc_ideal = 4.0;
    ipc_clustered = 3.2;
    n_copies = 3;
    n_ops = 16;
  }

let sample_result =
  {
    Proto.id = "req-1";
    trace_id = None;
    outcome = Ok sample_metrics;
    rung = Some "greedy budget=10";
    pipelined = true;
    flat_cycles = None;
    cache = Proto.Miss;
    spills = 2;
    attempts = [ "partitioning: bad [PT002]" ];
    timing = { Proto.queue_ms = 1.5; compile_ms = 20.25; total_ms = 21.75 };
    trace = None;
  }

let reply_roundtrip r =
  match Proto.reply_of_string (Proto.reply_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "reply did not round-trip: %s" e

let request_roundtrip r =
  match Proto.request_of_string (Proto.request_to_string r) with
  | Ok r' -> r'
  | Error e -> Alcotest.failf "request did not round-trip: %s" e

let proto_tests =
  [
    case "requests-round-trip" (fun () ->
        let compile =
          Proto.Compile
            {
              Proto.id = "abc";
              ir = "loop \"l\" {\n}\n";
              clusters = 4;
              model = Mach.Machine.Copy_unit;
              deadline_ms = Some 250.0;
              no_cache = true;
              fault = Some "crash-worker";
              trace_id = None;
              trace = false;
            }
        in
        let traced =
          match compile with
          | Proto.Compile c ->
              Proto.Compile { c with Proto.trace_id = Some "abcd.1234"; trace = true }
          | r -> r
        in
        List.iter
          (fun r -> check Alcotest.bool "round-trips" true (request_roundtrip r = r))
          [ compile; traced; Proto.Ping; Proto.Stats; Proto.Metrics;
            Proto.Flight { id = None; anomalies = false };
            Proto.Flight { id = Some "e220a8397b1dcdaf"; anomalies = true };
            Proto.Shutdown ]);
    case "replies-round-trip" (fun () ->
        List.iter
          (fun r -> check Alcotest.bool "round-trips" true (reply_roundtrip r = r))
          [
            Proto.Result sample_result;
            Proto.Result
              { sample_result with
                Proto.trace_id = Some "e220a8397b1dcdaf";
                trace =
                  Some
                    (Obs.Json.Obj
                       [ ("spans", Obs.Json.List []);
                         ("truncated", Obs.Json.Bool false) ]) };
            Proto.Result
              { sample_result with
                Proto.outcome =
                  Error
                    (Verify.Stage_error.make ~code:"PIPE008"
                       ~stage:Verify.Stage_error.Clustered_schedule ~subject:"l"
                       "deadline exceeded");
                rung = None; pipelined = false; flat_cycles = Some 9 };
            Proto.Overload { id = "x"; depth = 64; retry_after_ms = 50.0 };
            Proto.Bad_frame { detail = "frame is not JSON" };
            Proto.Pong;
            Proto.Stats_reply [ ("serve.admitted", 3); ("serve.completed", 2) ];
            Proto.Metrics_reply
              (Obs.Json.Obj
                 [ ("schema", Obs.Json.Str "rbp-metrics/1");
                   ("uptime_s", Obs.Json.Num 1.5);
                   ("counters", Obs.Json.Obj [ ("serve.admitted", Obs.Json.Num 3.0) ]) ]);
            Proto.Flight_reply
              (Obs.Json.Obj
                 [ ("schema", Obs.Json.Str Flight.schema);
                   ("requests", Obs.Json.List []) ]);
            Proto.Bye;
          ]);
    case "statuses-follow-the-contract" (fun () ->
        check Alcotest.string "ok" "ok" (Proto.status_of_reply (Proto.Result sample_result));
        check Alcotest.string "timeout" "timeout"
          (Proto.status_of_reply
             (Proto.error_reply ~id:"t" (Proto.queue_timeout_error ~id:"t")));
        check Alcotest.string "quarantine is error" "error"
          (Proto.status_of_reply
             (Proto.error_reply ~id:"q" (Proto.quarantine_error ~id:"q" ~crashes:3)));
        check Alcotest.string "overload" "overload"
          (Proto.status_of_reply (Proto.Overload { id = ""; depth = 0; retry_after_ms = 25.0 }));
        check Alcotest.string "bad_frame" "bad_frame"
          (Proto.status_of_reply (Proto.Bad_frame { detail = "" }));
        check Alcotest.string "metrics" "metrics"
          (Proto.status_of_reply (Proto.Metrics_reply Obs.Json.Null)));
    case "structured-failures-carry-their-codes" (fun () ->
        check Alcotest.string "queue timeout is the ladder deadline code"
          Robust.Driver.deadline_code (Proto.queue_timeout_error ~id:"a").Verify.Stage_error.code;
        check Alcotest.string "quarantine" Proto.code_quarantined
          (Proto.quarantine_error ~id:"a" ~crashes:1).Verify.Stage_error.code;
        check Alcotest.string "shutdown" Proto.code_shutting_down
          (Proto.shutdown_error ~id:"a").Verify.Stage_error.code);
    case "garbage-frames-are-parse-errors" (fun () ->
        List.iter
          (fun s ->
            match Proto.request_of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted garbage frame %S" s)
          [ "}{ not json"; "[]"; "{\"op\":\"nope\"}"; "{\"no\":\"op\"}";
            "{\"op\":\"compile\"}" (* missing ir *) ]);
    case "model-and-cache-names-round-trip" (fun () ->
        List.iter
          (fun m ->
            check Alcotest.bool "model" true
              (Proto.model_of_name (Proto.model_name m) = Some m))
          [ Mach.Machine.Embedded; Mach.Machine.Copy_unit ];
        List.iter
          (fun c ->
            check Alcotest.bool "cache status" true
              (Proto.cache_status_of_name (Proto.cache_status_name c) = Some c))
          [ Proto.Hit; Proto.Miss; Proto.Bypass ]);
  ]

let admission_tests =
  [
    case "fifo-under-the-limit" (fun () ->
        let q = Admission.create ~limit:8 () in
        check Alcotest.bool "depth 1" true (Admission.try_push q 'a' = `Admitted 1);
        check Alcotest.bool "depth 2" true (Admission.try_push q 'b' = `Admitted 2);
        check Alcotest.int "depth" 2 (Admission.depth q);
        check Alcotest.bool "fifo a" true (Admission.pop q = Some 'a');
        check Alcotest.bool "fifo b" true (Admission.pop q = Some 'b');
        check Alcotest.int "drained" 0 (Admission.depth q));
    case "full-queue-sheds-with-a-quote" (fun () ->
        let q = Admission.create ~limit:2 () in
        ignore (Admission.try_push q 1);
        ignore (Admission.try_push q 2);
        (match Admission.try_push q 3 with
        | `Shed ra ->
            check Alcotest.bool "quote at least the base" true
              (ra >= Admission.retry_after_base_ms)
        | `Admitted _ | `Closed -> Alcotest.fail "full queue must shed");
        check Alcotest.int "shed did not enqueue" 2 (Admission.depth q));
    case "limit-zero-admits-nothing" (fun () ->
        let q = Admission.create ~limit:0 () in
        match Admission.try_push q () with
        | `Shed _ -> ()
        | `Admitted _ | `Closed -> Alcotest.fail "limit 0 must shed everything");
    case "force-push-bypasses-the-limit" (fun () ->
        (* the supervisor requeueing a crashed worker's job is never shed *)
        let q = Admission.create ~limit:0 () in
        check Alcotest.bool "forced in" true (Admission.push_force q 7);
        check Alcotest.bool "and popped" true (Admission.pop q = Some 7));
    case "close-drains-then-refuses" (fun () ->
        let q = Admission.create ~limit:8 () in
        ignore (Admission.try_push q "in-flight");
        Admission.close q;
        check Alcotest.bool "closed" true (Admission.closed q);
        check Alcotest.bool "producers refused" true (Admission.try_push q "late" = `Closed);
        check Alcotest.bool "force refused too" true (not (Admission.push_force q "late"));
        check Alcotest.bool "admitted work still drains" true
          (Admission.pop q = Some "in-flight");
        check Alcotest.bool "then consumers see the end" true (Admission.pop q = None));
    case "pop-blocks-across-threads" (fun () ->
        let q = Admission.create ~limit:50 () in
        let got = ref [] in
        let consumer =
          Thread.create
            (fun () ->
              let rec go () =
                match Admission.pop q with
                | Some v -> got := v :: !got; go ()
                | None -> ()
              in
              go ())
            ()
        in
        for i = 1 to 50 do ignore (Admission.try_push q i) done;
        Admission.close q;
        Thread.join consumer;
        check Alcotest.(list int) "all items, in order" (List.init 50 (fun i -> i + 1))
          (List.rev !got));
  ]

let wire_tests =
  [
    case "addresses-parse-and-print" (fun () ->
        let ok s expect =
          match Wire.addr_of_string s with
          | Ok a -> check Alcotest.bool (Printf.sprintf "%S parses" s) true (a = expect)
          | Error e -> Alcotest.failf "%S rejected: %s" s e
        in
        ok "unix:/tmp/rbp.sock" (Wire.Unix_path "/tmp/rbp.sock");
        ok "/tmp/rbp.sock" (Wire.Unix_path "/tmp/rbp.sock");
        ok "tcp:127.0.0.1:9000" (Wire.Tcp ("127.0.0.1", 9000));
        ok "localhost:9000" (Wire.Tcp ("localhost", 9000));
        ok "tcp::9000" (Wire.Tcp ("127.0.0.1", 9000));
        (match Wire.addr_of_string "tcp:host:notaport" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "bad port accepted");
        List.iter
          (fun a ->
            match Wire.addr_of_string (Wire.addr_to_string a) with
            | Ok a' -> check Alcotest.bool "round-trips" true (a = a')
            | Error e -> Alcotest.failf "printed address rejected: %s" e)
          [ Wire.Unix_path "/x/y.sock"; Wire.Tcp ("::1", 1); Wire.Tcp ("h", 65535) ]);
    case "line-framing-over-a-socketpair" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close a; try Unix.close b with Unix.Unix_error _ -> ())
        @@ fun () ->
        let rd = Wire.reader a in
        (* two frames in one write, CRLF on the second *)
        (match Wire.write_all b "first\nsecond\r\n" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write failed: %s" e);
        check Alcotest.bool "first frame" true
          (Wire.read_line ~idle_timeout_s:2.0 rd = `Line "first");
        check Alcotest.bool "second frame, CR stripped" true
          (Wire.read_line ~idle_timeout_s:2.0 rd = `Line "second");
        Unix.close b;
        check Alcotest.bool "eof after peer closes" true
          (Wire.read_line ~idle_timeout_s:2.0 rd = `Eof));
    case "oversized-frames-are-rejected" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> Unix.close a; Unix.close b) @@ fun () ->
        let rd = Wire.reader a in
        ignore (Wire.write_all b (String.make 64 'x'));
        check Alcotest.bool "too long without a newline" true
          (Wire.read_line ~idle_timeout_s:2.0 ~max_frame:16 rd = `Too_long));
    case "idle-budget-expires" (fun () ->
        let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Fun.protect ~finally:(fun () -> Unix.close a; Unix.close b) @@ fun () ->
        let rd = Wire.reader a in
        (* nothing ever arrives: the total budget runs out *)
        check Alcotest.bool "idle" true
          (Wire.read_line ~slice_s:0.01 ~idle_timeout_s:0.05 rd = `Idle));
  ]

(* A gc sampler frozen at one real reading: byte-stable documents
   without faking the whole [Gc.stat] record. *)
let frozen_gc = lazy (Gc.quick_stat ())
let frozen_gc_stat () = Lazy.force frozen_gc

let stats_tests =
  [
    case "bump-get-snapshot" (fun () ->
        let s = Stats.make () in
        Stats.bump s Obs.Counter.Serve_admitted 2;
        Stats.bump s Obs.Counter.Serve_admitted 1;
        Stats.bump s Obs.Counter.Serve_completed 1;
        check Alcotest.int "accumulates" 3 (Stats.get s Obs.Counter.Serve_admitted);
        check Alcotest.int "untouched cell is zero" 0 (Stats.get s Obs.Counter.Serve_shed);
        let snap = Stats.snapshot s in
        check Alcotest.bool "snapshot sorted by name" true
          (snap = List.sort (fun (a, _) (b, _) -> compare a b) snap);
        check Alcotest.int "only touched cells" 2 (List.length snap));
    case "absorbing-a-trace-folds-its-counters" (fun () ->
        let s = Stats.make () in
        let tr = Obs.Trace.make ~clock:(Obs.Clock.fake ()) () in
        Obs.Trace.incr (Some tr) ~label:"a" Obs.Counter.Engine_cache_corrupt 1;
        Obs.Trace.incr (Some tr) ~label:"b" Obs.Counter.Engine_cache_corrupt 2;
        Stats.absorb s tr;
        check Alcotest.int "labels collapsed into the total" 3
          (Stats.get s Obs.Counter.Engine_cache_corrupt));
    case "bumps-race-free-across-threads" (fun () ->
        let s = Stats.make () in
        let ts =
          List.init 4 (fun _ ->
              Thread.create
                (fun () ->
                  for _ = 1 to 1000 do Stats.bump s Obs.Counter.Serve_completed 1 done)
                ())
        in
        List.iter Thread.join ts;
        check Alcotest.int "no lost updates" 4000 (Stats.get s Obs.Counter.Serve_completed));
    case "metrics-document-shape" (fun () ->
        let s = Stats.make ~clock:(Obs.Clock.frozen 2.0) ~gc_stat:frozen_gc_stat () in
        Stats.note_admitted s;
        Stats.note_result s ~rung:(Some "greedy budget=10") ~cache_hit:false
          ~queue_ms:1.0 ~compile_ms:20.0 ~total_ms:21.0;
        Stats.note_result s ~rung:(Some "greedy budget=10") ~cache_hit:true
          ~queue_ms:0.5 ~compile_ms:0.0 ~total_ms:0.5;
        let j = Stats.metrics_json s in
        check Alcotest.bool "schema marker" true
          (Option.bind (Obs.Json.member "schema" j) Obs.Json.to_str = Some Stats.schema);
        let m = Serve.Metrics.of_json j in
        match m with
        | Error e -> Alcotest.failf "own document rejected: %s" e
        | Ok m ->
            check Alcotest.int "both results in the total series" 2
              m.Serve.Metrics.total.Serve.Metrics.count;
            (match m.Serve.Metrics.rungs with
            | [ (name, series) ] ->
                check Alcotest.string "rung name" "greedy budget=10" name;
                (* the cache hit must not dilute the rung's compile series *)
                check Alcotest.int "cache hit skipped" 1 series.Serve.Metrics.count
            | rungs -> Alcotest.failf "expected one rung, got %d" (List.length rungs));
            check Alcotest.bool "gc gauges present and sane" true
              (match List.assoc_opt "live_words" m.Serve.Metrics.gc with
              | Some w -> w >= 0.0 && List.mem_assoc "major_collections" m.Serve.Metrics.gc
              | None -> false));
    case "fake-clock-metrics-are-byte-identical" (fun () ->
        let drive () =
          let s =
            Stats.make
              ~clock:(Obs.Clock.fake ~start:100.0 ~step:0.125 ())
              ~gc_stat:frozen_gc_stat ()
          in
          Stats.bump s Obs.Counter.Serve_admitted 4;
          Stats.note_shed s;
          for i = 1 to 4 do
            Stats.note_admitted s;
            Stats.note_result s
              ~rung:(if i mod 2 = 0 then Some "greedy budget=10" else Some "ilp")
              ~cache_hit:(i = 4) ~queue_ms:(float_of_int i *. 0.25)
              ~compile_ms:(float_of_int i *. 3.0)
              ~total_ms:(float_of_int i *. 3.25)
          done;
          Obs.Json.to_string (Stats.metrics_json s)
        in
        check Alcotest.string "two identically-driven daemons agree byte-for-byte"
          (drive ()) (drive ()));
  ]

(* --- the flight recorder: two rings, one mutex ----------------------- *)

let flight_entry ?(status = "ok") ?anomaly ?(id = "r") ?trace trace_id =
  {
    Flight.trace_id;
    id;
    status;
    anomaly;
    rung = Some "pipelined(greedy, budget=10)";
    cache = "miss";
    queue_ms = 0.25;
    compile_ms = 2.0;
    total_ms = 2.25;
    attempts = [];
    trace;
    ts = 0.0;
  }

let flight_tests =
  [
    case "request-ring-evicts-oldest-first" (fun () ->
        let t = Flight.make ~capacity:4 ~clock:(Obs.Clock.frozen 0.0) () in
        for i = 1 to 6 do
          Flight.record t (flight_entry (Printf.sprintf "t%d" i))
        done;
        check Alcotest.(list string) "last four, oldest first"
          [ "t3"; "t4"; "t5"; "t6" ]
          (List.map (fun e -> e.Flight.trace_id) (Flight.requests t)));
    case "anomaly-ring-survives-a-burst" (fun () ->
        let t = Flight.make ~capacity:4 ~anomaly_capacity:4 ~clock:(Obs.Clock.frozen 0.0) () in
        Flight.record t (flight_entry ~status:"timeout" ~anomaly:"timeout" "victim");
        (* a burst of healthy traffic far beyond both capacities *)
        for i = 1 to 32 do
          Flight.record t (flight_entry (Printf.sprintf "ok%d" i))
        done;
        check Alcotest.bool "evicted from the request ring" true
          (not (List.exists (fun e -> e.Flight.trace_id = "victim") (Flight.requests t)));
        check Alcotest.(list string) "still in the anomaly ring" [ "victim" ]
          (List.map (fun e -> e.Flight.trace_id) (Flight.anomalies t));
        match Flight.find t "victim" with
        | Some e -> check Alcotest.string "findable by trace id" "timeout" e.Flight.status
        | None -> Alcotest.fail "anomaly not findable");
    case "sheds-land-only-in-the-anomaly-ring" (fun () ->
        let t = Flight.make ~clock:(Obs.Clock.frozen 0.0) () in
        Flight.record t (Flight.shed ~trace_id:"s1" ~id:"req" ~ts:1.0);
        check Alcotest.int "request ring untouched" 0 (List.length (Flight.requests t));
        match Flight.anomalies t with
        | [ e ] ->
            check Alcotest.string "status" "overload" e.Flight.status;
            check Alcotest.bool "anomaly tag" true (e.Flight.anomaly = Some "overload")
        | l -> Alcotest.failf "expected one anomaly, got %d" (List.length l));
    case "documents-round-trip" (fun () ->
        let t = Flight.make ~capacity:8 ~clock:(Obs.Clock.frozen 0.0) () in
        Flight.record t
          (flight_entry
             ~trace:(Obs.Json.Obj
                       [ ("spans", Obs.Json.List []);
                         ("truncated", Obs.Json.Bool false) ])
             "a1");
        Flight.record t (flight_entry ~status:"timeout" ~anomaly:"timeout" "a2");
        let doc = Flight.to_json t in
        (match Flight.entries_of_json doc with
        | Error e -> Alcotest.failf "own document rejected: %s" e
        | Ok (reqs, anoms) ->
            check Alcotest.(list string) "requests" [ "a1"; "a2" ]
              (List.map (fun e -> e.Flight.trace_id) reqs);
            check Alcotest.(list string) "anomalies" [ "a2" ]
              (List.map (fun e -> e.Flight.trace_id) anoms);
            check Alcotest.bool "span tree retained" true
              ((List.hd reqs).Flight.trace <> None));
        (match Flight.entries_of_json (Obs.Json.Obj [ ("schema", Obs.Json.Str "nope/9") ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "foreign schema accepted");
        match Flight.render doc with
        | Ok text ->
            check Alcotest.bool "render mentions the trace ids" true
              (let has needle =
                 let nl = String.length needle and tl = String.length text in
                 let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
                 go 0
               in
               has "a1" && has "a2")
        | Error e -> Alcotest.failf "render: %s" e);
    case "id-filter-narrows-both-rings" (fun () ->
        let t = Flight.make ~clock:(Obs.Clock.frozen 0.0) () in
        Flight.record t (flight_entry "keep");
        Flight.record t (flight_entry "drop");
        Flight.record t (flight_entry ~status:"timeout" ~anomaly:"timeout" "keep");
        match Flight.entries_of_json (Flight.to_json ~id:"keep" t) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok (reqs, anoms) ->
            check Alcotest.int "one kept request... " 2 (List.length reqs);
            check Alcotest.bool "...all carrying the id" true
              (List.for_all (fun e -> e.Flight.trace_id = "keep") reqs);
            check Alcotest.int "one kept anomaly" 1 (List.length anoms));
  ]

(* --- client-side metrics: parse, dashboard, Prometheus --------------- *)

(* A hand-built rbp-metrics/1 document, driven through a real [Stats] so
   the producer and the consumer are tested against each other. *)
let sample_metrics_doc () =
  let s = Stats.make ~clock:(Obs.Clock.frozen 30.0) ~gc_stat:frozen_gc_stat () in
  Stats.bump s Obs.Counter.Serve_admitted 3;
  Stats.bump s Obs.Counter.Serve_cache_hits 1;
  Stats.note_admitted s;
  Stats.note_admitted s;
  Stats.note_admitted s;
  Stats.note_result s ~rung:(Some "greedy budget=10") ~cache_hit:false ~queue_ms:2.0
    ~compile_ms:40.0 ~total_ms:42.0;
  Stats.note_result s ~rung:(Some "greedy budget=10") ~cache_hit:false ~queue_ms:4.0
    ~compile_ms:80.0 ~total_ms:84.0;
  Stats.note_result s ~rung:None ~cache_hit:true ~queue_ms:1.0 ~compile_ms:0.0
    ~total_ms:1.0;
  Stats.metrics_json s

let metrics_tests =
  [
    case "documents-parse-to-typed-views" (fun () ->
        match Metrics.of_json (sample_metrics_doc ()) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok m ->
            check Alcotest.int "three totals" 3 m.Metrics.total.Metrics.count;
            check Alcotest.bool "frozen clock means zero uptime" true
              (m.Metrics.uptime_s = 0.0);
            check Alcotest.bool "p99 within observed range" true
              (m.Metrics.compile.Metrics.p99 <= m.Metrics.compile.Metrics.max);
            check Alcotest.bool "counters present" true
              (List.assoc_opt "serve.admitted" m.Metrics.counters = Some 3);
            check Alcotest.bool "both lookback windows" true
              (List.mem_assoc "10s" m.Metrics.windows
              && List.mem_assoc "60s" m.Metrics.windows);
            let w = List.assoc "10s" m.Metrics.windows in
            check Alcotest.bool "cache hit ratio is a fraction" true
              (w.Metrics.cache_hit_ratio >= 0.0 && w.Metrics.cache_hit_ratio <= 1.0));
    case "wrong-schema-is-rejected" (fun () ->
        match Metrics.of_json (Obs.Json.Obj [ ("schema", Obs.Json.Str "nope/9") ]) with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "foreign schema accepted");
    case "dashboard-renders-every-section" (fun () ->
        match Metrics.of_json (sample_metrics_doc ()) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok m ->
            let text = Metrics.render m in
            let contains needle =
              check Alcotest.bool (Printf.sprintf "mentions %S" needle) true
                (let nl = String.length needle and tl = String.length text in
                 let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
                 go 0)
            in
            List.iter contains
              [ "queue"; "compile"; "total"; "greedy budget=10"; "10s"; "60s";
                "serve.admitted" ]);
    case "prometheus-exposition-is-stable-and-well-formed" (fun () ->
        match Metrics.of_json (sample_metrics_doc ()) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok m ->
            let text = Metrics.prometheus m in
            check Alcotest.string "byte-stable for a given document" text
              (Metrics.prometheus m);
            let lines = String.split_on_char '\n' text in
            let names =
              List.filter_map
                (fun l ->
                  match String.index_opt l ' ' with
                  | Some _ when String.length l > 7 && String.sub l 0 7 = "# TYPE " ->
                      let rest = String.sub l 7 (String.length l - 7) in
                      Option.map (fun i -> String.sub rest 0 i) (String.index_opt rest ' ')
                  | _ -> None)
                lines
            in
            check Alcotest.bool "at least counters + summaries + gauges" true
              (List.length names >= 5);
            check Alcotest.(list string) "families sorted by metric name"
              (List.sort compare names) names;
            List.iter
              (fun l ->
                if l <> "" && l.[0] <> '#' then
                  check Alcotest.bool (Printf.sprintf "sample line %S has a value" l) true
                    (String.contains l ' '))
              lines;
            check Alcotest.bool "summary quantiles exposed" true
              (List.exists
                 (fun l ->
                   let needle = "quantile=\"0.99\"" in
                   let nl = String.length needle and ll = String.length l in
                   let rec go i = i + nl <= ll && (String.sub l i nl = needle || go (i + 1)) in
                   go 0)
                 lines));
  ]

(* --- end-to-end: a live daemon on a Unix socket ---------------------- *)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Start [Server.run] on a fresh Unix socket in a background thread and
   hand the address to [f]; shutdown (via the wire op) and cleanup are
   guaranteed. Returns the daemon's exit code. *)
let with_daemon ?queue_limit ?default_deadline_ms ?max_retries ?(cache = false)
    ?logger ?trace_seed f =
  let dir = temp_dir "rbp-serve-test" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let addr = Wire.Unix_path (Filename.concat dir "d.sock") in
  let cache = if cache then Some (Engine.Cache.open_ ~dir:(Filename.concat dir "cache") ()) else None in
  let logger = Option.value logger ~default:Obs.Log.null in
  let cfg =
    Server.config ~workers:2 ?queue_limit ?default_deadline_ms ?max_retries ?cache
      ~faults_enabled:true ~allow_shutdown:true ~logger ?trace_seed addr
  in
  let code = ref (-1) in
  let daemon = Thread.create (fun () -> code := Server.run cfg) () in
  let r =
    Fun.protect
      ~finally:(fun () ->
        (* idempotent: a second shutdown frame after [f]'s own is refused
           at connect and ignored *)
        (match Client.connect ~retry_for:1.0 addr with
        | Ok c ->
            ignore (Client.request ~timeout_s:5.0 c Proto.Shutdown);
            Client.close c
        | Error _ -> ());
        Thread.join daemon)
    @@ fun () -> f addr
  in
  (r, !code)

let connect_ok addr =
  match Client.connect ~retry_for:5.0 addr with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request_ok c req =
  match Client.request ~timeout_s:30.0 c req with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "request: %s" e

let compile_req ?(id = "r") ?deadline_ms ?(no_cache = false) ?fault ?trace_id
    ?(trace = false) loop =
  Proto.Compile
    {
      Proto.id;
      ir = Ir.Parse.loop_to_string loop;
      clusters = 4;
      model = Mach.Machine.Embedded;
      deadline_ms;
      no_cache;
      fault;
      trace_id;
      trace;
    }

let expect_result what = function
  | Proto.Result r -> r
  | reply -> Alcotest.failf "%s: unexpected %s reply" what (Proto.status_of_reply reply)

let daemon_tests =
  [
    slow_case "daemon-answers-the-basics" (fun () ->
        let (), code =
          with_daemon ~cache:true @@ fun addr ->
          let c = connect_ok addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (* ping *)
          check Alcotest.bool "pong" true (request_ok c Proto.Ping = Proto.Pong);
          (* a real compile: verified pipelined code with provenance *)
          let loop = Workload.Kernels.daxpy ~unroll:2 in
          let r = expect_result "compile" (request_ok c (compile_req ~id:"one" loop)) in
          check Alcotest.string "id echoed" "one" r.Proto.id;
          (match r.Proto.outcome with
          | Ok m ->
              check Alcotest.bool "ideal ii positive" true (m.Core.Metrics.ideal_ii > 0)
          | Error e -> Alcotest.failf "compile failed: %s" (Verify.Stage_error.to_string e));
          check Alcotest.bool "rung provenance" true (r.Proto.rung <> None);
          check Alcotest.bool "pipelined" true r.Proto.pipelined;
          check Alcotest.bool "first sight is a miss" true (r.Proto.cache = Proto.Miss);
          check Alcotest.bool "latency accounted" true
            (r.Proto.timing.Proto.total_ms >= 0.0);
          (* the same request again: served from the cache, same metrics *)
          let r2 = expect_result "cached" (request_ok c (compile_req ~id:"two" loop)) in
          check Alcotest.bool "repeat answer is a hit" true (r2.Proto.cache = Proto.Hit);
          check Alcotest.bool "identical outcome" true (r2.Proto.outcome = r.Proto.outcome);
          (* no_cache bypasses both ways *)
          let r3 =
            expect_result "bypass" (request_ok c (compile_req ~id:"three" ~no_cache:true loop))
          in
          check Alcotest.bool "bypass" true (r3.Proto.cache = Proto.Bypass);
          (* malformed frame: structured reply, connection survives *)
          (match Client.send_line c "}{ not a frame" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "send: %s" e);
          (match Client.recv_reply c with
          | Ok (Proto.Bad_frame _) -> ()
          | Ok reply ->
              Alcotest.failf "garbage got %s" (Proto.status_of_reply reply)
          | Error e -> Alcotest.failf "recv: %s" e);
          check Alcotest.bool "connection survives garbage" true
            (request_ok c Proto.Ping = Proto.Pong);
          (* broken IR compiles to a structured error, not a dropped line *)
          let bad =
            Proto.Compile
              { Proto.id = "bad"; ir = "loop \"x\" { this is not ir }";
                clusters = 4; model = Mach.Machine.Embedded;
                deadline_ms = None; no_cache = false; fault = None;
                trace_id = None; trace = false }
          in
          let rb = expect_result "bad ir" (request_ok c bad) in
          (match rb.Proto.outcome with
          | Error _ -> ()
          | Ok _ -> Alcotest.fail "malformed IR must fail structurally");
          (* live counters over the wire *)
          match request_ok c Proto.Stats with
          | Proto.Stats_reply counters ->
              (* the three well-formed compiles were admitted; the
                 malformed-IR one was answered at the gate *)
              check Alcotest.bool "admissions counted" true
                (match List.assoc_opt "serve.admitted" counters with
                | Some n -> n >= 3
                | None -> false);
              check Alcotest.bool "cache hit counted" true
                (List.assoc_opt "serve.cache_hits" counters = Some 1)
          | reply -> Alcotest.failf "stats got %s" (Proto.status_of_reply reply)
        in
        check Alcotest.int "clean shutdown" 0 code);
    slow_case "daemon-times-out-and-quarantines" (fun () ->
        let (), code =
          with_daemon ~max_retries:0 @@ fun addr ->
          let c = connect_ok addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let loop = Workload.Kernels.hydro ~unroll:2 in
          (* a near-zero deadline: structured PIPE008, never a hang *)
          let rt =
            expect_result "deadline"
              (request_ok c (compile_req ~id:"t" ~deadline_ms:0.01 loop))
          in
          (match rt.Proto.outcome with
          | Error e ->
              check Alcotest.string "deadline code" Robust.Driver.deadline_code
                e.Verify.Stage_error.code
          | Ok _ -> Alcotest.fail "a 0.01 ms deadline cannot be met");
          check Alcotest.string "status is timeout" "timeout"
            (Proto.status_of_reply (Proto.Result rt));
          (* poison request: the worker dies, the supervisor answers and
             quarantines (max_retries 0), and the daemon keeps serving *)
          let rq =
            expect_result "poison"
              (request_ok c (compile_req ~id:"p" ~fault:"crash-worker" loop))
          in
          (match rq.Proto.outcome with
          | Error e ->
              check Alcotest.string "quarantined" Proto.code_quarantined
                e.Verify.Stage_error.code
          | Ok _ -> Alcotest.fail "poison request cannot succeed");
          (* the same loop without the poison marker is not tainted *)
          let rc = expect_result "clean again" (request_ok c (compile_req ~id:"c" loop)) in
          (match rc.Proto.outcome with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "clean request after quarantine failed: %s"
                (Verify.Stage_error.to_string e))
        in
        check Alcotest.int "clean shutdown" 0 code);
    slow_case "daemon-sheds-at-the-door" (fun () ->
        let (), code =
          with_daemon ~queue_limit:0 @@ fun addr ->
          let c = connect_ok addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          match request_ok c (compile_req ~id:"full" (Workload.Kernels.dot ~unroll:2)) with
          | Proto.Overload { id; retry_after_ms; _ } ->
              check Alcotest.string "id echoed" "full" id;
              check Alcotest.bool "retry quote" true
                (retry_after_ms >= Admission.retry_after_base_ms)
          | reply ->
              Alcotest.failf "limit 0 got %s" (Proto.status_of_reply reply)
        in
        check Alcotest.int "clean shutdown" 0 code);
    slow_case "bombardment-with-faults-answers-everything" (fun () ->
        (* the harness end-to-end, in process: 8 suite loops from 3
           concurrent clients with every service fault armed. Zero
           unanswered, zero protocol errors, metrics match a local
           recompute. *)
        let report, code =
          with_daemon ~cache:true @@ fun addr ->
          Serve.Bombard.run
            (Serve.Bombard.config ~clients:3 ~loops:8 ~seed:2026
               ~faults:Robust.Inject.all_service ~check:true addr)
        in
        check Alcotest.int "daemon survived and drained" 0 code;
        check Alcotest.int "every request answered" 0 report.Serve.Bombard.unanswered;
        check Alcotest.(list string) "no protocol errors" []
          report.Serve.Bombard.protocol_errors;
        check Alcotest.(list string) "serve agrees with local compile" []
          report.Serve.Bombard.mismatches;
        check Alcotest.int "all scored" 8
          (report.Serve.Bombard.ok + report.Serve.Bombard.errors
         + report.Serve.Bombard.timeouts);
        check Alcotest.bool "faults actually fired" true
          (List.exists (fun (_, n) -> n > 0) report.Serve.Bombard.faults_fired);
        check Alcotest.int "harness verdict" 0 (Serve.Bombard.exit_code report);
        (* the report is an rbp-bench/1 document the perf gate can parse *)
        match Core.Perfdiff.parse (Obs.Json.to_string (Serve.Bombard.to_json report)) with
        | Ok bench ->
            check Alcotest.int "bench carries the scored loops" 8
              bench.Core.Perfdiff.loops
        | Error e -> Alcotest.failf "perfdiff rejected the report: %s" e);
    slow_case "daemon-serves-latency-metrics-over-the-wire" (fun () ->
        let (), code =
          with_daemon ~cache:true @@ fun addr ->
          let c = connect_ok addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (* before any compile the document exists but the series are empty *)
          (match request_ok c Proto.Metrics with
          | Proto.Metrics_reply j -> (
              match Metrics.of_json j with
              | Ok m -> check Alcotest.int "empty at boot" 0 m.Metrics.total.Metrics.count
              | Error e -> Alcotest.failf "boot metrics: %s" e)
          | reply -> Alcotest.failf "metrics got %s" (Proto.status_of_reply reply));
          let loop = Workload.Kernels.daxpy ~unroll:2 in
          ignore (expect_result "miss" (request_ok c (compile_req ~id:"m1" loop)));
          ignore (expect_result "hit" (request_ok c (compile_req ~id:"m2" loop)));
          ignore
            (expect_result "bypass"
               (request_ok c (compile_req ~id:"m3" ~no_cache:true loop)));
          (match request_ok c Proto.Metrics with
          | Proto.Metrics_reply j -> (
              match Metrics.of_json j with
              | Error e -> Alcotest.failf "metrics did not parse: %s" e
              | Ok m ->
                  check Alcotest.int "every admitted compile recorded" 3
                    m.Metrics.total.Metrics.count;
                  check Alcotest.int "queue series matches" 3
                    m.Metrics.queue.Metrics.count;
                  check Alcotest.bool "quantiles populated" true
                    (m.Metrics.total.Metrics.p50 > 0.0
                    && m.Metrics.total.Metrics.p99 >= m.Metrics.total.Metrics.p50
                    && m.Metrics.total.Metrics.max >= m.Metrics.total.Metrics.p99);
                  check Alcotest.bool "real compiles feed a rung series" true
                    (List.exists (fun (_, s) -> s.Metrics.count > 0) m.Metrics.rungs);
                  check Alcotest.bool "rolling window saw the burst" true
                    (match List.assoc_opt "60s" m.Metrics.windows with
                    | Some w -> w.Metrics.results_per_s > 0.0
                    | None -> false))
          | reply -> Alcotest.failf "metrics got %s" (Proto.status_of_reply reply));
          (* the stats op is untouched by the new instrumentation: same
             counter names, no distribution keys leaking in *)
          match request_ok c Proto.Stats with
          | Proto.Stats_reply counters ->
              check Alcotest.bool "stats stays counters-only" true
                (List.for_all
                   (fun (name, _) ->
                     List.exists
                       (fun ctr -> Obs.Counter.name ctr = name)
                       Obs.Counter.all)
                   counters)
          | reply -> Alcotest.failf "stats got %s" (Proto.status_of_reply reply)
        in
        check Alcotest.int "clean shutdown" 0 code);
    slow_case "daemon-threads-trace-ids-end-to-end" (fun () ->
        let (), code =
          with_daemon ~trace_seed:0 @@ fun addr ->
          let c = connect_ok addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let loop = Workload.Kernels.daxpy ~unroll:2 in
          (* a valid client-supplied correlator is echoed verbatim *)
          let r =
            expect_result "traced"
              (request_ok c (compile_req ~id:"a" ~trace_id:"client-chose.this-1" loop))
          in
          check Alcotest.bool "client id echoed" true
            (r.Proto.trace_id = Some "client-chose.this-1");
          check Alcotest.bool "no tree unless asked" true (r.Proto.trace = None);
          (* an invalid one is replaced, never propagated *)
          let r2 =
            expect_result "replaced"
              (request_ok c (compile_req ~id:"b" ~trace_id:"has spaces!" loop))
          in
          (match r2.Proto.trace_id with
          | Some t ->
              check Alcotest.bool "server-generated instead" true
                (t <> "has spaces!" && Obs.Trace_id.is_valid t
                && String.length t = 16)
          | None -> Alcotest.fail "daemon-built replies always carry a trace id");
          (* no id at all: the seeded stream provides one *)
          let r3 = expect_result "generated" (request_ok c (compile_req ~id:"c" loop)) in
          check Alcotest.bool "generated id present" true
            (match r3.Proto.trace_id with
            | Some t -> Obs.Trace_id.is_valid t && String.length t = 16
            | None -> false);
          (* trace:true rides the span tree in the reply, and it parses *)
          let r4 =
            expect_result "span tree"
              (request_ok c (compile_req ~id:"d" ~trace_id:"tree-1" ~trace:true loop))
          in
          match r4.Proto.trace with
          | None -> Alcotest.fail "requested tree missing"
          | Some j -> (
              match Obs.Export.trace_spans_of_json j with
              | Error e -> Alcotest.failf "tree did not parse: %s" e
              | Ok spans ->
                  check Alcotest.bool "at least the ladder span" true (spans <> []))
        in
        check Alcotest.int "clean shutdown" 0 code);
    slow_case "daemon-flight-recorder-recovers-anomalies" (fun () ->
        let (), code =
          with_daemon ~max_retries:0 @@ fun addr ->
          let c = connect_ok addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let loop = Workload.Kernels.hydro ~unroll:2 in
          let rt =
            expect_result "deadline"
              (request_ok c
                 (compile_req ~id:"t" ~trace_id:"the-timeout" ~deadline_ms:0.01 loop))
          in
          check Alcotest.string "timed out" "timeout"
            (Proto.status_of_reply (Proto.Result rt));
          let rq =
            expect_result "poison"
              (request_ok c
                 (compile_req ~id:"p" ~trace_id:"the-poison" ~fault:"crash-worker" loop))
          in
          (match rq.Proto.outcome with
          | Error e ->
              check Alcotest.string "quarantined" Proto.code_quarantined
                e.Verify.Stage_error.code
          | Ok _ -> Alcotest.fail "poison request cannot succeed");
          ignore (expect_result "healthy" (request_ok c (compile_req ~id:"h" loop)));
          (* the anomaly ring has both, by trace id, with latencies *)
          (match request_ok c (Proto.Flight { id = None; anomalies = true }) with
          | Proto.Flight_reply doc -> (
              match Flight.entries_of_json doc with
              | Error e -> Alcotest.failf "flight doc: %s" e
              | Ok (reqs, anoms) ->
                  check Alcotest.int "anomalies only" 0 (List.length reqs);
                  let find tid =
                    match List.find_opt (fun e -> e.Flight.trace_id = tid) anoms with
                    | Some e -> e
                    | None -> Alcotest.failf "anomaly %S not retained" tid
                  in
                  let t = find "the-timeout" in
                  check Alcotest.bool "timeout tagged" true
                    (t.Flight.anomaly = Some "timeout");
                  check Alcotest.bool "latency accounted" true (t.Flight.total_ms >= 0.0);
                  let q = find "the-poison" in
                  check Alcotest.bool "quarantine tagged" true
                    (q.Flight.anomaly = Some "quarantine"))
          | reply -> Alcotest.failf "flight got %s" (Proto.status_of_reply reply));
          (* the healthy compile shows up in the full dump's request ring *)
          match request_ok c (Proto.Flight { id = None; anomalies = false }) with
          | Proto.Flight_reply doc -> (
              match Flight.entries_of_json doc with
              | Error e -> Alcotest.failf "flight doc: %s" e
              | Ok (reqs, _) ->
                  check Alcotest.bool "completed requests retained" true
                    (List.exists (fun e -> e.Flight.id = "h") reqs))
          | reply -> Alcotest.failf "flight got %s" (Proto.status_of_reply reply)
        in
        check Alcotest.int "clean shutdown" 0 code);
    slow_case "bombard-trace-sampling-checks-the-returned-trees" (fun () ->
        let report, code =
          with_daemon ~cache:true @@ fun addr ->
          Serve.Bombard.run
            (Serve.Bombard.config ~clients:2 ~loops:6 ~seed:7 ~check:true
               ~trace_sample:2 addr)
        in
        check Alcotest.int "daemon survived" 0 code;
        check Alcotest.int "every request answered" 0 report.Serve.Bombard.unanswered;
        check Alcotest.(list string) "no protocol errors" []
          report.Serve.Bombard.protocol_errors;
        check Alcotest.(list string) "trees parsed, ids echoed, rungs agreed" []
          report.Serve.Bombard.mismatches;
        check Alcotest.bool "sampling actually traced" true
          (report.Serve.Bombard.traced >= 3);
        check Alcotest.int "harness verdict" 0 (Serve.Bombard.exit_code report));
  ]

let suite =
  [
    ("serve.proto", proto_tests);
    ("serve.admission", admission_tests);
    ("serve.wire", wire_tests);
    ("serve.stats", stats_tests);
    ("serve.flight", flight_tests);
    ("serve.metrics", metrics_tests);
    ("serve.daemon", daemon_tests);
  ]
