open Testlib

(* The instrumentation layer (lib/obs): span-tree construction, counter
   and gauge aggregation, fake-clock determinism, the exporter
   round-trip contract, and the ?obs probes threaded through the
   pipeline libraries. *)

let fake_ctx () = Obs.Trace.make ~clock:(Obs.Clock.fake ()) ()

let clock_tests =
  [
    case "fake-clock-steps" (fun () ->
        let c = Obs.Clock.fake () in
        check (Alcotest.float 1e-9) "first read" 0.0 (c ());
        check (Alcotest.float 1e-9) "second read" 0.001 (c ());
        check (Alcotest.float 1e-9) "third read" 0.002 (c ()));
    case "fake-clock-custom" (fun () ->
        let c = Obs.Clock.fake ~start:5.0 ~step:0.5 () in
        check (Alcotest.float 1e-9) "start" 5.0 (c ());
        check (Alcotest.float 1e-9) "stepped" 5.5 (c ()));
    case "frozen-clock" (fun () ->
        let c = Obs.Clock.frozen 42.0 in
        check (Alcotest.float 1e-9) "frozen" 42.0 (c ());
        check (Alcotest.float 1e-9) "still frozen" 42.0 (c ()));
  ]

let span_tests =
  [
    case "none-context-is-identity" (fun () ->
        let r = Obs.Trace.span None "x" (fun () -> 41 + 1) in
        check Alcotest.int "result passes through" 42 r);
    case "span-nesting" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.span obs "outer" (fun () ->
            Obs.Trace.span obs "a" (fun () -> ());
            Obs.Trace.span obs "b" (fun () ->
                Obs.Trace.span obs "b.1" (fun () -> ())));
        (match Obs.Trace.roots t with
        | [ outer ] ->
            check Alcotest.string "root name" "outer" outer.Obs.Trace.name;
            check (Alcotest.list Alcotest.string) "children in order" [ "a"; "b" ]
              (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name)
                 outer.Obs.Trace.children);
            (match outer.Obs.Trace.children with
            | [ _; b ] ->
                check (Alcotest.list Alcotest.string) "grandchild" [ "b.1" ]
                  (List.map (fun (s : Obs.Trace.span) -> s.Obs.Trace.name)
                     b.Obs.Trace.children)
            | _ -> Alcotest.fail "expected two children")
        | roots -> Alcotest.failf "expected one root, got %d" (List.length roots));
        (* pre-order walk covers the whole forest with depths *)
        let seen = ref [] in
        Obs.Trace.iter_spans
          (fun ~depth s -> seen := (depth, s.Obs.Trace.name) :: !seen)
          t;
        check
          (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.string))
          "pre-order with depth"
          [ (0, "outer"); (1, "a"); (1, "b"); (2, "b.1") ]
          (List.rev !seen));
    case "span-closes-on-raise" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        (try Obs.Trace.span obs "boom" (fun () -> failwith "x") with Failure _ -> ());
        match Obs.Trace.roots t with
        | [ s ] ->
            check Alcotest.bool "closed (duration > 0)" true (Obs.Trace.duration s > 0.0)
        | _ -> Alcotest.fail "span lost on raise");
    case "fake-clock-durations-deterministic" (fun () ->
        (* Every span costs exactly two clock reads: 1ms under the
           default fake step, regardless of how long the body runs. *)
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.span obs "p" (fun () ->
            Obs.Trace.span obs "q" (fun () -> ignore (Sys.opaque_identity (List.init 100 Fun.id))));
        let p = List.hd (Obs.Trace.roots t) in
        let q = List.hd p.Obs.Trace.children in
        check (Alcotest.float 1e-9) "leaf duration" 0.001 (Obs.Trace.duration q);
        check (Alcotest.float 1e-9) "parent duration" 0.003 (Obs.Trace.duration p));
    case "add-attr-lands-on-innermost" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.span obs "s" (fun () -> Obs.Trace.add_attr obs "k" "v");
        let s = List.hd (Obs.Trace.roots t) in
        check
          (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
          "attr recorded" [ ("k", "v") ] s.Obs.Trace.attrs);
    case "add-attr-outside-span-ignored" (fun () ->
        let t = fake_ctx () in
        Obs.Trace.add_attr (Some t) "k" "v";
        check Alcotest.int "no roots" 0 (List.length (Obs.Trace.roots t)));
    case "totals-by-name-aggregates" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.span obs "stage" (fun () -> ());
        Obs.Trace.span obs "stage" (fun () -> ());
        Obs.Trace.span obs "other" (fun () -> ());
        match Obs.Trace.totals_by_name t with
        | [ ("other", od, oc); ("stage", sd, sc) ] ->
            check Alcotest.int "stage calls" 2 sc;
            check Alcotest.int "other calls" 1 oc;
            check (Alcotest.float 1e-9) "stage total" 0.002 sd;
            check (Alcotest.float 1e-9) "other total" 0.001 od
        | l -> Alcotest.failf "unexpected totals (%d entries)" (List.length l));
  ]

let counter_tests =
  [
    case "incr-aggregates" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.incr obs Obs.Counter.Sched_placements 2;
        Obs.Trace.incr obs Obs.Counter.Sched_placements 3;
        check Alcotest.int "summed" 5
          (Obs.Trace.counter_value t Obs.Counter.Sched_placements));
    case "labelled-cells-are-distinct" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.incr obs ~label:"0->1" Obs.Counter.Copies_inserted 2;
        Obs.Trace.incr obs ~label:"1->0" Obs.Counter.Copies_inserted 1;
        check Alcotest.int "cell 0->1" 2
          (Obs.Trace.counter_value t ~label:"0->1" Obs.Counter.Copies_inserted);
        check Alcotest.int "cell 1->0" 1
          (Obs.Trace.counter_value t ~label:"1->0" Obs.Counter.Copies_inserted);
        check Alcotest.int "total over labels" 3
          (Obs.Trace.counter_total t Obs.Counter.Copies_inserted));
    case "untouched-counter-is-zero" (fun () ->
        let t = fake_ctx () in
        check Alcotest.int "zero" 0 (Obs.Trace.counter_value t Obs.Counter.Sched_evictions));
    case "gauge-keeps-last-and-max" (fun () ->
        let t = fake_ctx () in
        let obs = Some t in
        Obs.Trace.set_gauge obs Obs.Counter.Clustered_mii 4;
        Obs.Trace.set_gauge obs Obs.Counter.Clustered_mii 9;
        Obs.Trace.set_gauge obs Obs.Counter.Clustered_mii 2;
        match Obs.Trace.gauges t with
        | [ (name, None, last, mx) ] ->
            check Alcotest.string "name" "sched.clustered_mii" name;
            check Alcotest.int "last" 2 last;
            check Alcotest.int "max" 9 mx
        | _ -> Alcotest.fail "expected one gauge cell");
    case "counter-names-unique" (fun () ->
        let names = List.map Obs.Counter.name Obs.Counter.all in
        check Alcotest.int "no duplicates" (List.length names)
          (List.length (List.sort_uniq compare names)));
  ]

let json_tests =
  [
    case "round-trip-values" (fun () ->
        let v =
          Obs.Json.Obj
            [
              ("s", Obs.Json.Str "a\"b\\c\nd");
              ("n", Obs.Json.Num 0.001);
              ("i", Obs.Json.Num 42.0);
              ("b", Obs.Json.Bool true);
              ("z", Obs.Json.Null);
              ("l", Obs.Json.List [ Obs.Json.Num 1.0; Obs.Json.Str "x" ]);
            ]
        in
        match Obs.Json.of_string (Obs.Json.to_string v) with
        | Ok v' -> check Alcotest.bool "round-trips" true (v = v')
        | Error e -> Alcotest.failf "parse failed: %s" e);
    case "parse-rejects-garbage" (fun () ->
        check Alcotest.bool "trailing garbage" true
          (Result.is_error (Obs.Json.of_string "{} x"));
        check Alcotest.bool "unterminated" true
          (Result.is_error (Obs.Json.of_string "{\"a\": ")));
    case "control-char-escapes" (fun () ->
        (* every byte below 0x20 must leave the encoder escaped: the
           short forms for the common ones, \u00XX for the rest *)
        check Alcotest.string "backspace and formfeed shortforms" "\"\\b\\f\""
          (Obs.Json.to_string (Obs.Json.Str "\b\012"));
        check Alcotest.string "other controls as \\u" "\"\\u0000\\u001f\""
          (Obs.Json.to_string (Obs.Json.Str "\x00\x1f"));
        String.iter
          (fun c ->
            let s = Obs.Json.to_string (Obs.Json.Str (String.make 1 c)) in
            String.iter
              (fun c' ->
                check Alcotest.bool "no raw control byte in output" true
                  (Char.code c' >= 0x20))
              s)
          (String.init 0x20 Char.chr));
    case "unicode-escape-decodes-to-utf8" (fun () ->
        check Alcotest.bool "BMP escape" true
          (Obs.Json.of_string "\"\\u2713\"" = Ok (Obs.Json.Str "\xe2\x9c\x93"));
        check Alcotest.bool "latin-1 escape" true
          (Obs.Json.of_string "\"\\u00e9\"" = Ok (Obs.Json.Str "\xc3\xa9"));
        check Alcotest.bool "ascii escape" true
          (Obs.Json.of_string "\"\\u0041\"" = Ok (Obs.Json.Str "A")));
  ]

(* Strings stressing the encoder's escape table: control bytes, the
   JSON metacharacters, plain ASCII and multi-byte UTF-8 sequences. *)
let gen_tricky_string =
  let open QCheck2.Gen in
  let token =
    oneof
      [
        map (fun c -> String.make 1 (Char.chr c)) (int_range 0 0x1f);
        oneofl [ "\""; "\\"; "/"; "\n"; "\r"; "\t"; "\b"; "\012" ];
        map (String.make 1) printable;
        oneofl [ "\xc3\xa9" (* é *); "\xe2\x9c\x93" (* ✓ *); "\xf0\x9f\x90\xab" (* 🐫 *) ];
      ]
  in
  map (String.concat "") (list_size (int_range 0 24) token)

let json_property_tests =
  [
    qcheck ~count:500 "string-round-trips" gen_tricky_string (fun s ->
        Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Str s)) = Ok (Obs.Json.Str s));
    qcheck ~count:500 "encoded-string-has-no-raw-controls" gen_tricky_string (fun s ->
        String.for_all
          (fun c -> Char.code c >= 0x20)
          (Obs.Json.to_string (Obs.Json.Str s)));
    qcheck ~count:200 "nested-values-round-trip"
      QCheck2.Gen.(pair gen_tricky_string (pair gen_tricky_string (int_range 0 1000)))
      (fun (k, (s, i)) ->
        let v =
          Obs.Json.Obj
            [
              (k, Obs.Json.Str s);
              ("l", Obs.Json.List [ Obs.Json.Str k; Obs.Json.Num (float_of_int i) ]);
            ]
        in
        Obs.Json.of_string (Obs.Json.to_string v) = Ok v);
  ]

let jstr k v = Option.bind (Obs.Json.member k v) Obs.Json.to_str
let jnum k v = Option.bind (Obs.Json.member k v) Obs.Json.to_num

let export_tests =
  let traced_pipeline clock =
    let t = Obs.Trace.make ~clock () in
    let loop = Workload.Kernels.daxpy ~unroll:2 in
    (match Partition.Driver.pipeline ~obs:t ~machine:m2x8e loop with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "pipeline failed: %s" (Verify.Stage_error.to_string e));
    t
  in
  [
    case "tree-deterministic-under-fake-clock" (fun () ->
        let a = Obs.Export.tree (traced_pipeline (Obs.Clock.fake ())) in
        let b = Obs.Export.tree (traced_pipeline (Obs.Clock.fake ())) in
        check Alcotest.string "byte-identical" a b;
        check Alcotest.bool "has pipeline root" true (contains a "pipeline loop=daxpy-u2");
        check Alcotest.bool "reports counters" true (contains a "sched.placements"));
    case "jsonl-round-trips-through-parser" (fun () ->
        let t = traced_pipeline (Obs.Clock.fake ()) in
        match Obs.Export.parse_jsonl (Obs.Export.jsonl t) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok events ->
            check Alcotest.bool "non-empty" true (events <> []);
            let spans = List.filter (fun v -> jstr "type" v = Some "span") events in
            let counters = List.filter (fun v -> jstr "type" v = Some "counter") events in
            check Alcotest.bool "has spans" true (spans <> []);
            check Alcotest.bool "has counters" true (counters <> []);
            (* every span event carries name/depth/start/dur *)
            List.iter
              (fun v ->
                check Alcotest.bool "span has name" true (jstr "name" v <> None);
                check Alcotest.bool "span has dur" true (jnum "dur" v <> None))
              spans);
    case "chrome-trace-is-valid-json" (fun () ->
        let t = traced_pipeline (Obs.Clock.fake ()) in
        match Obs.Json.of_string (Obs.Export.chrome t) with
        | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
        | Ok doc -> (
            check Alcotest.bool "displayTimeUnit" true
              (jstr "displayTimeUnit" doc = Some "ms");
            match Option.bind (Obs.Json.member "traceEvents" doc) Obs.Json.to_list with
            | None -> Alcotest.fail "no traceEvents list"
            | Some events ->
                check Alcotest.bool "has events" true (events <> []);
                List.iter
                  (fun e ->
                    let ph = jstr "ph" e in
                    check Alcotest.bool "phase is X or C" true
                      (ph = Some "X" || ph = Some "C");
                    check Alcotest.bool "has ts" true (jnum "ts" e <> None))
                  events));
  ]

let probe_tests =
  [
    case "pipeline-result-unchanged-by-obs" (fun () ->
        (* The whole point of the one-branch probes: instrumented and
           uninstrumented runs compute identical results. *)
        let loop = Workload.Kernels.hydro ~unroll:2 in
        let t = fake_ctx () in
        match
          ( Partition.Driver.pipeline ~machine:m4x4e loop,
            Partition.Driver.pipeline ~obs:t ~machine:m4x4e loop )
        with
        | Ok a, Ok b ->
            check Alcotest.int "same II"
              a.Partition.Driver.clustered.Sched.Modulo.ii
              b.Partition.Driver.clustered.Sched.Modulo.ii;
            check Alcotest.int "same copies" a.Partition.Driver.n_copies
              b.Partition.Driver.n_copies;
            check Alcotest.bool "same assignment" true
              (Ir.Vreg.Map.equal ( = ) a.Partition.Driver.assignment
                 b.Partition.Driver.assignment)
        | _ -> Alcotest.fail "pipeline failed");
    case "scheduler-effort-stats-populated" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:4 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            check Alcotest.bool "placements counted" true
              (o.Sched.Modulo.placements_tried >= Ir.Loop.size loop);
            check Alcotest.bool "at least one II tried" true (o.Sched.Modulo.iis_tried >= 1);
            check Alcotest.bool "evictions non-negative" true (o.Sched.Modulo.evictions >= 0));
    case "swing-effort-stats-populated" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Swing.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            check Alcotest.bool "placements counted" true
              (o.Sched.Modulo.placements_tried >= Ir.Loop.size loop);
            check Alcotest.int "swing never evicts" 0 o.Sched.Modulo.evictions;
            check Alcotest.int "swing has no budget" 0 o.Sched.Modulo.budget_exhausted);
    case "pipeline-trace-counts-match-result" (fun () ->
        let loop = Workload.Kernels.hydro ~unroll:2 in
        let t = fake_ctx () in
        match Partition.Driver.pipeline ~obs:t ~machine:m4x4e loop with
        | Error e -> Alcotest.failf "pipeline: %s" (Verify.Stage_error.to_string e)
        | Ok r ->
            check Alcotest.int "copies counter matches result"
              r.Partition.Driver.n_copies
              (Obs.Trace.counter_total t Obs.Counter.Copies_inserted);
            check Alcotest.bool "greedy decisions counted" true
              (Obs.Trace.counter_value t Obs.Counter.Greedy_decisions > 0);
            check Alcotest.bool "placements counted" true
              (Obs.Trace.counter_value t Obs.Counter.Sched_placements > 0));
    case "alloc-gauges-and-rounds" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let t = fake_ctx () in
        match Partition.Driver.pipeline ~machine:m2x8e loop with
        | Error e -> Alcotest.failf "pipeline: %s" (Verify.Stage_error.to_string e)
        | Ok r -> (
            match
              Regalloc.Alloc.allocate_loop ~obs:t ~machine:m2x8e
                ~assignment:r.Partition.Driver.assignment r.Partition.Driver.rewritten
            with
            | Error e -> Alcotest.failf "alloc: %s" (Verify.Stage_error.to_string e)
            | Ok a ->
                check Alcotest.int "rounds counter" a.Regalloc.Alloc.rounds
                  (Obs.Trace.counter_value t Obs.Counter.Alloc_rounds);
                check Alcotest.bool "bank0 conflict-node gauge set" true
                  (List.exists
                     (fun (name, label, _, _) ->
                       name = "alloc.conflict_nodes" && label = Some "bank0")
                     (Obs.Trace.gauges t))));
    case "ladder-rung-counters" (fun () ->
        let t = fake_ctx () in
        match Robust.Driver.run ~obs:t ~machine:m4x4e (Workload.Kernels.daxpy ~unroll:2) with
        | Error e -> Alcotest.failf "ladder: %s" (Verify.Stage_error.to_string e)
        | Ok r ->
            let rung = Robust.Driver.rung_name r.Robust.Driver.rung in
            check Alcotest.int "successful rung entered once" 1
              (Obs.Trace.counter_value t ~label:rung Obs.Counter.Ladder_rung_entered);
            check Alcotest.int "successful rung never failed" 0
              (Obs.Trace.counter_value t ~label:rung Obs.Counter.Ladder_rung_failed));
  ]

let event_tests =
  let traced loop machine =
    let t = fake_ctx () in
    match Partition.Driver.pipeline ~obs:t ~machine loop with
    | Ok r -> (t, r)
    | Error e -> Alcotest.failf "pipeline: %s" (Verify.Stage_error.to_string e)
  in
  let count p t = List.length (List.filter p (Obs.Trace.events t)) in
  [
    case "event-counts-agree-with-counters" (fun () ->
        (* Counters and events are emitted at the same decision sites;
           their totals must tell one story. *)
        let t, r = traced (Workload.Kernels.hydro ~unroll:2) m8x2e in
        check Alcotest.int "greedy.place(unpinned) = greedy.decisions"
          (Obs.Trace.counter_value t Obs.Counter.Greedy_decisions)
          (count (function Obs.Events.Greedy_place { pinned; _ } -> not pinned | _ -> false) t);
        check Alcotest.int "greedy.place(pinned) = greedy.pinned"
          (Obs.Trace.counter_value t Obs.Counter.Greedy_pinned)
          (count (function Obs.Events.Greedy_place { pinned; _ } -> pinned | _ -> false) t);
        check Alcotest.int "greedy.place(tied) = greedy.tie_breaks"
          (Obs.Trace.counter_value t Obs.Counter.Greedy_tie_breaks)
          (count
             (function Obs.Events.Greedy_place { ties; _ } -> ties <> [] | _ -> false)
             t);
        check Alcotest.int "sched.evict events = sched.evictions"
          (Obs.Trace.counter_total t Obs.Counter.Sched_evictions)
          (count (function Obs.Events.Sched_evict _ -> true | _ -> false) t);
        check Alcotest.int "sched.escalate events = sched.ii_escalations"
          (Obs.Trace.counter_total t Obs.Counter.Sched_ii_escalations)
          (count (function Obs.Events.Ii_escalate _ -> true | _ -> false) t);
        check Alcotest.int "copies.route events = copies.inserted total"
          (Obs.Trace.counter_total t Obs.Counter.Copies_inserted)
          (count (function Obs.Events.Copy_route _ -> true | _ -> false) t);
        check Alcotest.int "copies.route events = result copies"
          r.Partition.Driver.n_copies
          (count (function Obs.Events.Copy_route _ -> true | _ -> false) t);
        check Alcotest.int "one greedy.penalty preamble" 1
          (count (function Obs.Events.Greedy_penalty _ -> true | _ -> false) t));
    case "event-count-matches-stream" (fun () ->
        let t, _ = traced (Workload.Kernels.daxpy ~unroll:2) m4x4e in
        check Alcotest.int "event_count = |events|"
          (List.length (Obs.Trace.events t))
          (Obs.Trace.event_count t);
        check Alcotest.bool "stream non-empty" true (Obs.Trace.event_count t > 0));
    case "jsonl-carries-every-event" (fun () ->
        let t, _ = traced (Workload.Kernels.daxpy ~unroll:2) m4x4e in
        match Obs.Export.parse_jsonl (Obs.Export.jsonl t) with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok lines ->
            let events = List.filter (fun v -> jstr "type" v = Some "event") lines in
            check Alcotest.int "one jsonl line per event" (Obs.Trace.event_count t)
              (List.length events);
            List.iter
              (fun v ->
                check Alcotest.bool "event line has a name" true (jstr "name" v <> None))
              events);
    case "alloc-spill-events-match-counter" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let t = fake_ctx () in
        match Partition.Driver.pipeline ~machine:m2x8e loop with
        | Error e -> Alcotest.failf "pipeline: %s" (Verify.Stage_error.to_string e)
        | Ok r -> (
            match
              Regalloc.Alloc.allocate_loop ~obs:t ~machine:m2x8e
                ~assignment:r.Partition.Driver.assignment r.Partition.Driver.rewritten
            with
            | Error e -> Alcotest.failf "alloc: %s" (Verify.Stage_error.to_string e)
            | Ok _ ->
                check Alcotest.int "alloc.spill events = spilled_registers"
                  (Obs.Trace.counter_total t Obs.Counter.Spilled_registers)
                  (count (function Obs.Events.Spill _ -> true | _ -> false) t);
                check Alcotest.bool "pressure reported for some bank" true
                  (count (function Obs.Events.Alloc_pressure _ -> true | _ -> false) t
                  >= 1)));
    case "event-json-round-trips" (fun () ->
        let t, _ = traced (Workload.Kernels.hydro ~unroll:2) m8x2e in
        Obs.Trace.iter_events
          (fun e ->
            let j = Obs.Events.to_json e in
            match Obs.Json.of_string (Obs.Json.to_string j) with
            | Ok j' -> check Alcotest.bool "event survives print/parse" true (j = j')
            | Error err -> Alcotest.failf "event json: %s" err)
          t);
    case "no-obs-emits-nothing" (fun () ->
        (* emit through None must be a no-op, not an error *)
        Obs.Trace.emit None (Obs.Events.Ii_escalate { ii = 3; cause = "resource" });
        let t = fake_ctx () in
        check Alcotest.int "fresh context has no events" 0 (Obs.Trace.event_count t));
  ]

let histogram_tests =
  let exact = Alcotest.float 1e-9 in
  [
    case "empty-histogram-is-zero" (fun () ->
        let h = Obs.Histogram.make () in
        check Alcotest.bool "empty" true (Obs.Histogram.is_empty h);
        check Alcotest.int "count" 0 (Obs.Histogram.count h);
        check exact "p50" 0.0 (Obs.Histogram.p50 h);
        check exact "max" 0.0 (Obs.Histogram.max_value h));
    case "count-sum-min-max-are-exact" (fun () ->
        let h = Obs.Histogram.make () in
        List.iter (Obs.Histogram.record h) [ 3.0; 0.25; 120.0; 0.25; 7.5 ];
        check Alcotest.int "count" 5 (Obs.Histogram.count h);
        check exact "sum" 131.0 (Obs.Histogram.sum h);
        check exact "mean" 26.2 (Obs.Histogram.mean h);
        check exact "min" 0.25 (Obs.Histogram.min_value h);
        check exact "max" 120.0 (Obs.Histogram.max_value h));
    case "quantile-within-one-bucket-width" (fun () ->
        let h = Obs.Histogram.make () in
        let samples = List.init 1000 (fun i -> 0.1 +. (float_of_int i *. 0.37)) in
        List.iter (Obs.Histogram.record h) samples;
        let sorted = List.sort compare samples |> Array.of_list in
        List.iter
          (fun q ->
            let true_v = sorted.(int_of_float (ceil (q *. 1000.0)) - 1) in
            let est = Obs.Histogram.quantile h q in
            let tol = Obs.Histogram.bucket_width true_v +. 1e-9 in
            if Float.abs (est -. true_v) > tol then
              Alcotest.failf "q%.2f: estimate %g vs true %g (tol %g)" q est true_v tol)
          [ 0.5; 0.9; 0.99; 1.0 ]);
    case "quantiles-clamped-to-observed-range" (fun () ->
        let h = Obs.Histogram.make () in
        Obs.Histogram.record h 5.0;
        check exact "p50 of singleton" 5.0 (Obs.Histogram.quantile h 0.5);
        check exact "p99 of singleton" 5.0 (Obs.Histogram.quantile h 0.99));
    case "nan-and-negative-clamp-to-zero" (fun () ->
        let h = Obs.Histogram.make () in
        Obs.Histogram.record h Float.nan;
        Obs.Histogram.record h (-3.0);
        check Alcotest.int "both recorded" 2 (Obs.Histogram.count h);
        check exact "sum" 0.0 (Obs.Histogram.sum h);
        check exact "max" 0.0 (Obs.Histogram.max_value h));
    case "summary-json-shape" (fun () ->
        let h = Obs.Histogram.make () in
        List.iter (Obs.Histogram.record h) [ 1.0; 2.0; 4.0 ];
        let j = Obs.Histogram.summary_json h in
        check Alcotest.(option int) "count" (Some 3)
          (Option.bind (Obs.Json.member "count" j) Obs.Json.to_int);
        List.iter
          (fun k ->
            check Alcotest.bool k true
              (Option.bind (Obs.Json.member k j) Obs.Json.to_num <> None))
          [ "sum"; "p50"; "p90"; "p99"; "max" ]);
    (* The satellite property: merging two histograms answers quantiles
       within one bucket width of one histogram fed every sample. *)
    qcheck ~count:300 "merge-quantiles-within-one-bucket-width"
      QCheck2.Gen.(
        pair
          (list_size (0 -- 60) (float_bound_exclusive 100000.0))
          (list_size (0 -- 60) (float_bound_exclusive 100000.0)))
      (fun (xs, ys) ->
        let record l =
          let h = Obs.Histogram.make () in
          List.iter (Obs.Histogram.record h) l;
          h
        in
        let merged = record xs in
        Obs.Histogram.merge ~into:merged (record ys);
        let whole = record (xs @ ys) in
        Obs.Histogram.count merged = Obs.Histogram.count whole
        && List.for_all
             (fun q ->
               let qm = Obs.Histogram.quantile merged q in
               let qw = Obs.Histogram.quantile whole q in
               Float.abs (qm -. qw) <= Obs.Histogram.bucket_width qw +. 1e-9)
             [ 0.5; 0.9; 0.99 ]);
  ]

let window_tests =
  let manual () =
    let now = ref 0.0 in
    let w = Obs.Window.make ~clock:(fun () -> !now) () in
    (now, w)
  in
  [
    case "rate-over-lookbacks" (fun () ->
        let now, w = manual () in
        now := 0.5;
        Obs.Window.add ~n:5 w;
        now := 5.0;
        Obs.Window.add ~n:5 w;
        check Alcotest.int "total 10s" 10 (Obs.Window.total ~over_s:10.0 w);
        check (Alcotest.float 1e-9) "rate 10s" 1.0 (Obs.Window.rate ~over_s:10.0 w);
        check (Alcotest.float 1e-9) "rate 60s" (10.0 /. 60.0)
          (Obs.Window.rate ~over_s:60.0 w));
    case "old-slices-expire" (fun () ->
        let now, w = manual () in
        now := 0.5;
        Obs.Window.add ~n:5 w;
        now := 5.0;
        Obs.Window.add ~n:7 w;
        now := 64.9;
        (* 60-slice lookback from slice 64 covers slices 5..64: the
           events at slice 0 are gone, those at slice 5 remain. *)
        check Alcotest.int "total 60s" 7 (Obs.Window.total ~over_s:60.0 w);
        check Alcotest.int "total 10s" 0 (Obs.Window.total ~over_s:10.0 w);
        check Alcotest.int "lifetime" 12 (Obs.Window.lifetime_total w));
    case "ring-cell-reuse-clears-stale-count" (fun () ->
        let now, w = manual () in
        Obs.Window.add ~n:3 w;
        now := 60.2;
        (* slice 60 lands on the same ring cell as slice 0 *)
        Obs.Window.add ~n:1 w;
        check Alcotest.int "only the new slice counts" 1
          (Obs.Window.total ~over_s:60.0 w));
    case "fake-clock-windows-are-byte-identical" (fun () ->
        (* The satellite determinism check: the same op sequence under
           the same fake clock renders the same bytes, run after run. *)
        let run () =
          let clock = Obs.Clock.fake ~start:0.0 ~step:0.25 () in
          let w = Obs.Window.make ~clock () in
          for i = 1 to 40 do
            Obs.Window.add ~n:(1 + (i mod 3)) w
          done;
          Printf.sprintf "%s %s %s"
            (Obs.Json.num_to_string (Obs.Window.rate ~over_s:10.0 w))
            (Obs.Json.num_to_string (Obs.Window.rate ~over_s:60.0 w))
            (string_of_int (Obs.Window.total ~over_s:10.0 w))
        in
        check Alcotest.string "byte-identical" (run ()) (run ()));
    case "invalid-geometry-rejected" (fun () ->
        let clock = Obs.Clock.frozen 0.0 in
        check Alcotest.bool "zero slices" true
          (match Obs.Window.make ~slices:0 ~clock () with
          | exception Invalid_argument _ -> true
          | _ -> false);
        check Alcotest.bool "zero slice width" true
          (match Obs.Window.make ~slice_s:0.0 ~clock () with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let trace_id_tests =
  [
    case "seeded-streams-are-deterministic" (fun () ->
        let g1 = Obs.Trace_id.gen ~seed:0 in
        let g2 = Obs.Trace_id.gen ~seed:0 in
        let a = List.init 8 (fun _ -> Obs.Trace_id.next g1) in
        let b = List.init 8 (fun _ -> Obs.Trace_id.next g2) in
        check Alcotest.(list string) "equal seeds, equal ids" a b;
        (* the first id of the seed-0 stream is pinned: the cram
           transcripts depend on it *)
        check Alcotest.string "splitmix64(0) rendered" "e220a8397b1dcdaf" (List.hd a);
        let g3 = Obs.Trace_id.gen ~seed:1 in
        check Alcotest.bool "different seed, different stream" true
          (Obs.Trace_id.next g3 <> List.hd a));
    case "generated-ids-are-valid-hex16" (fun () ->
        let g = Obs.Trace_id.gen ~seed:42 in
        for _ = 1 to 64 do
          let t = Obs.Trace_id.next g in
          check Alcotest.int "16 digits" 16 (String.length t);
          check Alcotest.bool "lowercase hex" true
            (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) t);
          check Alcotest.bool "valid" true (Obs.Trace_id.is_valid t)
        done);
    case "client-correlator-validation" (fun () ->
        List.iter
          (fun s ->
            check Alcotest.bool (Printf.sprintf "%S accepted" s) true
              (Obs.Trace_id.is_valid s))
          [ "a"; "req-7"; "my.trace_1"; "ABC-def.123"; String.make 64 'x';
            Obs.Trace_id.placeholder ];
        List.iter
          (fun s ->
            check Alcotest.bool (Printf.sprintf "%S rejected" s) false
              (Obs.Trace_id.is_valid s))
          [ ""; "has space"; "new\nline"; "quote\""; String.make 65 'x'; "é" ]);
  ]

let log_tests =
  [
    case "jsonl-bytes-are-deterministic-under-the-fake-clock" (fun () ->
        let drive () =
          let buf = Buffer.create 256 in
          let t =
            Obs.Log.make ~level:Obs.Log.Debug ~format:Obs.Log.Jsonl
              ~clock:(Obs.Clock.fake ()) ~sink:(fun l -> Buffer.add_string buf (l ^ "\n")) ()
          in
          Obs.Log.info t "daemon up";
          Obs.Log.debug t ~trace_id:"abc123" ~fields:[ ("rung", Obs.Json.Str "greedy") ]
            "request admitted";
          Obs.Log.error t ~trace_id:"abc123" "request failed";
          Buffer.contents buf
        in
        let a = drive () in
        check Alcotest.string "two identically-driven loggers agree" a (drive ());
        check Alcotest.string "pinned bytes"
          ("{\"ts\":0,\"level\":\"info\",\"msg\":\"daemon up\",\"trace_id\":\"-\"}\n"
          ^ "{\"ts\":0.001,\"level\":\"debug\",\"msg\":\"request admitted\",\
             \"trace_id\":\"abc123\",\"rung\":\"greedy\"}\n"
          ^ "{\"ts\":0.002,\"level\":\"error\",\"msg\":\"request failed\",\
             \"trace_id\":\"abc123\"}\n")
          a;
        (* every line parses back *)
        String.split_on_char '\n' a
        |> List.filter (fun l -> l <> "")
        |> List.iter (fun l ->
               match Obs.Json.of_string l with
               | Ok (Obs.Json.Obj _) -> ()
               | _ -> Alcotest.failf "line is not a JSON object: %s" l));
    case "suppressed-lines-consume-no-clock-ticks" (fun () ->
        let buf = Buffer.create 64 in
        let t =
          Obs.Log.make ~level:Obs.Log.Warn ~format:Obs.Log.Jsonl
            ~clock:(Obs.Clock.fake ()) ~sink:(fun l -> Buffer.add_string buf (l ^ "\n")) ()
        in
        Obs.Log.debug t "dropped";
        Obs.Log.info t "dropped too";
        Obs.Log.warn t "kept";
        check Alcotest.string "first kept line still reads ts 0"
          "{\"ts\":0,\"level\":\"warn\",\"msg\":\"kept\",\"trace_id\":\"-\"}\n"
          (Buffer.contents buf));
    case "text-format-is-the-bare-message" (fun () ->
        let buf = Buffer.create 64 in
        let t =
          Obs.Log.make ~sink:(fun l -> Buffer.add_string buf (l ^ "\n")) ()
        in
        Obs.Log.info t ~trace_id:"ignored" ~fields:[ ("k", Obs.Json.Num 1.0) ]
          "rbp serve: listening";
        check Alcotest.string "byte-identical to the prints it replaced"
          "rbp serve: listening\n" (Buffer.contents buf));
    case "level-filtering-and-names" (fun () ->
        let t = Obs.Log.make ~level:Obs.Log.Info () in
        check Alcotest.bool "debug off" false (Obs.Log.enabled t Obs.Log.Debug);
        check Alcotest.bool "info on" true (Obs.Log.enabled t Obs.Log.Info);
        check Alcotest.bool "error on" true (Obs.Log.enabled t Obs.Log.Error);
        List.iter
          (fun l ->
            check Alcotest.bool "name round-trips" true
              (Obs.Log.level_of_name (Obs.Log.level_name l) = Some l))
          [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ];
        check Alcotest.bool "unknown name rejected" true
          (Obs.Log.level_of_name "loud" = None));
  ]

let span_codec_tests =
  [
    case "span-trees-round-trip-through-json" (fun () ->
        let tr = fake_ctx () in
        Obs.Trace.span (Some tr) ~attrs:[ ("loop", "l1") ] "ladder" (fun () ->
            Obs.Trace.span (Some tr) ~attrs:[ ("rung", "greedy") ] "rung" (fun () ->
                Obs.Trace.span (Some tr) "alloc" (fun () -> ()));
            Obs.Trace.span (Some tr) "verify" (fun () -> ()));
        let j = Obs.Export.trace_json tr in
        (match Obs.Json.member "truncated" j with
        | Some (Obs.Json.Bool false) -> ()
        | _ -> Alcotest.fail "untruncated tree must say so");
        match Obs.Export.trace_spans_of_json j with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok [ root ] ->
            check Alcotest.string "root name" "ladder" root.Obs.Trace.name;
            check Alcotest.int "children preserved" 2 (List.length root.Obs.Trace.children);
            check Alcotest.bool "attrs preserved" true
              (List.mem_assoc "loop" root.Obs.Trace.attrs)
        | Ok l -> Alcotest.failf "expected one root, got %d" (List.length l));
    case "span-cap-truncates-pre-order" (fun () ->
        let tr = fake_ctx () in
        Obs.Trace.span (Some tr) "root" (fun () ->
            for i = 1 to 10 do
              Obs.Trace.span (Some tr) (Printf.sprintf "child%d" i) (fun () -> ())
            done);
        let j = Obs.Export.trace_json ~span_cap:3 tr in
        (match Obs.Json.member "truncated" j with
        | Some (Obs.Json.Bool true) -> ()
        | _ -> Alcotest.fail "capped tree must be marked truncated");
        match Obs.Export.trace_spans_of_json j with
        | Error e -> Alcotest.failf "parse: %s" e
        | Ok [ root ] ->
            check Alcotest.int "kept the budget's worth of children" 2
              (List.length root.Obs.Trace.children)
        | Ok l -> Alcotest.failf "expected one root, got %d" (List.length l));
  ]

let suite =
  [
    ("obs.clock", clock_tests);
    ("obs.span", span_tests);
    ("obs.counter", counter_tests);
    ("obs.json", json_tests);
    ("obs.json.properties", json_property_tests);
    ("obs.events", event_tests);
    ("obs.export", export_tests);
    ("obs.trace_id", trace_id_tests);
    ("obs.log", log_tests);
    ("obs.span_codec", span_codec_tests);
    ("obs.histogram", histogram_tests);
    ("obs.window", window_tests);
    ("obs.probes", probe_tests);
  ]
