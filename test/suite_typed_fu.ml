open Testlib

let ozer4 =
  Mach.Machine.make ~name:"4x4-ozer" ~fu_mix:Mach.Machine.ozer_cluster_mix ~clusters:4
    ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ()

let ozer_ideal =
  Mach.Machine.make ~name:"ideal-ozer" ~fu_mix:Mach.Machine.ozer_cluster_mix ~clusters:1
    ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ()

let machine_tests =
  [
    case "mix-must-sum" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Mach.Machine.make ~fu_mix:[ (Mach.Machine.General, 3) ] ~clusters:1
                  ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ());
             false
           with Invalid_argument _ -> true));
    case "duplicate-class-rejected" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Mach.Machine.make
                  ~fu_mix:[ (Mach.Machine.Integer, 2); (Mach.Machine.Integer, 2) ]
                  ~clusters:1 ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ());
             false
           with Invalid_argument _ -> true));
    case "general-only-detection" (fun () ->
        check Alcotest.bool "paper machine" true (Mach.Machine.is_general_only m4x4e);
        check Alcotest.bool "ozer machine" false (Mach.Machine.is_general_only ozer4));
    case "allowed-classes" (fun () ->
        check Alcotest.bool "load needs memory" true
          (Mach.Machine.allowed_classes Mach.Opcode.Load Mach.Rclass.Float
          = [ Mach.Machine.Memory ]);
        check Alcotest.bool "fmul needs float" true
          (Mach.Machine.allowed_classes Mach.Opcode.Mul Mach.Rclass.Float
          = [ Mach.Machine.Float_fu ]);
        check Alcotest.bool "iadd needs integer" true
          (Mach.Machine.allowed_classes Mach.Opcode.Add Mach.Rclass.Int
          = [ Mach.Machine.Integer ]));
  ]

let restab_tests =
  [
    case "specialized-capacity-enforced" (fun () ->
        let t = Sched.Restab.create_modulo ozer4 ~ii:1 in
        let mem_req = Sched.Restab.Fu_typed (0, [ Mach.Machine.Memory ]) in
        (* 1 memory unit; general pool is empty in the ozer mix *)
        Sched.Restab.reserve t ~cycle:0 ~op:0 mem_req;
        check Alcotest.bool "second load does not fit" false
          (Sched.Restab.fits t ~cycle:0 mem_req);
        (* integer units unaffected *)
        check Alcotest.bool "int fits" true
          (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu_typed (0, [ Mach.Machine.Integer ]))));
    case "general-fallback-used" (fun () ->
        let mixed =
          Mach.Machine.make
            ~fu_mix:[ (Mach.Machine.Memory, 1); (Mach.Machine.General, 1) ]
            ~clusters:1 ~fus_per_cluster:2 ~copy_model:Mach.Machine.Embedded ()
        in
        let t = Sched.Restab.create_modulo mixed ~ii:1 in
        let req = Sched.Restab.Fu_typed (0, [ Mach.Machine.Memory ]) in
        Sched.Restab.reserve t ~cycle:0 ~op:0 req;
        (* second memory op takes the General unit *)
        check Alcotest.bool "fallback" true (Sched.Restab.fits t ~cycle:0 req);
        Sched.Restab.reserve t ~cycle:0 ~op:1 req;
        check Alcotest.bool "now full" false (Sched.Restab.fits t ~cycle:0 req));
    case "unsatisfiable-without-class" (fun () ->
        let int_only =
          Mach.Machine.make ~fu_mix:[ (Mach.Machine.Integer, 4) ] ~clusters:1
            ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ()
        in
        let t = Sched.Restab.create_modulo int_only ~ii:1 in
        check Alcotest.bool "memory op can never issue" false
          (Sched.Restab.satisfiable t (Sched.Restab.Fu_typed (0, [ Mach.Machine.Memory ]))));
  ]

let sched_tests =
  [
    case "ozer-kernels-are-valid" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let mii = Ddg.Minii.min_ii ~width:4 ddg in
            match Sched.Modulo.schedule ~machine:ozer_ideal ~mii ddg with
            | None -> Alcotest.failf "%s: no schedule" (Ir.Loop.name loop)
            | Some o -> (
                match
                  Sched.Check.kernel ~machine:ozer_ideal ~cluster_of:all_zero_clusters ~ddg
                    o.Sched.Modulo.kernel
                with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) e))
          (sample_loops ~n:16 ()));
    case "memory-unit-binds-load-heavy-loop" (fun () ->
        (* cmul-u1: 4 loads + 2 stores through 1 memory unit -> II >= 6 *)
        let loop = Workload.Kernels.cmul ~unroll:1 in
        let ddg = Ddg.Graph.of_loop loop in
        let mii = Ddg.Minii.min_ii ~width:4 ddg in
        match Sched.Modulo.schedule ~machine:ozer_ideal ~mii ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o -> check Alcotest.bool "ii >= 6" true (o.Sched.Modulo.ii >= 6));
    case "general-machine-not-slower-than-specialized" (fun () ->
        (* the paper's claim: general units allow >= parallelism *)
        let general4 =
          Mach.Machine.make ~name:"ideal-gen4" ~clusters:1 ~fus_per_cluster:4
            ~copy_model:Mach.Machine.Embedded ()
        in
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let mii = Ddg.Minii.min_ii ~width:4 ddg in
            match
              ( Sched.Modulo.schedule ~machine:general4 ~mii ddg,
                Sched.Modulo.schedule ~machine:ozer_ideal ~mii ddg )
            with
            | Some g, Some s ->
                (* both schedulers are heuristic, so allow one cycle of
                   slack on the direction of the claim *)
                check Alcotest.bool (Ir.Loop.name loop) true
                  (g.Sched.Modulo.ii <= s.Sched.Modulo.ii + 1)
            | _ -> Alcotest.failf "%s failed" (Ir.Loop.name loop))
          (sample_loops ~n:16 ()));
    case "clustered-ozer-pipeline-end-to-end" (fun () ->
        List.iter
          (fun loop ->
            match Partition.Driver.pipeline ~machine:ozer4 loop with
            | Error e ->
                Alcotest.failf "%s: %s" (Ir.Loop.name loop) (Verify.Stage_error.to_string e)
            | Ok r ->
                let ddg =
                  Ddg.Graph.of_loop ~latency:ozer4.Mach.Machine.latency
                    r.Partition.Driver.rewritten
                in
                let cluster_of =
                  match
                    Partition.Driver.cluster_map r.Partition.Driver.assignment
                      r.Partition.Driver.rewritten
                  with
                  | Ok f -> f
                  | Error e -> Alcotest.failf "%s: cluster map: %s" (Ir.Loop.name loop) e
                in
                (match
                   Sched.Check.kernel ~machine:ozer4 ~cluster_of ~ddg
                     r.Partition.Driver.clustered.Sched.Modulo.kernel
                 with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) e);
                (* semantics *)
                let trips = 4 in
                let code =
                  Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                    ~loop:r.Partition.Driver.rewritten ~trips
                in
                let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
                seed_state sa loop;
                seed_state sb loop;
                Ir.Eval.run_loop sa ~trips loop;
                Ir.Eval.run_ops sb (Sched.Expand.ops code);
                if not (mem_equal sa sb) then
                  Alcotest.failf "%s: diverges on ozer machine" (Ir.Loop.name loop))
          (sample_loops ~n:10 ()));
  ]

let suite =
  [
    ("typed.machine", machine_tests);
    ("typed.restab", restab_tests);
    ("typed.sched", sched_tests);
  ]
