(* Aggregated alcotest runner for every library suite. *)
let () =
  Alcotest.run "repro"
    (Suite_util.suite @ Suite_mach.suite @ Suite_ir.suite @ Suite_graphlib.suite
   @ Suite_ddg.suite @ Suite_sched.suite @ Suite_rcg.suite @ Suite_partition.suite
   @ Suite_regalloc.suite @ Suite_workload.suite @ Suite_core.suite
   @ Suite_swing.suite @ Suite_extensions.suite @ Suite_driver_matrix.suite
   @ Suite_edges.suite @ Suite_typed_fu.suite @ Suite_final.suite @ Suite_closing.suite
   @ Suite_integration.suite @ Suite_verify.suite @ Suite_robust.suite
   @ Suite_obs.suite @ Suite_engine.suite @ Suite_analysis.suite
   @ Suite_serve.suite @ Suite_exact.suite)
