open Testlib

let f = Mach.Rclass.Float

let assign_tests =
  [
    case "bank-lookup" (fun () ->
        let a = Partition.Assign.of_list [ (vreg 1, 0); (vreg 2, 3) ] in
        check Alcotest.int "bank" 3 (Partition.Assign.bank a (vreg 2));
        check Alcotest.(option int) "opt" None (Partition.Assign.bank_opt a (vreg 9)));
    case "bank-raises-on-missing" (fun () ->
        let a = Partition.Assign.of_list [] in
        check Alcotest.bool "raises" true
          (try
             ignore (Partition.Assign.bank a (vreg 1));
             false
           with Invalid_argument _ -> true));
    case "cluster-of-op-uses-dst" (fun () ->
        let a = Partition.Assign.of_list [ (vreg 1, 2); (vreg 2, 0) ] in
        let op =
          Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2 ] ~id:0 ~opcode:Mach.Opcode.Neg ~cls:f ()
        in
        check Alcotest.int "dst bank" 2 (Partition.Assign.cluster_of_op a op));
    case "cluster-of-store-uses-value" (fun () ->
        let a = Partition.Assign.of_list [ (vreg 1, 3) ] in
        let op =
          Ir.Op.make ~srcs:[ vreg 1 ] ~addr:(Ir.Addr.element "x") ~id:0
            ~opcode:Mach.Opcode.Store ~cls:f ()
        in
        check Alcotest.int "src bank" 3 (Partition.Assign.cluster_of_op a op));
    case "counts" (fun () ->
        let a = Partition.Assign.of_list [ (vreg 1, 0); (vreg 2, 0); (vreg 3, 1) ] in
        check Alcotest.(array int) "counts" [| 2; 1; 0; 0 |] (Partition.Assign.counts ~banks:4 a));
    case "copies-needed" (fun () ->
        (* op on bank 0 reading a bank-1 register: one copy *)
        let a = Partition.Assign.of_list [ (vreg 1, 0); (vreg 2, 1) ] in
        let op =
          Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2 ] ~id:0 ~opcode:Mach.Opcode.Neg ~cls:f ()
        in
        check Alcotest.int "1 copy" 1 (Partition.Assign.copies_needed a [ op ]);
        (* two consumers in the same cluster share the copy *)
        let op2 =
          Ir.Op.make ~dst:(vreg 3) ~srcs:[ vreg 2 ] ~id:1 ~opcode:Mach.Opcode.Abs ~cls:f ()
        in
        let a2 = Partition.Assign.of_list [ (vreg 1, 0); (vreg 2, 1); (vreg 3, 0) ] in
        check Alcotest.int "still 1" 1 (Partition.Assign.copies_needed a2 [ op; op2 ]));
  ]

let greedy_tests =
  [
    case "attracted-pair-shares-bank" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) 100.0;
        Rcg.Graph.add_node_weight g (vreg 1) 10.0;
        Rcg.Graph.add_node_weight g (vreg 2) 5.0;
        let a = Partition.Greedy.partition ~banks:4 g in
        check Alcotest.int "same bank" (Partition.Assign.bank a (vreg 1))
          (Partition.Assign.bank a (vreg 2)));
    case "repelled-pair-splits" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) (-50.0);
        Rcg.Graph.add_node_weight g (vreg 1) 10.0;
        Rcg.Graph.add_node_weight g (vreg 2) 5.0;
        let a = Partition.Greedy.partition ~banks:2 g in
        check Alcotest.bool "different banks" true
          (Partition.Assign.bank a (vreg 1) <> Partition.Assign.bank a (vreg 2)));
    case "balance-spreads-isolated-nodes" (fun () ->
        let g = Rcg.Graph.create () in
        for i = 1 to 8 do
          Rcg.Graph.add_node_weight g (vreg i) (float_of_int i)
        done;
        let a = Partition.Greedy.partition ~banks:4 g in
        let counts = Partition.Assign.counts ~banks:4 a in
        Array.iter (fun c -> check Alcotest.int "2 each" 2 c) counts);
    case "pins-respected" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) 100.0;
        Rcg.Graph.pin g (vreg 1) 3;
        let a = Partition.Greedy.partition ~banks:4 g in
        check Alcotest.int "pinned" 3 (Partition.Assign.bank a (vreg 1));
        (* attraction drags the partner along *)
        check Alcotest.int "partner follows" 3 (Partition.Assign.bank a (vreg 2)));
    case "keep-apart-respected" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) 1.0;
        Rcg.Graph.keep_apart g (vreg 1) (vreg 2);
        let a = Partition.Greedy.partition ~banks:2 g in
        check Alcotest.bool "split" true
          (Partition.Assign.bank a (vreg 1) <> Partition.Assign.bank a (vreg 2)));
    case "single-bank-trivial" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) (-5.0);
        let a = Partition.Greedy.partition ~banks:1 g in
        check Alcotest.bool "all zero" true (Partition.Assign.all_in_range ~banks:1 a));
    case "out-of-range-pin-rejected" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.pin g (vreg 1) 7;
        check Alcotest.bool "raises" true
          (try
             ignore (Partition.Greedy.partition ~banks:2 g);
             false
           with Invalid_argument _ -> true));
    qcheck ~count:50 "total-and-in-range" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        let a = Partition.Greedy.partition ~banks:4 g in
        Partition.Assign.all_in_range ~banks:4 a
        && Ir.Vreg.Set.for_all
             (fun r -> Partition.Assign.bank_opt a r <> None)
             (Ir.Loop.vregs loop));
  ]

let copies_tests =
  [
    case "monolithic-no-copies" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let a =
          Partition.Assign.of_list
            (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)))
        in
        let r = Partition.Copies.insert_loop ~machine:ideal16 ~assignment:a loop in
        check Alcotest.int "0 copies" 0 r.Partition.Copies.n_copies);
    case "all-uses-local-after-rewrite" (fun () ->
        List.iter
          (fun loop ->
            let g = Rcg.Build.of_loop ~machine:ideal16 loop in
            let a = Partition.Greedy.partition ~banks:4 g in
            let r = Partition.Copies.insert_loop ~machine:m4x4e ~assignment:a loop in
            List.iter
              (fun op ->
                (* Copies are the one op kind allowed to read remotely. *)
                if not (Ir.Op.is_copy op) then begin
                  let c = Partition.Assign.cluster_of_op r.Partition.Copies.assignment op in
                  List.iter
                    (fun u ->
                      check Alcotest.int
                        (Printf.sprintf "%s local in %s" (Ir.Vreg.to_string u)
                           (Ir.Op.to_string op))
                        c
                        (Partition.Assign.bank r.Partition.Copies.assignment u))
                    (Ir.Op.uses op)
                end)
              (Ir.Loop.ops r.Partition.Copies.loop))
          (sample_loops ~n:12 ()));
    case "copy-count-matches-static-metric" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:4 in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        let a = Partition.Greedy.partition ~banks:4 g in
        let expected = Partition.Assign.copies_needed a (Ir.Loop.ops loop) in
        let r = Partition.Copies.insert_loop ~machine:m4x4e ~assignment:a loop in
        check Alcotest.int "copies" expected r.Partition.Copies.n_copies);
    case "semantics-preserved-by-copies" (fun () ->
        List.iter
          (fun loop ->
            let g = Rcg.Build.of_loop ~machine:ideal16 loop in
            let a = Partition.Greedy.partition ~banks:4 g in
            let r = Partition.Copies.insert_loop ~machine:m4x4e ~assignment:a loop in
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            seed_state sb loop;
            Ir.Eval.run_loop sa ~trips:5 loop;
            Ir.Eval.run_loop sb ~trips:5 r.Partition.Copies.loop;
            if not (mem_equal sa sb) then
              Alcotest.failf "%s: memory differs after copy insertion\n%s" (Ir.Loop.name loop)
                (mem_diff sa sb);
            Ir.Vreg.Set.iter
              (fun lo ->
                check Alcotest.bool (Ir.Vreg.to_string lo) true
                  (Ir.Eval.value_equal (Ir.Eval.get_reg sa lo) (Ir.Eval.get_reg sb lo)))
              (Ir.Loop.live_out loop))
          (sample_loops ~n:16 ()));
    case "per-cluster-counts-consistent" (fun () ->
        let loop = Workload.Kernels.cmul ~unroll:2 in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        let a = Partition.Greedy.partition ~banks:4 g in
        let r = Partition.Copies.insert_loop ~machine:m4x4e ~assignment:a loop in
        let total_copies = Array.fold_left ( + ) 0 r.Partition.Copies.copies_per_cluster in
        let total_ops = Array.fold_left ( + ) 0 r.Partition.Copies.ops_per_cluster in
        check Alcotest.int "copies" r.Partition.Copies.n_copies total_copies;
        check Alcotest.int "ops" (Ir.Loop.size loop) total_ops;
        check Alcotest.int "body size" (Ir.Loop.size loop + r.Partition.Copies.n_copies)
          (Ir.Loop.size r.Partition.Copies.loop));
  ]

let baseline_tests =
  [
    case "bug-covers-all-registers" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let a = Partition.Bug.partition ~machine:m4x4e ddg in
            check Alcotest.bool (Ir.Loop.name loop) true
              (Ir.Vreg.Set.for_all
                 (fun r -> Partition.Assign.bank_opt a r <> None)
                 (Ir.Loop.vregs loop)))
          (sample_loops ()));
    case "uas-covers-all-registers" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let a = Partition.Uas.partition ~machine:m4x4e ddg in
            check Alcotest.bool (Ir.Loop.name loop) true
              (Ir.Vreg.Set.for_all
                 (fun r -> Partition.Assign.bank_opt a r <> None)
                 (Ir.Loop.vregs loop)))
          (sample_loops ()));
    case "bug-in-range" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.hydro ~unroll:4) in
        check Alcotest.bool "range" true
          (Partition.Assign.all_in_range ~banks:8
             (Partition.Bug.partition ~machine:m8x2e ddg)));
    case "uas-respects-cluster-width" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.cmul ~unroll:4) in
        check Alcotest.bool "range" true
          (Partition.Assign.all_in_range ~banks:8
             (Partition.Uas.partition ~machine:m8x2e ddg)));
  ]

let driver_tests =
  [
    case "monolithic-pipeline-no-degradation" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        match Partition.Driver.pipeline ~machine:ideal16 loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check (Alcotest.float 1e-9) "100" 100.0 r.Partition.Driver.degradation;
            check Alcotest.int "no copies" 0 r.Partition.Driver.n_copies);
    case "clustered-kernel-is-valid" (fun () ->
        List.iter
          (fun machine ->
            List.iter
              (fun loop ->
                match Partition.Driver.pipeline ~machine loop with
                | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) (Verify.Stage_error.to_string e)
                | Ok r ->
                    let ddg =
                      Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency
                        r.Partition.Driver.rewritten
                    in
                    let cluster_of =
                      match
                        Partition.Driver.cluster_map r.Partition.Driver.assignment
                          r.Partition.Driver.rewritten
                      with
                      | Ok f -> f
                      | Error e -> Alcotest.failf "%s: cluster map: %s" (Ir.Loop.name loop) e
                    in
                    (match
                       Sched.Check.kernel ~machine ~cluster_of ~ddg
                         r.Partition.Driver.clustered.Sched.Modulo.kernel
                     with
                    | Ok () -> ()
                    | Error e ->
                        Alcotest.failf "%s on %s: %s" (Ir.Loop.name loop)
                          machine.Mach.Machine.name e))
              (sample_loops ~n:10 ()))
          [ m2x8e; m4x4e; m4x4c; m8x2e; m8x2c ]);
    case "degradation-at-least-100" (fun () ->
        List.iter
          (fun loop ->
            match Partition.Driver.pipeline ~machine:m4x4e loop with
            | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) (Verify.Stage_error.to_string e)
            | Ok r ->
                check Alcotest.bool
                  (Printf.sprintf "%s >= 100" (Ir.Loop.name loop))
                  true
                  (r.Partition.Driver.degradation >= 100.0))
          (sample_loops ~n:20 ()));
    case "bug-partitioner-runs" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:2 in
        match Partition.Driver.pipeline ~partitioner:Partition.Driver.Bug ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r -> check Alcotest.bool "done" true (r.Partition.Driver.degradation >= 100.0));
    case "uas-partitioner-runs" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:2 in
        match Partition.Driver.pipeline ~partitioner:Partition.Driver.Uas ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r -> check Alcotest.bool "done" true (r.Partition.Driver.degradation >= 100.0));
    case "custom-partitioner-receives-rcg" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let saw_rcg = ref false in
        let custom _machine ddg rcg =
          (match rcg with Some _ -> saw_rcg := true | None -> ());
          let regs =
            List.fold_left
              (fun acc op ->
                List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc
                  (Ir.Op.defs op @ Ir.Op.uses op))
              Ir.Vreg.Set.empty (Ddg.Graph.ops_in_order ddg)
          in
          Partition.Assign.of_list (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements regs))
        in
        match
          Partition.Driver.pipeline ~partitioner:(Partition.Driver.Custom custom)
            ~machine:m4x4e loop
        with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check Alcotest.bool "rcg passed" true !saw_rcg;
            (* everything in bank 0: no copies at all *)
            check Alcotest.int "no copies" 0 r.Partition.Driver.n_copies);
    case "embedded-ipc-counts-copies" (fun () ->
        let loop = Workload.Kernels.cmul ~unroll:4 in
        match
          ( Partition.Driver.pipeline ~machine:m8x2e loop,
            Partition.Driver.pipeline ~machine:m8x2c loop )
        with
        | Ok re, Ok rc ->
            let ke = re.Partition.Driver.clustered.Sched.Modulo.kernel in
            check (Alcotest.float 1e-9) "embedded ipc = all ops / ii"
              (float_of_int (Sched.Kernel.op_count ke) /. float_of_int (Sched.Kernel.ii ke))
              re.Partition.Driver.ipc_clustered;
            let kc = rc.Partition.Driver.clustered.Sched.Modulo.kernel in
            let non_copy =
              List.length
                (List.filter
                   (fun (p : Sched.Schedule.placement) -> not (Ir.Op.is_copy p.op))
                   (Sched.Kernel.placements kc))
            in
            check (Alcotest.float 1e-9) "copy-unit ipc excludes copies"
              (float_of_int non_copy /. float_of_int (Sched.Kernel.ii kc))
              rc.Partition.Driver.ipc_clustered
        | Error e, _ | _, Error e -> Alcotest.fail (Verify.Stage_error.to_string e));
    case "pipelined-clustered-code-semantics" (fun () ->
        (* end to end: expansion of the clustered kernel of the rewritten
           loop computes the same memory as the original loop *)
        List.iter
          (fun loop ->
            match Partition.Driver.pipeline ~machine:m4x4e loop with
            | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) (Verify.Stage_error.to_string e)
            | Ok r ->
                let trips = 6 in
                let code =
                  Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                    ~loop:r.Partition.Driver.rewritten ~trips
                in
                let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
                seed_state sa loop;
                seed_state sb loop;
                Ir.Eval.run_loop sa ~trips loop;
                Ir.Eval.run_ops sb (Sched.Expand.ops code);
                if not (mem_equal sa sb) then
                  Alcotest.failf "%s: clustered pipeline diverges\n%s" (Ir.Loop.name loop)
                    (mem_diff sa sb))
          (sample_loops ~n:14 ()));
  ]

let suite =
  [
    ("partition.assign", assign_tests);
    ("partition.greedy", greedy_tests);
    ("partition.copies", copies_tests);
    ("partition.baselines", baseline_tests);
    ("partition.driver", driver_tests);
  ]
