open Testlib

let f = Mach.Rclass.Float

let properties =
  [
    qcheck ~count:40 "lifetimes-well-formed" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            let lts = Sched.Pressure.lifetimes ~kernel:o.Sched.Modulo.kernel ~loop in
            List.for_all (fun (_, c, e) -> e > c && c >= 0) lts
            && Sched.Pressure.max_live ~kernel:o.Sched.Modulo.kernel ~loop >= 0);
    qcheck ~count:40 "kernel-alloc-covers-maxlive" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            let req =
              Regalloc.Kernel_alloc.requirements ~kernel:o.Sched.Modulo.kernel ~loop ~banks:1
                ~bank_of:(fun _ -> 0)
            in
            req.Regalloc.Kernel_alloc.total
            >= Sched.Pressure.max_live ~kernel:o.Sched.Modulo.kernel ~loop);
    qcheck ~count:30 "parse-roundtrip-random-loops" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        match Ir.Parse.loop_of_string (Ir.Parse.loop_to_string loop) with
        | Error _ -> false
        | Ok loop' ->
            List.for_all2
              (fun a b -> Ir.Op.to_string a = Ir.Op.to_string b)
              (Ir.Loop.ops loop) (Ir.Loop.ops loop'));
    qcheck ~count:30 "unrolled-driver-pipeline-equivalence" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let unrolled, _ = Ir.Unroll.loop ~factor:2 loop in
        match Partition.Driver.pipeline ~machine:m2x8e unrolled with
        | Error _ -> false
        | Ok r ->
            let trips = 3 in
            let code =
              Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                ~loop:r.Partition.Driver.rewritten ~trips
            in
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            seed_state sb loop;
            Ir.Eval.run_loop sa ~trips:(2 * trips) loop;
            Ir.Eval.run_ops sb (Sched.Expand.ops code);
            mem_equal sa sb);
    qcheck ~count:40 "ne-groups-are-disjoint" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let groups = Partition.Ne.recurrence_groups (Ddg.Graph.of_loop loop) in
        let rec disjoint = function
          | [] -> true
          | g :: rest ->
              List.for_all (fun h -> Ir.Vreg.Set.is_empty (Ir.Vreg.Set.inter g h)) rest
              && disjoint rest
        in
        disjoint groups);
  ]

let unit_cases =
  [
    case "monolithic-of-preserves-width-and-mix" (fun () ->
        let ozer =
          Mach.Machine.make ~fu_mix:Mach.Machine.ozer_cluster_mix ~clusters:4
            ~fus_per_cluster:4 ~copy_model:Mach.Machine.Copy_unit ()
        in
        let mono = Mach.Machine.monolithic_of ozer in
        check Alcotest.int "width" 16 (Mach.Machine.width mono);
        check Alcotest.bool "monolithic" true (Mach.Machine.is_monolithic mono);
        check Alcotest.bool "still specialized" false (Mach.Machine.is_general_only mono);
        check Alcotest.int "4 memory units"
          4
          (Option.value ~default:0
             (List.assoc_opt Mach.Machine.Memory mono.Mach.Machine.fu_mix)));
    case "monolithic-of-general-machine" (fun () ->
        let mono = Mach.Machine.monolithic_of m4x4e in
        check Alcotest.bool "general" true (Mach.Machine.is_general_only mono);
        check Alcotest.int "width" 16 (Mach.Machine.width mono));
    case "kernel-ipc-filter" (fun () ->
        let mkop id =
          Ir.Op.make ~dst:(vreg (id + 1)) ~addr:(Ir.Addr.element "x") ~id
            ~opcode:Mach.Opcode.Load ~cls:f ()
        in
        let k =
          Sched.Kernel.make ~ii:2
            [ { Sched.Schedule.op = mkop 0; cycle = 0; cluster = 0 };
              { Sched.Schedule.op = mkop 1; cycle = 1; cluster = 0 } ]
        in
        check (Alcotest.float 1e-9) "all" 1.0 (Sched.Kernel.ipc k);
        check (Alcotest.float 1e-9) "none" 0.0 (Sched.Kernel.ipc ~count:(fun _ -> false) k));
    case "csv-contains-all-loops" (fun () ->
        let loops = sample_loops ~n:4 () in
        let runs =
          [ Core.Experiment.run_config ~loops
              (Core.Experiment.config_for ~clusters:4 ~copy_model:Mach.Machine.Embedded) ]
        in
        let csv = Core.Report.to_csv runs in
        List.iter
          (fun loop ->
            check Alcotest.bool (Ir.Loop.name loop) true (contains csv (Ir.Loop.name loop)))
          loops;
        check Alcotest.int "line count" (1 + List.length loops)
          (List.length (List.filter (fun s -> s <> "") (String.split_on_char '\n' csv))));
    case "expand-live-out-map-values" (fun () ->
        let loop = Workload.Kernels.dot ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let trips = 5 in
            let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips in
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            seed_state sb loop;
            Ir.Eval.run_loop sa ~trips loop;
            Ir.Eval.run_ops sb (Sched.Expand.ops code);
            Ir.Vreg.Map.iter
              (fun src inst ->
                check Alcotest.bool (Ir.Vreg.to_string src) true
                  (Ir.Eval.value_equal (Ir.Eval.get_reg sa src) (Ir.Eval.get_reg sb inst)))
              (Sched.Expand.live_out_map code));
    case "loopgen-profile-override" (fun () ->
        let tiny =
          { Workload.Loopgen.spec95 with
            Workload.Loopgen.min_exprs = 1; max_exprs = 1; min_depth = 1; max_depth = 1;
            min_unroll = 1; max_unroll = 1; reduction_prob = 0.0; recurrence_prob = 0.0 }
        in
        let loop = Workload.Loopgen.generate ~profile:tiny ~seed:3 ~index:0 () in
        check Alcotest.bool "small" true (Ir.Loop.size loop <= 8));
    case "tune-hill-climb-beats-or-matches-init" (fun () ->
        let loops = sample_loops ~n:5 () in
        let bad =
          { Rcg.Weights.default with Rcg.Weights.repel_scale = 0.0; balance = 0.0 }
        in
        let r = Core.Tune.hill_climb ~budget:10 ~init:bad ~machine:m4x4e ~loops () in
        let bad_score = Core.Tune.evaluate ~machine:m4x4e ~loops bad in
        check Alcotest.bool "improved or equal" true (r.Core.Tune.score <= bad_score +. 1e-9));
    case "refine-then-ne-composition" (fun () ->
        (* NE seed + refinement: a legitimate composed partitioner *)
        let loop = Workload.Kernels.euler_step ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        let rcg = Rcg.Build.of_loop ~machine:ideal16 loop in
        let seed = Partition.Ne.partition ~machine:m4x4e ddg in
        let refined, _ = Partition.Refine.refine ~machine:m4x4e ~loop ~rcg seed in
        check Alcotest.bool "in range" true (Partition.Assign.all_in_range ~banks:4 refined));
    case "ozer-machine-sim-clean" (fun () ->
        let ozer4 =
          Mach.Machine.make ~fu_mix:Mach.Machine.ozer_cluster_mix ~clusters:4
            ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ()
        in
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        match Partition.Driver.pipeline ~machine:ozer4 loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r -> (
            let code =
              Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                ~loop:r.Partition.Driver.rewritten ~trips:4
            in
            match Sched.Sim.run ~latency:ozer4.Mach.Machine.latency code with
            | Ok _ -> ()
            | Error v -> Alcotest.fail v.Sched.Sim.what));
  ]

let suite = [ ("final.properties", properties); ("final.units", unit_cases) ]
