open Testlib

let kernels_tests =
  [
    case "all-kernels-build-at-all-unrolls" (fun () ->
        List.iter
          (fun (name, make) ->
            List.iter
              (fun unroll ->
                let loop = make ~unroll in
                check Alcotest.bool
                  (Printf.sprintf "%s u%d nonempty" name unroll)
                  true
                  (Ir.Loop.size loop > 0))
              [ 1; 2; 3; 4; 8 ])
          Workload.Kernels.all);
    case "unroll-scales-size-linearly" (fun () ->
        List.iter
          (fun (name, make) ->
            let s1 = Ir.Loop.size (make ~unroll:1) in
            let s4 = Ir.Loop.size (make ~unroll:4) in
            check Alcotest.int (name ^ " 4x ops") (4 * s1) s4)
          Workload.Kernels.all);
    case "rejects-unroll-0" (fun () ->
        Alcotest.check_raises "u0" (Invalid_argument "Kernels: unroll must be >= 1") (fun () ->
            ignore (Workload.Kernels.daxpy ~unroll:0)));
    case "reductions-declare-live-out" (fun () ->
        List.iter
          (fun loop ->
            check Alcotest.bool (Ir.Loop.name loop) true
              (not (Ir.Vreg.Set.is_empty (Ir.Loop.live_out loop))))
          [ Workload.Kernels.dot ~unroll:2; Workload.Kernels.isum ~unroll:1;
            Workload.Kernels.maxloc ~unroll:4; Workload.Kernels.euler_step ~unroll:1 ]);
    case "kernel-names-unique" (fun () ->
        let names = List.map fst (Workload.Kernels.all @ Workload.Kernels.extra) in
        check Alcotest.int "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    case "extra-kernels-build-and-pipeline" (fun () ->
        List.iter
          (fun (name, make) ->
            let loop = make ~unroll:2 in
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Modulo.ideal ~machine:ideal16 ddg with
            | None -> Alcotest.failf "%s: no ideal pipeline" name
            | Some o ->
                check Alcotest.bool (name ^ " valid") true
                  (Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg
                     o.Sched.Modulo.kernel
                  = Ok ()))
          Workload.Kernels.extra);
    case "extra-kernels-pipeline-equivalence" (fun () ->
        (* Select/Madd/Abs semantics survive pipelining + partitioning *)
        List.iter
          (fun (name, make) ->
            let loop = make ~unroll:2 in
            match Partition.Driver.pipeline ~machine:m4x4e loop with
            | Error e -> Alcotest.failf "%s: %s" name (Verify.Stage_error.to_string e)
            | Ok r ->
                let trips = 5 in
                let code =
                  Sched.Expand.flatten
                    ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                    ~loop:r.Partition.Driver.rewritten ~trips
                in
                let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
                seed_state sa loop;
                seed_state sb loop;
                Ir.Eval.run_loop sa ~trips loop;
                Ir.Eval.run_ops sb (Sched.Expand.ops code);
                if not (mem_equal sa sb) then
                  Alcotest.failf "%s: pipeline diverges\n%s" name (mem_diff sa sb))
          Workload.Kernels.extra);
    case "ifconv-uses-select" (fun () ->
        let loop = Workload.Kernels.select_threshold ~unroll:1 in
        check Alcotest.bool "has select" true
          (List.exists
             (fun op -> Mach.Opcode.equal (Ir.Op.opcode op) Mach.Opcode.Select)
             (Ir.Loop.ops loop)));
    case "recurrent-kernels-have-recmii-above-1" (fun () ->
        List.iter
          (fun loop ->
            check Alcotest.bool (Ir.Loop.name loop) true
              (Ddg.Minii.rec_mii (Ddg.Graph.of_loop loop) > 1))
          [ Workload.Kernels.first_order_rec ~unroll:1; Workload.Kernels.tridiag ~unroll:1;
            Workload.Kernels.dot ~unroll:1 ]);
    case "streaming-kernels-have-recmii-1" (fun () ->
        List.iter
          (fun loop ->
            check Alcotest.int (Ir.Loop.name loop) 1
              (Ddg.Minii.rec_mii (Ddg.Graph.of_loop loop)))
          [ Workload.Kernels.vcopy ~unroll:4; Workload.Kernels.daxpy ~unroll:4;
            Workload.Kernels.hydro ~unroll:2 ]);
  ]

let loopgen_tests =
  [
    case "deterministic" (fun () ->
        let a = Workload.Loopgen.generate ~seed:5 ~index:3 () in
        let b = Workload.Loopgen.generate ~seed:5 ~index:3 () in
        check Alcotest.int "size" (Ir.Loop.size a) (Ir.Loop.size b);
        List.iter2
          (fun oa ob ->
            check Alcotest.string "op" (Ir.Op.to_string oa) (Ir.Op.to_string ob))
          (Ir.Loop.ops a) (Ir.Loop.ops b));
    case "different-indices-differ" (fun () ->
        let a = Workload.Loopgen.generate ~seed:5 ~index:0 () in
        let b = Workload.Loopgen.generate ~seed:5 ~index:1 () in
        check Alcotest.bool "differ" true
          (List.map Ir.Op.to_string (Ir.Loop.ops a)
          <> List.map Ir.Op.to_string (Ir.Loop.ops b)));
    qcheck ~count:60 "generated-loops-well-formed" (QCheck2.Gen.int_range 0 500) (fun idx ->
        let loop = Workload.Loopgen.generate ~seed:1995 ~index:idx () in
        Ir.Loop.size loop > 0
        && Graphlib.Topo.is_dag (Ddg.Graph.loop_independent (Ddg.Graph.of_loop loop)));
    qcheck ~count:30 "generated-loops-pipeline" (QCheck2.Gen.int_range 0 300) (fun idx ->
        let loop = Workload.Loopgen.generate ~seed:1995 ~index:idx () in
        let ddg = Ddg.Graph.of_loop loop in
        Sched.Modulo.ideal ~machine:ideal16 ddg <> None);
  ]

let suite_tests =
  [
    case "size-is-211" (fun () ->
        check Alcotest.int "211" 211 (List.length (Workload.Suite.loops ())));
    case "names-unique" (fun () ->
        let names = List.map Ir.Loop.name (Workload.Suite.loops ()) in
        check Alcotest.int "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    case "by-name-finds" (fun () ->
        check Alcotest.bool "daxpy-u4" true (Workload.Suite.by_name "daxpy-u4" <> None);
        check Alcotest.bool "nonexistent" true (Workload.Suite.by_name "nope" = None));
    case "prefix-stable" (fun () ->
        let small = Workload.Suite.loops ~n:10 () in
        let big = Workload.Suite.loops ~n:20 () in
        List.iteri
          (fun idx loop ->
            check Alcotest.string "same prefix" (Ir.Loop.name loop)
              (Ir.Loop.name (List.nth big idx)))
          small);
    slow_case "full-suite-ideal-ipc-near-paper" (fun () ->
        let ipc = Core.Experiment.ideal_ipc () in
        check Alcotest.bool
          (Printf.sprintf "8.0 <= %.2f <= 9.2 (paper: 8.6)" ipc)
          true
          (ipc >= 8.0 && ipc <= 9.2));
  ]

let suite =
  [
    ("workload.kernels", kernels_tests);
    ("workload.loopgen", loopgen_tests);
    ("workload.suite", suite_tests);
  ]
