open Testlib

(* Closing gaps: transformations under random inputs, report plumbing. *)

let transform_props =
  [
    qcheck ~count:30 "distribute-partitions-ops-and-preserves-semantics" gen_loop_seed
      (fun seed ->
        let loop = loop_of_seed seed in
        let pieces = Ir.Distribute.split loop in
        let op_total = List.fold_left (fun acc p -> acc + Ir.Loop.size p) 0 pieces in
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        seed_state sa loop;
        seed_state sb loop;
        Ir.Eval.run_loop sa ~trips:4 loop;
        List.iter (fun p -> Ir.Eval.run_loop sb ~trips:4 p) pieces;
        op_total = Ir.Loop.size loop && mem_equal sa sb);
    qcheck ~count:30 "lower-addr-preserves-semantics-randomly" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        match Ir.Lower_addr.loop loop with
        | exception Invalid_argument _ -> true (* indexed input: out of scope *)
        | lowered, inits ->
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            seed_state sb loop;
            List.iter (fun (iv, v) -> Ir.Eval.set_reg sb iv (Ir.Eval.I v)) inits;
            Ir.Eval.run_loop sa ~trips:4 loop;
            Ir.Eval.run_loop sb ~trips:4 lowered;
            mem_equal sa sb);
    qcheck ~count:20 "superblock-merge-preserves-size-and-edges-valid"
      (QCheck2.Gen.int_range 0 40)
      (fun idx ->
        let fn = Workload.Funcgen.generate ~index:idx () in
        let merged = Ir.Superblock.merge_chains fn in
        Ir.Func.size merged = Ir.Func.size fn
        && Ir.Superblock.chain_count merged = 0
        && List.for_all
             (fun (a, b) ->
               (try ignore (Ir.Func.block merged a); true with Not_found -> false)
               && try ignore (Ir.Func.block merged b); true with Not_found -> false)
             (Ir.Func.edges merged));
    qcheck ~count:25 "shift-iterations-random" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let k = 1 + (seed mod 4) in
        let shifted = Ir.Unroll.shift_iterations ~by:k loop in
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        seed_state sa loop;
        seed_state sb loop;
        Ir.Eval.run_loop sa ~trips:(k + 3) loop;
        Ir.Eval.run_loop sb ~trips:k loop;
        Ir.Eval.run_loop sb ~trips:3 shifted;
        mem_equal sa sb);
  ]

let report_cases =
  [
    case "histogram-on-empty-run" (fun () ->
        let cfg = Core.Experiment.config_for ~clusters:2 ~copy_model:Mach.Machine.Embedded in
        let empty =
          { Core.Experiment.config = cfg; metrics = []; failures = []; cache_hits = 0 }
        in
        let fig = Core.Report.figure_histogram empty empty ~title:"t" in
        check Alcotest.bool "renders" true (String.length (Util.Table.render fig) > 0);
        check Alcotest.bool "ascii renders" true
          (String.length (Core.Report.ascii_histogram empty empty ~title:"t") > 0));
    case "failures-summary-lists-errors" (fun () ->
        let cfg = Core.Experiment.config_for ~clusters:2 ~copy_model:Mach.Machine.Embedded in
        let run =
          { Core.Experiment.config = cfg; metrics = []; failures =
              [
                ( "l1",
                  Verify.Stage_error.make ~stage:Verify.Stage_error.Clustered_schedule
                    ~subject:"l1" "boom" );
              ]; cache_hits = 0 }
        in
        let s = Core.Report.failures_summary [ run ] in
        check Alcotest.bool "mentions loop" true (contains s "l1");
        check Alcotest.bool "mentions error" true (contains s "boom"));
    case "csv-escaping-free-names" (fun () ->
        (* suite loop names contain no commas, keeping the CSV trivial *)
        List.iter
          (fun loop ->
            check Alcotest.bool (Ir.Loop.name loop) false
              (String.contains (Ir.Loop.name loop) ','))
          (Workload.Suite.loops ()));
    case "experiment-ideal-ipc-matches-metrics" (fun () ->
        (* the Table 1 "Ideal" entry equals the mean of per-loop ideal IPCs *)
        let loops = sample_loops ~n:6 () in
        let cfg = Core.Experiment.config_for ~clusters:4 ~copy_model:Mach.Machine.Embedded in
        let run = Core.Experiment.run_config ~loops cfg in
        let from_metrics = Core.Metrics.mean_ipc_ideal run.Core.Experiment.metrics in
        let direct = Core.Experiment.ideal_ipc ~loops () in
        check (Alcotest.float 1e-6) "equal" direct from_metrics);
  ]

(* Mutation testing of the validators: corrupting a valid kernel must be
   caught by the static checker or the simulator (a checker that accepts
   everything would pass every positive test). *)
let mutation_props =
  [
    qcheck ~count:40 "check-catches-dependence-mutations" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            let k = o.Sched.Modulo.kernel in
            let g = Ddg.Graph.graph ddg in
            (* pull one dependence-constrained op one cycle earlier *)
            let victim =
              List.find_opt
                (fun (p : Sched.Schedule.placement) ->
                  Graphlib.Digraph.preds g (Ir.Op.id p.op)
                  |> List.exists (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
                         Ddg.Dep.distance e.label = 0
                         && (try
                               Sched.Kernel.cycle_of k (Ir.Op.id p.op)
                               - Sched.Kernel.cycle_of k e.src
                               = Ddg.Dep.latency e.label
                             with Not_found -> false)))
                (Sched.Kernel.placements k)
            in
            (match victim with
            | None -> true (* nothing tightly constrained: skip *)
            | Some v ->
                let mutated =
                  List.map
                    (fun (p : Sched.Schedule.placement) ->
                      if Ir.Op.id p.op = Ir.Op.id v.op then
                        { p with Sched.Schedule.cycle = max 0 (p.cycle - 1) }
                      else p)
                    (Sched.Kernel.placements k)
                in
                let k' = Sched.Kernel.make ~ii:(Sched.Kernel.ii k) mutated in
                Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg k'
                <> Ok ()));
    qcheck ~count:30 "check-catches-resource-mutations" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        if Ir.Loop.size loop < 2 then true
        else begin
          let ddg = Ddg.Graph.of_loop loop in
          (* schedule on a 1-wide machine, then fold two ops into one
             cycle: the single FU must be oversubscribed *)
          let narrow = Mach.Machine.ideal ~width:1 () in
          match Sched.Modulo.ideal ~machine:narrow ddg with
          | None -> false
          | Some o -> (
              let k = o.Sched.Modulo.kernel in
              match Sched.Kernel.placements k with
              | (a : Sched.Schedule.placement) :: b :: rest ->
                  let mutated = { b with Sched.Schedule.cycle = a.cycle } :: a :: rest in
                  let k' = Sched.Kernel.make ~ii:(Sched.Kernel.ii k) mutated in
                  Sched.Check.kernel ~machine:narrow ~cluster_of:all_zero_clusters ~ddg k'
                  <> Ok ()
              | _ -> false)
        end);
  ]

let suite =
  [
    ("closing.transforms", transform_props);
    ("closing.report", report_cases);
    ("closing.mutation", mutation_props);
  ]
