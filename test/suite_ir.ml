open Testlib

let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

let vreg_tests =
  [
    case "identity-by-id" (fun () ->
        let a = vreg 1 and b = Ir.Vreg.make ~name:"other" ~id:1 ~cls:i () in
        check Alcotest.bool "equal" true (Ir.Vreg.equal a b));
    case "to-string-uses-name" (fun () ->
        check Alcotest.string "named" "xvel"
          (Ir.Vreg.to_string (Ir.Vreg.make ~name:"xvel" ~id:3 ~cls:f ())));
    case "to-string-class-prefix" (fun () ->
        check Alcotest.string "float" "f7" (Ir.Vreg.to_string (vreg 7));
        check Alcotest.string "int" "r7" (Ir.Vreg.to_string (vreg ~cls:i 7)));
    case "rejects-negative-id" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Vreg.make: negative id") (fun () ->
            ignore (Ir.Vreg.make ~id:(-1) ~cls:f ())));
    case "set-semantics" (fun () ->
        let s = Ir.Vreg.Set.of_list [ vreg 1; vreg 2; Ir.Vreg.make ~id:1 ~cls:i () ] in
        check Alcotest.int "dedup by id" 2 (Ir.Vreg.Set.cardinal s));
  ]

let addr_tests =
  [
    case "scalar" (fun () ->
        let a = Ir.Addr.scalar "x" in
        check Alcotest.int "stride" 0 a.Ir.Addr.stride;
        check Alcotest.string "print" "x" (Ir.Addr.to_string a));
    case "element" (fun () ->
        let a = Ir.Addr.element ~offset:2 "x" in
        check Alcotest.int "stride" 1 a.Ir.Addr.stride;
        check Alcotest.string "print" "x[1*i+2]" (Ir.Addr.to_string a));
    case "same-base" (fun () ->
        check Alcotest.bool "same" true
          (Ir.Addr.same_base (Ir.Addr.scalar "x") (Ir.Addr.element "x"));
        check Alcotest.bool "diff" false
          (Ir.Addr.same_base (Ir.Addr.scalar "x") (Ir.Addr.scalar "y")));
    case "rejects-empty-base" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Addr.make: empty base") (fun () ->
            ignore (Ir.Addr.make "")));
  ]

let op_tests =
  [
    case "well-formed-binop" (fun () ->
        let op =
          Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2; vreg 3 ] ~id:0 ~opcode:Mach.Opcode.Add
            ~cls:f ()
        in
        check Alcotest.int "defs" 1 (List.length (Ir.Op.defs op));
        check Alcotest.int "uses" 2 (List.length (Ir.Op.uses op)));
    case "store-has-no-dst" (fun () ->
        let op =
          Ir.Op.make ~srcs:[ vreg 2 ] ~addr:(Ir.Addr.scalar "x") ~id:0
            ~opcode:Mach.Opcode.Store ~cls:f ()
        in
        check Alcotest.int "defs" 0 (List.length (Ir.Op.defs op)));
    case "rejects-dst-on-store" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2 ] ~addr:(Ir.Addr.scalar "x") ~id:0
                  ~opcode:Mach.Opcode.Store ~cls:f ());
             false
           with Invalid_argument _ -> true));
    case "rejects-missing-addr-on-load" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Op.make ~dst:(vreg 1) ~id:0 ~opcode:Mach.Opcode.Load ~cls:f ());
             false
           with Invalid_argument _ -> true));
    case "rejects-addr-on-add" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2 ] ~addr:(Ir.Addr.scalar "x") ~id:0
                  ~opcode:Mach.Opcode.Add ~cls:f ());
             false
           with Invalid_argument _ -> true));
    case "rejects-too-many-srcs" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Ir.Op.make ~dst:(vreg 1)
                  ~srcs:[ vreg 2; vreg 3; vreg 4 ]
                  ~id:0 ~opcode:Mach.Opcode.Add ~cls:f ());
             false
           with Invalid_argument _ -> true));
    case "substitute-rewrites-srcs-only" (fun () ->
        let op =
          Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2; vreg 1 ] ~id:0 ~opcode:Mach.Opcode.Add
            ~cls:f ()
        in
        let m = Ir.Vreg.Map.singleton (vreg 1) (vreg 9) in
        let op' = Ir.Op.substitute op m in
        check Alcotest.int "dst unchanged" 1 (Ir.Vreg.id (Option.get (Ir.Op.dst op')));
        check Alcotest.(list int) "srcs" [ 2; 9 ] (List.map Ir.Vreg.id (Ir.Op.srcs op')));
    case "substitute_all-rewrites-dst" (fun () ->
        let op =
          Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2 ] ~id:0 ~opcode:Mach.Opcode.Neg ~cls:f ()
        in
        let m = Ir.Vreg.Map.singleton (vreg 1) (vreg 9) in
        check Alcotest.int "dst" 9 (Ir.Vreg.id (Option.get (Ir.Op.dst (Ir.Op.substitute_all op m)))));
    case "latency-lookup" (fun () ->
        let op =
          Ir.Op.make ~dst:(vreg ~cls:i 1) ~srcs:[ vreg ~cls:i 2; vreg ~cls:i 3 ] ~id:0
            ~opcode:Mach.Opcode.Mul ~cls:i ()
        in
        check Alcotest.int "int mul" 5 (Ir.Op.latency Mach.Latency.paper op));
  ]

let builder_tests =
  [
    case "fresh-ids-ascend" (fun () ->
        let b = Ir.Builder.create () in
        let r1 = Ir.Builder.fresh b f and r2 = Ir.Builder.fresh b f in
        check Alcotest.bool "ascending" true (Ir.Vreg.id r2 > Ir.Vreg.id r1));
    case "loop-roundtrip" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
        Ir.Builder.store b f (Ir.Addr.element "y") y;
        let loop = Ir.Builder.loop b ~name:"t" () in
        check Alcotest.int "ops" 3 (Ir.Loop.size loop));
    case "define-reuses-register" (fun () ->
        let b = Ir.Builder.create () in
        let s = Ir.Builder.fresh b f in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        Ir.Builder.define b Mach.Opcode.Add f ~into:s [ s; x ];
        let loop = Ir.Builder.loop b ~name:"t" ~live_out:[ s ] () in
        let defs = Ir.Loop.defs_of loop in
        check Alcotest.bool "s defined" true (Ir.Vreg.Map.mem s defs));
    case "func-multi-block" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        Ir.Builder.start_block ~depth:1 b "body";
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
        Ir.Builder.store b f (Ir.Addr.scalar "y") y;
        let fn = Ir.Builder.func b ~name:"fn" ~edges:[ ("entry", "body") ] in
        check Alcotest.int "blocks" 2 (List.length (Ir.Func.blocks fn));
        check Alcotest.(list string) "succ" [ "body" ] (Ir.Func.successors fn "entry"));
  ]

let loop_tests =
  [
    case "rejects-empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Loop t: empty body") (fun () ->
            ignore (Ir.Loop.make ~name:"t" [])));
    case "rejects-duplicate-ids" (fun () ->
        let op k = Ir.Op.make ~dst:(vreg (k + 1)) ~addr:(Ir.Addr.element "x") ~id:0
            ~opcode:Mach.Opcode.Load ~cls:f ()
        in
        Alcotest.check_raises "dup" (Invalid_argument "Loop t: duplicate op id 0") (fun () ->
            ignore (Ir.Loop.make ~name:"t" [ op 0; op 1 ])));
    case "invariants" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let inv = Ir.Loop.invariants loop in
        check Alcotest.int "only a" 1 (Ir.Vreg.Set.cardinal inv));
    case "vregs-covers-defs-and-uses" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let vr = Ir.Loop.vregs loop in
        List.iter
          (fun op ->
            List.iter
              (fun r -> check Alcotest.bool "in vregs" true (Ir.Vreg.Set.mem r vr))
              (Ir.Op.defs op @ Ir.Op.uses op))
          (Ir.Loop.ops loop));
    case "max-ids" (fun () ->
        let loop = Workload.Kernels.dot ~unroll:1 in
        check Alcotest.bool "op id bound" true
          (List.for_all (fun op -> Ir.Op.id op <= Ir.Loop.max_op_id loop) (Ir.Loop.ops loop));
        check Alcotest.bool "vreg id bound" true
          (Ir.Vreg.Set.for_all
             (fun r -> Ir.Vreg.id r <= Ir.Loop.max_vreg_id loop)
             (Ir.Loop.vregs loop)));
  ]

let eval_tests =
  [
    case "arith-int" (fun () ->
        let st = Ir.Eval.create () in
        let a = vreg ~cls:i 1 and b = vreg ~cls:i 2 and c = vreg ~cls:i 3 in
        Ir.Eval.set_reg st a (Ir.Eval.I 7);
        Ir.Eval.set_reg st b (Ir.Eval.I 5);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:c ~srcs:[ a; b ] ~id:0 ~opcode:Mach.Opcode.Sub ~cls:i ());
        check Alcotest.bool "7-5=2" true (Ir.Eval.value_equal (Ir.Eval.I 2) (Ir.Eval.get_reg st c)));
    case "div-by-zero-is-zero" (fun () ->
        let st = Ir.Eval.create () in
        let a = vreg ~cls:i 1 and b = vreg ~cls:i 2 and c = vreg ~cls:i 3 in
        Ir.Eval.set_reg st a (Ir.Eval.I 7);
        Ir.Eval.set_reg st b (Ir.Eval.I 0);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:c ~srcs:[ a; b ] ~id:0 ~opcode:Mach.Opcode.Div ~cls:i ());
        check Alcotest.bool "0" true (Ir.Eval.value_equal (Ir.Eval.I 0) (Ir.Eval.get_reg st c)));
    case "load-store-roundtrip" (fun () ->
        let st = Ir.Eval.create () in
        let v = vreg 1 and w = vreg 2 in
        Ir.Eval.set_reg st v (Ir.Eval.F 2.5);
        Ir.Eval.exec_op st ~iteration:3
          (Ir.Op.make ~srcs:[ v ] ~addr:(Ir.Addr.element "x") ~id:0 ~opcode:Mach.Opcode.Store
             ~cls:f ());
        Ir.Eval.exec_op st ~iteration:3
          (Ir.Op.make ~dst:w ~addr:(Ir.Addr.element "x") ~id:1 ~opcode:Mach.Opcode.Load
             ~cls:f ());
        check Alcotest.bool "roundtrip" true
          (Ir.Eval.value_equal (Ir.Eval.F 2.5) (Ir.Eval.get_reg st w)));
    case "affine-addressing" (fun () ->
        let st = Ir.Eval.create () in
        let v = vreg 1 in
        Ir.Eval.set_reg st v (Ir.Eval.F 1.0);
        Ir.Eval.exec_op st ~iteration:4
          (Ir.Op.make ~srcs:[ v ] ~addr:(Ir.Addr.make ~offset:2 ~stride:3 "x") ~id:0
             ~opcode:Mach.Opcode.Store ~cls:f ());
        check Alcotest.bool "x[14] written" true
          (Ir.Eval.value_equal (Ir.Eval.F 1.0) (Ir.Eval.get_mem st ~base:"x" ~index:14)));
    case "indexed-load" (fun () ->
        let st = Ir.Eval.create () in
        let idx = vreg ~cls:i 1 and dst = vreg 2 and v = vreg 3 in
        Ir.Eval.set_reg st idx (Ir.Eval.I 5);
        Ir.Eval.set_reg st v (Ir.Eval.F 9.0);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~srcs:[ v ] ~addr:(Ir.Addr.make ~offset:5 "tab") ~id:0
             ~opcode:Mach.Opcode.Store ~cls:f ());
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst ~srcs:[ idx ] ~addr:(Ir.Addr.scalar "tab") ~id:1
             ~opcode:Mach.Opcode.Load ~cls:f ());
        check Alcotest.bool "tab[5]" true
          (Ir.Eval.value_equal (Ir.Eval.F 9.0) (Ir.Eval.get_reg st dst)));
    case "select" (fun () ->
        let st = Ir.Eval.create () in
        let c = vreg ~cls:i 1 and a = vreg ~cls:i 2 and b = vreg ~cls:i 3 and d = vreg ~cls:i 4 in
        Ir.Eval.set_reg st c (Ir.Eval.I 0);
        Ir.Eval.set_reg st a (Ir.Eval.I 10);
        Ir.Eval.set_reg st b (Ir.Eval.I 20);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:d ~srcs:[ c; a; b ] ~id:0 ~opcode:Mach.Opcode.Select ~cls:i ());
        check Alcotest.bool "else branch" true
          (Ir.Eval.value_equal (Ir.Eval.I 20) (Ir.Eval.get_reg st d)));
    case "copy-preserves" (fun () ->
        let st = Ir.Eval.create () in
        let a = vreg 1 and b = vreg 2 in
        Ir.Eval.set_reg st a (Ir.Eval.F 3.25);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:b ~srcs:[ a ] ~id:0 ~opcode:Mach.Opcode.Copy ~cls:f ());
        check Alcotest.bool "copied" true
          (Ir.Eval.value_equal (Ir.Eval.F 3.25) (Ir.Eval.get_reg st b)));
    case "uninitialized-deterministic" (fun () ->
        let a = Ir.Eval.create () and b = Ir.Eval.create () in
        check Alcotest.bool "same hash" true
          (Ir.Eval.value_equal (Ir.Eval.get_reg a (vreg 42)) (Ir.Eval.get_reg b (vreg 42))));
    case "run-loop-reduction" (fun () ->
        (* s += x[i] over 4 iterations with x[i] pre-set *)
        let b = Ir.Builder.create () in
        let s = Ir.Builder.fresh ~name:"s" b i in
        let x = Ir.Builder.load b i (Ir.Addr.element "x") in
        Ir.Builder.define b Mach.Opcode.Add i ~into:s [ s; x ];
        let loop = Ir.Builder.loop b ~name:"sum" ~live_out:[ s ] () in
        let st = Ir.Eval.create () in
        Ir.Eval.set_reg st s (Ir.Eval.I 0);
        for k = 0 to 3 do
          Ir.Eval.set_mem st ~base:"x" ~index:k (Ir.Eval.I (k + 1))
        done;
        Ir.Eval.run_loop st ~trips:4 loop;
        check Alcotest.bool "1+2+3+4" true
          (Ir.Eval.value_equal (Ir.Eval.I 10) (Ir.Eval.get_reg st s)));
  ]

let parse_tests =
  [
    case "parse-simple-loop" (fun () ->
        let text =
          "loop t depth 2 trip 10\n  load.f x0, x[1*i]\n  mul.f p, x0, x0\n  store.f y[1*i], p\n"
        in
        match Ir.Parse.loop_of_string text with
        | Error e -> Alcotest.fail e
        | Ok loop ->
            check Alcotest.string "name" "t" (Ir.Loop.name loop);
            check Alcotest.int "depth" 2 (Ir.Loop.depth loop);
            check Alcotest.int "trip" 10 (Ir.Loop.trip_count loop);
            check Alcotest.int "ops" 3 (Ir.Loop.size loop));
    case "parse-live-out-and-comments" (fun () ->
        let text =
          "# reduction\nloop red\n  load.f x0, x[1*i]\n  add.f s, s, x0  # accumulate\nlive_out: s\n"
        in
        match Ir.Parse.loop_of_string text with
        | Error e -> Alcotest.fail e
        | Ok loop -> check Alcotest.int "live out" 1 (Ir.Vreg.Set.cardinal (Ir.Loop.live_out loop)));
    case "parse-address-forms" (fun () ->
        let cases =
          [ ("x", (0, 0)); ("x[3]", (3, 0)); ("x[4*i]", (0, 4)); ("x[4*i+2]", (2, 4));
            ("x[1*i-1]", (-1, 1)) ]
        in
        List.iter
          (fun (src, (off, stride)) ->
            let text = Printf.sprintf "  store.f %s, v\n" src in
            match Ir.Parse.loop_of_string text with
            | Error e -> Alcotest.failf "%s: %s" src e
            | Ok loop -> (
                match Ir.Op.addr (List.hd (Ir.Loop.ops loop)) with
                | Some a ->
                    check Alcotest.int (src ^ " offset") off a.Ir.Addr.offset;
                    check Alcotest.int (src ^ " stride") stride a.Ir.Addr.stride
                | None -> Alcotest.fail "no addr"))
          cases);
    case "parse-class-suffix" (fun () ->
        let text = "  load.f v, idx:i, tab\n" in
        match Ir.Parse.loop_of_string text with
        | Error e -> Alcotest.fail e
        | Ok loop ->
            let op = List.hd (Ir.Loop.ops loop) in
            check Alcotest.bool "idx is int" true
              (Ir.Vreg.cls (List.hd (Ir.Op.uses op)) = Mach.Rclass.Int));
    case "parse-error-reports-line" (fun () ->
        match Ir.Parse.loop_of_string "  load.f a, x\n  bogus b, c\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> check Alcotest.bool "line 2" true (contains e "line 2"));
    case "parse-rejects-empty" (fun () ->
        check Alcotest.bool "no ops" true
          (match Ir.Parse.loop_of_string "# nothing\n" with Error _ -> true | Ok _ -> false));
    case "roundtrip-kernels" (fun () ->
        List.iter
          (fun (name, make) ->
            let loop = make ~unroll:2 in
            let text = Ir.Parse.loop_to_string loop in
            match Ir.Parse.loop_of_string text with
            | Error e -> Alcotest.failf "%s: %s" name e
            | Ok loop' ->
                check Alcotest.int (name ^ " size") (Ir.Loop.size loop) (Ir.Loop.size loop');
                List.iter2
                  (fun a b ->
                    check Alcotest.string (name ^ " op") (Ir.Op.to_string a)
                      (Ir.Op.to_string b))
                  (Ir.Loop.ops loop) (Ir.Loop.ops loop');
                check Alcotest.int (name ^ " live-out count")
                  (Ir.Vreg.Set.cardinal (Ir.Loop.live_out loop))
                  (Ir.Vreg.Set.cardinal (Ir.Loop.live_out loop')))
          Workload.Kernels.all);
    case "roundtrip-preserves-semantics" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:2 in
        match Ir.Parse.loop_of_string (Ir.Parse.loop_to_string loop) with
        | Error e -> Alcotest.fail e
        | Ok loop' ->
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            (* loop' has different vreg ids but identical names; seed by name *)
            Ir.Vreg.Set.iter
              (fun r ->
                let orig =
                  Ir.Vreg.Set.choose
                    (Ir.Vreg.Set.filter
                       (fun o -> Ir.Vreg.to_string o = Ir.Vreg.to_string r)
                       (Ir.Loop.invariants loop))
                in
                Ir.Eval.set_reg sb r (Ir.Eval.get_reg sa orig))
              (Ir.Loop.invariants loop');
            Ir.Eval.run_loop sa ~trips:4 loop;
            Ir.Eval.run_loop sb ~trips:4 loop';
            check Alcotest.bool "memory equal" true (mem_equal sa sb));
  ]

let unroll_equiv loop factor trips =
  let unrolled, live_map = Ir.Unroll.loop ~factor loop in
  let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
  seed_state sa loop;
  seed_state sb loop;
  Ir.Eval.run_loop sa ~trips:(factor * trips) loop;
  Ir.Eval.run_loop sb ~trips unrolled;
  if not (mem_equal sa sb) then
    Alcotest.failf "%s x%d: memory differs\n%s" (Ir.Loop.name loop) factor (mem_diff sa sb);
  Ir.Vreg.Map.iter
    (fun src dst ->
      check Alcotest.bool (Ir.Vreg.to_string src) true
        (Ir.Eval.value_equal (Ir.Eval.get_reg sa src) (Ir.Eval.get_reg sb dst)))
    live_map

let unroll_tests =
  [
    case "factor-1-identity" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let loop', m = Ir.Unroll.loop ~factor:1 loop in
        check Alcotest.int "same size" (Ir.Loop.size loop) (Ir.Loop.size loop');
        Ir.Vreg.Map.iter (fun a b -> check Alcotest.bool "id map" true (Ir.Vreg.equal a b)) m);
    case "size-scales" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:1 in
        let loop', _ = Ir.Unroll.loop ~factor:3 loop in
        check Alcotest.int "3x" (3 * Ir.Loop.size loop) (Ir.Loop.size loop'));
    case "rejects-factor-0" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Unroll.loop ~factor:0 (Workload.Kernels.vcopy ~unroll:1));
             false
           with Invalid_argument _ -> true));
    case "equivalent-streaming" (fun () -> unroll_equiv (Workload.Kernels.daxpy ~unroll:1) 4 3);
    case "equivalent-reduction" (fun () -> unroll_equiv (Workload.Kernels.dot ~unroll:1) 3 4);
    case "equivalent-recurrence" (fun () ->
        unroll_equiv (Workload.Kernels.first_order_rec ~unroll:1) 2 5);
    case "equivalent-memory-recurrence" (fun () ->
        unroll_equiv (Workload.Kernels.tridiag ~unroll:1) 2 4);
    case "unrolling-raises-ideal-ipc" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let unrolled, _ = Ir.Unroll.loop ~factor:8 loop in
        let ipc l =
          let ddg = Ddg.Graph.of_loop l in
          match Sched.Modulo.ideal ~machine:Mach.Machine.paper_ideal ddg with
          | Some o -> float_of_int (Ir.Loop.size l) /. float_of_int o.Sched.Modulo.ii
          | None -> 0.0
        in
        check Alcotest.bool "ipc grows" true (ipc unrolled > (2.0 *. ipc loop)));
    qcheck ~count:25 "unroll-equivalence-random" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        unroll_equiv loop (2 + (seed mod 3)) 3;
        true);
    case "shift-iterations-equivalence" (fun () ->
        (* running 3 then shifted-by-3 for 2 equals running 5 *)
        let loop = Workload.Kernels.stencil3 ~unroll:1 in
        let shifted = Ir.Unroll.shift_iterations ~by:3 loop in
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        seed_state sa loop;
        seed_state sb loop;
        Ir.Eval.run_loop sa ~trips:5 loop;
        Ir.Eval.run_loop sb ~trips:3 loop;
        Ir.Eval.run_loop sb ~trips:2 shifted;
        check Alcotest.bool "memory" true (mem_equal sa sb));
    case "with-remainder-non-divisible" (fun () ->
        (* trips = 7, factor = 3: main x2, remainder x1 — across a
           reduction so the recurrence flows main -> remainder *)
        let loop = Workload.Kernels.dot ~unroll:1 in
        let p = Ir.Unroll.with_remainder ~factor:3 ~trips:7 loop in
        check Alcotest.int "main trips" 2 p.Ir.Unroll.main_trips;
        check Alcotest.int "rem trips" 1 p.Ir.Unroll.remainder_trips;
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        seed_state sa loop;
        seed_state sb loop;
        Ir.Eval.run_loop sa ~trips:7 loop;
        Ir.Eval.run_loop sb ~trips:p.Ir.Unroll.main_trips p.Ir.Unroll.main;
        (match p.Ir.Unroll.remainder with
        | Some r -> Ir.Eval.run_loop sb ~trips:p.Ir.Unroll.remainder_trips r
        | None -> Alcotest.fail "expected a remainder");
        if not (mem_equal sa sb) then Alcotest.failf "memory differs\n%s" (mem_diff sa sb);
        (* the reduction register keeps its name through both loops *)
        Ir.Vreg.Set.iter
          (fun r ->
            check Alcotest.bool "live-out equal" true
              (Ir.Eval.value_equal (Ir.Eval.get_reg sa r) (Ir.Eval.get_reg sb r)))
          (Ir.Loop.live_out loop));
    case "with-remainder-divisible-has-none" (fun () ->
        let p = Ir.Unroll.with_remainder ~factor:4 ~trips:8 (Workload.Kernels.vcopy ~unroll:1) in
        check Alcotest.bool "no remainder" true (p.Ir.Unroll.remainder = None);
        check Alcotest.int "main trips" 2 p.Ir.Unroll.main_trips);
    qcheck ~count:20 "with-remainder-equivalence-random"
      QCheck2.Gen.(pair gen_loop_seed (pair (int_range 1 4) (int_range 0 9)))
      (fun (seed, (factor, trips)) ->
        let loop = loop_of_seed seed in
        let p = Ir.Unroll.with_remainder ~factor ~trips loop in
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        seed_state sa loop;
        seed_state sb loop;
        Ir.Eval.run_loop sa ~trips loop;
        if p.Ir.Unroll.main_trips > 0 then
          Ir.Eval.run_loop sb ~trips:p.Ir.Unroll.main_trips p.Ir.Unroll.main;
        (match p.Ir.Unroll.remainder with
        | Some r -> Ir.Eval.run_loop sb ~trips:p.Ir.Unroll.remainder_trips r
        | None -> ());
        mem_equal sa sb);
  ]

let lower_tests =
  [
    case "const-op-evaluates" (fun () ->
        let st = Ir.Eval.create () in
        let d = vreg ~cls:i 1 in
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:d ~imm:42 ~id:0 ~opcode:Mach.Opcode.Const ~cls:i ());
        check Alcotest.bool "42" true (Ir.Eval.value_equal (Ir.Eval.I 42) (Ir.Eval.get_reg st d)));
    case "const-requires-imm" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Op.make ~dst:(vreg ~cls:i 1) ~id:0 ~opcode:Mach.Opcode.Const ~cls:i ());
             false
           with Invalid_argument _ -> true));
    case "const-parse-roundtrip" (fun () ->
        match Ir.Parse.loop_of_string "  const c, #7\n  store c[0], c\n" with
        | Error e -> Alcotest.fail e
        | Ok loop -> (
            match Ir.Op.imm (List.hd (Ir.Loop.ops loop)) with
            | Some 7 -> ()
            | _ -> Alcotest.fail "imm lost"));
    case "scalar-only-loop-unchanged" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        Ir.Builder.store b f (Ir.Addr.scalar "y") x;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let loop', inits = Ir.Lower_addr.loop loop in
        check Alcotest.int "same size" (Ir.Loop.size loop) (Ir.Loop.size loop');
        check Alcotest.int "no ivs" 0 (List.length inits));
    case "lowered-accesses-are-stride-0" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let loop', inits = Ir.Lower_addr.loop loop in
        check Alcotest.int "one stride, one iv" 1 (List.length inits);
        List.iter
          (fun op ->
            match Ir.Op.addr op with
            | Some a -> check Alcotest.int "stride 0" 0 a.Ir.Addr.stride
            | None -> ())
          (Ir.Loop.ops loop'));
    case "rejects-indexed-input" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Lower_addr.loop (Workload.Kernels.gather ~unroll:1));
             false
           with Invalid_argument _ -> true));
    case "lowered-semantics-preserved" (fun () ->
        List.iter
          (fun loop ->
            let loop', inits = Ir.Lower_addr.loop loop in
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            seed_state sb loop;
            List.iter (fun (iv, v) -> Ir.Eval.set_reg sb iv (Ir.Eval.I v)) inits;
            Ir.Eval.run_loop sa ~trips:5 loop;
            Ir.Eval.run_loop sb ~trips:5 loop';
            if not (mem_equal sa sb) then
              Alcotest.failf "%s: lowering diverges\n%s" (Ir.Loop.name loop) (mem_diff sa sb))
          [ Workload.Kernels.daxpy ~unroll:2; Workload.Kernels.stencil3 ~unroll:1;
            Workload.Kernels.tridiag ~unroll:1; Workload.Kernels.cmul ~unroll:2;
            Workload.Kernels.dot ~unroll:4 ]);
    case "lowered-loop-pipelines-and-partitions" (fun () ->
        let loop, _ = Ir.Lower_addr.loop (Workload.Kernels.daxpy ~unroll:4) in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check Alcotest.bool "done" true (r.Partition.Driver.degradation >= 100.0));
    case "lowering-raises-ii-realistically" (fun () ->
        (* address arithmetic adds int ops; the II can only grow *)
        let loop = Workload.Kernels.hydro ~unroll:2 in
        let lowered, _ = Ir.Lower_addr.loop loop in
        let ii l =
          match Sched.Modulo.ideal ~machine:Mach.Machine.paper_ideal (Ddg.Graph.of_loop l) with
          | Some o -> o.Sched.Modulo.ii
          | None -> -1
        in
        check Alcotest.bool "ii grows or stays" true (ii lowered >= ii loop));
  ]

let distribute_tests =
  [
    case "cmul-splits-into-two" (fun () ->
        (* real and imaginary results share loads of ar/ai/br/bi, so cmul
           is ONE piece; build a genuinely separable loop instead *)
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        Ir.Builder.store b f (Ir.Addr.element "y") x;
        let u = Ir.Builder.load b f (Ir.Addr.element "u") in
        let v = Ir.Builder.unop b Mach.Opcode.Neg f u in
        Ir.Builder.store b f (Ir.Addr.element "w") v;
        let loop = Ir.Builder.loop b ~name:"two" () in
        let pieces = Ir.Distribute.split loop in
        check Alcotest.int "2 pieces" 2 (List.length pieces);
        check Alcotest.int "ops preserved" (Ir.Loop.size loop)
          (List.fold_left (fun acc p -> acc + Ir.Loop.size p) 0 pieces));
    case "connected-loop-is-one-piece" (fun () ->
        check Alcotest.bool "daxpy connected" false
          (Ir.Distribute.is_distributable (Workload.Kernels.daxpy ~unroll:2)));
    case "unrolled-slices-stay-joined-by-memory" (fun () ->
        (* vcopy-u2 slices write the same array: the store base joins them *)
        check Alcotest.bool "vcopy-u2 one piece" false
          (Ir.Distribute.is_distributable (Workload.Kernels.vcopy ~unroll:2)));
    case "distribution-preserves-semantics" (fun () ->
        let b = Ir.Builder.create () in
        let s = Ir.Builder.fresh ~name:"s" b f in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        Ir.Builder.define b Mach.Opcode.Add f ~into:s [ s; x ];
        let u = Ir.Builder.load b i (Ir.Addr.element "iu") in
        let w = Ir.Builder.binop b Mach.Opcode.Shl i u u in
        Ir.Builder.store b i (Ir.Addr.element "io") w;
        let loop = Ir.Builder.loop b ~name:"mix" ~live_out:[ s ] () in
        let pieces = Ir.Distribute.split loop in
        check Alcotest.int "2 pieces" 2 (List.length pieces);
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        seed_state sa loop;
        seed_state sb loop;
        Ir.Eval.run_loop sa ~trips:5 loop;
        List.iter (fun p -> Ir.Eval.run_loop sb ~trips:5 p) pieces;
        check Alcotest.bool "memory" true (mem_equal sa sb);
        check Alcotest.bool "live-out s" true
          (Ir.Eval.value_equal (Ir.Eval.get_reg sa s) (Ir.Eval.get_reg sb s)));
    case "live-outs-routed-to-defining-piece" (fun () ->
        let b = Ir.Builder.create () in
        let s = Ir.Builder.fresh ~name:"s" b f in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        Ir.Builder.define b Mach.Opcode.Add f ~into:s [ s; x ];
        let u = Ir.Builder.load b f (Ir.Addr.element "u") in
        Ir.Builder.store b f (Ir.Addr.element "w") u;
        let loop = Ir.Builder.loop b ~name:"t" ~live_out:[ s ] () in
        let pieces = Ir.Distribute.split loop in
        let with_s =
          List.filter (fun p -> not (Ir.Vreg.Set.is_empty (Ir.Loop.live_out p))) pieces
        in
        check Alcotest.int "exactly one piece owns s" 1 (List.length with_s));
  ]

let suite =
  [
    ("ir.vreg", vreg_tests);
    ("ir.parse", parse_tests);
    ("ir.unroll", unroll_tests);
    ("ir.lower-addr", lower_tests);
    ("ir.distribute", distribute_tests);
    ("ir.addr", addr_tests);
    ("ir.op", op_tests);
    ("ir.builder", builder_tests);
    ("ir.loop", loop_tests);
    ("ir.eval", eval_tests);
  ]
