open Testlib

(* The independent dataflow engine (lib/analysis): lattice/solver
   behavior, agreement with the single-pass Regalloc liveness, and the
   translation validation of the DDG. *)

let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

let op ?dst ?srcs ?addr ?imm ~id opcode cls =
  Ir.Op.make ?dst ?srcs ?addr ?imm ~id ~opcode ~cls ()

let load ~id dst ?(offset = 0) base =
  op ~dst ~addr:(Ir.Addr.element ~offset base) ~id Mach.Opcode.Load (Ir.Vreg.cls dst)

let store ~id v ?(offset = 0) base =
  op ~srcs:[ v ] ~addr:(Ir.Addr.element ~offset base) ~id Mach.Opcode.Store (Ir.Vreg.cls v)

let add ~id dst a b = op ~dst ~srcs:[ a; b ] ~id Mach.Opcode.Add (Ir.Vreg.cls dst)
let const ~id dst v = op ~dst ~imm:v ~id Mach.Opcode.Const (Ir.Vreg.cls dst)

let set = Ir.Vreg.Set.of_list

(* ------------------------------------------------------------------ *)
(* Solver + lattice                                                    *)
(* ------------------------------------------------------------------ *)

let solver_tests =
  [
    case "ring-edges-wrap" (fun () ->
        check
          Alcotest.(list (pair int int))
          "forward ring" [ (0, 1); (1, 2); (2, 0) ] (Analysis.Solver.ring 3);
        check
          Alcotest.(list (pair int int))
          "reversed ring" [ (1, 0); (2, 1); (0, 2) ]
          (Analysis.Solver.ring_rev 3);
        check Alcotest.(list (pair int int)) "self ring" [ (0, 0) ] (Analysis.Solver.ring 1));
    case "liveness-converges-with-stats" (fun () ->
        List.iter
          (fun loop ->
            let l = Analysis.Liveness.of_loop loop in
            check Alcotest.bool "converged" true l.Analysis.Liveness.stats.Analysis.Solver.converged;
            check Alcotest.bool "did some work" true
              (l.Analysis.Liveness.stats.Analysis.Solver.iterations > 0))
          (sample_loops ~n:12 ()));
    qcheck "valrange-const-chain-folds" gen_loop_seed (fun seed ->
        (* a const-fed add is provably constant regardless of the loop *)
        ignore seed;
        let a = vreg ~cls:i 0 and b = vreg ~cls:i 1 and c = vreg ~cls:i 2 in
        let ops =
          [ const ~id:0 a 5; const ~id:1 b (seed mod 100); add ~id:2 c a b ]
        in
        let loop = Ir.Loop.make ~name:"k" ~live_out:(set [ c ]) ops in
        let vr = Analysis.Valrange.of_loop loop in
        let consts = Analysis.Valrange.constant_ops loop vr in
        List.length consts = 3
        && List.exists (fun (o, v) -> Ir.Op.id o = 2 && v = 5 + (seed mod 100)) consts
        && List.length (Analysis.Valrange.remat_candidates loop vr) = 3);
    case "valrange-widens-induction-variable" (fun () ->
        (* s = s + 1 grows every iteration: must widen to non-constant,
           not fold — and must converge. *)
        let s = vreg ~cls:i 0 and one = vreg ~cls:i 1 in
        let ops = [ const ~id:0 one 1; add ~id:1 s s one ] in
        let loop = Ir.Loop.make ~name:"iv" ~live_out:(set [ s ]) ops in
        let vr = Analysis.Valrange.of_loop loop in
        check Alcotest.bool "converged" true vr.Analysis.Valrange.stats.Analysis.Solver.converged;
        check Alcotest.bool "iv is not constant" true
          (List.for_all (fun (o, _) -> Ir.Op.id o <> 1)
             (Analysis.Valrange.constant_ops loop vr)));
  ]

(* ------------------------------------------------------------------ *)
(* Cyclic liveness vs the single-pass implementation                   *)
(* ------------------------------------------------------------------ *)

let liveness_tests =
  [
    qcheck "cyclic-liveness-agrees-with-regalloc" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ops = Ir.Loop.ops loop in
        let l = Analysis.Liveness.of_loop loop in
        let reference =
          Regalloc.Liveness.backward ops ~live_out:(Regalloc.Liveness.loop_live_out loop)
        in
        Array.length l.Analysis.Liveness.before = Array.length reference
        && Array.for_all2 Ir.Vreg.Set.equal l.Analysis.Liveness.before reference);
    qcheck "one-bank-maxlive-is-maxlive" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let l = Analysis.Liveness.of_loop loop in
        let peaks = Analysis.Liveness.per_bank_max_live l ~banks:1 ~bank_of:(fun _ -> 0) in
        peaks.(0) = Analysis.Liveness.max_live l);
    qcheck "class-peaks-bound-total-peak" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let l = Analysis.Liveness.of_loop loop in
        let peaks =
          Analysis.Liveness.per_bank_max_live l ~banks:2
            ~bank_of:(fun r -> if Ir.Vreg.cls r = Mach.Rclass.Int then 0 else 1)
        in
        let total = Analysis.Liveness.max_live l in
        peaks.(0) <= total && peaks.(1) <= total && total <= peaks.(0) + peaks.(1));
    case "dead-chain-found-transitively" (fun () ->
        (* b is never read (IR003 territory); a is read only by b's dead
           op, which only the iterated liveness can see. *)
        let a = vreg 0 and b = vreg 1 and c = vreg 2 in
        let ops =
          [
            load ~id:0 a "x"; add ~id:1 b a a; load ~id:2 c "y"; store ~id:3 c "z";
          ]
        in
        let loop = Ir.Loop.make ~name:"dead" ops in
        let dead = List.map Ir.Op.id (Analysis.Liveness.dead_ops loop) in
        check Alcotest.(list int) "both rounds found, body order" [ 0; 1 ] dead);
  ]

(* ------------------------------------------------------------------ *)
(* Reaching definitions + dependence analysis                          *)
(* ------------------------------------------------------------------ *)

let accumulator_loop () =
  let x = vreg 0 and s = vreg 1 in
  let ops = [ load ~id:0 x "x"; add ~id:1 s s x ] in
  Ir.Loop.make ~name:"acc" ~live_out:(set [ s ]) ops

let reachdef_tests =
  [
    case "accumulator-distances" (fun () ->
        let loop = accumulator_loop () in
        let rd = Analysis.Reachdef.of_loop loop in
        let x = vreg 0 and s = vreg 1 in
        check
          Alcotest.(list (pair int int))
          "x reaches its use this iteration" [ (0, 0) ]
          (Analysis.Reachdef.reaching rd ~pos:1 x);
        check
          Alcotest.(list (pair int int))
          "s reaches its own redefinition from last iteration" [ (1, 1) ]
          (Analysis.Reachdef.reaching rd ~pos:1 s));
    case "accumulator-self-flow-edge" (fun () ->
        let loop = accumulator_loop () in
        let dep = Analysis.Depan.of_loop loop in
        check Alcotest.bool "self flow at distance 1" true
          (List.exists
             (fun (e : Analysis.Depan.edge) ->
               e.Analysis.Depan.src = 1 && e.Analysis.Depan.dst = 1
               && e.Analysis.Depan.kind = Ddg.Dep.Flow
               && e.Analysis.Depan.distance = 1)
             dep.Analysis.Depan.edges));
    qcheck ~count:150 "ddg-and-analysis-agree-edge-by-edge" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let dep = Analysis.Depan.of_loop loop in
        let ddg = Ddg.Graph.of_loop loop in
        let r = Analysis.Validate.run dep ddg in
        r.Analysis.Validate.findings = []
        && r.Analysis.Validate.matched = r.Analysis.Validate.analysis_edges
        && r.Analysis.Validate.matched = r.Analysis.Validate.ddg_edges);
    qcheck "analysis-distances-never-exceed-ddg" gen_loop_seed (fun seed ->
        (* the soundness half on its own: every DDG edge is justified at
           a distance no larger than the analysis requires *)
        let loop = loop_of_seed seed in
        let dep = Analysis.Depan.of_loop loop in
        let keyed =
          List.map
            (fun (e : Analysis.Depan.edge) ->
              ((e.Analysis.Depan.src, e.Analysis.Depan.dst, e.Analysis.Depan.kind),
               e.Analysis.Depan.distance))
            dep.Analysis.Depan.edges
        in
        let ok = ref true in
        Graphlib.Digraph.iter_edges
          (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
            match List.assoc_opt (e.src, e.dst, Ddg.Dep.kind e.label) keyed with
            | None -> ok := false
            | Some d -> if Ddg.Dep.distance e.label > d then ok := false)
          (Ddg.Graph.graph (Ddg.Graph.of_loop loop));
        !ok);
    case "validator-catches-weakened-memory-edge" (fun () ->
        (* Same op ids, but the DDG is built from a body whose store
           lands one element further: its loop-carried memory flow
           distance becomes 2 where the real body requires 1. *)
        let t = vreg 0 in
        let real =
          Ir.Loop.make ~name:"m" [ store ~id:0 t ~offset:1 "a"; load ~id:1 t "a" ]
        in
        let weakened =
          Ir.Loop.make ~name:"m" [ store ~id:0 t ~offset:2 "a"; load ~id:1 t "a" ]
        in
        let dep = Analysis.Depan.of_loop real in
        let r = Analysis.Validate.run dep (Ddg.Graph.of_loop weakened) in
        check Alcotest.bool "unsoundness detected" true (Analysis.Validate.has_errors r);
        check Alcotest.bool "as a distance violation" true
          (List.exists
             (fun (fd : Analysis.Validate.finding) ->
               fd.Analysis.Validate.mismatch = Analysis.Validate.Distance_exceeds)
             r.Analysis.Validate.findings));
    case "validator-catches-missing-edge" (fun () ->
        (* DDG built from a body whose addresses never alias: the real
           body's memory dependence has no counterpart at all. *)
        let t = vreg 0 and u = vreg 1 in
        let real =
          Ir.Loop.make ~name:"m2"
            [ load ~id:0 t "a"; store ~id:1 u "a"; store ~id:2 t "q" ]
            ~live_out:(set [ t ])
        in
        let severed =
          Ir.Loop.make ~name:"m2"
            [ load ~id:0 t "a"; store ~id:1 u "b"; store ~id:2 t "q" ]
            ~live_out:(set [ t ])
        in
        let dep = Analysis.Depan.of_loop real in
        let r = Analysis.Validate.run dep (Ddg.Graph.of_loop severed) in
        check Alcotest.bool "unsoundness detected" true (Analysis.Validate.has_errors r);
        check Alcotest.bool "as a missing edge" true
          (List.exists
             (fun (fd : Analysis.Validate.finding) ->
               fd.Analysis.Validate.mismatch = Analysis.Validate.Missing_in_ddg)
             r.Analysis.Validate.findings));
    qcheck "edge-list-is-sorted-and-deduped" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let dep = Analysis.Depan.of_loop loop in
        let rec sorted = function
          | a :: (b :: _ as rest) ->
              (let c = compare (a.Analysis.Depan.src, a.Analysis.Depan.dst) (b.Analysis.Depan.src, b.Analysis.Depan.dst) in
               c < 0
               || (c = 0
                  && compare
                       (Analysis.Depan.kind_rank a.Analysis.Depan.kind, a.Analysis.Depan.distance)
                       (Analysis.Depan.kind_rank b.Analysis.Depan.kind, b.Analysis.Depan.distance)
                     < 0))
              && sorted rest
          | _ -> true
        in
        sorted dep.Analysis.Depan.edges);
  ]

(* ------------------------------------------------------------------ *)
(* Verify wiring + summary                                             *)
(* ------------------------------------------------------------------ *)

let wiring_tests =
  [
    case "analysis-check-clean-on-kernels" (fun () ->
        List.iter
          (fun loop ->
            check Alcotest.(list string) (Ir.Loop.name loop) []
              (List.map Verify.Diag.to_string (Verify.Analysis_check.check loop)))
          (sample_loops ~n:16 ()));
    case "analysis-check-reports-an006-not-ir003-twin" (fun () ->
        let a = vreg 0 and b = vreg 1 and c = vreg 2 in
        let ops =
          [ load ~id:0 a "x"; add ~id:1 b a a; load ~id:2 c "y"; store ~id:3 c "z" ]
        in
        let loop = Ir.Loop.make ~name:"dead" ops in
        let diags = Verify.Analysis_check.check loop in
        let an006 = List.filter (fun d -> d.Verify.Diag.code = "AN006") diags in
        check Alcotest.int "one transitive dead op" 1 (List.length an006);
        check Alcotest.bool "anchored at the chain head" true
          (match an006 with
          | [ d ] -> ( match d.Verify.Diag.loc with Some l -> contains l "op 0" | None -> false)
          | _ -> false));
    case "analysis-check-counters" (fun () ->
        let obs = Obs.Trace.make ~clock:(Obs.Clock.fake ()) () in
        let loop = accumulator_loop () in
        let diags = Verify.Analysis_check.check ~obs loop in
        check Alcotest.(list string) "clean" [] (List.map Verify.Diag.to_string diags);
        check Alcotest.bool "iterations counted" true
          (Obs.Trace.counter_value obs Obs.Counter.Analysis_iterations > 0);
        check Alcotest.int "no diff discrepancies" 0
          (Obs.Trace.counter_value obs Obs.Counter.Analysis_ddg_diff));
    case "analysis-check-remat-info-gated" (fun () ->
        let a = vreg ~cls:i 0 in
        let loop =
          Ir.Loop.make ~name:"c" ~live_out:(set [ a ]) [ const ~id:0 a 42 ]
        in
        let quiet = Verify.Analysis_check.check loop in
        check Alcotest.bool "no AN008 by default" false
          (Verify.Diag.has_code "AN008" quiet);
        let chatty = Verify.Analysis_check.check ~remat_info:true loop in
        check Alcotest.bool "AN008 under remat_info" true
          (Verify.Diag.has_code "AN008" chatty);
        check Alcotest.bool "still no errors" false (Verify.Diag.has_errors chatty));
    case "pipeline-run-appends-analysis-stage" (fun () ->
        let loop = accumulator_loop () in
        let stages = Verify.Pipeline.stages ~machine:m4x4e loop in
        let diags = Verify.Pipeline.run stages in
        check Alcotest.(list string) "clean end to end" []
          (List.map Verify.Diag.to_string diags));
    qcheck ~count:50 "summary-is-deterministic" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let name = Ir.Loop.name loop in
        let a = Analysis.Summary.of_loop ~name loop in
        let b = Analysis.Summary.of_loop ~name loop in
        a = b
        && Obs.Json.to_string (Analysis.Summary.to_json a)
           = Obs.Json.to_string (Analysis.Summary.to_json b));
    qcheck ~count:50 "summary-json-round-trips" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let s = Analysis.Summary.of_loop ~name:(Ir.Loop.name loop) loop in
        match Obs.Json.of_string (Obs.Json.to_string (Analysis.Summary.to_json s)) with
        | Ok j ->
            Obs.Json.member "diff_errors" j = Some (Obs.Json.Num 0.0)
            && Obs.Json.member "loop" j = Some (Obs.Json.Str (Ir.Loop.name loop))
        | Error _ -> false);
  ]

let suite =
  [
    ("analysis.solver", solver_tests);
    ("analysis.liveness", liveness_tests);
    ("analysis.depan", reachdef_tests);
    ("analysis.wiring", wiring_tests);
  ]
