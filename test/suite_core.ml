open Testlib

let mk ?(name = "l") ?(ideal = 2) ?(clustered = 2) ?(copies = 0) () =
  {
    Core.Metrics.name;
    ideal_ii = ideal;
    clustered_ii = clustered;
    degradation = 100.0 *. float_of_int clustered /. float_of_int ideal;
    ipc_ideal = 8.0;
    ipc_clustered = 7.0;
    n_copies = copies;
    n_ops = 16;
  }

let metrics_tests =
  [
    case "degradation-means" (fun () ->
        let ms = [ mk ~clustered:2 (); mk ~clustered:3 () ] in
        (* 100 and 150 *)
        check (Alcotest.float 1e-9) "arith" 125.0
          (Core.Metrics.arithmetic_mean_degradation ms);
        check (Alcotest.float 1e-6) "harmonic" 120.0
          (Core.Metrics.harmonic_mean_degradation ms));
    case "pct-no-degradation" (fun () ->
        let ms = [ mk (); mk ~clustered:3 (); mk (); mk () ] in
        check (Alcotest.float 1e-9) "75%" 75.0 (Core.Metrics.pct_no_degradation ms));
    case "histogram-buckets-match-labels" (fun () ->
        let h = Core.Metrics.degradation_histogram [ mk (); mk ~clustered:3 () ] in
        check Alcotest.int "bucket count" (List.length Core.Metrics.histogram_labels)
          (Array.length h.Util.Stats.counts);
        (* 0% in bucket 0; 50% in bucket "<60%" (index 6) *)
        check Alcotest.int "zero bucket" 1 h.Util.Stats.counts.(0);
        check Alcotest.int "50 bucket" 1 h.Util.Stats.counts.(6));
    case "of-result-consistency" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            let m = Core.Metrics.of_result r in
            check Alcotest.int "ideal ii" r.Partition.Driver.ideal.Sched.Modulo.ii
              m.Core.Metrics.ideal_ii;
            check (Alcotest.float 1e-9) "degradation"
              (100.0
              *. float_of_int m.Core.Metrics.clustered_ii
              /. float_of_int m.Core.Metrics.ideal_ii)
              m.Core.Metrics.degradation);
  ]

let experiment_tests =
  [
    case "paper-configs-shape" (fun () ->
        let cfgs = Core.Experiment.paper_configs in
        check Alcotest.int "six" 6 (List.length cfgs);
        List.iter
          (fun (c : Core.Experiment.config) ->
            check Alcotest.int "16 wide" 16 (Mach.Machine.width c.machine))
          cfgs);
    case "run-config-small" (fun () ->
        let loops = sample_loops ~n:8 () in
        let cfg = Core.Experiment.config_for ~clusters:4 ~copy_model:Mach.Machine.Embedded in
        let run = Core.Experiment.run_config ~loops cfg in
        check Alcotest.int "all pipelined" 8 (List.length run.Core.Experiment.metrics);
        check Alcotest.int "no failures" 0 (List.length run.Core.Experiment.failures));
    case "report-tables-render" (fun () ->
        let loops = sample_loops ~n:6 () in
        let runs = Core.Experiment.run_all ~loops () in
        let t1 = Core.Report.table1 ~ideal_ipc:8.6 runs in
        let t2 = Core.Report.table2 runs in
        check Alcotest.bool "t1 has Ideal" true (contains (Util.Table.render t1) "Ideal");
        check Alcotest.bool "t2 has Harmonic" true (contains (Util.Table.render t2) "Harmonic");
        let e = List.nth runs 0 and c = List.nth runs 1 in
        let fig = Core.Report.figure_histogram e c ~title:"fig" in
        check Alcotest.bool "fig has buckets" true
          (contains (Util.Table.render fig) "0.00%");
        check Alcotest.bool "ascii renders" true
          (String.length (Core.Report.ascii_histogram e c ~title:"t") > 0);
        check Alcotest.bool "failures none" true
          (contains (Core.Report.failures_summary runs) "none"));
  ]

(* Whole-function path: global RCG build + per-block copy insertion. *)
let whole_function_tests =
  [
    case "func-rcg-and-partition" (fun () ->
        let f = Mach.Rclass.Float in
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        let y = Ir.Builder.load b f (Ir.Addr.scalar "y") in
        Ir.Builder.start_block ~depth:1 b "hot";
        let s = Ir.Builder.binop b Mach.Opcode.Mul f x y in
        let t = Ir.Builder.binop b Mach.Opcode.Add f s x in
        Ir.Builder.store b f (Ir.Addr.scalar "o") t;
        let fn = Ir.Builder.func b ~name:"wf" ~edges:[ ("entry", "hot") ] in
        let g = Rcg.Build.of_func ~machine:ideal16 fn in
        let a = Partition.Greedy.partition ~banks:4 g in
        check Alcotest.bool "covers func regs" true
          (Ir.Vreg.Set.for_all
             (fun r -> Partition.Assign.bank_opt a r <> None)
             (Ir.Func.vregs fn)));
    case "block-copy-insertion" (fun () ->
        let f = Mach.Rclass.Float in
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
        Ir.Builder.store b f (Ir.Addr.scalar "o") y;
        let fn = Ir.Builder.func b ~name:"wf" ~edges:[] in
        let blk = Ir.Func.entry fn in
        (* force x and y into different banks *)
        let a = Partition.Assign.of_list [ (x, 0); (y, 1) ] in
        let blk', a', n =
          Partition.Copies.insert_block ~machine:m4x4e ~assignment:a ~fresh_vreg:100
            ~fresh_op:100 blk
        in
        check Alcotest.int "1 copy" 1 n;
        (* semantics preserved *)
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        Ir.Eval.run_ops sa (Ir.Block.ops blk);
        Ir.Eval.run_ops sb (Ir.Block.ops blk');
        check Alcotest.bool "memory" true (mem_equal sa sb);
        check Alcotest.bool "assignment extended" true
          (Ir.Vreg.Map.cardinal a' > Ir.Vreg.Map.cardinal a));
  ]

let suite =
  [
    ("core.metrics", metrics_tests);
    ("core.experiment", experiment_tests);
    ("core.whole-function", whole_function_tests);
  ]
