Per-request forensics end-to-end, pinned byte-for-byte: --deterministic
freezes the daemon's request clock at 0, seeds the trace-id stream with
0 (first draw e220a8397b1dcdaf) and steps the logger clock 1 ms per
line, so every frame, table, log line and dump below is stable.

  $ rbp serve --listen unix:./d.sock --deterministic --faults \
  >   --allow-shutdown -w 1 --log-json 2> serve.jsonl &
  $ SERVE_PID=$!

A compile naming its own trace id gets it echoed; trace:true rides the
full span tree in the reply — the ladder, every rung, the allocator:

  $ rbp call unix:./d.sock --retry-for 10 '{"op":"compile","id":"one","ir":"loop l depth 1 trip 10\nadd.f a, b, c\n","trace_id":"abc-1","trace":true}'
  {"status":"ok","id":"one","trace_id":"abc-1","result":{"ok":{"name":"l","ideal_ii":1,"clustered_ii":1,"degradation":100,"ipc_ideal":1,"ipc_clustered":1,"n_copies":0,"n_ops":1}},"cache":"miss","rung":"pipelined(greedy, budget=10)","pipelined":true,"spills":0,"attempts":[],"queue_ms":0,"compile_ms":0,"total_ms":0,"trace":{"spans":[{"name":"ladder","start":0,"dur":0,"attrs":{"loop":"l","machine":"4x4-embedded"},"children":[{"name":"modulo.schedule","start":0,"dur":0,"attrs":{"mii":"1","ops":"1","ii":"1"},"children":[{"name":"modulo.try_ii","start":0,"dur":0,"attrs":{"ii":"1"}}]},{"name":"ladder.rung","start":0,"dur":0,"attrs":{"rung":"pipelined(greedy, budget=10)"},"children":[{"name":"rcg.build","start":0,"dur":0,"attrs":{}},{"name":"greedy.partition","start":0,"dur":0,"attrs":{"nodes":"3","banks":"4"}},{"name":"modulo.schedule","start":0,"dur":0,"attrs":{"mii":"1","ops":"1","ii":"1"},"children":[{"name":"modulo.try_ii","start":0,"dur":0,"attrs":{"ii":"1"}}]},{"name":"alloc","start":0,"dur":0,"attrs":{"subject":"l","banks":"4"},"children":[{"name":"alloc.round","start":0,"dur":0,"attrs":{"round":"1"}}]}]}]}],"truncated":false}}

Without a client id the seeded stream provides one — and without
trace:true the frame is byte-identical to the pre-tracing encoding,
save the trace_id field:

  $ rbp call unix:./d.sock '{"op":"compile","id":"two","ir":"loop l depth 1 trip 10\nadd.f a, b, c\n"}'
  {"status":"ok","id":"two","trace_id":"e220a8397b1dcdaf","result":{"ok":{"name":"l","ideal_ii":1,"clustered_ii":1,"degradation":100,"ipc_ideal":1,"ipc_clustered":1,"n_copies":0,"n_ops":1}},"cache":"hit","rung":"pipelined(greedy, budget=10)","pipelined":true,"spills":0,"attempts":[],"queue_ms":0,"compile_ms":0,"total_ms":0}

A poison request crashes its worker until quarantined (SRV003); the
anomaly is retained in the flight recorder's separate ring:

  $ rbp call unix:./d.sock '{"op":"compile","id":"boom","ir":"loop l depth 1 trip 10\nadd.f a, b, c\n","trace_id":"poison-1","fault":"crash-worker"}'
  {"status":"error","id":"boom","trace_id":"poison-1","result":{"err":{"stage":"verification","code":"SRV003","message":"request quarantined after crashing its worker 3 time(s)","subject":"boom","attempts":[]}},"cache":"bypass","pipelined":false,"spills":0,"attempts":[],"queue_ms":0,"compile_ms":0,"total_ms":0}

The flight op reconstructs every request's journey after the fact:

  $ rbp flight unix:./d.sock
  requests (3)
    trace_id           id           status           cache     queue_ms   comp_ms  total_ms
    abc-1              one          ok               miss         0.000     0.000     0.000  via pipelined(greedy, budget=10)
        trace: 10 span(s)
    e220a8397b1dcdaf   two          ok               hit          0.000     0.000     0.000  via pipelined(greedy, budget=10)
        trace: 0 span(s)
    poison-1           boom         error/quarantine bypass       0.000     0.000     0.000
  
  anomalies (1)
    trace_id           id           status           cache     queue_ms   comp_ms  total_ms
    poison-1           boom         error/quarantine bypass       0.000     0.000     0.000


The post-mortem view — anomalies only, as machine-readable JSON:

  $ rbp flight unix:./d.sock --anomalies --json
  {"schema":"rbp-flight/1","capacity":256,"anomaly_capacity":64,"span_cap":64,"requests":[],"anomalies":[{"trace_id":"poison-1","id":"boom","status":"error","anomaly":"quarantine","cache":"bypass","queue_ms":0,"compile_ms":0,"total_ms":0,"attempts":[],"ts":0}]}

  $ rbp call unix:./d.sock '{"op":"shutdown"}'
  {"status":"bye"}
  $ wait $SERVE_PID

The structured log: one JSON object per line, fixed key order, 1 ms
logger ticks, a trace_id column on every line:

  $ cat serve.jsonl
  {"ts":0,"level":"info","msg":"rbp serve: listening on unix:./d.sock (1 workers, queue limit 64, fault injection ON)","trace_id":"-"}
  {"ts":0.001,"level":"info","msg":"rbp serve: draining","trace_id":"-"}
  {"ts":0.002,"level":"info","msg":"rbp serve: done (alloc.rounds=1, greedy.decisions=3, greedy.tie_breaks=2, ladder.rung_entered=1, sched.placements=2, serve.admitted=3, serve.cache_hits=1, serve.completed=2, serve.failed=1, serve.quarantined=1, serve.worker_restarts=3)","trace_id":"-"}

  $ sh ../../tools/check_logs.sh serve.jsonl
  check_logs: log OK (3 lines)

A second daemon that sheds everything (-q 0): the overload never enters
the request ring — bursts of sheds cannot evict completed requests —
and the SIGTERM-style drain writes the final dump to --flight-out:

  $ rbp serve --listen unix:./d2.sock --deterministic -q 0 \
  >   --allow-shutdown --flight-out flight.json 2> serve2.log &
  $ SERVE2_PID=$!

  $ rbp call unix:./d2.sock --retry-for 10 '{"op":"compile","id":"full","ir":"loop l depth 1 trip 10\nadd.f a, b, c\n"}'
  {"status":"overload","id":"full","depth":0,"retry_after_ms":25}

  $ rbp flight unix:./d2.sock --anomalies
  requests (0)
    (none)
  
  anomalies (1)
    trace_id           id           status           cache     queue_ms   comp_ms  total_ms
    e220a8397b1dcdaf   full         overload         bypass       0.000     0.000     0.000


  $ rbp call unix:./d2.sock '{"op":"shutdown"}'
  {"status":"bye"}
  $ wait $SERVE2_PID
  $ cat serve2.log
  rbp serve: listening on unix:./d2.sock (2 workers, queue limit 0)
  rbp serve: draining
  rbp serve: flight dump written to flight.json
  rbp serve: done (serve.shed=1)
  $ cat flight.json
  {"schema":"rbp-flight/1","capacity":256,"anomaly_capacity":64,"span_cap":64,"requests":[],"anomalies":[{"trace_id":"e220a8397b1dcdaf","id":"full","status":"overload","anomaly":"overload","cache":"bypass","queue_ms":0,"compile_ms":0,"total_ms":0,"attempts":[],"ts":0}]}
