rbp exact runs the branch-and-bound solver: provably minimal II under
the machine's resource and recurrence constraints, and among the
minimal-II bank assignments the one with the fewest inter-cluster
copies. On a single loop it prints the proof status next to the greedy
pipeline's result.

dot-u2 on 4 clusters is recurrence-bound, so spreading it buys nothing:
the solver proves the all-zero assignment optimal from the static bound
alone (one node), while the greedy partitioner pays three copies for
the same II.

  $ rbp exact dot-u2 -c 4
  === dot-u2 on 4x4-embedded ===
  registers 7 (slice limit 12), remat candidates 0
  greedy  II 4, 3 copies
  exact   II 4, 0 copies - proven optimal (search complete, verified)
  search  1 nodes, 2 leaves, 1 pruned, 1 backjumps
  verify  clean

daxpy-u2 on 2 clusters genuinely needs one cross-bank move; here greedy
already matches the optimum.

  $ rbp exact daxpy-u2 -c 2
  === daxpy-u2 on 2x8-embedded ===
  registers 9 (slice limit 12), remat candidates 0
  greedy  II 1, 1 copies
  exact   II 1, 1 copies - proven optimal (search complete, verified)
  search  37 nodes, 2 leaves, 19 pruned, 0 backjumps
  verify  clean

Without a loop argument the solver sweeps the tractable slice of the
suite across the paper's three geometries and prints the gap table
(Table 3 of the report).

  $ rbp exact -n 60 -j 4
  exact slice: 29 of 60 suite loops (<= 12 registers), budget 300000 nodes
  
  Table 3: greedy vs. provably optimal (exact slice)
  +----------+-------+---------+-------+-----------+--------------+-----------+----------+---------------+--------------+
  | geometry | loops | optimal | bound | exhausted | greedy-opt % | greedy II | exact II | greedy copies | exact copies |
  +==========+=======+=========+=======+===========+==============+===========+==========+===============+==============+
  | 2x8      | 29    | 28      | 1     | 0         | 37.9         | 3.64      | 3.64     | 1.07          | 0.29         |
  | 4x4      | 29    | 26      | 3     | 0         | 31.0         | 3.38      | 3.19     | 1.96          | 0.77         |
  | 8x2      | 29    | 21      | 8     | 0         | 34.5         | 3.52      | 3.00     | 2.33          | 1.14         |
  +----------+-------+---------+-------+-----------+--------------+-----------+----------+---------------+--------------+


The study is node-budgeted, never clock-budgeted, so the output is
byte-identical at any parallelism level.

  $ rbp exact -n 60 -j 1 > j1.out && rbp exact -n 60 -j 4 > j4.out
  $ cmp j1.out j4.out

--json writes rbp-bench/1 telemetry that perfdiff gates strictly: a
document is never a regression against itself, and the checked-in CI
baseline must match a fresh full-suite run metric for metric.

  $ rbp exact -n 60 -j 4 --json exact.json
  exact slice: 29 of 60 suite loops (<= 12 registers), budget 300000 nodes
  
  Table 3: greedy vs. provably optimal (exact slice)
  +----------+-------+---------+-------+-----------+--------------+-----------+----------+---------------+--------------+
  | geometry | loops | optimal | bound | exhausted | greedy-opt % | greedy II | exact II | greedy copies | exact copies |
  +==========+=======+=========+=======+===========+==============+===========+==========+===============+==============+
  | 2x8      | 29    | 28      | 1     | 0         | 37.9         | 3.64      | 3.64     | 1.07          | 0.29         |
  | 4x4      | 29    | 26      | 3     | 0         | 31.0         | 3.38      | 3.19     | 1.96          | 0.77         |
  | 8x2      | 29    | 21      | 8     | 0         | 34.5         | 3.52      | 3.00     | 2.33          | 1.14         |
  +----------+-------+---------+-------+-----------+--------------+-----------+----------+---------------+--------------+
  wrote exact.json

  $ rbp perfdiff exact.json exact.json -q
  no regressions

The checked-in CI baseline (full suite) parses and gates against
itself the same way.

  $ rbp perfdiff "../../bench/baseline/BENCH_exact.json" \
  >     "../../bench/baseline/BENCH_exact.json" -q
  no regressions

Documents solved under different budgets are incomparable — a larger
budget can only prove more, so comparing them would be meaningless.

  $ sed 's/"budget":300000/"budget":1000/' exact.json > other-budget.json
  $ rbp perfdiff exact.json other-budget.json -q
  rbp: incomparable runs: exact budget 300000 vs 1000
  [2]

A fired --deadline-ms stops cleanly: the search reports budget
exhaustion with the static lower bound and whatever incumbent the
seeds produced, rather than failing.

  $ rbp exact daxpy-u2 -c 2 --deadline-ms 0
  === daxpy-u2 on 2x8-embedded ===
  registers 9 (slice limit 12), remat candidates 0
  greedy  failed to pipeline
  exact   budget exhausted; static lower bound II >= 1
          incumbent: II 2, 0 copies (not proven optimal)
  search  0 nodes, 1 leaves, 0 pruned, 0 backjumps
  verify  clean

The same flag on the pipeline itself is a hard deadline: the run stops
at the next stage boundary with a structured PIPE008 error.

  $ rbp pipeline daxpy-u8 -c 4 --deadline-ms 0
  rbp: daxpy-u8: ideal-schedule [PIPE008]: deadline exceeded
  [1]
