The trace subcommand runs the whole framework under instrumentation and
prints the span tree. Under --deterministic a fake fixed-step clock makes
the output byte-stable: every span costs exactly two 1ms clock reads.

  $ rbp trace vcopy-u1 -c 2 --deterministic
  pipeline loop=vcopy-u1 machine=2x8-embedded partitioner=greedy [25.000ms]
    ddg.build [1.000ms]
    schedule.ideal [5.000ms]
      modulo.schedule mii=1 ops=2 ii=1 [3.000ms]
        modulo.try_ii ii=1 [1.000ms]
    partition [5.000ms]
      rcg.build [1.000ms]
      greedy.partition nodes=1 banks=2 [1.000ms]
    copies.insert [1.000ms]
    ddg.rebuild [1.000ms]
    schedule.clustered [5.000ms]
      modulo.schedule mii=1 ops=2 ii=1 [3.000ms]
        modulo.try_ii ii=1 [1.000ms]
  events: 4 decision event(s) (see jsonl export or rbp explain)
  counters:
    greedy.decisions                 1
    greedy.tie_breaks                1
    sched.placements                 4
  gauges:
    sched.clustered_mii              last 1, max 1

The JSONL export is one event object per line; the first line is the
pipeline root span.

  $ rbp trace vcopy-u1 -c 2 --deterministic -f jsonl | head -n 1
  {"type":"span","name":"pipeline","depth":0,"start":0,"dur":0.025000000000000015,"attrs":{"loop":"vcopy-u1","machine":"2x8-embedded","partitioner":"greedy"}}

The Chrome export is a single JSON object with a traceEvents list.

  $ rbp trace vcopy-u1 -c 2 --deterministic -f chrome | head -c 72
  {"traceEvents":[{"name":"pipeline","cat":"rbp","ph":"X","ts":0,"dur":250

Writing to a file reports the destination.

  $ rbp trace vcopy-u1 -c 2 --deterministic -o out.trace.jsonl
  wrote out.trace.jsonl
  $ wc -l < out.trace.jsonl | tr -d ' '
  20

The schedule subcommand reports the modulo scheduler's effort under -v.

  $ rbp schedule vcopy-u2 -c 4 -v
  vcopy-u2: II=1 (MII 1)
  effort: 4 placement(s), 0 eviction(s), 1 II(s) tried, 0 budget exhaustion(s)
  kernel (II=1, 3 stages, 4 ops):
     0: load.f f1, x[2*i] | load.f f2, x[2*i+1] | store.f y[2*i], f1 | store.f y[2*i+1], f2
  
