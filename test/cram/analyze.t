The analyze subcommand runs the independent dataflow engine: liveness
(MaxLive per class), constant/range propagation, and the dependence
analysis whose edge set is diffed against the DDG. A healthy example
matches edge-for-edge ("ok" in the diff column):

  $ rbp analyze ../../examples/saxpy.ir
  loop            ops  maxlive live/int live/flt  dead  remat  edges matched   diff iters
  saxpy2           10        3        0        3     0      0     10      10     ok    66
  analyze: 1 loop, 0 diff errors, 0 diff warnings

--maxlive additionally predicts per-bank pressure from the partitioned,
copy-inserted body; --diff-ddg prints any discrepancy findings (none
here):

  $ rbp analyze ../../examples/saxpy.ir --diff-ddg --maxlive
  loop            ops  maxlive live/int live/flt  dead  remat  edges matched   diff iters
  saxpy2           10        3        0        3     0      0     10      10     ok    66
    maxlive banks[4]: 3 3 1 1 (rewritten body)
  analyze: 1 loop, 0 diff errors, 0 diff warnings

Transitively dead chains (invisible to the syntactic lint) show up in
the dead column — here the unused add and the load feeding only it:

  $ cat > dead.ir <<'IREOF'
  > loop deadchain depth 1 trip 100
  >   load.f a0, x[1*i]
  >   add.f b0, a0, a0
  >   load.f c0, y[1*i]
  >   store.f z[1*i], c0
  > IREOF
  $ rbp analyze dead.ir
  loop            ops  maxlive live/int live/flt  dead  remat  edges matched   diff iters
  deadchain         4        1        0        1     2      0      2       2     ok    21
  analyze: 1 loop, 0 diff errors, 0 diff warnings

--json emits one machine-readable line per loop:

  $ rbp analyze ../../examples/saxpy.ir --json
  {"loop":"saxpy2","ops":10,"max_live":3,"max_live_int":0,"max_live_float":3,"dead":0,"constants":0,"remat":0,"analysis_edges":10,"ddg_edges":10,"matched":10,"diff_errors":0,"diff_warnings":0,"iterations":66,"widenings":0}

Without a file argument the whole generated suite is analyzed (capped
here with -n); results arrive in submission order regardless of -j, so
parallel runs are byte-identical:

  $ rbp analyze -n 5
  loop            ops  maxlive live/int live/flt  dead  remat  edges matched   diff iters
  vcopy-u1          2        1        0        1     0      0      1       1     ok    10
  vcopy-u2          4        1        0        1     0      0      2       2     ok    21
  vcopy-u4          8        1        0        1     0      0      4       4     ok    43
  vcopy-u8         16        1        0        1     0      0      8       8     ok    87
  scale-u1          3        2        0        2     0      0      2       2     ok    18
  analyze: 5 loops, 0 diff errors, 0 diff warnings

  $ rbp analyze -n 5 -j 1 > serial.out
  $ rbp analyze -n 5 -j 4 > parallel.out
  $ cmp serial.out parallel.out

The lint subcommand sweeps the suite the same way:

  $ rbp lint -n 3 -j 2
  lint: vcopy-u1: clean
  lint: vcopy-u2: clean
  lint: vcopy-u4: clean
