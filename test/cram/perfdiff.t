perfdiff compares two rbp-bench/1 telemetry documents with per-metric
regression thresholds. Exit codes: 0 no regression, 1 regression,
2 parse/schema error or incomparable runs.

  $ cat > base.json <<'EOF'
  > {"schema":"rbp-bench/1","seed":1995,"loops":8,"ideal_ipc":6.0,
  >  "configs":[{"label":"4x4 embedded","clusters":4,"copy_model":"embedded",
  >   "loops_ok":8,"failures":0,"mean_ipc_clustered":5.5,
  >   "arith_mean_degradation":110,"harmonic_mean_degradation":105,
  >   "pct_no_degradation":75},
  >  {"label":"4x4 copy-unit","clusters":4,"copy_model":"copy-unit",
  >   "loops_ok":8,"failures":0,"mean_ipc_clustered":5.0,
  >   "arith_mean_degradation":115,"harmonic_mean_degradation":110,
  >   "pct_no_degradation":62.5}],
  >  "stages":[{"name":"pipeline","total_s":0.5,"calls":16}]}
  > EOF

A document compared with itself has no regressions (and the
host-dependent "stages" timings are ignored entirely).

  $ rbp perfdiff base.json base.json -q
  no regressions

A small improvement or within-threshold jitter passes; a real drop
fails with exit 1 and names the metric.

  $ sed -e 's/"mean_ipc_clustered":5.5/"mean_ipc_clustered":5.45/' base.json > jitter.json
  $ rbp perfdiff base.json jitter.json -q
  no regressions

  $ sed -e 's/"mean_ipc_clustered":5.5/"mean_ipc_clustered":4.9/' \
  >     -e 's/"failures":0,"mean_ipc_clustered":5.0/"failures":1,"mean_ipc_clustered":5.0/' \
  >     base.json > worse.json
  $ rbp perfdiff base.json worse.json -q
  REGRESSED 4x4 embedded           mean_ipc_clustered         5.5 -> 4.9 (-0.6)
  REGRESSED 4x4 copy-unit          failures                   0 -> 1 (+1)
  2 regression(s)
  [1]

Unparseable input, a foreign schema, or incomparable runs exit 2.

  $ echo '{"schema":"something-else/9"}' > alien.json
  $ rbp perfdiff base.json alien.json
  rbp: alien.json: unsupported schema "something-else/9" (want "rbp-bench/1")
  [2]

  $ echo 'not json at all' > garbage.json
  $ rbp perfdiff garbage.json base.json 2> /dev/null
  [2]

  $ sed -e 's/"seed":1995/"seed":7/' base.json > reseeded.json
  $ rbp perfdiff base.json reseeded.json
  rbp: incomparable runs: seed 1995 vs 7
  [2]

  $ rbp perfdiff base.json missing.json 2> /dev/null
  [2]

The checked-in CI baseline and the injected-regression fixture pin the
gate's two sides: the baseline passes against itself, the fixture is
caught.

  $ rbp perfdiff "../../bench/baseline/BENCH_quick.json" \
  >     "../../bench/baseline/BENCH_quick.json" -q
  no regressions

  $ rbp perfdiff "../../bench/baseline/BENCH_quick.json" \
  >     "../../bench/baseline/BENCH_quick_regressed.json" -q
  REGRESSED 8x2 copy-unit          loops_ok                   32 -> 30 (-2)
  REGRESSED 8x2 copy-unit          failures                   0 -> 2 (+2)
  REGRESSED 8x2 copy-unit          mean_ipc_clustered         4.61525 -> 4.1 (-0.515246)
  3 regression(s)
  [1]
