The metrics surface end-to-end: the additive metrics op, rbp top's
scrape modes, and rbp call's key=value output. Queue limit 0 again
makes every counter (and thus every pinned line) deterministic.

  $ rbp serve --listen unix:./d.sock -q 0 --allow-shutdown 2> serve.log &
  $ SERVE_PID=$!

rbp call --kv prints a reply as sorted key=value pairs:

  $ rbp call unix:./d.sock --retry-for 10 --kv '{"op":"ping"}'
  protocol=rbp-serve/1 status=pong

  $ rbp call unix:./d.sock --kv --json '{"op":"ping"}'
  rbp call: --kv and --json are mutually exclusive
  [2]

A well-formed compile is shed at the door; the structured overload
reply flattens cleanly too:

  $ rbp call unix:./d.sock --kv '{"op":"compile","id":"full","ir":"loop l depth 1 trip 10\nadd.f a, b, c\n"}'
  depth=0 id=full retry_after_ms=25 status=overload

The metrics op serves the rbp-metrics/1 document. Rates and uptime are
wall-clock, so only the shape is pinned:

  $ rbp top unix:./d.sock --once --json | grep -c '"schema":"rbp-metrics/1"'
  1
  $ rbp top unix:./d.sock --once --json | grep -c '"latency":{"queue_ms":'
  1
  $ rbp top unix:./d.sock --once --json | grep -c '"windows":{"10s":'
  1

The dashboard renders the latency table, the rolling-rate rows and the
counter list from that same document:

  $ rbp top unix:./d.sock --once | grep -E -c '^  (queue|compile|total|overloads/s) '
  4
  $ rbp top unix:./d.sock --once | grep -E -o 'serve\.shed'
  serve.shed

The Prometheus exposition pins counter samples byte-for-byte, and its
families arrive sorted:

  $ rbp top unix:./d.sock --once --prom | grep -E '^(# TYPE )?rbp_serve_shed_total'
  # TYPE rbp_serve_shed_total counter
  rbp_serve_shed_total 1
  $ rbp top unix:./d.sock --once --prom | grep -c '^rbp_serve_overloads_per_second{window="10s"} '
  1
  $ rbp top unix:./d.sock --once --prom | grep '^# TYPE ' | awk '{ print $3 }' > families
  $ sort families | diff - families

  $ rbp top unix:./d.sock --once --json --prom
  rbp top: --json and --prom are mutually exclusive
  [2]

  $ rbp call unix:./d.sock '{"op":"shutdown"}'
  {"status":"bye"}
  $ wait $SERVE_PID
