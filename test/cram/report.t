The report subcommand regenerates the paper tables. On a reduced suite
the numbers differ from EXPERIMENTS.md (which uses all 211 loops), but
the format is the same and the run is deterministic.

  $ rbp report -n 4
  ## Table 1 — IPC of clustered software pipelines
  
  | Model     | 2×8 E | 2×8 C | 4×4 E | 4×4 C | 8×2 E | 8×2 C |
  |-----------|-------|-------|-------|-------|-------|-------|
  | Ideal (paper)     | 8.6 | 8.6 | 8.6 | 8.6 | 8.6 | 8.6 |
  | Ideal (ours)      | 7.5 | 7.5 | 7.5 | 7.5 | 7.5 | 7.5 |
  | Clustered (paper) | 9.3 | 6.2 | 8.4 | 7.5 | 6.9 | 6.8 |
  | Clustered (ours)  | 7.5 | 7.5 | 7.5 | 7.5 | 7.5 | 7.5 |
  
  ## Table 2 — degradation over ideal schedules, normalized (100 = ideal)
  
  | Mean | 2×8 E | 2×8 C | 4×4 E | 4×4 C | 8×2 E | 8×2 C |
  |------|-------|-------|-------|-------|-------|-------|
  | Arith (paper) | 111 | 150 | 126 | 122 | 162 | 133 |
  | Arith (ours)  | 100 | 100 | 100 | 100 | 100 | 100 |
  | Harm (paper)  | 109 | 127 | 119 | 115 | 138 | 124 |
  | Harm (ours)   | 100 | 100 | 100 | 100 | 100 | 100 |
  
  ## Table 3 — greedy heuristic vs. provably optimal bank assignment (exact slice)
  
  | Geometry | Loops | Optimal | Bound | Exhausted | Greedy-opt % | Greedy II | Exact II | Greedy copies | Exact copies |
  |----------|-------|---------|-------|-----------|--------------|-----------|----------|---------------|--------------|
  | 2x8      |     4 |       4 |     0 |         0 |        100.0 |      1.00 |     1.00 |          0.00 |         0.00 |
  | 4x4      |     4 |       4 |     0 |         0 |        100.0 |      1.00 |     1.00 |          0.00 |         0.00 |
  | 8x2      |     4 |       4 |     0 |         0 |        100.0 |      1.00 |     1.00 |          0.00 |         0.00 |

JSON output is the rbp-bench/1 telemetry schema; under --deterministic
the host-dependent stage timings are dropped, so it is byte-stable.

  $ rbp report -n 4 -f json --deterministic
  {"schema":"rbp-bench/1","seed":1995,"loops":4,"ideal_ipc":7.5,"configs":[{"label":"2x8 embedded","clusters":2,"copy_model":"embedded","loops_ok":4,"failures":0,"mean_ipc_clustered":7.5,"arith_mean_degradation":100,"harmonic_mean_degradation":100,"pct_no_degradation":100},{"label":"2x8 copy-unit","clusters":2,"copy_model":"copy-unit","loops_ok":4,"failures":0,"mean_ipc_clustered":7.5,"arith_mean_degradation":100,"harmonic_mean_degradation":100,"pct_no_degradation":100},{"label":"4x4 embedded","clusters":4,"copy_model":"embedded","loops_ok":4,"failures":0,"mean_ipc_clustered":7.5,"arith_mean_degradation":100,"harmonic_mean_degradation":100,"pct_no_degradation":100},{"label":"4x4 copy-unit","clusters":4,"copy_model":"copy-unit","loops_ok":4,"failures":0,"mean_ipc_clustered":7.5,"arith_mean_degradation":100,"harmonic_mean_degradation":100,"pct_no_degradation":100},{"label":"8x2 embedded","clusters":8,"copy_model":"embedded","loops_ok":4,"failures":0,"mean_ipc_clustered":7.5,"arith_mean_degradation":100,"harmonic_mean_degradation":100,"pct_no_degradation":100},{"label":"8x2 copy-unit","clusters":8,"copy_model":"copy-unit","loops_ok":4,"failures":0,"mean_ipc_clustered":7.5,"arith_mean_degradation":100,"harmonic_mean_degradation":100,"pct_no_degradation":100}]}

Text output renders terminal tables.

  $ rbp report -n 4 -f text
  Table 1. IPC of Clustered Software Pipelines
  +-----------+--------------+---------------+--------------+---------------+--------------+---------------+
  | Model     | 2x8 embedded | 2x8 copy-unit | 4x4 embedded | 4x4 copy-unit | 8x2 embedded | 8x2 copy-unit |
  +===========+==============+===============+==============+===============+==============+===============+
  | Ideal     | 7.5          | 7.5           | 7.5          | 7.5           | 7.5          | 7.5           |
  | Clustered | 7.5          | 7.5           | 7.5          | 7.5           | 7.5          | 7.5           |
  +-----------+--------------+---------------+--------------+---------------+--------------+---------------+
  
  Table 2. Degradation Over Ideal Schedules - Normalized
  +-----------------+--------------+---------------+--------------+---------------+--------------+---------------+
  | Average         | 2x8 embedded | 2x8 copy-unit | 4x4 embedded | 4x4 copy-unit | 8x2 embedded | 8x2 copy-unit |
  +=================+==============+===============+==============+===============+==============+===============+
  | Arithmetic Mean | 100          | 100           | 100          | 100           | 100          | 100           |
  | Harmonic Mean   | 100          | 100           | 100          | 100           | 100          | 100           |
  +-----------------+--------------+---------------+--------------+---------------+--------------+---------------+
  
  Table 3: greedy vs. provably optimal (exact slice)
  +----------+-------+---------+-------+-----------+--------------+-----------+----------+---------------+--------------+
  | geometry | loops | optimal | bound | exhausted | greedy-opt % | greedy II | exact II | greedy copies | exact copies |
  +==========+=======+=========+=======+===========+==============+===========+==========+===============+==============+
  | 2x8      | 4     | 4       | 0     | 0         | 100.0        | 1.00      | 1.00     | 0.00          | 0.00         |
  | 4x4      | 4     | 4       | 0     | 0         | 100.0        | 1.00      | 1.00     | 0.00          | 0.00         |
  | 8x2      | 4     | 4       | 0     | 0         | 100.0        | 1.00      | 1.00     | 0.00          | 0.00         |
  +----------+-------+---------+-------+-----------+--------------+-----------+----------+---------------+--------------+
  failures:
    (none)

--check verifies a document contains the regenerated table blocks; a
stale document is reported and exits 1.

  $ rbp report -n 4 -o tables.md --check tables.md
  wrote tables.md
  tables.md: tables are up to date

  $ echo "# no tables here" > stale.md
  $ rbp report -n 4 -o /dev/null --check stale.md
  wrote /dev/null
  rbp: stale.md is stale: Table 1, Table 2, Table 3 differ(s) from this run (regenerate with `make report`)
  [1]
