The lint subcommand runs the full pipeline with independent verification
at every stage boundary. A healthy example is clean (exit 0):

  $ rbp lint ../../examples/saxpy.ir
  lint: saxpy2: clean

A file that does not parse is a diagnostic, not a crash:

  $ cat > broken.ir <<'IREOF'
  > loop broken depth 1 trip 100
  >   load.f x0, x[1*i]
  >   badop.f y0, x0
  >   store.f y[1*i], y0
  > IREOF
  $ rbp lint broken.ir
  error[IR000] ir: broken.ir: line 3: unknown opcode "badop"
  lint: broken.ir: 1 error
  [1]

Warnings (here a dead definition) are reported but do not fail the lint
unless --strict is given:

  $ cat > deadreg.ir <<'IREOF'
  > loop deadreg depth 1 trip 100
  >   load.f x0, x[1*i]
  >   load.f y0, y[1*i]
  >   store.f z[1*i], y0
  > IREOF
  $ rbp lint deadreg.ir
  warning[IR003] ir @ op 0 (load.f x0, x[1*i]): register x0 is defined but never read and not live-out
  lint: deadreg: 1 warning
  $ rbp lint deadreg.ir --strict
  warning[IR003] ir @ op 0 (load.f x0, x[1*i]): register x0 is defined but never read and not live-out
  lint: deadreg: 1 warning
  [1]
