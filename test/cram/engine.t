The execution engine: -j N output is byte-identical to the serial
path, and warm cache runs are byte-identical to cold ones.

  $ rbp experiment -n 6 -j 1 --no-cache > j1.txt
  $ rbp experiment -n 6 -j 4 --no-cache > j4.txt
  $ cmp j1.txt j4.txt && echo identical
  identical

  $ rbp report -n 4 -f json --deterministic -j 1 --no-cache > r1.json
  $ rbp report -n 4 -f json --deterministic -j 4 --no-cache > r4.json
  $ cmp r1.json r4.json && echo identical
  identical

The stress harness pre-draws every trial's inputs from the master PRNG
before sharding, so the suite is -j invariant too.

  $ rbp stress -t 30 -j 1 > s1.txt
  $ rbp stress -t 30 -j 4 > s4.txt
  $ cmp s1.txt s4.txt && echo identical
  identical

The content-addressed cache: a cold run stores one entry per
(loop, machine, options) triple, a warm run serves them back and the
tables do not change by a byte.

  $ rbp cache stat -d cache.d
  cache.d: 0 entries, 0 bytes
  $ rbp experiment -n 6 -j 2 --cache-dir cache.d > cold.txt
  $ rbp cache stat -d cache.d | sed 's/[0-9]* bytes/N bytes/'
  cache.d: 36 entries, N bytes
  $ rbp experiment -n 6 -j 2 --cache-dir cache.d > warm.txt
  $ cmp cold.txt warm.txt && echo identical
  identical

cache clear removes every entry and keeps the directory.

  $ rbp cache clear -d cache.d
  cache.d: removed 36 entries
  $ rbp cache stat -d cache.d
  cache.d: 0 entries, 0 bytes
