The compilation service end-to-end over its wire protocol: a daemon on
a Unix socket, driven frame-by-frame with rbp call. Queue limit 0 makes
admission control shed every well-formed compile deterministically, so
each reply below is byte-stable.

  $ rbp serve --listen unix:./d.sock -q 0 --allow-shutdown 2> serve.log &
  $ SERVE_PID=$!

A ping answers with the protocol version (--retry-for waits for the
daemon to finish binding its socket):

  $ rbp call unix:./d.sock --retry-for 10 '{"op":"ping"}'
  {"status":"pong","protocol":"rbp-serve/1"}

Malformed frames get a structured bad_frame reply — the connection is
answered, not dropped:

  $ rbp call unix:./d.sock '}{ this is not a frame'
  {"status":"bad_frame","code":"SRV001","detail":"frame is not JSON: malformed number at offset 0"}

  $ rbp call unix:./d.sock '{"op":"compile"}'
  {"status":"bad_frame","code":"SRV001","detail":"compile request lacks an \"ir\" field"}

A well-formed compile is shed at the door with a retry quote, because
the queue admits nothing:

  $ rbp call unix:./d.sock '{"op":"compile","id":"full","ir":"loop l depth 1 trip 10\nadd.f a, b, c\n"}'
  {"status":"overload","id":"full","depth":0,"retry_after_ms":25}

The stats op reports the live counters:

  $ rbp call unix:./d.sock '{"op":"stats"}'
  {"status":"stats","counters":{"serve.bad_frames":2,"serve.shed":1}}

The shutdown frame (honored only under --allow-shutdown) drains and
stops the daemon, which exits 0:

  $ rbp call unix:./d.sock '{"op":"shutdown"}'
  {"status":"bye"}
  $ wait $SERVE_PID
  $ cat serve.log
  rbp serve: listening on unix:./d.sock (2 workers, queue limit 0)
  rbp serve: draining
  rbp serve: done (serve.bad_frames=2, serve.shed=1)
