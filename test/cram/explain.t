The explain subcommand replays the decision-provenance events of one
traced run as a placement narrative. It always uses the deterministic
fake clock, so the output is byte-stable.

  $ rbp explain vcopy-u1 -c 2
  === vcopy-u1 on 2x8-embedded ===
  ideal II 1, clustered II 1, degradation 100 (100 = ideal), 0 copies
  
  -- ideal modulo scheduling --
  scheduled at MII, first try
  
  -- RCG construction --
  op0: factor 40 (flexibility 1, depth 1, density 2)
  op1: factor 40 (flexibility 1, depth 1, density 2)
  
  -- greedy placement --
  balance penalty 0.5 per placed register (mean positive edge 1, 1 nodes over 2 banks)
  f1 -> bank 0  benefit 0  [0 0]  tie{0,1} -> lowest index
  
  -- cross-bank copies --
  (none needed)
  
  -- clustered modulo scheduling --
  scheduled at MII, first try
  
  -- rematerializable values (AN008) --
  (none: every cross-bank value must travel by copy)
  
  modulo reservation table (II=1, 3 stages)
  slot | cluster 0        | cluster 1
  -----+------------------+-----------------
     0 | #0:load #1:store |

A loop whose values must cross banks narrates every copy route.

  $ rbp explain gen100 -c 4 | sed -n '/cross-bank copies/,/^$/p'
  -- cross-bank copies --
  f5: bank 1 -> bank 0 (op0 value), copy f5@c0
  f8: bank 3 -> bank 1 (op3 value), copy f8@c1
  f9: bank 1 -> bank 0 (op4 value), copy f9@c0
  f16: bank 3 -> bank 2 (op11 value), copy f16@c2
  f17: bank 2 -> bank 0 (op12 value), copy f17@c0
  f19: bank 0 -> bank 1 (op15 value), copy f19@c1
  f21: bank 1 -> bank 2 (op17 value), copy f21@c2
  

--dot prints only the RCG, colored by final bank; --rtable only the
reservation table.

  $ rbp explain vcopy-u1 -c 2 --dot | head -n 3
  graph rcg {
    node [shape=ellipse, style=filled];
    1 [label="f1\nw=0.0", fillcolor=lightblue];

  $ rbp explain vcopy-u1 -c 2 --rtable
  modulo reservation table (II=1, 3 stages)
  slot | cluster 0        | cluster 1
  -----+------------------+-----------------
     0 | #0:load #1:store |

Run twice: byte-identical (the narrative is a pure function of loop and
machine).

  $ rbp explain vcopy-u2 -c 4 > a.txt && rbp explain vcopy-u2 -c 4 > b.txt && cmp a.txt b.txt
