The stress subcommand runs seeded fault-injection trials through the
resilient driver, re-auditing every outcome with the Verify analyzers.
A clean sweep prints only the totals line and exits 0 (exit 1 would
mean a transient fault the ladder failed to recover from; exit 2 an
escaped exception or unverified emitted code):

  $ rbp stress --seed 7 --trials 12
  totals: 12 trials, 2 clean, 3 recovered, 7 failed-clean, 0 unrecovered, 0 violations

--verbose pins one line per trial: the plan, the faults that actually
fired, the classified outcome, and the ladder rung (or structured
error code) that ended the trial:

  $ rbp stress --seed 7 --trials 12 --verbose
  #000 gen10          c8-f2-copy-unit    plan=shrink-banks(1)      fired=shrink-banks(1)      failed-clean allocation [PIPE006] after 18 failed attempt(s)
  #001 gen56          c2-f1-embedded     plan=drop-copy            fired=drop-copy            recovered    pipelined(greedy, budget=40) after 1 failed attempt(s)
  #002 gather-u1      c8-f2-copy-unit    plan=malform-ir           fired=malform-ir           failed-clean ir-input [IR004] after 0 failed attempt(s)
  #003 gen128         c4-f2-embedded     plan=shrink-banks(1)      fired=shrink-banks(1)      failed-clean allocation [PIPE006] after 18 failed attempt(s)
  #004 gen88          c8-f2-embedded     plan=-                    fired=-                    clean        pipelined(greedy, budget=10) after 0 failed attempt(s)
  #005 gen99          c8-f1-copy-unit    plan=drop-copy            fired=drop-copy            recovered    pipelined(greedy, budget=40) after 1 failed attempt(s)
  #006 gen24          c2-f1-embedded     plan=malform-ir           fired=malform-ir           failed-clean ir-input [IR004] after 0 failed attempt(s)
  #007 daxpy-u2       c4-f1-embedded     plan=scramble-assignment  fired=scramble-assignment  recovered    pipelined(greedy, budget=40) after 1 failed attempt(s)
  #008 gen67          c2-f2-embedded     plan=-                    fired=-                    clean        pipelined(greedy, budget=10) after 0 failed attempt(s)
  #009 mixed-u4       c4-f2-copy-unit    plan=shrink-banks(1)      fired=shrink-banks(1)      failed-clean allocation [PIPE006] after 18 failed attempt(s)
  #010 gen77          c4-f1-copy-unit    plan=malform-ir           fired=malform-ir           failed-clean ir-input [IR004] after 0 failed attempt(s)
  #011 gen108         c8-f2-copy-unit    plan=shrink-banks(1)      fired=shrink-banks(1)      failed-clean allocation [PIPE006] after 18 failed attempt(s)
  totals: 12 trials, 2 clean, 3 recovered, 7 failed-clean, 0 unrecovered, 0 violations

Same seed, same report — the harness is deterministic:

  $ rbp stress --seed 7 --trials 12 --verbose > a.out
  $ rbp stress --seed 7 --trials 12 --verbose > b.out
  $ diff a.out b.out

--no-fatal drops the unsalvageable faults (malformed IR, one-register
banks) from the drawing pool, so every injected fault must be recovered:

  $ rbp stress --seed 7 --trials 12 --no-fatal
  totals: 12 trials, 2 clean, 10 recovered, 0 failed-clean, 0 unrecovered, 0 violations
