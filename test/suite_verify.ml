open Testlib

let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

let op ?dst ?srcs ?addr ?imm ~id opcode cls =
  Ir.Op.make ?dst ?srcs ?addr ?imm ~id ~opcode ~cls ()

let load ~id dst base = op ~dst ~addr:(Ir.Addr.element base) ~id Mach.Opcode.Load (Ir.Vreg.cls dst)
let store ~id v base = op ~srcs:[ v ] ~addr:(Ir.Addr.element base) ~id Mach.Opcode.Store (Ir.Vreg.cls v)
let add ~id dst a b = op ~dst ~srcs:[ a; b ] ~id Mach.Opcode.Add (Ir.Vreg.cls dst)
let copy ~id dst src = op ~dst ~srcs:[ src ] ~id Mach.Opcode.Copy (Ir.Vreg.cls dst)

let assign pairs =
  List.fold_left (fun m (r, b) -> Ir.Vreg.Map.add r b m) Ir.Vreg.Map.empty pairs

let mapping pairs =
  List.fold_left (fun m (r, p) -> Ir.Vreg.Map.add r p m) Ir.Vreg.Map.empty pairs

let place ops_cycles_clusters =
  List.map
    (fun (op, cycle, cluster) -> { Sched.Schedule.op; cycle; cluster })
    ops_cycles_clusters

let ddg_of machine loop = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency loop

let has_error_code code diags =
  Verify.Diag.has_code code diags
  && List.exists (fun d -> d.Verify.Diag.code = code) (Verify.Diag.errors diags)

(* ------------------------------------------------------------------ *)
(* Diagnostics plumbing                                                *)
(* ------------------------------------------------------------------ *)

let diag_tests =
  [
    case "diag-rendering-and-summary" (fun () ->
        let e = Verify.Diag.error ~loc:"op 7" Verify.Diag.Partition ~code:"PT003" "cross-bank operand" in
        let w = Verify.Diag.warning Verify.Diag.Alloc ~code:"AL999" "just a warning" in
        check Alcotest.bool "code in rendering" true
          (contains (Verify.Diag.to_string e) "PT003");
        check Alcotest.bool "severity in rendering" true
          (contains (Verify.Diag.to_string e) "error");
        check Alcotest.bool "loc in rendering" true
          (contains (Verify.Diag.to_string e) "op 7");
        check Alcotest.string "summary" "1 error, 1 warning" (Verify.Diag.summary [ w; e ]);
        check Alcotest.string "clean summary" "clean" (Verify.Diag.summary []);
        check Alcotest.bool "has_code" true (Verify.Diag.has_code "AL999" [ w; e ]);
        check Alcotest.bool "has_errors" true (Verify.Diag.has_errors [ w; e ]);
        check Alcotest.bool "warnings alone are not errors" false (Verify.Diag.has_errors [ w ]);
        match Verify.Diag.by_severity [ w; e ] with
        | [ first; _ ] ->
            check Alcotest.string "errors sort first" "PT003" first.Verify.Diag.code
        | _ -> Alcotest.fail "expected two diagnostics");
    case "verdict-renders-errors" (fun () ->
        let e = Verify.Diag.error Verify.Diag.Sched ~code:"SCH002" "edge violated" in
        (match Verify.Pipeline.verdict [ e ] with
        | Ok () -> Alcotest.fail "expected Error"
        | Error msg -> check Alcotest.bool "code surfaces" true (contains msg "SCH002"));
        check Alcotest.bool "warnings pass" true
          (Verify.Pipeline.verdict [ Verify.Diag.warning Verify.Diag.Ir ~code:"IR003" "x" ]
          = Ok ()));
  ]

(* ------------------------------------------------------------------ *)
(* Positive: seed workloads are clean under every analyzer             *)
(* ------------------------------------------------------------------ *)

let clean_under_driver machine loops =
  List.iter
    (fun loop ->
      match Partition.Driver.pipeline ~verify:true ~machine loop with
      | Ok _ -> ()
      | Error e ->
          if e.Verify.Stage_error.stage = Verify.Stage_error.Verification then
            Alcotest.failf "loop %s: %s" (Ir.Loop.name loop)
              (Verify.Stage_error.to_string e))
    loops

let positive_tests =
  [
    case "sample-loops-ir-clean" (fun () ->
        List.iter
          (fun loop ->
            let diags = Verify.Ir_check.loop loop in
            if Verify.Diag.has_errors diags then
              Alcotest.failf "loop %s: %s" (Ir.Loop.name loop)
                (String.concat "; " (List.map Verify.Diag.to_string (Verify.Diag.errors diags))))
          (sample_loops ()));
    case "driver-verify-clean-sample" (fun () ->
        clean_under_driver m4x4e (sample_loops ~n:12 ()));
    case "alloc-diagnostics-clean" (fun () ->
        List.iter
          (fun loop ->
            match Partition.Driver.pipeline ~machine:m4x4e loop with
            | Error _ -> ()
            | Ok r -> (
                match
                  Regalloc.Alloc.allocate_loop ~machine:m4x4e
                    ~assignment:r.Partition.Driver.assignment r.Partition.Driver.rewritten
                with
                | Error _ -> ()
                | Ok alloc ->
                    let diags = Regalloc.Alloc.diagnostics ~machine:m4x4e alloc in
                    if Verify.Diag.has_errors diags then
                      Alcotest.failf "loop %s: %s" (Ir.Loop.name loop)
                        (String.concat "; "
                           (List.map Verify.Diag.to_string (Verify.Diag.errors diags)))))
          (sample_loops ~n:8 ()));
    slow_case "driver-verify-full-suite" (fun () ->
        let loops = Workload.Suite.loops () in
        clean_under_driver m4x4e loops;
        clean_under_driver m4x4c loops);
  ]

(* ------------------------------------------------------------------ *)
(* Negative: hand-mutated artifacts, one distinct code per case        *)
(* ------------------------------------------------------------------ *)

let a = vreg 100
let b = vreg 101
let c = vreg 102

let ir_negative_tests =
  [
    case "IR001-duplicate-op-id" (fun () ->
        let ops = [ load ~id:0 a "x"; load ~id:0 b "y" ] in
        check Alcotest.bool "IR001" true (has_error_code "IR001" (Verify.Ir_check.ops ops)));
    case "IR002-empty-body" (fun () ->
        check Alcotest.bool "IR002" true (has_error_code "IR002" (Verify.Ir_check.ops [])));
    case "IR003-dead-definition" (fun () ->
        let ops = [ load ~id:0 a "x"; load ~id:1 b "y"; store ~id:2 b "z" ] in
        check Alcotest.bool "IR003" true
          (Verify.Diag.has_code "IR003" (Verify.Ir_check.ops ops)));
    case "IR004-live-out-absent" (fun () ->
        let ghost = vreg 999 in
        let loop =
          Ir.Loop.make ~name:"ghost" ~live_out:(Ir.Vreg.Set.singleton ghost)
            [ load ~id:0 a "x"; store ~id:1 a "y" ]
        in
        check Alcotest.bool "IR004" true (has_error_code "IR004" (Verify.Ir_check.loop loop)));
    case "IR005-class-mismatch" (fun () ->
        let d = vreg ~cls:i 103 in
        let ops = [ load ~id:0 a "x"; op ~dst:d ~srcs:[ a ] ~id:1 Mach.Opcode.Add f; store ~id:2 d "y" ] in
        check Alcotest.bool "IR005" true
          (Verify.Diag.has_code "IR005" (Verify.Ir_check.ops ops)));
    case "IR006-shadowed-definition" (fun () ->
        let ops = [ load ~id:0 a "x"; load ~id:1 a "y"; store ~id:2 a "z" ] in
        check Alcotest.bool "IR006" true
          (Verify.Diag.has_code "IR006" (Verify.Ir_check.ops ops)));
  ]

let sched_negative_tests =
  [
    case "SCH001-unscheduled-op" (fun () ->
        let loop = Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; store ~id:1 a "y" ] in
        let ddg = ddg_of m4x4e loop in
        let k = Sched.Kernel.make ~ii:2 (place [ (Ir.Loop.op_by_id loop 0, 0, 0) ]) in
        check Alcotest.bool "SCH001" true
          (has_error_code "SCH001" (Verify.Sched_check.kernel ~machine:m4x4e ~ddg k)));
    case "SCH002-violated-edge" (fun () ->
        (* load latency is 2; consumer in the same cycle breaks the edge *)
        let loop = Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; add ~id:1 b a a; store ~id:2 b "y" ] in
        let ddg = ddg_of m4x4e loop in
        let k =
          Sched.Kernel.make ~ii:4
            (place
               [ (Ir.Loop.op_by_id loop 0, 0, 0); (Ir.Loop.op_by_id loop 1, 0, 0);
                 (Ir.Loop.op_by_id loop 2, 4, 0) ])
        in
        check Alcotest.bool "SCH002" true
          (has_error_code "SCH002" (Verify.Sched_check.kernel ~machine:m4x4e ~ddg k)));
    case "SCH003-oversubscribed-slot" (fun () ->
        (* m8x2e has 2 FUs per cluster; three ops in one (cluster, slot) *)
        let loop =
          Ir.Loop.make ~name:"t"
            [ load ~id:0 a "x"; load ~id:1 b "y"; load ~id:2 c "z";
              store ~id:3 a "p"; store ~id:4 b "q"; store ~id:5 c "r" ]
        in
        let ddg = ddg_of m8x2e loop in
        let k =
          Sched.Kernel.make ~ii:4
            (place
               [ (Ir.Loop.op_by_id loop 0, 0, 0); (Ir.Loop.op_by_id loop 1, 0, 0);
                 (Ir.Loop.op_by_id loop 2, 0, 0); (Ir.Loop.op_by_id loop 3, 2, 1);
                 (Ir.Loop.op_by_id loop 4, 2, 2); (Ir.Loop.op_by_id loop 5, 2, 3) ])
        in
        check Alcotest.bool "SCH003" true
          (has_error_code "SCH003" (Verify.Sched_check.kernel ~machine:m8x2e ~ddg k)));
    case "SCH004-invalid-cluster" (fun () ->
        let loop = Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; store ~id:1 a "y" ] in
        let ddg = ddg_of m4x4e loop in
        let k =
          Sched.Kernel.make ~ii:2
            (place [ (Ir.Loop.op_by_id loop 0, 0, 99); (Ir.Loop.op_by_id loop 1, 2, 0) ])
        in
        check Alcotest.bool "SCH004" true
          (has_error_code "SCH004" (Verify.Sched_check.kernel ~machine:m4x4e ~ddg k)));
    case "SCH005-foreign-op" (fun () ->
        let loop = Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; store ~id:1 a "y" ] in
        let ddg = ddg_of m4x4e loop in
        let foreign = load ~id:77 b "w" in
        let k =
          Sched.Kernel.make ~ii:2
            (place
               [ (Ir.Loop.op_by_id loop 0, 0, 0); (Ir.Loop.op_by_id loop 1, 2, 0);
                 (foreign, 1, 1) ])
        in
        check Alcotest.bool "SCH005" true
          (has_error_code "SCH005" (Verify.Sched_check.kernel ~machine:m4x4e ~ddg k)));
  ]

let partition_negative_tests =
  [
    case "PT001-unassigned-register" (fun () ->
        let loop = Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; store ~id:1 a "y" ] in
        check Alcotest.bool "PT001" true
          (has_error_code "PT001"
             (Verify.Partition_check.check ~machine:m4x4e ~assignment:Ir.Vreg.Map.empty loop)));
    case "PT002-bank-out-of-range" (fun () ->
        let loop = Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; store ~id:1 a "y" ] in
        check Alcotest.bool "PT002" true
          (has_error_code "PT002"
             (Verify.Partition_check.check ~machine:m4x4e ~assignment:(assign [ (a, 99) ]) loop)));
    case "PT003-cross-bank-operand" (fun () ->
        let loop =
          Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; add ~id:1 b a a; store ~id:2 b "y" ]
        in
        let asg = assign [ (a, 0); (b, 1) ] in
        check Alcotest.bool "PT003" true
          (has_error_code "PT003" (Verify.Partition_check.check ~machine:m4x4e ~assignment:asg loop)));
    case "PT004-same-bank-copy" (fun () ->
        let loop =
          Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; copy ~id:1 b a; store ~id:2 b "y" ]
        in
        let asg = assign [ (a, 0); (b, 0) ] in
        check Alcotest.bool "PT004" true
          (has_error_code "PT004" (Verify.Partition_check.check ~machine:m4x4e ~assignment:asg loop)));
    case "PT005-redundant-copy" (fun () ->
        (* one cross-bank transfer suffices; the rewritten body emits two *)
        let c1 = vreg 104 and c2 = vreg 105 in
        let original =
          Ir.Loop.make ~name:"t" [ load ~id:0 a "x"; add ~id:1 b a a; store ~id:2 b "y" ]
        in
        let rewritten =
          Ir.Loop.make ~name:"t"
            [ load ~id:0 a "x"; copy ~id:3 c1 a; copy ~id:4 c2 a;
              add ~id:1 b c1 c2; store ~id:2 b "y" ]
        in
        let asg = assign [ (a, 0); (b, 1); (c1, 1); (c2, 1) ] in
        let diags =
          Verify.Partition_check.check ~machine:m4x4e ~assignment:asg ~original rewritten
        in
        check Alcotest.bool "PT005" true (Verify.Diag.has_code "PT005" diags));
    case "PT006-bank-pressure" (fun () ->
        let tiny =
          Mach.Machine.make ~regs_per_bank:2 ~clusters:2 ~fus_per_cluster:8
            ~copy_model:Mach.Machine.Embedded ()
        in
        let d = vreg 103 and e = vreg 104 in
        let loop =
          Ir.Loop.make ~name:"t"
            [ load ~id:0 a "x"; load ~id:1 b "y"; load ~id:2 c "z";
              add ~id:3 d a b; add ~id:4 e d c; store ~id:5 e "w" ]
        in
        let asg = assign [ (a, 0); (b, 0); (c, 0); (d, 0); (e, 0) ] in
        let diags = Verify.Partition_check.check ~machine:tiny ~assignment:asg loop in
        check Alcotest.bool "PT006" true (Verify.Diag.has_code "PT006" diags));
    case "PT001-mutated-real-partition" (fun () ->
        (* drop one register from a real pipeline's assignment *)
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error e -> Alcotest.failf "pipeline failed: %s" (Verify.Stage_error.to_string e)
        | Ok r ->
            let rewritten = r.Partition.Driver.rewritten in
            let victim = Ir.Vreg.Set.min_elt (Ir.Loop.vregs rewritten) in
            let mutated = Ir.Vreg.Map.remove victim r.Partition.Driver.assignment in
            check Alcotest.bool "PT001" true
              (has_error_code "PT001"
                 (Verify.Partition_check.check ~machine:m4x4e ~assignment:mutated rewritten)));
  ]

let alloc_negative_tests =
  let code = [ add ~id:0 c a b; store ~id:1 c "z" ] in
  let live_out = Ir.Vreg.Set.empty in
  [
    case "AL001-unmapped-register" (fun () ->
        let m = mapping [ (a, (0, 0)); (b, (0, 1)) ] in
        check Alcotest.bool "AL001" true
          (has_error_code "AL001"
             (Verify.Alloc_check.check ~machine:m4x4e ~mapping:m ~live_out code)));
    case "AL002-invalid-bank" (fun () ->
        let m = mapping [ (a, (9, 0)); (b, (0, 1)); (c, (0, 2)) ] in
        check Alcotest.bool "AL002" true
          (has_error_code "AL002"
             (Verify.Alloc_check.check ~machine:m4x4e ~mapping:m ~live_out code)));
    case "AL003-index-out-of-range" (fun () ->
        let m = mapping [ (a, (0, 99)); (b, (0, 1)); (c, (0, 2)) ] in
        check Alcotest.bool "AL003" true
          (has_error_code "AL003"
             (Verify.Alloc_check.check ~machine:m4x4e ~mapping:m ~live_out code)));
    case "AL004-shared-physical-register" (fun () ->
        (* a and b are simultaneously live into the add but share (0,0) *)
        let m = mapping [ (a, (0, 0)); (b, (0, 0)); (c, (0, 1)) ] in
        check Alcotest.bool "AL004" true
          (has_error_code "AL004"
             (Verify.Alloc_check.check ~machine:m4x4e ~mapping:m ~live_out code)));
    case "AL005-contradicts-partition" (fun () ->
        let m = mapping [ (a, (0, 0)); (b, (0, 1)); (c, (0, 2)) ] in
        let asg = assign [ (a, 1); (b, 0); (c, 0) ] in
        check Alcotest.bool "AL005" true
          (has_error_code "AL005"
             (Verify.Alloc_check.check ~machine:m4x4e ~assignment:asg ~mapping:m ~live_out code)));
    case "AL004-mutated-real-allocation" (fun () ->
        (* collapse two distinct physical registers of a real allocation *)
        let loop = Workload.Kernels.dot ~unroll:1 in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error e -> Alcotest.failf "pipeline failed: %s" (Verify.Stage_error.to_string e)
        | Ok r -> (
            match
              Regalloc.Alloc.allocate_loop ~machine:m4x4e
                ~assignment:r.Partition.Driver.assignment r.Partition.Driver.rewritten
            with
            | Error msg -> Alcotest.failf "allocation failed: %s" (Verify.Stage_error.to_string msg)
            | Ok alloc ->
                (* remap every register onto physical slot 0 of its bank *)
                let squashed =
                  Ir.Vreg.Map.map (fun (bank, _) -> (bank, 0)) alloc.Regalloc.Alloc.mapping
                in
                let diags =
                  Verify.Alloc_check.check ~machine:m4x4e ~mapping:squashed
                    ~live_out:alloc.Regalloc.Alloc.live_out alloc.Regalloc.Alloc.code
                in
                check Alcotest.bool "AL004" true (has_error_code "AL004" diags)));
  ]

let suite =
  [
    ("verify.diag", diag_tests);
    ("verify.positive", positive_tests);
    ("verify.ir", ir_negative_tests);
    ("verify.sched", sched_negative_tests);
    ("verify.partition", partition_negative_tests);
    ("verify.alloc", alloc_negative_tests);
  ]
