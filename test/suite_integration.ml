open Testlib

(* Full-stack checks tying every library together: for a slice of the
   suite, on every paper configuration, the pipeline must succeed, both
   kernels must verify, the expanded clustered pipeline must compute the
   sequential semantics, and per-bank Chaitin/Briggs must allocate the
   rewritten body. *)

let machines = [ m2x8e; m4x4e; m4x4c; m8x2e; m8x2c ]

let full_stack_one machine loop =
  match Partition.Driver.pipeline ~machine loop with
  | Error e ->
      Alcotest.failf "%s/%s: %s" machine.Mach.Machine.name (Ir.Loop.name loop)
        (Verify.Stage_error.to_string e)
  | Ok r ->
      let name = Printf.sprintf "%s/%s" machine.Mach.Machine.name (Ir.Loop.name loop) in
      (* 1. ideal kernel valid on the monolithic machine *)
      let ddg0 = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency loop in
      let mono =
        Mach.Machine.ideal ~latency:machine.Mach.Machine.latency
          ~width:(Mach.Machine.width machine) ()
      in
      (match
         Sched.Check.kernel ~machine:mono ~cluster_of:all_zero_clusters ~ddg:ddg0
           r.Partition.Driver.ideal.Sched.Modulo.kernel
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s ideal kernel: %s" name e);
      (* 2. clustered kernel valid under cluster resources *)
      let ddg1 =
        Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency r.Partition.Driver.rewritten
      in
      let cluster_of =
        match
          Partition.Driver.cluster_map r.Partition.Driver.assignment r.Partition.Driver.rewritten
        with
        | Ok f -> f
        | Error e -> Alcotest.failf "%s cluster map: %s" name e
      in
      (match
         Sched.Check.kernel ~machine ~cluster_of ~ddg:ddg1
           r.Partition.Driver.clustered.Sched.Modulo.kernel
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s clustered kernel: %s" name e);
      (* 3. semantics: expanded clustered pipeline == sequential loop *)
      let trips = 5 in
      let code =
        Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
          ~loop:r.Partition.Driver.rewritten ~trips
      in
      let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
      seed_state sa loop;
      seed_state sb loop;
      Ir.Eval.run_loop sa ~trips loop;
      Ir.Eval.run_ops sb (Sched.Expand.ops code);
      if not (mem_equal sa sb) then
        Alcotest.failf "%s: pipeline diverges\n%s" name (mem_diff sa sb);
      (* 4. per-bank register allocation of the rewritten body *)
      (match
         Regalloc.Alloc.allocate_loop ~machine ~assignment:r.Partition.Driver.assignment
           r.Partition.Driver.rewritten
       with
      | Error e -> Alcotest.failf "%s regalloc: %s" name (Verify.Stage_error.to_string e)
      | Ok alloc ->
          if Regalloc.Alloc.check ~machine alloc <> Ok () then
            Alcotest.failf "%s: allocation check failed" name);
      (* 5. metrics coherent *)
      if r.Partition.Driver.degradation < 100.0 -. 1e-9 then
        Alcotest.failf "%s: degradation below 100" name

let integration_tests =
  [
    slow_case "full-stack-on-sample-x-all-machines" (fun () ->
        List.iter
          (fun machine -> List.iter (full_stack_one machine) (sample_loops ~n:12 ()))
          machines);
    case "paper-worked-example-partitions-to-2-banks" (fun () ->
        (* Section 4.2: 2 clusters of 1 FU, unit latencies. The paper's
           hand partition yields 9 cycles vs the 7-cycle ideal; our greedy
           partition must land in that ballpark (list scheduling, flat). *)
        let f = Mach.Rclass.Float in
        let b = Ir.Builder.create () in
        let r1 = Ir.Builder.load b f (Ir.Addr.scalar "xvel") in
        let r2 = Ir.Builder.load b f (Ir.Addr.scalar "t") in
        let r3 = Ir.Builder.load b f (Ir.Addr.scalar "xaccel") in
        let r4 = Ir.Builder.load b f (Ir.Addr.scalar "xpos") in
        let r5 = Ir.Builder.binop b Mach.Opcode.Mul f r1 r2 in
        let r6 = Ir.Builder.binop b Mach.Opcode.Add f r4 r5 in
        let r7 = Ir.Builder.binop b Mach.Opcode.Mul f r3 r2 in
        let c2 = Ir.Builder.load b f (Ir.Addr.scalar "two") in
        let r8 = Ir.Builder.binop b Mach.Opcode.Div f r2 c2 in
        let r9 = Ir.Builder.binop b Mach.Opcode.Mul f r7 r8 in
        let r10 = Ir.Builder.binop b Mach.Opcode.Add f r6 r9 in
        Ir.Builder.store b f (Ir.Addr.scalar "xout") r10;
        let fn = Ir.Builder.func b ~name:"ex" ~edges:[] in
        let blk = Ir.Func.entry fn in
        let machine =
          Mach.Machine.make ~latency:Mach.Latency.unit ~clusters:2 ~fus_per_cluster:1
            ~copy_model:Mach.Machine.Embedded ()
        in
        let g = Rcg.Build.of_func ~machine:(Mach.Machine.ideal ~latency:Mach.Latency.unit ~width:2 ()) fn in
        let a = Partition.Greedy.partition ~banks:2 g in
        let blk', a', _n =
          Partition.Copies.insert_block ~machine ~assignment:a ~fresh_vreg:100 ~fresh_op:100
            blk
        in
        let ddg = Ddg.Graph.of_block ~latency:Mach.Latency.unit blk' in
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun op -> Hashtbl.replace tbl (Ir.Op.id op) (Partition.Assign.cluster_of_op a' op))
          (Ir.Block.ops blk');
        let cluster_of id = Hashtbl.find tbl id in
        let s = Sched.List_sched.schedule ~cluster_of ~machine ddg in
        (match Sched.Check.flat ~machine ~cluster_of ~ddg s with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let len = Sched.Schedule.issue_length s in
        (* ideal is 7; paper's partitioned schedule is 9; accept 7..12 *)
        check Alcotest.bool (Printf.sprintf "7 <= %d <= 12" len) true (len >= 7 && len <= 12));
    case "copy-unit-does-not-steal-fu-slots" (fun () ->
        (* on the copy-unit model a kernel may issue fus_per_cluster ops
           AND copies in the same cluster-cycle *)
        let loop = Workload.Kernels.cmul ~unroll:4 in
        match Partition.Driver.pipeline ~machine:m4x4c loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            let k = r.Partition.Driver.clustered.Sched.Modulo.kernel in
            (* re-verify with the checker, which separates FU and port pools *)
            let ddg =
              Ddg.Graph.of_loop ~latency:m4x4c.Mach.Machine.latency
                r.Partition.Driver.rewritten
            in
            let cluster_of =
              match
                Partition.Driver.cluster_map r.Partition.Driver.assignment
                  r.Partition.Driver.rewritten
              with
              | Ok f -> f
              | Error e -> Alcotest.failf "cluster map: %s" e
            in
            check Alcotest.bool "valid" true
              (Sched.Check.kernel ~machine:m4x4c ~cluster_of ~ddg k = Ok ()));
    case "determinism-same-loop-same-result" (fun () ->
        let loop = Workload.Kernels.hydro ~unroll:4 in
        let run () =
          match Partition.Driver.pipeline ~machine:m4x4e loop with
          | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
          | Ok r ->
              (r.Partition.Driver.clustered.Sched.Modulo.ii, r.Partition.Driver.n_copies)
        in
        check
          Alcotest.(pair int int)
          "identical" (run ()) (run ()));
    slow_case "suite-degradation-shape-sane" (fun () ->
        (* cheap smoke of the paper's headline: embedded degradation grows
           with cluster count on a sample *)
        let loops = sample_loops ~n:30 () in
        let mean m =
          let run =
            Core.Experiment.run_config ~loops
              (Core.Experiment.config_for ~clusters:m ~copy_model:Mach.Machine.Embedded)
          in
          Core.Metrics.arithmetic_mean_degradation run.Core.Experiment.metrics
        in
        let d2 = mean 2 and d8 = mean 8 in
        check Alcotest.bool
          (Printf.sprintf "2-cluster %.0f <= 8-cluster %.0f" d2 d8)
          true (d2 <= d8));
  ]

let suite = [ ("integration", integration_tests) ]
