open Testlib

let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

let straightline () =
  (* r1 = load x; r2 = load y; r3 = r1+r2; store z, r3 *)
  let b = Ir.Builder.create () in
  let r1 = Ir.Builder.load b f (Ir.Addr.scalar "x") in
  let r2 = Ir.Builder.load b f (Ir.Addr.scalar "y") in
  let r3 = Ir.Builder.binop b Mach.Opcode.Add f r1 r2 in
  Ir.Builder.store b f (Ir.Addr.scalar "z") r3;
  (Ir.Builder.func b ~name:"sl" ~edges:[], r1, r2, r3)

let liveness_tests =
  [
    case "backward-basic" (fun () ->
        let fn, r1, r2, r3 = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let live = Regalloc.Liveness.backward ops ~live_out:Ir.Vreg.Set.empty in
        (* before the add: r1 r2 live; before the store: r3 live *)
        check Alcotest.bool "r1 live before add" true (Ir.Vreg.Set.mem r1 live.(2));
        check Alcotest.bool "r2 live before add" true (Ir.Vreg.Set.mem r2 live.(2));
        check Alcotest.bool "r3 live before store" true (Ir.Vreg.Set.mem r3 live.(3));
        check Alcotest.bool "r1 dead before store" false (Ir.Vreg.Set.mem r1 live.(3));
        check Alcotest.bool "nothing live at entry" true (Ir.Vreg.Set.is_empty live.(0)));
    case "live-out-propagates" (fun () ->
        let fn, r1, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let live = Regalloc.Liveness.backward ops ~live_out:(Ir.Vreg.Set.singleton r1) in
        (* r1 stays live through the whole tail *)
        check Alcotest.bool "r1 live before store" true (Ir.Vreg.Set.mem r1 live.(3)));
    case "loop-live-out-includes-carried-and-invariants" (fun () ->
        let loop = Workload.Kernels.dot ~unroll:1 in
        let lo = Regalloc.Liveness.loop_live_out loop in
        (* the accumulator s (carried + declared) is live out *)
        check Alcotest.bool "s" true
          (Ir.Vreg.Set.exists (fun r -> Ir.Vreg.to_string r = "s") lo));
    case "func-liveness-dataflow" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "in") in
        Ir.Builder.start_block b "use";
        Ir.Builder.store b f (Ir.Addr.scalar "out") x;
        let fn = Ir.Builder.func b ~name:"t" ~edges:[ ("entry", "use") ] in
        let lo = Regalloc.Liveness.func_live_out fn in
        check Alcotest.bool "x live out of entry" true (Ir.Vreg.Set.mem x (lo "entry"));
        check Alcotest.bool "nothing out of use" true (Ir.Vreg.Set.is_empty (lo "use")));
  ]

let interference_tests =
  [
    case "parallel-values-interfere" (fun () ->
        let fn, r1, r2, r3 = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        check Alcotest.bool "r1-r2" true (Regalloc.Interference.interferes g r1 r2);
        check Alcotest.bool "r1-r3 disjoint" false (Regalloc.Interference.interferes g r1 r3));
    case "copy-source-exempt" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        let y = Ir.Builder.copy b x in
        Ir.Builder.store b f (Ir.Addr.scalar "o1") x;
        Ir.Builder.store b f (Ir.Addr.scalar "o2") y;
        let fn = Ir.Builder.func b ~name:"t" ~edges:[] in
        let g =
          Regalloc.Interference.build (Ir.Block.ops (Ir.Func.entry fn))
            ~live_out:Ir.Vreg.Set.empty
        in
        (* x is live across the copy, but Chaitin's move exemption skips
           the edge from the copy's def *)
        check Alcotest.bool "x-y no edge from copy" false
          (Regalloc.Interference.interferes g x y));
    case "filtered-ignores-other-banks" (fun () ->
        let fn, r1, r2, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let keep r = Ir.Vreg.equal r r1 in
        let g = Regalloc.Interference.build_filtered ~keep ops ~live_out:Ir.Vreg.Set.empty in
        check Alcotest.bool "r2 absent" false
          (List.exists (Ir.Vreg.equal r2) (Regalloc.Interference.registers g)));
    case "pressure-bound" (fun () ->
        let fn, _, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        check Alcotest.int "max 2 live" 2 (Regalloc.Interference.max_clique_lower_bound g));
    case "occurrences-counted" (fun () ->
        let fn, r1, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        (* r1: one def + one use *)
        check Alcotest.int "r1 occ" 2 (Regalloc.Interference.occurrences g r1));
  ]

let color_tests =
  [
    case "two-colors-suffice-for-path" (fun () ->
        let fn, _, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        let r = Regalloc.Color.color ~k:2 g in
        check Alcotest.int "no spills" 0 (List.length r.Regalloc.Color.spilled);
        check Alcotest.bool "valid" true (Regalloc.Color.check g r.Regalloc.Color.colors = Ok ()));
    case "k1-forces-spill-on-clique" (fun () ->
        let fn, _, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        let r = Regalloc.Color.color ~k:1 g in
        check Alcotest.bool "spills" true (r.Regalloc.Color.spilled <> []));
    case "precolored-respected" (fun () ->
        let fn, r1, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        let pre = Ir.Vreg.Map.singleton r1 1 in
        let r = Regalloc.Color.color ~precolored:pre ~k:4 g in
        check Alcotest.(option int) "kept" (Some 1)
          (Ir.Vreg.Map.find_opt r1 r.Regalloc.Color.colors);
        check Alcotest.bool "valid" true (Regalloc.Color.check g r.Regalloc.Color.colors = Ok ()));
    case "precolor-out-of-range-rejected" (fun () ->
        let g = Regalloc.Interference.build [] ~live_out:(Ir.Vreg.Set.singleton (vreg 1)) in
        check Alcotest.bool "raises" true
          (try
             ignore (Regalloc.Color.color ~precolored:(Ir.Vreg.Map.singleton (vreg 1) 5) ~k:2 g);
             false
           with Invalid_argument _ -> true));
    qcheck ~count:50 "coloring-always-valid-on-loop-bodies" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let g =
          Regalloc.Interference.build (Ir.Loop.ops loop)
            ~live_out:(Regalloc.Liveness.loop_live_out loop)
        in
        let r = Regalloc.Color.color ~k:24 g in
        Regalloc.Color.check g r.Regalloc.Color.colors = Ok ());
    qcheck ~count:50 "optimism-never-spills-below-pressure" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let g =
          Regalloc.Interference.build (Ir.Loop.ops loop)
            ~live_out:(Regalloc.Liveness.loop_live_out loop)
        in
        let k = max 1 (Regalloc.Interference.max_clique_lower_bound g) in
        (* with k = pressure, an interval-like graph colours or spills;
           with k = pressure * 2 it must not spill more than ever *)
        let r = Regalloc.Color.color ~k:(2 * k) g in
        Regalloc.Color.check g r.Regalloc.Color.colors = Ok ());
  ]

let spill_tests =
  [
    case "rewrite-preserves-semantics" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b i (Ir.Addr.scalar "x") in
        let y = Ir.Builder.binop b Mach.Opcode.Add i x x in
        let z = Ir.Builder.binop b Mach.Opcode.Mul i y x in
        Ir.Builder.store b i (Ir.Addr.scalar "o") z;
        let fn = Ir.Builder.func b ~name:"t" ~edges:[] in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let rw =
          Regalloc.Spill.rewrite ~spilled:[ x; y ] ~fresh_vreg:100 ~fresh_op:100 ops
        in
        let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
        Ir.Eval.set_mem sa ~base:"x" ~index:0 (Ir.Eval.I 21);
        Ir.Eval.set_mem sb ~base:"x" ~index:0 (Ir.Eval.I 21);
        Ir.Eval.run_ops sa ops;
        Ir.Eval.run_ops sb rw.Regalloc.Spill.ops;
        check Alcotest.bool "o equal" true
          (Ir.Eval.value_equal
             (Ir.Eval.get_mem sa ~base:"o" ~index:0)
             (Ir.Eval.get_mem sb ~base:"o" ~index:0)));
    case "spilled-regs-have-short-ranges" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b i (Ir.Addr.scalar "x") in
        let y = Ir.Builder.binop b Mach.Opcode.Add i x x in
        Ir.Builder.store b i (Ir.Addr.scalar "o") y;
        let fn = Ir.Builder.func b ~name:"t" ~edges:[] in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let rw = Regalloc.Spill.rewrite ~spilled:[ x ] ~fresh_vreg:100 ~fresh_op:100 ops in
        (* x itself no longer appears *)
        List.iter
          (fun op ->
            List.iter
              (fun r ->
                check Alcotest.bool "x gone" false (Ir.Vreg.equal r x))
              (Ir.Op.defs op @ Ir.Op.uses op))
          rw.Regalloc.Spill.ops);
    case "temps-reported" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b i (Ir.Addr.scalar "x") in
        Ir.Builder.store b i (Ir.Addr.scalar "o") x;
        let fn = Ir.Builder.func b ~name:"t" ~edges:[] in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let rw = Regalloc.Spill.rewrite ~spilled:[ x ] ~fresh_vreg:50 ~fresh_op:50 ops in
        check Alcotest.int "2 temps (def + use)" 2 (List.length rw.Regalloc.Spill.temps);
        List.iter
          (fun (_, orig) -> check Alcotest.bool "orig is x" true (Ir.Vreg.equal orig x))
          rw.Regalloc.Spill.temps);
  ]

let alloc_tests =
  [
    case "suite-loops-allocate-without-spills-at-32" (fun () ->
        List.iter
          (fun loop ->
            let g = Rcg.Build.of_loop ~machine:ideal16 loop in
            let a = Partition.Greedy.partition ~banks:4 g in
            let ins = Partition.Copies.insert_loop ~machine:m4x4e ~assignment:a loop in
            match
              Regalloc.Alloc.allocate_loop ~machine:m4x4e
                ~assignment:ins.Partition.Copies.assignment ins.Partition.Copies.loop
            with
            | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) (Verify.Stage_error.to_string e)
            | Ok r ->
                check Alcotest.int (Ir.Loop.name loop ^ " no spills") 0
                  r.Regalloc.Alloc.spill_count;
                check Alcotest.bool "check passes" true
                  (Regalloc.Alloc.check ~machine:m4x4e r = Ok ()))
          (sample_loops ~n:16 ()));
    case "tiny-bank-forces-spills-then-succeeds" (fun () ->
        let machine =
          Mach.Machine.make ~regs_per_bank:3 ~clusters:1 ~fus_per_cluster:16
            ~copy_model:Mach.Machine.Embedded ()
        in
        let loop = Workload.Kernels.hydro ~unroll:2 in
        let a =
          Partition.Assign.of_list
            (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)))
        in
        match Regalloc.Alloc.allocate_loop ~machine ~assignment:a loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check Alcotest.bool "spilled" true (r.Regalloc.Alloc.spill_count > 0);
            check Alcotest.bool "valid" true (Regalloc.Alloc.check ~machine r = Ok ()));
    case "impossibly-small-bank-errors" (fun () ->
        let machine =
          Mach.Machine.make ~regs_per_bank:1 ~clusters:1 ~fus_per_cluster:16
            ~copy_model:Mach.Machine.Embedded ()
        in
        let loop = Workload.Kernels.cmul ~unroll:2 in
        let a =
          Partition.Assign.of_list
            (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)))
        in
        check Alcotest.bool "errors" true
          (match Regalloc.Alloc.allocate_loop ~machine ~assignment:a loop with
          | Error _ -> true
          | Ok _ -> false));
    case "unassigned-register-reported" (fun () ->
        let loop = Workload.Kernels.vcopy ~unroll:1 in
        check Alcotest.bool "error mentions register" true
          (match
             Regalloc.Alloc.allocate_loop ~machine:m4x4e
               ~assignment:(Partition.Assign.of_list []) loop
           with
          | Error e -> e.Verify.Stage_error.code = "AL001"
          | Ok _ -> false));
    case "mapping-respects-banks" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:2 in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        let a = Partition.Greedy.partition ~banks:4 g in
        let ins = Partition.Copies.insert_loop ~machine:m4x4e ~assignment:a loop in
        match
          Regalloc.Alloc.allocate_loop ~machine:m4x4e
            ~assignment:ins.Partition.Copies.assignment ins.Partition.Copies.loop
        with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            Ir.Vreg.Map.iter
              (fun reg (bank, _) ->
                check Alcotest.int (Ir.Vreg.to_string reg)
                  (Partition.Assign.bank ins.Partition.Copies.assignment reg) bank)
              r.Regalloc.Alloc.mapping);
    case "spilled-pipeline-still-correct" (fun () ->
        (* allocate with a tiny bank, then execute the spill-rewritten code *)
        let machine =
          Mach.Machine.make ~regs_per_bank:3 ~clusters:1 ~fus_per_cluster:16
            ~copy_model:Mach.Machine.Embedded ()
        in
        let loop = Workload.Kernels.stencil3 ~unroll:1 in
        let a =
          Partition.Assign.of_list
            (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)))
        in
        match Regalloc.Alloc.allocate_loop ~machine ~assignment:a loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            let rewritten = Ir.Loop.with_ops loop r.Regalloc.Alloc.code in
            let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
            seed_state sa loop;
            seed_state sb loop;
            (* spilled live-ins are read from their slots: materialize them *)
            Ir.Vreg.Set.iter
              (fun inv ->
                Ir.Eval.set_mem sb ~base:(Regalloc.Spill.slot_base inv) ~index:0
                  (Ir.Eval.get_reg sb inv))
              (Ir.Loop.invariants loop);
            Ir.Eval.run_loop sa ~trips:4 loop;
            Ir.Eval.run_loop sb ~trips:4 rewritten;
            (* compare non-spill memory *)
            let strip st =
              List.filter
                (fun (base, _, _) -> not (String.length base > 5 && String.sub base 0 5 = "spill"))
                (Ir.Eval.mem_snapshot st)
            in
            check Alcotest.bool "memory equal" true (strip sa = strip sb));
  ]

let linear_scan_tests =
  [
    case "simple-allocation" (fun () ->
        let fn, _, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let r = Regalloc.Linear_scan.allocate ~k:2 ops ~live_out:Ir.Vreg.Set.empty in
        check Alcotest.int "no spills" 0 (List.length r.Regalloc.Linear_scan.spilled);
        check Alcotest.bool "valid" true (Regalloc.Linear_scan.check r);
        check Alcotest.int "uses 2" 2 r.Regalloc.Linear_scan.used);
    case "k1-spills" (fun () ->
        let fn, _, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let r = Regalloc.Linear_scan.allocate ~k:1 ops ~live_out:Ir.Vreg.Set.empty in
        check Alcotest.bool "spills" true (r.Regalloc.Linear_scan.spilled <> []);
        check Alcotest.bool "still valid" true (Regalloc.Linear_scan.check r));
    case "live-out-extends-interval" (fun () ->
        let fn, r1, _, _ = straightline () in
        let ops = Ir.Block.ops (Ir.Func.entry fn) in
        let ivs = Regalloc.Linear_scan.intervals_of ops ~live_out:(Ir.Vreg.Set.singleton r1) in
        let iv = List.find (fun i -> Ir.Vreg.equal i.Regalloc.Linear_scan.reg r1) ivs in
        check Alcotest.int "to the end" (List.length ops) iv.Regalloc.Linear_scan.stop);
    qcheck ~count:50 "valid-and-never-beats-chaitin" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ops = Ir.Loop.ops loop in
        let live_out = Regalloc.Liveness.loop_live_out loop in
        let ls = Regalloc.Linear_scan.allocate ~k:512 ops ~live_out in
        let g = Regalloc.Interference.build ops ~live_out in
        let cb = Regalloc.Color.color ~k:512 g in
        let cb_used =
          Ir.Vreg.Map.fold (fun _ c acc -> max acc (c + 1)) cb.Regalloc.Color.colors 0
        in
        Regalloc.Linear_scan.check ls
        && ls.Regalloc.Linear_scan.spilled = []
        && ls.Regalloc.Linear_scan.used >= cb_used);
  ]

let suite =
  [
    ("regalloc.linear-scan", linear_scan_tests);
    ("regalloc.liveness", liveness_tests);
    ("regalloc.interference", interference_tests);
    ("regalloc.color", color_tests);
    ("regalloc.spill", spill_tests);
    ("regalloc.alloc", alloc_tests);
  ]
