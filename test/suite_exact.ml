open Testlib

(* The exact branch-and-bound solver (lib/exact): pruning soundness
   against brute force, the heuristic-dominance property the gap report
   rests on, witness verification (EX001-EX006) under mutation, and the
   determinism / cancellation contracts. *)

let leaf_score ~machine ~loop assignment =
  let l = Exact.Bounds.leaf_exact ~machine ~loop assignment in
  (l.Exact.Bounds.mii, l.Exact.Bounds.copies)

(* Brute force over the FULL bank-vector space (no symmetry reduction,
   no bounds) — the independent oracle the search must match. *)
let brute_force ~machine ~(space : Exact.Space.t) =
  let c = machine.Mach.Machine.clusters in
  let n = space.Exact.Space.n in
  let banks = Array.make (max n 1) 0 in
  let best = ref None in
  let consider () =
    let s = leaf_score ~machine ~loop:space.Exact.Space.loop
        (Exact.Space.to_assignment space banks)
    in
    match !best with
    | Some b when Exact.Bounds.compare_score b s <= 0 -> ()
    | _ -> best := Some s
  in
  let rec go d = if d = n then consider () else
    for b = 0 to c - 1 do
      banks.(d) <- b;
      go (d + 1)
    done
  in
  go 0;
  Option.get !best

let solve_scores ~machine loop =
  let s = Exact.Solve.solve ~machine loop in
  match s.Exact.Solve.status with
  | Exact.Solve.Budget_exhausted _ -> None
  | _ -> Some (s.Exact.Solve.best_mii, s.Exact.Solve.best_copies)

(* Tiny loops where c^n brute force stays cheap. *)
let tiny_loops ~max_vregs =
  List.filter
    (fun l -> Ir.Vreg.Set.cardinal (Ir.Loop.vregs l) <= max_vregs)
    (Workload.Suite.loops ~n:60 ())

let search_tests =
  [
    slow_case "search-matches-brute-force-2x8" (fun () ->
        let loops = tiny_loops ~max_vregs:7 in
        check Alcotest.bool "have tiny loops" true (List.length loops >= 5);
        List.iter
          (fun loop ->
            let space = Exact.Space.build loop in
            let expect = brute_force ~machine:m2x8e ~space in
            match solve_scores ~machine:m2x8e loop with
            | None -> Alcotest.fail "budget exhausted on a tiny loop"
            | Some got ->
                check
                  Alcotest.(pair int int)
                  (Ir.Loop.name loop) expect got)
          loops);
    slow_case "search-matches-brute-force-4x4" (fun () ->
        List.iter
          (fun loop ->
            let space = Exact.Space.build loop in
            let expect = brute_force ~machine:m4x4e ~space in
            match solve_scores ~machine:m4x4e loop with
            | None -> Alcotest.fail "budget exhausted on a tiny loop"
            | Some got ->
                check
                  Alcotest.(pair int int)
                  (Ir.Loop.name loop) expect got)
          (tiny_loops ~max_vregs:5));
    slow_case "search-matches-brute-force-copy-unit" (fun () ->
        List.iter
          (fun loop ->
            let space = Exact.Space.build loop in
            let expect = brute_force ~machine:m4x4c ~space in
            match solve_scores ~machine:m4x4c loop with
            | None -> Alcotest.fail "budget exhausted on a tiny loop"
            | Some got ->
                check
                  Alcotest.(pair int int)
                  (Ir.Loop.name loop) expect got)
          (tiny_loops ~max_vregs:5));
    case "monolithic-machine-trivial-space" (fun () ->
        (* One cluster: restricted growth admits only the all-zero
           assignment, so the search is one leaf and always complete. *)
        let loop = List.hd (sample_loops ~n:1 ()) in
        let s = Exact.Solve.solve ~machine:ideal16 loop in
        match s.Exact.Solve.status with
        | Exact.Solve.Budget_exhausted _ -> Alcotest.fail "trivial space exhausted budget"
        | _ -> check Alcotest.int "no copies on one bank" 0 s.Exact.Solve.best_copies);
    case "prefired-cancel-budget-exhausted" (fun () ->
        let t = Engine.Cancel.make ~clock:(fun () -> 0.0) () in
        Engine.Cancel.cancel t;
        let loop = List.hd (sample_loops ~n:1 ()) in
        let s =
          Exact.Solve.solve ~cancel:(Engine.Cancel.guard t) ~machine:m4x4e loop
        in
        match s.Exact.Solve.status with
        | Exact.Solve.Budget_exhausted { best; _ } ->
            (* The all-zero seed is evaluated before the search, so an
               incumbent exists even when cancellation is immediate. *)
            check Alcotest.bool "incumbent realized" true (best <> None)
        | _ -> Alcotest.fail "expected Budget_exhausted under a fired token");
    case "zero-budget-still-seeds" (fun () ->
        let loop = List.hd (sample_loops ~n:3 ()) in
        let s = Exact.Solve.solve ~budget:0 ~machine:m8x2e loop in
        check Alcotest.bool "incumbent mii finite" true
          (s.Exact.Solve.best_mii < max_int));
    case "schedule-at-achieved-ii" (fun () ->
        let loop = List.hd (sample_loops ~n:1 ()) in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.schedule ~machine:ideal16 ~mii:1 ddg with
        | None -> Alcotest.fail "ideal schedule failed"
        | Some o -> (
            match
              Sched.Modulo.schedule_at ~machine:ideal16 ~ii:o.Sched.Modulo.ii ddg
            with
            | None -> Alcotest.fail "schedule_at rejects the achieved II"
            | Some o' -> check Alcotest.int "same II" o.Sched.Modulo.ii o'.Sched.Modulo.ii));
  ]

(* ------------------------------------------------------------------ *)
(* Heuristic dominance: where the solver proves optimality, greedy can *)
(* never do better — the inequality the gap table relies on.           *)
(* ------------------------------------------------------------------ *)

let dominance_tests =
  let machines = [ m2x8e; m4x4e; m8x2e; m4x4c ] in
  [
    qcheck ~count:40 "greedy-never-beats-proven-optimum" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        if Ir.Vreg.Set.cardinal (Ir.Loop.vregs loop) > Exact.Solve.slice_max_vregs then
          true
        else
          List.for_all
            (fun machine ->
              let e = Exact.Gap.one ~cancel:Engine.Cancel.never ~machine loop in
              match e.Exact.Gap.solve.Exact.Solve.status with
              | Exact.Solve.Optimal w when e.Exact.Gap.greedy_ii > 0 ->
                  e.Exact.Gap.greedy_ii > w.Exact.Witness.ii
                  || (e.Exact.Gap.greedy_ii = w.Exact.Witness.ii
                      && e.Exact.Gap.greedy_copies >= w.Exact.Witness.copies)
              | _ -> true)
            machines);
    qcheck ~count:40 "optimal-witness-verifies-clean" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        if Ir.Vreg.Set.cardinal (Ir.Loop.vregs loop) > Exact.Solve.slice_max_vregs then
          true
        else
          let s = Exact.Solve.solve ~machine:m4x4e loop in
          match s.Exact.Solve.status with
          | Exact.Solve.Optimal _ ->
              not (Verify.Diag.has_errors s.Exact.Solve.diags)
          | _ -> true);
    qcheck ~count:40 "lower-bound-below-any-witness" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        if Ir.Vreg.Set.cardinal (Ir.Loop.vregs loop) > Exact.Solve.slice_max_vregs then
          true
        else
          let s = Exact.Solve.solve ~machine:m2x8e loop in
          match Exact.Solve.witness s with
          | Some w -> Exact.Solve.lower s <= w.Exact.Witness.ii
          | None -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Witness mutation: every EX check must reject its corruption.        *)
(* ------------------------------------------------------------------ *)

(* A register whose bank flip is guaranteed visible: the source of a real
   op with a different destination (the op's cluster is pinned by the
   destination, so the flipped operand goes non-local). *)
let corruptible (w : Exact.Witness.t) =
  List.find_map
    (fun op ->
      if Ir.Op.is_copy op then None
      else
        match Ir.Op.dst op with
        | None -> None
        | Some d -> List.find_opt (fun s -> not (Ir.Vreg.equal s d)) (Ir.Op.srcs op))
    (Ir.Loop.ops w.Exact.Witness.rewritten)

(* A proven-optimal witness rich enough for every mutation to be
   observable: II >= 2 (so lower can be understated) and a corruptible
   source operand. *)
let proven_witness () =
  let rec find = function
    | [] -> Alcotest.fail "no proven-optimal loop found in the slice"
    | loop :: rest -> (
        match (Exact.Solve.solve ~machine:m4x4e loop).Exact.Solve.status with
        | Exact.Solve.Optimal w
          when w.Exact.Witness.ii >= 2 && corruptible w <> None ->
            (loop, w)
        | _ -> find rest)
  in
  find (List.filter
          (fun l -> Ir.Vreg.Set.cardinal (Ir.Loop.vregs l) <= Exact.Solve.slice_max_vregs)
          (Workload.Suite.loops ()))

let claim_of ~loop (w : Exact.Witness.t) ~lower ~optimal =
  {
    Verify.Exact_check.original = loop;
    rewritten = w.Exact.Witness.rewritten;
    assignment = w.Exact.Witness.assignment;
    kernel = w.Exact.Witness.kernel;
    ddg = w.Exact.Witness.ddg;
    claimed_ii = w.Exact.Witness.ii;
    claimed_copies = w.Exact.Witness.copies;
    lower;
    optimal;
  }

let mutation_tests =
  [
    case "pristine-claim-is-clean" (fun () ->
        let loop, w = proven_witness () in
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            (claim_of ~loop w ~lower:w.Exact.Witness.ii ~optimal:true)
        in
        check Alcotest.bool "clean" false (Verify.Diag.has_errors ds));
    case "ex001-ii-mismatch" (fun () ->
        let loop, w = proven_witness () in
        let c = claim_of ~loop w ~lower:w.Exact.Witness.ii ~optimal:false in
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            { c with Verify.Exact_check.claimed_ii = c.Verify.Exact_check.claimed_ii + 1 }
        in
        check Alcotest.bool "EX001" true (Verify.Diag.has_code "EX001" ds));
    case "ex002-corrupted-assignment" (fun () ->
        let loop, w = proven_witness () in
        (* Move a register to another bank without re-inserting copies:
           operand locality must then fail. *)
        let r = Option.get (corruptible w) in
        let b = Ir.Vreg.Map.find r w.Exact.Witness.assignment in
        let corrupted =
          Ir.Vreg.Map.add r ((b + 1) mod m4x4e.Mach.Machine.clusters)
            w.Exact.Witness.assignment
        in
        let c = claim_of ~loop w ~lower:w.Exact.Witness.ii ~optimal:true in
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            { c with Verify.Exact_check.assignment = corrupted }
        in
        check Alcotest.bool "EX002" true (Verify.Diag.has_code "EX002" ds));
    case "ex003-wrong-original" (fun () ->
        let loop, w = proven_witness () in
        let truncated =
          match Ir.Loop.ops loop with
          | _ :: (_ :: _ as rest) -> Ir.Loop.with_ops loop rest
          | _ -> Alcotest.fail "loop too small to truncate"
        in
        let c = claim_of ~loop w ~lower:w.Exact.Witness.ii ~optimal:false in
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            { c with Verify.Exact_check.original = truncated }
        in
        check Alcotest.bool "EX003" true (Verify.Diag.has_code "EX003" ds));
    case "ex004-copy-count-lie" (fun () ->
        let loop, w = proven_witness () in
        let c = claim_of ~loop w ~lower:w.Exact.Witness.ii ~optimal:false in
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            { c with Verify.Exact_check.claimed_copies = c.Verify.Exact_check.claimed_copies + 1 }
        in
        check Alcotest.bool "EX004" true (Verify.Diag.has_code "EX004" ds));
    case "ex005-incoherent-lower" (fun () ->
        let loop, w = proven_witness () in
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            (claim_of ~loop w ~lower:(w.Exact.Witness.ii + 1) ~optimal:false)
        in
        check Alcotest.bool "EX005" true (Verify.Diag.has_code "EX005" ds));
    case "ex006-untight-optimal-claim" (fun () ->
        let loop, w = proven_witness () in
        (* Claiming optimality while admitting lower < II is self-refuting;
           proven_witness guarantees II >= 2 so the understated lower is
           still a legal bound (>= 1, catching EX005 would mask EX006). *)
        let ds =
          Verify.Exact_check.check ~machine:m4x4e
            (claim_of ~loop w ~lower:(w.Exact.Witness.ii - 1) ~optimal:true)
        in
        check Alcotest.bool "EX006" true (Verify.Diag.has_code "EX006" ds));
  ]

(* ------------------------------------------------------------------ *)
(* Gap study determinism + pipeline deadline plumbing.                 *)
(* ------------------------------------------------------------------ *)

let harness_tests =
  [
    slow_case "gap-rows-identical-j1-j4" (fun () ->
        let rows jobs =
          List.map Exact.Gap.row_of (Exact.Gap.run ~jobs ~n:60 ())
        in
        let r1 = rows 1 and r4 = rows 4 in
        check Alcotest.bool "same rows" true (r1 = r4));
    case "gap-slice-nonempty" (fun () ->
        check Alcotest.bool "at least 40 tractable loops" true
          (List.length (Exact.Gap.slice ()) >= 40));
    case "pipeline-deadline-pipe008" (fun () ->
        let loop = List.hd (sample_loops ~n:1 ()) in
        match
          Partition.Driver.pipeline ~cancel:(fun () -> true) ~machine:m4x4e loop
        with
        | Ok _ -> Alcotest.fail "fired token must stop the pipeline"
        | Error e ->
            check Alcotest.string "code" Partition.Driver.deadline_code
              e.Verify.Stage_error.code);
    case "pipeline-never-cancel-unchanged" (fun () ->
        let loop = List.hd (sample_loops ~n:1 ()) in
        match
          ( Partition.Driver.pipeline ~cancel:(fun () -> false) ~machine:m4x4e loop,
            Partition.Driver.pipeline ~machine:m4x4e loop )
        with
        | Ok a, Ok b ->
            check Alcotest.int "same II" a.Partition.Driver.clustered.Sched.Modulo.ii
              b.Partition.Driver.clustered.Sched.Modulo.ii
        | _ -> Alcotest.fail "pipeline failed");
  ]

let suite =
  [
    ("exact.search", search_tests);
    ("exact.dominance", dominance_tests);
    ("exact.mutation", mutation_tests);
    ("exact.harness", harness_tests);
  ]
