open Testlib

(* Cross-product checks: both schedulers × several machines × several
   partitioners, all through the public driver, each result re-verified
   and executed. *)

let schedulers = [ ("rau", Partition.Driver.Rau); ("swing", Partition.Driver.Swing) ]

let partitioners =
  [
    ("greedy", Partition.Driver.Greedy Rcg.Weights.default);
    ("bug", Partition.Driver.Bug);
    ("uas", Partition.Driver.Uas);
    ("ne", Partition.Driver.Custom (fun machine ddg _ -> Partition.Ne.partition ~machine ddg));
    ("refined", Partition.Refine.partitioner Rcg.Weights.default);
  ]

let verify_result machine loop (r : Partition.Driver.result) label =
  let ddg = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency r.Partition.Driver.rewritten in
  let cluster_of =
    match
      Partition.Driver.cluster_map r.Partition.Driver.assignment r.Partition.Driver.rewritten
    with
    | Ok f -> f
    | Error e -> Alcotest.failf "%s: cluster map: %s" label e
  in
  (match
     Sched.Check.kernel ~machine ~cluster_of ~ddg r.Partition.Driver.clustered.Sched.Modulo.kernel
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid kernel: %s" label e);
  let trips = 4 in
  let code =
    Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
      ~loop:r.Partition.Driver.rewritten ~trips
  in
  let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
  seed_state sa loop;
  seed_state sb loop;
  Ir.Eval.run_loop sa ~trips loop;
  Ir.Eval.run_ops sb (Sched.Expand.ops code);
  if not (mem_equal sa sb) then Alcotest.failf "%s: diverges" label

let matrix_tests =
  [
    slow_case "schedulers-x-partitioners-x-machines" (fun () ->
        let loops =
          [ Workload.Kernels.daxpy ~unroll:4; Workload.Kernels.dot ~unroll:2;
            Workload.Kernels.tridiag ~unroll:1; Workload.Kernels.cmul ~unroll:2 ]
        in
        List.iter
          (fun (sname, scheduler) ->
            List.iter
              (fun (pname, partitioner) ->
                List.iter
                  (fun machine ->
                    List.iter
                      (fun loop ->
                        let label =
                          Printf.sprintf "%s/%s/%s/%s" sname pname
                            machine.Mach.Machine.name (Ir.Loop.name loop)
                        in
                        match
                          Partition.Driver.pipeline ~partitioner ~scheduler ~machine loop
                        with
                        | Error e -> Alcotest.failf "%s: %s" label (Verify.Stage_error.to_string e)
                        | Ok r -> verify_result machine loop r label)
                      loops)
                  [ m2x8e; m4x4c; m8x2e ])
              partitioners)
          schedulers);
    case "swing-scheduler-through-driver" (fun () ->
        let loop = Workload.Kernels.hydro ~unroll:4 in
        match
          Partition.Driver.pipeline ~scheduler:Partition.Driver.Swing ~machine:m4x4e loop
        with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check Alcotest.bool "ii >= mii" true
              (r.Partition.Driver.clustered.Sched.Modulo.ii
              >= r.Partition.Driver.clustered.Sched.Modulo.mii));
  ]

let restab_props =
  [
    qcheck ~count:200 "reserve-then-release-restores-fit"
      QCheck2.Gen.(pair (int_range 0 30) (int_range 1 8))
      (fun (cycle, ii) ->
        let t = Sched.Restab.create_modulo m4x4e ~ii in
        let req = Sched.Restab.Fu (cycle mod 4) in
        let before = Sched.Restab.fits t ~cycle req in
        Sched.Restab.reserve t ~cycle ~op:1 req;
        Sched.Restab.release_op t ~op:1;
        before && Sched.Restab.fits t ~cycle req);
    qcheck ~count:200 "capacity-is-exact"
      QCheck2.Gen.(int_range 1 8)
      (fun ii ->
        let t = Sched.Restab.create_modulo m4x4e ~ii in
        let req = Sched.Restab.Fu 2 in
        let rec fill k =
          if Sched.Restab.fits t ~cycle:0 req then begin
            Sched.Restab.reserve t ~cycle:0 ~op:k req;
            fill (k + 1)
          end
          else k
        in
        fill 0 = m4x4e.Mach.Machine.fus_per_cluster);
    qcheck ~count:100 "conflicts-empty-iff-fits"
      QCheck2.Gen.(int_range 0 6)
      (fun pre ->
        let t = Sched.Restab.create_modulo m8x2e ~ii:2 in
        for op = 0 to pre - 1 do
          if Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu 0) then
            Sched.Restab.reserve t ~cycle:0 ~op (Sched.Restab.Fu 0)
        done;
        let fits = Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu 0) in
        let conflicts = Sched.Restab.conflicting_ops t ~cycle:0 (Sched.Restab.Fu 0) in
        fits = (conflicts = []));
  ]

let expand_props =
  [
    qcheck ~count:30 "instance-count-and-cycle-bounds" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            let trips = 3 in
            let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips in
            let ii = Sched.Kernel.ii o.Sched.Modulo.kernel in
            let stages = Sched.Kernel.n_stages o.Sched.Modulo.kernel in
            List.length code.Sched.Expand.instances = trips * Ir.Loop.size loop
            && code.Sched.Expand.total_cycles <= ((trips + stages) * ii) + 1
            && List.for_all
                 (fun (x : Sched.Expand.instance) ->
                   x.cycle >= 0 && x.iteration >= 0 && x.iteration < trips)
                 code.Sched.Expand.instances);
    qcheck ~count:30 "expansion-issue-order-sorted" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips:4 in
            let rec sorted = function
              | (a : Sched.Expand.instance) :: (b :: _ as rest) ->
                  a.cycle <= b.cycle && sorted rest
              | [ _ ] | [] -> true
            in
            sorted code.Sched.Expand.instances);
  ]

(* The two independent validators (static Check, dynamic Sim) and the
   interpreter must agree on driver output. *)
let cross_validation =
  [
    qcheck ~count:25 "check-and-sim-agree-on-driver-output" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error _ -> false
        | Ok r -> (
            let machine = m4x4e in
            let ddg =
              Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency
                r.Partition.Driver.rewritten
            in
            match
              Partition.Driver.cluster_map r.Partition.Driver.assignment
                r.Partition.Driver.rewritten
            with
            | Error _ -> false
            | Ok cluster_of -> (
            let static_ok =
              Sched.Check.kernel ~machine ~cluster_of ~ddg
                r.Partition.Driver.clustered.Sched.Modulo.kernel
              = Ok ()
            in
            let code =
              Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                ~loop:r.Partition.Driver.rewritten ~trips:4
            in
            let st = Ir.Eval.create () in
            seed_state st loop;
            match Sched.Sim.run ~state:st ~latency:machine.Mach.Machine.latency code with
            | Ok _ -> static_ok
            | Error _ -> false)));
    qcheck ~count:20 "swing-driver-output-simulates" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        match
          Partition.Driver.pipeline ~scheduler:Partition.Driver.Swing ~machine:m8x2c loop
        with
        | Error _ -> false
        | Ok r -> (
            let code =
              Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                ~loop:r.Partition.Driver.rewritten ~trips:3
            in
            match Sched.Sim.run ~latency:m8x2c.Mach.Machine.latency code with
            | Ok _ -> true
            | Error _ -> false));
  ]

let suite =
  [
    ("driver.matrix", matrix_tests);
    ("driver.cross-validation", cross_validation);
    ("sched.restab-props", restab_props);
    ("sched.expand-props", expand_props);
  ]
