open Testlib

let swing_tests =
  [
    case "valid-kernels-on-samples" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Swing.ideal ~machine:ideal16 ddg with
            | None -> Alcotest.failf "%s: swing failed" (Ir.Loop.name loop)
            | Some o -> (
                match
                  Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg
                    o.Sched.Modulo.kernel
                with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) e))
          (sample_loops ~n:30 ()));
    case "ii-at-least-mii" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Swing.ideal ~machine:ideal16 ddg with
            | None -> ()
            | Some o ->
                check Alcotest.bool (Ir.Loop.name loop) true
                  (o.Sched.Modulo.ii >= o.Sched.Modulo.mii))
          (sample_loops ()));
    case "matches-rau-ii-on-daxpy" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.daxpy ~unroll:4) in
        match (Sched.Modulo.ideal ~machine:ideal16 ddg, Sched.Swing.ideal ~machine:ideal16 ddg) with
        | Some rau, Some swing ->
            check Alcotest.int "same II" rau.Sched.Modulo.ii swing.Sched.Modulo.ii
        | _ -> Alcotest.fail "scheduling failed");
    case "recurrence-loop-hits-recmii" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.first_order_rec ~unroll:1) in
        match Sched.Swing.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "failed"
        | Some o -> check Alcotest.int "ii=4" 4 o.Sched.Modulo.ii);
    qcheck ~count:40 "swing-valid-on-random-loops" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Swing.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg
              o.Sched.Modulo.kernel
            = Ok ());
    case "swing-expansion-equivalent" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Swing.ideal ~machine:ideal16 ddg with
            | None -> Alcotest.failf "%s failed" (Ir.Loop.name loop)
            | Some o ->
                let trips = 6 in
                let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips in
                let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
                seed_state sa loop;
                seed_state sb loop;
                Ir.Eval.run_loop sa ~trips loop;
                Ir.Eval.run_ops sb (Sched.Expand.ops code);
                if not (mem_equal sa sb) then
                  Alcotest.failf "%s: swing pipeline diverges" (Ir.Loop.name loop))
          [ Workload.Kernels.dot ~unroll:2; Workload.Kernels.tridiag ~unroll:1;
            Workload.Kernels.hydro ~unroll:2 ]);
    slow_case "lifetime-sensitivity-on-average" (fun () ->
        (* SMS's reason to exist: MaxLive no worse than Rau's on average *)
        let loops = sample_loops ~n:30 () in
        let totals = ref (0, 0) in
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match
              (Sched.Modulo.ideal ~machine:ideal16 ddg, Sched.Swing.ideal ~machine:ideal16 ddg)
            with
            | Some rau, Some swing when rau.Sched.Modulo.ii = swing.Sched.Modulo.ii ->
                let mr = Sched.Pressure.max_live ~kernel:rau.Sched.Modulo.kernel ~loop in
                let ms = Sched.Pressure.max_live ~kernel:swing.Sched.Modulo.kernel ~loop in
                let a, b = !totals in
                totals := (a + mr, b + ms)
            | _ -> ())
          loops;
        let rau_total, swing_total = !totals in
        check Alcotest.bool
          (Printf.sprintf "swing %d <= rau %d + 5%%" swing_total rau_total)
          true
          (float_of_int swing_total <= (1.05 *. float_of_int rau_total)));
  ]

let pressure_tests =
  [
    case "lifetimes-cover-defs" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let lts = Sched.Pressure.lifetimes ~kernel:o.Sched.Modulo.kernel ~loop in
            (* every non-invariant defined register appears exactly once *)
            let defined =
              Ir.Vreg.Set.diff (Ir.Loop.vregs loop) (Ir.Loop.invariants loop)
            in
            check Alcotest.int "count" (Ir.Vreg.Set.cardinal defined) (List.length lts);
            List.iter
              (fun (_, c, e) -> check Alcotest.bool "end after def" true (e > c))
              lts);
    case "maxlive-at-least-pressure-floor" (fun () ->
        (* a chain of unit-latency ops needs at least 1 live value; a wide
           kernel needs at least ops-in-flight / ii *)
        let loop = Workload.Kernels.cmul ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let ml = Sched.Pressure.max_live ~kernel:o.Sched.Modulo.kernel ~loop in
            check Alcotest.bool "positive" true (ml >= 1));
    case "per-bank-sums-bound-total" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:2 in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            let kernel = r.Partition.Driver.clustered.Sched.Modulo.kernel in
            let rloop = r.Partition.Driver.rewritten in
            let bank_of reg = Partition.Assign.bank r.Partition.Driver.assignment reg in
            let per =
              Sched.Pressure.per_bank_max_live ~kernel ~loop:rloop ~banks:4 ~bank_of
            in
            let total = Sched.Pressure.max_live ~kernel ~loop:rloop in
            check Alcotest.bool "sum >= total" true (Array.fold_left ( + ) 0 per >= total);
            Array.iter (fun p -> check Alcotest.bool "each <= total" true (p <= total)) per);
    case "longer-lifetimes-raise-maxlive" (fun () ->
        (* compare maxlive of a deep chain vs wide independent ops *)
        let wide = Workload.Kernels.vcopy ~unroll:8 in
        let ddg = Ddg.Graph.of_loop wide in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let ml = Sched.Pressure.max_live ~kernel:o.Sched.Modulo.kernel ~loop:wide in
            (* 8 loads with latency 2 at II=1: at least 8 values in flight *)
            check Alcotest.bool (Printf.sprintf "ml=%d >= 8" ml) true (ml >= 8));
  ]

let ne_tests =
  [
    case "recurrence-groups-found" (fun () ->
        let loop = Workload.Kernels.euler_step ~unroll:1 in
        let ddg = Ddg.Graph.of_loop loop in
        let groups = Partition.Ne.recurrence_groups ddg in
        check Alcotest.bool "at least one" true (groups <> []));
    case "recurrence-registers-share-bank" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let a = Partition.Ne.partition ~machine:m4x4e ddg in
            List.iter
              (fun group ->
                let banks =
                  Ir.Vreg.Set.fold
                    (fun r acc -> Partition.Assign.bank a r :: acc)
                    group []
                in
                match banks with
                | [] -> ()
                | b :: rest ->
                    List.iter
                      (fun b' ->
                        check Alcotest.int (Ir.Loop.name loop ^ " same bank") b b')
                      rest)
              (Partition.Ne.recurrence_groups ddg))
          [ Workload.Kernels.first_order_rec ~unroll:2; Workload.Kernels.euler_step ~unroll:2;
            Workload.Kernels.dot ~unroll:4 ]);
    case "covers-all-registers" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let a = Partition.Ne.partition ~machine:m8x2e ddg in
            check Alcotest.bool (Ir.Loop.name loop) true
              (Ir.Vreg.Set.for_all
                 (fun r -> Partition.Assign.bank_opt a r <> None)
                 (Ir.Loop.vregs loop)
              && Partition.Assign.all_in_range ~banks:8 a))
          (sample_loops ~n:12 ()));
    case "ne-pipeline-runs" (fun () ->
        let loop = Workload.Kernels.tridiag ~unroll:2 in
        let ne = Partition.Driver.Custom (fun machine ddg _ -> Partition.Ne.partition ~machine ddg) in
        match Partition.Driver.pipeline ~partitioner:ne ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check Alcotest.bool "no recurrence lengthening" true
              (r.Partition.Driver.degradation >= 100.0));
    case "ne-avoids-recurrence-copies" (fun () ->
        (* for a pure recurrence loop NE should produce zero degradation *)
        let loop = Workload.Kernels.first_order_rec ~unroll:1 in
        let ne = Partition.Driver.Custom (fun machine ddg _ -> Partition.Ne.partition ~machine ddg) in
        match Partition.Driver.pipeline ~partitioner:ne ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r ->
            check (Alcotest.float 1e-9) "100" 100.0 r.Partition.Driver.degradation);
  ]

let cyclic_tests =
  [
    case "non-overlapping-share-color" (fun () ->
        let arcs =
          [ { Regalloc.Cyclic.id = 0; start = 0; len = 3 };
            { Regalloc.Cyclic.id = 1; start = 3; len = 3 };
            { Regalloc.Cyclic.id = 2; start = 6; len = 2 } ]
        in
        let coloring, n = Regalloc.Cyclic.color ~circumference:8 arcs in
        check Alcotest.int "one color" 1 n;
        check Alcotest.bool "valid" true (Regalloc.Cyclic.check ~circumference:8 arcs coloring));
    case "wraparound-overlap-detected" (fun () ->
        (* arc [6, 6+4) wraps to [0,2): overlaps [1,3) *)
        let arcs =
          [ { Regalloc.Cyclic.id = 0; start = 6; len = 4 };
            { Regalloc.Cyclic.id = 1; start = 1; len = 2 } ]
        in
        let coloring, n = Regalloc.Cyclic.color ~circumference:8 arcs in
        check Alcotest.int "two colors" 2 n;
        check Alcotest.bool "valid" true (Regalloc.Cyclic.check ~circumference:8 arcs coloring));
    case "full-circle-arcs-conflict-with-all" (fun () ->
        let arcs =
          [ { Regalloc.Cyclic.id = 0; start = 0; len = 4 };
            { Regalloc.Cyclic.id = 1; start = 2; len = 1 } ]
        in
        let coloring, n = Regalloc.Cyclic.color ~circumference:4 arcs in
        check Alcotest.int "two colors" 2 n;
        check Alcotest.bool "valid" true (Regalloc.Cyclic.check ~circumference:4 arcs coloring));
    case "zero-length-free" (fun () ->
        let arcs = [ { Regalloc.Cyclic.id = 0; start = 2; len = 0 } ] in
        let _, n = Regalloc.Cyclic.color ~circumference:4 arcs in
        check Alcotest.int "no colors" 0 n);
    case "rejects-too-long" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore
               (Regalloc.Cyclic.color ~circumference:4
                  [ { Regalloc.Cyclic.id = 0; start = 0; len = 5 } ]);
             false
           with Invalid_argument _ -> true));
    qcheck ~count:100 "first-fit-always-valid"
      QCheck2.Gen.(
        pair (int_range 2 20)
          (list_size (int_range 0 15) (pair (int_range 0 19) (int_range 0 10))))
      (fun (circ, raw) ->
        let arcs =
          List.mapi
            (fun i (s, l) -> { Regalloc.Cyclic.id = i; start = s; len = min l circ })
            raw
        in
        let coloring, _ = Regalloc.Cyclic.color ~circumference:circ arcs in
        Regalloc.Cyclic.check ~circumference:circ arcs coloring);
  ]

let kernel_alloc_tests =
  [
    case "requirements-cover-maxlive" (fun () ->
        (* colours needed >= MaxLive at any slot *)
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Modulo.ideal ~machine:ideal16 ddg with
            | None -> ()
            | Some o ->
                let req =
                  Regalloc.Kernel_alloc.requirements ~kernel:o.Sched.Modulo.kernel ~loop
                    ~banks:1 ~bank_of:(fun _ -> 0)
                in
                let ml = Sched.Pressure.max_live ~kernel:o.Sched.Modulo.kernel ~loop in
                check Alcotest.bool
                  (Printf.sprintf "%s: %d >= maxlive %d" (Ir.Loop.name loop)
                     req.Regalloc.Kernel_alloc.total ml)
                  true
                  (req.Regalloc.Kernel_alloc.total >= ml);
                (* ... and within 2x of it (first-fit on arcs is decent) *)
                check Alcotest.bool "not wasteful" true
                  (req.Regalloc.Kernel_alloc.total <= (2 * ml) + 4))
          (sample_loops ~n:20 ()));
    case "partitioned-banks-fit-32" (fun () ->
        List.iter
          (fun loop ->
            match Partition.Driver.pipeline ~machine:m4x4e loop with
            | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
            | Ok r ->
                let req =
                  Regalloc.Kernel_alloc.requirements
                    ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                    ~loop:r.Partition.Driver.rewritten ~banks:4
                    ~bank_of:(Partition.Assign.bank r.Partition.Driver.assignment)
                in
                check Alcotest.bool (Ir.Loop.name loop) true
                  (Regalloc.Kernel_alloc.fits req ~regs_per_bank:32))
          (sample_loops ~n:12 ()));
    case "mve-factor-consistent" (fun () ->
        let loop = Workload.Kernels.hydro ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let req =
              Regalloc.Kernel_alloc.requirements ~kernel:o.Sched.Modulo.kernel ~loop ~banks:1
                ~bank_of:(fun _ -> 0)
            in
            check Alcotest.int "factor"
              (Sched.Expand.mve_factor ~kernel:o.Sched.Modulo.kernel ~loop)
              req.Regalloc.Kernel_alloc.mve_factor);
  ]

let sim_tests =
  [
    case "ideal-pipelines-simulate-cleanly" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Modulo.ideal ~machine:ideal16 ddg with
            | None -> Alcotest.failf "%s: no schedule" (Ir.Loop.name loop)
            | Some o -> (
                let code =
                  Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips:5
                in
                let st = Ir.Eval.create () in
                seed_state st loop;
                match Sched.Sim.run ~state:st ~latency:Mach.Latency.paper code with
                | Ok _ -> ()
                | Error v ->
                    Alcotest.failf "%s: cycle %d %s: %s" (Ir.Loop.name loop) v.Sched.Sim.cycle
                      (Ir.Op.to_string v.Sched.Sim.op) v.Sched.Sim.what))
          (sample_loops ~n:20 ()));
    case "clustered-pipelines-simulate-cleanly" (fun () ->
        List.iter
          (fun loop ->
            match Partition.Driver.pipeline ~machine:m4x4e loop with
            | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
            | Ok r -> (
                let code =
                  Sched.Expand.flatten
                    ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                    ~loop:r.Partition.Driver.rewritten ~trips:5
                in
                let st = Ir.Eval.create () in
                seed_state st loop;
                match Sched.Sim.run ~state:st ~latency:Mach.Latency.paper code with
                | Ok sim_state ->
                    (* final state equals sequential execution *)
                    let seq = Ir.Eval.create () in
                    seed_state seq loop;
                    Ir.Eval.run_loop seq ~trips:5 loop;
                    check Alcotest.bool (Ir.Loop.name loop ^ " memory") true
                      (mem_equal seq sim_state)
                | Error v ->
                    Alcotest.failf "%s: cycle %d: %s" (Ir.Loop.name loop) v.Sched.Sim.cycle
                      v.Sched.Sim.what))
          (sample_loops ~n:12 ()));
    case "detects-latency-violation" (fun () ->
        (* hand-build an illegal schedule: consumer issues 1 cycle after a
           2-cycle load *)
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b Mach.Rclass.Float (Ir.Addr.element "x") in
        let y = Ir.Builder.unop b Mach.Opcode.Neg Mach.Rclass.Float x in
        Ir.Builder.store b Mach.Rclass.Float (Ir.Addr.element "y") y;
        let loop = Ir.Builder.loop b ~name:"bad" () in
        let placements =
          List.mapi
            (fun idx op -> { Sched.Schedule.op; cycle = idx; cluster = 0 })
            (Ir.Loop.ops loop)
        in
        let kernel = Sched.Kernel.make ~ii:3 placements in
        let code = Sched.Expand.flatten ~kernel ~loop ~trips:2 in
        (match Sched.Sim.run ~latency:Mach.Latency.paper code with
        | Ok _ -> Alcotest.fail "expected a latency violation"
        | Error v -> check Alcotest.bool "mentions ready" true (contains v.Sched.Sim.what "ready")));
    case "stage-counts-partition-instances" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let trips = 40 in
            let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips in
            let pre, steady, post = Sched.Sim.stage_counts code in
            check Alcotest.int "total" (trips * Ir.Loop.size loop) (pre + steady + post);
            (* with trips >> stages the steady state dominates *)
            check Alcotest.bool "steady dominates" true (steady >= pre && steady >= post));
  ]

let suite =
  [
    ("sched.swing", swing_tests);
    ("sched.sim", sim_tests);
    ("sched.pressure", pressure_tests);
    ("partition.ne", ne_tests);
    ("regalloc.cyclic", cyclic_tests);
    ("regalloc.kernel-alloc", kernel_alloc_tests);
  ]
