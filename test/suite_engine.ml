open Testlib

(* Engine: domain pool, content-addressed cache, deterministic merge. *)

let temp_dir () =
  let dir = Filename.temp_file "rbp-engine-test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let pool_tests =
  [
    case "pool-results-in-submission-order" (fun () ->
        let n = 37 in
        let tasks = Array.init n (fun i () -> i * i) in
        List.iter
          (fun jobs ->
            let out = Engine.Pool.run ~jobs tasks in
            Array.iteri
              (fun i r ->
                match r with
                | Ok v -> check Alcotest.int (Printf.sprintf "j%d slot %d" jobs i) (i * i) v
                | Error _ -> Alcotest.fail "unexpected error")
              out)
          [ 1; 2; 4; 16 ]);
    case "pool-survives-raising-job" (fun () ->
        let tasks =
          Array.init 9 (fun i () -> if i = 4 then failwith "boom" else i + 1)
        in
        List.iter
          (fun jobs ->
            let out = Engine.Pool.run ~jobs tasks in
            Array.iteri
              (fun i r ->
                match (i, r) with
                | 4, Error (Failure m) -> check Alcotest.string "message" "boom" m
                | 4, _ -> Alcotest.fail "slot 4 should be the Failure"
                | _, Ok v -> check Alcotest.int "value" (i + 1) v
                | _, Error _ -> Alcotest.fail "healthy job errored")
              out)
          [ 1; 3 ]);
    case "pool-clamps-jobs" (fun () ->
        (* More workers than tasks, zero tasks, oversized -j: all fine. *)
        let out = Engine.Pool.run ~jobs:64 (Array.init 3 (fun i () -> i)) in
        check Alcotest.int "len" 3 (Array.length out);
        let empty = Engine.Pool.run ~jobs:4 [||] in
        check Alcotest.int "empty" 0 (Array.length empty);
        check Alcotest.bool "default jobs positive" true (Engine.Pool.default_jobs () >= 1));
  ]

(* --- cache key ----------------------------------------------------- *)

let gen_parts =
  QCheck2.Gen.(
    list_size (int_range 0 4)
      (pair (string_size ~gen:printable (int_range 0 6))
         (string_size ~gen:printable (int_range 0 6))))

let key_tests =
  [
    qcheck ~count:300 "key-collides-iff-parts-equal"
      QCheck2.Gen.(pair gen_parts gen_parts)
      (fun (a, b) ->
        let ka = Engine.Key.make a and kb = Engine.Key.make b in
        if a = b then ka = kb else ka <> kb);
    case "key-resists-length-shifts" (fun () ->
        (* Adversarial pairs whose naive concatenation would collide:
           the length-prefixed encoding must keep them apart. *)
        let pairs =
          [
            ([ ("a", "bc") ], [ ("ab", "c") ]);
            ([ ("a", "b"); ("c", "d") ], [ ("a", "bcd") ]);
            ([ ("a", "b"); ("c", "d") ], [ ("a", "b:c"); ("", "d") ]);
            ([ ("", "x") ], [ ("x", "") ]);
            ([ ("a", "1:b") ], [ ("a:1", "b") ]);
          ]
        in
        List.iter
          (fun (a, b) ->
            check Alcotest.bool "distinct" true (Engine.Key.make a <> Engine.Key.make b))
          pairs);
    case "key-is-stable-hex" (fun () ->
        let k = Engine.Key.make [ ("loop", "body"); ("machine", "m") ] in
        check Alcotest.int "length" 32 (String.length k);
        check Alcotest.bool "hex" true
          (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k);
        check Alcotest.string "deterministic" k
          (Engine.Key.make [ ("loop", "body"); ("machine", "m") ]));
  ]

(* --- cache store --------------------------------------------------- *)

let cache_tests =
  [
    case "cache-store-find-clear" (fun () ->
        with_cache_dir @@ fun dir ->
        let c = Engine.Cache.open_ ~dir () in
        let key = Engine.Key.make [ ("k", "1") ] in
        check Alcotest.bool "miss before store" true (Engine.Cache.find c ~key = None);
        let v = Obs.Json.Obj [ ("x", Obs.Json.Num 1.5) ] in
        Engine.Cache.store c ~key v;
        (match Engine.Cache.find c ~key with
        | Some got -> check Alcotest.string "round trip" (Obs.Json.to_string v) (Obs.Json.to_string got)
        | None -> Alcotest.fail "stored entry not found");
        let s = Engine.Cache.stat ~dir () in
        check Alcotest.int "one entry" 1 s.Engine.Cache.entries;
        check Alcotest.bool "bytes counted" true (s.Engine.Cache.bytes > 0);
        check Alcotest.int "cleared" 1 (Engine.Cache.clear ~dir ());
        check Alcotest.int "empty after clear" 0 (Engine.Cache.stat ~dir ()).Engine.Cache.entries);
    case "cache-malformed-entry-is-miss" (fun () ->
        with_cache_dir @@ fun dir ->
        let c = Engine.Cache.open_ ~dir () in
        let key = Engine.Key.make [ ("k", "2") ] in
        Engine.Cache.store c ~key (Obs.Json.Num 7.0);
        (* Corrupt the entry on disk; find must degrade to a miss. *)
        let bucket = Filename.concat dir (String.sub key 0 2) in
        let path =
          Filename.concat bucket (String.sub key 2 (String.length key - 2) ^ ".json")
        in
        let oc = open_out path in
        output_string oc "{not json";
        close_out oc;
        check Alcotest.bool "miss" true (Engine.Cache.find c ~key = None));
    case "cache-truncation-degrades-to-miss-and-counts" (fun () ->
        with_cache_dir @@ fun dir ->
        let c = Engine.Cache.open_ ~dir () in
        let key = Engine.Key.make [ ("k", "trunc") ] in
        let payload = Obs.Json.Obj [ ("v", Obs.Json.Str "precious result") ] in
        Engine.Cache.store c ~key payload;
        let bucket = Filename.concat dir (String.sub key 0 2) in
        let path =
          Filename.concat bucket (String.sub key 2 (String.length key - 2) ^ ".json")
        in
        let ic = open_in_bin path in
        let full = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let corrupt_loads = ref 0 in
        (* Every proper prefix of the stored envelope must be a miss:
           truncation can cut JSON structure (parse error) or leave valid
           JSON whose checksum no longer matches — both degrade. *)
        List.iter
          (fun len ->
            let oc = open_out_bin path in
            output_string oc (String.sub full 0 len);
            close_out oc;
            let tr = Obs.Trace.make ~clock:(Obs.Clock.fake ()) () in
            check Alcotest.bool
              (Printf.sprintf "truncated to %d is a miss" len)
              true
              (Engine.Cache.find ~obs:tr c ~key = None);
            corrupt_loads :=
              !corrupt_loads + Obs.Trace.counter_total tr Obs.Counter.Engine_cache_corrupt)
          [ 0; 1; String.length full / 2; String.length full - 2 ];
        check Alcotest.int "every truncated load bumped engine.cache_corrupt" 4
          !corrupt_loads;
        (* Restore the intact envelope: the entry is whole again. *)
        let oc = open_out_bin path in
        output_string oc full;
        close_out oc;
        check Alcotest.bool "intact entry still hits" true
          (Engine.Cache.find c ~key <> None));
    qcheck ~count:200 "cache-bit-flip-is-miss-never-garbage"
      QCheck2.Gen.(pair (string_size ~gen:printable (int_range 0 40)) (pair small_nat small_nat))
      (fun (text, (pos_seed, bit)) ->
        with_cache_dir @@ fun dir ->
        let c = Engine.Cache.open_ ~dir () in
        let key = Engine.Key.make [ ("k", "flip"); ("t", text) ] in
        let payload = Obs.Json.Obj [ ("v", Obs.Json.Str text) ] in
        Engine.Cache.store c ~key payload;
        let bucket = Filename.concat dir (String.sub key 0 2) in
        let path =
          Filename.concat bucket (String.sub key 2 (String.length key - 2) ^ ".json")
        in
        let ic = open_in_bin path in
        let full = Bytes.of_string (really_input_string ic (in_channel_length ic)) in
        close_in ic;
        let pos = pos_seed mod Bytes.length full in
        Bytes.set full pos
          (Char.chr (Char.code (Bytes.get full pos) lxor (1 lsl (bit mod 8))));
        let oc = open_out_bin path in
        output_bytes oc full;
        close_out oc;
        let tr = Obs.Trace.make ~clock:(Obs.Clock.fake ()) () in
        (* The integrity envelope's contract: a damaged entry loads as a
           counted miss or (when the flip lands in insignificant bytes,
           e.g. the trailing newline) as exactly the original payload —
           never as silently different data. *)
        match Engine.Cache.find ~obs:tr c ~key with
        | None -> Obs.Trace.counter_total tr Obs.Counter.Engine_cache_corrupt = 1
        | Some got -> Obs.Json.to_string got = Obs.Json.to_string payload);
    case "cache-absent-dir-is-empty" (fun () ->
        let dir = Filename.concat (Filename.get_temp_dir_name ()) "rbp-no-such-cache" in
        check Alcotest.int "entries" 0 (Engine.Cache.stat ~dir ()).Engine.Cache.entries;
        check Alcotest.int "clear" 0 (Engine.Cache.clear ~dir ()));
  ]

(* --- run: cache hit/miss/invalidation ------------------------------ *)

let int_codec =
  {
    Engine.Run.encode = (fun v -> Obs.Json.Num (float_of_int v));
    decode = Obs.Json.to_int;
  }

let run_tests =
  [
    case "run-map-hit-miss-invalidation" (fun () ->
        with_cache_dir @@ fun dir ->
        let cache = Engine.Cache.open_ ~dir () in
        let executed = ref 0 in
        let js key_salt =
          Array.init 5 (fun i ->
              {
                Engine.Run.key = Some (Engine.Key.make [ ("opt", key_salt); ("i", string_of_int i) ]);
                work = (fun _ -> incr executed; i * 10);
              })
        in
        let outs, s1 = Engine.Run.map ~cache ~codec:int_codec ~jobs:1 (js "a") in
        check Alcotest.int "cold executes all" 5 s1.Engine.Run.executed;
        check Alcotest.int "cold hits" 0 s1.Engine.Run.hits;
        check Alcotest.int "cold stores" 5 s1.Engine.Run.stored;
        Array.iteri (fun i r -> check Alcotest.bool "ok" true (r = Ok (i * 10))) outs;
        let outs2, s2 = Engine.Run.map ~cache ~codec:int_codec ~jobs:1 (js "a") in
        check Alcotest.int "warm executes none" 0 s2.Engine.Run.executed;
        check Alcotest.int "warm hits all" 5 s2.Engine.Run.hits;
        Array.iteri (fun i r -> check Alcotest.bool "ok warm" true (r = Ok (i * 10))) outs2;
        check Alcotest.int "work ran once per job" 5 !executed;
        (* A changed option is a different address: full recomputation. *)
        let _, s3 = Engine.Run.map ~cache ~codec:int_codec ~jobs:1 (js "b") in
        check Alcotest.int "option change misses" 5 s3.Engine.Run.misses;
        check Alcotest.int "option change executes" 5 s3.Engine.Run.executed);
    case "run-map-keyless-never-cached" (fun () ->
        with_cache_dir @@ fun dir ->
        let cache = Engine.Cache.open_ ~dir () in
        let runs = ref 0 in
        let js = [| { Engine.Run.key = None; work = (fun _ -> incr runs; 42) } |] in
        let _ = Engine.Run.map ~cache ~codec:int_codec ~jobs:1 js in
        let _ = Engine.Run.map ~cache ~codec:int_codec ~jobs:1 js in
        check Alcotest.int "ran both times" 2 !runs;
        check Alcotest.int "nothing stored" 0 (Engine.Cache.stat ~dir ()).Engine.Cache.entries);
    case "run-map-merges-obs-deterministically" (fun () ->
        let totals jobs =
          let obs = Obs.Trace.make ~clock:(Obs.Clock.fake ()) () in
          let loops = sample_loops ~n:8 () in
          let js =
            Array.of_list
              (List.map
                 (fun loop ->
                   {
                     Engine.Run.key = None;
                     work =
                       (fun tr ->
                         match Partition.Driver.pipeline ?obs:tr ~machine:m4x4e loop with
                         | Ok r -> r.Partition.Driver.n_copies
                         | Error _ -> -1);
                   })
                 loops)
          in
          let outs, _ = Engine.Run.map ~obs ~jobs js in
          ( Array.map (function Ok v -> v | Error _ -> -2) outs,
            Obs.Trace.counters obs,
            Obs.Trace.event_count obs )
        in
        let r1, c1, e1 = totals 1 and r4, c4, e4 = totals 4 in
        check Alcotest.bool "results equal" true (r1 = r4);
        check Alcotest.bool "counters equal" true (c1 = c4);
        check Alcotest.int "event counts equal" e1 e4);
  ]

(* --- batch: the pipeline glue -------------------------------------- *)

let sample_error =
  Verify.Stage_error.make
    ~attempts:
      [ Verify.Stage_error.attempt ~rung:"retry" ~code:"SCH001"
          Verify.Stage_error.Clustered_schedule "first try" ]
    ~code:"PRT002" ~stage:Verify.Stage_error.Partitioning ~subject:"loop-x" "no bank fits"

let batch_tests =
  [
    case "batch-codec-round-trips-metrics" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        match Partition.Driver.pipeline ~machine:m4x4e loop with
        | Error e -> Alcotest.fail (Verify.Stage_error.to_string e)
        | Ok r -> (
            let outcome = Ok (Core.Metrics.of_result r) in
            match Core.Batch.codec.Engine.Run.decode (Core.Batch.codec.Engine.Run.encode outcome) with
            | Some got -> check Alcotest.bool "equal" true (got = outcome)
            | None -> Alcotest.fail "decode failed"));
    case "batch-codec-round-trips-errors" (fun () ->
        let outcome = Error sample_error in
        match Core.Batch.codec.Engine.Run.decode (Core.Batch.codec.Engine.Run.encode outcome) with
        | Some (Error e) ->
            check Alcotest.string "code" "PRT002" e.Verify.Stage_error.code;
            check Alcotest.string "subject" "loop-x" e.Verify.Stage_error.subject;
            check Alcotest.int "attempts" 1 (List.length e.Verify.Stage_error.attempts);
            check Alcotest.bool "stage" true
              (e.Verify.Stage_error.stage = Verify.Stage_error.Partitioning)
        | _ -> Alcotest.fail "decode failed");
    case "batch-key-none-for-custom-partitioner" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let custom =
          Partition.Driver.Custom (fun machine ddg _ -> Partition.Ne.partition ~machine ddg)
        in
        check Alcotest.bool "custom keyless" true
          (Core.Batch.job_key ~partitioner:custom ~machine:m4x4e loop = None);
        check Alcotest.bool "greedy keyed" true
          (Core.Batch.job_key ~machine:m4x4e loop <> None));
    case "batch-key-separates-inputs" (fun () ->
        let l1 = Workload.Kernels.daxpy ~unroll:1 in
        let l2 = Workload.Kernels.daxpy ~unroll:2 in
        let k ?partitioner ?scheduler ~machine l =
          Option.get (Core.Batch.job_key ?partitioner ?scheduler ~machine l)
        in
        check Alcotest.bool "loop" true (k ~machine:m4x4e l1 <> k ~machine:m4x4e l2);
        check Alcotest.bool "machine" true (k ~machine:m4x4e l1 <> k ~machine:m2x8e l1);
        check Alcotest.bool "copy model" true (k ~machine:m4x4e l1 <> k ~machine:m4x4c l1);
        check Alcotest.bool "scheduler" true
          (k ~machine:m4x4e l1 <> k ~scheduler:Partition.Driver.Swing ~machine:m4x4e l1);
        check Alcotest.bool "partitioner" true
          (k ~machine:m4x4e l1 <> k ~partitioner:Partition.Driver.Uas ~machine:m4x4e l1));
    case "batch-raising-job-is-isolated" (fun () ->
        let loops = sample_loops ~n:4 () in
        let bomb =
          (* Raises on the third loop only; Custom, so also keyless. *)
          let i = ref 0 in
          Partition.Driver.Custom
            (fun machine ddg _ ->
              incr i;
              if !i = 3 then failwith "injected crash";
              Partition.Ne.partition ~machine ddg)
        in
        let r = Core.Batch.run ~partitioner:bomb ~machine:m4x4e loops in
        check Alcotest.int "all outcomes present" 4 (Array.length r.Core.Batch.outcomes);
        let errs =
          Array.to_list r.Core.Batch.outcomes
          |> List.filter_map (fun (_, o) -> match o with Error e -> Some e | Ok _ -> None)
        in
        check Alcotest.int "exactly one error" 1 (List.length errs);
        let e = List.hd errs in
        check Alcotest.string "code" "PIPE001" e.Verify.Stage_error.code;
        check Alcotest.bool "names the exception" true
          (contains e.Verify.Stage_error.message "injected crash"));
  ]

(* --- cross-layer determinism --------------------------------------- *)

let report_json ?jobs ?cache loops =
  let runs = Core.Experiment.run_all ?jobs ?cache ~loops () in
  let ideal_ipc = Core.Experiment.ideal_ipc ~loops () in
  ( Obs.Json.to_string
      (Core.Report.paper_tables_json ~seed:1995 ~loops:(List.length loops) ~ideal_ipc runs),
    List.fold_left (fun acc (r : Core.Experiment.run) -> acc + r.cache_hits) 0 runs )

let determinism_tests =
  [
    slow_case "experiment-json-identical-j1-vs-j4" (fun () ->
        let loops = sample_loops ~n:10 () in
        let j1, _ = report_json ~jobs:1 loops in
        let j4, _ = report_json ~jobs:4 loops in
        check Alcotest.string "byte-identical" j1 j4);
    slow_case "experiment-warm-cache-identical-with-hits" (fun () ->
        with_cache_dir @@ fun dir ->
        let cache = Engine.Cache.open_ ~dir () in
        let loops = sample_loops ~n:8 () in
        let cold, cold_hits = report_json ~jobs:2 ~cache loops in
        let warm, warm_hits = report_json ~jobs:2 ~cache loops in
        check Alcotest.int "cold has no hits" 0 cold_hits;
        check Alcotest.bool "warm has hits" true (warm_hits > 0);
        check Alcotest.string "byte-identical warm" cold warm);
    slow_case "stress-report-identical-j1-vs-j4" (fun () ->
        let s1 = Robust.Stress.run ~jobs:1 ~seed:42 ~trials:24 () in
        let s4 = Robust.Stress.run ~jobs:4 ~seed:42 ~trials:24 () in
        check Alcotest.string "byte-identical" (Robust.Stress.report ~verbose:true s1)
          (Robust.Stress.report ~verbose:true s4));
  ]

let suite =
  [
    ("engine.pool", pool_tests);
    ("engine.key", key_tests);
    ("engine.cache", cache_tests);
    ("engine.run", run_tests);
    ("engine.batch", batch_tests);
    ("engine.determinism", determinism_tests);
  ]
