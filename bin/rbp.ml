(* rbp — register-bank partitioning driver.

   A command-line front end over the whole library: inspect suite loops or
   user-written IR files, software-pipeline them on configurable clustered
   machines, dump RCG/DDG graphs, and run the paper's experiments. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let loop_arg =
  let doc =
    "Loop to operate on: a suite loop name (see $(b,rbp list)) or a path to a textual IR \
     file (see the README for the syntax)."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LOOP" ~doc)

(* lint and analyze sweep the whole suite when no loop is named. *)
let opt_loop_arg =
  let doc =
    "Loop to operate on: a suite loop name (see $(b,rbp list)) or a path to a textual IR \
     file. When omitted, the whole suite is swept."
  in
  Arg.(value & pos 0 (some string) None & info [] ~docv:"LOOP" ~doc)

let clusters_arg =
  let doc = "Number of clusters (register banks); must divide 16." in
  Arg.(value & opt int 4 & info [ "clusters"; "c" ] ~docv:"N" ~doc)

let model_arg =
  let doc = "Copy model: $(b,embedded) or $(b,copy-unit)." in
  let model_conv =
    Arg.enum [ ("embedded", Mach.Machine.Embedded); ("copy-unit", Mach.Machine.Copy_unit) ]
  in
  Arg.(value & opt model_conv Mach.Machine.Embedded & info [ "model"; "m" ] ~docv:"MODEL" ~doc)

let partitioner_arg =
  let doc = "Partitioner: $(b,greedy) (the paper's), $(b,bug) or $(b,uas)." in
  let part_conv =
    Arg.enum
      [ ("greedy", Partition.Driver.Greedy Rcg.Weights.default);
        ("bug", Partition.Driver.Bug); ("uas", Partition.Driver.Uas) ]
  in
  Arg.(
    value
    & opt part_conv (Partition.Driver.Greedy Rcg.Weights.default)
    & info [ "partitioner"; "p" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "Suite generation seed." in
  Arg.(value & opt int 1995 & info [ "seed" ] ~docv:"SEED" ~doc)

let dot_arg =
  let doc = "Emit Graphviz DOT instead of text." in
  Arg.(value & flag & info [ "dot" ] ~doc)

let load_loop ~seed name =
  if Sys.file_exists name then begin
    let ic = open_in name in
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    match Ir.Parse.loop_of_string text with
    | Ok loop -> Ok loop
    | Error e -> Error (Printf.sprintf "%s: %s" name e)
  end
  else
    match Workload.Suite.by_name ~seed name with
    | Some loop -> Ok loop
    | None ->
        Error
          (Printf.sprintf
             "unknown loop %S: not a file and not a suite loop (try `rbp list`)" name)

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("rbp: " ^ e);
      exit 1

let machine_of ~clusters ~model =
  try Ok (Mach.Machine.paper_clustered ~clusters ~copy_model:model)
  with Invalid_argument m -> Error m

(* One --deterministic across trace/explain/report: same flag name, same
   doc string, same clock choice, so byte-stable output means the same
   thing in every subcommand. *)
let deterministic_arg =
  Arg.(
    value & flag
    & info [ "deterministic" ]
        ~doc:
          "Use a fake fixed-step clock instead of wall time and drop host-dependent \
           timing output, making the result byte-stable across runs (for tests and \
           diffing).")

(* The single place wall time is named. Every subcommand — including
   serve and bombard — selects between the fake and the real clock
   through these helpers, so "--deterministic" cannot drift into
   meaning different clocks in different subcommands. *)
let real_clock : unit -> float = Unix.gettimeofday

let clock_of ~deterministic = if deterministic then Obs.Clock.fake () else real_clock

(* Per-shard clock for Engine-pooled sweeps: each domain gets its own
   clock, so fake clocks never race across domains. *)
let job_clock_of ~deterministic _shard = clock_of ~deterministic
let real_job_clock = job_clock_of ~deterministic:false

(* ------------------------------------------------------------------ *)
(* Engine arguments: one -j/--jobs and one cache triple shared by every
   suite-sweeping subcommand, so the flags mean the same thing
   everywhere. -j 1 (the default) is the exact serial path.            *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the work over $(docv) domains (0 = one per core). The default 1 runs \
           the exact serial path; every other value produces byte-identical output.")

let cache_dir_arg =
  Arg.(
    value
    & opt string Engine.Cache.default_dir
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Content-addressed result cache directory (see $(b,rbp cache)).")

let no_cache_arg =
  Arg.(
    value & flag
    & info [ "no-cache" ]
        ~doc:
          "Skip the result cache entirely: neither read nor write cached per-loop \
           outcomes.")

let cache_of ~no_cache ~cache_dir =
  if no_cache then None else Some (Engine.Cache.open_ ~dir:cache_dir ())

let effective_jobs jobs = if jobs <= 0 then Engine.Pool.default_jobs () else jobs

(* One --deadline-ms across pipeline/exact: the same Engine.Cancel token
   the serve daemon uses, polled at stage boundaries (pipeline) and
   every few hundred search nodes (exact), surfacing as PIPE008 /
   budget-exhausted rather than a kill. *)
let deadline_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Give up cooperatively after $(docv) milliseconds of wall time: the pipeline \
           stops at the next stage boundary with a PIPE008 stage error, the exact \
           solver returns its incumbent as budget-exhausted. Off by default.")

let cancel_of_deadline = function
  | None -> Engine.Cancel.never
  | Some ms ->
      Engine.Cancel.make
        ~deadline:(real_clock () +. (float_of_int ms /. 1000.))
        ~clock:real_clock ()

(* ------------------------------------------------------------------ *)
(* Tracing support                                                     *)

let trace_out_arg =
  let doc =
    "Also write the instrumentation trace to $(docv): Chrome trace-event JSON when the \
     file name ends in $(b,.json) (load it in chrome://tracing or Perfetto), JSONL \
     events otherwise."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let export_for_path path obs =
  if Filename.check_suffix path ".json" then Obs.Export.chrome obs else Obs.Export.jsonl obs

(* Run [f] under a fresh real-clock context when [--trace-out] was given.
   The export is written from an [at_exit] hook (guarded against double
   writes), so the trace survives [or_die]-style failures and non-zero
   exits — a failing pipeline leaves exactly the evidence one wants. *)
let with_trace trace_out f =
  match trace_out with
  | None -> f None
  | Some path ->
      let obs = Obs.Trace.make ~clock:real_clock () in
      let written = ref false in
      let finish () =
        if not !written then begin
          written := true;
          write_file path (export_for_path path obs)
        end
      in
      at_exit finish;
      Fun.protect ~finally:finish (fun () -> f (Some obs))

(* ------------------------------------------------------------------ *)
(* list                                                                *)

let list_cmd =
  let run seed verbose =
    let loops = Workload.Suite.loops ~seed () in
    let t =
      Util.Table.create ~title:"Suite loops"
        ~header:
          (if verbose then [ "name"; "ops"; "regs"; "MinII"; "RecMII"; "ideal IPC" ]
           else [ "name"; "ops" ])
    in
    List.iter
      (fun loop ->
        if verbose then begin
          let ddg = Ddg.Graph.of_loop loop in
          let rec_mii = Ddg.Minii.rec_mii ddg in
          let mii = Ddg.Minii.min_ii ~width:16 ddg in
          Util.Table.add_row t
            [
              Ir.Loop.name loop;
              string_of_int (Ir.Loop.size loop);
              string_of_int (Ir.Vreg.Set.cardinal (Ir.Loop.vregs loop));
              string_of_int mii;
              string_of_int rec_mii;
              Util.Table.cell_float ~decimals:2
                (float_of_int (Ir.Loop.size loop) /. float_of_int mii);
            ]
        end
        else
          Util.Table.add_row t [ Ir.Loop.name loop; string_of_int (Ir.Loop.size loop) ])
      loops;
    Util.Table.print t
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Also analyse each loop (slower).")
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the experimental loop suite")
    Term.(const run $ seed_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* show                                                                *)

let show_cmd =
  let run seed name =
    let loop = or_die (load_loop ~seed name) in
    Format.printf "%a@." Ir.Loop.pp loop;
    let ddg = Ddg.Graph.of_loop loop in
    Format.printf "MinII (16-wide) = %d   RecMII = %d   critical path = %d cycles@."
      (Ddg.Minii.min_ii ~width:16 ddg)
      (Ddg.Minii.rec_mii ddg)
      (Ddg.Graph.critical_path_length ddg);
    match Sched.Modulo.ideal ~machine:Mach.Machine.paper_ideal ddg with
    | None -> print_endline "ideal pipeline: FAILED"
    | Some o ->
        Format.printf "@.--- ideal 16-wide kernel ---@.%a@." Sched.Kernel.pp
          o.Sched.Modulo.kernel
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a loop's body, dependence bounds, and ideal kernel")
    Term.(const run $ seed_arg $ loop_arg)

(* ------------------------------------------------------------------ *)
(* pipeline                                                            *)

let scheduler_arg =
  let doc = "Modulo scheduler: $(b,rau) (the paper's) or $(b,swing) (lifetime-sensitive)." in
  let sched_conv =
    Arg.enum [ ("rau", Partition.Driver.Rau); ("swing", Partition.Driver.Swing) ]
  in
  Arg.(value & opt sched_conv Partition.Driver.Rau & info [ "scheduler"; "s" ] ~docv:"S" ~doc)

let unroll_arg =
  let doc = "Unroll the loop by $(docv) before the framework runs." in
  Arg.(value & opt int 1 & info [ "unroll"; "u" ] ~docv:"FACTOR" ~doc)

let pipeline_cmd =
  let run seed name clusters model partitioner scheduler unroll trips jobs trace_out
      deadline_ms =
    let loop = or_die (load_loop ~seed name) in
    let loop =
      if unroll <= 1 then loop
      else begin
        let loop', _ = Ir.Unroll.loop ~factor:unroll loop in
        Format.printf "(unrolled %dx: %d ops)@." unroll (Ir.Loop.size loop');
        loop'
      end
    in
    let machine = or_die (machine_of ~clusters ~model) in
    with_trace trace_out @@ fun obs ->
    let r =
      (* One loop is one job, so the pool clamps -j N to the serial
         path — the flag still means the same thing as on the suite
         commands. *)
      let cancel = Engine.Cancel.guard (cancel_of_deadline deadline_ms) in
      let task () =
        Partition.Driver.pipeline ?obs ~cancel ~partitioner ~scheduler ~machine loop
      in
      let out =
        match (Engine.Pool.run ~jobs:(effective_jobs jobs) [| task |]).(0) with
        | Ok out -> out
        | Error exn -> raise exn
      in
      or_die (Result.map_error Verify.Stage_error.to_string out)
    in
    Format.printf "=== %a ===@." Mach.Machine.pp machine;
    Format.printf "@.--- ideal kernel (II=%d) ---@.%a@." r.Partition.Driver.ideal.Sched.Modulo.ii
      Sched.Kernel.pp r.Partition.Driver.ideal.Sched.Modulo.kernel;
    Format.printf "--- bank assignment ---@.%a@." Partition.Assign.pp r.Partition.Driver.assignment;
    Format.printf "--- rewritten body (%d copies) ---@.%a@." r.Partition.Driver.n_copies
      Ir.Loop.pp r.Partition.Driver.rewritten;
    Format.printf "--- clustered kernel (II=%d) ---@.%a@."
      r.Partition.Driver.clustered.Sched.Modulo.ii Sched.Kernel.pp
      r.Partition.Driver.clustered.Sched.Modulo.kernel;
    Format.printf "degradation %.0f (100 = ideal), IPC %.2f -> %.2f@." r.Partition.Driver.degradation
      r.Partition.Driver.ipc_ideal r.Partition.Driver.ipc_clustered;
    if trips > 0 then begin
      let code =
        Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
          ~loop:r.Partition.Driver.rewritten ~trips
      in
      Format.printf "@.--- expanded pipeline (%d trips, %d cycles, speedup %.2fx) ---@." trips
        code.Sched.Expand.total_cycles
        (Sched.Expand.speedup code ~latency:machine.Mach.Machine.latency
           ~loop:r.Partition.Driver.rewritten);
      List.iter
        (fun (x : Sched.Expand.instance) ->
          Format.printf "  %4d: it%-2d %s@." x.cycle x.iteration (Ir.Op.to_string x.op))
        code.Sched.Expand.instances
    end
  in
  let trips =
    Arg.(
      value & opt int 0
      & info [ "expand" ] ~docv:"TRIPS"
          ~doc:"Also print the fully expanded pipeline for $(docv) iterations.")
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Run the full partition + software-pipelining framework on one loop")
    Term.(
      const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg $ partitioner_arg
      $ scheduler_arg $ unroll_arg $ trips $ jobs_arg $ trace_out_arg $ deadline_ms_arg)

(* ------------------------------------------------------------------ *)
(* trace                                                               *)

let trace_cmd =
  let run seed name clusters model partitioner scheduler format out deterministic =
    let loop = or_die (load_loop ~seed name) in
    let machine = or_die (machine_of ~clusters ~model) in
    let obs = Obs.Trace.make ~clock:(clock_of ~deterministic) () in
    let result = Partition.Driver.pipeline ~obs ~partitioner ~scheduler ~machine loop in
    (* Export before reporting failure: a failing pipeline's trace shows
       which stage died and what it had counted up to that point. *)
    let text =
      match format with
      | `Tree -> Obs.Export.tree obs
      | `Jsonl -> Obs.Export.jsonl obs
      | `Chrome -> Obs.Export.chrome obs
    in
    (match out with
    | None -> print_string text
    | Some path ->
        write_file path text;
        Printf.printf "wrote %s\n" path);
    match result with
    | Ok _ -> ()
    | Error e ->
        prerr_endline ("rbp: pipeline failed: " ^ Verify.Stage_error.to_string e);
        exit 1
  in
  let format =
    let fmt_conv = Arg.enum [ ("tree", `Tree); ("jsonl", `Jsonl); ("chrome", `Chrome) ] in
    Arg.(
      value & opt fmt_conv `Tree
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:
            "Export format: $(b,tree) (human-readable span tree with counters), \
             $(b,jsonl) (one JSON event per line) or $(b,chrome) (Chrome trace-event \
             JSON for chrome://tracing / Perfetto).")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the trace to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run the full framework on one loop under instrumentation and export the span \
          tree, stage counters and gauges. The trace is exported even when the pipeline \
          fails (exit 1), showing which stage died")
    Term.(
      const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg $ partitioner_arg
      $ scheduler_arg $ format $ out $ deterministic_arg)

(* ------------------------------------------------------------------ *)
(* explain                                                             *)

let explain_cmd =
  let run seed name clusters model partitioner scheduler dot rtable _deterministic =
    let loop = or_die (load_loop ~seed name) in
    let machine = or_die (machine_of ~clusters ~model) in
    let e = or_die (Core.Explain.run ~partitioner ~scheduler ~machine loop) in
    if dot then print_string (Core.Explain.dot e)
    else if rtable then print_string (Core.Explain.reservation_table e)
    else begin
      print_string (Core.Explain.narrative e);
      print_newline ();
      print_string (Core.Explain.reservation_table e)
    end
  in
  let rtable =
    Arg.(
      value & flag
      & info [ "rtable" ]
          ~doc:"Print only the ASCII modulo reservation table of the clustered kernel.")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Print only the RCG as Graphviz DOT with nodes colored by their final bank.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Narrate the framework's decisions on one loop from its provenance events: RCG \
          weight contributions, greedy bank placement (benefit vectors, tie-breaks, \
          balance penalty), every cross-bank copy's route, and the modulo scheduler's II \
          escalations and evictions. Always runs under a deterministic clock, so the \
          output is byte-stable")
    Term.(
      const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg $ partitioner_arg
      $ scheduler_arg $ dot $ rtable $ deterministic_arg)

(* ------------------------------------------------------------------ *)
(* report                                                              *)

(* Bridge the solver's per-geometry aggregate into core's plain Table-3
   record (core deliberately has no dependency on lib/exact). *)
let gap_row_of_geometry (g : Exact.Gap.geometry) =
  let r = Exact.Gap.row_of g in
  {
    Core.Report.gap_label = r.Exact.Gap.label;
    gap_loops = r.Exact.Gap.loops;
    gap_optimal = r.Exact.Gap.optimal;
    gap_bound = r.Exact.Gap.bound;
    gap_exhausted = r.Exact.Gap.exhausted;
    gap_greedy_optimal = r.Exact.Gap.greedy_optimal;
    gap_mean_greedy_ii = r.Exact.Gap.mean_greedy_ii;
    gap_mean_exact_ii = r.Exact.Gap.mean_exact_ii;
    gap_mean_greedy_copies = r.Exact.Gap.mean_greedy_copies;
    gap_mean_exact_copies = r.Exact.Gap.mean_exact_copies;
  }

let report_cmd =
  let run seed n format check out jobs cache_dir no_cache deterministic =
    let loops = Workload.Suite.loops ~seed ~n () in
    let obs = Obs.Trace.make ~clock:(clock_of ~deterministic) () in
    let cache = cache_of ~no_cache ~cache_dir in
    let t0 = real_clock () in
    let runs =
      Core.Experiment.run_all ~obs ~jobs ?cache ~job_clock:(job_clock_of ~deterministic)
        ~loops ()
    in
    let wall_s = real_clock () -. t0 in
    let cache_hits =
      List.fold_left (fun acc (r : Core.Experiment.run) -> acc + r.cache_hits) 0 runs
    in
    let ideal_ipc = Core.Experiment.ideal_ipc ~loops () in
    (* Table 3 (greedy vs. provably optimal) re-solves the exact slice, so
       it is computed once, lazily — md/text/check need it, json keeps the
       original rbp-bench/1 shape for baseline compatibility. *)
    let gap =
      lazy
        (List.map gap_row_of_geometry
           (Exact.Gap.run ~jobs:(effective_jobs jobs) ~seed ~n ()))
    in
    let text =
      match format with
      | `Md -> Core.Report.paper_tables_md ~gap:(Lazy.force gap) ~ideal_ipc runs
      | `Text ->
          let b = Buffer.create 1024 in
          Buffer.add_string b (Util.Table.render (Core.Report.table1 ~ideal_ipc runs));
          Buffer.add_char b '\n';
          Buffer.add_string b (Util.Table.render (Core.Report.table2 runs));
          Buffer.add_char b '\n';
          Buffer.add_string b (Util.Table.render (Core.Report.table3 (Lazy.force gap)));
          Buffer.add_string b "failures:\n";
          Buffer.add_string b (Core.Report.failures_summary runs);
          Buffer.contents b
      | `Json ->
          let doc = Core.Report.paper_tables_json ~seed ~loops:n ~ideal_ipc runs in
          let doc =
            (* Wall times and engine telemetry are the non-deterministic
               parts; attach them only when the caller did not ask for
               byte-stable output. *)
            if deterministic then doc
            else
              match doc with
              | Obs.Json.Obj fields ->
                  Obs.Json.Obj
                    (fields
                    @ [
                        ( "stages",
                          Obs.Json.List
                            (List.map
                               (fun (name, total, calls) ->
                                 Obs.Json.Obj
                                   [
                                     ("name", Obs.Json.Str name);
                                     ("total_s", Obs.Json.Num total);
                                     ("calls", Obs.Json.Num (float_of_int calls));
                                   ])
                               (Obs.Trace.totals_by_name obs)) );
                        ("jobs", Obs.Json.Num (float_of_int (effective_jobs jobs)));
                        ("cache_hits", Obs.Json.Num (float_of_int cache_hits));
                        ("wall_s", Obs.Json.Num wall_s);
                      ])
              | other -> other
          in
          Obs.Json.to_string doc ^ "\n"
    in
    (match out with
    | None -> print_string text
    | Some path ->
        write_file path text;
        Printf.printf "wrote %s\n" path);
    match check with
    | None -> ()
    | Some path -> (
        let ic = open_in path in
        let doc = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Core.Report.check_tables_in ~gap:(Lazy.force gap) ~ideal_ipc runs doc with
        | Ok () -> Printf.printf "%s: tables are up to date\n" path
        | Error missing ->
            Printf.eprintf "rbp: %s is stale: %s differ(s) from this run (regenerate with \
                            `make report`)\n"
              path missing;
            exit 1)
  in
  let n =
    Arg.(
      value
      & opt int Workload.Suite.size
      & info [ "loops"; "n" ] ~docv:"N" ~doc:"Number of suite loops to pipeline.")
  in
  let format =
    let fmt_conv = Arg.enum [ ("md", `Md); ("text", `Text); ("json", `Json) ] in
    Arg.(
      value & opt fmt_conv `Md
      & info [ "format"; "f" ] ~docv:"FMT"
          ~doc:
            "Output format: $(b,md) (the EXPERIMENTS.md Table 1/2 sections, \
             byte-identical), $(b,text) (aligned terminal tables) or $(b,json) (the \
             rbp-bench/1 aggregate schema, consumable by $(b,rbp perfdiff)).")
  in
  let check =
    Arg.(
      value & opt (some string) None
      & info [ "check" ] ~docv:"FILE"
          ~doc:
            "After printing, verify that every regenerated table block appears verbatim \
             in $(docv) (normally EXPERIMENTS.md); exit 1 if any is stale.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run the paper's experiment suite and render Tables 1-3 as markdown (the exact \
          EXPERIMENTS.md sections, Table 3 being the greedy-vs-optimal gap study), \
          terminal tables, or rbp-bench/1 JSON. With $(b,--check) also verify a \
          document still contains the regenerated tables")
    Term.(
      const run $ seed_arg $ n $ format $ check $ out $ jobs_arg $ cache_dir_arg
      $ no_cache_arg $ deterministic_arg)

(* ------------------------------------------------------------------ *)
(* exact                                                               *)

let exact_cmd =
  let budget_arg =
    Arg.(
      value
      & opt int Exact.Solve.default_budget
      & info [ "budget" ] ~docv:"NODES"
          ~doc:
            "Branch-and-bound node budget per loop. Node counts are deterministic, so \
             the same budget gives byte-identical results on every host and $(b,-j) \
             level (unlike $(b,--deadline-ms), which is wall-clock).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"In slice mode, also print every per-loop solve, one table per geometry.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "In slice mode, also write the gap aggregates as an rbp-bench/1 document \
             with an $(b,exact) section (consumable by $(b,rbp perfdiff), gated in CI \
             against bench/baseline/BENCH_exact.json).")
  in
  let n_arg =
    Arg.(
      value
      & opt int Workload.Suite.size
      & info [ "loops"; "n" ] ~docv:"N"
          ~doc:"Consider the first $(docv) suite loops when slicing.")
  in
  let print_status (s : Exact.Solve.t) =
    (match s.Exact.Solve.status with
    | Exact.Solve.Optimal w ->
        Printf.printf "exact   II %d, %d copies - proven optimal (search complete, verified)\n"
          w.Exact.Witness.ii w.Exact.Witness.copies
    | Exact.Solve.Bound { lower; best } -> (
        Printf.printf "exact   proven lower bound II >= %d (search complete)\n" lower;
        match best with
        | Some w ->
            Printf.printf "        best realized: II %d, %d copies\n" w.Exact.Witness.ii
              w.Exact.Witness.copies
        | None -> Printf.printf "        no witness schedule realized\n")
    | Exact.Solve.Budget_exhausted { lower; best } -> (
        Printf.printf "exact   budget exhausted; static lower bound II >= %d\n" lower;
        match best with
        | Some w ->
            Printf.printf "        incumbent: II %d, %d copies (not proven optimal)\n"
              w.Exact.Witness.ii w.Exact.Witness.copies
        | None -> Printf.printf "        no incumbent realized\n"));
    Printf.printf "search  %d nodes, %d leaves, %d pruned, %d backjumps\n"
      s.Exact.Solve.stats.Exact.Search.nodes s.Exact.Solve.stats.Exact.Search.leaves
      s.Exact.Solve.stats.Exact.Search.pruned s.Exact.Solve.stats.Exact.Search.backjumps;
    Printf.printf "verify  %s\n" (Verify.Diag.summary s.Exact.Solve.diags);
    List.iter
      (fun d -> Printf.printf "  %s\n" (Verify.Diag.to_string d))
      (Verify.Diag.errors s.Exact.Solve.diags);
    if Verify.Diag.has_errors s.Exact.Solve.diags then exit 1
  in
  let json_of ~seed ~n ~budget geos =
    let int_num x = Obs.Json.Num (float_of_int x) in
    let geo (g : Exact.Gap.geometry) =
      let r = Exact.Gap.row_of g in
      let pct =
        if r.Exact.Gap.loops = 0 then 0.0
        else 100.0 *. float_of_int r.Exact.Gap.greedy_optimal /. float_of_int r.Exact.Gap.loops
      in
      Obs.Json.Obj
        [
          ("label", Obs.Json.Str r.Exact.Gap.label);
          ("loops", int_num r.Exact.Gap.loops);
          ("optimal", int_num r.Exact.Gap.optimal);
          ("bound", int_num r.Exact.Gap.bound);
          ("exhausted", int_num r.Exact.Gap.exhausted);
          ("greedy_optimal", int_num r.Exact.Gap.greedy_optimal);
          ("greedy_optimal_pct", Obs.Json.Num pct);
          ("mean_greedy_ii", Obs.Json.Num r.Exact.Gap.mean_greedy_ii);
          ("mean_exact_ii", Obs.Json.Num r.Exact.Gap.mean_exact_ii);
          ("mean_greedy_copies", Obs.Json.Num r.Exact.Gap.mean_greedy_copies);
          ("mean_exact_copies", Obs.Json.Num r.Exact.Gap.mean_exact_copies);
        ]
    in
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "rbp-bench/1");
        ("seed", int_num seed);
        ("loops", int_num n);
        (* No per-config IPC sweep happens here; the field is structural
           (required by the schema) and never gated at 0. *)
        ("ideal_ipc", Obs.Json.Num 0.0);
        ("configs", Obs.Json.List []);
        ( "exact",
          Obs.Json.Obj
            [
              ("budget", int_num budget);
              ("max_vregs", int_num Exact.Solve.slice_max_vregs);
              ("geometries", Obs.Json.List (List.map geo geos));
            ] );
      ]
  in
  let run seed name clusters model budget deadline_ms n jobs verbose json_out =
    let cancel = cancel_of_deadline deadline_ms in
    match name with
    | Some name ->
        (* Single-loop mode: solve one loop on one machine, show the claim
           and its verification. *)
        let loop = or_die (load_loop ~seed name) in
        let machine = or_die (machine_of ~clusters ~model) in
        let e = Exact.Gap.one ~budget ~cancel ~machine loop in
        let s = e.Exact.Gap.solve in
        Printf.printf "=== %s on %s ===\n" e.Exact.Gap.loop_name
          machine.Mach.Machine.name;
        Printf.printf "registers %d (slice limit %d), remat candidates %d\n"
          s.Exact.Solve.n_regs Exact.Solve.slice_max_vregs s.Exact.Solve.remat;
        if e.Exact.Gap.greedy_ii > 0 then
          Printf.printf "greedy  II %d, %d copies\n" e.Exact.Gap.greedy_ii
            e.Exact.Gap.greedy_copies
        else Printf.printf "greedy  failed to pipeline\n";
        print_status s
    | None ->
        (* Slice mode: the gap study over every tractable suite loop and
           the paper's three geometries. *)
        let geos = Exact.Gap.run ~budget ~cancel ~jobs:(effective_jobs jobs) ~seed ~n () in
        let slice_n =
          match geos with g :: _ -> List.length g.Exact.Gap.entries | [] -> 0
        in
        Printf.printf "exact slice: %d of %d suite loops (<= %d registers), budget %d nodes\n"
          slice_n n Exact.Solve.slice_max_vregs budget;
        print_newline ();
        if verbose then
          List.iter
            (fun (g : Exact.Gap.geometry) ->
              let t =
                Util.Table.create
                  ~title:(Printf.sprintf "exact slice on %s" g.Exact.Gap.label)
                  ~header:
                    [
                      "loop"; "regs"; "greedy II"; "greedy cp"; "status"; "best II";
                      "best cp"; "lower"; "nodes";
                    ]
              in
              List.iter
                (fun (e : Exact.Gap.entry) ->
                  let s = e.Exact.Gap.solve in
                  let best_ii, best_cp =
                    match Exact.Solve.witness s with
                    | Some w ->
                        ( string_of_int w.Exact.Witness.ii,
                          string_of_int w.Exact.Witness.copies )
                    | None -> ("-", "-")
                  in
                  Util.Table.add_row t
                    [
                      e.Exact.Gap.loop_name;
                      string_of_int e.Exact.Gap.n_regs;
                      (if e.Exact.Gap.greedy_ii > 0 then string_of_int e.Exact.Gap.greedy_ii
                       else "-");
                      (if e.Exact.Gap.greedy_ii > 0 then
                         string_of_int e.Exact.Gap.greedy_copies
                       else "-");
                      Exact.Solve.status_name s.Exact.Solve.status;
                      best_ii;
                      best_cp;
                      string_of_int (Exact.Solve.lower s);
                      string_of_int s.Exact.Solve.stats.Exact.Search.nodes;
                    ])
                g.Exact.Gap.entries;
              print_string (Util.Table.render t);
              print_newline ())
            geos;
        print_string
          (Util.Table.render (Core.Report.table3 (List.map gap_row_of_geometry geos)));
        match json_out with
        | None -> ()
        | Some path ->
            write_file path (Obs.Json.to_string (json_of ~seed ~n ~budget geos) ^ "\n");
            Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "exact"
       ~doc:
         "Prove optimal II and bank assignment by branch-and-bound. With a $(i,LOOP): \
          solve that loop on one machine and print the (verified) claim. Without: run \
          the greedy-vs-optimal gap study over every suite loop small enough for \
          exhaustive search, on the paper's three geometries (Table 3 of $(b,rbp \
          report))")
    Term.(
      const run $ seed_arg $ opt_loop_arg $ clusters_arg $ model_arg $ budget_arg
      $ deadline_ms_arg $ n_arg $ jobs_arg $ verbose_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* perfdiff                                                            *)

let perfdiff_cmd =
  let run old_path new_path ipc_rel_drop degradation_rise pct_drop p50_rise p95_rise
      p99_rise latency_floor_ms quiet =
    let read path =
      match open_in path with
      | exception Sys_error e ->
          prerr_endline ("rbp: " ^ e);
          exit 2
      | ic ->
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          s
    in
    let parse path text =
      match Core.Perfdiff.parse text with
      | Ok doc -> doc
      | Error e ->
          Printf.eprintf "rbp: %s: %s\n" path e;
          exit 2
    in
    let baseline = parse old_path (read old_path) in
    let current = parse new_path (read new_path) in
    let thresholds =
      {
        Core.Perfdiff.ipc_rel_drop;
        degradation_rise;
        pct_drop;
        latency_rel_rise = [ (0.50, p50_rise); (0.95, p95_rise); (0.99, p99_rise) ];
        latency_floor_ms;
      }
    in
    match Core.Perfdiff.diff ~thresholds ~baseline ~current () with
    | Error e ->
        Printf.eprintf "rbp: %s\n" e;
        exit 2
    | Ok findings ->
        let regressed = Core.Perfdiff.regressions findings in
        if quiet then
          print_string (Core.Perfdiff.render regressed)
        else print_string (Core.Perfdiff.render findings);
        (* Informational only: engine telemetry (jobs level, wall-time
           speedup, cache hits) never affects the exit code. *)
        (match Core.Perfdiff.engine_note ~baseline ~current with
        | Some note -> print_endline note
        | None -> ());
        if regressed <> [] then exit 1
  in
  let old_path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OLD.json"
           ~doc:"Baseline rbp-bench/1 document.")
  in
  let new_path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"NEW.json"
           ~doc:"Candidate rbp-bench/1 document.")
  in
  let ipc_rel_drop =
    Arg.(
      value & opt float Core.Perfdiff.default_thresholds.Core.Perfdiff.ipc_rel_drop
      & info [ "ipc-drop" ] ~docv:"FRAC"
          ~doc:"Max tolerated relative drop of an IPC metric (default 0.02 = 2%).")
  in
  let degradation_rise =
    Arg.(
      value & opt float Core.Perfdiff.default_thresholds.Core.Perfdiff.degradation_rise
      & info [ "degradation-rise" ] ~docv:"PTS"
          ~doc:"Max tolerated absolute rise of a degradation mean, in points.")
  in
  let pct_drop =
    Arg.(
      value & opt float Core.Perfdiff.default_thresholds.Core.Perfdiff.pct_drop
      & info [ "pct-drop" ] ~docv:"PTS"
          ~doc:"Max tolerated absolute drop of the no-degradation share, in points.")
  in
  let latency_rise_default q =
    match
      List.assoc_opt q
        Core.Perfdiff.default_thresholds.Core.Perfdiff.latency_rel_rise
    with
    | Some v -> v
    | None -> infinity
  in
  let p50_rise =
    Arg.(
      value & opt float (latency_rise_default 0.50)
      & info [ "p50-rise" ] ~docv:"FRAC"
          ~doc:"Max tolerated relative rise of serve latency p50 (default 2.0 = 3x).")
  in
  let p95_rise =
    Arg.(
      value & opt float (latency_rise_default 0.95)
      & info [ "p95-rise" ] ~docv:"FRAC"
          ~doc:"Max tolerated relative rise of serve latency p95 (default 3.0 = 4x).")
  in
  let p99_rise =
    Arg.(
      value & opt float (latency_rise_default 0.99)
      & info [ "p99-rise" ] ~docv:"FRAC"
          ~doc:
            "Max tolerated relative rise of serve latency p99 — the tail gate (default \
             4.0 = 5x). Also applied to the degraded series' p99.")
  in
  let latency_floor_ms =
    Arg.(
      value
      & opt float Core.Perfdiff.default_thresholds.Core.Perfdiff.latency_floor_ms
      & info [ "latency-floor" ] ~docv:"MS"
          ~doc:
            "Absolute latency slack: a quantile rise below $(docv) milliseconds is \
             never a regression.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Print only regressed metrics (and the summary line).")
  in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Compare two rbp-bench/1 telemetry documents (BENCH_*.json) metric by metric \
          with regression thresholds. Host-dependent stage wall times are ignored, so a \
          checked-in baseline gates CI deterministically; serve latency quantiles (from \
          $(b,rbp bombard --json)) are gated with loose per-quantile rises when both \
          documents carry them. Exit codes: 0 no regression; 1 regression; 2 \
          parse/schema error or incomparable runs (different seed, loop count or config \
          set)")
    Term.(
      const run $ old_path $ new_path $ ipc_rel_drop $ degradation_rise $ pct_drop
      $ p50_rise $ p95_rise $ p99_rise $ latency_floor_ms $ quiet)

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)

let schedule_cmd =
  let run seed name clusters model scheduler verbose =
    let loop = or_die (load_loop ~seed name) in
    let machine = or_die (machine_of ~clusters ~model) in
    let ddg = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency loop in
    let outcome =
      match scheduler with
      | Partition.Driver.Rau -> Sched.Modulo.ideal ~machine ddg
      | Partition.Driver.Swing -> Sched.Swing.ideal ~machine ddg
    in
    match outcome with
    | None ->
        prerr_endline "rbp: no feasible II found";
        exit 1
    | Some o ->
        Format.printf "%s: II=%d (MII %d)@." (Ir.Loop.name loop) o.Sched.Modulo.ii
          o.Sched.Modulo.mii;
        if verbose then
          Format.printf
            "effort: %d placement(s), %d eviction(s), %d II(s) tried, %d budget \
             exhaustion(s)@."
            o.Sched.Modulo.placements_tried o.Sched.Modulo.evictions o.Sched.Modulo.iis_tried
            o.Sched.Modulo.budget_exhausted;
        Format.printf "%a@." Sched.Kernel.pp o.Sched.Modulo.kernel
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:
            "Also print the scheduler's effort statistics: placements tried, evictions, \
             IIs tried and budget exhaustions.")
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:
         "Modulo-schedule one loop on the (monolithic view of the) chosen machine and \
          print the kernel, with per-run scheduler effort statistics under \
          $(b,--verbose)")
    Term.(const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg $ scheduler_arg $ verbose)

(* ------------------------------------------------------------------ *)
(* rcg / ddg                                                           *)

let rcg_cmd =
  let run seed name clusters dot =
    let loop = or_die (load_loop ~seed name) in
    let g = Rcg.Build.of_loop ~machine:Mach.Machine.paper_ideal loop in
    if dot then begin
      let a = Partition.Greedy.partition ~banks:clusters g in
      print_string (Rcg.Graph.to_dot ~assignment:(fun r -> Partition.Assign.bank_opt a r) g)
    end
    else begin
      Format.printf "%a@." Rcg.Graph.pp g;
      Format.printf "components: %d@." (List.length (Rcg.Graph.components g))
    end
  in
  Cmd.v
    (Cmd.info "rcg" ~doc:"Build and print a loop's register component graph")
    Term.(const run $ seed_arg $ loop_arg $ clusters_arg $ dot_arg)

let ddg_cmd =
  let run seed name dot =
    let loop = or_die (load_loop ~seed name) in
    let ddg = Ddg.Graph.of_loop loop in
    if dot then print_string (Ddg.Graph.to_dot ddg)
    else Format.printf "%a@." Ddg.Graph.pp ddg
  in
  Cmd.v
    (Cmd.info "ddg" ~doc:"Build and print a loop's data dependence graph")
    Term.(const run $ seed_arg $ loop_arg $ dot_arg)

(* ------------------------------------------------------------------ *)
(* alloc                                                               *)

let alloc_cmd =
  let run seed name clusters model regs =
    let loop = or_die (load_loop ~seed name) in
    let machine0 = or_die (machine_of ~clusters ~model) in
    let machine =
      Mach.Machine.make ~regs_per_bank:regs ~clusters
        ~fus_per_cluster:machine0.Mach.Machine.fus_per_cluster ~copy_model:model ()
    in
    let r =
      or_die (Result.map_error Verify.Stage_error.to_string (Partition.Driver.pipeline ~machine loop))
    in
    match
      Regalloc.Alloc.allocate_loop ~machine ~assignment:r.Partition.Driver.assignment
        r.Partition.Driver.rewritten
    with
    | Error e -> or_die (Error (Verify.Stage_error.to_string e))
    | Ok alloc ->
        Format.printf "allocated in %d round(s), %d spills@." alloc.Regalloc.Alloc.rounds
          alloc.Regalloc.Alloc.spill_count;
        Array.iteri
          (fun b p -> Format.printf "bank %d: pressure %d / %d registers@." b p regs)
          alloc.Regalloc.Alloc.pressure;
        Ir.Vreg.Map.iter
          (fun reg (bank, idx) ->
            Format.printf "  %-12s -> bank %d, reg %d@." (Ir.Vreg.to_string reg) bank idx)
          alloc.Regalloc.Alloc.mapping
  in
  let regs =
    Arg.(
      value & opt int 32
      & info [ "regs" ] ~docv:"K" ~doc:"Architectural registers per bank.")
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:"Partition, pipeline and Chaitin/Briggs-allocate one loop, reporting pressure")
    Term.(const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg $ regs)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)

let experiment_cmd =
  let run seed n jobs cache_dir no_cache trace_out =
    let loops = Workload.Suite.loops ~seed ~n () in
    with_trace trace_out @@ fun obs ->
    let cache = cache_of ~no_cache ~cache_dir in
    let runs =
      Core.Experiment.run_all ?obs ~jobs ?cache ~job_clock:real_job_clock ~loops ()
    in
    let ipc = Core.Experiment.ideal_ipc ~loops () in
    Util.Table.print (Core.Report.table1 ~ideal_ipc:ipc runs);
    print_newline ();
    Util.Table.print (Core.Report.table2 runs);
    print_newline ();
    List.iter
      (fun clusters ->
        let e =
          List.find
            (fun (r : Core.Experiment.run) ->
              r.config.clusters = clusters && r.config.copy_model = Mach.Machine.Embedded)
            runs
        and c =
          List.find
            (fun (r : Core.Experiment.run) ->
              r.config.clusters = clusters && r.config.copy_model = Mach.Machine.Copy_unit)
            runs
        in
        Util.Table.print
          (Core.Report.figure_histogram e c
             ~title:(Printf.sprintf "Degradation histogram, %d clusters" clusters));
        print_newline ())
      [ 2; 4; 8 ];
    print_string "failures:\n";
    print_string (Core.Report.failures_summary runs)
  in
  let n =
    Arg.(
      value
      & opt int Workload.Suite.size
      & info [ "loops"; "n" ] ~docv:"N" ~doc:"Number of suite loops to pipeline.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce the paper's tables and figures")
    Term.(
      const run $ seed_arg $ n $ jobs_arg $ cache_dir_arg $ no_cache_arg $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)

let compare_cmd =
  let run seed name clusters model =
    let loop = or_die (load_loop ~seed name) in
    let machine = or_die (machine_of ~clusters ~model) in
    let t =
      Util.Table.create
        ~title:(Printf.sprintf "Partitioners on %s, %s" (Ir.Loop.name loop)
                  machine.Mach.Machine.name)
        ~header:[ "partitioner"; "ideal II"; "II"; "degradation"; "copies"; "IPC" ]
    in
    let entry label partitioner =
      match Partition.Driver.pipeline ~partitioner ~machine loop with
      | Error e ->
          Util.Table.add_row t [ label; "-"; "-"; "FAILED: " ^ Verify.Stage_error.to_string e ]
      | Ok r ->
          Util.Table.add_row t
            [
              label;
              string_of_int r.Partition.Driver.ideal.Sched.Modulo.ii;
              string_of_int r.Partition.Driver.clustered.Sched.Modulo.ii;
              Util.Table.cell_float ~decimals:0 r.Partition.Driver.degradation;
              string_of_int r.Partition.Driver.n_copies;
              Util.Table.cell_float ~decimals:2 r.Partition.Driver.ipc_clustered;
            ]
    in
    entry "greedy (paper)" (Partition.Driver.Greedy Rcg.Weights.default);
    entry "greedy + refinement" (Partition.Refine.partitioner Rcg.Weights.default);
    entry "BUG" Partition.Driver.Bug;
    entry "UAS" Partition.Driver.Uas;
    entry "NE-style"
      (Partition.Driver.Custom (fun machine ddg _ -> Partition.Ne.partition ~machine ddg));
    Util.Table.print t
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare every partitioner on one loop")
    Term.(const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg)

(* ------------------------------------------------------------------ *)
(* sim                                                                 *)

let sim_cmd =
  let run seed name clusters model trips =
    let loop = or_die (load_loop ~seed name) in
    let machine = or_die (machine_of ~clusters ~model) in
    let r =
      or_die (Result.map_error Verify.Stage_error.to_string (Partition.Driver.pipeline ~machine loop))
    in
    let code =
      Sched.Expand.flatten ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
        ~loop:r.Partition.Driver.rewritten ~trips
    in
    let pre, steady, post = Sched.Sim.stage_counts code in
    Format.printf "expanded %d iterations: %d cycles (%d prelude / %d steady / %d postlude ops)@."
      trips code.Sched.Expand.total_cycles pre steady post;
    match Sched.Sim.run ~latency:machine.Mach.Machine.latency code with
    | Ok _ ->
        Format.printf "cycle-accurate simulation: OK (no latency violations)@.";
        Format.printf "speedup over sequential issue: %.2fx@."
          (Sched.Expand.speedup code ~latency:machine.Mach.Machine.latency
             ~loop:r.Partition.Driver.rewritten)
    | Error v ->
        Format.printf "VIOLATION at cycle %d, %s: %s@." v.Sched.Sim.cycle
          (Ir.Op.to_string v.Sched.Sim.op) v.Sched.Sim.what;
        exit 1
  in
  let trips =
    Arg.(value & opt int 8 & info [ "trips" ] ~docv:"N" ~doc:"Iterations to simulate.")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Cycle-accurately simulate the partitioned software pipeline of one loop")
    Term.(const run $ seed_arg $ loop_arg $ clusters_arg $ model_arg $ trips)

(* ------------------------------------------------------------------ *)
(* csv                                                                 *)

let csv_cmd =
  let run seed n =
    let loops = Workload.Suite.loops ~seed ~n () in
    let runs = Core.Experiment.run_all ~loops () in
    print_string (Core.Report.to_csv runs)
  in
  let n =
    Arg.(
      value
      & opt int Workload.Suite.size
      & info [ "loops"; "n" ] ~docv:"N" ~doc:"Number of suite loops.")
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Dump per-loop experiment results as CSV on stdout")
    Term.(const run $ seed_arg $ n)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

(* Stable order for machine-readable diagnostics: severity first, then
   the (code, stage, loc, message) tuple; exact duplicates collapse.
   Human output keeps pipeline order — it narrates the stages. *)
let sorted_diags diags =
  let sev (d : Verify.Diag.t) =
    match d.Verify.Diag.severity with
    | Verify.Diag.Error -> 0
    | Verify.Diag.Warning -> 1
    | Verify.Diag.Info -> 2
  in
  List.sort_uniq
    (fun (a : Verify.Diag.t) (b : Verify.Diag.t) ->
      let c = compare (sev a) (sev b) in
      if c <> 0 then c
      else
        compare
          (a.Verify.Diag.code, a.Verify.Diag.stage, a.Verify.Diag.loc, a.Verify.Diag.message)
          (b.Verify.Diag.code, b.Verify.Diag.stage, b.Verify.Diag.loc, b.Verify.Diag.message))
    diags

let diag_json (d : Verify.Diag.t) =
  let open Obs.Json in
  Obj
    ([
       ("severity", Str (Verify.Diag.severity_name d.Verify.Diag.severity));
       ("code", Str d.Verify.Diag.code);
       ("stage", Str (Verify.Diag.stage_name d.Verify.Diag.stage));
     ]
    @ (match d.Verify.Diag.loc with None -> [] | Some l -> [ ("loc", Str l) ])
    @ [ ("message", Str d.Verify.Diag.message) ])

let lint_cmd =
  let run seed name n clusters model regs strict jobs json =
    let machine0 = or_die (machine_of ~clusters ~model) in
    let machine =
      Mach.Machine.make ~regs_per_bank:regs ~clusters
        ~fus_per_cluster:machine0.Mach.Machine.fus_per_cluster ~copy_model:model ()
    in
    let lint_loop loop =
      match Partition.Driver.pipeline ~machine loop with
      | Error e ->
          [
            Verify.Diag.error Verify.Diag.Pipe ~code:e.Verify.Stage_error.code
              (Verify.Stage_error.to_string e);
          ]
      | Ok r -> (
          let ddg = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency loop in
          let rewritten = r.Partition.Driver.rewritten in
          let ddg' = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency rewritten in
          let stages =
            {
              (Verify.Pipeline.stages ~machine loop) with
              Verify.Pipeline.ideal = Some (ddg, r.Partition.Driver.ideal.Sched.Modulo.kernel);
              partition = Some (r.Partition.Driver.assignment, rewritten);
              clustered = Some (ddg', r.Partition.Driver.clustered.Sched.Modulo.kernel);
            }
          in
          match
            Regalloc.Alloc.allocate_loop ~machine
              ~assignment:r.Partition.Driver.assignment rewritten
          with
          | Error e ->
              Verify.Pipeline.run stages
              @ [
                  Verify.Diag.error Verify.Diag.Pipe ~code:e.Verify.Stage_error.code
                    (Verify.Stage_error.to_string e);
                ]
          | Ok alloc ->
              let stages =
                {
                  stages with
                  Verify.Pipeline.alloc =
                    Some
                      {
                        Verify.Pipeline.code = alloc.Regalloc.Alloc.code;
                        mapping = alloc.Regalloc.Alloc.mapping;
                        live_out = alloc.Regalloc.Alloc.live_out;
                      };
                }
              in
              Verify.Pipeline.run stages)
    in
    (* Returns whether this loop fails the lint. *)
    let emit ~name diags =
      if json then begin
        let open Obs.Json in
        print_endline
          (to_string
             (Obj
                [
                  ("loop", Str name);
                  ("diags", List (List.map diag_json (sorted_diags diags)));
                  ("summary", Str (Verify.Diag.summary diags));
                ]))
      end
      else begin
        List.iter (fun d -> print_endline (Verify.Diag.to_string d)) diags;
        Printf.printf "lint: %s: %s\n" name (Verify.Diag.summary diags)
      end;
      Verify.Diag.has_errors diags || (strict && diags <> [])
    in
    match name with
    | Some name -> (
        match load_loop ~seed name with
        | Error e ->
            if emit ~name [ Verify.Diag.error Verify.Diag.Ir ~code:"IR000" e ] then exit 1
        | Ok loop -> if emit ~name:(Ir.Loop.name loop) (lint_loop loop) then exit 1)
    | None ->
        let loops = Workload.Suite.loops ~seed ~n () in
        let tasks =
          Array.of_list (List.map (fun loop () -> lint_loop loop) loops)
        in
        let results = Engine.Pool.run ~jobs:(effective_jobs jobs) tasks in
        let failed = ref false in
        List.iteri
          (fun i loop ->
            let diags =
              match results.(i) with
              | Ok diags -> diags
              | Error exn ->
                  [
                    Verify.Diag.error Verify.Diag.Pipe ~code:"PIPE001"
                      (Printf.sprintf "lint crashed: %s" (Printexc.to_string exn));
                  ]
            in
            if emit ~name:(Ir.Loop.name loop) diags then failed := true)
          loops;
        if !failed then exit 1
  in
  let regs =
    Arg.(
      value & opt int 32
      & info [ "regs" ] ~docv:"K" ~doc:"Architectural registers per bank.")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings (and infos) as fatal.")
  in
  let n =
    Arg.(
      value
      & opt int Workload.Suite.size
      & info [ "loops"; "n" ] ~docv:"N"
          ~doc:"Number of suite loops to lint in suite mode.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per loop (JSONL) instead of text; diagnostics are \
             sorted by severity then code and deduplicated.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the full pipeline with independent verification at every stage boundary \
          (IR shape, ideal and clustered modulo-schedule legality, operand bank-locality \
          and copy well-formedness, per-bank register allocation, independent dataflow \
          analysis of the DDGs), printing one-line diagnostics. With no LOOP the whole \
          suite is swept, sharded over $(b,-j) domains with byte-identical output. Exit \
          codes: 0 when no error-severity finding (and, with $(b,--strict), no finding \
          at all); 1 otherwise")
    Term.(
      const run $ seed_arg $ opt_loop_arg $ n $ clusters_arg $ model_arg $ regs $ strict
      $ jobs_arg $ json)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let run seed name n clusters model diff_ddg maxlive json jobs =
    let machine = or_die (machine_of ~clusters ~model) in
    let latency = machine.Mach.Machine.latency in
    let loops =
      match name with
      | Some name -> [ or_die (load_loop ~seed name) ]
      | None -> Workload.Suite.loops ~seed ~n ()
    in
    let analyze_loop loop =
      let lname = Ir.Loop.name loop in
      let summary, report = Analysis.Summary.report ~latency ~name:lname loop in
      let banks =
        if not maxlive then None
        else
          (* Exact per-bank pressure needs a bank assignment: partition
             the loop the way the pipeline would and measure the
             rewritten (copy-carrying) body. *)
          match Partition.Driver.pipeline ~machine loop with
          | Error e -> Some (Error (Verify.Stage_error.to_string e))
          | Ok r ->
              let live = Analysis.Liveness.of_loop r.Partition.Driver.rewritten in
              let assignment = r.Partition.Driver.assignment in
              Some
                (Ok
                   (Analysis.Liveness.per_bank_max_live live
                      ~banks:machine.Mach.Machine.clusters
                      ~bank_of:(fun v ->
                        match Ir.Vreg.Map.find_opt v assignment with
                        | Some b -> b
                        | None -> -1)))
      in
      (summary, report, banks)
    in
    let tasks = Array.of_list (List.map (fun loop () -> analyze_loop loop) loops) in
    let results = Engine.Pool.run ~jobs:(effective_jobs jobs) tasks in
    let errors = ref 0 and warnings = ref 0 and crashed = ref 0 in
    if not json then print_endline Analysis.Summary.header;
    List.iteri
      (fun i loop ->
        let lname = Ir.Loop.name loop in
        match results.(i) with
        | Error exn ->
            incr crashed;
            if json then
              print_endline
                (Obs.Json.to_string
                   (Obs.Json.Obj
                      [
                        ("loop", Obs.Json.Str lname);
                        ("error", Obs.Json.Str (Printexc.to_string exn));
                      ]))
            else Printf.printf "%s: analysis crashed: %s\n" lname (Printexc.to_string exn)
        | Ok (summary, report, banks) ->
            errors := !errors + summary.Analysis.Summary.diff_errors;
            warnings := !warnings + summary.Analysis.Summary.diff_warnings;
            if json then begin
              let base =
                match Analysis.Summary.to_json summary with
                | Obs.Json.Obj fields -> fields
                | j -> [ ("summary", j) ]
              in
              let findings =
                if not diff_ddg then []
                else
                  [
                    ( "findings",
                      Obs.Json.List
                        (List.map
                           (fun f -> diag_json (Verify.Analysis_check.finding_diag f))
                           report.Analysis.Validate.findings) );
                  ]
              in
              let bank_field =
                match banks with
                | None -> []
                | Some (Error e) -> [ ("bank_max_live", Obs.Json.Str e) ]
                | Some (Ok peaks) ->
                    [
                      ( "bank_max_live",
                        Obs.Json.List
                          (Array.to_list
                             (Array.map (fun v -> Obs.Json.Num (float_of_int v)) peaks))
                      );
                    ]
              in
              print_endline
                (Obs.Json.to_string (Obs.Json.Obj (base @ findings @ bank_field)))
            end
            else begin
              print_endline (Analysis.Summary.to_row summary);
              if diff_ddg then
                List.iter
                  (fun f ->
                    print_endline
                      ("  "
                      ^ Verify.Diag.to_string (Verify.Analysis_check.finding_diag f)))
                  report.Analysis.Validate.findings;
              match banks with
              | None -> ()
              | Some (Error e) ->
                  Printf.printf "  maxlive banks: unavailable (%s)\n" e
              | Some (Ok peaks) ->
                  Printf.printf "  maxlive banks[%d]:%s (rewritten body)\n"
                    (Array.length peaks)
                    (String.concat ""
                       (Array.to_list (Array.map (Printf.sprintf " %d") peaks)))
            end)
      loops;
    if not json then
      Printf.printf "analyze: %d loop%s, %d diff error%s, %d diff warning%s\n"
        (List.length loops)
        (if List.length loops = 1 then "" else "s")
        !errors
        (if !errors = 1 then "" else "s")
        !warnings
        (if !warnings = 1 then "" else "s");
    if !errors > 0 || !crashed > 0 then exit 1
  in
  let n =
    Arg.(
      value
      & opt int Workload.Suite.size
      & info [ "loops"; "n" ] ~docv:"N"
          ~doc:"Number of suite loops to analyze in suite mode.")
  in
  let diff_ddg =
    Arg.(
      value & flag
      & info [ "diff-ddg" ]
          ~doc:
            "Print every translation-validation finding (the edge-by-edge diff between \
             the independently derived dependence set and the DDG), not just the \
             per-loop counts.")
  in
  let maxlive =
    Arg.(
      value & flag
      & info [ "maxlive" ]
          ~doc:
            "Also partition each loop and report exact per-bank MaxLive bounds of the \
             rewritten (copy-carrying) body.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON object per loop (JSONL) instead of the table; findings are \
             pre-sorted and deduplicated.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the independent dataflow analyses (cyclic liveness and MaxLive pressure \
          bounds, reaching definitions with iteration distances, value-range / \
          rematerialization, and the dependence analysis) over one loop or the whole \
          suite, translation-validating the DDG edge-by-edge. Suite mode shards over \
          $(b,-j) domains with byte-identical output. Exit 1 when any unsoundness \
          discrepancy (AN001/AN002) or analysis crash is found")
    Term.(
      const run $ seed_arg $ opt_loop_arg $ n $ clusters_arg $ model_arg $ diff_ddg
      $ maxlive $ json $ jobs_arg)

let stress_cmd =
  let run seed trials fault_rate no_fatal verbose jobs trace_out =
    with_trace trace_out @@ fun obs ->
    let s =
      Robust.Stress.run ?obs ~jobs ~job_clock:real_job_clock
        ~include_fatal:(not no_fatal) ~fault_rate ~seed ~trials ()
    in
    print_endline (Robust.Stress.report ~verbose s);
    exit (Robust.Stress.exit_code s)
  in
  let trials =
    Arg.(
      value & opt int 200
      & info [ "trials"; "t" ] ~docv:"K" ~doc:"Number of fault-injected trials.")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.9
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Probability that a trial injects a fault; the remaining trials exercise \
             the clean path.")
  in
  let no_fatal =
    Arg.(
      value & flag
      & info [ "no-fatal" ]
          ~doc:
            "Inject only transient (recoverable) stage corruptions; skip the fatal \
             faults (malformed IR, unallocatably small banks) whose contract is a \
             clean structured failure rather than recovery.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print one line per trial instead of only the non-clean trials.")
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Deterministic fault-injection sweep over the workload suite: each trial draws \
          a loop, a clustered machine and a fault plan from the seed, runs the resilient \
          fallback-ladder driver, and audits the outcome with the independent verifier. \
          Same seed, same trial count: byte-identical report. Exit codes: 0 when every \
          trial produced verified code or failed cleanly with a structured diagnostic; \
          1 when a transient fault went unrecovered; 2 on a violation (an exception \
          escaped the driver, or emitted code failed re-verification)")
    Term.(
      const run $ seed_arg $ trials $ fault_rate $ no_fatal $ verbose $ jobs_arg
      $ trace_out_arg)

(* ------------------------------------------------------------------ *)
(* cache                                                               *)

let cache_cmd =
  let dir_arg =
    Arg.(
      value
      & opt string Engine.Cache.default_dir
      & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Cache directory.")
  in
  let stat_cmd =
    let run dir =
      let s = Engine.Cache.stat ~dir () in
      Printf.printf "%s: %d entries, %d bytes\n" dir s.Engine.Cache.entries
        s.Engine.Cache.bytes
    in
    Cmd.v
      (Cmd.info "stat" ~doc:"Report how many results the cache holds and their size")
      Term.(const run $ dir_arg)
  in
  let clear_cmd =
    let run dir =
      let n = Engine.Cache.clear ~dir () in
      Printf.printf "%s: removed %d entries\n" dir n
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Remove every cached result (the directory is kept)")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Inspect or clear the content-addressed result cache used by $(b,rbp \
          experiment), $(b,rbp report) and the bench harness. Entries are addressed by \
          a digest of the loop body, the machine description and the pipeline options, \
          so stale hits are impossible: changed inputs are a different address")
    [ stat_cmd; clear_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / bombard / call                                              *)

let addr_of_string_arg s = Serve.Wire.addr_of_string s

let addr_pos_arg =
  let doc =
    "Service address: $(b,unix:PATH), $(b,tcp:HOST:PORT), a bare $(b,HOST:PORT), or a \
     bare socket path."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR" ~doc)

let faults_conv =
  let parse s =
    match s with
    | "all" -> Ok Robust.Inject.all_service
    | "none" -> Ok []
    | s ->
        let names = String.split_on_char ',' s in
        List.fold_left
          (fun acc n ->
            match acc with
            | Error _ as e -> e
            | Ok fs -> (
                match Robust.Inject.service_fault_of_name (String.trim n) with
                | Some f -> Ok (fs @ [ f ])
                | None -> Error (`Msg (Printf.sprintf "unknown service fault %S" n))))
          (Ok []) names
  in
  let print ppf fs =
    Format.pp_print_string ppf
      (match fs with
      | [] -> "none"
      | fs -> String.concat "," (List.map Robust.Inject.service_fault_name fs))
  in
  Arg.conv (parse, print)

let log_level_conv =
  let parse s =
    match Obs.Log.level_of_name s with
    | Some l -> Ok l
    | None -> Error (`Msg (Printf.sprintf "unknown log level %S" s))
  in
  let print ppf l = Format.pp_print_string ppf (Obs.Log.level_name l) in
  Arg.conv (parse, print)

let serve_cmd =
  let run listen workers queue_limit deadline_ms max_retries cache_dir no_cache
      idle_timeout max_frame faults allow_shutdown log_level log_json flight_capacity
      flight_anomalies span_cap flight_out deterministic =
    let addr = or_die (addr_of_string_arg listen) in
    let cache = cache_of ~no_cache ~cache_dir in
    (* The deterministic daemon pins everything a transcript could see:
       a frozen request clock (all timings 0; deadlines never fire), a
       seed-0 trace-id stream and a fake-stepped logger clock. *)
    let clock = if deterministic then Obs.Clock.frozen 0.0 else real_clock in
    let logger =
      let format = if log_json then Obs.Log.Jsonl else Obs.Log.Text in
      let log_clock = if deterministic then Obs.Clock.fake () else real_clock in
      Obs.Log.make ~level:log_level ~format ~clock:log_clock ()
    in
    let trace_seed = if deterministic then Some 0 else None in
    let cfg =
      Serve.Server.config ~workers ~queue_limit ?default_deadline_ms:deadline_ms
        ~max_retries ?cache ~idle_timeout_s:idle_timeout ~max_frame
        ~faults_enabled:faults ~allow_shutdown ~clock ~logger ?trace_seed
        ~flight_capacity ~flight_anomaly_capacity:flight_anomalies ~span_cap
        ?flight_out addr
    in
    exit (Serve.Server.run cfg)
  in
  let listen =
    Arg.(
      value
      & opt string "unix:/tmp/rbp-serve.sock"
      & info [ "listen"; "l" ] ~docv:"ADDR"
          ~doc:
            "Listen address: $(b,unix:PATH), $(b,tcp:HOST:PORT), a bare $(b,HOST:PORT) \
             or a bare socket path.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers"; "w" ] ~docv:"N" ~doc:"Worker domains compiling requests.")
  in
  let queue_limit =
    Arg.(
      value & opt int 64
      & info [ "queue-limit"; "q" ] ~docv:"N"
          ~doc:
            "Admission bound: compile requests beyond $(docv) queued jobs are shed with \
             a structured $(b,overload) reply carrying a retry-after quote.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Default per-request wall-clock deadline in milliseconds, applied when a \
             request does not name its own. Expired requests are answered with a \
             structured timeout, never hung.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Worker crashes tolerated per request before it is quarantined and answered \
             with $(b,SRV003).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"S"
          ~doc:
            "Total per-frame read budget in seconds. The budget is not reset by \
             progress, so slow-loris clients dribbling bytes still run out.")
  in
  let max_frame =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted request frame.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Honor poison fault markers in requests (worker-crash injection). For the \
             bombardment harness and tests only.")
  in
  let allow_shutdown =
    Arg.(
      value & flag
      & info [ "allow-shutdown" ]
          ~doc:"Honor the $(b,shutdown) op (otherwise it is a bad frame).")
  in
  let log_level =
    Arg.(
      value
      & opt log_level_conv Obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Log verbosity: $(b,debug), $(b,info), $(b,warn) or $(b,error). Per-request \
             lines (admission, delivery, anomalies) are $(b,debug); lifecycle lines are \
             $(b,info).")
  in
  let log_json =
    Arg.(
      value & flag
      & info [ "log-json" ]
          ~doc:
            "Emit JSONL log lines ($(b,ts)/$(b,level)/$(b,msg)/$(b,trace_id) plus \
             per-site fields) instead of the bare-message text format.")
  in
  let flight_capacity =
    Arg.(
      value
      & opt int Serve.Flight.default_capacity
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Completed requests retained by the flight recorder.")
  in
  let flight_anomalies =
    Arg.(
      value
      & opt int Serve.Flight.default_anomaly_capacity
      & info [ "flight-anomalies" ] ~docv:"N"
          ~doc:
            "Anomalies (timeouts, quarantines, overload sheds) retained in the \
             separate ring bursts cannot evict.")
  in
  let span_cap =
    Arg.(
      value
      & opt int Serve.Flight.default_span_cap
      & info [ "span-cap" ] ~docv:"N"
          ~doc:"Spans retained per flight entry and returned per traced reply.")
  in
  let flight_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-out" ] ~docv:"FILE"
          ~doc:"Write a final rbp-flight/1 dump to $(docv) during the shutdown drain.")
  in
  let deterministic =
    Arg.(
      value & flag
      & info [ "deterministic" ]
          ~doc:
            "Pin every observable timestamp and id: frozen request clock, fixed \
             trace-id seed, fake-stepped logger clock. For pinned transcripts and \
             tests.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the fault-tolerant pipelining compilation daemon: newline-delimited JSON \
          over a Unix or TCP socket, bounded admission with explicit backpressure, \
          per-request deadlines with cooperative cancellation, cached repeat answers, \
          and a supervisor that restarts crashed worker domains and quarantines poison \
          requests. Every admitted request is answered — including during a SIGTERM \
          drain. Exit codes: 0 clean shutdown, 1 listen failure")
    Term.(
      const run $ listen $ workers $ queue_limit $ deadline $ max_retries $ cache_dir_arg
      $ no_cache_arg $ idle_timeout $ max_frame $ faults $ allow_shutdown $ log_level
      $ log_json $ flight_capacity $ flight_anomalies $ span_cap $ flight_out
      $ deterministic)

let bombard_cmd =
  let run addr clients loops seed clusters model deadline_ms faults fault_rate retries
      timeout check trace_sample json_out quiet =
    let addr = or_die (addr_of_string_arg addr) in
    let log = if quiet then ignore else prerr_endline in
    let cfg =
      Serve.Bombard.config ~clients ~loops ~seed ~clusters ~model ?deadline_ms ~faults
        ~fault_rate ~max_retries:retries ~timeout_s:timeout ~check ~trace_sample ~log
        addr
    in
    let r = Serve.Bombard.run cfg in
    print_string (Serve.Bombard.render r);
    (match json_out with
    | None -> ()
    | Some path ->
        write_file path (Obs.Json.to_string (Serve.Bombard.to_json r) ^ "\n"));
    exit (Serve.Bombard.exit_code r)
  in
  let clients =
    Arg.(
      value & opt int 4
      & info [ "clients"; "k" ] ~docv:"K" ~doc:"Concurrent client threads.")
  in
  let loops =
    Arg.(
      value & opt int 0
      & info [ "loops"; "n" ] ~docv:"N"
          ~doc:"Replay the first $(docv) suite loops (0 = the whole 211-loop suite).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS" ~doc:"Deadline attached to every scored request.")
  in
  let faults =
    Arg.(
      value & opt faults_conv []
      & info [ "faults" ] ~docv:"LIST"
          ~doc:
            "Service faults to inject before each scored request: $(b,all), $(b,none), \
             or a comma-separated subset of $(b,garbage-frame), $(b,slow-loris), \
             $(b,disconnect), $(b,deadline-storm), $(b,crash-worker).")
  in
  let fault_rate =
    Arg.(
      value & opt float 1.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Per-(loop, fault) firing probability, drawn from the seeded stream.")
  in
  let retries =
    Arg.(
      value & opt int 8
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Backoff budget per scored request: overload sheds and reconnects beyond \
             $(docv) mark the request unanswered (a FAIL).")
  in
  let timeout =
    Arg.(
      value & opt float 120.0
      & info [ "timeout" ] ~docv:"S" ~doc:"Client-side wait per reply.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Recompute every served result through the local ladder and fail on any \
             ideal-II / clustered-II / copy-count / rung disagreement.")
  in
  let trace_sample =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Request the full span tree on every $(docv)th scored compile (0 = never). \
             Under $(b,--check) the returned tree must parse, echo the client's trace \
             id, and agree with the reply's ladder rung.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write an rbp-bench/1 report (accepted by $(b,rbp perfdiff)) with \
             service latency telemetry to $(docv).")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the per-loop progress lines.")
  in
  Cmd.v
    (Cmd.info "bombard"
       ~doc:
         "Replay the workload suite against a live $(b,rbp serve) daemon from \
          concurrent clients, optionally injecting service-level faults (garbage \
          frames, slow-loris dribbles, mid-request disconnects, deadline storms, \
          worker-crash poison) before each scored request. Scored requests retry \
          overload sheds with jittered exponential backoff. Exit codes: 0 when every \
          request was answered with no protocol errors or metric mismatches; 1 \
          otherwise")
    Term.(
      const run $ addr_pos_arg $ clients $ loops $ seed_arg $ clusters_arg $ model_arg
      $ deadline $ faults $ fault_rate $ retries $ timeout $ check $ trace_sample
      $ json_out $ quiet)

let top_cmd =
  let run addr interval once json prom retry_for timeout =
    if json && prom then begin
      prerr_endline "rbp top: --json and --prom are mutually exclusive";
      exit 2
    end;
    let addr = or_die (addr_of_string_arg addr) in
    (* One short-lived connection per poll: a daemon restart between
       refreshes is then just another sample, not a dead dashboard. *)
    let fetch () =
      match Serve.Client.connect ~retry_for addr with
      | Error e -> Error e
      | Ok c ->
          let r =
            match Serve.Client.request ~timeout_s:timeout c Serve.Proto.Metrics with
            | Ok (Serve.Proto.Metrics_reply m) -> Ok m
            | Ok reply ->
                Error
                  (Printf.sprintf "unexpected %S reply to the metrics request"
                     (Serve.Proto.status_of_reply reply))
            | Error e -> Error e
          in
          Serve.Client.close c;
          r
    in
    let show m =
      if json then Ok (print_endline (Obs.Json.to_string m))
      else
        match Serve.Metrics.of_json m with
        | Error _ as e -> e
        | Ok t ->
            print_string (if prom then Serve.Metrics.prometheus t else Serve.Metrics.render t);
            Ok ()
    in
    let step () =
      match Result.bind (fetch ()) show with
      | Ok () -> flush stdout
      | Error e ->
          prerr_endline ("rbp top: " ^ e);
          exit 1
    in
    if once then step ()
    else
      let rec loop () =
        if not (json || prom) then print_string "\027[2J\027[H";
        step ();
        Unix.sleepf interval;
        loop ()
      in
      loop ()
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval"; "i" ] ~docv:"S" ~doc:"Seconds between refreshes.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print one snapshot and exit instead of refreshing.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the raw rbp-metrics/1 document instead of the dashboard.")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Print the Prometheus text exposition (stable sorted metric families) \
             instead of the dashboard.")
  in
  let retry_for =
    Arg.(
      value & opt float 5.0
      & info [ "retry-for" ] ~docv:"S"
          ~doc:"Keep retrying a refused connection for $(docv) seconds.")
  in
  let timeout =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"S" ~doc:"Wait per reply.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live metrics dashboard for a running $(b,rbp serve) daemon: latency quantiles \
          (queue/compile/total and per ladder rung), rolling request/overload/result \
          rates over 10s and 60s windows, and the counter table, polled through the \
          $(b,metrics) op. $(b,--once) with $(b,--json) or $(b,--prom) is the \
          scriptable scrape mode. Exit codes: 0 clean; 1 connection or protocol \
          failure")
    Term.(const run $ addr_pos_arg $ interval $ once $ json $ prom $ retry_for $ timeout)

let flight_cmd =
  let run addr id anomalies json retry_for timeout =
    let addr = or_die (addr_of_string_arg addr) in
    let doc =
      match Serve.Client.connect ~retry_for addr with
      | Error e -> Error e
      | Ok c ->
          let r =
            match
              Serve.Client.request ~timeout_s:timeout c
                (Serve.Proto.Flight { id; anomalies })
            with
            | Ok (Serve.Proto.Flight_reply f) -> Ok f
            | Ok reply ->
                Error
                  (Printf.sprintf "unexpected %S reply to the flight request"
                     (Serve.Proto.status_of_reply reply))
            | Error e -> Error e
          in
          Serve.Client.close c;
          r
    in
    let shown =
      Result.bind doc (fun f ->
          if json then Ok (print_endline (Obs.Json.to_string f))
          else Result.map print_string (Serve.Flight.render f))
    in
    match shown with
    | Ok () -> ()
    | Error e ->
        prerr_endline ("rbp flight: " ^ e);
        exit 1
  in
  let id =
    Arg.(
      value
      & opt (some string) None
      & info [ "id" ] ~docv:"TRACE_ID"
          ~doc:"Filter both rings down to the entries carrying $(docv).")
  in
  let anomalies =
    Arg.(
      value & flag
      & info [ "anomalies" ]
          ~doc:
            "Dump only the anomaly ring (timeouts, quarantines, overload sheds) — the \
             entries a burst of healthy traffic cannot evict.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw rbp-flight/1 document instead of the tables.")
  in
  let retry_for =
    Arg.(
      value & opt float 5.0
      & info [ "retry-for" ] ~docv:"S"
          ~doc:"Keep retrying a refused connection for $(docv) seconds.")
  in
  let timeout =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"S" ~doc:"Wait per reply.")
  in
  Cmd.v
    (Cmd.info "flight"
       ~doc:
         "Dump a running daemon's flight recorder: the last completed compile requests \
          (trace id, outcome, rung, latencies, attempt trace, truncated span tree) and \
          the separately-retained anomaly ring, through the $(b,flight) op. \
          $(b,--id) narrows to one request's journey; $(b,--anomalies) is the \
          post-mortem view. Exit codes: 0 clean; 1 connection or protocol failure")
    Term.(const run $ addr_pos_arg $ id $ anomalies $ json $ retry_for $ timeout)

(* A reply line as sorted key=value pairs: stable for scripts that would
   otherwise parse labeled JSON by position. Nested values stay JSON. *)
let kv_of_reply_line line =
  let plain s =
    s <> ""
    && String.for_all
         (fun c ->
           match c with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | ':' | '/' | '-' -> true
           | _ -> false)
         s
  in
  match Obs.Json.of_string line with
  | Ok (Obs.Json.Obj kvs) ->
      kvs
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (k, v) ->
             let rendered =
               match v with
               | Obs.Json.Str s when plain s -> s
               | v -> Obs.Json.to_string v
             in
             k ^ "=" ^ rendered)
      |> String.concat " "
  | Ok _ | Error _ -> line

let call_cmd =
  let run addr frames from_stdin retry_for timeout kv json =
    if kv && json then begin
      prerr_endline "rbp call: --kv and --json are mutually exclusive";
      exit 2
    end;
    let addr = or_die (addr_of_string_arg addr) in
    let client = or_die (Serve.Client.connect ~retry_for addr) in
    let frames =
      if from_stdin then
        let rec read acc =
          match input_line stdin with
          | line -> read (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        read []
      else frames
    in
    let failed = ref false in
    List.iter
      (fun frame ->
        match Serve.Client.send_line client frame with
        | Error e ->
            prerr_endline ("rbp call: " ^ e);
            failed := true
        | Ok () -> (
            match Serve.Client.recv_line ~timeout_s:timeout client with
            | Error e ->
                prerr_endline ("rbp call: " ^ e);
                failed := true
            | Ok reply ->
                print_endline (if kv then kv_of_reply_line reply else reply)))
      frames;
    Serve.Client.close client;
    exit (if !failed then 1 else 0)
  in
  let frames =
    Arg.(
      value
      & pos_right 0 string []
      & info [] ~docv:"FRAME" ~doc:"Raw JSON request frames to send, one reply each.")
  in
  let from_stdin =
    Arg.(
      value & flag
      & info [ "stdin" ] ~doc:"Read request frames from standard input instead.")
  in
  let retry_for =
    Arg.(
      value & opt float 5.0
      & info [ "retry-for" ] ~docv:"S"
          ~doc:
            "Keep retrying a refused connection for $(docv) seconds — how scripts wait \
             for a daemon that is still binding its socket.")
  in
  let timeout =
    Arg.(
      value & opt float 60.0
      & info [ "timeout" ] ~docv:"S" ~doc:"Wait per reply.")
  in
  let kv =
    Arg.(
      value & flag
      & info [ "kv" ]
          ~doc:
            "Render each reply as sorted $(b,key=value) pairs on one line (latency as \
             $(b,queue_ms=)/$(b,compile_ms=)/$(b,total_ms=), nested values as JSON), so \
             scripts match fields by name instead of position.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print raw JSON reply lines (the default; explicit for scripts).")
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send raw protocol frames to a running $(b,rbp serve) daemon and print the \
          reply lines — raw JSON by default ($(b,--json)), or labeled $(b,--kv) pairs. \
          The scriptable probe the cram tests and smoke checks use. Exit codes: 0 when \
          every frame got a reply; 1 on any transport failure")
    Term.(const run $ addr_pos_arg $ frames $ from_stdin $ retry_for $ timeout $ kv $ json)

(* ------------------------------------------------------------------ *)

let main =
  let doc = "register assignment for software pipelining with partitioned register banks" in
  Cmd.group
    (Cmd.info "rbp" ~version:"1.0" ~doc)
    [ list_cmd; show_cmd; pipeline_cmd; trace_cmd; explain_cmd; report_cmd; exact_cmd;
      perfdiff_cmd;
      schedule_cmd; compare_cmd; rcg_cmd; ddg_cmd; alloc_cmd; lint_cmd; analyze_cmd;
      stress_cmd;
      sim_cmd; experiment_cmd; csv_cmd; cache_cmd; serve_cmd; bombard_cmd; call_cmd;
      top_cmd; flight_cmd ]

let () = exit (Cmd.eval main)
