#!/bin/sh
# Validate a daemon JSONL log (`rbp serve --log-json`).
#
# Checks, in order:
#   1. every line is a well-formed log object in the logger's fixed key
#      order — {"ts":<num>,"level":"<lvl>","msg":"...","trace_id":"..."}
#      with optional extra fields after the fixed four;
#   2. timestamps never go backwards — the logger reads its clock under
#      one mutex, so a regression means interleaved corruption;
#   3. every line (errors included) carries a non-empty trace_id, so a
#      grep by id always reconstructs a request's full story.
#
# Usage: check_logs.sh [log-file]   (stdin when omitted)
set -eu

input=${1:--}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
cat -- "$input" > "$tmp" 2>/dev/null || { echo "check_logs: cannot read $input" >&2; exit 2; }

[ -s "$tmp" ] || { echo "check_logs: log is empty" >&2; exit 1; }

awk '
  function fail(msg) { print "check_logs: line " NR ": " msg > "/dev/stderr"; bad = 1 }
  /^$/ { fail("blank line"); next }
  {
    if ($0 !~ /^\{"ts":-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?,"level":"(debug|info|warn|error)","msg":"/) {
      fail("not a log object in the fixed key order: " $0)
      next
    }
    if ($0 !~ /"trace_id":"[^"]+"/) {
      fail("no trace_id: " $0)
      next
    }
    ts = $0
    sub(/^\{"ts":/, "", ts); sub(/,.*/, "", ts)
    if (seen && ts + 0 < prev + 0) fail("timestamp went backwards: " prev " -> " ts)
    prev = ts; seen = 1
    total++
    if ($0 ~ /^\{"ts":[^,]*,"level":"error"/) {
      errors++
      if ($0 !~ /"trace_id":"[^"]+"/) fail("error line without a trace_id: " $0)
    }
  }
  END {
    if (total == 0) { fail("no log lines"); }
    exit bad
  }
' "$tmp"

echo "check_logs: log OK ($(wc -l < "$tmp" | tr -d ' ') lines)"
