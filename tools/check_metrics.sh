#!/bin/sh
# Validate a Prometheus text exposition scraped from `rbp top --prom`.
#
# Checks, in order:
#   1. every non-comment line is a well-formed sample
#      (name{labels} value, labels optional, value a number);
#   2. every `# TYPE` family declaration is followed by at least one
#      sample of that family — a declared-but-empty family means an
#      instrumentation point was never wired up;
#   3. the three latency summaries carry a non-zero `_count` — after a
#      bombardment the daemon must have recorded real distributions.
#
# Usage: check_metrics.sh [exposition-file]   (stdin when omitted)
set -eu

input=${1:--}
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
cat -- "$input" > "$tmp" 2>/dev/null || { echo "check_metrics: cannot read $input" >&2; exit 2; }

awk '
  function fail(msg) { print "check_metrics: " msg > "/dev/stderr"; bad = 1 }
  /^$/ { next }
  /^# TYPE / {
    if (split($0, t, " ") < 4) { fail("malformed TYPE line: " $0); next }
    declared[t[3]] = t[4]
    next
  }
  /^#/ { next }
  {
    if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?([0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|[0-9]+e[+-]?[0-9]+)$/) {
      fail("malformed sample line: " $0)
      next
    }
    name = $1
    sub(/\{.*/, "", name)
    samples[name]++
    # a summary family owns its _sum/_count samples too
    base = name
    sub(/_(sum|count)$/, "", base)
    samples[base]++
    if (name ~ /_count$/) counts[name] = $2
  }
  END {
    for (fam in declared)
      if (!(fam in samples)) fail("family " fam " declared but has no samples")
    n = split("rbp_serve_queue_latency_ms rbp_serve_compile_latency_ms rbp_serve_total_latency_ms", lat, " ")
    for (i = 1; i <= n; i++) {
      c = lat[i] "_count"
      if (!(c in counts)) fail("latency family " lat[i] " missing its _count sample")
      else if (counts[c] + 0 <= 0) fail("latency family " lat[i] " is empty (count " counts[c] ")")
    }
    exit bad
  }
' "$tmp"

echo "check_metrics: exposition OK ($(grep -c '^# TYPE ' "$tmp") families)"
