(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) on the synthetic 211-loop suite, then times the
   pipeline stages with Bechamel.

   Usage:
     bench/main.exe              -- everything
     bench/main.exe table1       -- just Table 1     (likewise table2)
     bench/main.exe fig5|fig6|fig7
     bench/main.exe ablation     -- partitioner/weight ablation (ours)
     bench/main.exe timing       -- Bechamel micro-benchmarks only
     bench/main.exe quick        -- tables on a reduced suite (CI),
                                    plus BENCH_quick.json telemetry
     bench/main.exe quick-json [PATH] -- just the reduced-suite telemetry
                                    (the CI perf gate's input)
     bench/main.exe json         -- just the BENCH_pipeline.json telemetry

   Engine flags (usable with any command, stripped before dispatch):
     -j N            -- shard suite sweeps over N domains (0 = one per
                        core; default 1, the exact serial path)
     --no-cache      -- disable the content-addressed result cache
     --cache-dir DIR -- cache location (default _rbp_cache) *)

let section title =
  print_newline ();
  print_endline (String.make 72 '=');
  print_endline title;
  print_endline (String.make 72 '=')

let suite_seed = 1995

(* Engine knobs, set by the argv prefix below. [jobs = 1] is the exact
   serial path; 0 means one domain per core. *)
let jobs = ref 1
let use_cache = ref true
let cache_dir = ref Engine.Cache.default_dir
let effective_jobs () = if !jobs <= 0 then Engine.Pool.default_jobs () else !jobs

type sweep = {
  sweep_runs : Core.Experiment.run list;
  sweep_ipc : float;
  sweep_obs : Obs.Trace.t;
  sweep_hits : int;
  sweep_wall : float;
}

let runs_cache : (int, sweep) Hashtbl.t = Hashtbl.create 4

(* Every suite sweep runs instrumented (real clock): the per-stage wall
   times ride along for free and feed the JSON telemetry below. *)
let runs_for_obs ?(n = Workload.Suite.size) () =
  match Hashtbl.find_opt runs_cache n with
  | Some r -> r
  | None ->
      let obs = Obs.Trace.make ~clock:Unix.gettimeofday () in
      let loops = Workload.Suite.loops ~seed:suite_seed ~n () in
      let cache =
        if !use_cache then Some (Engine.Cache.open_ ~dir:!cache_dir ()) else None
      in
      let t0 = Unix.gettimeofday () in
      let runs =
        Core.Experiment.run_all ~obs ~jobs:!jobs ?cache
          ~job_clock:(fun _ -> Unix.gettimeofday) ~loops ()
      in
      let wall = Unix.gettimeofday () -. t0 in
      let ipc = Core.Experiment.ideal_ipc ~loops () in
      let hits =
        List.fold_left
          (fun acc (r : Core.Experiment.run) -> acc + r.cache_hits)
          0 runs
      in
      let sweep =
        { sweep_runs = runs; sweep_ipc = ipc; sweep_obs = obs; sweep_hits = hits;
          sweep_wall = wall }
      in
      Hashtbl.replace runs_cache n sweep;
      sweep

let runs_for ?n () =
  let s = runs_for_obs ?n () in
  (s.sweep_runs, s.sweep_ipc)

let find_run runs ~clusters ~copy_model =
  List.find
    (fun (r : Core.Experiment.run) ->
      r.config.clusters = clusters && r.config.copy_model = copy_model)
    runs

let table1 ?n () =
  let runs, ideal_ipc = runs_for ?n () in
  section "Table 1: IPC of Clustered Software Pipelines";
  Util.Table.print (Core.Report.table1 ~ideal_ipc runs);
  Printf.printf "(paper: ideal 8.6; clustered 9.3/6.2, 8.4/7.5, 6.9/6.8)\n"

let table2 ?n () =
  let runs, _ = runs_for ?n () in
  section "Table 2: Degradation Over Ideal Schedules - Normalized";
  Util.Table.print (Core.Report.table2 runs);
  Printf.printf "(paper: arith 111/150, 126/122, 162/133; harm 109/127, 119/115, 138/124)\n";
  print_string "Scheduling failures:\n";
  print_string (Core.Report.failures_summary runs)

let figure ?n ~clusters ~number () =
  let runs, _ = runs_for ?n () in
  let e = find_run runs ~clusters ~copy_model:Mach.Machine.Embedded in
  let c = find_run runs ~clusters ~copy_model:Mach.Machine.Copy_unit in
  let title =
    Printf.sprintf "Figure %d: Achieved II on %d Clusters with %d Units Each" number clusters
      (16 / clusters)
  in
  section title;
  Util.Table.print (Core.Report.figure_histogram e c ~title:"% of loops per degradation bucket");
  print_string (Core.Report.ascii_histogram e c ~title:"");
  Printf.printf "No degradation: embedded %.0f%%, copy-unit %.0f%% of loops\n"
    (Core.Metrics.pct_no_degradation e.metrics)
    (Core.Metrics.pct_no_degradation c.metrics)

let ablation ?(n = 64) () =
  section "Ablation (ours): partitioner and weight-term comparison, 4x4 machine";
  let loops = Workload.Suite.loops ~n () in
  let config = Core.Experiment.config_for ~clusters:4 ~copy_model:Mach.Machine.Embedded in
  let t =
    Util.Table.create ~title:"Mean degradation (normalized, 100 = ideal)"
      ~header:[ "Partitioner"; "Arith mean"; "Harmonic"; "No-degradation %" ]
  in
  let entry label partitioner =
    let run = Core.Experiment.run_config ~partitioner ~loops config in
    Util.Table.add_row t
      [
        label;
        Util.Table.cell_float ~decimals:1 (Core.Metrics.arithmetic_mean_degradation run.metrics);
        Util.Table.cell_float ~decimals:1 (Core.Metrics.harmonic_mean_degradation run.metrics);
        Util.Table.cell_float ~decimals:1 (Core.Metrics.pct_no_degradation run.metrics);
      ]
  in
  entry "greedy (paper)" (Partition.Driver.Greedy Rcg.Weights.default);
  entry "greedy, no repulsion" (Partition.Driver.Greedy Rcg.Weights.no_repulsion);
  entry "greedy, flat weights" (Partition.Driver.Greedy Rcg.Weights.flat);
  entry "greedy + iterative refinement" (Partition.Refine.partitioner Rcg.Weights.default);
  entry "BUG (Ellis)" Partition.Driver.Bug;
  entry "UAS (Ozer et al.)" Partition.Driver.Uas;
  entry "NE-style (recurrence-first)"
    (Partition.Driver.Custom (fun machine ddg _ -> Partition.Ne.partition ~machine ddg));
  (* Off-line stochastic tuning (Section 7 future work): train on a small
     disjoint sample, evaluate on the ablation loops. *)
  let train = Workload.Suite.loops ~seed:77 ~n:16 () in
  let tuned = Core.Tune.hill_climb ~budget:15 ~machine:config.Core.Experiment.machine
      ~loops:train ()
  in
  entry "greedy, tuned weights" (Partition.Driver.Greedy tuned.Core.Tune.weights);
  Util.Table.print t;
  Printf.printf
    "(tuned on %d held-out loops, %d evaluations, training score %.1f)\n"
    (List.length train) tuned.Core.Tune.evaluations tuned.Core.Tune.score

let wholeprog ?(n = 40) () =
  section "Whole-function partitioning (Hiser et al. 1999 companion experiment)";
  let fns = Workload.Funcgen.suite ~n () in
  let t =
    Util.Table.create
      ~title:
        "Mean whole-function degradation, frequency-weighted cycles (paper [16]: ~11% on 4 \
         banks)"
      ~header:[ "Machine"; "Arith mean"; "Copies/function" ]
  in
  List.iter
    (fun clusters ->
      let machine =
        Mach.Machine.paper_clustered ~clusters ~copy_model:Mach.Machine.Embedded
      in
      let degs = ref [] and copies = ref 0 and count = ref 0 in
      List.iter
        (fun fn ->
          match Partition.Func_driver.pipeline ~machine fn with
          | Ok r ->
              degs := r.Partition.Func_driver.degradation :: !degs;
              copies := !copies + r.Partition.Func_driver.n_copies;
              incr count
          | Error _ -> ())
        fns;
      Util.Table.add_row t
        [
          machine.Mach.Machine.name;
          Util.Table.cell_float ~decimals:1 (Util.Stats.mean !degs);
          Util.Table.cell_float ~decimals:1 (float_of_int !copies /. float_of_int (max 1 !count));
        ])
    [ 2; 4; 8 ];
  Util.Table.print t

let schedulers ?(n = 120) () =
  section "Scheduler comparison (ours): Rau IMS vs Swing modulo scheduling";
  (* Section 6.3 lists the scheduler difference (Rau vs Swing) among the
     reasons the two studies diverge; this quantifies it on our suite:
     achieved II and MaxLive register requirements on the ideal machine. *)
  let loops = Workload.Suite.loops ~n () in
  let machine = Mach.Machine.paper_ideal in
  let rau_ii = ref 0 and swing_ii = ref 0 in
  let rau_ml = ref 0 and swing_ml = ref 0 in
  let rau_regs = ref 0 and swing_regs = ref 0 in
  let same_ii = ref 0 and swing_better = ref 0 and rau_better = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun loop ->
      let ddg = Ddg.Graph.of_loop loop in
      match (Sched.Modulo.ideal ~machine ddg, Sched.Swing.ideal ~machine ddg) with
      | Some rau, Some swing ->
          incr compared;
          rau_ii := !rau_ii + rau.Sched.Modulo.ii;
          swing_ii := !swing_ii + swing.Sched.Modulo.ii;
          if rau.Sched.Modulo.ii = swing.Sched.Modulo.ii then begin
            incr same_ii;
            let mr = Sched.Pressure.max_live ~kernel:rau.Sched.Modulo.kernel ~loop in
            let ms = Sched.Pressure.max_live ~kernel:swing.Sched.Modulo.kernel ~loop in
            rau_ml := !rau_ml + mr;
            swing_ml := !swing_ml + ms;
            let regs kernel =
              (Regalloc.Kernel_alloc.requirements ~kernel ~loop ~banks:1
                 ~bank_of:(fun _ -> 0)).Regalloc.Kernel_alloc.total
            in
            rau_regs := !rau_regs + regs rau.Sched.Modulo.kernel;
            swing_regs := !swing_regs + regs swing.Sched.Modulo.kernel;
            if ms < mr then incr swing_better else if mr < ms then incr rau_better
          end
      | _ -> ())
    loops;
  let t =
    Util.Table.create ~title:(Printf.sprintf "Ideal 16-wide pipelines over %d loops" !compared)
      ~header:[ "Metric"; "Rau IMS"; "Swing" ]
  in
  let fcmp v = Util.Table.cell_float ~decimals:2 v in
  Util.Table.add_row t
    [ "mean achieved II";
      fcmp (float_of_int !rau_ii /. float_of_int !compared);
      fcmp (float_of_int !swing_ii /. float_of_int !compared) ];
  Util.Table.add_row t
    [ Printf.sprintf "mean MaxLive (on %d equal-II loops)" !same_ii;
      fcmp (float_of_int !rau_ml /. float_of_int (max 1 !same_ii));
      fcmp (float_of_int !swing_ml /. float_of_int (max 1 !same_ii)) ];
  Util.Table.add_row t
    [ "mean registers needed (MVE + cyclic colouring)";
      fcmp (float_of_int !rau_regs /. float_of_int (max 1 !same_ii));
      fcmp (float_of_int !swing_regs /. float_of_int (max 1 !same_ii)) ];
  Util.Table.print t;
  Printf.printf "equal II on %d/%d loops; MaxLive: swing better on %d, Rau better on %d\n"
    !same_ii !compared !swing_better !rau_better

let latency_sweep ?(n = 64) () =
  section "Copy-latency sensitivity (ours): Section 6.3's latency conjecture";
  (* The paper blames part of the gap to Nystrom & Eichenberger on copy
     latency: "Our longer latency times for copies may have had a
     significant effect on the number of loops that we could schedule
     without degradation. We used latency of 2 cycles for integer copies
     and 3 for floating point values, while [they] used latency of 1".
     Sweep the copy latency with everything else fixed. *)
  let loops = Workload.Suite.loops ~n () in
  let t =
    Util.Table.create ~title:"4x4 embedded, 64 loops, copy latency swept"
      ~header:[ "Copy latency (int/float)"; "Arith mean"; "No-degradation %" ]
  in
  List.iter
    (fun (li, lf) ->
      let latency =
        Mach.Latency.override Mach.Latency.paper
          [ (Mach.Opcode.Copy, Mach.Rclass.Int, li); (Mach.Opcode.Copy, Mach.Rclass.Float, lf) ]
      in
      let machine =
        Mach.Machine.make ~latency ~clusters:4 ~fus_per_cluster:4
          ~copy_model:Mach.Machine.Embedded ()
      in
      let metrics =
        List.filter_map
          (fun loop ->
            match Partition.Driver.pipeline ~machine loop with
            | Ok r -> Some (Core.Metrics.of_result r)
            | Error _ -> None)
          loops
      in
      Util.Table.add_row t
        [
          Printf.sprintf "%d / %d%s" li lf (if (li, lf) = (2, 3) then "  (paper)" else "");
          Util.Table.cell_float ~decimals:1 (Core.Metrics.arithmetic_mean_degradation metrics);
          Util.Table.cell_float ~decimals:1 (Core.Metrics.pct_no_degradation metrics);
        ])
    [ (1, 1); (2, 3); (4, 6) ];
  Util.Table.print t

let lowered ?(n = 64) () =
  section "Explicit addressing (ours): the framework on lowered code";
  (* Lower affine addresses to induction-variable arithmetic and rerun the
     4x4 experiment: more integer ops, longer bodies, the same framework. *)
  let loops = Workload.Suite.loops ~n () in
  let machine = Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Embedded in
  let t =
    Util.Table.create ~title:"4x4 embedded, 64 loops, abstract vs lowered addressing"
      ~header:[ "Form"; "mean ops/loop"; "mean ideal II"; "Arith mean degr." ]
  in
  let run label xform =
    let sizes = ref [] and iis = ref [] and degs = ref [] in
    List.iter
      (fun loop ->
        match xform loop with
        | None -> ()
        | Some loop -> (
            match Partition.Driver.pipeline ~machine loop with
            | Ok r ->
                sizes := float_of_int (Ir.Loop.size loop) :: !sizes;
                iis := float_of_int r.Partition.Driver.ideal.Sched.Modulo.ii :: !iis;
                degs := r.Partition.Driver.degradation :: !degs
            | Error _ -> ()))
      loops;
    Util.Table.add_row t
      [
        label;
        Util.Table.cell_float ~decimals:1 (Util.Stats.mean !sizes);
        Util.Table.cell_float ~decimals:2 (Util.Stats.mean !iis);
        Util.Table.cell_float ~decimals:1 (Util.Stats.mean !degs);
      ]
  in
  run "abstract addresses" (fun l -> Some l);
  run "lowered (iv arithmetic)" (fun l ->
      match Ir.Lower_addr.loop l with
      | lowered, _ -> Some lowered
      | exception Invalid_argument _ -> None);
  Util.Table.print t

let registers ?(n = 64) () =
  section "Register requirements (ours): partitioning shrinks per-bank pressure";
  (* The architectural argument for banking: each bank needs far fewer
     ports AND registers than a monolithic file. Mean per-loop register
     needs (MVE + cyclic colouring) of the ideal pipeline vs the largest
     single bank after partitioning. *)
  let loops = Workload.Suite.loops ~n () in
  let t =
    Util.Table.create ~title:"Mean registers needed per loop (MVE + cyclic colouring)"
      ~header:[ "Machine"; "total"; "largest bank" ]
  in
  let ideal_total = ref 0.0 and count = ref 0 in
  List.iter
    (fun loop ->
      let ddg = Ddg.Graph.of_loop loop in
      match Sched.Modulo.ideal ~machine:Mach.Machine.paper_ideal ddg with
      | Some o ->
          let req =
            Regalloc.Kernel_alloc.requirements ~kernel:o.Sched.Modulo.kernel ~loop ~banks:1
              ~bank_of:(fun _ -> 0)
          in
          ideal_total := !ideal_total +. float_of_int req.Regalloc.Kernel_alloc.total;
          incr count
      | None -> ())
    loops;
  Util.Table.add_row t
    [ "ideal (1 bank)";
      Util.Table.cell_float ~decimals:1 (!ideal_total /. float_of_int !count);
      Util.Table.cell_float ~decimals:1 (!ideal_total /. float_of_int !count) ];
  List.iter
    (fun clusters ->
      let machine =
        Mach.Machine.paper_clustered ~clusters ~copy_model:Mach.Machine.Embedded
      in
      let total = ref 0.0 and biggest = ref 0.0 and count = ref 0 in
      List.iter
        (fun loop ->
          match Partition.Driver.pipeline ~machine loop with
          | Ok r ->
              let req =
                Regalloc.Kernel_alloc.requirements
                  ~kernel:r.Partition.Driver.clustered.Sched.Modulo.kernel
                  ~loop:r.Partition.Driver.rewritten ~banks:clusters
                  ~bank_of:(Partition.Assign.bank r.Partition.Driver.assignment)
              in
              total := !total +. float_of_int req.Regalloc.Kernel_alloc.total;
              biggest :=
                !biggest +. float_of_int (Array.fold_left max 0 req.Regalloc.Kernel_alloc.per_bank);
              incr count
          | Error _ -> ())
        loops;
      Util.Table.add_row t
        [
          machine.Mach.Machine.name;
          Util.Table.cell_float ~decimals:1 (!total /. float_of_int (max 1 !count));
          Util.Table.cell_float ~decimals:1 (!biggest /. float_of_int (max 1 !count));
        ])
    [ 2; 4; 8 ];
  Util.Table.print t

let specialized ?(n = 64) () =
  section "General vs specialized functional units (ours): the Section 3 contrast";
  (* "our model included general function units while theirs did not.
     This should lead to slightly greater degradation for us, since the
     general functional-unit model should allow for slightly more
     parallelism" — test the conjecture with Ozer-style clusters
     (1 FP, 1 load/store, 2 integer per cluster of 4). *)
  let loops = Workload.Suite.loops ~n () in
  let t =
    Util.Table.create ~title:"4 clusters x 4 units, embedded copies, 64 loops"
      ~header:[ "Cluster units"; "mean ideal II"; "Arith mean degr."; "No-degradation %" ]
  in
  let entry label machine =
    let iis = ref [] and metrics = ref [] in
    List.iter
      (fun loop ->
        match Partition.Driver.pipeline ~machine loop with
        | Ok r ->
            iis := float_of_int r.Partition.Driver.ideal.Sched.Modulo.ii :: !iis;
            metrics := Core.Metrics.of_result r :: !metrics
        | Error _ -> ())
      loops;
    Util.Table.add_row t
      [
        label;
        Util.Table.cell_float ~decimals:2 (Util.Stats.mean !iis);
        Util.Table.cell_float ~decimals:1 (Core.Metrics.arithmetic_mean_degradation !metrics);
        Util.Table.cell_float ~decimals:1 (Core.Metrics.pct_no_degradation !metrics);
      ]
  in
  entry "4 general (paper)"
    (Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Embedded);
  entry "1 FP + 1 mem + 2 int (Ozer)"
    (Mach.Machine.make ~name:"4x4-ozer" ~fu_mix:Mach.Machine.ozer_cluster_mix ~clusters:4
       ~fus_per_cluster:4 ~copy_model:Mach.Machine.Embedded ());
  Util.Table.print t

let distribute ?(n = 120) () =
  section "Loop distribution (ours): Section 7's data-independence transformation";
  (* Distribution splits independent computations into separate loops:
     the steady-state time can only grow (resources are no longer
     shared), but each piece's register footprint shrinks — the classic
     fission trade-off, quantified on the distributable suite loops. *)
  let loops =
    List.filter Ir.Distribute.is_distributable (Workload.Suite.loops ~n ())
  in
  let t =
    Util.Table.create
      ~title:
        (Printf.sprintf "%d distributable loops: whole vs distributed (Σ II, max MaxLive)"
           (List.length loops))
      ~header:
        [ "Machine"; "whole II"; "split Σ II"; "whole MaxLive"; "split MaxLive" ]
  in
  List.iter
    (fun width ->
      let machine = Mach.Machine.ideal ~width () in
      let whole_ii = ref 0 and split_ii = ref 0 in
      let whole_ml = ref 0 and split_ml = ref 0 in
      let count = ref 0 in
      List.iter
        (fun loop ->
          let pipeline l =
            Option.map
              (fun (o : Sched.Modulo.outcome) ->
                ( o.Sched.Modulo.ii,
                  Sched.Pressure.max_live ~kernel:o.Sched.Modulo.kernel ~loop:l ))
              (Sched.Modulo.ideal ~machine (Ddg.Graph.of_loop l))
          in
          match pipeline loop with
          | None -> ()
          | Some (ii, ml) -> (
              let pieces = List.filter_map pipeline (Ir.Distribute.split loop) in
              if List.length pieces = List.length (Ir.Distribute.split loop) then begin
                incr count;
                whole_ii := !whole_ii + ii;
                whole_ml := !whole_ml + ml;
                split_ii := !split_ii + List.fold_left (fun a (i, _) -> a + i) 0 pieces;
                split_ml := !split_ml + List.fold_left (fun a (_, m) -> max a m) 0 pieces
              end))
        loops;
      let f v =
        Util.Table.cell_float ~decimals:2 (float_of_int v /. float_of_int (max 1 !count))
      in
      Util.Table.add_row t
        [ Printf.sprintf "%d-wide" width; f !whole_ii; f !split_ii; f !whole_ml; f !split_ml ])
    [ 16; 4 ];
  Util.Table.print t;
  print_endline
    "(on a wide machine pieces over-pipeline and pressure grows; on a narrow one\n\
    \ distribution trades a little steady-state time for less pressure per piece)"

let timing () =
  section "Bechamel timings: pipeline stages on daxpy-u8";
  let open Bechamel in
  let open Toolkit in
  let loop = Workload.Kernels.daxpy ~unroll:8 in
  let machine4 = Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Embedded in
  let ideal = Mach.Machine.paper_ideal in
  let ddg = lazy (Ddg.Graph.of_loop loop) in
  let tests =
    [
      Test.make ~name:"ddg-build" (Staged.stage (fun () -> Ddg.Graph.of_loop loop));
      Test.make ~name:"min-ii"
        (Staged.stage (fun () -> Ddg.Minii.min_ii ~width:16 (Lazy.force ddg)));
      Test.make ~name:"ideal-modulo"
        (Staged.stage (fun () -> Sched.Modulo.ideal ~machine:ideal (Lazy.force ddg)));
      Test.make ~name:"rcg-build"
        (Staged.stage (fun () -> Rcg.Build.of_loop ~machine:ideal loop));
      Test.make ~name:"pipeline-4x4-embedded"
        (Staged.stage (fun () -> Partition.Driver.pipeline ~machine:machine4 loop));
    ]
  in
  List.iter
    (fun test ->
      let instances = Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-28s %12.1f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
        results)
    tests

(* Machine-readable telemetry: one JSON file per bench run with the
   suite parameters, per-configuration aggregate metrics (the numbers
   behind Tables 1-2), and per-stage wall times from the span totals of
   the instrumented sweep. Consumers: CI trend tracking, plotting. *)
let bench_json ~path ?n () =
  let loop_count = match n with Some n -> n | None -> Workload.Suite.size in
  let sweep = runs_for_obs ~n:loop_count () in
  let runs = sweep.sweep_runs and ideal_ipc = sweep.sweep_ipc and obs = sweep.sweep_obs in
  let num x = Obs.Json.Num x in
  let int_num x = Obs.Json.Num (float_of_int x) in
  let config_json (r : Core.Experiment.run) =
    Obs.Json.Obj
      [
        ("label", Obs.Json.Str r.config.label);
        ("clusters", int_num r.config.clusters);
        ("copy_model", Obs.Json.Str (Mach.Machine.copy_model_name r.config.copy_model));
        ("loops_ok", int_num (List.length r.metrics));
        ("failures", int_num (List.length r.failures));
        ("mean_ipc_clustered", num (Core.Metrics.mean_ipc_clustered r.metrics));
        ("arith_mean_degradation", num (Core.Metrics.arithmetic_mean_degradation r.metrics));
        ("harmonic_mean_degradation", num (Core.Metrics.harmonic_mean_degradation r.metrics));
        ("pct_no_degradation", num (Core.Metrics.pct_no_degradation r.metrics));
      ]
  in
  (* Per-stage duration quantiles: every span of the sweep lands in a
     log-linear histogram keyed by stage name, so the telemetry shows
     not just where the time went but how it was distributed — a stage
     whose p99 dwarfs its p50 has outlier loops worth tracing. *)
  let stage_hists : (string, Obs.Histogram.t) Hashtbl.t = Hashtbl.create 16 in
  Obs.Trace.iter_spans
    (fun ~depth:_ s ->
      let h =
        match Hashtbl.find_opt stage_hists s.Obs.Trace.name with
        | Some h -> h
        | None ->
            let h = Obs.Histogram.make () in
            Hashtbl.add stage_hists s.Obs.Trace.name h;
            h
      in
      Obs.Histogram.record h (Obs.Trace.duration s *. 1000.0))
    obs;
  let stage_json (name, total, calls) =
    let quantiles =
      match Hashtbl.find_opt stage_hists name with
      | Some h when not (Obs.Histogram.is_empty h) ->
          [
            ("p50_ms", num (Obs.Histogram.p50 h));
            ("p99_ms", num (Obs.Histogram.p99 h));
            ("max_ms", num (Obs.Histogram.max_value h));
          ]
      | _ -> []
    in
    Obs.Json.Obj
      ([
         ("name", Obs.Json.Str name);
         ("total_s", num total);
         ("calls", int_num calls);
       ]
      @ quantiles)
  in
  let doc =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Str "rbp-bench/1");
        ("seed", int_num suite_seed);
        ("loops", int_num loop_count);
        ("ideal_ipc", num ideal_ipc);
        ("configs", Obs.Json.List (List.map config_json runs));
        ("stages", Obs.Json.List (List.map stage_json (Obs.Trace.totals_by_name obs)));
        (* Additive engine telemetry: older rbp-bench/1 consumers ignore
           unknown fields; perfdiff reports but never gates on them. *)
        ("jobs", int_num (effective_jobs ()));
        ("cache_hits", int_num sweep.sweep_hits);
        ("wall_s", num sweep.sweep_wall);
      ]
  in
  let oc = open_out path in
  output_string oc (Obs.Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" path

let usage () =
  prerr_endline
    "usage: main.exe [-j N] [--no-cache] [--cache-dir DIR] \
     [table1|table2|fig5|fig6|fig7|ablation|wholeprog|schedulers\
     |latency|registers|timing|quick|quick-json [PATH]|json]";
  exit 2

let () =
  let rec strip acc = function
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n -> jobs := n; strip acc rest
        | None -> usage ())
    | [ "-j" ] -> usage ()
    | "--no-cache" :: rest ->
        use_cache := false;
        strip acc rest
    | "--cache-dir" :: dir :: rest ->
        cache_dir := dir;
        strip acc rest
    | [ "--cache-dir" ] -> usage ()
    | a :: rest -> strip (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip [] (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [ "table1" ] -> table1 ()
  | [ "table2" ] -> table2 ()
  | [ "fig5" ] -> figure ~clusters:2 ~number:5 ()
  | [ "fig6" ] -> figure ~clusters:4 ~number:6 ()
  | [ "fig7" ] -> figure ~clusters:8 ~number:7 ()
  | [ "ablation" ] -> ablation ()
  | [ "wholeprog" ] -> wholeprog ()
  | [ "schedulers" ] -> schedulers ()
  | [ "latency" ] -> latency_sweep ()
  | [ "registers" ] -> registers ()
  | [ "lowered" ] -> lowered ()
  | [ "specialized" ] -> specialized ()
  | [ "distribute" ] -> distribute ()
  | [ "timing" ] -> timing ()
  | [ "quick" ] ->
      table1 ~n:32 ();
      table2 ~n:32 ();
      bench_json ~path:"BENCH_quick.json" ~n:32 ()
  | [ "quick-json" ] -> bench_json ~path:"BENCH_quick.json" ~n:32 ()
  | [ "quick-json"; path ] -> bench_json ~path ~n:32 ()
  | [ "json" ] -> bench_json ~path:"BENCH_pipeline.json" ()
  | [] ->
      table1 ();
      table2 ();
      figure ~clusters:2 ~number:5 ();
      figure ~clusters:4 ~number:6 ();
      figure ~clusters:8 ~number:7 ();
      ablation ();
      wholeprog ();
      schedulers ();
      latency_sweep ();
      registers ();
      lowered ();
      specialized ();
      distribute ();
      timing ();
      bench_json ~path:"BENCH_pipeline.json" ()
  | _ -> usage ()
