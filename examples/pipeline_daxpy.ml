(* Software-pipeline a daxpy-like kernel (y[i] = y[i] + a*x[i], unrolled
   four ways) on the paper's 16-wide machine grouped as 4 clusters of 4
   functional units, under both copy models. Prints the ideal and
   partitioned kernels, the bank assignment, and the degradation. *)

let daxpy_unroll4 () =
  let b = Ir.Builder.create () in
  let f = Mach.Rclass.Float in
  let a = Ir.Builder.fresh ~name:"a" b f in
  for k = 0 to 3 do
    let x = Ir.Builder.load b f (Ir.Addr.make ~offset:k ~stride:4 "x") in
    let y = Ir.Builder.load b f (Ir.Addr.make ~offset:k ~stride:4 "y") in
    let ax = Ir.Builder.binop b Mach.Opcode.Mul f a x in
    let s = Ir.Builder.binop b Mach.Opcode.Add f y ax in
    Ir.Builder.store b f (Ir.Addr.make ~offset:k ~stride:4 "y") s
  done;
  Ir.Builder.loop b ~name:"daxpy-u4" ()

let run copy_model =
  let machine = Mach.Machine.paper_clustered ~clusters:4 ~copy_model in
  let loop = daxpy_unroll4 () in
  match Partition.Driver.pipeline ~machine loop with
  | Error e -> Format.printf "FAILED: %s@." (Verify.Stage_error.to_string e)
  | Ok r ->
      Format.printf "=== %a ===@." Mach.Machine.pp machine;
      Format.printf "--- ideal kernel ---@.%a@." Sched.Kernel.pp r.ideal.Sched.Modulo.kernel;
      Format.printf "--- bank assignment ---@.%a@." Partition.Assign.pp r.assignment;
      Format.printf "--- rewritten body (%d copies) ---@.%a@." r.n_copies Ir.Loop.pp r.rewritten;
      Format.printf "--- clustered kernel ---@.%a@."
        Sched.Kernel.pp r.clustered.Sched.Modulo.kernel;
      Format.printf
        "ideal II = %d, clustered II = %d, degradation = %.0f, IPC %.2f -> %.2f@.@."
        r.ideal.Sched.Modulo.ii r.clustered.Sched.Modulo.ii r.degradation r.ipc_ideal
        r.ipc_clustered

let () =
  run Mach.Machine.Embedded;
  run Mach.Machine.Copy_unit
