(* Step 5 of the framework: per-bank Chaitin/Briggs register assignment.
   Pipelines a complex-multiply kernel on the 4x4 machine, allocates each
   bank's registers, then shrinks the banks until spill code appears, to
   show the colour/spill/retry loop working. *)

let () =
  let loop = Workload.Kernels.cmul ~unroll:4 in
  let base = Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Embedded in
  match Partition.Driver.pipeline ~machine:base loop with
  | Error e ->
      prerr_endline (Verify.Stage_error.to_string e);
      exit 1
  | Ok r ->
      Format.printf "loop %s partitioned: II %d -> %d, %d copies@.@." (Ir.Loop.name loop)
        r.Partition.Driver.ideal.Sched.Modulo.ii r.Partition.Driver.clustered.Sched.Modulo.ii
        r.Partition.Driver.n_copies;
      List.iter
        (fun regs_per_bank ->
          let machine =
            Mach.Machine.make ~regs_per_bank ~clusters:4 ~fus_per_cluster:4
              ~copy_model:Mach.Machine.Embedded ()
          in
          match
            Regalloc.Alloc.allocate_loop ~machine ~assignment:r.Partition.Driver.assignment
              r.Partition.Driver.rewritten
          with
          | Error e ->
              Format.printf "%2d regs/bank: %s@." regs_per_bank
                (Verify.Stage_error.to_string e)
          | Ok a ->
              Format.printf
                "%2d regs/bank: %d round(s), %d spills, pressure per bank [%s]@."
                regs_per_bank a.Regalloc.Alloc.rounds a.Regalloc.Alloc.spill_count
                (String.concat "; "
                   (Array.to_list (Array.map string_of_int a.Regalloc.Alloc.pressure)));
              if regs_per_bank = 32 then begin
                Format.printf "@.final mapping at 32 regs/bank:@.";
                Ir.Vreg.Map.iter
                  (fun reg (bank, idx) ->
                    Format.printf "  %-10s -> R%d.%d@." (Ir.Vreg.to_string reg) bank idx)
                  a.Regalloc.Alloc.mapping;
                Format.printf "@."
              end)
        [ 32; 6; 4; 3; 2 ]
