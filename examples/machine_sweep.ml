(* Sweep one loop across every paper machine configuration and print the
   achieved II, degradation, copy count and IPC side by side — a compact
   view of the Table 1/Table 2 trade-off on a single kernel. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "hydro-u4" in
  let loop =
    match Workload.Suite.by_name name with
    | Some l -> l
    | None ->
        Printf.eprintf "unknown suite loop %s\n" name;
        exit 1
  in
  Format.printf "sweeping %s (%d ops) over the 16-wide cluster configurations@.@."
    (Ir.Loop.name loop) (Ir.Loop.size loop);
  let t =
    Util.Table.create ~title:"Machine sweep"
      ~header:[ "machine"; "ideal II"; "II"; "degradation"; "copies"; "IPC" ]
  in
  List.iter
    (fun (clusters, model) ->
      let machine = Mach.Machine.paper_clustered ~clusters ~copy_model:model in
      match Partition.Driver.pipeline ~machine loop with
      | Error e -> Format.printf "%s: FAILED (%s)@." machine.Mach.Machine.name
            (Verify.Stage_error.to_string e)
      | Ok r ->
          Util.Table.add_row t
            [
              machine.Mach.Machine.name;
              string_of_int r.Partition.Driver.ideal.Sched.Modulo.ii;
              string_of_int r.Partition.Driver.clustered.Sched.Modulo.ii;
              Util.Table.cell_float ~decimals:0 r.Partition.Driver.degradation;
              string_of_int r.Partition.Driver.n_copies;
              Util.Table.cell_float ~decimals:2 r.Partition.Driver.ipc_clustered;
            ])
    [
      (2, Mach.Machine.Embedded); (2, Mach.Machine.Copy_unit);
      (4, Mach.Machine.Embedded); (4, Mach.Machine.Copy_unit);
      (8, Mach.Machine.Embedded); (8, Mach.Machine.Copy_unit);
    ];
  Util.Table.print t
