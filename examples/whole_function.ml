(* Whole-function partitioning: the global RCG is built across every
   basic block, so a value defined in the entry block and consumed inside
   a loop nest gets one home bank for the whole function — the property
   the paper claims over loop-only approaches (Section 6.3). *)

let () =
  let f = Mach.Rclass.Float in
  let b = Ir.Builder.create () in
  (* entry: load two parameters *)
  let scale = Ir.Builder.load ~name:"scale" b f (Ir.Addr.scalar "scale") in
  let bias = Ir.Builder.load ~name:"bias" b f (Ir.Addr.scalar "bias") in
  (* hot inner block (depth 2): y[i] = scale*x[i] + bias, unrolled twice *)
  Ir.Builder.start_block ~depth:2 b "inner";
  for j = 0 to 1 do
    let x = Ir.Builder.load b f (Ir.Addr.make ~offset:j ~stride:2 "x") in
    let sx = Ir.Builder.binop b Mach.Opcode.Mul f scale x in
    let y = Ir.Builder.binop b Mach.Opcode.Add f sx bias in
    Ir.Builder.store b f (Ir.Addr.make ~offset:j ~stride:2 "y") y
  done;
  (* cold exit block: store a checksum-ish value *)
  Ir.Builder.start_block b "exit";
  let sum = Ir.Builder.binop b Mach.Opcode.Add f scale bias in
  Ir.Builder.store b f (Ir.Addr.scalar "checksum") sum;
  let fn =
    Ir.Builder.func b ~name:"scale_bias" ~edges:[ ("entry", "inner"); ("inner", "exit") ]
  in
  Format.printf "%a@." Ir.Func.pp fn;

  List.iter
    (fun clusters ->
      let machine =
        Mach.Machine.paper_clustered ~clusters ~copy_model:Mach.Machine.Embedded
      in
      match Partition.Func_driver.pipeline ~machine fn with
      | Error e -> Format.printf "%s: FAILED (%s)@." machine.Mach.Machine.name
            (Verify.Stage_error.to_string e)
      | Ok r ->
          Format.printf
            "%-14s degradation %.1f (weighted cycles %.0f -> %.0f), %d copies@."
            machine.Mach.Machine.name r.Partition.Func_driver.degradation
            r.Partition.Func_driver.ideal_cycles r.Partition.Func_driver.clustered_cycles
            r.Partition.Func_driver.n_copies;
          List.iter
            (fun (br : Partition.Func_driver.block_result) ->
              Format.printf "    %-8s depth %d: %d -> %d cycles, %d copies@." br.label
                br.depth br.ideal_len br.clustered_len br.n_copies)
            r.Partition.Func_driver.blocks)
    [ 2; 4; 8 ]
