# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json doc clean quickstart experiment lint stress trace

all: build

build:
	dune build @all

test:
	dune runtest

# CI-style one-command verification: the full pipeline with independent
# checks at every stage boundary, over every example IR file.
lint:
	@for f in examples/*.ir; do \
	  echo "== $$f"; \
	  dune exec bin/rbp.exe -- lint $$f || exit 1; \
	done

# Deterministic fault-injection sweep through the resilient driver:
# 200 seeded trials, Verify as the oracle. Exit 0 = every trial either
# produced verified code or failed with a clean structured error.
stress:
	dune exec bin/rbp.exe -- stress --seed 1995 --trials 200

bench:
	dune exec bench/main.exe

# Machine-readable bench telemetry only: writes BENCH_pipeline.json
# (suite means, failure counts, per-stage wall times) without the
# human-readable tables.
bench-json:
	dune exec bench/main.exe json

# Deterministic span tree for one loop (override LOOP/CLUSTERS to taste):
# the quickest way to see where pipeline time goes.
LOOP ?= daxpy-u4
CLUSTERS ?= 4
trace:
	dune exec bin/rbp.exe -- trace $(LOOP) -c $(CLUSTERS) --deterministic

quickstart:
	dune exec examples/quickstart.exe

experiment:
	dune exec bin/rbp.exe -- experiment

doc:
	dune build @doc

clean:
	dune clean
