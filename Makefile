# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench doc clean quickstart experiment lint stress

all: build

build:
	dune build @all

test:
	dune runtest

# CI-style one-command verification: the full pipeline with independent
# checks at every stage boundary, over every example IR file.
lint:
	@for f in examples/*.ir; do \
	  echo "== $$f"; \
	  dune exec bin/rbp.exe -- lint $$f || exit 1; \
	done

# Deterministic fault-injection sweep through the resilient driver:
# 200 seeded trials, Verify as the oracle. Exit 0 = every trial either
# produced verified code or failed with a clean structured error.
stress:
	dune exec bin/rbp.exe -- stress --seed 1995 --trials 200

bench:
	dune exec bench/main.exe

quickstart:
	dune exec examples/quickstart.exe

experiment:
	dune exec bin/rbp.exe -- experiment

doc:
	dune build @doc

clean:
	dune clean
