# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench doc clean quickstart experiment

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

quickstart:
	dune exec examples/quickstart.exe

experiment:
	dune exec bin/rbp.exe -- experiment

doc:
	dune build @doc

clean:
	dune clean
