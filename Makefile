# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench doc clean quickstart experiment lint

all: build

build:
	dune build @all

test:
	dune runtest

# CI-style one-command verification: the full pipeline with independent
# checks at every stage boundary, over every example IR file.
lint:
	@for f in examples/*.ir; do \
	  echo "== $$f"; \
	  dune exec bin/rbp.exe -- lint $$f || exit 1; \
	done

bench:
	dune exec bench/main.exe

quickstart:
	dune exec examples/quickstart.exe

experiment:
	dune exec bin/rbp.exe -- experiment

doc:
	dune build @doc

clean:
	dune clean
