# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json bench-baseline perfdiff report check-report doc \
        clean quickstart experiment lint analyze stress trace serve-smoke bombard \
        metrics-check logs-check exact exact-baseline exact-perfdiff

all: build

build:
	dune build @all

test:
	dune runtest

# CI-style one-command verification: the full pipeline with independent
# checks at every stage boundary, over every example IR file.
lint:
	@for f in examples/*.ir; do \
	  echo "== $$f"; \
	  dune exec bin/rbp.exe -- lint $$f || exit 1; \
	done

# Engine parallelism passthrough: J=0 (the default) uses one domain per
# core; J=1 forces the exact serial path. Output is byte-identical for
# every J, so this is purely a wall-clock knob.
J ?= 0

# Translation validation of the DDG: the independent dataflow engine
# re-derives the dependence set of every suite loop and every example
# and diffs it edge-by-edge against Ddg.Graph. Any unsoundness finding
# (AN001/AN002) exits non-zero.
analyze:
	dune exec bin/rbp.exe -- analyze --diff-ddg -j $(J)
	@for f in examples/*.ir; do \
	  echo "== $$f"; \
	  dune exec bin/rbp.exe -- analyze --diff-ddg $$f || exit 1; \
	done

# Deterministic fault-injection sweep through the resilient driver:
# 200 seeded trials, Verify as the oracle. Exit 0 = every trial either
# produced verified code or failed with a clean structured error.
stress:
	dune exec bin/rbp.exe -- stress --seed 1995 --trials 200 -j $(J)

bench:
	dune exec bench/main.exe -- -j $(J)

# Machine-readable bench telemetry only: writes BENCH_pipeline.json
# (suite means, failure counts, per-stage wall times) without the
# human-readable tables.
bench-json:
	dune exec bench/main.exe -- json -j $(J)

# Refresh the checked-in perf-gate baseline (deterministic: no stage
# wall times, so an unchanged pipeline regenerates it byte-identically).
# Shows what would change before overwriting.
bench-baseline:
	dune exec bin/rbp.exe -- report -n 32 -f json --deterministic -o BENCH_baseline_new.json
	-diff -u bench/baseline/BENCH_quick.json BENCH_baseline_new.json
	mv BENCH_baseline_new.json bench/baseline/BENCH_quick.json

# The CI perf gate, runnable locally: reduced-suite telemetry compared
# against the checked-in baseline with per-metric thresholds.
perfdiff:
	dune exec bench/main.exe -- quick-json BENCH_quick.json -j $(J)
	dune exec bin/rbp.exe -- perfdiff bench/baseline/BENCH_quick.json BENCH_quick.json

# The exact branch-and-bound study: provably optimal II + bank assignment
# for every tractable suite loop (<= 12 registers), against the greedy
# heuristic, on all three paper geometries. Node-budgeted, so the output
# is byte-identical for every J.
exact:
	dune exec bin/rbp.exe -- exact -j $(J)

# Refresh the checked-in exact-study baseline (deterministic: the solver
# is node-budgeted, not clock-budgeted, so an unchanged solver
# regenerates it byte-identically). Shows what would change first.
exact-baseline:
	dune exec bin/rbp.exe -- exact -j $(J) --json BENCH_exact_new.json
	-diff -u bench/baseline/BENCH_exact.json BENCH_exact_new.json
	mv BENCH_exact_new.json bench/baseline/BENCH_exact.json

# The exact-study CI gate, runnable locally: regenerate the telemetry
# and compare it against the checked-in baseline (optimal counts must
# not drop, budgets must match, means must not move — the data is
# deterministic, so the gates are strict).
exact-perfdiff:
	dune exec bin/rbp.exe -- exact -j $(J) --json BENCH_exact.json
	dune exec bin/rbp.exe -- perfdiff bench/baseline/BENCH_exact.json BENCH_exact.json

# Regenerate the paper tables of EXPERIMENTS.md (full 211-loop suite)
# and verify the committed document still matches, byte for byte.
report:
	dune exec bin/rbp.exe -- report -j $(J)

check-report:
	dune exec bin/rbp.exe -- report -j $(J) --check EXPERIMENTS.md > /dev/null

# Deterministic span tree for one loop (override LOOP/CLUSTERS to taste):
# the quickest way to see where pipeline time goes.
LOOP ?= daxpy-u4
CLUSTERS ?= 4
trace:
	dune exec bin/rbp.exe -- trace $(LOOP) -c $(CLUSTERS) --deterministic

# The service smoke test: a faults-enabled daemon on a Unix socket,
# bombarded with a reduced suite from concurrent clients under every
# service fault, then drained with SIGTERM. Exit 0 = every request
# answered, zero protocol errors, serve metrics match local compiles.
SERVE_SOCK ?= /tmp/rbp-serve-smoke.sock
# Run the built binary directly: a backgrounded `dune exec` keeps the
# dune project lock for as long as the daemon lives, deadlocking the
# second `dune exec`.
serve-smoke: build
	@rm -f $(SERVE_SOCK)
	./_build/default/bin/rbp.exe serve --listen unix:$(SERVE_SOCK) --faults & \
	serve_pid=$$!; \
	./_build/default/bin/rbp.exe bombard unix:$(SERVE_SOCK) \
	  --loops 25 --clients 8 --faults all --check; \
	status=$$?; \
	kill -TERM $$serve_pid; wait $$serve_pid || status=1; \
	exit $$status

# The observability smoke test: bombard a --no-cache daemon (cache hits
# would leave the compile and per-rung histograms empty), scrape the
# Prometheus exposition with `rbp top --prom`, and validate it — every
# declared family has samples and every latency histogram is non-empty.
METRICS_SOCK ?= /tmp/rbp-metrics-check.sock
metrics-check: build
	@rm -f $(METRICS_SOCK)
	./_build/default/bin/rbp.exe serve --listen unix:$(METRICS_SOCK) --no-cache & \
	serve_pid=$$!; \
	./_build/default/bin/rbp.exe bombard unix:$(METRICS_SOCK) \
	  --loops 25 --clients 8; \
	status=$$?; \
	./_build/default/bin/rbp.exe top unix:$(METRICS_SOCK) --once --prom \
	  | sh tools/check_metrics.sh || status=1; \
	kill -TERM $$serve_pid; wait $$serve_pid || status=1; \
	exit $$status

# The forensics smoke test: a --log-json debug daemon bombarded with
# trace sampling, a mid-run flight scrape, a SIGTERM drain writing the
# final flight dump, then the JSONL log validated line by line (fixed
# key order, monotone timestamps, trace ids everywhere).
LOGS_SOCK ?= /tmp/rbp-logs-check.sock
LOGS_OUT ?= /tmp/rbp-logs-check
logs-check: build
	@rm -f $(LOGS_SOCK) $(LOGS_OUT).jsonl $(LOGS_OUT)-flight.json
	./_build/default/bin/rbp.exe serve --listen unix:$(LOGS_SOCK) \
	  --log-json --log-level debug --flight-out $(LOGS_OUT)-flight.json \
	  2> $(LOGS_OUT).jsonl & \
	serve_pid=$$!; \
	./_build/default/bin/rbp.exe bombard unix:$(LOGS_SOCK) \
	  --loops 10 --clients 4 --trace-sample 3 --check; \
	status=$$?; \
	./_build/default/bin/rbp.exe flight unix:$(LOGS_SOCK) --json > /dev/null \
	  || status=1; \
	kill -TERM $$serve_pid; wait $$serve_pid || status=1; \
	sh tools/check_logs.sh $(LOGS_OUT).jsonl || status=1; \
	test -s $(LOGS_OUT)-flight.json || { \
	  echo "logs-check: no flight dump written" >&2; status=1; }; \
	exit $$status

# The full bombardment: the whole 211-loop suite against a live daemon
# (start one with `rbp serve`), writing the rbp-bench/1 latency report.
BOMBARD_ADDR ?= unix:/tmp/rbp-serve.sock
bombard: build
	./_build/default/bin/rbp.exe bombard $(BOMBARD_ADDR) \
	  --clients 8 --faults all --check --json BENCH_serve.json

quickstart:
	dune exec examples/quickstart.exe

experiment:
	dune exec bin/rbp.exe -- experiment -j $(J)

doc:
	dune build @doc

clean:
	dune clean
