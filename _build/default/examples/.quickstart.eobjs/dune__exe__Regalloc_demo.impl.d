examples/regalloc_demo.ml: Array Format Ir List Mach Partition Regalloc Sched String Workload
