examples/scheduler_compare.mli:
