examples/retarget.mli:
