examples/pipeline_daxpy.ml: Format Ir Mach Partition Sched
