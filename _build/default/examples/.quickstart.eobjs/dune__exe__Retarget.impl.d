examples/retarget.ml: Format Ir Mach Partition Rcg
