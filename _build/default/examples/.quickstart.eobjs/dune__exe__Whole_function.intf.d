examples/whole_function.mli:
