examples/quickstart.ml: Ddg Format Hashtbl Ir Latency List Mach Machine Opcode Partition Rcg Rclass Sched
