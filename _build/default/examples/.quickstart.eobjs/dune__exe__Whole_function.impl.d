examples/whole_function.ml: Format Ir List Mach Partition
