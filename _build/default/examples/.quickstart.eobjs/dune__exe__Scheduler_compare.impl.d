examples/scheduler_compare.ml: Array Ddg Format Ir Mach Printf Regalloc Sched Sys Workload
