examples/machine_sweep.ml: Array Format Ir List Mach Partition Printf Sched Sys Util Workload
