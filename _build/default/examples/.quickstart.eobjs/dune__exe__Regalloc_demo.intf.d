examples/regalloc_demo.mli:
