examples/pipeline_daxpy.mli:
