examples/quickstart.mli:
