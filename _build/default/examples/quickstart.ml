(* Quickstart: the paper's Section 4.2 worked example, end to end.

   High-level statement:
     xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)

   1. Build the intermediate code of Figure 2 with the builder DSL.
   2. Produce the ideal schedule of Figure 1: 2-wide machine, unit
      latencies, one monolithic register bank -> 7 cycles.
   3. Build the register component graph, partition it for two
      single-FU clusters, insert cross-bank copies, and reschedule.
      The paper's hand partition costs 2 extra cycles (9 total); the
      greedy heuristic lands in the same neighbourhood. *)

let () =
  let open Mach in
  let b = Ir.Builder.create () in
  let f = Rclass.Float in
  let r1 = Ir.Builder.load ~name:"r1" b f (Ir.Addr.scalar "xvel") in
  let r2 = Ir.Builder.load ~name:"r2" b f (Ir.Addr.scalar "t") in
  let r3 = Ir.Builder.load ~name:"r3" b f (Ir.Addr.scalar "xaccel") in
  let r4 = Ir.Builder.load ~name:"r4" b f (Ir.Addr.scalar "xpos") in
  let r5 = Ir.Builder.binop ~name:"r5" b Opcode.Mul f r1 r2 in
  let r6 = Ir.Builder.binop ~name:"r6" b Opcode.Add f r4 r5 in
  let r7 = Ir.Builder.binop ~name:"r7" b Opcode.Mul f r3 r2 in
  let half = Ir.Builder.load ~name:"c2" b f (Ir.Addr.scalar "const2.0") in
  let r8 = Ir.Builder.binop ~name:"r8" b Opcode.Div f r2 half in
  let r9 = Ir.Builder.binop ~name:"r9" b Opcode.Mul f r7 r8 in
  let r10 = Ir.Builder.binop ~name:"r10" b Opcode.Add f r6 r9 in
  Ir.Builder.store b f (Ir.Addr.scalar "xpos") r10;
  let func = Ir.Builder.func b ~name:"example" ~edges:[] in
  let blk = Ir.Func.entry func in
  Format.printf "--- intermediate code (Figure 2) ---@.%a@." Ir.Block.pp blk;

  (* Ideal schedule: Figure 1. *)
  let ddg = Ddg.Graph.of_block ~latency:Latency.unit blk in
  let ideal_machine = Machine.ideal ~latency:Latency.unit ~width:2 () in
  let ideal = Sched.List_sched.ideal ~machine:ideal_machine ddg in
  Format.printf "--- ideal 2-wide schedule (Figure 1) ---@.%a@." Sched.Schedule.pp ideal;
  Format.printf "ideal length: %d cycles (paper: 7)@.@." (Sched.Schedule.issue_length ideal);

  (* Register component graph + greedy partition for 2 banks. *)
  let rcg = Rcg.Build.of_func ~machine:ideal_machine func in
  Format.printf "--- register component graph ---@.%a@." Rcg.Graph.pp rcg;
  let assignment = Partition.Greedy.partition ~banks:2 rcg in
  Format.printf "--- greedy partition ---@.%a@." Partition.Assign.pp assignment;

  (* Copies + clustered rescheduling: Figure 3's counterpart. *)
  let machine =
    Machine.make ~latency:Latency.unit ~clusters:2 ~fus_per_cluster:1
      ~copy_model:Machine.Embedded ()
  in
  let blk', assignment', n_copies =
    Partition.Copies.insert_block ~machine ~assignment ~fresh_vreg:100 ~fresh_op:100 blk
  in
  let ddg' = Ddg.Graph.of_block ~latency:Latency.unit blk' in
  let clusters = Hashtbl.create 16 in
  List.iter
    (fun op ->
      Hashtbl.replace clusters (Ir.Op.id op) (Partition.Assign.cluster_of_op assignment' op))
    (Ir.Block.ops blk');
  let sched =
    Sched.List_sched.schedule ~cluster_of:(Hashtbl.find clusters) ~machine ddg'
  in
  Format.printf "--- partitioned schedule, %d copies (cf. Figure 3) ---@.%a@." n_copies
    Sched.Schedule.pp sched;
  Format.printf "partitioned length: %d cycles (paper's hand partition: 9)@."
    (Sched.Schedule.issue_length sched)
