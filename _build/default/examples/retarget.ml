(* Retargetability: the RCG "abstracts away machine-dependent details
   into costs associated with the nodes and edges of the graph"
   (Section 4.1). This example models the paper's idiosyncratic
   architecture where an operation A = B op C requires A, B and C to sit
   in three *different* register banks, and furthermore pre-colours one
   operand to a specific bank — all expressed as RCG constraints, with no
   change to the partitioner. *)

let () =
  let f = Mach.Rclass.Float in
  let b = Ir.Builder.create () in
  let x = Ir.Builder.load ~name:"B" b f (Ir.Addr.scalar "in1") in
  let y = Ir.Builder.load ~name:"C" b f (Ir.Addr.scalar "in2") in
  let a = Ir.Builder.binop ~name:"A" b Mach.Opcode.Mul f x y in
  Ir.Builder.store b f (Ir.Addr.scalar "out") a;
  let loop = Ir.Builder.loop b ~name:"idiosyncratic" ~depth:1 () in

  let machine = Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Embedded in
  let rcg = Rcg.Build.of_loop ~machine loop in
  Format.printf "--- plain RCG (attraction keeps A,B,C together) ---@.%a@." Rcg.Graph.pp rcg;
  let plain = Partition.Greedy.partition ~banks:4 rcg in
  Format.printf "plain partition:@.%a@." Partition.Assign.pp plain;

  (* The idiosyncratic machine: A, B, C must live in distinct banks; B is
     architecturally tied to bank X = 1. *)
  Rcg.Graph.keep_apart rcg a x;
  Rcg.Graph.keep_apart rcg a y;
  Rcg.Graph.keep_apart rcg x y;
  Rcg.Graph.pin rcg x 1;
  let constrained = Partition.Greedy.partition ~banks:4 rcg in
  Format.printf "--- constrained partition (A,B,C apart; B pinned to bank 1) ---@.%a@."
    Partition.Assign.pp constrained;
  assert (Partition.Assign.bank constrained x = 1);
  assert (Partition.Assign.bank constrained a <> Partition.Assign.bank constrained x);
  assert (Partition.Assign.bank constrained a <> Partition.Assign.bank constrained y);
  assert (Partition.Assign.bank constrained x <> Partition.Assign.bank constrained y);

  (* The rest of the framework runs unchanged on the constrained result. *)
  let ins = Partition.Copies.insert_loop ~machine ~assignment:constrained loop in
  Format.printf "--- rewritten body (%d copies forced by the constraints) ---@.%a@."
    ins.Partition.Copies.n_copies Ir.Loop.pp ins.Partition.Copies.loop
