(* Rau iterative modulo scheduling vs Swing modulo scheduling on one
   loop: same II, different register footprints. Swing's backward
   placement pulls definitions toward their uses, shortening lifetimes —
   the Section 6.3 "lifetime-sensitive" contrast made concrete. *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "hydro-u2" in
  let loop =
    match Workload.Suite.by_name name with
    | Some l -> l
    | None ->
        Printf.eprintf "unknown suite loop %s\n" name;
        exit 1
  in
  let machine = Mach.Machine.paper_ideal in
  let ddg = Ddg.Graph.of_loop loop in
  let show label outcome =
    match outcome with
    | None -> Format.printf "%s: scheduling failed@." label
    | Some (o : Sched.Modulo.outcome) ->
        let kernel = o.Sched.Modulo.kernel in
        let maxlive = Sched.Pressure.max_live ~kernel ~loop in
        let regs =
          (Regalloc.Kernel_alloc.requirements ~kernel ~loop ~banks:1 ~bank_of:(fun _ -> 0))
            .Regalloc.Kernel_alloc.total
        in
        Format.printf "=== %s: II=%d, MaxLive=%d, registers needed=%d ===@.%a@." label
          o.Sched.Modulo.ii maxlive regs Sched.Kernel.pp kernel
  in
  Format.printf "loop %s (%d ops), MinII=%d@.@." (Ir.Loop.name loop) (Ir.Loop.size loop)
    (Ddg.Minii.min_ii ~width:16 ddg);
  show "Rau IMS" (Sched.Modulo.ideal ~machine ddg);
  show "Swing" (Sched.Swing.ideal ~machine ddg)
