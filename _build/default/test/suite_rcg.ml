open Testlib

let f = Mach.Rclass.Float

let weights_tests =
  [
    case "critical-boost" (fun () ->
        let w = Rcg.Weights.default in
        let crit = Rcg.Weights.contribution w ~flexibility:1 ~depth:1 ~density:4.0 in
        let lax = Rcg.Weights.contribution w ~flexibility:4 ~depth:1 ~density:4.0 in
        (* critical: 10*4*2 = 80; flexible: 10*4/4 = 10 *)
        check (Alcotest.float 1e-9) "crit" 80.0 crit;
        check (Alcotest.float 1e-9) "lax" 10.0 lax);
    case "depth-scales-exponentially" (fun () ->
        let w = Rcg.Weights.default in
        let d1 = Rcg.Weights.contribution w ~flexibility:2 ~depth:1 ~density:1.0 in
        let d2 = Rcg.Weights.contribution w ~flexibility:2 ~depth:2 ~density:1.0 in
        check (Alcotest.float 1e-9) "10x" (d1 *. 10.0) d2);
    case "rejects-flexibility-0" (fun () ->
        Alcotest.check_raises "flex0"
          (Invalid_argument "Weights.contribution: flexibility must be >= 1") (fun () ->
            ignore
              (Rcg.Weights.contribution Rcg.Weights.default ~flexibility:0 ~depth:1
                 ~density:1.0)));
    case "flat-ignores-structure" (fun () ->
        let w = Rcg.Weights.flat in
        let a = Rcg.Weights.contribution w ~flexibility:1 ~depth:3 ~density:2.0 in
        let b = Rcg.Weights.contribution w ~flexibility:1 ~depth:0 ~density:2.0 in
        check (Alcotest.float 1e-9) "equal" a b);
  ]

let graph_tests =
  [
    case "edge-weights-accumulate" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) 2.0;
        Rcg.Graph.add_edge_weight g (vreg 2) (vreg 1) 3.0;
        check (Alcotest.float 1e-9) "5" 5.0 (Rcg.Graph.edge_weight g (vreg 1) (vreg 2)));
    case "self-edges-ignored" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 1) 2.0;
        check Alcotest.int "no edge" 0 (Rcg.Graph.edge_count g));
    case "pins" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.pin g (vreg 1) 2;
        check Alcotest.(option int) "pinned" (Some 2) (Rcg.Graph.pinned g (vreg 1));
        check Alcotest.(option int) "unpinned" None (Rcg.Graph.pinned g (vreg 2));
        Alcotest.check_raises "conflict"
          (Invalid_argument "Rcg.pin: f1 already pinned to bank 2") (fun () ->
            Rcg.Graph.pin g (vreg 1) 3));
    case "keep-apart-infinitely-negative" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.keep_apart g (vreg 1) (vreg 2);
        check Alcotest.bool "very negative" true (Rcg.Graph.edge_weight g (vreg 1) (vreg 2) < -1e17));
    case "by-weight-desc" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_node_weight g (vreg 1) 1.0;
        Rcg.Graph.add_node_weight g (vreg 2) 5.0;
        Rcg.Graph.add_node_weight g (vreg 3) 3.0;
        check Alcotest.(list int) "order" [ 2; 3; 1 ]
          (List.map Ir.Vreg.id (Rcg.Graph.by_weight_desc g)));
    case "components" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) 1.0;
        Rcg.Graph.add_register g (vreg 5);
        check Alcotest.int "2 comps" 2 (List.length (Rcg.Graph.components g)));
    case "mean-positive-edge-weight-ignores-negative" (fun () ->
        let g = Rcg.Graph.create () in
        Rcg.Graph.add_edge_weight g (vreg 1) (vreg 2) 4.0;
        Rcg.Graph.add_edge_weight g (vreg 3) (vreg 4) (-10.0);
        check (Alcotest.float 1e-9) "4" 4.0 (Rcg.Graph.mean_positive_edge_weight g));
  ]

(* The paper's Figure 2 example: check connectivity structure of the RCG
   built from its intermediate code. *)
let paper_example_loop () =
  let b = Ir.Builder.create () in
  let r1 = Ir.Builder.load ~name:"r1" b f (Ir.Addr.scalar "xvel") in
  let r2 = Ir.Builder.load ~name:"r2" b f (Ir.Addr.scalar "t") in
  let r3 = Ir.Builder.load ~name:"r3" b f (Ir.Addr.scalar "xaccel") in
  let r4 = Ir.Builder.load ~name:"r4" b f (Ir.Addr.scalar "xpos") in
  let r5 = Ir.Builder.binop ~name:"r5" b Mach.Opcode.Mul f r1 r2 in
  let r6 = Ir.Builder.binop ~name:"r6" b Mach.Opcode.Add f r4 r5 in
  let r7 = Ir.Builder.binop ~name:"r7" b Mach.Opcode.Mul f r3 r2 in
  let c2 = Ir.Builder.load ~name:"c2" b f (Ir.Addr.scalar "two") in
  let r8 = Ir.Builder.binop ~name:"r8" b Mach.Opcode.Div f r2 c2 in
  let r9 = Ir.Builder.binop ~name:"r9" b Mach.Opcode.Mul f r7 r8 in
  let r10 = Ir.Builder.binop ~name:"r10" b Mach.Opcode.Add f r6 r9 in
  Ir.Builder.store b f (Ir.Addr.scalar "xout") r10;
  (Ir.Builder.func b ~name:"ex" ~edges:[], (r1, r2, r5, r6, r9, r10))

let build_tests =
  [
    case "paper-example-attractions" (fun () ->
        let fn, (r1, r2, r5, r6, r9, r10) = paper_example_loop () in
        let g = Rcg.Build.of_func ~machine:(Mach.Machine.ideal ~width:2 ()) fn in
        (* figure 2: r5 adjacent to r1 and r2; r10 adjacent to r6 and r9 *)
        check Alcotest.bool "r5-r1" true (Rcg.Graph.edge_weight g r5 r1 > 0.0);
        check Alcotest.bool "r5-r2" true (Rcg.Graph.edge_weight g r5 r2 > 0.0);
        check Alcotest.bool "r10-r6" true (Rcg.Graph.edge_weight g r10 r6 > 0.0);
        check Alcotest.bool "r10-r9" true (Rcg.Graph.edge_weight g r10 r9 > 0.0);
        (* r1 and r6 never co-occur in an op *)
        check Alcotest.bool "r1-r6 not attracted" true (Rcg.Graph.edge_weight g r1 r6 <= 0.0));
    case "every-register-in-graph" (fun () ->
        List.iter
          (fun loop ->
            let g = Rcg.Build.of_loop ~machine:ideal16 loop in
            Ir.Vreg.Set.iter
              (fun r ->
                check Alcotest.bool (Ir.Vreg.to_string r) true
                  (List.exists (Ir.Vreg.equal r) (Rcg.Graph.registers g)))
              (Ir.Loop.vregs loop))
          (sample_loops ()));
    case "def-def-same-instruction-repels" (fun () ->
        (* two independent loads land in the same ideal instruction *)
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        let y = Ir.Builder.load b f (Ir.Addr.element "y") in
        let s = Ir.Builder.binop b Mach.Opcode.Add f x y in
        Ir.Builder.store b f (Ir.Addr.element "z") s;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        check Alcotest.bool "x-y repelled" true (Rcg.Graph.edge_weight g x y < 0.0));
    case "no-repulsion-ablation" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        let y = Ir.Builder.load b f (Ir.Addr.element "y") in
        let s = Ir.Builder.binop b Mach.Opcode.Add f x y in
        Ir.Builder.store b f (Ir.Addr.element "z") s;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let g = Rcg.Build.of_loop ~weights:Rcg.Weights.no_repulsion ~machine:ideal16 loop in
        check Alcotest.bool "no negative edge" true (Rcg.Graph.edge_weight g x y >= 0.0));
    case "node-weights-positive-when-connected" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        check Alcotest.bool "some node weight > 0" true
          (List.exists (fun r -> Rcg.Graph.node_weight g r > 0.0) (Rcg.Graph.registers g)));
    case "deeper-loop-weighs-more" (fun () ->
        let mk depth =
          let b = Ir.Builder.create () in
          let x = Ir.Builder.load b f (Ir.Addr.element "x") in
          let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
          Ir.Builder.store b f (Ir.Addr.element "y") y;
          Ir.Builder.loop b ~name:"t" ~depth ()
        in
        let g1 = Rcg.Build.of_loop ~machine:ideal16 (mk 1) in
        let g2 = Rcg.Build.of_loop ~machine:ideal16 (mk 2) in
        let sum g =
          List.fold_left (fun acc r -> acc +. Rcg.Graph.node_weight g r) 0.0
            (Rcg.Graph.registers g)
        in
        check Alcotest.bool "10x heavier" true (sum g2 > (sum g1 *. 9.0)));
  ]

let suite =
  [ ("rcg.weights", weights_tests); ("rcg.graph", graph_tests); ("rcg.build", build_tests) ]
