open Testlib

let latency_tests =
  let open Mach in
  [
    case "paper-table-section-6.1" (fun () ->
        let checks =
          [
            (Opcode.Copy, Rclass.Int, 2);
            (Opcode.Copy, Rclass.Float, 3);
            (Opcode.Load, Rclass.Int, 2);
            (Opcode.Load, Rclass.Float, 2);
            (Opcode.Store, Rclass.Float, 4);
            (Opcode.Mul, Rclass.Int, 5);
            (Opcode.Div, Rclass.Int, 12);
            (Opcode.Add, Rclass.Int, 1);
            (Opcode.Shl, Rclass.Int, 1);
            (Opcode.Mul, Rclass.Float, 2);
            (Opcode.Div, Rclass.Float, 2);
            (Opcode.Add, Rclass.Float, 2);
            (Opcode.Sub, Rclass.Float, 2);
          ]
        in
        List.iter
          (fun (op, cls, expect) ->
            check Alcotest.int
              (Printf.sprintf "%s.%s" (Opcode.to_string op) (Rclass.to_string cls))
              expect (Latency.paper op cls))
          checks);
    case "unit-table" (fun () ->
        List.iter
          (fun op ->
            List.iter
              (fun cls -> check Alcotest.int "1" 1 (Latency.unit op cls))
              Rclass.all)
          Opcode.all);
    case "override" (fun () ->
        let t = Latency.override Latency.paper [ (Opcode.Mul, Rclass.Int, 7) ] in
        check Alcotest.int "overridden" 7 (t Opcode.Mul Rclass.Int);
        check Alcotest.int "others-intact" 12 (t Opcode.Div Rclass.Int));
    case "max-latency-paper" (fun () ->
        check Alcotest.int "int div dominates" 12 (Latency.max_latency Latency.paper));
    case "all-latencies-positive" (fun () ->
        List.iter
          (fun op ->
            List.iter
              (fun cls ->
                check Alcotest.bool "positive" true (Latency.paper op cls >= 1))
              Rclass.all)
          Opcode.all);
  ]

let opcode_tests =
  let open Mach in
  [
    case "memory-classification" (fun () ->
        check Alcotest.bool "load" true (Opcode.is_memory Opcode.Load);
        check Alcotest.bool "store" true (Opcode.is_memory Opcode.Store);
        check Alcotest.bool "add" false (Opcode.is_memory Opcode.Add));
    case "copy-classification" (fun () ->
        check Alcotest.bool "copy" true (Opcode.is_copy Opcode.Copy);
        check Alcotest.bool "load" false (Opcode.is_copy Opcode.Load));
    case "dest-classification" (fun () ->
        check Alcotest.bool "store" false (Opcode.has_dest Opcode.Store);
        check Alcotest.bool "nop" false (Opcode.has_dest Opcode.Nop);
        check Alcotest.bool "add" true (Opcode.has_dest Opcode.Add));
    case "arity" (fun () ->
        check Alcotest.int "nop" 0 (Opcode.arity Opcode.Nop);
        check Alcotest.int "neg" 1 (Opcode.arity Opcode.Neg);
        check Alcotest.int "add" 2 (Opcode.arity Opcode.Add);
        check Alcotest.int "select" 3 (Opcode.arity Opcode.Select));
    case "to-string-distinct" (fun () ->
        let names = List.map Opcode.to_string Opcode.all in
        check Alcotest.int "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
  ]

let machine_tests =
  let open Mach in
  [
    case "paper-clustered-geometry" (fun () ->
        List.iter
          (fun clusters ->
            let m = Machine.paper_clustered ~clusters ~copy_model:Machine.Embedded in
            check Alcotest.int "width" 16 (Machine.width m);
            check Alcotest.int "clusters" clusters m.Machine.clusters)
          [ 2; 4; 8 ]);
    case "copy-ports-log2" (fun () ->
        (* the prose fixes 1 port at N=2 and 3 ports at N=8; log2 interpolates *)
        let ports n =
          (Machine.paper_clustered ~clusters:n ~copy_model:Machine.Copy_unit).Machine.copy_ports
        in
        check Alcotest.int "N=2" 1 (ports 2);
        check Alcotest.int "N=4" 2 (ports 4);
        check Alcotest.int "N=8" 3 (ports 8));
    case "busses-equal-clusters" (fun () ->
        let m = Machine.paper_clustered ~clusters:4 ~copy_model:Machine.Copy_unit in
        check Alcotest.int "busses" 4 m.Machine.busses);
    case "ideal-is-monolithic" (fun () ->
        check Alcotest.bool "mono" true (Machine.is_monolithic ideal16);
        check Alcotest.bool "not" false (Machine.is_monolithic m4x4e));
    case "copy-latency" (fun () ->
        check Alcotest.int "int" 2 (Machine.copy_latency m4x4e Rclass.Int);
        check Alcotest.int "float" 3 (Machine.copy_latency m4x4e Rclass.Float));
    case "valid-cluster" (fun () ->
        check Alcotest.bool "0" true (Machine.valid_cluster m4x4e 0);
        check Alcotest.bool "3" true (Machine.valid_cluster m4x4e 3);
        check Alcotest.bool "4" false (Machine.valid_cluster m4x4e 4);
        check Alcotest.bool "-1" false (Machine.valid_cluster m4x4e (-1)));
    case "rejects-bad-geometry" (fun () ->
        Alcotest.check_raises "clusters 0"
          (Invalid_argument "Machine.make: clusters must be >= 1") (fun () ->
            ignore (Machine.make ~clusters:0 ~fus_per_cluster:4 ~copy_model:Machine.Embedded ()));
        Alcotest.check_raises "clusters 3"
          (Invalid_argument "Machine.paper_clustered: clusters must divide 16") (fun () ->
            ignore (Machine.paper_clustered ~clusters:3 ~copy_model:Machine.Embedded)));
    case "custom-overrides" (fun () ->
        let m =
          Machine.make ~copy_ports:5 ~busses:9 ~regs_per_bank:17 ~clusters:2
            ~fus_per_cluster:2 ~copy_model:Machine.Copy_unit ()
        in
        check Alcotest.int "ports" 5 m.Machine.copy_ports;
        check Alcotest.int "busses" 9 m.Machine.busses;
        check Alcotest.int "regs" 17 m.Machine.regs_per_bank);
  ]

let suite =
  [ ("mach.latency", latency_tests); ("mach.opcode", opcode_tests); ("mach.machine", machine_tests) ]
