  $ rbp show vcopy-u1
  $ rbp pipeline vcopy-u1 -c 2 | tail -n 1
  $ rbp show no-such-loop
  $ cat > saxpy.ir <<'IREOF'
  > loop saxpy depth 1 trip 100
  >   load.f x0, x[1*i]
  >   load.f y0, y[1*i]
  >   mul.f ax, a, x0
  >   add.f s0, y0, ax
  >   store.f y[1*i], s0
  > IREOF
  $ rbp ddg saxpy.ir | head -n 3
  $ printf '  bogus a, b\n' > bad.ir
  $ rbp show bad.ir
