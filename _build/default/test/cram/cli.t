The CLI inspects suite loops:

  $ rbp show vcopy-u1
  loop vcopy-u1 (depth 1, 2 ops):
    load.f f1, x[1*i]
    store.f y[1*i], f1
  
  MinII (16-wide) = 1   RecMII = 1   critical path = 6 cycles
  
  --- ideal 16-wide kernel ---
  kernel (II=1, 3 stages, 2 ops):
     0: load.f f1, x[1*i] | store.f y[1*i], f1
  

Pipelining a tiny loop on a 2-cluster machine:

  $ rbp pipeline vcopy-u1 -c 2 | tail -n 1
  degradation 100 (100 = ideal), IPC 2.00 -> 2.00

Unknown loops are reported helpfully:

  $ rbp show no-such-loop
  rbp: unknown loop "no-such-loop": not a file and not a suite loop (try `rbp list`)
  [1]

Textual IR files parse and pipeline:

  $ cat > saxpy.ir <<'IREOF'
  > loop saxpy depth 1 trip 100
  >   load.f x0, x[1*i]
  >   load.f y0, y[1*i]
  >   mul.f ax, a, x0
  >   add.f s0, y0, ax
  >   store.f y[1*i], s0
  > IREOF
  $ rbp ddg saxpy.ir | head -n 3
  ddg (5 ops, 5 edges):
    load.f x0, x[1*i]
      -> op2 flow(lat=2,dist=0)

Parse errors carry line numbers:

  $ printf '  bogus a, b\n' > bad.ir
  $ rbp show bad.ir
  rbp: bad.ir: line 1: unknown opcode "bogus"
  [1]
