Partitioner comparison on one loop:

  $ rbp compare vcopy-u2 -c 2 | head -n 6
  Partitioners on vcopy-u2, 2x8-embedded
  +---------------------+----------+----+-------------+--------+------+
  | partitioner         | ideal II | II | degradation | copies | IPC  |
  +=====================+==========+====+=============+========+======+
  | greedy (paper)      | 1        | 1  | 100         | 0      | 4.00 |
  | greedy + refinement | 1        | 1  | 100         | 0      | 4.00 |

RCG Graphviz export is well-formed DOT:

  $ rbp rcg vcopy-u1 --dot | head -n 4
  graph rcg {
    node [shape=ellipse, style=filled];
    1 [label="f1\nw=0.0", fillcolor=lightblue];
  }

Register allocation report:

  $ rbp alloc vcopy-u2 -c 2 --regs 8 | head -n 4
  allocated in 1 round(s), 0 spills
  bank 0: pressure 1 / 8 registers
  bank 1: pressure 1 / 8 registers
    f1           -> bank 0, reg 0

Cycle-accurate simulation:

  $ rbp sim vcopy-u2 -c 2 --trips 4 | tail -n 2
  cycle-accurate simulation: OK (no latency violations)
  speedup over sequential issue: 8.00x
