  $ rbp compare vcopy-u2 -c 2 | head -n 6
  $ rbp rcg vcopy-u1 --dot | head -n 4
  $ rbp alloc vcopy-u2 -c 2 --regs 8 | head -n 4
  $ rbp sim vcopy-u2 -c 2 --trips 4 | tail -n 2
