open Testlib

(* Second-tranche edge cases across all libraries. *)

let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

let util_edges =
  [
    qcheck ~count:100 "weighted-respects-support"
      QCheck2.Gen.(int_range 0 1000)
      (fun seed ->
        let rng = Util.Prng.create seed in
        let v = Util.Prng.weighted rng [ ("a", 1.0); ("b", 2.0); ("c", 0.0) ] in
        v = "a" || v = "b");
    case "weighted-all-zero-raises" (fun () ->
        let rng = Util.Prng.create 1 in
        Alcotest.check_raises "zero" (Invalid_argument "Prng.weighted: weights sum to zero")
          (fun () -> ignore (Util.Prng.weighted rng [ ("a", 0.0) ])));
    qcheck ~count:100 "geometric-le-arithmetic"
      QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.1 100.0))
      (fun l -> Util.Stats.geometric_mean l <= Util.Stats.mean l +. 1e-9);
    case "table-empty-rows-renders" (fun () ->
        let t = Util.Table.create ~title:"empty" ~header:[ "a" ] in
        check Alcotest.bool "renders" true (String.length (Util.Table.render t) > 0));
    case "min-max-singleton" (fun () ->
        let lo, hi = Util.Stats.min_max [ 4.0 ] in
        check (Alcotest.float 0.0) "lo" 4.0 lo;
        check (Alcotest.float 0.0) "hi" 4.0 hi);
  ]

let ir_edges =
  [
    case "func-rejects-unknown-edge" (fun () ->
        let blk = Ir.Block.make ~label:"a" [] in
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Func.make ~name:"t" ~blocks:[ blk ] ~edges:[ ("a", "nope") ]);
             false
           with Invalid_argument _ -> true));
    case "func-rejects-duplicate-labels" (fun () ->
        let blk = Ir.Block.make ~label:"a" [] in
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Func.make ~name:"t" ~blocks:[ blk; blk ] ~edges:[]);
             false
           with Invalid_argument _ -> true));
    case "func-rejects-cross-block-op-id-clash" (fun () ->
        let op l = Ir.Op.make ~dst:(vreg 1) ~addr:(Ir.Addr.scalar l) ~id:0
            ~opcode:Mach.Opcode.Load ~cls:f ()
        in
        let b1 = Ir.Block.make ~label:"a" [ op "x" ] in
        let b2 = Ir.Block.make ~label:"b" [ op "y" ] in
        check Alcotest.bool "raises" true
          (try
             ignore (Ir.Func.make ~name:"t" ~blocks:[ b1; b2 ] ~edges:[]);
             false
           with Invalid_argument _ -> true));
    case "eval-shift-semantics" (fun () ->
        let st = Ir.Eval.create () in
        let a = vreg ~cls:i 1 and b = vreg ~cls:i 2 and c = vreg ~cls:i 3 in
        Ir.Eval.set_reg st a (Ir.Eval.I 5);
        Ir.Eval.set_reg st b (Ir.Eval.I 2);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:c ~srcs:[ a; b ] ~id:0 ~opcode:Mach.Opcode.Shl ~cls:i ());
        check Alcotest.bool "5<<2=20" true (Ir.Eval.value_equal (Ir.Eval.I 20) (Ir.Eval.get_reg st c)));
    case "eval-madd" (fun () ->
        let st = Ir.Eval.create () in
        let a = vreg 1 and b = vreg 2 and c = vreg 3 and d = vreg 4 in
        Ir.Eval.set_reg st a (Ir.Eval.F 2.0);
        Ir.Eval.set_reg st b (Ir.Eval.F 3.0);
        Ir.Eval.set_reg st c (Ir.Eval.F 1.0);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:d ~srcs:[ a; b; c ] ~id:0 ~opcode:Mach.Opcode.Madd ~cls:f ());
        check Alcotest.bool "2*3+1" true (Ir.Eval.value_equal (Ir.Eval.F 7.0) (Ir.Eval.get_reg st d)));
    case "eval-convert-truncates" (fun () ->
        let st = Ir.Eval.create () in
        let x = vreg 1 and y = vreg ~cls:i 2 in
        Ir.Eval.set_reg st x (Ir.Eval.F 3.9);
        Ir.Eval.exec_op st ~iteration:0
          (Ir.Op.make ~dst:y ~srcs:[ x ] ~id:0 ~opcode:Mach.Opcode.Convert ~cls:i ());
        check Alcotest.bool "3" true (Ir.Eval.value_equal (Ir.Eval.I 3) (Ir.Eval.get_reg st y)));
    case "value-equal-nan" (fun () ->
        check Alcotest.bool "nan=nan" true (Ir.Eval.value_equal (Ir.Eval.F nan) (Ir.Eval.F nan));
        check Alcotest.bool "int/float differ" false
          (Ir.Eval.value_equal (Ir.Eval.I 1) (Ir.Eval.F 1.0)));
    case "parse-unknown-live-out" (fun () ->
        match Ir.Parse.loop_of_string "  load.f a, x\nlive_out: ghost\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> check Alcotest.bool "mentions ghost" true (contains e "ghost"));
    case "parse-malformed-address" (fun () ->
        check Alcotest.bool "error" true
          (match Ir.Parse.loop_of_string "  load.f a, x[\n" with
          | Error _ -> true
          | Ok _ -> false));
    case "builder-op-count" (fun () ->
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
        ignore (Ir.Builder.copy b x);
        check Alcotest.int "2" 2 (Ir.Builder.op_count b));
  ]

let graphlib_edges =
  [
    case "copy-is-independent" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 ();
        let h = Graphlib.Digraph.copy g in
        Graphlib.Digraph.add_edge g ~src:2 ~dst:3 ();
        check Alcotest.int "h unchanged" 1 (Graphlib.Digraph.edge_count h);
        check Alcotest.int "g grew" 2 (Graphlib.Digraph.edge_count g));
    case "longest-paths-multi-source" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:3 5;
        Graphlib.Digraph.add_edge g ~src:2 ~dst:3 9;
        let d = Graphlib.Topo.longest_paths ~weight:(fun e -> e.Graphlib.Digraph.label) g in
        check Alcotest.int "max path wins" 9 (Hashtbl.find d 3));
    case "ungraph-copy-independent" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Graphlib.Ungraph.add_edge_weight g 1 2 1.0;
        let h = Graphlib.Ungraph.copy g in
        Graphlib.Ungraph.add_edge_weight g 1 2 1.0;
        check (Alcotest.float 1e-9) "h keeps 1" 1.0 (Graphlib.Ungraph.edge_weight h 1 2));
    case "scc-empty-graph" (fun () ->
        check Alcotest.int "no comps" 0
          (List.length (Graphlib.Scc.tarjan (Graphlib.Digraph.create ()))));
  ]

let sched_edges =
  [
    case "kernel-normalizes-min-cycle" (fun () ->
        let op = Ir.Op.make ~dst:(vreg 1) ~addr:(Ir.Addr.scalar "x") ~id:0
            ~opcode:Mach.Opcode.Load ~cls:f ()
        in
        let k = Sched.Kernel.make ~ii:2 [ { Sched.Schedule.op; cycle = 7; cluster = 0 } ] in
        check Alcotest.int "cycle 0" 0 (Sched.Kernel.cycle_of k 0);
        check Alcotest.int "1 stage" 1 (Sched.Kernel.n_stages k));
    case "kernel-rows-cover-all-ops" (fun () ->
        let loop = Workload.Kernels.hydro ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let k = o.Sched.Modulo.kernel in
            let total =
              List.fold_left (fun acc (_, ops) -> acc + List.length ops) 0
                (Sched.Kernel.kernel_rows k)
            in
            check Alcotest.int "all ops in rows" (Sched.Kernel.op_count k) total);
    case "tiny-budget-still-valid" (fun () ->
        (* budget_ratio 1 forces II escalation; result must stay valid *)
        let loop = Workload.Kernels.cmul ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        let mii = Ddg.Minii.min_ii ~width:16 ddg in
        match
          Sched.Modulo.schedule ~budget_ratio:1 ~machine:ideal16 ~mii ddg
        with
        | None -> Alcotest.fail "expected a schedule eventually"
        | Some o ->
            check Alcotest.bool "valid" true
              (Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg
                 o.Sched.Modulo.kernel
              = Ok ()));
    case "modulo-rejects-bad-mii" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.vcopy ~unroll:1) in
        check Alcotest.bool "raises" true
          (try
             ignore (Sched.Modulo.schedule ~machine:ideal16 ~mii:0 ddg);
             false
           with Invalid_argument _ -> true));
    case "slack-positive-for-wide-loop" (fun () ->
        (* independent slices: plenty of slack somewhere *)
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.division_heavy ~unroll:2) in
        let sl = Sched.Slack.analyze ddg in
        check Alcotest.bool "some slack > 0" true
          (List.exists
             (fun op -> Sched.Slack.slack sl (Ir.Op.id op) > 0)
             (Ddg.Graph.ops_in_order ddg)));
  ]

let partition_edges =
  [
    case "driver-fails-gracefully-on-unsatisfiable" (fun () ->
        (* copy-unit machine with zero busses cannot route any copy *)
        let machine =
          Mach.Machine.make ~busses:0 ~copy_ports:1 ~clusters:4 ~fus_per_cluster:4
            ~copy_model:Mach.Machine.Copy_unit ()
        in
        let loop = Workload.Kernels.daxpy ~unroll:4 in
        match Partition.Driver.pipeline ~machine loop with
        | Error _ -> () (* expected: no II can route copies *)
        | Ok r ->
            (* acceptable only if the partition produced no copies at all *)
            check Alcotest.int "then zero copies" 0 r.Partition.Driver.n_copies);
    case "greedy-balance-zero-allows-skew" (fun () ->
        let g = Rcg.Graph.create () in
        for k = 1 to 6 do
          Rcg.Graph.add_node_weight g (vreg k) (float_of_int k)
        done;
        (* all nodes attracted to node 1: with balance 0 everything piles up *)
        for k = 2 to 6 do
          Rcg.Graph.add_edge_weight g (vreg 1) (vreg k) 10.0
        done;
        let w0 = { Rcg.Weights.default with Rcg.Weights.balance = 0.0 } in
        let a = Partition.Greedy.partition ~weights:w0 ~banks:2 g in
        let counts = Partition.Assign.counts ~banks:2 a in
        check Alcotest.bool "one bank has all" true (counts.(0) = 6 || counts.(1) = 6));
    case "copies-insert-on-copy-unit-counts-ports" (fun () ->
        let loop = Workload.Kernels.stencil3 ~unroll:2 in
        let g = Rcg.Build.of_loop ~machine:ideal16 loop in
        let a = Partition.Greedy.partition ~banks:4 g in
        let r = Partition.Copies.insert_loop ~machine:m4x4c ~assignment:a loop in
        (* same counting regardless of model *)
        check Alcotest.int "copies total"
          (Array.fold_left ( + ) 0 r.Partition.Copies.copies_per_cluster)
          r.Partition.Copies.n_copies);
    case "assign-counts-rejects-out-of-range" (fun () ->
        let a = Partition.Assign.of_list [ (vreg 1, 9) ] in
        check Alcotest.bool "raises" true
          (try
             ignore (Partition.Assign.counts ~banks:4 a);
             false
           with Invalid_argument _ -> true));
    case "refine-cost-decreases-with-fewer-copies" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:2 in
        let all0 =
          Partition.Assign.of_list
            (List.map (fun r -> (r, 0)) (Ir.Vreg.Set.elements (Ir.Loop.vregs loop)))
        in
        let rec_mii = Ddg.Minii.rec_mii (Ddg.Graph.of_loop loop) in
        let c_all0 =
          Partition.Refine.cost ~machine:m4x4e ~loop ~rec_mii ~copy_weight:0.05 all0
        in
        (* all in one bank: zero copies but saturated cluster; splitting a
           load off can only change cost consistently with the model *)
        check Alcotest.bool "cost finite" true (Float.is_finite c_all0));
  ]

let regalloc_edges =
  [
    case "func-live-out-unknown-block-raises" (fun () ->
        let blk = Ir.Block.make ~label:"a" [] in
        let fn = Ir.Func.make ~name:"t" ~blocks:[ blk ] ~edges:[] in
        let lo = Regalloc.Liveness.func_live_out fn in
        check Alcotest.bool "raises" true
          (try
             ignore (lo "ghost");
             false
           with Invalid_argument _ -> true));
    case "color-with-cost-override" (fun () ->
        (* force a specific spill victim via the cost function *)
        let ops =
          let b = Ir.Builder.create () in
          let x = Ir.Builder.load b f (Ir.Addr.scalar "x") in
          let y = Ir.Builder.load b f (Ir.Addr.scalar "y") in
          let z = Ir.Builder.binop b Mach.Opcode.Add f x y in
          Ir.Builder.store b f (Ir.Addr.scalar "o") z;
          Ir.Loop.ops (Ir.Builder.loop b ~name:"t" ())
        in
        let g = Regalloc.Interference.build ops ~live_out:Ir.Vreg.Set.empty in
        let cheap = List.hd (Regalloc.Interference.registers g) in
        let cost r = if Ir.Vreg.equal r cheap then 0.0 else 100.0 in
        let r = Regalloc.Color.color ~cost ~k:1 g in
        check Alcotest.bool "cheap spilled first" true
          (match r.Regalloc.Color.spilled with v :: _ -> Ir.Vreg.equal v cheap | [] -> false));
    case "interference-pp-smoke" (fun () ->
        let g = Regalloc.Interference.build [] ~live_out:(Ir.Vreg.Set.singleton (vreg 1)) in
        check Alcotest.bool "prints" true
          (String.length (Format.asprintf "%a" Regalloc.Interference.pp g) > 0));
  ]

let suite =
  [
    ("edges.util", util_edges);
    ("edges.ir", ir_edges);
    ("edges.graphlib", graphlib_edges);
    ("edges.sched", sched_edges);
    ("edges.partition", partition_edges);
    ("edges.regalloc", regalloc_edges);
  ]
