open Testlib

let f = Mach.Rclass.Float

let schedule_tests =
  [
    case "make-rejects-duplicates" (fun () ->
        let op = Ir.Op.make ~dst:(vreg 1) ~addr:(Ir.Addr.element "x") ~id:0
            ~opcode:Mach.Opcode.Load ~cls:f ()
        in
        check Alcotest.bool "raises" true
          (try
             ignore
               (Sched.Schedule.make
                  [ { Sched.Schedule.op; cycle = 0; cluster = 0 };
                    { Sched.Schedule.op; cycle = 1; cluster = 0 } ]
                  Mach.Latency.paper);
             false
           with Invalid_argument _ -> true));
    case "length-includes-latency" (fun () ->
        let op = Ir.Op.make ~dst:(vreg 1) ~addr:(Ir.Addr.element "x") ~id:0
            ~opcode:Mach.Opcode.Load ~cls:f ()
        in
        let s =
          Sched.Schedule.make [ { Sched.Schedule.op; cycle = 3; cluster = 0 } ] Mach.Latency.paper
        in
        check Alcotest.int "3+2" 5 (Sched.Schedule.length s);
        check Alcotest.int "issue" 4 (Sched.Schedule.issue_length s));
    case "instructions-grouped" (fun () ->
        let mk id cyc =
          { Sched.Schedule.op =
              Ir.Op.make ~dst:(vreg (id + 1)) ~addr:(Ir.Addr.element "x") ~id
                ~opcode:Mach.Opcode.Load ~cls:f ();
            cycle = cyc; cluster = 0 }
        in
        let s = Sched.Schedule.make [ mk 0 0; mk 1 0; mk 2 2 ] Mach.Latency.paper in
        check Alcotest.int "2 rows" 2 (List.length (Sched.Schedule.instructions s));
        check Alcotest.int "row0 size" 2 (List.length (Sched.Schedule.instruction_at s 0)));
  ]

let slack_tests =
  [
    case "asap-alap-ordering" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let sl = Sched.Slack.analyze ddg in
            List.iter
              (fun op ->
                let id = Ir.Op.id op in
                check Alcotest.bool "asap<=alap" true
                  (Sched.Slack.asap sl id <= Sched.Slack.alap sl id);
                check Alcotest.bool "flex>=1" true (Sched.Slack.flexibility sl id >= 1))
              (Ir.Loop.ops loop))
          (sample_loops ()));
    case "critical-op-exists" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.daxpy ~unroll:1) in
        let sl = Sched.Slack.analyze ddg in
        check Alcotest.bool "some critical" true
          (List.exists
             (fun op -> Sched.Slack.is_critical sl (Ir.Op.id op))
             (Ddg.Graph.ops_in_order ddg)));
    case "chain-has-zero-slack" (fun () ->
        (* pure chain: every op critical *)
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
        Ir.Builder.store b f (Ir.Addr.element "y") y;
        let ddg = Ddg.Graph.of_loop (Ir.Builder.loop b ~name:"chain" ()) in
        let sl = Sched.Slack.analyze ddg in
        List.iter
          (fun op -> check Alcotest.int "slack 0" 0 (Sched.Slack.slack sl (Ir.Op.id op)))
          (Ddg.Graph.ops_in_order ddg));
    case "critical-path-matches-ddg" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.hydro ~unroll:2) in
        let sl = Sched.Slack.analyze ddg in
        check Alcotest.int "cp" (Ddg.Graph.critical_path_length ddg) (Sched.Slack.critical_path sl));
  ]

let restab_tests =
  [
    case "fu-capacity" (fun () ->
        let t = Sched.Restab.create_flat m4x4e in
        for op = 0 to 3 do
          Sched.Restab.reserve t ~cycle:0 ~op (Sched.Restab.Fu 1)
        done;
        check Alcotest.bool "full" false (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu 1));
        check Alcotest.bool "other cluster free" true
          (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu 2));
        check Alcotest.bool "next cycle free" true
          (Sched.Restab.fits t ~cycle:1 (Sched.Restab.Fu 1)));
    case "modulo-wraps" (fun () ->
        let t = Sched.Restab.create_modulo m4x4e ~ii:2 in
        for op = 0 to 3 do
          Sched.Restab.reserve t ~cycle:0 ~op (Sched.Restab.Fu 0)
        done;
        check Alcotest.bool "cycle 2 = slot 0 full" false
          (Sched.Restab.fits t ~cycle:2 (Sched.Restab.Fu 0));
        check Alcotest.bool "cycle 3 = slot 1 free" true
          (Sched.Restab.fits t ~cycle:3 (Sched.Restab.Fu 0)));
    case "release-frees" (fun () ->
        let t = Sched.Restab.create_modulo m8x2e ~ii:1 in
        Sched.Restab.reserve t ~cycle:0 ~op:7 (Sched.Restab.Fu 0);
        Sched.Restab.reserve t ~cycle:0 ~op:8 (Sched.Restab.Fu 0);
        check Alcotest.bool "full" false (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu 0));
        Sched.Restab.release_op t ~op:7;
        check Alcotest.bool "freed" true (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Fu 0)));
    case "copy-unit-uses-ports-and-bus" (fun () ->
        let t = Sched.Restab.create_modulo m4x4c ~ii:1 in
        (* 2 ports per cluster, 4 busses: cluster 0 saturates at 2 copies *)
        Sched.Restab.reserve t ~cycle:0 ~op:0 (Sched.Restab.Copy_to 0);
        Sched.Restab.reserve t ~cycle:0 ~op:1 (Sched.Restab.Copy_to 0);
        check Alcotest.bool "ports full" false
          (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Copy_to 0));
        (* other clusters still have ports, busses remain (4 - 2 = 2) *)
        Sched.Restab.reserve t ~cycle:0 ~op:2 (Sched.Restab.Copy_to 1);
        Sched.Restab.reserve t ~cycle:0 ~op:3 (Sched.Restab.Copy_to 2);
        (* now 4 busses are used *)
        check Alcotest.bool "busses exhausted" false
          (Sched.Restab.fits t ~cycle:0 (Sched.Restab.Copy_to 3)));
    case "conflicting-ops-most-recent" (fun () ->
        let t = Sched.Restab.create_flat m8x2e in
        Sched.Restab.reserve t ~cycle:0 ~op:1 (Sched.Restab.Fu 0);
        Sched.Restab.reserve t ~cycle:0 ~op:2 (Sched.Restab.Fu 0);
        check Alcotest.(list int) "victim" [ 2 ]
          (Sched.Restab.conflicting_ops t ~cycle:0 (Sched.Restab.Fu 0)));
    case "request-for" (fun () ->
        let cop =
          Ir.Op.make ~dst:(vreg 1) ~srcs:[ vreg 2 ] ~id:0 ~opcode:Mach.Opcode.Copy ~cls:f ()
        in
        check Alcotest.bool "embedded copy is Fu" true
          (Sched.Restab.request_for m4x4e ~cluster:1 cop = Sched.Restab.Fu 1);
        check Alcotest.bool "copy-unit copy is port" true
          (Sched.Restab.request_for m4x4c ~cluster:1 cop = Sched.Restab.Copy_to 1));
  ]

let list_sched_tests =
  [
    case "paper-figure1-length-7" (fun () ->
        (* the Section 4.2 example on 2-wide unit-latency machine *)
        let b = Ir.Builder.create () in
        let r1 = Ir.Builder.load b f (Ir.Addr.scalar "xvel") in
        let r2 = Ir.Builder.load b f (Ir.Addr.scalar "t") in
        let r3 = Ir.Builder.load b f (Ir.Addr.scalar "xaccel") in
        let r4 = Ir.Builder.load b f (Ir.Addr.scalar "xpos") in
        let r5 = Ir.Builder.binop b Mach.Opcode.Mul f r1 r2 in
        let r6 = Ir.Builder.binop b Mach.Opcode.Add f r4 r5 in
        let r7 = Ir.Builder.binop b Mach.Opcode.Mul f r3 r2 in
        let half = Ir.Builder.load b f (Ir.Addr.scalar "c2") in
        let r8 = Ir.Builder.binop b Mach.Opcode.Div f r2 half in
        let r9 = Ir.Builder.binop b Mach.Opcode.Mul f r7 r8 in
        let r10 = Ir.Builder.binop b Mach.Opcode.Add f r6 r9 in
        Ir.Builder.store b f (Ir.Addr.scalar "xpos") r10;
        let fn = Ir.Builder.func b ~name:"ex" ~edges:[] in
        let blk = Ir.Func.entry fn in
        let ddg = Ddg.Graph.of_block ~latency:Mach.Latency.unit blk in
        let m = Mach.Machine.ideal ~latency:Mach.Latency.unit ~width:2 () in
        let s = Sched.List_sched.ideal ~machine:m ddg in
        check Alcotest.int "7 cycles" 7 (Sched.Schedule.issue_length s));
    case "ideal-schedules-are-valid" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            let s = Sched.List_sched.ideal ~machine:ideal16 ddg in
            match Sched.Check.flat ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg s with
            | Ok () -> ()
            | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) e)
          (sample_loops ()));
    case "width-1-is-sequential" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let ddg = Ddg.Graph.of_loop loop in
        let m = Mach.Machine.ideal ~width:1 () in
        let s = Sched.List_sched.ideal ~machine:m ddg in
        (* at most one op per cycle *)
        List.iter
          (fun (_, ops) -> check Alcotest.int "1 per cycle" 1 (List.length ops))
          (Sched.Schedule.instructions s));
    case "wider-machine-not-slower" (fun () ->
        let loop = Workload.Kernels.cmul ~unroll:2 in
        let ddg = Ddg.Graph.of_loop loop in
        let len w =
          Sched.Schedule.issue_length
            (Sched.List_sched.ideal ~machine:(Mach.Machine.ideal ~width:w ()) ddg)
        in
        check Alcotest.bool "mono" true (len 16 <= len 4 && len 4 <= len 1));
    case "multi-cluster-requires-cluster-of" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.vcopy ~unroll:1) in
        check Alcotest.bool "raises" true
          (try
             ignore (Sched.List_sched.schedule ~machine:m4x4e ddg);
             false
           with Invalid_argument _ -> true));
    qcheck ~count:40 "list-schedule-valid-on-random-loops" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        let s = Sched.List_sched.ideal ~machine:ideal16 ddg in
        Sched.Check.flat ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg s = Ok ());
  ]

let modulo_tests =
  [
    case "achieves-min-ii-on-daxpy" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:4 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            check Alcotest.int "ii = mii" o.Sched.Modulo.mii o.Sched.Modulo.ii;
            check Alcotest.int "mii=2" 2 o.Sched.Modulo.mii);
    case "kernel-valid-on-samples" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Modulo.ideal ~machine:ideal16 ddg with
            | None -> Alcotest.failf "%s: no schedule" (Ir.Loop.name loop)
            | Some o -> (
                match
                  Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg
                    o.Sched.Modulo.kernel
                with
                | Ok () -> ()
                | Error e -> Alcotest.failf "%s: %s" (Ir.Loop.name loop) e))
          (sample_loops ~n:40 ()));
    case "recurrence-bound-ii" (fun () ->
        let loop = Workload.Kernels.first_order_rec ~unroll:1 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o -> check Alcotest.int "ii=recmii=4" 4 o.Sched.Modulo.ii);
    case "ii-never-below-mii" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Modulo.ideal ~machine:ideal16 ddg with
            | None -> ()
            | Some o -> check Alcotest.bool "ii>=mii" true (o.Sched.Modulo.ii >= o.Sched.Modulo.mii))
          (sample_loops ()));
    case "stage-count-sane" (fun () ->
        let loop = Workload.Kernels.hydro ~unroll:4 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let k = o.Sched.Modulo.kernel in
            check Alcotest.bool "stages >= 1" true (Sched.Kernel.n_stages k >= 1);
            List.iter
              (fun (p : Sched.Schedule.placement) ->
                check Alcotest.bool "cycle within stages" true
                  (p.cycle < Sched.Kernel.n_stages k * Sched.Kernel.ii k))
              (Sched.Kernel.placements k));
    qcheck ~count:40 "modulo-valid-on-random-loops" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> false
        | Some o ->
            Sched.Check.kernel ~machine:ideal16 ~cluster_of:all_zero_clusters ~ddg
              o.Sched.Modulo.kernel
            = Ok ());
  ]

(* The strongest scheduler test: executing the pipelined expansion must
   equal executing the loop sequentially. *)
let expand_equiv loop trips =
  let ddg = Ddg.Graph.of_loop loop in
  match Sched.Modulo.ideal ~machine:ideal16 ddg with
  | None -> Alcotest.failf "%s: no schedule" (Ir.Loop.name loop)
  | Some o ->
      let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips in
      let sa = Ir.Eval.create () and sb = Ir.Eval.create () in
      seed_state sa loop;
      seed_state sb loop;
      Ir.Eval.run_loop sa ~trips loop;
      Ir.Eval.run_ops sb (Sched.Expand.ops code);
      if not (mem_equal sa sb) then
        Alcotest.failf "%s: memory differs\n%s" (Ir.Loop.name loop) (mem_diff sa sb);
      Ir.Vreg.Map.iter
        (fun src inst ->
          if not (Ir.Eval.value_equal (Ir.Eval.get_reg sa src) (Ir.Eval.get_reg sb inst)) then
            Alcotest.failf "%s: live-out %s differs" (Ir.Loop.name loop) (Ir.Vreg.to_string src))
        (Sched.Expand.live_out_map code)

let expand_tests =
  [
    case "flatten-equivalent-daxpy" (fun () -> expand_equiv (Workload.Kernels.daxpy ~unroll:2) 7);
    case "flatten-equivalent-reduction" (fun () -> expand_equiv (Workload.Kernels.dot ~unroll:2) 9);
    case "flatten-equivalent-recurrence" (fun () ->
        expand_equiv (Workload.Kernels.first_order_rec ~unroll:1) 6);
    case "flatten-equivalent-stencil" (fun () ->
        expand_equiv (Workload.Kernels.stencil3 ~unroll:2) 5);
    case "flatten-equivalent-euler" (fun () -> expand_equiv (Workload.Kernels.euler_step ~unroll:2) 6);
    case "flatten-equivalent-memory-recurrence" (fun () ->
        expand_equiv (Workload.Kernels.tridiag ~unroll:1) 8);
    case "speedup-above-1-for-parallel-loop" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:4 in
        let ddg = Ddg.Graph.of_loop loop in
        match Sched.Modulo.ideal ~machine:ideal16 ddg with
        | None -> Alcotest.fail "no schedule"
        | Some o ->
            let code = Sched.Expand.flatten ~kernel:o.Sched.Modulo.kernel ~loop ~trips:20 in
            check Alcotest.bool "speedup > 2" true
              (Sched.Expand.speedup code ~latency:Mach.Latency.paper ~loop > 2.0));
    case "mve-factor-at-least-1" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            match Sched.Modulo.ideal ~machine:ideal16 ddg with
            | None -> ()
            | Some o ->
                check Alcotest.bool "mve>=1" true
                  (Sched.Expand.mve_factor ~kernel:o.Sched.Modulo.kernel ~loop >= 1))
          (sample_loops ()));
    case "trips-1-works" (fun () -> expand_equiv (Workload.Kernels.hydro ~unroll:1) 1);
    qcheck ~count:30 "flatten-equivalence-random" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        expand_equiv loop (3 + (seed mod 5));
        true);
  ]

let suite =
  [
    ("sched.schedule", schedule_tests);
    ("sched.slack", slack_tests);
    ("sched.restab", restab_tests);
    ("sched.list", list_sched_tests);
    ("sched.modulo", modulo_tests);
    ("sched.expand", expand_tests);
  ]
