(* Shared helpers for the test suites. *)

let check = Alcotest.check
let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  (* a fixed generator seed keeps property tests reproducible in CI *)
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; Hashtbl.hash name |])
    (QCheck2.Test.make ~count ~name gen prop)

(* Small machines used across suites. *)
let ideal16 = Mach.Machine.paper_ideal
let m2x8e = Mach.Machine.paper_clustered ~clusters:2 ~copy_model:Mach.Machine.Embedded
let m4x4e = Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Embedded
let m4x4c = Mach.Machine.paper_clustered ~clusters:4 ~copy_model:Mach.Machine.Copy_unit
let m8x2e = Mach.Machine.paper_clustered ~clusters:8 ~copy_model:Mach.Machine.Embedded
let m8x2c = Mach.Machine.paper_clustered ~clusters:8 ~copy_model:Mach.Machine.Copy_unit

(* A deterministic set of loops spanning kernels and generated shapes. *)
let sample_loops ?(n = 24) () = Workload.Suite.loops ~n:(max n 1) ()

let gen_loop_seed : int QCheck2.Gen.t = QCheck2.Gen.int_range 0 10_000

let loop_of_seed seed =
  (* Mix generated and kernel loops by seed parity. *)
  if seed mod 3 = 0 then
    let kernels = Workload.Kernels.all in
    let name, k = List.nth kernels (seed / 3 mod List.length kernels) in
    ignore name;
    k ~unroll:(1 + (seed mod 4))
  else Workload.Loopgen.generate ~seed:(seed * 7 + 1) ~index:seed ()

let vreg ?(cls = Mach.Rclass.Float) id = Ir.Vreg.make ~id ~cls ()

(* Equivalence of two evaluation states on memory and named registers. *)
let mem_equal sa sb =
  let a = Ir.Eval.mem_snapshot sa and b = Ir.Eval.mem_snapshot sb in
  List.length a = List.length b
  && List.for_all2
       (fun (b1, i1, v1) (b2, i2, v2) ->
         String.equal b1 b2 && i1 = i2 && Ir.Eval.value_equal v1 v2)
       a b

let mem_diff sa sb =
  let a = Ir.Eval.mem_snapshot sa and b = Ir.Eval.mem_snapshot sb in
  let fmt (base, i, v) = Format.asprintf "%s[%d]=%a" base i Ir.Eval.pp_value v in
  Printf.sprintf "A: %s\nB: %s"
    (String.concat " " (List.map fmt a))
    (String.concat " " (List.map fmt b))

(* Seed the same initial register/memory state into two states so loop
   inputs agree (Eval's deterministic-hash defaults make this mostly
   redundant; kept for explicitness with live-in registers). *)
let seed_state st loop =
  Ir.Vreg.Set.iter
    (fun r ->
      let v =
        match Ir.Vreg.cls r with
        | Mach.Rclass.Int -> Ir.Eval.I (Ir.Vreg.id r + 3)
        | Mach.Rclass.Float -> Ir.Eval.F (float_of_int (Ir.Vreg.id r) /. 4.0)
      in
      Ir.Eval.set_reg st r v)
    (Ir.Loop.invariants loop)

let cluster_of_loop assignment loop = Partition.Driver.cluster_map assignment loop

let all_zero_clusters _ = 0

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= hn && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0
