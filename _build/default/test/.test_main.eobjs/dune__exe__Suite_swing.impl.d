test/suite_swing.ml: Alcotest Array Ddg Ir List Mach Partition Printf QCheck2 Regalloc Sched Testlib Workload
