test/suite_partition.ml: Alcotest Array Ddg Ir List Mach Partition Printf Rcg Sched Testlib Workload
