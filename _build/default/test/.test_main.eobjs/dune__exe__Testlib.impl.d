test/testlib.ml: Alcotest Format Hashtbl Ir List Mach Partition Printf QCheck2 QCheck_alcotest Random String Workload
