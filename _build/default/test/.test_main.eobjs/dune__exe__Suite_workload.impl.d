test/suite_workload.ml: Alcotest Core Ddg Graphlib Ir List Mach Partition Printf QCheck2 Sched Testlib Workload
