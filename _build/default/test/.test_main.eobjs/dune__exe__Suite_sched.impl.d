test/suite_sched.ml: Alcotest Ddg Ir List Mach Sched Testlib Workload
