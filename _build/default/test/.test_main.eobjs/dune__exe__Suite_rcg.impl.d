test/suite_rcg.ml: Alcotest Ir List Mach Rcg Testlib Workload
