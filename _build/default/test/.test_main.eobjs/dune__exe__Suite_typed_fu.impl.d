test/suite_typed_fu.ml: Alcotest Ddg Ir List Mach Partition Sched Testlib Workload
