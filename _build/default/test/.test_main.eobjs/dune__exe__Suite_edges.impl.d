test/suite_edges.ml: Alcotest Array Ddg Float Format Graphlib Hashtbl Ir List Mach Partition QCheck2 Rcg Regalloc Sched String Testlib Util Workload
