test/suite_graphlib.ml: Alcotest Graphlib Hashtbl Int List Option QCheck2 Testlib
