test/suite_integration.ml: Alcotest Core Ddg Hashtbl Ir List Mach Partition Printf Rcg Regalloc Sched Testlib Workload
