test/suite_util.ml: Alcotest Array Float Hashtbl List QCheck2 Testlib Util
