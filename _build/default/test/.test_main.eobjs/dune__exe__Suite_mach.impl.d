test/suite_mach.ml: Alcotest Latency List Mach Machine Opcode Printf Rclass Testlib
