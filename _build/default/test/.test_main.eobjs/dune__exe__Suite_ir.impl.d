test/suite_ir.ml: Alcotest Ddg Ir List Mach Option Partition Printf QCheck2 Sched Testlib Workload
