test/suite_ddg.ml: Alcotest Ddg Graphlib Ir List Mach Testlib Workload
