test/suite_final.ml: Alcotest Core Ddg Ir List Mach Option Partition Rcg Regalloc Sched String Testlib Workload
