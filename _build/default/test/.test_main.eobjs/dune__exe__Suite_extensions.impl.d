test/suite_extensions.ml: Alcotest Core Ddg Ir List Mach Partition Printf Rcg Testlib Util Workload
