test/suite_regalloc.ml: Alcotest Array Ir List Mach Partition Rcg Regalloc String Testlib Workload
