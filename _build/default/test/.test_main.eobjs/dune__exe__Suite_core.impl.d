test/suite_core.ml: Alcotest Array Core Ir List Mach Partition Rcg Sched String Testlib Util Workload
