test/suite_closing.ml: Alcotest Core Ddg Graphlib Ir List Mach QCheck2 Sched String Testlib Util Workload
