test/suite_driver_matrix.ml: Alcotest Ddg Ir List Mach Partition Printf QCheck2 Rcg Sched Testlib Workload
