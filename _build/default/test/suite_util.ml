open Testlib

let prng_tests =
  [
    case "same-seed-same-sequence" (fun () ->
        let a = Util.Prng.create 42 and b = Util.Prng.create 42 in
        for _ = 1 to 50 do
          check Alcotest.int64 "draw" (Util.Prng.bits64 a) (Util.Prng.bits64 b)
        done);
    case "different-seeds-differ" (fun () ->
        let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
        let da = List.init 8 (fun _ -> Util.Prng.bits64 a) in
        let db = List.init 8 (fun _ -> Util.Prng.bits64 b) in
        check Alcotest.bool "sequences differ" true (da <> db));
    case "copy-is-independent" (fun () ->
        let a = Util.Prng.create 7 in
        let _ = Util.Prng.bits64 a in
        let b = Util.Prng.copy a in
        check Alcotest.int64 "same next" (Util.Prng.bits64 a) (Util.Prng.bits64 b));
    case "int-in-bounds" (fun () ->
        let r = Util.Prng.create 3 in
        for _ = 1 to 1000 do
          let v = Util.Prng.int r 17 in
          check Alcotest.bool "0<=v<17" true (v >= 0 && v < 17)
        done);
    case "int_in-inclusive" (fun () ->
        let r = Util.Prng.create 5 in
        let seen = Hashtbl.create 8 in
        for _ = 1 to 500 do
          Hashtbl.replace seen (Util.Prng.int_in r 2 4) ()
        done;
        check Alcotest.int "all of 2,3,4 seen" 3 (Hashtbl.length seen));
    case "int-rejects-nonpositive" (fun () ->
        let r = Util.Prng.create 1 in
        Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
          (fun () -> ignore (Util.Prng.int r 0)));
    case "float-in-range" (fun () ->
        let r = Util.Prng.create 9 in
        for _ = 1 to 1000 do
          let v = Util.Prng.float r 2.5 in
          check Alcotest.bool "0<=v<2.5" true (v >= 0.0 && v < 2.5)
        done);
    case "chance-extremes" (fun () ->
        let r = Util.Prng.create 11 in
        check Alcotest.bool "p=0 false" false (Util.Prng.chance r 0.0);
        check Alcotest.bool "p=1 true" true (Util.Prng.chance r 1.0));
    case "choose-singleton" (fun () ->
        let r = Util.Prng.create 13 in
        check Alcotest.int "only element" 5 (Util.Prng.choose r [ 5 ]));
    case "choose-empty-raises" (fun () ->
        let r = Util.Prng.create 13 in
        Alcotest.check_raises "empty" (Invalid_argument "Prng.choose: empty list") (fun () ->
            ignore (Util.Prng.choose r [])));
    case "weighted-zero-weight-excluded" (fun () ->
        let r = Util.Prng.create 17 in
        for _ = 1 to 200 do
          check Alcotest.string "always b" "b"
            (Util.Prng.weighted r [ ("a", 0.0); ("b", 1.0) ])
        done);
    case "shuffle-is-permutation" (fun () ->
        let r = Util.Prng.create 19 in
        let l = List.init 20 (fun i -> i) in
        let s = Util.Prng.shuffle r l in
        check Alcotest.(list int) "sorted equal" l (List.sort compare s));
    case "split-streams-differ" (fun () ->
        let a = Util.Prng.create 23 in
        let b = Util.Prng.split a in
        check Alcotest.bool "differ" true (Util.Prng.bits64 a <> Util.Prng.bits64 b));
  ]

let stats_tests =
  [
    case "mean" (fun () ->
        check (Alcotest.float 1e-9) "mean" 2.0 (Util.Stats.mean [ 1.0; 2.0; 3.0 ]));
    case "mean-empty-nan" (fun () ->
        check Alcotest.bool "nan" true (Float.is_nan (Util.Stats.mean [])));
    case "harmonic-mean" (fun () ->
        (* harmonic mean of 1 and 2 is 4/3 *)
        check (Alcotest.float 1e-9) "hm" (4.0 /. 3.0) (Util.Stats.harmonic_mean [ 1.0; 2.0 ]));
    case "harmonic-below-arithmetic" (fun () ->
        let l = [ 100.0; 150.0; 120.0; 111.0 ] in
        check Alcotest.bool "hm <= am" true
          (Util.Stats.harmonic_mean l <= Util.Stats.mean l));
    case "harmonic-rejects-nonpositive" (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Stats.harmonic_mean: non-positive element") (fun () ->
            ignore (Util.Stats.harmonic_mean [ 1.0; 0.0 ])));
    case "geometric-mean" (fun () ->
        check (Alcotest.float 1e-9) "gm" 2.0 (Util.Stats.geometric_mean [ 1.0; 4.0 ]));
    case "median-odd" (fun () ->
        check (Alcotest.float 1e-9) "median" 3.0 (Util.Stats.median [ 5.0; 1.0; 3.0 ]));
    case "median-even" (fun () ->
        check (Alcotest.float 1e-9) "median" 2.5 (Util.Stats.median [ 4.0; 1.0; 2.0; 3.0 ]));
    case "stddev-constant-zero" (fun () ->
        check (Alcotest.float 1e-9) "sd" 0.0 (Util.Stats.stddev [ 3.0; 3.0; 3.0 ]));
    case "min-max" (fun () ->
        let lo, hi = Util.Stats.min_max [ 3.0; -1.0; 7.0 ] in
        check (Alcotest.float 0.0) "lo" (-1.0) lo;
        check (Alcotest.float 0.0) "hi" 7.0 hi);
    case "histogram-buckets" (fun () ->
        let h = Util.Stats.histogram ~edges:[ 10.0; 20.0 ] [ 5.0; 10.0; 15.0; 25.0; 9.9 ] in
        check Alcotest.(array int) "counts" [| 2; 2; 1 |] h.Util.Stats.counts);
    case "histogram-total" (fun () ->
        let h = Util.Stats.histogram ~edges:[ 1.0 ] [ 0.0; 2.0; 3.0 ] in
        check Alcotest.int "total" 3 h.Util.Stats.total);
    case "histogram-percent-sums-100" (fun () ->
        let h = Util.Stats.histogram ~edges:Util.Stats.degradation_edges
            [ 0.0; 5.0; 15.0; 95.0; 42.0 ]
        in
        let sum = Array.fold_left ( +. ) 0.0 (Util.Stats.histogram_percent h) in
        check (Alcotest.float 1e-6) "sum" 100.0 sum);
    case "histogram-rejects-bad-edges" (fun () ->
        Alcotest.check_raises "edges"
          (Invalid_argument "Stats.histogram: edges must be strictly increasing") (fun () ->
            ignore (Util.Stats.histogram ~edges:[ 2.0; 1.0 ] [])));
    case "degradation-edges-zero-bucket" (fun () ->
        (* exactly-zero degradation lands in bucket 0, tiny positive in bucket 1 *)
        let h = Util.Stats.histogram ~edges:Util.Stats.degradation_edges [ 0.0; 0.5 ] in
        check Alcotest.int "bucket0" 1 h.Util.Stats.counts.(0);
        check Alcotest.int "bucket1" 1 h.Util.Stats.counts.(1));
    qcheck "histogram-counts-sum-to-total"
      QCheck2.Gen.(list (float_range (-50.0) 150.0))
      (fun values ->
        let h = Util.Stats.histogram ~edges:Util.Stats.degradation_edges
            (List.map (Float.max 0.0) values)
        in
        Array.fold_left ( + ) 0 h.Util.Stats.counts = List.length values);
  ]

let table_tests =
  [
    case "render-contains-cells" (fun () ->
        let t = Util.Table.create ~title:"T" ~header:[ "a"; "b" ] in
        Util.Table.add_row t [ "x"; "y" ];
        let s = Util.Table.render t in
        List.iter
          (fun needle ->
            check Alcotest.bool needle true (contains s needle))
          [ "T"; "a"; "b"; "x"; "y" ]);
    case "pads-short-rows" (fun () ->
        let t = Util.Table.create ~title:"T" ~header:[ "a"; "b"; "c" ] in
        Util.Table.add_row t [ "only" ];
        ignore (Util.Table.render t));
    case "cell-float" (fun () ->
        check Alcotest.string "fmt" "1.5" (Util.Table.cell_float 1.46);
        check Alcotest.string "fmt2" "1.46" (Util.Table.cell_float ~decimals:2 1.46));
    case "cell-pct" (fun () -> check Alcotest.string "pct" "12.5%" (Util.Table.cell_pct 12.5));
  ]

let suite =
  [ ("util.prng", prng_tests); ("util.stats", stats_tests); ("util.table", table_tests) ]
