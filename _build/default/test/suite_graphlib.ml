open Testlib

let digraph_of edges =
  let g = Graphlib.Digraph.create () in
  List.iter (fun (a, b) -> Graphlib.Digraph.add_edge g ~src:a ~dst:b ()) edges;
  g

(* Random small edge lists for property tests. *)
let gen_edges =
  QCheck2.Gen.(
    list_size (int_range 0 40) (pair (int_range 0 9) (int_range 0 9)))

let digraph_tests =
  [
    case "nodes-sorted-unique" (fun () ->
        let g = digraph_of [ (3, 1); (1, 2); (3, 2) ] in
        check Alcotest.(list int) "nodes" [ 1; 2; 3 ] (Graphlib.Digraph.nodes g));
    case "succs-preds-symmetry" (fun () ->
        let g = digraph_of [ (1, 2); (1, 3) ] in
        check Alcotest.int "out" 2 (Graphlib.Digraph.out_degree g 1);
        check Alcotest.int "in" 1 (Graphlib.Digraph.in_degree g 2));
    case "parallel-edges-kept" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 "a";
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 "b";
        check Alcotest.int "2 edges" 2 (Graphlib.Digraph.edge_count g));
    case "transpose-reverses" (fun () ->
        let g = digraph_of [ (1, 2) ] in
        let t = Graphlib.Digraph.transpose g in
        check Alcotest.int "2->1" 1 (Graphlib.Digraph.out_degree t 2);
        check Alcotest.int "1 has none" 0 (Graphlib.Digraph.out_degree t 1));
    case "map-labels" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 10;
        let h = Graphlib.Digraph.map_labels string_of_int g in
        check Alcotest.(list string) "label" [ "10" ]
          (List.map (fun (e : _ Graphlib.Digraph.edge) -> e.label) (Graphlib.Digraph.edges h)));
    qcheck "transpose-involution" gen_edges (fun edges ->
        let g = digraph_of edges in
        let tt = Graphlib.Digraph.transpose (Graphlib.Digraph.transpose g) in
        Graphlib.Digraph.nodes g = Graphlib.Digraph.nodes tt
        && Graphlib.Digraph.edge_count g = Graphlib.Digraph.edge_count tt);
  ]

(* Brute-force SCC: mutual reachability closure. *)
let brute_scc g =
  let nodes = Graphlib.Digraph.nodes g in
  let reach = Hashtbl.create 16 in
  let rec dfs src v =
    if not (Hashtbl.mem reach (src, v)) then begin
      Hashtbl.replace reach (src, v) ();
      List.iter (fun (e : _ Graphlib.Digraph.edge) -> dfs src e.dst) (Graphlib.Digraph.succs g v)
    end
  in
  List.iter (fun n -> dfs n n) nodes;
  let same a b = Hashtbl.mem reach (a, b) && Hashtbl.mem reach (b, a) in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n then None
      else begin
        let comp = List.filter (same n) nodes in
        List.iter (fun m -> Hashtbl.replace seen m ()) comp;
        Some (List.sort compare comp)
      end)
    nodes

let normalize comps = List.sort compare (List.map (List.sort compare) comps)

let scc_tests =
  [
    case "single-cycle" (fun () ->
        let g = digraph_of [ (1, 2); (2, 3); (3, 1) ] in
        check Alcotest.(list (list int)) "one comp" [ [ 1; 2; 3 ] ] (Graphlib.Scc.tarjan g));
    case "dag-all-singletons" (fun () ->
        let g = digraph_of [ (1, 2); (2, 3) ] in
        check Alcotest.int "3 comps" 3 (List.length (Graphlib.Scc.tarjan g)));
    case "nontrivial-needs-cycle" (fun () ->
        let g = digraph_of [ (1, 2); (2, 1); (3, 4) ] in
        check Alcotest.(list (list int)) "only 1,2" [ [ 1; 2 ] ] (Graphlib.Scc.nontrivial g));
    case "self-edge-is-nontrivial" (fun () ->
        let g = digraph_of [ (1, 1); (2, 3) ] in
        check Alcotest.(list (list int)) "1 alone" [ [ 1 ] ] (Graphlib.Scc.nontrivial g));
    case "condensation-is-dag" (fun () ->
        let g = digraph_of [ (1, 2); (2, 1); (2, 3); (3, 4); (4, 3) ] in
        let _, dag = Graphlib.Scc.condensation g in
        check Alcotest.bool "dag" true (Graphlib.Topo.is_dag dag);
        check Alcotest.int "2 comps" 2 (Graphlib.Digraph.node_count dag));
    qcheck ~count:200 "tarjan-matches-brute-force" gen_edges (fun edges ->
        let g = digraph_of edges in
        normalize (Graphlib.Scc.tarjan g) = normalize (brute_scc g));
  ]

let topo_tests =
  [
    case "sort-respects-edges" (fun () ->
        let g = digraph_of [ (3, 1); (1, 2) ] in
        match Graphlib.Topo.sort g with
        | None -> Alcotest.fail "expected order"
        | Some order ->
            let pos n = Option.get (List.find_index (Int.equal n) order) in
            check Alcotest.bool "3<1" true (pos 3 < pos 1);
            check Alcotest.bool "1<2" true (pos 1 < pos 2));
    case "cycle-returns-none" (fun () ->
        check Alcotest.bool "none" true (Graphlib.Topo.sort (digraph_of [ (1, 2); (2, 1) ]) = None));
    case "longest-path" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 5;
        Graphlib.Digraph.add_edge g ~src:2 ~dst:3 7;
        Graphlib.Digraph.add_edge g ~src:1 ~dst:3 2;
        let d = Graphlib.Topo.longest_paths ~weight:(fun e -> e.Graphlib.Digraph.label) g in
        check Alcotest.int "node3" 12 (Hashtbl.find d 3));
    case "critical-path-empty" (fun () ->
        check Alcotest.int "0" 0
          (Graphlib.Topo.critical_path ~weight:(fun _ -> 1) (Graphlib.Digraph.create ())));
    qcheck "sort-none-iff-cycle-via-scc" gen_edges (fun edges ->
        let g = digraph_of edges in
        let has_cycle = Graphlib.Scc.nontrivial g <> [] in
        (Graphlib.Topo.sort g = None) = has_cycle);
  ]

let cycles_tests =
  [
    case "positive-cycle-detected" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 1;
        Graphlib.Digraph.add_edge g ~src:2 ~dst:1 1;
        check Alcotest.bool "positive" true
          (Graphlib.Cycles.has_positive_cycle ~weight:(fun e -> e.Graphlib.Digraph.label) g));
    case "nonpositive-cycle-ok" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 3;
        Graphlib.Digraph.add_edge g ~src:2 ~dst:1 (-3);
        check Alcotest.bool "zero cycle fine" false
          (Graphlib.Cycles.has_positive_cycle ~weight:(fun e -> e.Graphlib.Digraph.label) g));
    case "longest-distances" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:2 4;
        Graphlib.Digraph.add_edge g ~src:2 ~dst:3 (-1);
        match Graphlib.Cycles.longest_distances ~weight:(fun e -> e.Graphlib.Digraph.label)
                ~source:1 g
        with
        | None -> Alcotest.fail "no positive cycle expected"
        | Some d ->
            check Alcotest.int "d3" 3 (Hashtbl.find d 3));
    case "longest-distances-positive-cycle-none" (fun () ->
        let g = Graphlib.Digraph.create () in
        Graphlib.Digraph.add_edge g ~src:1 ~dst:1 2;
        check Alcotest.bool "None" true
          (Graphlib.Cycles.longest_distances ~weight:(fun e -> e.Graphlib.Digraph.label)
             ~source:1 g
          = None));
  ]

let ungraph_tests =
  [
    case "edge-weights-accumulate" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Graphlib.Ungraph.add_edge_weight g 1 2 1.5;
        Graphlib.Ungraph.add_edge_weight g 2 1 2.0;
        check (Alcotest.float 1e-9) "sum" 3.5 (Graphlib.Ungraph.edge_weight g 1 2);
        check (Alcotest.float 1e-9) "symmetric" 3.5 (Graphlib.Ungraph.edge_weight g 2 1));
    case "node-weights-accumulate" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Graphlib.Ungraph.add_node_weight g 1 1.0;
        Graphlib.Ungraph.add_node_weight g 1 2.0;
        check (Alcotest.float 1e-9) "sum" 3.0 (Graphlib.Ungraph.node_weight g 1));
    case "self-edge-rejected" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Alcotest.check_raises "self" (Invalid_argument "Ungraph.add_edge_weight: self edge")
          (fun () -> Graphlib.Ungraph.add_edge_weight g 1 1 1.0));
    case "components" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Graphlib.Ungraph.add_edge_weight g 1 2 1.0;
        Graphlib.Ungraph.add_edge_weight g 3 4 1.0;
        Graphlib.Ungraph.add_node g 5;
        check Alcotest.(list (list int)) "comps" [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
          (Graphlib.Ungraph.components g));
    case "edges-listed-once" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Graphlib.Ungraph.add_edge_weight g 2 1 1.0;
        check Alcotest.int "one" 1 (List.length (Graphlib.Ungraph.edges g));
        check Alcotest.int "count" 1 (Graphlib.Ungraph.edge_count g));
    case "neighbors-sorted" (fun () ->
        let g = Graphlib.Ungraph.create () in
        Graphlib.Ungraph.add_edge_weight g 1 5 1.0;
        Graphlib.Ungraph.add_edge_weight g 1 3 1.0;
        check Alcotest.(list int) "sorted" [ 3; 5 ]
          (List.map fst (Graphlib.Ungraph.neighbors g 1)));
    qcheck "components-partition-nodes"
      QCheck2.Gen.(list_size (int_range 0 30) (pair (int_range 0 9) (int_range 0 9)))
      (fun edges ->
        let g = Graphlib.Ungraph.create () in
        List.iter (fun (a, b) -> if a <> b then Graphlib.Ungraph.add_edge_weight g a b 1.0) edges;
        let all = List.concat (Graphlib.Ungraph.components g) in
        List.sort compare all = Graphlib.Ungraph.nodes g);
  ]

let suite =
  [
    ("graphlib.digraph", digraph_tests);
    ("graphlib.scc", scc_tests);
    ("graphlib.topo", topo_tests);
    ("graphlib.cycles", cycles_tests);
    ("graphlib.ungraph", ungraph_tests);
  ]
