open Testlib

let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

(* r1 = load x[i]; r2 = r1*r1; store y[i], r2 *)
let simple_loop () =
  let b = Ir.Builder.create () in
  let x = Ir.Builder.load b f (Ir.Addr.element "x") in
  let sq = Ir.Builder.binop b Mach.Opcode.Mul f x x in
  Ir.Builder.store b f (Ir.Addr.element "y") sq;
  Ir.Builder.loop b ~name:"simple" ()

(* s = s + load x[i]: one-op recurrence plus a load *)
let reduction_loop () =
  let b = Ir.Builder.create () in
  let s = Ir.Builder.fresh ~name:"s" b f in
  let x = Ir.Builder.load b f (Ir.Addr.element "x") in
  Ir.Builder.define b Mach.Opcode.Add f ~into:s [ s; x ];
  Ir.Builder.loop b ~name:"red" ~live_out:[ s ] ()

let edge_between ddg ~src ~dst =
  List.filter_map
    (fun (d, dep) -> if d = dst then Some dep else None)
    (Ddg.Graph.succs ddg src)

let has_edge ddg ~src ~dst ~kind ~distance =
  List.exists
    (fun dep -> Ddg.Dep.kind dep = kind && Ddg.Dep.distance dep = distance)
    (edge_between ddg ~src ~dst)

let memdep_tests =
  [
    case "different-bases-independent" (fun () ->
        check Alcotest.bool "nodep" true
          (Ddg.Memdep.test ~earlier:(Ir.Addr.element "x") ~later:(Ir.Addr.element "y")
          = Ddg.Memdep.No_dep));
    case "same-element-distance-0" (fun () ->
        check Alcotest.bool "d0" true
          (Ddg.Memdep.test ~earlier:(Ir.Addr.element "x") ~later:(Ir.Addr.element "x")
          = Ddg.Memdep.Dep_at 0));
    case "offset-one-back-distance-1" (fun () ->
        (* earlier writes x[i+1], later reads x[i] -> next iteration reads it *)
        check Alcotest.bool "d1" true
          (Ddg.Memdep.test ~earlier:(Ir.Addr.element ~offset:1 "x")
             ~later:(Ir.Addr.element "x")
          = Ddg.Memdep.Dep_at 1));
    case "forward-offset-no-dep" (fun () ->
        (* earlier writes x[i], later reads x[i+1]: later iterations read
           even later elements, never the written one *)
        check Alcotest.bool "nodep" true
          (Ddg.Memdep.test ~earlier:(Ir.Addr.element "x")
             ~later:(Ir.Addr.element ~offset:1 "x")
          = Ddg.Memdep.No_dep));
    case "non-integral-distance-no-dep" (fun () ->
        check Alcotest.bool "nodep" true
          (Ddg.Memdep.test
             ~earlier:(Ir.Addr.make ~offset:1 ~stride:2 "x")
             ~later:(Ir.Addr.make ~offset:0 ~stride:2 "x")
          = Ddg.Memdep.No_dep));
    case "stride-mismatch-conservative" (fun () ->
        check Alcotest.bool "depall" true
          (Ddg.Memdep.test
             ~earlier:(Ir.Addr.make ~stride:2 "x")
             ~later:(Ir.Addr.make ~stride:3 "x")
          = Ddg.Memdep.Dep_all));
    case "scalar-conflicts-always" (fun () ->
        check Alcotest.bool "depall" true
          (Ddg.Memdep.test ~earlier:(Ir.Addr.scalar "s") ~later:(Ir.Addr.scalar "s")
          = Ddg.Memdep.Dep_all));
    case "two-loads-no-ordering" (fun () ->
        let b = Ir.Builder.create () in
        let x1 = Ir.Builder.load b f (Ir.Addr.element "x") in
        let x2 = Ir.Builder.load b f (Ir.Addr.element "x") in
        let s = Ir.Builder.binop b Mach.Opcode.Add f x1 x2 in
        Ir.Builder.store b f (Ir.Addr.element "y") s;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let ddg = Ddg.Graph.of_loop loop in
        check Alcotest.int "no load-load edge" 0
          (List.length (edge_between ddg ~src:0 ~dst:1)));
  ]

let build_tests =
  [
    case "flow-edge-with-latency" (fun () ->
        let ddg = Ddg.Graph.of_loop (simple_loop ()) in
        (* load (op 0) -> mul (op 1), flow, latency 2 (float load) *)
        match edge_between ddg ~src:0 ~dst:1 with
        | [ dep ] ->
            check Alcotest.bool "flow" true (Ddg.Dep.kind dep = Ddg.Dep.Flow);
            check Alcotest.int "lat" 2 (Ddg.Dep.latency dep);
            check Alcotest.int "dist" 0 (Ddg.Dep.distance dep)
        | deps -> Alcotest.failf "expected 1 edge, got %d" (List.length deps));
    case "reduction-self-flow-distance-1" (fun () ->
        let ddg = Ddg.Graph.of_loop (reduction_loop ()) in
        (* add (op 1) defines and uses s: flow self edge at distance 1 *)
        check Alcotest.bool "self flow d1" true
          (has_edge ddg ~src:1 ~dst:1 ~kind:Ddg.Dep.Flow ~distance:1));
    case "store-load-same-element" (fun () ->
        (* store x[i] then (next iteration) load x[i-1]... craft:
           store to x[i], load from x[i-1] textually before the store *)
        let b = Ir.Builder.create () in
        let prev = Ir.Builder.load b f (Ir.Addr.element ~offset:(-1) "x") in
        let v = Ir.Builder.unop b Mach.Opcode.Neg f prev in
        Ir.Builder.store b f (Ir.Addr.element "x") v;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let ddg = Ddg.Graph.of_loop loop in
        (* store (op 2) -> load (op 0) mem-flow at distance 1 *)
        check Alcotest.bool "mem flow d1" true
          (has_edge ddg ~src:2 ~dst:0 ~kind:(Ddg.Dep.Mem Ddg.Dep.Mem_flow) ~distance:1));
    case "anti-edge-only-for-same-iteration-reads" (fun () ->
        (* op0 reads the carried value of r, op1 redefines r: under MVE
           the instances differ, so no anti edge *)
        let b = Ir.Builder.create () in
        let r = Ir.Builder.fresh b f in
        let y = Ir.Builder.unop b Mach.Opcode.Neg f r in
        Ir.Builder.define b Mach.Opcode.Abs f ~into:r [ y ];
        Ir.Builder.store b f (Ir.Addr.element "o") r;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let ddg = Ddg.Graph.of_loop loop in
        check Alcotest.bool "no anti d0 for carried read" false
          (has_edge ddg ~src:0 ~dst:1 ~kind:Ddg.Dep.Anti ~distance:0);
        (* but a use of a same-iteration value IS ordered before a later
           redefinition *)
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in (* op0 defines x *)
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in     (* op1 reads x (same iter) *)
        Ir.Builder.define b Mach.Opcode.Abs f ~into:x [ y ]; (* op2 redefines x *)
        Ir.Builder.store b f (Ir.Addr.element "o") x;
        let loop = Ir.Builder.loop b ~name:"t2" () in
        let ddg = Ddg.Graph.of_loop loop in
        check Alcotest.bool "anti d0 for same-iter read" true
          (has_edge ddg ~src:1 ~dst:2 ~kind:Ddg.Dep.Anti ~distance:0));
    case "no-carried-register-anti" (fun () ->
        (* MVE renames iteration instances, so the next iteration's def of
           x must NOT be serialized after this iteration's use *)
        let b = Ir.Builder.create () in
        let x = Ir.Builder.load b f (Ir.Addr.element "x") in
        let y = Ir.Builder.unop b Mach.Opcode.Neg f x in
        Ir.Builder.store b f (Ir.Addr.element "y") y;
        let loop = Ir.Builder.loop b ~name:"t" () in
        let ddg = Ddg.Graph.of_loop loop in
        check Alcotest.bool "no anti d1" false
          (has_edge ddg ~src:1 ~dst:0 ~kind:Ddg.Dep.Anti ~distance:1));
    case "invariants-produce-no-edges" (fun () ->
        let loop = Workload.Kernels.daxpy ~unroll:1 in
        let ddg = Ddg.Graph.of_loop loop in
        (* 'a' is invariant: no op defines it, so no flow edge carries it *)
        check Alcotest.bool "dag apart from memory" true (Ddg.Graph.size ddg = 5));
    case "of-block-has-no-carried-edges" (fun () ->
        let loop = reduction_loop () in
        let block = Ir.Block.make ~label:"b" (Ir.Loop.ops loop) in
        let ddg = Ddg.Graph.of_block block in
        Graphlib.Digraph.iter_edges
          (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
            check Alcotest.int "dist 0" 0 (Ddg.Dep.distance e.label))
          (Ddg.Graph.graph ddg));
    case "loop-independent-subgraph-is-dag" (fun () ->
        List.iter
          (fun loop ->
            let ddg = Ddg.Graph.of_loop loop in
            check Alcotest.bool
              (Ir.Loop.name loop ^ " dist0 dag")
              true
              (Graphlib.Topo.is_dag (Ddg.Graph.loop_independent ddg)))
          (sample_loops ()));
    qcheck ~count:60 "edges-well-formed" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        Graphlib.Digraph.fold_edges
          (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) acc ->
            acc
            && Ddg.Dep.latency e.label >= 0
            && Ddg.Dep.distance e.label >= 0
            && (* distance-0 edges must point forward in body order except
                  nothing: ops are id-ordered in builder output *)
            (Ddg.Dep.distance e.label > 0 || e.src < e.dst || e.src = e.dst))
          (Ddg.Graph.graph ddg) true);
    case "critical-path-positive" (fun () ->
        let ddg = Ddg.Graph.of_loop (simple_loop ()) in
        (* load(2) -> mul(2) -> store(4): 8 cycles *)
        check Alcotest.int "cp" 8 (Ddg.Graph.critical_path_length ddg));
  ]

let minii_tests =
  [
    case "res-mii" (fun () ->
        check Alcotest.int "17/16" 2 (Ddg.Minii.res_mii ~width:16 17);
        check Alcotest.int "16/16" 1 (Ddg.Minii.res_mii ~width:16 16);
        check Alcotest.int "0 ops" 1 (Ddg.Minii.res_mii ~width:16 0));
    case "rec-mii-acyclic-is-1" (fun () ->
        let ddg = Ddg.Graph.of_loop (Workload.Kernels.vcopy ~unroll:1) in
        check Alcotest.int "1" 1 (Ddg.Minii.rec_mii ddg));
    case "rec-mii-reduction" (fun () ->
        (* s = s + x with float add latency 2: circuit lat 2 / dist 1 -> 2 *)
        let ddg = Ddg.Graph.of_loop (reduction_loop ()) in
        check Alcotest.int "2" 2 (Ddg.Minii.rec_mii ddg));
    case "rec-mii-int-reduction-is-1" (fun () ->
        let b = Ir.Builder.create () in
        let s = Ir.Builder.fresh b i in
        let x = Ir.Builder.load b i (Ir.Addr.element "x") in
        Ir.Builder.define b Mach.Opcode.Add i ~into:s [ s; x ];
        let loop = Ir.Builder.loop b ~name:"t" ~live_out:[ s ] () in
        check Alcotest.int "1" 1 (Ddg.Minii.rec_mii (Ddg.Graph.of_loop loop)));
    case "rec-mii-memory-distance-3" (fun () ->
        (* x[i] = a*x[i-3]: mem-flow store->load at distance 3; circuit is
           store(4) -> load + load(2) -> mul + mul(2) -> store over
           distance 3: ceil(8/3) = 3 *)
        let loop = Workload.Kernels.mem_rec3 ~unroll:1 in
        let ddg = Ddg.Graph.of_loop loop in
        check Alcotest.int "3" 3 (Ddg.Minii.rec_mii ddg));
    case "rec-mii-long-chain" (fun () ->
        (* x = (x*inv) + y: float mul 2 + float add 2 over distance 1 -> 4 *)
        let loop = Workload.Kernels.first_order_rec ~unroll:1 in
        check Alcotest.int "4" 4 (Ddg.Minii.rec_mii (Ddg.Graph.of_loop loop)));
    case "unrolling-recurrence-scales-recmii" (fun () ->
        (* unroll k chains k dependent updates per iteration *)
        let r1 = Ddg.Minii.rec_mii (Ddg.Graph.of_loop (Workload.Kernels.first_order_rec ~unroll:1)) in
        let r4 = Ddg.Minii.rec_mii (Ddg.Graph.of_loop (Workload.Kernels.first_order_rec ~unroll:4)) in
        check Alcotest.int "4x" (4 * r1) r4);
    case "clustered-res-mii-embedded" (fun () ->
        let mii =
          Ddg.Minii.res_mii_clustered ~machine:m4x4e ~ops_per_cluster:[| 4; 8; 2; 2 |]
            ~copies_per_cluster:[| 1; 0; 0; 0 |]
        in
        (* cluster 1: ceil(8/4) = 2 dominates; cluster 0: ceil(5/4)=2 *)
        check Alcotest.int "2" 2 mii);
    case "clustered-res-mii-copy-unit-ports" (fun () ->
        let mii =
          Ddg.Minii.res_mii_clustered ~machine:m4x4c ~ops_per_cluster:[| 2; 2; 2; 2 |]
            ~copies_per_cluster:[| 5; 0; 0; 0 |]
        in
        (* 5 copies through 2 ports -> ceil(5/2) = 3 *)
        check Alcotest.int "3" 3 mii);
    case "clustered-res-mii-copy-unit-busses" (fun () ->
        let mii =
          Ddg.Minii.res_mii_clustered ~machine:m4x4c ~ops_per_cluster:[| 1; 1; 1; 1 |]
            ~copies_per_cluster:[| 2; 2; 2; 2 |]
        in
        (* 8 copies over 4 busses -> 2 *)
        check Alcotest.int "2" 2 mii);
    qcheck ~count:60 "min-ii-bounds" gen_loop_seed (fun seed ->
        let loop = loop_of_seed seed in
        let ddg = Ddg.Graph.of_loop loop in
        let mii = Ddg.Minii.min_ii ~width:16 ddg in
        mii >= 1
        && mii >= Ddg.Minii.res_mii ~width:16 (Ir.Loop.size loop)
        && mii <= Ddg.Minii.upper_bound ddg);
  ]

let suite =
  [ ("ddg.memdep", memdep_tests); ("ddg.build", build_tests); ("ddg.minii", minii_tests) ]
