(** Aggregate metrics over a set of pipelined loops — the quantities the
    paper's evaluation section reports. *)

type loop_metrics = {
  name : string;
  ideal_ii : int;
  clustered_ii : int;
  degradation : float;    (** 100 · clustered/ideal; 100 = no degradation *)
  ipc_ideal : float;
  ipc_clustered : float;
  n_copies : int;
  n_ops : int;
}

val of_result : Partition.Driver.result -> loop_metrics

val mean_ipc_ideal : loop_metrics list -> float
val mean_ipc_clustered : loop_metrics list -> float

val arithmetic_mean_degradation : loop_metrics list -> float
(** Table 2's arithmetic mean (normalized, 100 = ideal). *)

val harmonic_mean_degradation : loop_metrics list -> float
(** Table 2's harmonic mean. *)

val degradation_histogram : loop_metrics list -> Util.Stats.histogram
(** Figures 5-7: buckets 0%, (0,10), [10,20) … [80,90), >=90 over
    [degradation - 100]. *)

val histogram_labels : string list
(** ["0.00%"; "<10%"; …; ">90%"], matching the figures' x axis. *)

val pct_no_degradation : loop_metrics list -> float
(** Share of loops scheduled at the ideal II — the number Nystrom and
    Eichenberger report (Section 6.3). *)
