(** Rendering of the paper's tables and figures from experiment runs. *)

val table1 : ideal_ipc:float -> Experiment.run list -> Util.Table.t
(** "IPC of Clustered Software Pipelines": one column per configuration,
    an Ideal row and a Clustered row. *)

val table2 : Experiment.run list -> Util.Table.t
(** "Degradation Over Ideal Schedules — Normalized": arithmetic and
    harmonic mean rows. *)

val figure_histogram : Experiment.run -> Experiment.run -> title:string -> Util.Table.t
(** One of Figures 5-7: per-bucket percentage of loops for the embedded
    and copy-unit runs of one cluster count. *)

val ascii_histogram : Experiment.run -> Experiment.run -> title:string -> string
(** The same data as a bar chart for terminal reading. *)

val failures_summary : Experiment.run list -> string
(** Human-readable list of loops that failed to pipeline (expected to be
    empty). *)

val to_csv : Experiment.run list -> string
(** Per-loop results of every run as CSV (header line included): columns
    config, loop, ops, ideal_ii, clustered_ii, degradation, ipc_ideal,
    ipc_clustered, copies. For plotting outside the repo. *)
