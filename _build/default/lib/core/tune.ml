type result = {
  weights : Rcg.Weights.t;
  score : float;
  evaluations : int;
  trace : (int * float) list;
}

let evaluate ~machine ~loops weights =
  let scores =
    List.map
      (fun loop ->
        match
          Partition.Driver.pipeline ~partitioner:(Partition.Driver.Greedy weights) ~machine
            loop
        with
        | Ok r -> r.Partition.Driver.degradation
        | Error _ -> 300.0)
      loops
  in
  Util.Stats.mean scores

let clamp lo hi v = Float.max lo (Float.min hi v)

let random_weights rng : Rcg.Weights.t =
  let log_uniform lo hi =
    exp (log lo +. Util.Prng.float rng (log hi -. log lo))
  in
  {
    Rcg.Weights.depth_base = log_uniform 1.0 20.0;
    critical_boost = log_uniform 0.5 4.0;
    attract_scale = Util.Prng.float rng 2.0;
    repel_scale = Util.Prng.float rng 2.0;
    balance = Util.Prng.float rng 2.0;
  }

let random_search ?(budget = 40) ?(seed = 7) ~machine ~loops () =
  let rng = Util.Prng.create seed in
  let best = ref Rcg.Weights.default in
  let best_score = ref (evaluate ~machine ~loops !best) in
  let trace = ref [ (1, !best_score) ] in
  for i = 2 to budget do
    let w = random_weights rng in
    let s = evaluate ~machine ~loops w in
    if s < !best_score then begin
      best := w;
      best_score := s;
      trace := (i, s) :: !trace
    end
  done;
  { weights = !best; score = !best_score; evaluations = budget; trace = List.rev !trace }

let mutate rng (w : Rcg.Weights.t) : Rcg.Weights.t =
  let factor () = exp (Util.Prng.float rng (2.0 *. log 2.0) -. log 2.0) in
  match Util.Prng.int rng 5 with
  | 0 -> { w with Rcg.Weights.depth_base = clamp 1.0 50.0 (w.Rcg.Weights.depth_base *. factor ()) }
  | 1 ->
      { w with Rcg.Weights.critical_boost = clamp 0.25 8.0 (w.Rcg.Weights.critical_boost *. factor ()) }
  | 2 ->
      { w with Rcg.Weights.attract_scale = clamp 0.0 4.0 (w.Rcg.Weights.attract_scale *. factor ()) }
  | 3 -> { w with Rcg.Weights.repel_scale = clamp 0.0 4.0 (w.Rcg.Weights.repel_scale *. factor ()) }
  | _ -> { w with Rcg.Weights.balance = clamp 0.0 4.0 (w.Rcg.Weights.balance *. factor ()) }

let hill_climb ?(budget = 40) ?(seed = 7) ?(init = Rcg.Weights.default) ~machine ~loops () =
  let rng = Util.Prng.create seed in
  let best = ref init in
  let best_score = ref (evaluate ~machine ~loops !best) in
  let trace = ref [ (1, !best_score) ] in
  for i = 2 to budget do
    let w = mutate rng !best in
    let s = evaluate ~machine ~loops w in
    if s <= !best_score then begin
      if s < !best_score then trace := (i, s) :: !trace;
      best := w;
      best_score := s
    end
  done;
  { weights = !best; score = !best_score; evaluations = budget; trace = List.rev !trace }
