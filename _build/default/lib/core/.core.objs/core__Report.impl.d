lib/core/report.ml: Array Buffer Experiment List Metrics Printf String Util
