lib/core/tune.mli: Ir Mach Rcg
