lib/core/experiment.ml: Ddg Ir Lazy List Mach Metrics Partition Printf Sched Util Workload
