lib/core/experiment.mli: Ir Mach Metrics Partition
