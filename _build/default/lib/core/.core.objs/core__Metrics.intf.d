lib/core/metrics.mli: Partition Util
