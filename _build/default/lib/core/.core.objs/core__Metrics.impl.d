lib/core/metrics.ml: Float Ir List Partition Sched Util
