lib/core/report.mli: Experiment Util
