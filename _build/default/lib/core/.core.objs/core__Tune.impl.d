lib/core/tune.ml: Float List Partition Rcg Util
