(** Off-line stochastic tuning of the RCG weight heuristic.

    Section 7: "we will investigate fine-tuning our greedy heuristic by
    using off-line stochastic optimization techniques" (the authors had
    already done so for scheduling heuristics with genetic algorithms
    [Beaty et al. 1996]). This module implements two such tuners over
    {!Rcg.Weights.t}: pure random search and a (1+1) hill climber with
    multiplicative mutations. The objective is the arithmetic-mean
    degradation of a training set of loops on a target machine — lower is
    better.

    Tuning is deterministic given the seed. Evaluations dominate cost
    (each is a full partition + modulo schedule of every training loop),
    so budgets are counted in evaluations. *)

type result = {
  weights : Rcg.Weights.t;
  score : float;       (** mean degradation achieved, 100 = no loss *)
  evaluations : int;
  trace : (int * float) list;
      (** (evaluation index, best-so-far score) at every improvement *)
}

val evaluate :
  machine:Mach.Machine.t -> loops:Ir.Loop.t list -> Rcg.Weights.t -> float
(** The objective: arithmetic mean degradation; loops that fail to
    pipeline (none in practice) count as 300. *)

val random_search :
  ?budget:int ->
  ?seed:int ->
  machine:Mach.Machine.t ->
  loops:Ir.Loop.t list ->
  unit ->
  result
(** Sample weights log-uniformly from sensible ranges (depth base 1-20,
    boosts 0.5-4, scales 0-2, balance 0-2); keep the best. [budget]
    defaults to 40 evaluations; the default weights are always evaluated
    first so the tuner can only improve on them. *)

val hill_climb :
  ?budget:int ->
  ?seed:int ->
  ?init:Rcg.Weights.t ->
  machine:Mach.Machine.t ->
  loops:Ir.Loop.t list ->
  unit ->
  result
(** (1+1) evolution strategy: mutate one field by a random factor in
    [0.5, 2], accept on improvement-or-equal. [init] defaults to
    {!Rcg.Weights.default}. *)
