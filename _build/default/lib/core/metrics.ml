type loop_metrics = {
  name : string;
  ideal_ii : int;
  clustered_ii : int;
  degradation : float;
  ipc_ideal : float;
  ipc_clustered : float;
  n_copies : int;
  n_ops : int;
}

let of_result (r : Partition.Driver.result) =
  {
    name = Ir.Loop.name r.Partition.Driver.loop;
    ideal_ii = r.Partition.Driver.ideal.Sched.Modulo.ii;
    clustered_ii = r.Partition.Driver.clustered.Sched.Modulo.ii;
    degradation = r.Partition.Driver.degradation;
    ipc_ideal = r.Partition.Driver.ipc_ideal;
    ipc_clustered = r.Partition.Driver.ipc_clustered;
    n_copies = r.Partition.Driver.n_copies;
    n_ops = Ir.Loop.size r.Partition.Driver.loop;
  }

let mean_ipc_ideal ms = Util.Stats.mean (List.map (fun m -> m.ipc_ideal) ms)
let mean_ipc_clustered ms = Util.Stats.mean (List.map (fun m -> m.ipc_clustered) ms)

let arithmetic_mean_degradation ms = Util.Stats.mean (List.map (fun m -> m.degradation) ms)

let harmonic_mean_degradation ms =
  Util.Stats.harmonic_mean (List.map (fun m -> m.degradation) ms)

let degradation_histogram ms =
  Util.Stats.histogram ~edges:Util.Stats.degradation_edges
    (List.map (fun m -> Float.max 0.0 (m.degradation -. 100.0)) ms)

let histogram_labels =
  [ "0.00%"; "<10%"; "<20%"; "<30%"; "<40%"; "<50%"; "<60%"; "<70%"; "<80%"; "<90%"; ">90%" ]

let pct_no_degradation ms =
  match ms with
  | [] -> nan
  | _ ->
      let zero = List.length (List.filter (fun m -> m.degradation <= 100.0) ms) in
      100.0 *. float_of_int zero /. float_of_int (List.length ms)
