let generate ?(seed = 1995) ~index () =
  let rng = Util.Prng.create ((seed * 2_000_033) + index) in
  let cls =
    if Util.Prng.chance rng 0.7 then Mach.Rclass.Float else Mach.Rclass.Int
  in
  let b = Ir.Builder.create () in
  (* Entry: load a handful of scalars that later blocks consume. *)
  let n_globals = Util.Prng.int_in rng 2 5 in
  let globals =
    List.init n_globals (fun k ->
        Ir.Builder.load b cls (Ir.Addr.scalar (Printf.sprintf "g%d" k)))
  in
  let n_body = Util.Prng.int_in rng 1 3 in
  let carried = ref globals in
  let edges = ref [] in
  let prev = ref "entry" in
  for blk = 0 to n_body - 1 do
    let label = Printf.sprintf "body%d" blk in
    let depth = Util.Prng.int_in rng 1 2 in
    Ir.Builder.start_block ~depth b label;
    edges := (!prev, label) :: !edges;
    prev := label;
    let exprs = Util.Prng.int_in rng 2 4 in
    let produced = ref [] in
    for e = 0 to exprs - 1 do
      let x =
        Ir.Builder.load b cls
          (Ir.Addr.make ~offset:e ~stride:1 (Printf.sprintf "a%d_%d" blk e))
      in
      let g = Util.Prng.choose rng !carried in
      let opc =
        Util.Prng.weighted rng
          [ (Mach.Opcode.Add, 3.0); (Mach.Opcode.Sub, 2.0); (Mach.Opcode.Mul, 3.0) ]
      in
      let v = Ir.Builder.binop b opc cls x g in
      if Util.Prng.chance rng 0.5 then
        Ir.Builder.store b cls
          (Ir.Addr.make ~offset:e ~stride:1 (Printf.sprintf "o%d_%d" blk e))
          v
      else produced := v :: !produced
    done;
    if !produced <> [] then carried := !produced @ !carried
  done;
  Ir.Builder.start_block b "exit";
  edges := (!prev, "exit") :: !edges;
  List.iteri
    (fun k v -> Ir.Builder.store b cls (Ir.Addr.scalar (Printf.sprintf "out%d" k)) v)
    (match !carried with
    | a :: b' :: _ -> [ a; b' ]
    | l -> l);
  Ir.Builder.func b ~name:(Printf.sprintf "fn%d" index) ~edges:(List.rev !edges)

let suite ?seed ~n () = List.init n (fun index -> generate ?seed ~index ())
