type profile = {
  min_exprs : int;
  max_exprs : int;
  min_depth : int;
  max_depth : int;
  float_ratio : float;
  reduction_prob : float;
  recurrence_prob : float;
  min_unroll : int;
  max_unroll : int;
}

let spec95 =
  {
    min_exprs = 1;
    max_exprs = 3;
    min_depth = 1;
    max_depth = 3;
    float_ratio = 0.7;
    reduction_prob = 0.35;
    recurrence_prob = 0.42;
    min_unroll = 1;
    max_unroll = 6;
  }

(* Binary operator mix of numeric inner loops: adds/subs dominate,
   multiplies frequent, divides rare. *)
let binop_mix : (Mach.Opcode.t * float) list =
  [
    (Mach.Opcode.Add, 4.0);
    (Mach.Opcode.Sub, 2.0);
    (Mach.Opcode.Mul, 3.0);
    (Mach.Opcode.Div, 0.3);
    (Mach.Opcode.Min, 0.3);
    (Mach.Opcode.Max, 0.3);
  ]

let int_extra_mix : (Mach.Opcode.t * float) list =
  [ (Mach.Opcode.And, 0.5); (Mach.Opcode.Or, 0.5); (Mach.Opcode.Shl, 0.7); (Mach.Opcode.Shr, 0.7) ]

(* A leaf is a load from one of the loop's input streams (mostly) or a
   loop-invariant scalar. Streams are shared across expressions of the
   same loop, as real loops re-read the same arrays. *)
let make_leaf rng b cls ~unroll ~j ~streams ~invariants =
  if Util.Prng.chance rng 0.8 then begin
    let base = Util.Prng.choose rng streams in
    let shift = if Util.Prng.chance rng 0.15 then Util.Prng.int_in rng (-1) 1 else 0 in
    Ir.Builder.load b cls (Ir.Addr.make ~offset:(j + shift) ~stride:unroll base)
  end
  else Util.Prng.choose rng invariants

let rec make_expr rng b cls ~depth ~unroll ~j ~streams ~invariants =
  if depth <= 0 then make_leaf rng b cls ~unroll ~j ~streams ~invariants
  else begin
    let l = make_expr rng b cls ~depth:(depth - 1) ~unroll ~j ~streams ~invariants in
    let r = make_expr rng b cls ~depth:(depth - 1) ~unroll ~j ~streams ~invariants in
    let mix =
      match cls with
      | Mach.Rclass.Float -> binop_mix
      | Mach.Rclass.Int -> binop_mix @ int_extra_mix
    in
    Ir.Builder.binop b (Util.Prng.weighted rng mix) cls l r
  end

let generate ?(profile = spec95) ~seed ~index () =
  let rng = Util.Prng.create ((seed * 1_000_003) + index) in
  let cls =
    if Util.Prng.chance rng profile.float_ratio then Mach.Rclass.Float else Mach.Rclass.Int
  in
  let unroll = Util.Prng.int_in rng profile.min_unroll profile.max_unroll in
  let n_exprs = Util.Prng.int_in rng profile.min_exprs profile.max_exprs in
  let n_streams = Util.Prng.int_in rng 1 (max 1 (n_exprs + 1)) in
  let streams = List.init n_streams (Printf.sprintf "a%d") in
  let b = Ir.Builder.create () in
  let invariants =
    List.init
      (Util.Prng.int_in rng 1 3)
      (fun k -> Ir.Builder.fresh ~name:(Printf.sprintf "inv%d" k) b cls)
  in
  let reduction =
    if Util.Prng.chance rng profile.reduction_prob then
      Some (Ir.Builder.fresh ~name:"racc" b cls)
    else None
  in
  let recurrence =
    if Util.Prng.chance rng profile.recurrence_prob then
      Some (Ir.Builder.fresh ~name:"xrec" b cls)
    else None
  in
  for j = 0 to unroll - 1 do
    for k = 0 to n_exprs - 1 do
      let depth = Util.Prng.int_in rng profile.min_depth profile.max_depth in
      let v = make_expr rng b cls ~depth ~unroll ~j ~streams ~invariants in
      Ir.Builder.store b cls (Ir.Addr.make ~offset:j ~stride:unroll (Printf.sprintf "out%d" k)) v
    done;
    (match reduction with
    | Some acc ->
        let v =
          make_expr rng b cls ~depth:1 ~unroll ~j ~streams ~invariants
        in
        Ir.Builder.define b Mach.Opcode.Add cls ~into:acc [ acc; v ]
    | None -> ());
    match recurrence with
    | Some x ->
        let v = make_leaf rng b cls ~unroll ~j ~streams ~invariants in
        let scaled = Ir.Builder.binop b Mach.Opcode.Mul cls x v in
        Ir.Builder.define b Mach.Opcode.Add cls ~into:x [ scaled; v ];
        Ir.Builder.store b cls (Ir.Addr.make ~offset:j ~stride:unroll "xout") x
    | None -> ()
  done;
  let live_out =
    (match reduction with Some r -> [ r ] | None -> [])
    @ (match recurrence with Some x -> [ x ] | None -> [])
  in
  let name = Printf.sprintf "gen%d" index in
  match live_out with
  | [] -> Ir.Builder.loop b ~name ()
  | l -> Ir.Builder.loop b ~live_out:l ~name ()
