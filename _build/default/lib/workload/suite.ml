let size = 211

let unroll_factors = [ 1; 2; 4; 8 ]

let kernels () =
  List.concat_map
    (fun (_, make) -> List.map (fun unroll -> make ~unroll) unroll_factors)
    Kernels.all

let loops ?(seed = 1995) ?(n = size) () =
  let base = kernels () in
  let n_base = List.length base in
  if n <= n_base then List.filteri (fun i _ -> i < n) base
  else
    base
    @ List.init (n - n_base) (fun i -> Loopgen.generate ~seed ~index:i ())

let by_name ?seed name =
  List.find_opt (fun l -> String.equal (Ir.Loop.name l) name) (loops ?seed ())
