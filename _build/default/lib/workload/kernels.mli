(** Hand-written classic inner loops.

    The paper pipelines 211 single-block innermost loops extracted from
    SPEC95 Fortran. These kernels are the canonical shapes such loops
    take — streaming array arithmetic, reductions, first/second-order
    recurrences, stencils, Livermore-style fragments — written against
    the builder DSL. [unroll] repeats the body with stride-adjusted
    addresses, the standard way those extracted loops reach the ILP the
    paper reports (ideal IPC ≈ 8.6 on a 16-wide machine).

    Reductions and recurrences thread one accumulator across iterations
    (a loop-carried dependence), so their achievable II is recurrence
    bound, exactly the hard case for partitioning that Nystrom and
    Eichenberger optimize for. *)

val vcopy : unroll:int -> Ir.Loop.t
(** y\[i\] = x\[i\] *)

val scale : unroll:int -> Ir.Loop.t
(** y\[i\] = a·x\[i\] *)

val daxpy : unroll:int -> Ir.Loop.t
(** y\[i\] = y\[i\] + a·x\[i\] *)

val dot : unroll:int -> Ir.Loop.t
(** s += x\[i\]·y\[i\] — float reduction *)

val isum : unroll:int -> Ir.Loop.t
(** s += x\[i\] — integer reduction *)

val stencil3 : unroll:int -> Ir.Loop.t
(** y\[i\] = a·x\[i-1\] + b·x\[i\] + c·x\[i+1\] *)

val first_order_rec : unroll:int -> Ir.Loop.t
(** x\[i\] = a·x\[i-1\] + y\[i\] — Livermore K11-style recurrence *)

val tridiag : unroll:int -> Ir.Loop.t
(** x\[i\] = z\[i\]·(y\[i\] − x\[i-1\]) — Livermore K5 *)

val hydro : unroll:int -> Ir.Loop.t
(** x\[i\] = q + y\[i\]·(r·z\[i+10\] + t·z\[i+11\]) — Livermore K1 *)

val iccg_like : unroll:int -> Ir.Loop.t
(** x\[i\] = x\[i\] − z\[i\]·x\[i-1\] − w\[i\]·x\[i+1\] fragment *)

val horner4 : unroll:int -> Ir.Loop.t
(** y\[i\] = ((c4·x+c3)·x+c2)·x+c1)·x+c0 per element *)

val cmul : unroll:int -> Ir.Loop.t
(** complex multiply: (ar+i·ai)(br+i·bi) element-wise *)

val rgb2gray : unroll:int -> Ir.Loop.t
(** integer weighted sum with shifts *)

val maxloc : unroll:int -> Ir.Loop.t
(** m = max(m, x\[i\]) via compare+select — IF-converted reduction *)

val int_filter : unroll:int -> Ir.Loop.t
(** y\[i\] = (x\[i-1\] + 2·x\[i\] + x\[i+1\]) >> 2, integer stencil *)

val mixed_convert : unroll:int -> Ir.Loop.t
(** y\[i\] = float(ix\[i\])·a + b with int index arithmetic *)

val gather : unroll:int -> Ir.Loop.t
(** y\[i\] = x\[idx\[i\]\] + a — indirect access through an index load *)

val state_update : unroll:int -> Ir.Loop.t
(** banded state equation fragment (Livermore K7 flavour) *)

val euler_step : unroll:int -> Ir.Loop.t
(** v += a·dt; p += v·dt — two coupled float recurrences *)

val division_heavy : unroll:int -> Ir.Loop.t
(** y\[i\] = x\[i\] / z\[i\] + w\[i\] — long-latency int divides *)

val all : (string * (unroll:int -> Ir.Loop.t)) list
(** The twenty kernels above with their names. The 211-loop experimental
    suite is built from exactly this list (plus generated loops), so it
    stays fixed; newer kernels go in {!extra}. *)

(** {2 Extended kernel set}

    Additional shapes exercising the rest of the opcode set — fused
    multiply-add, IF-converted [Select] code (the paper's input loops had
    IF-conversion applied), saturation and sum-of-absolute-differences
    idioms. Used by tests and available to the CLI, but deliberately not
    part of the calibrated suite. *)

val fir5 : unroll:int -> Ir.Loop.t
(** 5-tap FIR filter: y\[i\] = Σ c_k·x\[i+k\] *)

val select_threshold : unroll:int -> Ir.Loop.t
(** IF-converted: y\[i\] = (x\[i\] > t) ? a·x\[i\] : x\[i\] via Cmp+Select *)

val clip : unroll:int -> Ir.Loop.t
(** y\[i\] = min(max(x\[i\], lo), hi) — integer saturation *)

val sad : unroll:int -> Ir.Loop.t
(** s += |a\[i\] − b\[i\]| — sum of absolute differences reduction *)

val lerp : unroll:int -> Ir.Loop.t
(** y\[i\] = a\[i\] + t·(b\[i\] − a\[i\]) *)

val madd_horner : unroll:int -> Ir.Loop.t
(** Horner evaluation using fused multiply-add operations *)

val alpha_blend : unroll:int -> Ir.Loop.t
(** integer o\[i\] = (α·p\[i\] + (256−α)·q\[i\]) >> 8 *)

val complex_norm2 : unroll:int -> Ir.Loop.t
(** s += re\[i\]² + im\[i\]² — reduction over complex magnitudes *)

val mem_rec3 : unroll:int -> Ir.Loop.t
(** x\[i\] = a·x\[i-3\] — a distance-3 {e memory} recurrence: three
    independent chains interleave, so RecMII = ⌈chain latency / 3⌉ *)

val extra : (string * (unroll:int -> Ir.Loop.t)) list
(** The extended kernels with their names. *)
