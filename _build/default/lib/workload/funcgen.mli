(** Seeded random whole functions for the whole-program experiment.

    A generated function has the shape of a numeric routine: an entry
    block loading globals/arguments, a chain of loop-nest body blocks at
    depths 1..2 computing over arrays and entry-defined values, and an
    exit block storing results. Values defined in one block are used in
    later ones, which is precisely what makes global (cross-block)
    partitioning matter. *)

val generate : ?seed:int -> index:int -> unit -> Ir.Func.t
(** Deterministic in (seed, index); seed defaults to 1995. *)

val suite : ?seed:int -> n:int -> unit -> Ir.Func.t list
