let f = Mach.Rclass.Float
let i = Mach.Rclass.Int

(* Array reference for iteration-slice [j] of an [unroll]-way unrolled
   body: base[unroll*i + j + shift]. *)
let aref ~unroll ~j ?(shift = 0) base = Ir.Addr.make ~offset:(j + shift) ~stride:unroll base

let with_unroll ~unroll ~name body =
  if unroll < 1 then invalid_arg "Kernels: unroll must be >= 1";
  let b = Ir.Builder.create () in
  let extra = body b in
  let name = Printf.sprintf "%s-u%d" name unroll in
  match extra with
  | [] -> Ir.Builder.loop b ~name ()
  | live_out -> Ir.Builder.loop b ~live_out ~name ()

let each_slice ~unroll g = List.init unroll g |> List.iter (fun k -> k ())

let vcopy ~unroll =
  with_unroll ~unroll ~name:"vcopy" (fun b ->
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          Ir.Builder.store b f (aref ~unroll ~j "y") x);
      [])

let scale ~unroll =
  with_unroll ~unroll ~name:"scale" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let ax = Ir.Builder.binop b Mach.Opcode.Mul f a x in
          Ir.Builder.store b f (aref ~unroll ~j "y") ax);
      [])

let daxpy ~unroll =
  with_unroll ~unroll ~name:"daxpy" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let y = Ir.Builder.load b f (aref ~unroll ~j "y") in
          let ax = Ir.Builder.binop b Mach.Opcode.Mul f a x in
          let s = Ir.Builder.binop b Mach.Opcode.Add f y ax in
          Ir.Builder.store b f (aref ~unroll ~j "y") s);
      [])

let dot ~unroll =
  with_unroll ~unroll ~name:"dot" (fun b ->
      let s = Ir.Builder.fresh ~name:"s" b f in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let y = Ir.Builder.load b f (aref ~unroll ~j "y") in
          let xy = Ir.Builder.binop b Mach.Opcode.Mul f x y in
          Ir.Builder.define b Mach.Opcode.Add f ~into:s [ s; xy ]);
      [ s ])

let isum ~unroll =
  with_unroll ~unroll ~name:"isum" (fun b ->
      let s = Ir.Builder.fresh ~name:"s" b i in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b i (aref ~unroll ~j "ix") in
          Ir.Builder.define b Mach.Opcode.Add i ~into:s [ s; x ]);
      [ s ])

let stencil3 ~unroll =
  with_unroll ~unroll ~name:"stencil3" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      let c1 = Ir.Builder.fresh ~name:"b" b f in
      let c2 = Ir.Builder.fresh ~name:"c" b f in
      each_slice ~unroll (fun j () ->
          let xm = Ir.Builder.load b f (aref ~unroll ~j ~shift:(-1) "x") in
          let x0 = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let xp = Ir.Builder.load b f (aref ~unroll ~j ~shift:1 "x") in
          let t1 = Ir.Builder.binop b Mach.Opcode.Mul f a xm in
          let t2 = Ir.Builder.binop b Mach.Opcode.Mul f c1 x0 in
          let t3 = Ir.Builder.binop b Mach.Opcode.Mul f c2 xp in
          let s1 = Ir.Builder.binop b Mach.Opcode.Add f t1 t2 in
          let s2 = Ir.Builder.binop b Mach.Opcode.Add f s1 t3 in
          Ir.Builder.store b f (aref ~unroll ~j "y") s2);
      [])

let first_order_rec ~unroll =
  with_unroll ~unroll ~name:"rec1" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      let x = Ir.Builder.fresh ~name:"xprev" b f in
      each_slice ~unroll (fun j () ->
          let y = Ir.Builder.load b f (aref ~unroll ~j "y") in
          let ax = Ir.Builder.binop b Mach.Opcode.Mul f a x in
          Ir.Builder.define b Mach.Opcode.Add f ~into:x [ ax; y ];
          Ir.Builder.store b f (aref ~unroll ~j "x") x);
      [ x ])

let tridiag ~unroll =
  with_unroll ~unroll ~name:"tridiag" (fun b ->
      let x = Ir.Builder.fresh ~name:"xprev" b f in
      each_slice ~unroll (fun j () ->
          let z = Ir.Builder.load b f (aref ~unroll ~j "z") in
          let y = Ir.Builder.load b f (aref ~unroll ~j "y") in
          let d = Ir.Builder.binop b Mach.Opcode.Sub f y x in
          Ir.Builder.define b Mach.Opcode.Mul f ~into:x [ z; d ];
          Ir.Builder.store b f (aref ~unroll ~j "x") x);
      [ x ])

let hydro ~unroll =
  with_unroll ~unroll ~name:"hydro" (fun b ->
      let q = Ir.Builder.fresh ~name:"q" b f in
      let r = Ir.Builder.fresh ~name:"r" b f in
      let t = Ir.Builder.fresh ~name:"t" b f in
      each_slice ~unroll (fun j () ->
          let z10 = Ir.Builder.load b f (aref ~unroll ~j ~shift:10 "z") in
          let z11 = Ir.Builder.load b f (aref ~unroll ~j ~shift:11 "z") in
          let y = Ir.Builder.load b f (aref ~unroll ~j "y") in
          let rz = Ir.Builder.binop b Mach.Opcode.Mul f r z10 in
          let tz = Ir.Builder.binop b Mach.Opcode.Mul f t z11 in
          let sum = Ir.Builder.binop b Mach.Opcode.Add f rz tz in
          let ys = Ir.Builder.binop b Mach.Opcode.Mul f y sum in
          let x = Ir.Builder.binop b Mach.Opcode.Add f q ys in
          Ir.Builder.store b f (aref ~unroll ~j "x") x);
      [])

let iccg_like ~unroll =
  with_unroll ~unroll ~name:"iccg" (fun b ->
      let xp = Ir.Builder.fresh ~name:"xprev" b f in
      each_slice ~unroll (fun j () ->
          let z = Ir.Builder.load b f (aref ~unroll ~j "z") in
          let w = Ir.Builder.load b f (aref ~unroll ~j "w") in
          let xn = Ir.Builder.load b f (aref ~unroll ~j ~shift:1 "x") in
          let x0 = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let t1 = Ir.Builder.binop b Mach.Opcode.Mul f z xp in
          let t2 = Ir.Builder.binop b Mach.Opcode.Mul f w xn in
          let d1 = Ir.Builder.binop b Mach.Opcode.Sub f x0 t1 in
          Ir.Builder.define b Mach.Opcode.Sub f ~into:xp [ d1; t2 ];
          Ir.Builder.store b f (aref ~unroll ~j "xout") xp);
      [ xp ])

let horner4 ~unroll =
  with_unroll ~unroll ~name:"horner4" (fun b ->
      let c = Array.init 5 (fun k -> Ir.Builder.fresh ~name:(Printf.sprintf "c%d" k) b f) in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let acc = ref c.(4) in
          for k = 3 downto 0 do
            let m = Ir.Builder.binop b Mach.Opcode.Mul f !acc x in
            acc := Ir.Builder.binop b Mach.Opcode.Add f m c.(k)
          done;
          Ir.Builder.store b f (aref ~unroll ~j "y") !acc);
      [])

let cmul ~unroll =
  with_unroll ~unroll ~name:"cmul" (fun b ->
      each_slice ~unroll (fun j () ->
          let ar = Ir.Builder.load b f (aref ~unroll ~j "ar") in
          let ai = Ir.Builder.load b f (aref ~unroll ~j "ai") in
          let br = Ir.Builder.load b f (aref ~unroll ~j "br") in
          let bi = Ir.Builder.load b f (aref ~unroll ~j "bi") in
          let rr = Ir.Builder.binop b Mach.Opcode.Mul f ar br in
          let ii = Ir.Builder.binop b Mach.Opcode.Mul f ai bi in
          let ri = Ir.Builder.binop b Mach.Opcode.Mul f ar bi in
          let ir = Ir.Builder.binop b Mach.Opcode.Mul f ai br in
          let re = Ir.Builder.binop b Mach.Opcode.Sub f rr ii in
          let im = Ir.Builder.binop b Mach.Opcode.Add f ri ir in
          Ir.Builder.store b f (aref ~unroll ~j "cr") re;
          Ir.Builder.store b f (aref ~unroll ~j "ci") im);
      [])

let rgb2gray ~unroll =
  with_unroll ~unroll ~name:"rgb2gray" (fun b ->
      let wr = Ir.Builder.fresh ~name:"wr" b i in
      let wg = Ir.Builder.fresh ~name:"wg" b i in
      let wb = Ir.Builder.fresh ~name:"wb" b i in
      let eight = Ir.Builder.fresh ~name:"eight" b i in
      each_slice ~unroll (fun j () ->
          let r = Ir.Builder.load b i (aref ~unroll ~j "r") in
          let g = Ir.Builder.load b i (aref ~unroll ~j "g") in
          let bl = Ir.Builder.load b i (aref ~unroll ~j "b") in
          let tr = Ir.Builder.binop b Mach.Opcode.Mul i r wr in
          let tg = Ir.Builder.binop b Mach.Opcode.Mul i g wg in
          let tb = Ir.Builder.binop b Mach.Opcode.Mul i bl wb in
          let s1 = Ir.Builder.binop b Mach.Opcode.Add i tr tg in
          let s2 = Ir.Builder.binop b Mach.Opcode.Add i s1 tb in
          let sh = Ir.Builder.binop b Mach.Opcode.Shr i s2 eight in
          Ir.Builder.store b i (aref ~unroll ~j "gray") sh);
      [])

let maxloc ~unroll =
  with_unroll ~unroll ~name:"maxloc" (fun b ->
      let m = Ir.Builder.fresh ~name:"m" b f in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          Ir.Builder.define b Mach.Opcode.Max f ~into:m [ m; x ]);
      [ m ])

let int_filter ~unroll =
  with_unroll ~unroll ~name:"ifilter" (fun b ->
      let two = Ir.Builder.fresh ~name:"two" b i in
      each_slice ~unroll (fun j () ->
          let xm = Ir.Builder.load b i (aref ~unroll ~j ~shift:(-1) "x") in
          let x0 = Ir.Builder.load b i (aref ~unroll ~j "x") in
          let xp = Ir.Builder.load b i (aref ~unroll ~j ~shift:1 "x") in
          let x2 = Ir.Builder.binop b Mach.Opcode.Shl i x0 two in
          let s1 = Ir.Builder.binop b Mach.Opcode.Add i xm x2 in
          let s2 = Ir.Builder.binop b Mach.Opcode.Add i s1 xp in
          let y = Ir.Builder.binop b Mach.Opcode.Shr i s2 two in
          Ir.Builder.store b i (aref ~unroll ~j "y") y);
      [])

let mixed_convert ~unroll =
  with_unroll ~unroll ~name:"mixed" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      let c = Ir.Builder.fresh ~name:"c" b f in
      each_slice ~unroll (fun j () ->
          let ix = Ir.Builder.load b i (aref ~unroll ~j "ix") in
          let fx = Ir.Builder.unop b Mach.Opcode.Convert f ix in
          let m = Ir.Builder.binop b Mach.Opcode.Mul f fx a in
          let y = Ir.Builder.binop b Mach.Opcode.Add f m c in
          Ir.Builder.store b f (aref ~unroll ~j "y") y);
      [])

let gather ~unroll =
  with_unroll ~unroll ~name:"gather" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      each_slice ~unroll (fun j () ->
          let idx = Ir.Builder.load b i (aref ~unroll ~j "idx") in
          let x = Ir.Builder.load ~index:idx b f (Ir.Addr.make ~stride:0 "xtab") in
          let y = Ir.Builder.binop b Mach.Opcode.Add f x a in
          Ir.Builder.store b f (aref ~unroll ~j "y") y);
      [])

let state_update ~unroll =
  with_unroll ~unroll ~name:"state" (fun b ->
      let r = Ir.Builder.fresh ~name:"r" b f in
      let t = Ir.Builder.fresh ~name:"t" b f in
      each_slice ~unroll (fun j () ->
          let u0 = Ir.Builder.load b f (aref ~unroll ~j "u") in
          let u3 = Ir.Builder.load b f (aref ~unroll ~j ~shift:3 "u") in
          let u6 = Ir.Builder.load b f (aref ~unroll ~j ~shift:6 "u") in
          let t1 = Ir.Builder.binop b Mach.Opcode.Mul f r u3 in
          let t2 = Ir.Builder.binop b Mach.Opcode.Mul f t u6 in
          let s1 = Ir.Builder.binop b Mach.Opcode.Add f u0 t1 in
          let s2 = Ir.Builder.binop b Mach.Opcode.Add f s1 t2 in
          Ir.Builder.store b f (aref ~unroll ~j "xout") s2);
      [])

let euler_step ~unroll =
  with_unroll ~unroll ~name:"euler" (fun b ->
      let dt = Ir.Builder.fresh ~name:"dt" b f in
      let v = Ir.Builder.fresh ~name:"v" b f in
      let p = Ir.Builder.fresh ~name:"p" b f in
      each_slice ~unroll (fun j () ->
          let acc = Ir.Builder.load b f (aref ~unroll ~j "acc") in
          let adt = Ir.Builder.binop b Mach.Opcode.Mul f acc dt in
          Ir.Builder.define b Mach.Opcode.Add f ~into:v [ v; adt ];
          let vdt = Ir.Builder.binop b Mach.Opcode.Mul f v dt in
          Ir.Builder.define b Mach.Opcode.Add f ~into:p [ p; vdt ];
          Ir.Builder.store b f (aref ~unroll ~j "pos") p);
      [ v; p ])

let division_heavy ~unroll =
  with_unroll ~unroll ~name:"divides" (fun b ->
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b i (aref ~unroll ~j "x") in
          let z = Ir.Builder.load b i (aref ~unroll ~j "z") in
          let w = Ir.Builder.load b i (aref ~unroll ~j "w") in
          let q = Ir.Builder.binop b Mach.Opcode.Div i x z in
          let y = Ir.Builder.binop b Mach.Opcode.Add i q w in
          Ir.Builder.store b i (aref ~unroll ~j "y") y);
      [])

let all =
  [
    ("vcopy", vcopy);
    ("scale", scale);
    ("daxpy", daxpy);
    ("dot", dot);
    ("isum", isum);
    ("stencil3", stencil3);
    ("rec1", first_order_rec);
    ("tridiag", tridiag);
    ("hydro", hydro);
    ("iccg", iccg_like);
    ("horner4", horner4);
    ("cmul", cmul);
    ("rgb2gray", rgb2gray);
    ("maxloc", maxloc);
    ("ifilter", int_filter);
    ("mixed", mixed_convert);
    ("gather", gather);
    ("state", state_update);
    ("euler", euler_step);
    ("divides", division_heavy);
  ]

let fir5 ~unroll =
  with_unroll ~unroll ~name:"fir5" (fun b ->
      let c = Array.init 5 (fun k -> Ir.Builder.fresh ~name:(Printf.sprintf "c%d" k) b f) in
      each_slice ~unroll (fun j () ->
          let acc = ref None in
          for k = 0 to 4 do
            let x = Ir.Builder.load b f (aref ~unroll ~j ~shift:k "x") in
            let t = Ir.Builder.binop b Mach.Opcode.Mul f c.(k) x in
            acc :=
              Some
                (match !acc with
                | None -> t
                | Some a -> Ir.Builder.binop b Mach.Opcode.Add f a t)
          done;
          Ir.Builder.store b f (aref ~unroll ~j "y") (Option.get !acc));
      [])

let select_threshold ~unroll =
  with_unroll ~unroll ~name:"ifconv" (fun b ->
      let t = Ir.Builder.fresh ~name:"t" b f in
      let a = Ir.Builder.fresh ~name:"a" b f in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let cmp = Ir.Builder.binop b Mach.Opcode.Cmp f x t in
          let ax = Ir.Builder.binop b Mach.Opcode.Mul f a x in
          let y = Ir.Builder.ternop b Mach.Opcode.Select f cmp ax x in
          Ir.Builder.store b f (aref ~unroll ~j "y") y);
      [])

let clip ~unroll =
  with_unroll ~unroll ~name:"clip" (fun b ->
      let lo = Ir.Builder.fresh ~name:"lo" b i in
      let hi = Ir.Builder.fresh ~name:"hi" b i in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b i (aref ~unroll ~j "x") in
          let m = Ir.Builder.binop b Mach.Opcode.Max i x lo in
          let y = Ir.Builder.binop b Mach.Opcode.Min i m hi in
          Ir.Builder.store b i (aref ~unroll ~j "y") y);
      [])

let sad ~unroll =
  with_unroll ~unroll ~name:"sad" (fun b ->
      let s = Ir.Builder.fresh ~name:"s" b i in
      each_slice ~unroll (fun j () ->
          let a = Ir.Builder.load b i (aref ~unroll ~j "a") in
          let c = Ir.Builder.load b i (aref ~unroll ~j "b") in
          let d = Ir.Builder.binop b Mach.Opcode.Sub i a c in
          let ad = Ir.Builder.unop b Mach.Opcode.Abs i d in
          Ir.Builder.define b Mach.Opcode.Add i ~into:s [ s; ad ]);
      [ s ])

let lerp ~unroll =
  with_unroll ~unroll ~name:"lerp" (fun b ->
      let t = Ir.Builder.fresh ~name:"t" b f in
      each_slice ~unroll (fun j () ->
          let a = Ir.Builder.load b f (aref ~unroll ~j "a") in
          let c = Ir.Builder.load b f (aref ~unroll ~j "b") in
          let d = Ir.Builder.binop b Mach.Opcode.Sub f c a in
          let y = Ir.Builder.ternop b Mach.Opcode.Madd f t d a in
          Ir.Builder.store b f (aref ~unroll ~j "y") y);
      [])

let madd_horner ~unroll =
  with_unroll ~unroll ~name:"madd-horner" (fun b ->
      let c = Array.init 4 (fun k -> Ir.Builder.fresh ~name:(Printf.sprintf "c%d" k) b f) in
      each_slice ~unroll (fun j () ->
          let x = Ir.Builder.load b f (aref ~unroll ~j "x") in
          let acc = ref c.(3) in
          for k = 2 downto 0 do
            acc := Ir.Builder.ternop b Mach.Opcode.Madd f !acc x c.(k)
          done;
          Ir.Builder.store b f (aref ~unroll ~j "y") !acc);
      [])

let alpha_blend ~unroll =
  with_unroll ~unroll ~name:"blend" (fun b ->
      let alpha = Ir.Builder.fresh ~name:"alpha" b i in
      let inv = Ir.Builder.fresh ~name:"inv" b i in
      let eight = Ir.Builder.fresh ~name:"eight" b i in
      each_slice ~unroll (fun j () ->
          let p = Ir.Builder.load b i (aref ~unroll ~j "p") in
          let q = Ir.Builder.load b i (aref ~unroll ~j "q") in
          let ap = Ir.Builder.binop b Mach.Opcode.Mul i alpha p in
          let aq = Ir.Builder.binop b Mach.Opcode.Mul i inv q in
          let s = Ir.Builder.binop b Mach.Opcode.Add i ap aq in
          let o = Ir.Builder.binop b Mach.Opcode.Shr i s eight in
          Ir.Builder.store b i (aref ~unroll ~j "o") o);
      [])

let complex_norm2 ~unroll =
  with_unroll ~unroll ~name:"cnorm2" (fun b ->
      let s = Ir.Builder.fresh ~name:"s" b f in
      each_slice ~unroll (fun j () ->
          let re = Ir.Builder.load b f (aref ~unroll ~j "re") in
          let im = Ir.Builder.load b f (aref ~unroll ~j "im") in
          let r2 = Ir.Builder.binop b Mach.Opcode.Mul f re re in
          let m = Ir.Builder.ternop b Mach.Opcode.Madd f im im r2 in
          Ir.Builder.define b Mach.Opcode.Add f ~into:s [ s; m ]);
      [ s ])

let mem_rec3 ~unroll =
  with_unroll ~unroll ~name:"memrec3" (fun b ->
      let a = Ir.Builder.fresh ~name:"a" b f in
      each_slice ~unroll (fun j () ->
          let prev = Ir.Builder.load b f (aref ~unroll ~j ~shift:(-3) "x") in
          let v = Ir.Builder.binop b Mach.Opcode.Mul f a prev in
          Ir.Builder.store b f (aref ~unroll ~j "x") v);
      [])

let extra =
  [
    ("fir5", fir5);
    ("memrec3", mem_rec3);
    ("ifconv", select_threshold);
    ("clip", clip);
    ("sad", sad);
    ("lerp", lerp);
    ("madd-horner", madd_horner);
    ("blend", alpha_blend);
    ("cnorm2", complex_norm2);
  ]
