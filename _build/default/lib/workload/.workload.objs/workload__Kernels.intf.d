lib/workload/kernels.mli: Ir
