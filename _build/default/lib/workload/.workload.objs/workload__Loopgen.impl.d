lib/workload/loopgen.ml: Ir List Mach Printf Util
