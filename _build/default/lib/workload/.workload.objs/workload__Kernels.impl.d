lib/workload/kernels.ml: Array Ir List Mach Option Printf
