lib/workload/suite.ml: Ir Kernels List Loopgen String
