lib/workload/funcgen.ml: Ir List Mach Printf Util
