lib/workload/funcgen.mli: Ir
