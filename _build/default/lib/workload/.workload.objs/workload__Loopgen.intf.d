lib/workload/loopgen.mli: Ir
