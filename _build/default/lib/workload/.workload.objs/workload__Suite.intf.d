lib/workload/suite.mli: Ir
