(** Seeded random generation of SPEC95-style innermost loops.

    Produces single-block loops with the statistical shape of extracted
    Fortran inner loops: a few loaded array streams, arithmetic DAGs over
    them (FP-heavy with an integer minority), optional reductions and
    short recurrences, and one store per computed value. [unroll]
    replicates independent slices, which is how high ideal IPC arises.
    Every parameter is drawn from the given {!Util.Prng.t}, so a seed
    fully determines the loop. *)

type profile = {
  min_exprs : int;        (** independent expression trees per slice *)
  max_exprs : int;
  min_depth : int;        (** operator-tree depth of each expression *)
  max_depth : int;
  float_ratio : float;    (** probability a loop is floating point *)
  reduction_prob : float; (** probability the loop carries a reduction *)
  recurrence_prob : float;(** probability of a first-order recurrence *)
  min_unroll : int;
  max_unroll : int;
}

val spec95 : profile
(** Tuned so the 16-wide ideal pipelines of a generated suite average an
    IPC close to the paper's reported 8.6. *)

val generate : ?profile:profile -> seed:int -> index:int -> unit -> Ir.Loop.t
(** One random loop named ["gen<index>"]. Equal (seed, index) pairs yield
    identical loops. *)
