(** The experimental loop suite.

    The paper pipelines 211 loops extracted from SPEC95. Ours are the
    {!Kernels} classics (at several unroll factors, covering both
    recurrence-bound and resource-bound regimes) topped up with seeded
    {!Loopgen} loops to exactly 211. The suite is a pure function of
    [seed], so every table and figure in the bench harness is
    reproducible. *)

val size : int
(** 211, as in the paper. *)

val kernels : unit -> Ir.Loop.t list
(** The hand-written kernels at unroll factors 1, 2, 4 and 8. *)

val loops : ?seed:int -> ?n:int -> unit -> Ir.Loop.t list
(** [n] loops ([size] by default): every kernel variant, then generated
    loops. [seed] defaults to 1995. *)

val by_name : ?seed:int -> string -> Ir.Loop.t option
(** Find a suite loop by name (e.g. ["daxpy-u4"], ["gen17"]). *)
