(** Operation latencies.

    Default table is exactly Section 6.1 of the paper:

    - integer copies: 2 cycles; floating copies: 3 cycles
    - loads: 2 cycles; stores: 4 cycles
    - integer multiply: 5; integer divide: 12; other integer: 1
    - floating multiply: 2; floating divide: 2; other floating: 2

    A latency table is a plain function so alternative targets (for the
    retargetability examples) can override individual entries. *)

type t = Opcode.t -> Rclass.t -> int
(** Cycles from issue until the result may be consumed (>= 1). *)

val paper : t
(** The Section 6.1 table above. *)

val unit : t
(** All operations take one cycle; used by the paper's Section 4.2 worked
    example ("for simplicity we assume unit latency"). *)

val override : t -> (Opcode.t * Rclass.t * int) list -> t
(** [override base entries] returns [base] with the given entries
    replaced. *)

val max_latency : t -> int
(** Largest latency over all opcodes and classes; a safe horizon bound for
    schedulers. *)
