(** Register classes.

    The paper's machine distinguishes integer values from floating-point
    values: they have different operation latencies and different
    inter-cluster copy latencies (2 cycles for integers, 3 for floats). *)

type t = Int | Float

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list
