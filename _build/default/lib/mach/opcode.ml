type t =
  | Load
  | Store
  | Add
  | Sub
  | Mul
  | Div
  | Neg
  | Abs
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp
  | Select
  | Madd
  | Convert
  | Copy
  | Const
  | Nop

let all =
  [ Load; Store; Add; Sub; Mul; Div; Neg; Abs; Min; Max; And; Or; Xor; Shl; Shr; Cmp;
    Select; Madd; Convert; Copy; Const; Nop ]

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let to_string = function
  | Load -> "load"
  | Store -> "store"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Neg -> "neg"
  | Abs -> "abs"
  | Min -> "min"
  | Max -> "max"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Cmp -> "cmp"
  | Select -> "select"
  | Madd -> "madd"
  | Convert -> "convert"
  | Copy -> "copy"
  | Const -> "const"
  | Nop -> "nop"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_memory = function Load | Store -> true | _ -> false
let is_copy = function Copy -> true | _ -> false

let arity = function
  | Nop | Const -> 0
  | Load | Neg | Abs | Copy | Convert -> 1
  | Store | Add | Sub | Mul | Div | Min | Max | And | Or | Xor | Shl | Shr | Cmp -> 2
  | Select | Madd -> 3

let has_dest = function Store | Nop -> false | _ -> true
