(** Clustered-VLIW machine descriptions.

    The paper's meta-model is a 16-wide ILP machine whose functional units
    are grouped into [clusters] clusters of [fus_per_cluster] general-purpose
    units, one multi-ported register bank per cluster. Two mechanisms move
    values between banks:

    - {b Embedded}: an explicit [Copy] operation occupies an issue slot of
      one of the destination cluster's functional units.
    - {b Copy-unit}: copies issue on dedicated per-cluster copy ports and
      travel over one of [busses] global busses; no functional-unit slot is
      consumed. Following the prose of Section 6.1/6.2 (the printed port
      formula is OCR-garbled but fixes 1 port/cluster at N=2 and 3 at N=8)
      we provision [log2 N] copy ports per cluster and [N] busses, each bus
      busy for one cycle per copy initiation.

    The {b ideal} machine is the same width with a single monolithic bank:
    modelled as one cluster as wide as the machine with no copy cost. *)

type copy_model =
  | Embedded
  | Copy_unit

(** Functional-unit classes. The paper's machine is all {!General}
    ("general-purpose functional units ... make the partitioning more
    difficult"); the comparison studies it discusses use specialized
    mixes (Ozer et al.: "a floating-point unit, a load/store unit and 2
    integer units with each register bank"). *)
type fu_class =
  | General   (** executes anything *)
  | Integer   (** integer arithmetic/logic *)
  | Float_fu  (** floating-point arithmetic *)
  | Memory    (** loads and stores *)

type t = private {
  name : string;
  clusters : int;            (** number of register banks / clusters, >= 1 *)
  fus_per_cluster : int;     (** total FUs per cluster, >= 1 *)
  fu_mix : (fu_class * int) list;
      (** per-cluster unit mix; counts sum to [fus_per_cluster]. The
          default is all-[General], the paper's model. *)
  copy_model : copy_model;
  copy_ports : int;          (** per-cluster copy issue ports (copy-unit model) *)
  busses : int;              (** global inter-cluster busses (copy-unit model) *)
  regs_per_bank : int;       (** architectural registers per bank, for Chaitin/Briggs *)
  latency : Latency.t;
}

val make :
  ?name:string ->
  ?copy_ports:int ->
  ?busses:int ->
  ?regs_per_bank:int ->
  ?latency:Latency.t ->
  ?fu_mix:(fu_class * int) list ->
  clusters:int ->
  fus_per_cluster:int ->
  copy_model:copy_model ->
  unit ->
  t
(** Build a machine. [copy_ports] defaults to [max 1 (log2 clusters)],
    [busses] to [clusters], [regs_per_bank] to 32, [latency] to
    {!Latency.paper}, [fu_mix] to [[General, fus_per_cluster]]. Raises
    [Invalid_argument] on non-positive geometry, a mix with non-positive
    counts or duplicate classes, or a mix not summing to
    [fus_per_cluster]. *)

val ozer_cluster_mix : (fu_class * int) list
(** Ozer et al.'s 4-unit cluster: 1 FP, 1 load/store, 2 integer. *)

val is_general_only : t -> bool
(** True when every unit is {!General} (the paper's model) — schedulers
    use the cheaper untyped resource path. *)

val allowed_classes : Opcode.t -> Rclass.t -> fu_class list
(** Which specialized unit classes can execute an operation (besides
    {!General}, which always can): memory ops need [Memory], float
    arithmetic [Float_fu], everything else [Integer]. *)

val fu_class_name : fu_class -> string

val ideal : ?name:string -> ?regs_per_bank:int -> ?latency:Latency.t -> width:int -> unit -> t
(** Monolithic machine of the given issue width: one cluster, no copies
    ever needed. *)

val monolithic_of : t -> t
(** The paper's "ideal" counterpart of a clustered machine: same total
    width, same latencies, same functional-unit mix (all clusters' units
    pooled), but a single register bank. *)

val paper_ideal : t
(** The paper's 16-wide single-bank reference machine. *)

val paper_clustered : clusters:int -> copy_model:copy_model -> t
(** The paper's 16-wide machine as [clusters] ∈ {2,4,8} clusters of
    16/clusters units with the given copy mechanism. Raises
    [Invalid_argument] if [clusters] does not divide 16. *)

val width : t -> int
(** Total functional units = clusters × fus_per_cluster. *)

val is_monolithic : t -> bool
(** True when the machine has a single bank (no partitioning needed). *)

val copy_latency : t -> Rclass.t -> int
(** Latency of an inter-cluster copy of the given class. *)

val valid_cluster : t -> int -> bool
(** Whether a cluster index is in range. *)

val copy_model_name : copy_model -> string
val pp : Format.formatter -> t -> unit
