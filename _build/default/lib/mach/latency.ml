type t = Opcode.t -> Rclass.t -> int

let paper (op : Opcode.t) (cls : Rclass.t) =
  match (op, cls) with
  | Opcode.Copy, Rclass.Int -> 2
  | Opcode.Copy, Rclass.Float -> 3
  | Opcode.Const, _ -> 1
  | Opcode.Load, _ -> 2
  | Opcode.Store, _ -> 4
  | (Opcode.Mul | Opcode.Madd), Rclass.Int -> 5
  | Opcode.Div, Rclass.Int -> 12
  | _, Rclass.Int -> 1
  | _, Rclass.Float -> 2

let unit (_ : Opcode.t) (_ : Rclass.t) = 1

let override base entries op cls =
  let rec find = function
    | [] -> base op cls
    | (o, c, l) :: rest -> if Opcode.equal o op && Rclass.equal c cls then l else find rest
  in
  find entries

let max_latency t =
  List.fold_left
    (fun acc op -> List.fold_left (fun acc cls -> max acc (t op cls)) acc Rclass.all)
    1 Opcode.all
