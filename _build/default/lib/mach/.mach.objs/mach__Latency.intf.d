lib/mach/latency.mli: Opcode Rclass
