lib/mach/opcode.ml: Format Stdlib
