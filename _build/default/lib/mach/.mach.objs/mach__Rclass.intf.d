lib/mach/rclass.mli: Format
