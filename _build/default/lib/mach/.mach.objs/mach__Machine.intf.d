lib/mach/machine.mli: Format Latency Opcode Rclass
