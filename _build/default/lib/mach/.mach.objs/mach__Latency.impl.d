lib/mach/latency.ml: List Opcode Rclass
