lib/mach/rclass.ml: Format
