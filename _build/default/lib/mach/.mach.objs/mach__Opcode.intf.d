lib/mach/opcode.mli: Format
