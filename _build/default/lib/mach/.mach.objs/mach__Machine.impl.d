lib/mach/machine.ml: Format Latency List Opcode Printf Rclass
