(** Operation codes of the target meta-architecture.

    The paper's evaluation machine has 16 *general-purpose* functional
    units: any unit can execute any opcode, so opcodes only matter for
    latency (via {!Latency}) and for dependence construction (memory ops,
    copies). The set below covers the operations appearing in SPEC95-style
    inner loops plus the [Copy] operation inserted for cross-bank moves. *)

type t =
  | Load        (** memory read; 2 cycles *)
  | Store       (** memory write; 4 cycles; has no destination register *)
  | Add
  | Sub
  | Mul         (** int 5 cycles, float 2 *)
  | Div         (** int 12 cycles, float 2 *)
  | Neg
  | Abs
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Cmp
  | Select      (** conditional select, models IF-converted code *)
  | Madd        (** fused multiply-add; costed like a multiply *)
  | Convert     (** int<->float conversion *)
  | Copy        (** inter-cluster register move; int 2 cycles, float 3 *)
  | Const       (** materialize an immediate into a register; 1 cycle *)
  | Nop

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val is_memory : t -> bool
(** [Load] or [Store]. *)

val is_copy : t -> bool

val arity : t -> int
(** Number of register source operands the opcode consumes ([Load] uses an
    address register; [Store] an address and a value; [Nop] none). *)

val has_dest : t -> bool
(** All opcodes define a register except [Store] and [Nop]. *)

val all : t list
