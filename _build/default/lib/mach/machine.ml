type copy_model = Embedded | Copy_unit

type fu_class = General | Integer | Float_fu | Memory

type t = {
  name : string;
  clusters : int;
  fus_per_cluster : int;
  fu_mix : (fu_class * int) list;
  copy_model : copy_model;
  copy_ports : int;
  busses : int;
  regs_per_bank : int;
  latency : Latency.t;
}

let copy_model_name = function Embedded -> "embedded" | Copy_unit -> "copy-unit"

let ilog2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n / 2) in
  go 0 n

let make ?name ?copy_ports ?busses ?(regs_per_bank = 32) ?(latency = Latency.paper) ?fu_mix
    ~clusters ~fus_per_cluster ~copy_model () =
  if clusters < 1 then invalid_arg "Machine.make: clusters must be >= 1";
  if fus_per_cluster < 1 then invalid_arg "Machine.make: fus_per_cluster must be >= 1";
  if regs_per_bank < 1 then invalid_arg "Machine.make: regs_per_bank must be >= 1";
  let fu_mix =
    match fu_mix with None -> [ (General, fus_per_cluster) ] | Some m -> m
  in
  let classes = List.map fst fu_mix in
  if List.length classes <> List.length (List.sort_uniq compare classes) then
    invalid_arg "Machine.make: duplicate class in fu_mix";
  List.iter
    (fun (_, n) -> if n < 1 then invalid_arg "Machine.make: non-positive count in fu_mix")
    fu_mix;
  if List.fold_left (fun acc (_, n) -> acc + n) 0 fu_mix <> fus_per_cluster then
    invalid_arg "Machine.make: fu_mix must sum to fus_per_cluster";
  let copy_ports = match copy_ports with Some p -> p | None -> max 1 (ilog2 clusters) in
  let busses = match busses with Some b -> b | None -> clusters in
  if copy_ports < 0 then invalid_arg "Machine.make: copy_ports must be >= 0";
  if busses < 0 then invalid_arg "Machine.make: busses must be >= 0";
  let name =
    match name with
    | Some n -> n
    | None ->
        Printf.sprintf "%dx%d-%s" clusters fus_per_cluster (copy_model_name copy_model)
  in
  { name; clusters; fus_per_cluster; fu_mix; copy_model; copy_ports; busses; regs_per_bank;
    latency }

let ideal ?name ?(regs_per_bank = 128) ?(latency = Latency.paper) ~width () =
  let name = match name with Some n -> n | None -> Printf.sprintf "ideal-%dwide" width in
  make ~name ~clusters:1 ~fus_per_cluster:width ~copy_model:Embedded ~copy_ports:0 ~busses:0
    ~regs_per_bank ~latency ()

let paper_ideal = ideal ~name:"ideal-16wide" ~width:16 ()

let monolithic_of t =
  let width = t.clusters * t.fus_per_cluster in
  let fu_mix = List.map (fun (c, n) -> (c, n * t.clusters)) t.fu_mix in
  make ~name:(t.name ^ "-ideal") ~latency:t.latency ~regs_per_bank:(t.regs_per_bank * t.clusters)
    ~fu_mix ~clusters:1 ~fus_per_cluster:width ~copy_model:Embedded ~copy_ports:0 ~busses:0 ()

let paper_clustered ~clusters ~copy_model =
  if clusters < 1 || 16 mod clusters <> 0 then
    invalid_arg "Machine.paper_clustered: clusters must divide 16";
  make ~clusters ~fus_per_cluster:(16 / clusters) ~copy_model ()

let ozer_cluster_mix = [ (Float_fu, 1); (Memory, 1); (Integer, 2) ]

let is_general_only t =
  List.for_all (fun (c, _) -> c = General) t.fu_mix

let allowed_classes (op : Opcode.t) (cls : Rclass.t) =
  if Opcode.is_memory op then [ Memory ]
  else
    match cls with Rclass.Float -> [ Float_fu ] | Rclass.Int -> [ Integer ]

let fu_class_name = function
  | General -> "general"
  | Integer -> "integer"
  | Float_fu -> "float"
  | Memory -> "memory"

let width t = t.clusters * t.fus_per_cluster
let is_monolithic t = t.clusters = 1
let copy_latency t cls = t.latency Opcode.Copy cls
let valid_cluster t c = c >= 0 && c < t.clusters

let pp ppf t =
  Format.fprintf ppf "%s (%d clusters x %d FUs, %s, %d copy ports, %d busses, %d regs/bank)"
    t.name t.clusters t.fus_per_cluster (copy_model_name t.copy_model) t.copy_ports t.busses
    t.regs_per_bank
