type t = Int | Float

let equal a b = match (a, b) with Int, Int | Float, Float -> true | (Int | Float), _ -> false

let compare a b =
  match (a, b) with
  | Int, Int | Float, Float -> 0
  | Int, Float -> -1
  | Float, Int -> 1

let to_string = function Int -> "int" | Float -> "float"
let pp ppf t = Format.pp_print_string ppf (to_string t)
let all = [ Int; Float ]
