type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- t.rows @ [ row ]

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.header) t.rows in
  let header = pad_to ncols t.header in
  let rows = List.map (pad_to ncols) t.rows in
  let widths = Array.make ncols 0 in
  let measure row = List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row_out row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c + 1) ' ');
        Buffer.add_char buf '|')
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  line '-';
  row_out header;
  line '=';
  List.iter row_out rows;
  line '-';
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 1) f = Printf.sprintf "%.*f" decimals f
let cell_pct f = Printf.sprintf "%.1f%%" f
