let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let harmonic_mean = function
  | [] -> nan
  | l ->
      let inv_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.harmonic_mean: non-positive element"
            else acc +. (1.0 /. x))
          0.0 l
      in
      float_of_int (List.length l) /. inv_sum

let geometric_mean = function
  | [] -> nan
  | l ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive element"
            else acc +. log x)
          0.0 l
      in
      exp (log_sum /. float_of_int (List.length l))

let median = function
  | [] -> nan
  | l ->
      let a = Array.of_list l in
      Array.sort compare a;
      let n = Array.length a in
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let stddev = function
  | [] -> nan
  | l ->
      let m = mean l in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) l) in
      sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

type histogram = { bucket_edges : float list; counts : int array; total : int }

let histogram ~edges values =
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | [ _ ] | [] -> true
  in
  if not (strictly_increasing edges) then
    invalid_arg "Stats.histogram: edges must be strictly increasing";
  let earr = Array.of_list edges in
  let n = Array.length earr in
  let counts = Array.make (n + 1) 0 in
  let bucket v =
    let rec find i = if i >= n then n else if v < earr.(i) then i else find (i + 1) in
    find 0
  in
  List.iter (fun v -> counts.(bucket v) <- counts.(bucket v) + 1) values;
  { bucket_edges = edges; counts; total = List.length values }

let histogram_percent h =
  Array.map
    (fun c -> if h.total = 0 then 0.0 else 100.0 *. float_of_int c /. float_of_int h.total)
    h.counts

(* Bucket 0 holds exactly-zero degradation; then <10 .. <90, overflow >=90.
   A tiny epsilon as first edge separates "no degradation" from "(0,10)". *)
let degradation_edges = [ 1e-9; 10.; 20.; 30.; 40.; 50.; 60.; 70.; 80.; 90. ]
