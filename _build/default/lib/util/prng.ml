type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = Int64.to_int (bits64 t) in
  { state = Int64.of_int seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bound is tiny relative to 2^62 and
     this generator only drives workload synthesis, not statistics. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 pairs in
  if total <= 0.0 then invalid_arg "Prng.weighted: weights sum to zero";
  let x = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: empty list"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 pairs

let shuffle t l =
  let a = Array.of_list l in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
