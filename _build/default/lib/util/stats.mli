(** Small statistics helpers used by the experiment harness.

    The paper reports arithmetic and harmonic means of normalized
    degradations (Table 2) and bucketed histograms of per-loop degradation
    (Figures 5-7); these are the exact reductions implemented here. *)

val mean : float list -> float
(** Arithmetic mean. Returns [nan] on the empty list. *)

val harmonic_mean : float list -> float
(** Harmonic mean, n / Σ(1/x). Returns [nan] on the empty list; requires
    every element to be positive. *)

val geometric_mean : float list -> float
(** Geometric mean (exp of mean log). Returns [nan] on the empty list. *)

val median : float list -> float
(** Median (average of middle two for even length). [nan] on empty. *)

val stddev : float list -> float
(** Population standard deviation. [nan] on empty. *)

val min_max : float list -> float * float
(** Smallest and largest element. Raises [Invalid_argument] on []. *)

type histogram = {
  bucket_edges : float list;  (** upper edges of all but the last bucket *)
  counts : int array;         (** length = |bucket_edges| + 1 *)
  total : int;
}
(** A histogram over [len edges + 1] buckets: value [v] lands in the first
    bucket whose upper edge is [> v]; values ≥ the last edge land in the
    overflow bucket. *)

val histogram : edges:float list -> float list -> histogram
(** Bucket values by [edges] (must be strictly increasing). *)

val histogram_percent : histogram -> float array
(** Per-bucket share of the total, in percent. Zeros when [total = 0]. *)

val degradation_edges : float list
(** The paper's Figure 5-7 bucket edges over degradation percentage:
    (0], (0,10), [10,20) ... [80,90), [90,∞). Encoded for use with
    {!histogram} on values [max 0 (degradation - 100)] — see
    [Core.Metrics]. *)
