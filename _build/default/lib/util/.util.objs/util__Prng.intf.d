lib/util/prng.mli:
