lib/util/stats.mli:
