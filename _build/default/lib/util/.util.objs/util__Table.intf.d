lib/util/table.mli:
