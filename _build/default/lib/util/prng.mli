(** Deterministic pseudo-random number generation.

    The experiment suite must be reproducible across runs and OCaml
    versions, so we ship our own splitmix64 generator instead of relying on
    [Stdlib.Random]'s unspecified algorithm. State is explicit and cheap to
    copy; all draws are pure functions of the seed and the draw sequence. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal draw
    sequences. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a new, statistically independent
    generator. Useful to give each generated loop its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] draws uniformly in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val choose : t -> 'a list -> 'a
(** Uniform draw from a non-empty list. Raises [Invalid_argument] on []. *)

val weighted : t -> ('a * float) list -> 'a
(** Draw from a non-empty list of (value, weight) pairs with probability
    proportional to weight. Weights must be non-negative and not all zero. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform random permutation. *)
