(** Plain-text table rendering for the benchmark harness.

    Prints aligned, boxed ASCII tables in the spirit of the paper's Table 1
    and Table 2 so the bench output can be compared side-by-side with the
    published numbers. *)

type t

val create : title:string -> header:string list -> t
(** A table with a caption row and column headers. *)

val add_row : t -> string list -> unit
(** Append a data row; short rows are padded with empty cells. *)

val render : t -> string
(** Render the whole table to a string (trailing newline included). *)

val print : t -> unit
(** [render] to stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 1). *)

val cell_pct : float -> string
(** Format a percentage cell with one decimal and a ['%']. *)
