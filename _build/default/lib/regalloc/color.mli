(** Chaitin/Briggs graph colouring.

    Simplify: repeatedly remove a node of degree < k (it is trivially
    colourable). When only high-degree nodes remain, Briggs's optimistic
    twist pushes the cheapest-to-spill node anyway instead of committing
    to a spill immediately — at select time it often still finds a colour.
    Select: pop the stack, give each node the lowest colour unused by its
    already-coloured neighbours; nodes with no free colour become actual
    spills.

    Spill cost is Chaitin's occurrences/degree (cheap, frequently-used
    registers are kept); {!Alloc} supplies depth-weighted occurrence
    counts when allocating loops. *)

type result = {
  colors : int Ir.Vreg.Map.t;  (** colour in [0, k) for every non-spilled node *)
  spilled : Ir.Vreg.t list;    (** actual spills, in spill order *)
}

val color :
  ?cost:(Ir.Vreg.t -> float) ->
  ?precolored:int Ir.Vreg.Map.t ->
  k:int ->
  Interference.t ->
  result
(** [cost] overrides the spill metric (default occurrences/degree).
    [precolored] nodes keep their colour and are never spilled (their
    colours must be < k). Raises [Invalid_argument] when [k < 1] or a
    precolour is out of range. *)

val check : Interference.t -> int Ir.Vreg.Map.t -> (unit, string) Stdlib.result
(** Verify no two interfering registers share a colour. *)
