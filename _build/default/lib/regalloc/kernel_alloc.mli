(** Register requirements of a software-pipelined kernel.

    Combines {!Sched.Pressure} lifetimes with modulo variable expansion
    and {!Cyclic} colouring: unroll the kernel by the MVE factor u, place
    each value instance's lifetime as an arc on the u·II-cycle steady
    state, colour per bank, and add one dedicated register per
    loop-invariant. The result is the number of architectural registers a
    bank actually needs to run the pipeline without spilling — the
    quantity to compare against the machine's [regs_per_bank], and the
    metric by which Swing scheduling beats Rau's. *)

type t = {
  mve_factor : int;
  per_bank : int array;      (** registers needed in each bank *)
  total : int;               (** Σ per_bank *)
  colors : (Ir.Vreg.t * int * int) list;
      (** (register, bank, register index) for each value instance-class *)
}

val requirements :
  kernel:Sched.Kernel.t ->
  loop:Ir.Loop.t ->
  banks:int ->
  bank_of:(Ir.Vreg.t -> int) ->
  t
(** [bank_of] maps every register of the loop to its bank (use a
    constant function for monolithic analyses). *)

val fits : t -> regs_per_bank:int -> bool
(** Does every bank fit in the architectural file? *)
