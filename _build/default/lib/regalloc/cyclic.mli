(** Circular-arc interval colouring.

    A software-pipelined kernel repeats every II cycles; after modulo
    variable expansion by factor u, each value's lifetime is an arc on a
    circle of circumference u·II, and the registers a bank must provide
    equal the number of colours needed for the arc family. First-fit in
    start order is the classic heuristic (optimal for interval graphs;
    within one colour of the load bound here in practice). *)

type arc = { id : int; start : int; len : int }
(** An occupied span [start, start+len) taken modulo the circumference.
    [len] may not exceed the circumference; [len = 0] arcs take no
    colour. *)

val color :
  circumference:int -> arc list -> (int * int) list * int
(** [color ~circumference arcs] assigns each arc id a colour such that
    same-coloured arcs never overlap on the circle; returns the
    (id, colour) pairs and the number of colours used. Raises
    [Invalid_argument] on a non-positive circumference, duplicate ids, or
    an arc longer than the circle. *)

val check : circumference:int -> arc list -> (int * int) list -> bool
(** Do the coloured arcs really avoid overlap? For tests. *)
