type rewrite_result = {
  ops : Ir.Op.t list;
  next_vreg : int;
  next_op : int;
  temps : (Ir.Vreg.t * Ir.Vreg.t) list;
}

let slot_base r = Printf.sprintf "spill.%d" (Ir.Vreg.id r)

let rewrite ~spilled ~fresh_vreg ~fresh_op ops =
  let is_spilled r = List.exists (Ir.Vreg.equal r) spilled in
  let next_vreg = ref fresh_vreg in
  let next_op = ref fresh_op in
  let temps = ref [] in
  let fresh_like r =
    let v =
      Ir.Vreg.make
        ~name:(Printf.sprintf "%s.t%d" (Ir.Vreg.to_string r) !next_vreg)
        ~id:!next_vreg ~cls:(Ir.Vreg.cls r) ()
    in
    incr next_vreg;
    temps := (v, r) :: !temps;
    v
  in
  let emit_load r tmp =
    let op =
      Ir.Op.make ~dst:tmp ~addr:(Ir.Addr.scalar (slot_base r)) ~id:!next_op
        ~opcode:Mach.Opcode.Load ~cls:(Ir.Vreg.cls r) ()
    in
    incr next_op;
    op
  in
  let emit_store r src =
    let op =
      Ir.Op.make ~srcs:[ src ] ~addr:(Ir.Addr.scalar (slot_base r)) ~id:!next_op
        ~opcode:Mach.Opcode.Store ~cls:(Ir.Vreg.cls r) ()
    in
    incr next_op;
    op
  in
  let out = ref [] in
  List.iter
    (fun op ->
      (* Loads before: one temp per distinct spilled use in this op. *)
      let subst = ref Ir.Vreg.Map.empty in
      List.iter
        (fun u ->
          if is_spilled u && not (Ir.Vreg.Map.mem u !subst) then begin
            let tmp = fresh_like u in
            out := emit_load u tmp :: !out;
            subst := Ir.Vreg.Map.add u tmp !subst
          end)
        (Ir.Op.uses op);
      (* The op itself: spilled defs also get a temp, stored right after. *)
      let def_subst = ref Ir.Vreg.Map.empty in
      List.iter
        (fun d ->
          if is_spilled d then def_subst := Ir.Vreg.Map.add d (fresh_like d) !def_subst)
        (Ir.Op.defs op);
      let rewritten = Ir.Op.substitute op !subst in
      let rewritten = Ir.Op.substitute_all rewritten !def_subst in
      let rewritten = Ir.Op.with_id rewritten !next_op in
      incr next_op;
      out := rewritten :: !out;
      Ir.Vreg.Map.iter (fun d tmp -> out := emit_store d tmp :: !out) !def_subst)
    ops;
  { ops = List.rev !out; next_vreg = !next_vreg; next_op = !next_op; temps = List.rev !temps }
