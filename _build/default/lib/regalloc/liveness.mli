(** Liveness analysis.

    Straight-line liveness is a single backward pass; loop bodies wrap
    around (a register read before it is redefined is live across the
    back edge); functions run the classic iterative dataflow over the
    CFG. *)

val backward : Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> Ir.Vreg.Set.t array
(** [backward ops ~live_out] returns, for each position [i], the set of
    registers live immediately {e before} op [i]. Index [length ops]
    would be [live_out]; position 0 is the block's live-in. *)

val live_in : Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> Ir.Vreg.Set.t

val loop_live_out : Ir.Loop.t -> Ir.Vreg.Set.t
(** What is live at the bottom of a loop body: the declared
    [Loop.live_out], every register carried into the next iteration
    (used before redefinition), and loop invariants (live throughout). *)

val func_live_out : Ir.Func.t -> string -> Ir.Vreg.Set.t
(** Per-block live-out via iterative dataflow over the function's CFG
    (exit blocks have empty live-out). Results are computed once per
    function and cached per call — call through a closure when querying
    many blocks: [let lo = func_live_out f in lo "b1"]. *)
