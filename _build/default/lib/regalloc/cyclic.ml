type arc = { id : int; start : int; len : int }

let normalize ~circumference a =
  { a with start = ((a.start mod circumference) + circumference) mod circumference }

let overlaps ~circumference a b =
  (* arcs [s, s+len) on the circle; test pairwise slot intersection *)
  if a.len = 0 || b.len = 0 then false
  else if a.len >= circumference || b.len >= circumference then true
  else begin
    (* distance from a.start to b.start going forward *)
    let d = ((b.start - a.start) mod circumference + circumference) mod circumference in
    d < a.len || circumference - d < b.len
  end

let color ~circumference arcs =
  if circumference <= 0 then invalid_arg "Cyclic.color: circumference must be positive";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if a.len > circumference then
        invalid_arg
          (Printf.sprintf "Cyclic.color: arc %d longer (%d) than the circle (%d)" a.id a.len
             circumference);
      if a.len < 0 then invalid_arg "Cyclic.color: negative length";
      if Hashtbl.mem seen a.id then invalid_arg "Cyclic.color: duplicate arc id";
      Hashtbl.add seen a.id ())
    arcs;
  let arcs = List.map (normalize ~circumference) arcs in
  let sorted =
    List.sort
      (fun a b ->
        let c = Int.compare a.start b.start in
        if c <> 0 then c else Int.compare b.len a.len)
      (List.filter (fun a -> a.len > 0) arcs)
  in
  let by_color : (int, arc list) Hashtbl.t = Hashtbl.create 16 in
  let assignment = ref [] in
  let n_colors = ref 0 in
  List.iter
    (fun a ->
      let fits c =
        List.for_all
          (fun b -> not (overlaps ~circumference a b))
          (Option.value ~default:[] (Hashtbl.find_opt by_color c))
      in
      let rec first c = if fits c then c else first (c + 1) in
      let c = first 0 in
      Hashtbl.replace by_color c (a :: Option.value ~default:[] (Hashtbl.find_opt by_color c));
      assignment := (a.id, c) :: !assignment;
      if c + 1 > !n_colors then n_colors := c + 1)
    sorted;
  (* zero-length arcs take colour 0 by convention *)
  List.iter
    (fun a -> if a.len = 0 then assignment := (a.id, 0) :: !assignment)
    arcs;
  (List.rev !assignment, !n_colors)

let check ~circumference arcs coloring =
  let arcs = List.map (normalize ~circumference) arcs in
  let color_of id = List.assoc_opt id coloring in
  let rec pairs = function
    | [] -> true
    | a :: rest ->
        List.for_all
          (fun b ->
            (not (overlaps ~circumference a b))
            || color_of a.id <> color_of b.id
            || color_of a.id = None)
          rest
        && pairs rest
  in
  pairs arcs
