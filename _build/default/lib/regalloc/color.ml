type result = { colors : int Ir.Vreg.Map.t; spilled : Ir.Vreg.t list }

let default_cost g r =
  let d = max 1 (Interference.degree g r) in
  float_of_int (Interference.occurrences g r) /. float_of_int d

let color ?cost ?(precolored = Ir.Vreg.Map.empty) ~k g =
  if k < 1 then invalid_arg "Color.color: k must be >= 1";
  Ir.Vreg.Map.iter
    (fun r c ->
      if c < 0 || c >= k then
        invalid_arg (Printf.sprintf "Color.color: precolour %d out of range for %s" c
                       (Ir.Vreg.to_string r)))
    precolored;
  let cost = match cost with Some f -> f | None -> default_cost g in
  let nodes = List.filter (fun r -> not (Ir.Vreg.Map.mem r precolored)) (Interference.registers g) in
  let removed = Hashtbl.create 64 in
  let live_degree r =
    List.length
      (List.filter (fun m -> not (Hashtbl.mem removed (Ir.Vreg.id m))) (Interference.neighbors g r))
  in
  let stack = ref [] in
  let remaining = ref nodes in
  while !remaining <> [] do
    let low, high =
      List.partition (fun r -> live_degree r < k) !remaining
    in
    match low with
    | r :: _ ->
        Hashtbl.replace removed (Ir.Vreg.id r) ();
        stack := r :: !stack;
        remaining := List.filter (fun m -> not (Ir.Vreg.equal m r)) !remaining
    | [] ->
        (* Optimistic push of the cheapest spill candidate. *)
        let victim =
          List.fold_left
            (fun best r ->
              match best with
              | None -> Some r
              | Some b -> if cost r < cost b then Some r else best)
            None high
        in
        (match victim with
        | Some r ->
            Hashtbl.replace removed (Ir.Vreg.id r) ();
            stack := r :: !stack;
            remaining := List.filter (fun m -> not (Ir.Vreg.equal m r)) !remaining
        | None -> assert false)
  done;
  (* Select phase. *)
  let colors = ref precolored in
  let spilled = ref [] in
  List.iter
    (fun r ->
      let used =
        List.filter_map (fun m -> Ir.Vreg.Map.find_opt m !colors) (Interference.neighbors g r)
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      let c = first_free 0 in
      if c < k then colors := Ir.Vreg.Map.add r c !colors else spilled := r :: !spilled)
    !stack;
  { colors = !colors; spilled = List.rev !spilled }

let check g colors =
  List.fold_left
    (fun acc r ->
      match acc with
      | Error _ as e -> e
      | Ok () ->
          List.fold_left
            (fun acc m ->
              match acc with
              | Error _ as e -> e
              | Ok () -> (
                  match (Ir.Vreg.Map.find_opt r colors, Ir.Vreg.Map.find_opt m colors) with
                  | Some cr, Some cm when cr = cm ->
                      Error
                        (Printf.sprintf "%s and %s interfere but share colour %d"
                           (Ir.Vreg.to_string r) (Ir.Vreg.to_string m) cr)
                  | _ -> Ok ()))
            (Ok ()) (Interference.neighbors g r))
    (Ok ()) (Interference.registers g)
