type interval = { reg : Ir.Vreg.t; start : int; stop : int; starts_with_def : bool }

type result = {
  colors : int Ir.Vreg.Map.t;
  spilled : Ir.Vreg.t list;
  intervals : interval list;
  used : int;
}

let intervals_of ops ~live_out =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let first_def = Hashtbl.create 32 in
  let last_touch = Hashtbl.create 32 in
  let regs = Hashtbl.create 32 in
  Array.iteri
    (fun idx op ->
      List.iter
        (fun d ->
          Hashtbl.replace regs (Ir.Vreg.id d) d;
          if not (Hashtbl.mem first_def (Ir.Vreg.id d)) then
            Hashtbl.replace first_def (Ir.Vreg.id d) idx;
          Hashtbl.replace last_touch (Ir.Vreg.id d) idx)
        (Ir.Op.defs op);
      List.iter
        (fun u ->
          Hashtbl.replace regs (Ir.Vreg.id u) u;
          Hashtbl.replace last_touch (Ir.Vreg.id u) idx)
        (Ir.Op.uses op))
    arr;
  let interval_of _ r =
    let id = Ir.Vreg.id r in
    let live_in =
      (* used before any def — including by the defining op itself
         (read-modify-write reads the incoming value) — or never defined *)
      match Hashtbl.find_opt first_def id with
      | None -> true
      | Some fd ->
          Array.exists
            (fun op -> List.exists (Ir.Vreg.equal r) (Ir.Op.uses op))
            (Array.sub arr 0 (min n (fd + 1)))
    in
    let start = if live_in then 0 else Hashtbl.find first_def id in
    let stop =
      if Ir.Vreg.Set.mem r live_out then n
      else Option.value ~default:start (Hashtbl.find_opt last_touch id)
    in
    { reg = r; start; stop; starts_with_def = not live_in }
  in
  Hashtbl.fold (fun id r acc -> interval_of id r :: acc) regs []
  |> List.sort (fun a b ->
         let c = Int.compare a.start b.start in
         if c <> 0 then c else Ir.Vreg.compare a.reg b.reg)

let allocate ~k ops ~live_out =
  if k < 1 then invalid_arg "Linear_scan.allocate: k must be >= 1";
  let intervals = intervals_of ops ~live_out in
  let free = ref (List.init k (fun c -> c)) in
  let active = ref [] in (* (interval, color), sorted by stop asc *)
  let colors = ref Ir.Vreg.Map.empty in
  let spilled = ref [] in
  let used = ref 0 in
  let insert_active entry =
    let rec ins = function
      | [] -> [ entry ]
      | (i, _) :: _ as l when (fst entry).stop <= i.stop -> entry :: l
      | e :: rest -> e :: ins rest
    in
    active := ins !active
  in
  List.iter
    (fun iv ->
      (* Expire intervals ending at or before this start: positions are
         op indices and an op reads its sources before writing its
         destination, so a last use at p and a def at p may share a
         register. *)
      let expired, alive =
        List.partition
          (fun (i, _) ->
            if iv.starts_with_def then i.stop <= iv.start else i.stop < iv.start)
          !active
      in
      active := alive;
      List.iter (fun (_, c) -> free := c :: !free) expired;
      match !free with
      | c :: rest ->
          free := rest;
          colors := Ir.Vreg.Map.add iv.reg c !colors;
          used := max !used (c + 1);
          insert_active (iv, c)
      | [] -> (
          (* spill the interval ending furthest away *)
          match List.rev !active with
          | (victim, c) :: _ when victim.stop > iv.stop ->
              active := List.filter (fun (i, _) -> not (Ir.Vreg.equal i.reg victim.reg)) !active;
              colors := Ir.Vreg.Map.remove victim.reg !colors;
              spilled := victim.reg :: !spilled;
              colors := Ir.Vreg.Map.add iv.reg c !colors;
              insert_active (iv, c)
          | _ -> spilled := iv.reg :: !spilled))
    intervals;
  { colors = !colors; spilled = List.rev !spilled; intervals; used = !used }

let check r =
  let assigned =
    List.filter_map
      (fun iv ->
        Option.map (fun c -> (iv, c)) (Ir.Vreg.Map.find_opt iv.reg r.colors))
      r.intervals
  in
  let rec pairs = function
    | [] -> true
    | (a, ca) :: rest ->
        List.for_all
          (fun (b, cb) ->
            let disjoint a b =
              a.stop < b.start || (a.stop = b.start && b.starts_with_def)
            in
            ca <> cb || disjoint a b || disjoint b a)
          rest
        && pairs rest
  in
  pairs assigned
