(** Interference graphs for graph-colouring register allocation.

    Chaitin's construction: walking the code backwards, each definition
    interferes with every register live after it (except itself, and —
    for copies — except the copy source, enabling coalescing-friendly
    colourings). The graph also records def/use counts for spill-cost
    estimation. *)

type t

val build : Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> t
(** Straight-line or loop-body code (pass the appropriate live-out, see
    {!Liveness.loop_live_out}). Registers live-in but never mentioned by
    the ops still appear as nodes when they occur in [live_out]. *)

val build_filtered :
  keep:(Ir.Vreg.t -> bool) -> Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> t
(** Restrict the graph to registers satisfying [keep] — the per-bank view
    used by partitioned allocation (registers in other banks neither
    appear nor interfere). *)

val registers : t -> Ir.Vreg.t list
val interferes : t -> Ir.Vreg.t -> Ir.Vreg.t -> bool
val neighbors : t -> Ir.Vreg.t -> Ir.Vreg.t list
val degree : t -> Ir.Vreg.t -> int
val occurrences : t -> Ir.Vreg.t -> int
(** Static def+use count — the numerator of Chaitin's spill cost. *)

val max_clique_lower_bound : t -> int
(** Max over program points of simultaneously live kept registers — a
    lower bound on the chromatic number (exact register pressure). *)

val pp : Format.formatter -> t -> unit
