type t = {
  mve_factor : int;
  per_bank : int array;
  total : int;
  colors : (Ir.Vreg.t * int * int) list;
}

let requirements ~kernel ~loop ~banks ~bank_of =
  let ii = Sched.Kernel.ii kernel in
  let u = Sched.Expand.mve_factor ~kernel ~loop in
  let circumference = u * ii in
  let lifetimes = Sched.Pressure.lifetimes ~kernel ~loop in
  let per_bank = Array.make banks 0 in
  let colors = ref [] in
  for b = 0 to banks - 1 do
    (* One arc per MVE instance of each lifetime homed in this bank. *)
    let arcs = ref [] in
    let arc_reg : (int, Ir.Vreg.t) Hashtbl.t = Hashtbl.create 32 in
    let next = ref 0 in
    List.iter
      (fun (r, c, e) ->
        if bank_of r = b then
          for k = 0 to u - 1 do
            let id = !next in
            incr next;
            Hashtbl.replace arc_reg id r;
            arcs :=
              { Cyclic.id; start = (c + (k * ii)) mod circumference;
                len = min (e - c) circumference }
              :: !arcs
          done)
      lifetimes;
    let coloring, n = Cyclic.color ~circumference (List.rev !arcs) in
    (* Record the colour of each register's instance 0. *)
    List.iter
      (fun (id, col) ->
        if id mod u = 0 then colors := (Hashtbl.find arc_reg id, b, col) :: !colors)
      coloring;
    let invariants =
      Ir.Vreg.Set.cardinal
        (Ir.Vreg.Set.filter (fun r -> bank_of r = b) (Ir.Loop.invariants loop))
    in
    per_bank.(b) <- n + invariants
  done;
  { mve_factor = u; per_bank; total = Array.fold_left ( + ) 0 per_bank;
    colors = List.rev !colors }

let fits t ~regs_per_bank = Array.for_all (fun n -> n <= regs_per_bank) t.per_bank
