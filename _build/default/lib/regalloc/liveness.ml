let def_use op =
  let defs = List.fold_left (fun s r -> Ir.Vreg.Set.add r s) Ir.Vreg.Set.empty (Ir.Op.defs op) in
  let uses = List.fold_left (fun s r -> Ir.Vreg.Set.add r s) Ir.Vreg.Set.empty (Ir.Op.uses op) in
  (defs, uses)

let backward ops ~live_out =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let live = Array.make (n + 1) live_out in
  for i = n - 1 downto 0 do
    let defs, uses = def_use arr.(i) in
    live.(i) <- Ir.Vreg.Set.union uses (Ir.Vreg.Set.diff live.(i + 1) defs)
  done;
  Array.sub live 0 n

let live_in ops ~live_out =
  match backward ops ~live_out with
  | [||] -> live_out
  | arr -> arr.(0)

let loop_live_out loop =
  let ops = Ir.Loop.ops loop in
  (* Carried registers: used at q with no def strictly before q but
     defined somewhere in the body. *)
  let arr = Array.of_list ops in
  let defined_before = Hashtbl.create 32 in
  let carried = ref Ir.Vreg.Set.empty in
  let defined_anywhere =
    List.fold_left
      (fun s op -> List.fold_left (fun s d -> Ir.Vreg.Set.add d s) s (Ir.Op.defs op))
      Ir.Vreg.Set.empty ops
  in
  Array.iter
    (fun op ->
      List.iter
        (fun u ->
          if
            Ir.Vreg.Set.mem u defined_anywhere
            && not (Hashtbl.mem defined_before (Ir.Vreg.id u))
          then carried := Ir.Vreg.Set.add u !carried)
        (Ir.Op.uses op);
      List.iter (fun d -> Hashtbl.replace defined_before (Ir.Vreg.id d) ()) (Ir.Op.defs op))
    arr;
  Ir.Vreg.Set.union
    (Ir.Loop.live_out loop)
    (Ir.Vreg.Set.union !carried (Ir.Loop.invariants loop))

let func_live_out func =
  let table : (string, Ir.Vreg.Set.t) Hashtbl.t = Hashtbl.create 16 in
  let blocks = Ir.Func.blocks func in
  List.iter (fun b -> Hashtbl.replace table (Ir.Block.label b) Ir.Vreg.Set.empty) blocks;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        let label = Ir.Block.label b in
        let out =
          List.fold_left
            (fun acc succ ->
              let succ_block = Ir.Func.block func succ in
              let succ_out = Hashtbl.find table succ in
              Ir.Vreg.Set.union acc (live_in (Ir.Block.ops succ_block) ~live_out:succ_out))
            Ir.Vreg.Set.empty (Ir.Func.successors func label)
        in
        if not (Ir.Vreg.Set.equal out (Hashtbl.find table label)) then begin
          Hashtbl.replace table label out;
          changed := true
        end)
      blocks
  done;
  fun label ->
    match Hashtbl.find_opt table label with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Liveness.func_live_out: unknown block %s" label)
