(** Linear-scan register allocation (Poletto & Sarkar), as a fast
    baseline against Chaitin/Briggs.

    Live ranges are approximated by one contiguous interval per register
    — from its first definition (or position 0 when live-in) to its last
    use (or the end when live-out). Intervals are walked in start order
    with an active set; when all [k] registers are busy the interval
    ending furthest away is spilled. Coarser than colouring (interval
    holes are wasted) but one pass; the test suite checks it never beats
    Chaitin/Briggs on register count yet always produces a valid
    assignment. *)

type interval = { reg : Ir.Vreg.t; start : int; stop : int; starts_with_def : bool }
(** Positions are op indices; the value is live in [\[start, stop\]].
    [starts_with_def] distinguishes values born at [start] (whose
    register may be shared with one dying there — reads precede writes
    within an op) from live-in values. *)

type result = {
  colors : int Ir.Vreg.Map.t;
  spilled : Ir.Vreg.t list;
  intervals : interval list;   (** in start order, for inspection *)
  used : int;                  (** registers actually used *)
}

val intervals_of : Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> interval list

val allocate : k:int -> Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> result
(** Raises [Invalid_argument] when [k < 1]. *)

val check : result -> bool
(** No two same-coloured intervals overlap. *)
