lib/regalloc/cyclic.ml: Hashtbl Int List Option Printf
