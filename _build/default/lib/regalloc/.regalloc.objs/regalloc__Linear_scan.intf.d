lib/regalloc/linear_scan.mli: Ir
