lib/regalloc/liveness.ml: Array Hashtbl Ir List Printf
