lib/regalloc/color.mli: Interference Ir Stdlib
