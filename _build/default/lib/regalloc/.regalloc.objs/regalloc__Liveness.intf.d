lib/regalloc/liveness.mli: Ir
