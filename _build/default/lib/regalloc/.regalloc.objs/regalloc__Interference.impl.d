lib/regalloc/interference.ml: Array Format Hashtbl Ir List Liveness Option
