lib/regalloc/kernel_alloc.ml: Array Cyclic Hashtbl Ir List Sched
