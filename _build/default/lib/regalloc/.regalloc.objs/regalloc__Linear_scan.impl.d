lib/regalloc/linear_scan.ml: Array Hashtbl Int Ir List Option
