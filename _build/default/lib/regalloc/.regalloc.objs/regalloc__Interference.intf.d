lib/regalloc/interference.mli: Format Ir
