lib/regalloc/alloc.ml: Array Color Interference Ir List Liveness Mach Partition Printf Spill String
