lib/regalloc/spill.mli: Ir
