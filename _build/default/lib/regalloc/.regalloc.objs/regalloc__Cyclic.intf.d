lib/regalloc/cyclic.mli:
