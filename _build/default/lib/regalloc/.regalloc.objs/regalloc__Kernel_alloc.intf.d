lib/regalloc/kernel_alloc.mli: Ir Sched
