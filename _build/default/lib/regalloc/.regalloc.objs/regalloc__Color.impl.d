lib/regalloc/color.ml: Hashtbl Interference Ir List Printf
