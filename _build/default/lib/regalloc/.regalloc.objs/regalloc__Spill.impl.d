lib/regalloc/spill.ml: Ir List Mach Printf
