lib/regalloc/alloc.mli: Ir Mach Partition
