(** Spill code insertion.

    Each spilled register gets a dedicated memory slot
    (["spill.<id>"]); every definition is followed by a store and every
    use is preceded by a load into a fresh short-lived temporary, the
    classic Chaitin spill-everywhere rewrite. Fresh temporaries keep live
    ranges one-op long, so the rewritten code is strictly easier to
    colour and the allocate/spill loop terminates. *)

type rewrite_result = {
  ops : Ir.Op.t list;
  next_vreg : int;
  next_op : int;
  temps : (Ir.Vreg.t * Ir.Vreg.t) list;
      (** (fresh temporary, spilled register it stands for) — lets callers
          extend bank assignments to the new registers *)
}

val rewrite :
  spilled:Ir.Vreg.t list ->
  fresh_vreg:int ->
  fresh_op:int ->
  Ir.Op.t list ->
  rewrite_result
(** Spilled registers that are live-in (used before any def) are loaded
    from their slot at first use like any other use, so callers that
    materialize live-in values must pre-store them (tests do). *)

val slot_base : Ir.Vreg.t -> string
(** The memory base the register spills to. *)
