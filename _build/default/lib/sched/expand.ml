type instance = { iteration : int; source_id : int; op : Ir.Op.t; cycle : int }

type code = {
  instances : instance list;
  total_cycles : int;
  trips : int;
  kernel : Kernel.t;
  final : Ir.Vreg.t Ir.Vreg.Map.t;
}

(* Which value of register r does a use at body position q read? Mirrors
   the dependence builder's reaching logic. *)
type reaching = Invariant | Carried | Same_iter

let classify defs_of r q =
  match Ir.Vreg.Map.find_opt r defs_of with
  | None | Some [] -> Invariant
  | Some positions -> if List.exists (fun p -> p < q) positions then Same_iter else Carried

let flatten ~kernel ~loop ~trips =
  if trips < 1 then invalid_arg "Expand.flatten: trips must be >= 1";
  let body = Array.of_list (Ir.Loop.ops loop) in
  let n = Array.length body in
  let pos_of_id = Hashtbl.create n in
  Array.iteri (fun idx op -> Hashtbl.replace pos_of_id (Ir.Op.id op) idx) body;
  if Kernel.op_count kernel <> n then
    invalid_arg "Expand.flatten: kernel does not cover the loop body";
  List.iter
    (fun (p : Schedule.placement) ->
      if not (Hashtbl.mem pos_of_id (Ir.Op.id p.op)) then
        invalid_arg "Expand.flatten: kernel schedules an op outside the loop")
    (Kernel.placements kernel);
  let defs_of =
    let acc = ref Ir.Vreg.Map.empty in
    Array.iteri
      (fun idx op ->
        List.iter
          (fun d ->
            let prev = Option.value ~default:[] (Ir.Vreg.Map.find_opt d !acc) in
            acc := Ir.Vreg.Map.add d (prev @ [ idx ]) !acc)
          (Ir.Op.defs op))
      body;
    !acc
  in
  let ii = Kernel.ii kernel in
  (* Per-iteration rename tables. iteration -1 stands for loop entry:
     registers keep their source names there. *)
  let next_vreg = ref (Ir.Loop.max_vreg_id loop + 1) in
  let renames : (int * int, Ir.Vreg.t) Hashtbl.t = Hashtbl.create 64 in
  let renamed i r =
    if i < 0 || not (Ir.Vreg.Map.mem r defs_of) then r
    else
      match Hashtbl.find_opt renames (i, Ir.Vreg.id r) with
      | Some r' -> r'
      | None ->
          let r' =
            Ir.Vreg.make
              ~name:(Printf.sprintf "%s#%d" (Ir.Vreg.to_string r) i)
              ~id:!next_vreg ~cls:(Ir.Vreg.cls r) ()
          in
          incr next_vreg;
          Hashtbl.replace renames (i, Ir.Vreg.id r) r';
          r'
  in
  let next_op = ref 0 in
  let make_instance i (p : Schedule.placement) =
    let q = Hashtbl.find pos_of_id (Ir.Op.id p.op) in
    let op = body.(q) in
    let srcs =
      List.map
        (fun r ->
          match classify defs_of r q with
          | Invariant -> r
          | Same_iter -> renamed i r
          | Carried -> renamed (i - 1) r)
        (Ir.Op.srcs op)
    in
    let dst = Option.map (renamed i) (Ir.Op.dst op) in
    let addr =
      Option.map
        (fun (a : Ir.Addr.t) ->
          Ir.Addr.make ~offset:(a.offset + (a.stride * i)) ~stride:0 a.base)
        (Ir.Op.addr op)
    in
    let id = !next_op in
    incr next_op;
    let op' = Ir.Op.make ?dst ~srcs ?addr ~id ~opcode:(Ir.Op.opcode op) ~cls:(Ir.Op.cls op) () in
    { iteration = i; source_id = Ir.Op.id op; op = op'; cycle = (i * ii) + p.cycle }
  in
  let instances =
    List.concat_map
      (fun i -> List.map (make_instance i) (Kernel.placements kernel))
      (List.init trips (fun i -> i))
  in
  let instances =
    List.sort
      (fun a b ->
        let c = Int.compare a.cycle b.cycle in
        if c <> 0 then c
        else
          let c = Int.compare a.iteration b.iteration in
          if c <> 0 then c
          else
            Int.compare
              (Hashtbl.find pos_of_id a.source_id)
              (Hashtbl.find pos_of_id b.source_id))
      instances
  in
  let total_cycles = 1 + List.fold_left (fun acc x -> max acc x.cycle) 0 instances in
  let final =
    Ir.Vreg.Set.fold
      (fun r acc -> Ir.Vreg.Map.add r (renamed (trips - 1) r) acc)
      (Ir.Loop.live_out loop) Ir.Vreg.Map.empty
  in
  { instances; total_cycles; trips; kernel; final }

let ops code = List.map (fun x -> x.op) code.instances

let live_out_map code = code.final

let speedup code ~latency ~loop =
  let seq_one =
    List.fold_left (fun acc op -> acc + Ir.Op.latency latency op) 0 (Ir.Loop.ops loop)
  in
  float_of_int (seq_one * code.trips) /. float_of_int code.total_cycles

let mve_factor ~kernel ~loop =
  let body = Array.of_list (Ir.Loop.ops loop) in
  let defs_of =
    let acc = ref Ir.Vreg.Map.empty in
    Array.iteri
      (fun idx op ->
        List.iter
          (fun d ->
            let prev = Option.value ~default:[] (Ir.Vreg.Map.find_opt d !acc) in
            acc := Ir.Vreg.Map.add d (prev @ [ idx ]) !acc)
          (Ir.Op.defs op))
      body;
    !acc
  in
  let ii = Kernel.ii kernel in
  let cycle_at idx = Kernel.cycle_of kernel (Ir.Op.id body.(idx)) in
  let factor = ref 1 in
  Array.iteri
    (fun q op ->
      List.iter
        (fun r ->
          match Ir.Vreg.Map.find_opt r defs_of with
          | None | Some [] -> ()
          | Some positions -> (
              (* The reaching def: the last one before q (same iteration),
                 or the body's last def one iteration back. *)
              match classify defs_of r q with
              | Invariant -> ()
              | Same_iter ->
                  let dpos =
                    List.fold_left (fun acc p -> if p < q then p else acc) q positions
                  in
                  let lifetime = cycle_at q - cycle_at dpos in
                  if lifetime > 0 then factor := max !factor ((lifetime + ii - 1) / ii)
              | Carried ->
                  let dpos = List.nth positions (List.length positions - 1) in
                  let lifetime = cycle_at q + ii - cycle_at dpos in
                  if lifetime > 0 then factor := max !factor ((lifetime + ii - 1) / ii)))
        (Ir.Op.uses op))
    body;
  !factor
