(** Reservation tables.

    Track which machine resources are held at which cycle, both for flat
    schedules (unbounded horizon) and for modulo schedules (all cycles are
    taken mod II — one kernel row per modulo slot, the classic MRT).

    Resources follow the machine model: per-cluster functional-unit issue
    slots — typed by {!Mach.Machine.fu_class} on machines with a
    specialized unit mix, where an operation may issue on a matching
    specialized unit or on a [General] one (specialized units are
    preferred so General slots stay free); and, for the copy-unit model,
    per-cluster copy ports plus global busses. Reservations remember the
    holding op so the modulo scheduler can evict conflicting ops when it
    force-places. *)

type t

type request =
  | Fu of int
      (** one [General] FU issue slot in the given cluster (the paper's
          all-general machines) *)
  | Fu_typed of int * Mach.Machine.fu_class list
      (** a slot on any listed specialized class, or on [General] *)
  | Copy_to of int
      (** a copy arriving at the given cluster: one copy port there plus
          one global bus (copy-unit model) *)

val create_flat : Mach.Machine.t -> t
val create_modulo : Mach.Machine.t -> ii:int -> t

val ii : t -> int option
(** The modulo period, [None] for flat tables. *)

val fits : t -> cycle:int -> request -> bool
(** Would the request fit at the cycle (mod II for modulo tables)? *)

val reserve : t -> cycle:int -> op:int -> request -> unit
(** Claim resources. Raises [Invalid_argument] if they do not fit. *)

val release_op : t -> op:int -> unit
(** Drop every reservation held by the op (idempotent). *)

val conflicting_ops : t -> cycle:int -> request -> int list
(** Ops whose release makes the request fit at the cycle: if it already
    fits, []. One victim (the most recently placed holder of an
    acceptable resource) per saturated resource. *)

val satisfiable : t -> request -> bool
(** False when every acceptable resource class has zero capacity on this
    machine — the request can never be reserved at any cycle. *)

val request_for :
  Mach.Machine.t -> cluster:int -> Ir.Op.t -> request
(** The resource request of an operation placed on a cluster: [Copy_to
    cluster] for copies under the copy-unit model; otherwise an FU slot,
    typed by {!Mach.Machine.allowed_classes} on specialized machines.
    Raises [Invalid_argument] on an out-of-range cluster. *)
