(* Which def position does a use at body position q of register r read?
   Same reaching logic as the dependence builder. *)
let reaching_def positions q =
  match List.rev (List.filter (fun p -> p < q) positions) with
  | p :: _ -> `Same_iter p
  | [] -> `Carried (List.nth positions (List.length positions - 1))

let lifetimes ~kernel ~loop =
  let body = Array.of_list (Ir.Loop.ops loop) in
  let ii = Kernel.ii kernel in
  let defs_of =
    let acc = ref Ir.Vreg.Map.empty in
    Array.iteri
      (fun idx op ->
        List.iter
          (fun d ->
            let prev = Option.value ~default:[] (Ir.Vreg.Map.find_opt d !acc) in
            acc := Ir.Vreg.Map.add d (prev @ [ idx ]) !acc)
          (Ir.Op.defs op))
      body;
    !acc
  in
  let cycle_at idx = Kernel.cycle_of kernel (Ir.Op.id body.(idx)) in
  (* last use cycle per (register, def position) *)
  let last_use : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun q op ->
      List.iter
        (fun r ->
          match Ir.Vreg.Map.find_opt r defs_of with
          | None | Some [] -> () (* invariant *)
          | Some positions ->
              let dpos, extra =
                match reaching_def positions q with
                | `Same_iter p -> (p, 0)
                | `Carried p -> (p, ii)
              in
              let use_cycle = cycle_at q + extra in
              let key = (Ir.Vreg.id r, dpos) in
              let cur = Option.value ~default:min_int (Hashtbl.find_opt last_use key) in
              if use_cycle > cur then Hashtbl.replace last_use key use_cycle)
        (Ir.Op.uses op))
    body;
  let out = ref [] in
  Ir.Vreg.Map.iter
    (fun r positions ->
      List.iter
        (fun dpos ->
          let c = cycle_at dpos in
          let e =
            match Hashtbl.find_opt last_use (Ir.Vreg.id r, dpos) with
            | Some u when u > c -> u
            | Some _ | None -> c + 1
          in
          out := (r, c, e) :: !out)
        positions)
    defs_of;
  List.rev !out

let coverage ~ii lifetimes_list =
  let cover = Array.make ii 0 in
  List.iter
    (fun (_, c, e) ->
      let len = e - c in
      let base = len / ii and rem = len mod ii in
      Array.iteri (fun s v -> cover.(s) <- v + base) cover;
      for k = 0 to rem - 1 do
        let s = (c + k) mod ii in
        cover.(s) <- cover.(s) + 1
      done)
    lifetimes_list;
  cover

let max_live ~kernel ~loop =
  let ii = Kernel.ii kernel in
  let cover = coverage ~ii (lifetimes ~kernel ~loop) in
  let invariants = Ir.Vreg.Set.cardinal (Ir.Loop.invariants loop) in
  Array.fold_left max 0 cover + invariants

let per_bank_max_live ~kernel ~loop ~banks ~bank_of =
  let ii = Kernel.ii kernel in
  let lts = lifetimes ~kernel ~loop in
  Array.init banks (fun b ->
      let mine = List.filter (fun (r, _, _) -> bank_of r = b) lts in
      let cover = coverage ~ii mine in
      let invariants =
        Ir.Vreg.Set.cardinal (Ir.Vreg.Set.filter (fun r -> bank_of r = b) (Ir.Loop.invariants loop))
      in
      Array.fold_left max 0 cover + invariants)
