type violation = { cycle : int; op : Ir.Op.t; what : string }

let run ?state ~latency code =
  let st = match state with Some s -> s | None -> Ir.Eval.create () in
  let reg_ready : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let mem_ready : (string * int, int) Hashtbl.t = Hashtbl.create 64 in
  let error = ref None in
  let address ~iteration:_ (a : Ir.Addr.t) extra = a.offset + extra in
  List.iter
    (fun (x : Expand.instance) ->
      if !error = None then begin
        let op = x.op in
        let cycle = x.cycle in
        let fail what = error := Some { cycle; op; what } in
        (* register operand readiness *)
        List.iter
          (fun r ->
            match Hashtbl.find_opt reg_ready (Ir.Vreg.id r) with
            | Some ready when ready > cycle ->
                fail
                  (Printf.sprintf "register %s ready at %d, read at %d" (Ir.Vreg.to_string r)
                     ready cycle)
            | Some _ | None -> ())
          (Ir.Op.uses op);
        (* memory operand readiness (expanded addresses have stride 0) *)
        (match (Ir.Op.opcode op, Ir.Op.addr op) with
        | Mach.Opcode.Load, Some a ->
            let extra =
              match Ir.Op.srcs op with
              | [] -> 0
              | idx :: _ -> (
                  match Ir.Eval.get_reg st idx with
                  | Ir.Eval.I v -> v
                  | Ir.Eval.F v -> int_of_float v)
            in
            let key = (a.Ir.Addr.base, address ~iteration:0 a extra) in
            (match Hashtbl.find_opt mem_ready key with
            | Some ready when ready > cycle ->
                fail
                  (Printf.sprintf "%s[%d] ready at %d, loaded at %d" (fst key) (snd key) ready
                     cycle)
            | Some _ | None -> ())
        | _ -> ());
        if !error = None then begin
          Ir.Eval.exec_op st ~iteration:0 op;
          let lat = Ir.Op.latency latency op in
          List.iter
            (fun d -> Hashtbl.replace reg_ready (Ir.Vreg.id d) (cycle + lat))
            (Ir.Op.defs op);
          match (Ir.Op.opcode op, Ir.Op.addr op) with
          | Mach.Opcode.Store, Some a ->
              let extra =
                match Ir.Op.srcs op with
                | _ :: idx :: _ -> (
                    match Ir.Eval.get_reg st idx with
                    | Ir.Eval.I v -> v
                    | Ir.Eval.F v -> int_of_float v)
                | _ -> 0
              in
              Hashtbl.replace mem_ready
                (a.Ir.Addr.base, address ~iteration:0 a extra)
                (cycle + lat)
          | _ -> ()
        end
      end)
    code.Expand.instances;
  match !error with Some v -> Error v | None -> Ok st

let stage_counts code =
  let ii = Kernel.ii code.Expand.kernel in
  let stages = Kernel.n_stages code.Expand.kernel in
  let steady_start = (stages - 1) * ii in
  let steady_end = code.Expand.trips * ii in
  List.fold_left
    (fun (pre, steady, post) (x : Expand.instance) ->
      if x.cycle < steady_start then (pre + 1, steady, post)
      else if x.cycle < steady_end then (pre, steady + 1, post)
      else (pre, steady, post + 1))
    (0, 0, 0) code.Expand.instances
