type t = { placements : Schedule.placement list; ii : int; n_stages : int }

let make ~ii placements =
  if ii < 1 then invalid_arg "Kernel.make: ii must be >= 1";
  if placements = [] then invalid_arg "Kernel.make: empty kernel";
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (p : Schedule.placement) ->
      let id = Ir.Op.id p.op in
      if Hashtbl.mem seen id then invalid_arg "Kernel.make: duplicate op";
      Hashtbl.add seen id ())
    placements;
  let min_cycle =
    List.fold_left (fun acc (p : Schedule.placement) -> min acc p.cycle) max_int placements
  in
  let placements =
    List.map (fun (p : Schedule.placement) -> { p with Schedule.cycle = p.cycle - min_cycle }) placements
  in
  let max_cycle =
    List.fold_left (fun acc (p : Schedule.placement) -> max acc p.cycle) 0 placements
  in
  let n_stages = (max_cycle / ii) + 1 in
  let placements =
    List.sort
      (fun (a : Schedule.placement) (b : Schedule.placement) ->
        let c = Int.compare a.cycle b.cycle in
        if c <> 0 then c else Int.compare (Ir.Op.id a.op) (Ir.Op.id b.op))
      placements
  in
  { placements; ii; n_stages }

let ii t = t.ii
let n_stages t = t.n_stages
let placements t = t.placements
let op_count t = List.length t.placements

let find t id =
  match List.find_opt (fun (p : Schedule.placement) -> Ir.Op.id p.op = id) t.placements with
  | Some p -> p
  | None -> raise Not_found

let cycle_of t id = (find t id).cycle
let slot_of t id = cycle_of t id mod t.ii
let stage_of t id = cycle_of t id / t.ii
let cluster_of t id = (find t id).cluster

let kernel_rows t =
  List.init t.ii (fun slot ->
      ( slot,
        List.filter_map
          (fun (p : Schedule.placement) -> if p.cycle mod t.ii = slot then Some p.op else None)
          t.placements ))

let ipc ?(count = fun _ -> true) t =
  let n = List.length (List.filter (fun (p : Schedule.placement) -> count p.op) t.placements) in
  float_of_int n /. float_of_int t.ii

let pp ppf t =
  Format.fprintf ppf "@[<v>kernel (II=%d, %d stages, %d ops):@," t.ii t.n_stages (op_count t);
  List.iter
    (fun (slot, ops) ->
      Format.fprintf ppf "  %2d: %s@," slot
        (String.concat " | " (List.map Ir.Op.to_string ops)))
    (kernel_rows t);
  Format.fprintf ppf "@]"
