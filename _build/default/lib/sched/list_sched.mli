(** Cycle-driven list scheduling for straight-line code.

    Produces the paper's "ideal schedule" when run on the monolithic
    machine, and clustered flat schedules (whole-function path) when given
    a cluster assignment. Only loop-independent (distance-0) dependences
    constrain a flat schedule; loop-carried edges are the modulo
    scheduler's business.

    Priority: smallest ALAP first (deadline order), ties broken by
    smallest ASAP then op id — deterministic. *)

val schedule :
  ?cluster_of:(int -> int) ->
  machine:Mach.Machine.t ->
  Ddg.Graph.t ->
  Schedule.t
(** [cluster_of] maps op ids to clusters and defaults to cluster 0
    everywhere, which is only valid on monolithic machines — passing a
    multi-cluster machine without [cluster_of] raises
    [Invalid_argument]. *)

val ideal : machine:Mach.Machine.t -> Ddg.Graph.t -> Schedule.t
(** Ideal schedule: same width and latencies, one monolithic bank. Always
    schedules on a 1-cluster machine of [Machine.width machine] units. *)
