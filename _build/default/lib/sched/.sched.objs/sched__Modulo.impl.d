lib/sched/modulo.ml: Ddg Graphlib Hashtbl Kernel List Mach Restab Schedule
