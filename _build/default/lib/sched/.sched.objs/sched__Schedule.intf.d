lib/sched/schedule.mli: Format Ir Mach
