lib/sched/sim.mli: Expand Ir Mach Stdlib
