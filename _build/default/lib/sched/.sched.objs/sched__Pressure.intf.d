lib/sched/pressure.mli: Ir Kernel
