lib/sched/kernel.mli: Format Ir Schedule
