lib/sched/schedule.ml: Format Hashtbl Int Ir List String
