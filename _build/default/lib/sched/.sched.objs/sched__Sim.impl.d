lib/sched/sim.ml: Expand Hashtbl Ir Kernel List Mach Printf
