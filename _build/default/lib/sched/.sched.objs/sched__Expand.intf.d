lib/sched/expand.mli: Ir Kernel Mach
