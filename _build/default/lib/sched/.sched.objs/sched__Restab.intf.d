lib/sched/restab.mli: Ir Mach
