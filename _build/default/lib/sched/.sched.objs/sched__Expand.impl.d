lib/sched/expand.ml: Array Hashtbl Int Ir Kernel List Option Printf Schedule
