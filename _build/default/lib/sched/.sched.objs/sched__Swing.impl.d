lib/sched/swing.ml: Ddg Graphlib Hashtbl Kernel List Mach Modulo Option Restab Schedule
