lib/sched/kernel.ml: Format Hashtbl Int Ir List Schedule String
