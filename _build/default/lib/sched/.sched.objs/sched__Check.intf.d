lib/sched/check.mli: Ddg Kernel Mach Schedule
