lib/sched/slack.mli: Ddg
