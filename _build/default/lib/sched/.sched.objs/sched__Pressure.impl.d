lib/sched/pressure.ml: Array Hashtbl Ir Kernel List Option
