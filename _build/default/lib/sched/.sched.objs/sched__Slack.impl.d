lib/sched/slack.ml: Ddg Graphlib Hashtbl List
