lib/sched/restab.ml: Hashtbl Int Ir List Mach Option
