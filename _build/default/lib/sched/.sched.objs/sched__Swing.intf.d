lib/sched/swing.mli: Ddg Mach Modulo
