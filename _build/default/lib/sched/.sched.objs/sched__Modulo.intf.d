lib/sched/modulo.mli: Ddg Kernel Mach
