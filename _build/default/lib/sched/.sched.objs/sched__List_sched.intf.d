lib/sched/list_sched.mli: Ddg Mach Schedule
