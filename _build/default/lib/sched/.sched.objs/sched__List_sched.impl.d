lib/sched/list_sched.ml: Ddg Graphlib Hashtbl List Mach Restab Schedule Slack
