lib/sched/check.ml: Ddg Graphlib Hashtbl Ir Kernel List Mach Option Printf Schedule
