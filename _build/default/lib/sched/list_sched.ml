let schedule ?cluster_of ~machine ddg =
  let m : Mach.Machine.t = machine in
  let cluster_of =
    match cluster_of with
    | Some f -> f
    | None ->
        if m.clusters > 1 then
          invalid_arg "List_sched.schedule: multi-cluster machine needs cluster_of";
        fun _ -> 0
  in
  let g = Ddg.Graph.loop_independent ddg in
  let sl = Slack.analyze ddg in
  let tab = Restab.create_flat m in
  let earliest = Hashtbl.create 64 in
  let pending_preds = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Hashtbl.replace earliest id 0;
      Hashtbl.replace pending_preds id (Graphlib.Digraph.in_degree g id))
    (Graphlib.Digraph.nodes g);
  let priority id = (Slack.alap sl id, Slack.asap sl id, id) in
  let compare_prio a b = compare (priority a) (priority b) in
  let placements = ref [] in
  let n = Ddg.Graph.size ddg in
  let scheduled = ref 0 in
  let cycle = ref 0 in
  let ready = ref [] in
  let waiting = ref (List.filter (fun id -> Hashtbl.find pending_preds id = 0) (Graphlib.Digraph.nodes g)) in
  (* [waiting] holds dependence-released ops whose earliest cycle may still
     be in the future; [ready] those issuable now. *)
  while !scheduled < n do
    let now, later = List.partition (fun id -> Hashtbl.find earliest id <= !cycle) !waiting in
    waiting := later;
    ready := List.sort compare_prio (!ready @ now);
    let still_ready = ref [] in
    List.iter
      (fun id ->
        let op = Ddg.Graph.op ddg id in
        let req = Restab.request_for m ~cluster:(cluster_of id) op in
        if not (Restab.satisfiable tab req) then
          invalid_arg "List_sched.schedule: unsatisfiable resource request";
        if Restab.fits tab ~cycle:!cycle req then begin
          Restab.reserve tab ~cycle:!cycle ~op:id req;
          placements :=
            { Schedule.op; cycle = !cycle; cluster = cluster_of id } :: !placements;
          incr scheduled;
          List.iter
            (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
              let lat = Ddg.Dep.latency e.label in
              let cur = Hashtbl.find earliest e.dst in
              Hashtbl.replace earliest e.dst (max cur (!cycle + lat));
              let p = Hashtbl.find pending_preds e.dst - 1 in
              Hashtbl.replace pending_preds e.dst p;
              if p = 0 then waiting := e.dst :: !waiting)
            (Graphlib.Digraph.succs g id)
        end
        else still_ready := id :: !still_ready)
      !ready;
    ready := List.rev !still_ready;
    incr cycle
  done;
  Schedule.make !placements ddg.Ddg.Graph.latency

let ideal ~machine ddg =
  let m =
    Mach.Machine.ideal ~name:(machine.Mach.Machine.name ^ "-ideal")
      ~latency:machine.Mach.Machine.latency ~width:(Mach.Machine.width machine) ()
  in
  schedule ~machine:m ddg
