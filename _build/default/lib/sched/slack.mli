(** ASAP/ALAP analysis and the paper's "Flexibility" metric.

    Flexibility(O) is the slack of a DDD node plus one: the difference
    between the earliest cycle O could issue (longest latency path from
    any source through loop-independent dependences) and the latest cycle
    it could issue without stretching the critical path. Critical-path
    operations have Flexibility 1; the RCG weighting divides by this, so
    constrained values weigh more. *)

type t

val analyze : Ddg.Graph.t -> t
(** Analysis over the distance-0 (loop-independent) subgraph. *)

val asap : t -> int -> int
(** Earliest issue cycle of an op id. Raises [Not_found]. *)

val alap : t -> int -> int
(** Latest issue cycle that preserves the critical-path length. *)

val slack : t -> int -> int
(** [alap - asap], >= 0. *)

val flexibility : t -> int -> int
(** [slack + 1], the paper's divide-by-zero-safe variant. *)

val is_critical : t -> int -> bool
(** [slack = 0]. *)

val critical_path : t -> int
(** Latency-weighted critical path length of the body. *)
