(** Schedule validity checking.

    Independent re-verification used by the test suite and examples: a
    schedule produced by any of our schedulers must respect every
    dependence edge and never oversubscribe a machine resource. Checks are
    written directly from the definitions, not by reusing scheduler
    internals, so they catch scheduler bugs. *)

val flat :
  machine:Mach.Machine.t ->
  cluster_of:(int -> int) ->
  ddg:Ddg.Graph.t ->
  Schedule.t ->
  (unit, string) result
(** Straight-line schedule: every op placed exactly once; distance-0 edges
    satisfied ([t(dst) - t(src) >= latency]); per-cycle resource usage
    within capacity. *)

val kernel :
  machine:Mach.Machine.t ->
  cluster_of:(int -> int) ->
  ddg:Ddg.Graph.t ->
  Kernel.t ->
  (unit, string) result
(** Modulo schedule: every edge satisfied as
    [t(dst) - t(src) >= latency - II*distance]; modulo resource usage
    (cycles folded by II) within capacity. *)
