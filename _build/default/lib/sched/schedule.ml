type placement = { op : Ir.Op.t; cycle : int; cluster : int }

type t = { placements : placement list; length : int }

let compare_placement a b =
  let c = Int.compare a.cycle b.cycle in
  if c <> 0 then c else Int.compare (Ir.Op.id a.op) (Ir.Op.id b.op)

let make placements latency =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun p ->
      if p.cycle < 0 then invalid_arg "Schedule.make: negative cycle";
      let id = Ir.Op.id p.op in
      if Hashtbl.mem seen id then invalid_arg "Schedule.make: duplicate op";
      Hashtbl.add seen id ())
    placements;
  let placements = List.sort compare_placement placements in
  let length =
    List.fold_left (fun acc p -> max acc (p.cycle + Ir.Op.latency latency p.op)) 0 placements
  in
  { placements; length }

let placements t = t.placements
let length t = t.length

let issue_length t =
  1 + List.fold_left (fun acc p -> max acc p.cycle) (-1) t.placements

let find t id =
  match List.find_opt (fun p -> Ir.Op.id p.op = id) t.placements with
  | Some p -> p
  | None -> raise Not_found

let cycle_of t id = (find t id).cycle
let cluster_of t id = (find t id).cluster

let instruction_at t cycle =
  List.filter_map (fun p -> if p.cycle = cycle then Some p.op else None) t.placements

let instructions t =
  let rec group = function
    | [] -> []
    | p :: _ as l ->
        let same, rest = List.partition (fun q -> q.cycle = p.cycle) l in
        (p.cycle, List.map (fun q -> q.op) same) :: group rest
  in
  group t.placements

let op_count t = List.length t.placements

let ipc t =
  let il = issue_length t in
  if il = 0 then 0.0 else float_of_int (op_count t) /. float_of_int il

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (%d ops, %d cycles):@," (op_count t) t.length;
  List.iter
    (fun (cycle, ops) ->
      Format.fprintf ppf "  %3d: %s@," cycle
        (String.concat " | " (List.map Ir.Op.to_string ops)))
    (instructions t);
  Format.fprintf ppf "@]"
