let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let check_coverage ~ddg lookup =
  List.fold_left
    (fun acc op ->
      let* () = acc in
      let id = Ir.Op.id op in
      match lookup id with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "op %d (%s) not scheduled" id (Ir.Op.to_string op)))
    (Ok ()) (Ddg.Graph.ops_in_order ddg)

let check_edges ~ddg ~ii lookup =
  Graphlib.Digraph.fold_edges
    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) acc ->
      let* () = acc in
      match (lookup e.src, lookup e.dst) with
      | Some ts, Some td ->
          let need = Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label) in
          if td - ts >= need then Ok ()
          else
            Error
              (Printf.sprintf "edge %d->%d %s violated: %d - %d < %d" e.src e.dst
                 (Ddg.Dep.to_string e.label) td ts need)
      | None, _ | _, None -> Error "edge endpoint unscheduled")
    (Ddg.Graph.graph ddg) (Ok ())

(* Count resource usage per (normalized cycle): functional units per
   cluster (for specialized unit mixes, feasibility is Hall's condition —
   each class's overflow beyond its dedicated units must fit in the
   General pool); copy ports per cluster and busses under the copy-unit
   model. *)
let check_resources ~machine ~cluster_of ~normalize placements =
  let m : Mach.Machine.t = machine in
  (* (cluster, cycle, fu_class) -> demand for that specialized class *)
  let fu = Hashtbl.create 64 in
  let fu_slots = Hashtbl.create 64 in (* (cluster, cycle) -> total fu ops *)
  let port = Hashtbl.create 16 in
  let bus = Hashtbl.create 16 in
  let bump tbl key cap what =
    let v = 1 + Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key v;
    if v > cap then Error (Printf.sprintf "%s oversubscribed at %s" what "slot") else Ok ()
  in
  let cap_of fc = Option.value ~default:0 (List.assoc_opt fc m.fu_mix) in
  let general_cap = cap_of Mach.Machine.General in
  let* () =
    List.fold_left
      (fun acc (p : Schedule.placement) ->
        let* () = acc in
        let id = Ir.Op.id p.op in
        let c = cluster_of id in
        if not (Mach.Machine.valid_cluster m c) then
          Error (Printf.sprintf "op %d on invalid cluster %d" id c)
        else
          let cyc = normalize p.cycle in
          match (m.copy_model, Ir.Op.is_copy p.op) with
          | Mach.Machine.Copy_unit, true ->
              let* () = bump port (c, cyc) m.copy_ports "copy ports" in
              bump bus cyc m.busses "busses"
          | (Mach.Machine.Embedded | Mach.Machine.Copy_unit), _ ->
              let* () = bump fu_slots (c, cyc) m.fus_per_cluster "functional units" in
              if Mach.Machine.is_general_only m then Ok ()
              else begin
                List.iter
                  (fun fc ->
                    let key = (c, cyc, fc) in
                    Hashtbl.replace fu key
                      (1 + Option.value ~default:0 (Hashtbl.find_opt fu key)))
                  (Mach.Machine.allowed_classes (Ir.Op.opcode p.op) (Ir.Op.cls p.op));
                Ok ()
              end)
      (Ok ()) placements
  in
  if Mach.Machine.is_general_only m then Ok ()
  else begin
    (* Hall's condition per (cluster, cycle): Σ_k max(0, demand_k - cap_k)
       must fit in the General units. *)
    let by_slot = Hashtbl.create 32 in
    Hashtbl.iter
      (fun (c, cyc, fc) n ->
        let key = (c, cyc) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_slot key) in
        Hashtbl.replace by_slot key ((fc, n) :: cur))
      fu;
    Hashtbl.fold
      (fun (c, cyc) demands acc ->
        let* () = acc in
        let overflow =
          List.fold_left (fun acc (fc, n) -> acc + max 0 (n - cap_of fc)) 0 demands
        in
        if overflow <= general_cap then Ok ()
        else
          Error
            (Printf.sprintf "specialized units oversubscribed in cluster %d at slot %d" c cyc))
      by_slot (Ok ())
  end

let flat ~machine ~cluster_of ~ddg sched =
  let lookup id = try Some (Schedule.cycle_of sched id) with Not_found -> None in
  let* () = check_coverage ~ddg lookup in
  let g0 = Ddg.Graph.loop_independent ddg in
  let* () =
    Graphlib.Digraph.fold_edges
      (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) acc ->
        let* () = acc in
        match (lookup e.src, lookup e.dst) with
        | Some ts, Some td ->
            if td - ts >= Ddg.Dep.latency e.label then Ok ()
            else Error (Printf.sprintf "flat edge %d->%d violated" e.src e.dst)
        | None, _ | _, None -> Error "edge endpoint unscheduled")
      g0 (Ok ())
  in
  check_resources ~machine ~cluster_of ~normalize:(fun c -> c) (Schedule.placements sched)

let kernel ~machine ~cluster_of ~ddg k =
  let lookup id = try Some (Kernel.cycle_of k id) with Not_found -> None in
  let* () = check_coverage ~ddg lookup in
  let* () = check_edges ~ddg ~ii:(Kernel.ii k) lookup in
  check_resources ~machine ~cluster_of
    ~normalize:(fun c -> c mod Kernel.ii k)
    (Kernel.placements k)
