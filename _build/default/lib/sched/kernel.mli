(** Modulo-schedule kernels.

    A kernel is a flat placement of one iteration's operations over
    [n_stages × ii] cycles that is legal when re-initiated every [ii]
    cycles: operation placed at cycle [t] occupies kernel slot [t mod ii]
    in stage [t / ii]. The steady-state loop body is [ii] instructions
    long; degradation in the paper is measured on achieved II. *)

type t = private {
  placements : Schedule.placement list;  (** sorted; min cycle is 0 *)
  ii : int;
  n_stages : int;
}

val make : ii:int -> Schedule.placement list -> t
(** Normalizes cycles so the earliest is 0 and computes the stage count.
    Raises [Invalid_argument] on an empty placement list, duplicate ops or
    [ii < 1]. *)

val ii : t -> int
val n_stages : t -> int
val placements : t -> Schedule.placement list
val op_count : t -> int

val cycle_of : t -> int -> int
(** Flat cycle of an op id. Raises [Not_found]. *)

val slot_of : t -> int -> int
(** Kernel row ([cycle mod ii]) of an op id. *)

val stage_of : t -> int -> int
(** Pipeline stage ([cycle / ii]) of an op id. *)

val cluster_of : t -> int -> int

val kernel_rows : t -> (int * Ir.Op.t list) list
(** The steady-state kernel: for each slot 0..ii-1, the ops issuing there
    (across all stages), in slot order. *)

val ipc : ?count:(Ir.Op.t -> bool) -> t -> float
(** Operations per cycle of the steady-state kernel: counted ops / II.
    [count] filters (the paper excludes copies from IPC under the
    copy-unit model); defaults to counting everything. *)

val pp : Format.formatter -> t -> unit
