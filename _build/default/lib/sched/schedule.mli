(** Flat (acyclic) schedules.

    A schedule places each operation at a cycle on a cluster. The "ideal
    schedule" of the paper is such a schedule produced with the machine's
    real width and latencies but a single monolithic register bank. *)

type placement = { op : Ir.Op.t; cycle : int; cluster : int }

type t = private {
  placements : placement list;  (** sorted by cycle, then op id *)
  length : int;                 (** cycles until every result is ready *)
}

val make : placement list -> Mach.Latency.t -> t
(** Length is computed as max over placements of cycle + latency. Raises
    [Invalid_argument] on duplicate ops or negative cycles. *)

val placements : t -> placement list
val length : t -> int
val issue_length : t -> int
(** Number of instruction slots actually spanned: last issue cycle + 1
    (the paper counts schedule *instructions*, i.e. issue cycles). *)

val cycle_of : t -> int -> int
(** Issue cycle of an op id. Raises [Not_found]. *)

val cluster_of : t -> int -> int
(** Cluster of an op id. Raises [Not_found]. *)

val instruction_at : t -> int -> Ir.Op.t list
(** Ops issuing at the given cycle (every cluster), by op id. *)

val instructions : t -> (int * Ir.Op.t list) list
(** Non-empty issue cycles in order. *)

val op_count : t -> int

val ipc : t -> float
(** Operations per issue cycle over {!issue_length}. *)

val pp : Format.formatter -> t -> unit
