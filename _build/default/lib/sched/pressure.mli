(** Register requirements of modulo schedules.

    Software pipelining's appetite for registers is the paper's core
    motivation, and the Section 6.3 comparison turns on it: Nystrom and
    Eichenberger schedule with Swing modulo scheduling precisely because
    it is "lifetime-sensitive". MaxLive — the maximum number of
    simultaneously live values in the steady state — is the standard
    measure; a kernel needs at least MaxLive registers (after modulo
    variable expansion) regardless of allocation quality. *)

val lifetimes : kernel:Kernel.t -> loop:Ir.Loop.t -> (Ir.Vreg.t * int * int) list
(** For each register defined in the body: (register, def cycle, last-use
    cycle) in flat kernel coordinates, where a use at distance d counts
    as [cycle + d·II]. Loop invariants are excluded (they are live
    throughout and bank-resident once). Registers with no uses get a
    one-cycle lifetime ending at [def + 1]. *)

val max_live : kernel:Kernel.t -> loop:Ir.Loop.t -> int
(** MaxLive of the steady state: for each kernel slot s in [0, II), the
    number of lifetimes covering s modulo II (a lifetime of length len
    starting at cycle c covers ⌈len/II⌉ instances), maximized over
    slots, plus the always-live invariant count. *)

val per_bank_max_live :
  kernel:Kernel.t -> loop:Ir.Loop.t -> banks:int -> bank_of:(Ir.Vreg.t -> int) -> int array
(** MaxLive split by register bank — the quantity each partition's
    Chaitin/Briggs run is up against. *)
