type t = {
  asap : (int, int) Hashtbl.t;
  alap : (int, int) Hashtbl.t;
  critical_path : int;
}

(* ASAP is a forward longest path with each edge weighted by its
   dependence latency. The tail below a node v is
   max(lat v, max over out-edges (weight e + tail (dst e))): the span from
   v's issue to the last completion it transitively delays. Then
   cp = max (asap + tail) and alap v = cp - tail v. *)
let analyze ddg =
  let g = Ddg.Graph.loop_independent ddg in
  let weight (e : Ddg.Dep.t Graphlib.Digraph.edge) = Ddg.Dep.latency e.Graphlib.Digraph.label in
  let asap = Graphlib.Topo.longest_paths ~weight g in
  let order = Graphlib.Topo.sort_exn g in
  let tail = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let own = Ddg.Graph.latency_of ddg (Ddg.Graph.op ddg id) in
      let best =
        List.fold_left
          (fun acc (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
            max acc (weight e + Hashtbl.find tail e.dst))
          own (Graphlib.Digraph.succs g id)
      in
      Hashtbl.replace tail id best)
    (List.rev order);
  let cp = Hashtbl.fold (fun id d acc -> max acc (d + Hashtbl.find tail id)) asap 0 in
  let alap = Hashtbl.create 64 in
  Hashtbl.iter (fun id tl -> Hashtbl.replace alap id (cp - tl)) tail;
  { asap; alap; critical_path = cp }

let asap t id = Hashtbl.find t.asap id
let alap t id = Hashtbl.find t.alap id
let slack t id = alap t id - asap t id
let flexibility t id = slack t id + 1
let is_critical t id = slack t id = 0
let critical_path t = t.critical_path
