(** Cycle-accurate execution of expanded pipelines.

    A third, dynamic line of validation (besides the static checker
    {!Check} and the sequential interpreter [Ir.Eval]): execute a
    flattened pipeline instance by instance at its scheduled cycles, with
    every value carrying the cycle at which its producer's latency
    elapses. Reading a register or memory cell before it is ready is a
    latency violation the static checker should have caught — here it is
    caught by the data itself. On success the final architectural state
    equals sequential execution.

    Values are the interpreter's; the simulator delegates each
    operation's semantics to [Ir.Eval] on a scratch state and only adds
    the timing layer. *)

type violation = {
  cycle : int;
  op : Ir.Op.t;
  what : string;  (** e.g. ["register f5 ready at 7, read at 5"] *)
}

val run :
  ?state:Ir.Eval.state ->
  latency:Mach.Latency.t ->
  Expand.code ->
  (Ir.Eval.state, violation) Stdlib.result
(** Execute the whole expansion. [state] seeds live-in registers and
    memory (defaults to a fresh state); on success the same state, now
    holding the final values, is returned. *)

val stage_counts : Expand.code -> int * int * int
(** (prelude, steady-state, postlude) instance counts: instances issued
    before the first full-kernel window, within it, and after it. *)
