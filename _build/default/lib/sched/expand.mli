(** Pipeline expansion: prelude, steady state, postlude.

    A modulo-scheduled kernel only describes one iteration's placements;
    executing the loop overlaps [n_stages] iterations. [flatten] emits the
    complete flat code for a given trip count: iteration [i] issues each
    kernel op at cycle [i*II + cycle], registers are renamed per iteration
    (modulo variable expansion taken to its full-unroll limit), carried
    uses read the previous iteration's instance, and affine addresses are
    resolved to absolute offsets. Cycles before the first full kernel
    window form the prelude, cycles after the last one the postlude.

    The expansion is sequentially faithful: reading the emitted list top
    to bottom with ordinary sequential semantics computes exactly what
    [trips] iterations of the source loop compute, which is what the
    interpreter-based equivalence tests check. *)

type instance = {
  iteration : int;
  source_id : int;   (** op id within the loop body *)
  op : Ir.Op.t;      (** renamed instance *)
  cycle : int;
}

type code = private {
  instances : instance list;  (** issue order: cycle, then iteration, then body position *)
  total_cycles : int;         (** last issue cycle + 1 *)
  trips : int;
  kernel : Kernel.t;
  final : Ir.Vreg.t Ir.Vreg.Map.t;  (** see {!live_out_map} *)
}

val flatten : kernel:Kernel.t -> loop:Ir.Loop.t -> trips:int -> code
(** Raises [Invalid_argument] when [trips < 1] or the kernel does not
    cover exactly the loop's ops. Registers in [Ir.Loop.live_out loop] map
    to their last iteration's instance; loop-invariant registers keep
    their names. *)

val ops : code -> Ir.Op.t list
(** The straight-line instruction stream. *)

val live_out_map : code -> Ir.Vreg.t Ir.Vreg.Map.t
(** For each live-out register of the source loop, the instance register
    holding its final value. *)

val speedup : code -> latency:Mach.Latency.t -> loop:Ir.Loop.t -> float
(** Sequential-schedule length of [trips] iterations divided by the
    pipelined [total_cycles] — the classic software-pipelining win. *)

val mve_factor : kernel:Kernel.t -> loop:Ir.Loop.t -> int
(** Modulo-variable-expansion unroll factor: the largest
    ⌈lifetime/II⌉ over the loop's non-invariant registers — how many
    kernel copies a rotating-register-free implementation must emit. *)
