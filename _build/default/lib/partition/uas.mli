(** UAS — unified assign-and-schedule (Ozer et al., MICRO-31) baseline.

    Reconstruction: partitioning happens *during* list scheduling rather
    than before it. A cycle-driven scheduler walks the loop body's
    loop-independent DDG; when an operation becomes ready, the clusters
    are ranked by (copies its sources would need, current cycle load,
    index) and the op is placed in the best cluster with a free issue
    slot this cycle — schedule-time resource checking, UAS's advertised
    advantage over BUG. The destination register inherits the cluster.
    The schedule itself is discarded; only the register assignment is
    kept, so the common evaluation pipeline (copy insertion + clustered
    modulo rescheduling) stays identical across partitioners. *)

val partition : machine:Mach.Machine.t -> Ddg.Graph.t -> Assign.t
(** Covers every register of the DDG; invariant sources join their first
    consumer's cluster. *)
