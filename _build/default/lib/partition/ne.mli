(** Recurrence-aware partitioning in the style of Nystrom and
    Eichenberger (MICRO-31), the Section 6.3 comparator.

    Their "chief design goal ... is to add copies such that maximal
    recurrence cycle(s) in the data dependence graph are not lengthened
    if at all possible". Reconstruction: every recurrence (non-trivial
    SCC of the DDG) is treated as an atomic group whose registers must
    share a bank — a cross-bank copy inside a recurrence adds its copy
    latency to the cycle and raises RecMII directly. Groups are placed
    most-critical-first on the least-loaded bank; the remaining
    straight-line operations are then assigned in body order to the bank
    minimizing (copy count, load), BUG-style.

    Combined with {!Refine} this approximates their iterative scheme; the
    ablation bench compares it against the paper's RCG greedy method. *)

val partition : machine:Mach.Machine.t -> Ddg.Graph.t -> Assign.t
(** Covers every register of the DDG. *)

val recurrence_groups : Ddg.Graph.t -> Ir.Vreg.Set.t list
(** The register groups induced by non-trivial SCCs, most critical
    first (criticality = total latency of the component's ops). Groups
    sharing a register are merged. Exposed for tests. *)
