type t = int Ir.Vreg.Map.t

let bank t r =
  match Ir.Vreg.Map.find_opt r t with
  | Some b -> b
  | None ->
      invalid_arg (Printf.sprintf "Assign.bank: register %s unassigned" (Ir.Vreg.to_string r))

let bank_opt t r = Ir.Vreg.Map.find_opt r t

let cluster_of_op t (op : Ir.Op.t) =
  match Ir.Op.dst op with
  | Some d -> bank t d
  | None -> (
      match Ir.Op.srcs op with
      | s :: _ -> bank t s
      | [] -> 0)

let of_list l = List.fold_left (fun acc (r, b) -> Ir.Vreg.Map.add r b acc) Ir.Vreg.Map.empty l

let counts ~banks t =
  let a = Array.make banks 0 in
  Ir.Vreg.Map.iter
    (fun r b ->
      if b < 0 || b >= banks then
        invalid_arg
          (Printf.sprintf "Assign.counts: %s assigned to bank %d (of %d)"
             (Ir.Vreg.to_string r) b banks);
      a.(b) <- a.(b) + 1)
    t;
  a

let all_in_range ~banks t = Ir.Vreg.Map.for_all (fun _ b -> b >= 0 && b < banks) t

let copies_needed t ops =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let c = cluster_of_op t op in
      List.iter
        (fun r ->
          let b = bank t r in
          if b <> c then Hashtbl.replace seen (Ir.Vreg.id r, c) ())
        (Ir.Op.uses op))
    ops;
  Hashtbl.length seen

let pp ppf t =
  Format.fprintf ppf "@[<v>assignment:@,";
  Ir.Vreg.Map.iter
    (fun r b -> Format.fprintf ppf "  %s -> bank %d@," (Ir.Vreg.to_string r) b)
    t;
  Format.fprintf ppf "@]"
