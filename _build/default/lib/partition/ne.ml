let recurrence_groups ddg =
  let g = Ddg.Graph.graph ddg in
  let comps = Graphlib.Scc.nontrivial g in
  let group_of comp =
    let regs =
      List.fold_left
        (fun acc id ->
          let op = Ddg.Graph.op ddg id in
          List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op))
        Ir.Vreg.Set.empty comp
    in
    let crit =
      List.fold_left (fun acc id -> acc + Ddg.Graph.latency_of ddg (Ddg.Graph.op ddg id)) 0 comp
    in
    (regs, crit)
  in
  let groups = List.map group_of comps in
  (* Merge groups sharing a register (an op can sit on two recurrences). *)
  let rec merge acc = function
    | [] -> acc
    | (regs, crit) :: rest ->
        let overlapping, disjoint =
          List.partition (fun (r2, _) -> not (Ir.Vreg.Set.disjoint regs r2)) acc
        in
        let merged =
          List.fold_left
            (fun (r, c) (r2, c2) -> (Ir.Vreg.Set.union r r2, c + c2))
            (regs, crit) overlapping
        in
        merge (merged :: disjoint) rest
  in
  merge [] groups
  |> List.sort (fun (_, c1) (_, c2) -> Int.compare c2 c1)
  |> List.map fst

let partition ~machine ddg =
  let m : Mach.Machine.t = machine in
  let banks = m.clusters in
  let location : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let load = Array.make banks 0 in
  (* Phase 1: recurrences, most critical first, on the least-loaded bank. *)
  List.iter
    (fun group ->
      let bank = ref 0 in
      for b = 1 to banks - 1 do
        if load.(b) < load.(!bank) then bank := b
      done;
      Ir.Vreg.Set.iter
        (fun r ->
          if not (Hashtbl.mem location (Ir.Vreg.id r)) then begin
            Hashtbl.replace location (Ir.Vreg.id r) !bank;
            load.(!bank) <- load.(!bank) + 1
          end)
        group)
    (recurrence_groups ddg);
  (* Phase 2: remaining ops in body order; destination goes to the bank
     minimizing (copies needed, load). *)
  List.iter
    (fun op ->
      let unplaced_dst =
        List.filter (fun d -> not (Hashtbl.mem location (Ir.Vreg.id d))) (Ir.Op.defs op)
      in
      if unplaced_dst <> [] || Ir.Op.defs op = [] then begin
        let copies c =
          List.length
            (List.filter
               (fun r ->
                 match Hashtbl.find_opt location (Ir.Vreg.id r) with
                 | Some b -> b <> c
                 | None -> false)
               (Ir.Op.uses op))
        in
        let best = ref 0 in
        for b = 1 to banks - 1 do
          if (copies b, load.(b)) < (copies !best, load.(!best)) then best := b
        done;
        List.iter
          (fun d ->
            Hashtbl.replace location (Ir.Vreg.id d) !best;
            load.(!best) <- load.(!best) + 1)
          unplaced_dst
      end;
      (* invariants join their first consumer *)
      let home =
        match Ir.Op.defs op with
        | d :: _ -> Hashtbl.find_opt location (Ir.Vreg.id d)
        | [] -> None
      in
      List.iter
        (fun r ->
          if not (Hashtbl.mem location (Ir.Vreg.id r)) then
            Hashtbl.replace location (Ir.Vreg.id r) (Option.value ~default:0 home))
        (Ir.Op.uses op))
    (Ddg.Graph.ops_in_order ddg);
  let all_regs =
    List.fold_left
      (fun acc op ->
        List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op @ Ir.Op.uses op))
      Ir.Vreg.Set.empty (Ddg.Graph.ops_in_order ddg)
  in
  Assign.of_list
    (List.map
       (fun r -> (r, Option.value ~default:0 (Hashtbl.find_opt location (Ir.Vreg.id r))))
       (Ir.Vreg.Set.elements all_regs))
