(** Iterative partition refinement — the paper's future-work direction.

    Section 6.3 credits Nystrom and Eichenberger's better results partly to
    iteration and observes that "our greedy algorithm can be thought of as
    an initial phase before iteration is performed". This module is that
    second phase: steepest-descent moves of single registers between banks,
    accepted when they lower a cheap cost model of the clustered loop:

    cost = max(cluster-aware ResMII under the induced copies, RecMII)
           + copy_weight × copies needed

    RecMII is partition-independent (copies never join recurrences off the
    critical path in this model), so it is computed once. The move loop
    visits registers in decreasing RCG node-weight order and stops after a
    full sweep without improvement or [max_sweeps]. Pinned registers never
    move. *)

val cost :
  machine:Mach.Machine.t ->
  loop:Ir.Loop.t ->
  rec_mii:int ->
  copy_weight:float ->
  Assign.t ->
  float
(** The objective described above, exposed for tests. *)

val refine :
  ?max_sweeps:int ->
  ?copy_weight:float ->
  machine:Mach.Machine.t ->
  loop:Ir.Loop.t ->
  rcg:Rcg.Graph.t ->
  Assign.t ->
  Assign.t * int
(** [refine ~machine ~loop ~rcg assignment] returns the improved
    assignment and the number of accepted moves. [max_sweeps] defaults to
    4, [copy_weight] to 0.05 (one copy is worth a twentieth of an II
    cycle, enough to break ties without fighting the II term). *)

val partitioner :
  ?max_sweeps:int -> ?copy_weight:float -> Rcg.Weights.t -> Driver.partitioner
(** Greedy followed by refinement, packaged for {!Driver.pipeline}. *)
