let partition ?(load_factor = 1.0) ~machine ddg =
  let m : Mach.Machine.t = machine in
  let banks = m.clusters in
  let slack = Sched.Slack.analyze ddg in
  (* Bottom-up greedy visits critical operations first: deepest tail
     first, i.e. smallest ALAP. *)
  let order =
    List.sort
      (fun a b ->
        let c = Int.compare (Sched.Slack.alap slack (Ir.Op.id a)) (Sched.Slack.alap slack (Ir.Op.id b)) in
        if c <> 0 then c else Int.compare (Ir.Op.id a) (Ir.Op.id b))
      (Ddg.Graph.ops_in_order ddg)
  in
  let location : (int, int) Hashtbl.t = Hashtbl.create 64 in (* vreg id -> bank *)
  let load = Array.make banks 0 in
  let cost_of op c =
    let copy_cost =
      List.fold_left
        (fun acc r ->
          match Hashtbl.find_opt location (Ir.Vreg.id r) with
          | Some b when b <> c -> acc +. float_of_int (Mach.Machine.copy_latency m (Ir.Vreg.cls r))
          | Some _ | None -> acc)
        0.0 (Ir.Op.uses op)
    in
    copy_cost
    +. (load_factor *. float_of_int load.(c) /. float_of_int m.fus_per_cluster)
  in
  List.iter
    (fun op ->
      let best = ref 0 and best_cost = ref infinity in
      for c = 0 to banks - 1 do
        let v = cost_of op c in
        if v < !best_cost then begin
          best_cost := v;
          best := c
        end
      done;
      let c = !best in
      load.(c) <- load.(c) + 1;
      List.iter (fun d -> Hashtbl.replace location (Ir.Vreg.id d) c) (Ir.Op.defs op);
      (* First consumer claims still-unplaced (invariant) sources. *)
      List.iter
        (fun r ->
          if not (Hashtbl.mem location (Ir.Vreg.id r)) then
            Hashtbl.replace location (Ir.Vreg.id r) c)
        (Ir.Op.uses op))
    order;
  let all_regs =
    List.fold_left
      (fun acc op ->
        List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op @ Ir.Op.uses op))
      Ir.Vreg.Set.empty (Ddg.Graph.ops_in_order ddg)
  in
  Assign.of_list
    (List.map
       (fun r -> (r, Option.value ~default:0 (Hashtbl.find_opt location (Ir.Vreg.id r))))
       (Ir.Vreg.Set.elements all_regs))
