let per_cluster_loads ~machine ~ops assignment =
  let m : Mach.Machine.t = machine in
  let ops_per_cluster = Array.make m.clusters 0 in
  let copies_per_cluster = Array.make m.clusters 0 in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let c = Assign.cluster_of_op assignment op in
      ops_per_cluster.(c) <- ops_per_cluster.(c) + 1;
      List.iter
        (fun r ->
          let b = Assign.bank assignment r in
          if b <> c && not (Hashtbl.mem seen (Ir.Vreg.id r, c)) then begin
            Hashtbl.add seen (Ir.Vreg.id r, c) ();
            copies_per_cluster.(c) <- copies_per_cluster.(c) + 1
          end)
        (Ir.Op.uses op))
    ops;
  (ops_per_cluster, copies_per_cluster)

let cost ~machine ~loop ~rec_mii ~copy_weight assignment =
  let ops = Ir.Loop.ops loop in
  let ops_per_cluster, copies_per_cluster = per_cluster_loads ~machine ~ops assignment in
  let res = Ddg.Minii.res_mii_clustered ~machine ~ops_per_cluster ~copies_per_cluster in
  let n_copies = Array.fold_left ( + ) 0 copies_per_cluster in
  float_of_int (max res rec_mii) +. (copy_weight *. float_of_int n_copies)

let refine ?(max_sweeps = 4) ?(copy_weight = 0.05) ~machine ~loop ~rcg assignment =
  let m : Mach.Machine.t = machine in
  if Mach.Machine.is_monolithic m then (assignment, 0)
  else begin
    let rec_mii = Ddg.Minii.rec_mii (Ddg.Graph.of_loop ~latency:m.latency loop) in
    let order = Rcg.Graph.by_weight_desc rcg in
    let moves = ref 0 in
    let current = ref assignment in
    let current_cost = ref (cost ~machine ~loop ~rec_mii ~copy_weight !current) in
    let sweep () =
      let improved = ref false in
      List.iter
        (fun r ->
          if Rcg.Graph.pinned rcg r = None then begin
            let home = Assign.bank !current r in
            for b = 0 to m.clusters - 1 do
              if b <> home && Assign.bank !current r = home then begin
                let candidate = Ir.Vreg.Map.add r b !current in
                let c = cost ~machine ~loop ~rec_mii ~copy_weight candidate in
                if c < !current_cost -. 1e-9 then begin
                  current := candidate;
                  current_cost := c;
                  incr moves;
                  improved := true
                end
              end
            done
          end)
        order;
      !improved
    in
    let rec go n = if n > 0 && sweep () then go (n - 1) in
    go max_sweeps;
    (!current, !moves)
  end

let partitioner ?max_sweeps ?copy_weight weights =
  Driver.Custom
    (fun machine ddg rcg_opt ->
      let rcg =
        match rcg_opt with
        | Some g -> g
        | None -> invalid_arg "Refine.partitioner: driver did not supply an RCG"
      in
      let base = Greedy.partition ~weights ~banks:machine.Mach.Machine.clusters rcg in
      (* Rebuild a loop view for the cost model from the DDG's op order;
         depth and live-outs do not matter to the objective. *)
      let loop = Ir.Loop.make ~name:"refine" (Ddg.Graph.ops_in_order ddg) in
      let refined, _ = refine ?max_sweeps ?copy_weight ~machine ~loop ~rcg base in
      refined)
