let partition ~machine ddg =
  let m : Mach.Machine.t = machine in
  let banks = m.clusters in
  let g = Ddg.Graph.loop_independent ddg in
  let slack = Sched.Slack.analyze ddg in
  let location : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let earliest = Hashtbl.create 64 in
  let pending = Hashtbl.create 64 in
  List.iter
    (fun id ->
      Hashtbl.replace earliest id 0;
      Hashtbl.replace pending id (Graphlib.Digraph.in_degree g id))
    (Graphlib.Digraph.nodes g);
  let total = Ddg.Graph.size ddg in
  let scheduled = ref 0 in
  let cycle = ref 0 in
  let ready = ref [] in
  let waiting =
    ref (List.filter (fun id -> Hashtbl.find pending id = 0) (Graphlib.Digraph.nodes g))
  in
  let priority id = (Sched.Slack.alap slack id, Sched.Slack.asap slack id, id) in
  let slots_used = Array.make banks 0 in
  while !scheduled < total do
    Array.fill slots_used 0 banks 0;
    let now, later = List.partition (fun id -> Hashtbl.find earliest id <= !cycle) !waiting in
    waiting := later;
    ready := List.sort (fun a b -> compare (priority a) (priority b)) (!ready @ now);
    let leftover = ref [] in
    List.iter
      (fun id ->
        let op = Ddg.Graph.op ddg id in
        let copies_from c =
          List.length
            (List.filter
               (fun r ->
                 match Hashtbl.find_opt location (Ir.Vreg.id r) with
                 | Some b -> b <> c
                 | None -> false)
               (Ir.Op.uses op))
        in
        let candidates =
          List.init banks (fun c -> c)
          |> List.filter (fun c -> slots_used.(c) < m.fus_per_cluster)
          |> List.sort (fun a b ->
                 compare (copies_from a, slots_used.(a), a) (copies_from b, slots_used.(b), b))
        in
        match candidates with
        | [] -> leftover := id :: !leftover
        | c :: _ ->
            slots_used.(c) <- slots_used.(c) + 1;
            incr scheduled;
            List.iter (fun d -> Hashtbl.replace location (Ir.Vreg.id d) c) (Ir.Op.defs op);
            List.iter
              (fun r ->
                if not (Hashtbl.mem location (Ir.Vreg.id r)) then
                  Hashtbl.replace location (Ir.Vreg.id r) c)
              (Ir.Op.uses op);
            List.iter
              (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
                let lat = Ddg.Dep.latency e.label in
                Hashtbl.replace earliest e.dst (max (Hashtbl.find earliest e.dst) (!cycle + lat));
                let p = Hashtbl.find pending e.dst - 1 in
                Hashtbl.replace pending e.dst p;
                if p = 0 then waiting := e.dst :: !waiting)
              (Graphlib.Digraph.succs g id))
      !ready;
    ready := List.rev !leftover;
    incr cycle
  done;
  let all_regs =
    List.fold_left
      (fun acc op ->
        List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op @ Ir.Op.uses op))
      Ir.Vreg.Set.empty (Ddg.Graph.ops_in_order ddg)
  in
  Assign.of_list
    (List.map
       (fun r -> (r, Option.value ~default:0 (Hashtbl.find_opt location (Ir.Vreg.id r))))
       (Ir.Vreg.Set.elements all_regs))
