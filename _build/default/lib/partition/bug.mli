(** BUG — Ellis's bottom-up greedy partitioner (baseline).

    Reconstruction of the Bulldog partitioner the paper compares against
    in Section 3: operations are visited in critical-path (height)
    priority order and each is assigned to the cluster minimizing an
    estimated cost of executing it there — copy latency for every
    non-local source operand plus a load-balancing term for the cluster's
    current population. The destination register inherits the chosen
    cluster; loop-invariant sources are placed in the cluster of their
    first consumer. Unlike the RCG method this is intimately tied to
    machine details (copy latencies, FU counts), which is exactly the
    contrast the paper draws. *)

val partition :
  ?load_factor:float ->
  machine:Mach.Machine.t ->
  Ddg.Graph.t ->
  Assign.t
(** [load_factor] (default 1.0) scales the balance term, in cycles per
    (ops already assigned / FUs per cluster). The assignment covers every
    register of the DDG. *)
