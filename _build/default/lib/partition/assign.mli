(** Register-to-bank assignments.

    The output of any partitioner: a total map from the symbolic registers
    of a code region to register banks. Operations derive their cluster
    from their registers — an operation executes where its destination
    lives (the FU writes its own bank), and a store where its value
    source lives. *)

type t = int Ir.Vreg.Map.t

val bank : t -> Ir.Vreg.t -> int
(** Raises [Invalid_argument] naming the register when unassigned — a
    partitioner bug. *)

val bank_opt : t -> Ir.Vreg.t -> int option

val cluster_of_op : t -> Ir.Op.t -> int
(** Destination's bank; for stores/nops the first source's bank; 0 for
    operations touching no registers. *)

val of_list : (Ir.Vreg.t * int) list -> t

val counts : banks:int -> t -> int array
(** Registers per bank. Raises [Invalid_argument] if an assignment is out
    of range. *)

val all_in_range : banks:int -> t -> bool

val copies_needed : t -> Ir.Op.t list -> int
(** Number of (register, consuming-cluster) pairs that would require an
    inter-bank copy — a cheap static quality metric for partitions,
    before any scheduling. Copy reuse within the region is accounted for
    (each distinct pair counts once). *)

val pp : Format.formatter -> t -> unit
