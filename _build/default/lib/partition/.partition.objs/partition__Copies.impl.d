lib/partition/copies.ml: Array Assign Hashtbl Int Ir List Mach Option Printf
