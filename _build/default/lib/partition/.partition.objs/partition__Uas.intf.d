lib/partition/uas.mli: Assign Ddg Mach
