lib/partition/driver.mli: Assign Ddg Ir Mach Rcg Sched Stdlib
