lib/partition/ne.ml: Array Assign Ddg Graphlib Hashtbl Int Ir List Mach Option
