lib/partition/func_driver.ml: Assign Copies Ddg Greedy Hashtbl Ir List Mach Printf Rcg Sched
