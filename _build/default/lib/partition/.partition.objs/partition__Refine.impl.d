lib/partition/refine.ml: Array Assign Ddg Driver Greedy Hashtbl Ir List Mach Rcg
