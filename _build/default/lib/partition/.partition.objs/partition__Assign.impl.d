lib/partition/assign.ml: Array Format Hashtbl Ir List Printf
