lib/partition/driver.ml: Assign Bug Copies Ddg Greedy Hashtbl Ir List Mach Printf Rcg Sched Uas
