lib/partition/ne.mli: Assign Ddg Ir Mach
