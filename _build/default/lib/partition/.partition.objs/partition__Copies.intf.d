lib/partition/copies.mli: Assign Ir Mach
