lib/partition/uas.ml: Array Assign Ddg Graphlib Hashtbl Ir List Mach Option Sched
