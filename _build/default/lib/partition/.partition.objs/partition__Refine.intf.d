lib/partition/refine.mli: Assign Driver Ir Mach Rcg
