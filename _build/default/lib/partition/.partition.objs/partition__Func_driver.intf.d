lib/partition/func_driver.mli: Assign Ir Mach Rcg Stdlib
