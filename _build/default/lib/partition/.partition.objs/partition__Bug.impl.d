lib/partition/bug.ml: Array Assign Ddg Hashtbl Int Ir List Mach Option Sched
