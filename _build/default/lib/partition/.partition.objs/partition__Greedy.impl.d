lib/partition/greedy.ml: Array Assign Hashtbl Ir List Printf Rcg
