lib/partition/greedy.mli: Assign Ir Rcg
