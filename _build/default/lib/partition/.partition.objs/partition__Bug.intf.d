lib/partition/bug.mli: Assign Ddg Mach
