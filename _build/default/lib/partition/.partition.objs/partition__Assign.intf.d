lib/partition/assign.mli: Format Ir
