(** Cycle-sensitive path queries used by MinII analysis.

    Modulo scheduling asks: for a candidate initiation interval II, does
    the DDG contain a recurrence circuit whose total latency exceeds
    II × total dependence distance? Equivalently, with edge weight
    [latency - II·distance], does a positive-weight cycle exist? *)

val has_positive_cycle : weight:('e Digraph.edge -> int) -> 'e Digraph.t -> bool
(** Bellman-Ford style detection of a positive-weight cycle under the
    given edge weighting. *)

val longest_distances :
  weight:('e Digraph.edge -> int) -> source:int -> 'e Digraph.t -> (int, int) Hashtbl.t option
(** Longest distance from [source] to every reachable node under the
    weighting, or [None] if a positive cycle is reachable from [source]. *)
