type t = {
  adj : (int, (int, float) Hashtbl.t) Hashtbl.t;
  node_w : (int, float) Hashtbl.t;
}

let create ?(size_hint = 64) () =
  { adj = Hashtbl.create size_hint; node_w = Hashtbl.create size_hint }

let add_node t n =
  if not (Hashtbl.mem t.adj n) then begin
    Hashtbl.replace t.adj n (Hashtbl.create 4);
    Hashtbl.replace t.node_w n 0.0
  end

let add_node_weight t n w =
  add_node t n;
  Hashtbl.replace t.node_w n (Hashtbl.find t.node_w n +. w)

let add_edge_weight t a b w =
  if a = b then invalid_arg "Ungraph.add_edge_weight: self edge";
  add_node t a;
  add_node t b;
  let bump x y =
    let tbl = Hashtbl.find t.adj x in
    let cur = Option.value ~default:0.0 (Hashtbl.find_opt tbl y) in
    Hashtbl.replace tbl y (cur +. w)
  in
  bump a b;
  bump b a

let mem_node t n = Hashtbl.mem t.adj n

let nodes t = List.sort Int.compare (Hashtbl.fold (fun n _ acc -> n :: acc) t.adj [])

let node_count t = Hashtbl.length t.adj

let node_weight t n = Option.value ~default:0.0 (Hashtbl.find_opt t.node_w n)

let edge_weight t a b =
  match Hashtbl.find_opt t.adj a with
  | None -> 0.0
  | Some tbl -> Option.value ~default:0.0 (Hashtbl.find_opt tbl b)

let mem_edge t a b =
  match Hashtbl.find_opt t.adj a with None -> false | Some tbl -> Hashtbl.mem tbl b

let neighbors t n =
  match Hashtbl.find_opt t.adj n with
  | None -> []
  | Some tbl ->
      List.sort
        (fun (a, _) (b, _) -> Int.compare a b)
        (Hashtbl.fold (fun m w acc -> (m, w) :: acc) tbl [])

let degree t n = match Hashtbl.find_opt t.adj n with None -> 0 | Some tbl -> Hashtbl.length tbl

let edge_count t =
  Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.adj 0 / 2

let edges t =
  List.concat_map
    (fun a -> List.filter_map (fun (b, w) -> if a < b then Some (a, b, w) else None) (neighbors t a))
    (nodes t)

let components t =
  let visited = Hashtbl.create 64 in
  let comp_of n =
    let acc = ref [] in
    let rec dfs v =
      if not (Hashtbl.mem visited v) then begin
        Hashtbl.add visited v ();
        acc := v :: !acc;
        List.iter (fun (m, _) -> dfs m) (neighbors t v)
      end
    in
    dfs n;
    List.sort Int.compare !acc
  in
  List.filter_map
    (fun n -> if Hashtbl.mem visited n then None else Some (comp_of n))
    (nodes t)

let copy t =
  { adj = Hashtbl.fold (fun n tbl acc -> Hashtbl.replace acc n (Hashtbl.copy tbl); acc)
            t.adj (Hashtbl.create (Hashtbl.length t.adj));
    node_w = Hashtbl.copy t.node_w }
