lib/graphlib/ungraph.ml: Hashtbl Int List Option
