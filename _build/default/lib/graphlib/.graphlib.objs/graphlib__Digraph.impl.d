lib/graphlib/digraph.ml: Hashtbl Int List
