lib/graphlib/scc.ml: Array Digraph Hashtbl Int List
