lib/graphlib/ungraph.mli:
