lib/graphlib/cycles.mli: Digraph Hashtbl
