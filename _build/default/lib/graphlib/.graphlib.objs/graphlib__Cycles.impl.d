lib/graphlib/cycles.ml: Digraph Hashtbl List
