lib/graphlib/topo.ml: Digraph Hashtbl List Option
