lib/graphlib/topo.mli: Digraph Hashtbl
