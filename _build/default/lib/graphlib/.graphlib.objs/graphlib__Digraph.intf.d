lib/graphlib/digraph.mli:
