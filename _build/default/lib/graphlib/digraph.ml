type 'e edge = { src : int; dst : int; label : 'e }

type 'e t = {
  out_edges : (int, 'e edge list) Hashtbl.t; (* reversed insertion order *)
  in_edges : (int, 'e edge list) Hashtbl.t;
  mutable n_edges : int;
}

let create ?(size_hint = 64) () =
  { out_edges = Hashtbl.create size_hint; in_edges = Hashtbl.create size_hint; n_edges = 0 }

let add_node t n =
  if not (Hashtbl.mem t.out_edges n) then begin
    Hashtbl.replace t.out_edges n [];
    Hashtbl.replace t.in_edges n []
  end

let add_edge t ~src ~dst label =
  add_node t src;
  add_node t dst;
  let e = { src; dst; label } in
  Hashtbl.replace t.out_edges src (e :: Hashtbl.find t.out_edges src);
  Hashtbl.replace t.in_edges dst (e :: Hashtbl.find t.in_edges dst);
  t.n_edges <- t.n_edges + 1

let mem_node t n = Hashtbl.mem t.out_edges n

let nodes t =
  let l = Hashtbl.fold (fun n _ acc -> n :: acc) t.out_edges [] in
  List.sort Int.compare l

let node_count t = Hashtbl.length t.out_edges
let edge_count t = t.n_edges

let succs t n = match Hashtbl.find_opt t.out_edges n with Some l -> List.rev l | None -> []
let preds t n = match Hashtbl.find_opt t.in_edges n with Some l -> List.rev l | None -> []
let out_degree t n = List.length (succs t n)
let in_degree t n = List.length (preds t n)

let edges t = List.concat_map (fun n -> succs t n) (nodes t)

let fold_edges f t acc = List.fold_left (fun acc e -> f e acc) acc (edges t)
let iter_edges f t = List.iter f (edges t)

let map_labels f t =
  let g = create ~size_hint:(node_count t) () in
  List.iter (add_node g) (nodes t);
  iter_edges (fun e -> add_edge g ~src:e.src ~dst:e.dst (f e.label)) t;
  g

let copy t = map_labels (fun l -> l) t

let transpose t =
  let g = create ~size_hint:(node_count t) () in
  List.iter (add_node g) (nodes t);
  iter_edges (fun e -> add_edge g ~src:e.dst ~dst:e.src e.label) t;
  g
