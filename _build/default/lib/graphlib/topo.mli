(** Topological ordering and DAG longest paths. *)

val sort : 'e Digraph.t -> int list option
(** Topological order of an acyclic graph; [None] when a cycle exists. *)

val sort_exn : 'e Digraph.t -> int list
(** Like {!sort} but raises [Invalid_argument] on a cycle. *)

val is_dag : 'e Digraph.t -> bool

val longest_paths : weight:('e Digraph.edge -> int) -> 'e Digraph.t -> (int, int) Hashtbl.t
(** For an acyclic graph, the longest weighted distance from any source
    (in-degree 0) node to each node; sources are at distance 0. Raises
    [Invalid_argument] on a cycle. *)

val critical_path : weight:('e Digraph.edge -> int) -> 'e Digraph.t -> int
(** Largest entry of {!longest_paths}; 0 for the empty graph. *)
