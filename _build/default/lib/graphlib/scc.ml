(* Iterative Tarjan: explicit stack to survive the deep DDGs produced by
   long straight-line loop bodies. *)

let tarjan g =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun (e : _ Digraph.edge) ->
        let w = e.dst in
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.find_opt on_stack w = Some true then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Digraph.succs g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            if w = v then w :: acc else pop (w :: acc)
      in
      let comp = pop [] in
      components := List.sort Int.compare comp :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (Digraph.nodes g);
  List.rev !components

let has_self_edge g v = List.exists (fun (e : _ Digraph.edge) -> e.dst = v) (Digraph.succs g v)

let nontrivial g =
  List.filter
    (function
      | [] -> false
      | [ v ] -> has_self_edge g v
      | _ :: _ :: _ -> true)
    (tarjan g)

let condensation g =
  let comps = tarjan g in
  let max_id = List.fold_left (fun acc n -> max acc n) (-1) (Digraph.nodes g) in
  let comp_of = Array.make (max_id + 1) (-1) in
  List.iteri (fun ci comp -> List.iter (fun v -> comp_of.(v) <- ci) comp) comps;
  let dag = Digraph.create () in
  List.iteri (fun ci _ -> Digraph.add_node dag ci) comps;
  let seen = Hashtbl.create 64 in
  Digraph.iter_edges
    (fun e ->
      let a = comp_of.(e.src) and b = comp_of.(e.dst) in
      if a <> b && not (Hashtbl.mem seen (a, b)) then begin
        Hashtbl.add seen (a, b) ();
        Digraph.add_edge dag ~src:a ~dst:b ()
      end)
    g;
  (comp_of, dag)
