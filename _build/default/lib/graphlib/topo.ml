let sort g =
  let indeg = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace indeg n (Digraph.in_degree g n)) (Digraph.nodes g);
  (* Min-id-first queue keeps the order deterministic. *)
  let ready =
    ref (List.filter (fun n -> Hashtbl.find indeg n = 0) (Digraph.nodes g))
  in
  let out = ref [] in
  let count = ref 0 in
  while !ready <> [] do
    match !ready with
    | [] -> ()
    | n :: rest ->
        ready := rest;
        out := n :: !out;
        incr count;
        List.iter
          (fun (e : _ Digraph.edge) ->
            let d = Hashtbl.find indeg e.dst - 1 in
            Hashtbl.replace indeg e.dst d;
            if d = 0 then ready := e.dst :: !ready)
          (Digraph.succs g n)
  done;
  if !count = Digraph.node_count g then Some (List.rev !out) else None

let sort_exn g =
  match sort g with
  | Some order -> order
  | None -> invalid_arg "Topo.sort_exn: graph has a cycle"

let is_dag g = Option.is_some (sort g)

let longest_paths ~weight g =
  let order = sort_exn g in
  let dist = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace dist n 0) order;
  List.iter
    (fun n ->
      let dn = Hashtbl.find dist n in
      List.iter
        (fun (e : _ Digraph.edge) ->
          let cand = dn + weight e in
          if cand > Hashtbl.find dist e.dst then Hashtbl.replace dist e.dst cand)
        (Digraph.succs g n))
    order;
  dist

let critical_path ~weight g =
  let dist = longest_paths ~weight g in
  Hashtbl.fold (fun _ d acc -> max acc d) dist 0
