(** Strongly connected components (Tarjan) and derived queries.

    RecMII computation needs the recurrence circuits of the DDG; every
    circuit lives inside one SCC, so MinII analysis runs per non-trivial
    component. *)

val tarjan : 'e Digraph.t -> int list list
(** SCCs in reverse topological order (a component appears before any
    component it has edges into... specifically, Tarjan emission order:
    every edge leaving a component goes to an earlier-emitted component).
    Each component's nodes are sorted ascending. *)

val nontrivial : 'e Digraph.t -> int list list
(** Components that contain a cycle: more than one node, or a single node
    with a self-edge. *)

val condensation : 'e Digraph.t -> int array * unit Digraph.t
(** [comp_of, dag]: [comp_of] maps a node position in [nodes g]... rather,
    returns an array indexed by component id plus the component DAG. The
    first array maps node id -> component id (dense ids from 0); nodes
    absent from the graph map to -1. The DAG has one node per component
    and a (deduplicated) edge per cross-component edge. *)
