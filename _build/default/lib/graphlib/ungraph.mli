(** Undirected graphs with accumulating float weights on nodes and edges —
    the shape of the register component graph.

    Repeated {!add_edge_weight} calls on the same (unordered) pair sum into
    a single weight, exactly as the paper's "either add a new edge in the
    RCG with value w, or add w to the current value of the edge". Weights
    may be negative (repulsion) or infinite (hard machine constraints). *)

type t

val create : ?size_hint:int -> unit -> t
val add_node : t -> int -> unit

val add_node_weight : t -> int -> float -> unit
(** Accumulates onto the node's weight (adds the node if new). *)

val add_edge_weight : t -> int -> int -> float -> unit
(** Accumulates onto the unordered edge's weight (adds endpoints if new).
    Self-edges are rejected with [Invalid_argument]. *)

val mem_node : t -> int -> bool
val nodes : t -> int list
(** Ascending order. *)

val node_count : t -> int
val edge_count : t -> int
val node_weight : t -> int -> float
(** 0 for unknown nodes. *)

val edge_weight : t -> int -> int -> float
(** 0 when no edge exists. *)

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> (int * float) list
(** Adjacent nodes with edge weights, ascending by node id. *)

val degree : t -> int -> int

val edges : t -> (int * int * float) list
(** Each undirected edge once, with [fst < snd], sorted. *)

val components : t -> int list list
(** Connected components, each sorted ascending, ordered by smallest
    member. *)

val copy : t -> t
