(** Directed multigraphs over integer node ids with labelled edges.

    The workhorse behind DDGs and schedulers: nodes are operation ids,
    edge labels carry dependence information. Imperative (hashtable-based)
    because dependence graphs are built once and queried heavily. *)

type 'e t

type 'e edge = { src : int; dst : int; label : 'e }

val create : ?size_hint:int -> unit -> 'e t

val add_node : 'e t -> int -> unit
(** Idempotent. *)

val add_edge : 'e t -> src:int -> dst:int -> 'e -> unit
(** Adds both endpoints as nodes. Parallel edges are kept (a DDG can hold
    both a flow and an anti dependence between the same pair). *)

val mem_node : 'e t -> int -> bool
val nodes : 'e t -> int list
(** Ascending id order (deterministic). *)

val node_count : 'e t -> int
val edge_count : 'e t -> int
val edges : 'e t -> 'e edge list
(** Deterministic order: by source node id, then insertion order. *)

val succs : 'e t -> int -> 'e edge list
val preds : 'e t -> int -> 'e edge list
val out_degree : 'e t -> int -> int
val in_degree : 'e t -> int -> int

val fold_edges : ('e edge -> 'a -> 'a) -> 'e t -> 'a -> 'a
val iter_edges : ('e edge -> unit) -> 'e t -> unit

val map_labels : ('e -> 'f) -> 'e t -> 'f t

val copy : 'e t -> 'e t

val transpose : 'e t -> 'e t
(** Reverse every edge. *)
