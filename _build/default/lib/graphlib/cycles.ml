(* Longest-path Bellman-Ford: relax upward; if an edge still relaxes after
   |V| rounds a positive cycle exists. All nodes start at 0 (virtual super
   source), which detects a positive cycle anywhere in the graph. *)

let has_positive_cycle ~weight g =
  let dist = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace dist n 0) (Digraph.nodes g);
  let n = Digraph.node_count g in
  let relax_once () =
    let changed = ref false in
    Digraph.iter_edges
      (fun e ->
        let d = Hashtbl.find dist e.src + weight e in
        if d > Hashtbl.find dist e.dst then begin
          Hashtbl.replace dist e.dst d;
          changed := true
        end)
      g;
    !changed
  in
  let rec run i = if i > n then true else if relax_once () then run (i + 1) else false in
  run 1

let longest_distances ~weight ~source g =
  if not (Digraph.mem_node g source) then invalid_arg "Cycles.longest_distances: unknown source";
  let dist = Hashtbl.create 64 in
  Hashtbl.replace dist source 0;
  let n = Digraph.node_count g in
  let relax_once () =
    let changed = ref false in
    Digraph.iter_edges
      (fun e ->
        match Hashtbl.find_opt dist e.src with
        | None -> ()
        | Some ds ->
            let d = ds + weight e in
            let better =
              match Hashtbl.find_opt dist e.dst with None -> true | Some dd -> d > dd
            in
            if better then begin
              Hashtbl.replace dist e.dst d;
              changed := true
            end)
      g;
    !changed
  in
  let rec run i = if i > n then None else if relax_once () then run (i + 1) else Some dist in
  run 1
