lib/rcg/build.ml: Ddg Graph Ir List Mach Option Sched Weights
