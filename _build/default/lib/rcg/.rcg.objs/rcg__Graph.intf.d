lib/rcg/graph.mli: Format Ir
