lib/rcg/weights.ml:
