lib/rcg/build.mli: Ddg Graph Ir Mach Sched Weights
