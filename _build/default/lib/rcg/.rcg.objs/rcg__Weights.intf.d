lib/rcg/weights.mli:
