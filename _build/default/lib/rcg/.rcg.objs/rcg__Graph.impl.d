lib/rcg/graph.ml: Array Buffer Float Format Graphlib Hashtbl Int Ir List Printf
