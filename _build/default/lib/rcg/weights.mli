(** Tunables of the RCG weighting heuristic (Section 5).

    The paper's printed formulas are OCR-garbled; the prose fixes their
    structure: each operation contributes weight proportional to
    [depth_base ^ nesting-depth] times the DDD density of its block,
    boosted when the operation is on a critical path (Flexibility = 1)
    and otherwise divided by its Flexibility. Def/use pairs within one
    operation attract (positive edge weight: same bank keeps the operation
    local); def/def pairs within one instruction of the ideal schedule
    repel (negative edge weight: different banks let them issue in
    parallel). The paper calls both its characteristics and weights
    "ad hoc" and suggests off-line tuning; the ablation bench sweeps
    these knobs. *)

type t = {
  depth_base : float;
      (** multiplier per nesting level; deeper code dominates (default 10) *)
  critical_boost : float;
      (** factor applied when Flexibility(O) = 1 (default 2) *)
  attract_scale : float;  (** scale of def/use same-operation edges (default 1) *)
  repel_scale : float;    (** scale of def/def same-instruction edges (default 0.5) *)
  balance : float;
      (** bank-balance penalty used by the greedy partitioner's
          "ThisBenefit -= assigned(RB)·…" term, as a fraction of the mean
          positive edge weight (default 0.5) *)
}

val default : t

val contribution : t -> flexibility:int -> depth:int -> density:float -> float
(** The per-operation factor
    [depth_base^depth · density · (critical_boost when flexibility = 1,
    else 1/flexibility)]. [flexibility] must be >= 1. *)

val no_repulsion : t
(** [default] with [repel_scale = 0] — ablation: attraction only. *)

val flat : t
(** All structural signals off: depth_base 1, no critical boost —
    ablation: pure connectivity. *)
