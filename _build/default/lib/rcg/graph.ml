type t = {
  ug : Graphlib.Ungraph.t;
  regs : (int, Ir.Vreg.t) Hashtbl.t;
  pins : (int, int) Hashtbl.t;
}

let infinitely_negative = -1e18

let create () = { ug = Graphlib.Ungraph.create (); regs = Hashtbl.create 64; pins = Hashtbl.create 8 }

let add_register t r =
  Hashtbl.replace t.regs (Ir.Vreg.id r) r;
  Graphlib.Ungraph.add_node t.ug (Ir.Vreg.id r)

let add_node_weight t r w =
  add_register t r;
  Graphlib.Ungraph.add_node_weight t.ug (Ir.Vreg.id r) w

let add_edge_weight t a b w =
  if not (Ir.Vreg.equal a b) then begin
    add_register t a;
    add_register t b;
    Graphlib.Ungraph.add_edge_weight t.ug (Ir.Vreg.id a) (Ir.Vreg.id b) w
  end

let pin t r bank =
  add_register t r;
  match Hashtbl.find_opt t.pins (Ir.Vreg.id r) with
  | Some b when b <> bank ->
      invalid_arg
        (Printf.sprintf "Rcg.pin: %s already pinned to bank %d" (Ir.Vreg.to_string r) b)
  | Some _ | None -> Hashtbl.replace t.pins (Ir.Vreg.id r) bank

let pinned t r = Hashtbl.find_opt t.pins (Ir.Vreg.id r)

let keep_apart t a b =
  if Ir.Vreg.equal a b then invalid_arg "Rcg.keep_apart: same register";
  add_edge_weight t a b infinitely_negative

let reg t id = Hashtbl.find t.regs id

let registers t = List.map (reg t) (Graphlib.Ungraph.nodes t.ug)
let node_count t = Graphlib.Ungraph.node_count t.ug
let edge_count t = Graphlib.Ungraph.edge_count t.ug
let node_weight t r = Graphlib.Ungraph.node_weight t.ug (Ir.Vreg.id r)
let edge_weight t a b = Graphlib.Ungraph.edge_weight t.ug (Ir.Vreg.id a) (Ir.Vreg.id b)

let neighbors t r =
  List.map (fun (id, w) -> (reg t id, w)) (Graphlib.Ungraph.neighbors t.ug (Ir.Vreg.id r))

let components t =
  List.map (List.map (reg t)) (Graphlib.Ungraph.components t.ug)

let mean_positive_edge_weight t =
  let pos = List.filter_map (fun (_, _, w) -> if w > 0.0 then Some w else None)
      (Graphlib.Ungraph.edges t.ug)
  in
  match pos with [] -> 1.0 | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let by_weight_desc t =
  List.sort
    (fun a b ->
      let c = Float.compare (node_weight t b) (node_weight t a) in
      if c <> 0 then c else Int.compare (Ir.Vreg.id a) (Ir.Vreg.id b))
    (registers t)

let pp ppf t =
  Format.fprintf ppf "@[<v>rcg (%d registers, %d edges):@," (node_count t) (edge_count t);
  List.iter
    (fun r ->
      Format.fprintf ppf "  %s (w=%.2f):" (Ir.Vreg.to_string r) (node_weight t r);
      List.iter
        (fun (m, w) -> Format.fprintf ppf " %s:%.2f" (Ir.Vreg.to_string m) w)
        (neighbors t r);
      Format.fprintf ppf "@,")
    (registers t);
  Format.fprintf ppf "@]"

let bank_colors = [| "lightblue"; "lightgreen"; "lightsalmon"; "khaki"; "plum"; "lightcyan";
                     "wheat"; "mistyrose" |]

let to_dot ?(assignment = fun _ -> None) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph rcg {\n  node [shape=ellipse, style=filled];\n";
  List.iter
    (fun r ->
      let color =
        match assignment r with
        | Some b -> bank_colors.(b mod Array.length bank_colors)
        | None -> "white"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\\nw=%.1f\", fillcolor=%s];\n" (Ir.Vreg.id r)
           (Ir.Vreg.to_string r) (node_weight t r) color))
    (registers t);
  List.iter
    (fun r ->
      List.iter
        (fun (m, w) ->
          if Ir.Vreg.compare r m < 0 then
            Buffer.add_string buf
              (Printf.sprintf "  %d -- %d [label=\"%.1f\"%s];\n" (Ir.Vreg.id r) (Ir.Vreg.id m)
                 w
                 (if w < 0.0 then ", style=dashed" else "")))
        (neighbors t r))
    (registers t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
