(** The register component graph (RCG).

    Nodes are symbolic registers; accumulated edge weights encode how
    strongly two registers want to share a bank (positive) or be split
    apart (negative). Node weights order the greedy partitioner's
    placement. [pins] carry hard pre-colouring constraints (Section 4.1's
    idiosyncratic-architecture support): a pinned register must land in
    its bank, and infinitely negative edges keep registers apart. *)

type t

val create : unit -> t

val add_register : t -> Ir.Vreg.t -> unit
(** Idempotent. *)

val add_node_weight : t -> Ir.Vreg.t -> float -> unit
val add_edge_weight : t -> Ir.Vreg.t -> Ir.Vreg.t -> float -> unit
(** Accumulate (same-pair contributions sum). Self edges are ignored (a
    register trivially shares a bank with itself). *)

val pin : t -> Ir.Vreg.t -> int -> unit
(** Force the register into the given bank. Raises [Invalid_argument] on
    conflicting pins. *)

val pinned : t -> Ir.Vreg.t -> int option

val keep_apart : t -> Ir.Vreg.t -> Ir.Vreg.t -> unit
(** Infinitely negative edge: the partitioner never benefits from placing
    these together (e.g. [A = B op C] with per-bank operand rules). *)

val registers : t -> Ir.Vreg.t list
(** Ascending by register id. *)

val node_count : t -> int
val edge_count : t -> int
val node_weight : t -> Ir.Vreg.t -> float
val edge_weight : t -> Ir.Vreg.t -> Ir.Vreg.t -> float
val neighbors : t -> Ir.Vreg.t -> (Ir.Vreg.t * float) list

val components : t -> Ir.Vreg.t list list
(** Connected components — the paper's natural units of bank assignment
    ("values that are not connected in the graph are good candidates to
    be assigned to separate register banks"). *)

val mean_positive_edge_weight : t -> float
(** Average over positive-weight edges; 1.0 when there are none. The
    partitioner scales its balance penalty by this. *)

val by_weight_desc : t -> Ir.Vreg.t list
(** Registers in decreasing node-weight order (ties: ascending id) — the
    greedy placement order of Figure 4. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?assignment:(Ir.Vreg.t -> int option) -> t -> string
(** Graphviz rendering: solid edges attract (weight as label), dashed
    edges repel; nodes are coloured by bank when [assignment] is given. *)
