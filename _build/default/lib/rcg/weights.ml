type t = {
  depth_base : float;
  critical_boost : float;
  attract_scale : float;
  repel_scale : float;
  balance : float;
}

let default =
  { depth_base = 10.0; critical_boost = 2.0; attract_scale = 1.0; repel_scale = 0.5;
    balance = 0.5 }

let contribution t ~flexibility ~depth ~density =
  if flexibility < 1 then invalid_arg "Weights.contribution: flexibility must be >= 1";
  let base = (t.depth_base ** float_of_int depth) *. density in
  if flexibility = 1 then base *. t.critical_boost else base /. float_of_int flexibility

let no_repulsion = { default with repel_scale = 0.0 }

let flat = { default with depth_base = 1.0; critical_boost = 1.0 }
