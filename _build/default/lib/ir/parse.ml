let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let opcode_of_string s =
  List.find_opt (fun op -> String.equal (Mach.Opcode.to_string op) s) Mach.Opcode.all

let strip s = String.trim s

let split_comma s = List.map strip (String.split_on_char ',' s)

(* base | base[3] | base[4*i] | base[4*i+2] | base[1*i-1] *)
let parse_addr s =
  match String.index_opt s '[' with
  | None ->
      if s = "" then Error "empty address" else Ok (Addr.scalar s)
  | Some lb ->
      if String.length s = 0 || s.[String.length s - 1] <> ']' then
        Error (Printf.sprintf "malformed address %S" s)
      else begin
        let base = String.sub s 0 lb in
        let inner = String.sub s (lb + 1) (String.length s - lb - 2) in
        if base = "" then Error (Printf.sprintf "malformed address %S" s)
        else
          match String.index_opt inner 'i' with
          | None -> (
              match int_of_string_opt inner with
              | Some off -> Ok (Addr.make ~offset:off base)
              | None -> Error (Printf.sprintf "bad offset in %S" s))
          | Some ipos -> (
              (* <stride>*i<+/-offset> *)
              let stride_part = String.sub inner 0 ipos in
              let stride_part =
                match String.index_opt stride_part '*' with
                | Some star -> String.sub stride_part 0 star
                | None -> stride_part
              in
              let rest = String.sub inner (ipos + 1) (String.length inner - ipos - 1) in
              let* stride =
                match int_of_string_opt (strip stride_part) with
                | Some v -> Ok v
                | None -> Error (Printf.sprintf "bad stride in %S" s)
              in
              match strip rest with
              | "" -> Ok (Addr.make ~stride base)
              | r -> (
                  match int_of_string_opt r with
                  | Some off -> Ok (Addr.make ~offset:off ~stride base)
                  | None -> Error (Printf.sprintf "bad offset in %S" s)))
      end

let looks_like_addr s = String.contains s '['

let parse_reg ~next_vreg ~regs ~default_cls token =
  let name, cls =
    match String.rindex_opt token ':' with
    | Some c when c = String.length token - 2 -> (
        let suffix = token.[String.length token - 1] in
        let base = String.sub token 0 c in
        match suffix with
        | 'i' -> (base, Mach.Rclass.Int)
        | 'f' -> (base, Mach.Rclass.Float)
        | _ -> (token, default_cls))
    | Some _ | None -> (token, default_cls)
  in
  if name = "" then Error "empty register name"
  else
    match Hashtbl.find_opt regs name with
    | Some r -> Ok (r, !next_vreg)
    | None ->
        let r = Vreg.make ~name ~id:!next_vreg ~cls () in
        incr next_vreg;
        Hashtbl.replace regs name r;
        Ok (r, !next_vreg)

let op_of_string ~next_vreg ~regs ~id line =
  let next = ref next_vreg in
  let line = strip line in
  match String.index_opt line ' ' with
  | None -> Error (Printf.sprintf "missing operands in %S" line)
  | Some sp ->
      let mnemonic = String.sub line 0 sp in
      let rest = String.sub line sp (String.length line - sp) in
      let opname, cls =
        match String.index_opt mnemonic '.' with
        | Some d when String.sub mnemonic (d + 1) (String.length mnemonic - d - 1) = "f" ->
            (String.sub mnemonic 0 d, Mach.Rclass.Float)
        | Some _ | None -> (mnemonic, Mach.Rclass.Int)
      in
      let* opcode =
        match opcode_of_string opname with
        | Some o -> Ok o
        | None -> Error (Printf.sprintf "unknown opcode %S" opname)
      in
      let operands = split_comma rest in
      let reg tok =
        let* r, _ = parse_reg ~next_vreg:next ~regs ~default_cls:cls tok in
        Ok r
      in
      let regs_of toks =
        List.fold_left
          (fun acc tok ->
            let* l = acc in
            let* r = reg tok in
            Ok (r :: l))
          (Ok []) toks
        |> Result.map List.rev
      in
      let* op =
        match (opcode, operands) with
        | Mach.Opcode.Load, _ -> (
            match List.rev operands with
            | addr_tok :: rev_front when looks_like_addr addr_tok || List.length rev_front >= 1
              -> (
                let* addr = parse_addr addr_tok in
                match List.rev rev_front with
                | dst_tok :: idx_toks -> (
                    let* dst = reg dst_tok in
                    let* idx =
                      regs_of
                        (List.map
                           (fun tok -> if String.contains tok ':' then tok else tok ^ ":i")
                           idx_toks)
                    in
                    try Ok (Op.make ~dst ~srcs:idx ~addr ~id ~opcode ~cls ())
                    with Invalid_argument m -> Error m)
                | [] -> Error "load needs a destination")
            | _ -> Error "load needs an address")
        | Mach.Opcode.Store, addr_tok :: src_toks -> (
            let* addr = parse_addr addr_tok in
            let* srcs = regs_of src_toks in
            try Ok (Op.make ~srcs ~addr ~id ~opcode ~cls ())
            with Invalid_argument m -> Error m)
        | Mach.Opcode.Store, [] -> Error "store needs operands"
        | Mach.Opcode.Nop, _ -> (
            try Ok (Op.make ~id ~opcode ~cls ()) with Invalid_argument m -> Error m)
        | Mach.Opcode.Const, [ dst_tok; imm_tok ] -> (
            let* dst = reg dst_tok in
            let imm_tok =
              if String.length imm_tok > 0 && imm_tok.[0] = '#' then
                String.sub imm_tok 1 (String.length imm_tok - 1)
              else imm_tok
            in
            match int_of_string_opt imm_tok with
            | Some v -> (
                try Ok (Op.make ~dst ~imm:v ~id ~opcode ~cls ())
                with Invalid_argument m -> Error m)
            | None -> Error (Printf.sprintf "bad immediate %S" imm_tok))
        | Mach.Opcode.Const, _ -> Error "const needs a destination and an immediate"
        | _, dst_tok :: src_toks -> (
            let* dst = reg dst_tok in
            (* a conversion reads the opposite class *)
            let src_toks =
              match opcode with
              | Mach.Opcode.Convert ->
                  let suffix =
                    match cls with Mach.Rclass.Float -> ":i" | Mach.Rclass.Int -> ":f"
                  in
                  List.map
                    (fun tok -> if String.contains tok ':' then tok else tok ^ suffix)
                    src_toks
              | _ -> src_toks
            in
            let* srcs = regs_of src_toks in
            try Ok (Op.make ~dst ~srcs ~id ~opcode ~cls ())
            with Invalid_argument m -> Error m)
        | _, [] -> Error "missing operands"
      in
      Ok (op, !next)

let loop_of_string text =
  let lines = String.split_on_char '\n' text in
  let regs : (string, Vreg.t) Hashtbl.t = Hashtbl.create 32 in
  let next_vreg = ref 1 in
  let name = ref "anonymous" in
  let depth = ref 1 in
  let trip = ref 100 in
  let live_out = ref [] in
  let ops = ref [] in
  let next_op = ref 0 in
  let error = ref None in
  List.iteri
    (fun lineno raw ->
      if !error = None then begin
        (* '#' starts a comment unless it introduces an immediate (#5, #-3) *)
        let comment_start =
          let n = String.length raw in
          let rec find i =
            if i >= n then None
            else if
              raw.[i] = '#'
              && not (i + 1 < n && (raw.[i + 1] = '-' || (raw.[i + 1] >= '0' && raw.[i + 1] <= '9')))
            then Some i
            else find (i + 1)
          in
          find 0
        in
        let line =
          match comment_start with
          | Some h -> strip (String.sub raw 0 h)
          | None -> strip raw
        in
        if line <> "" then
          if String.length line >= 5 && String.sub line 0 5 = "loop " then begin
            let words =
              List.filter (fun w -> w <> "") (String.split_on_char ' ' line)
            in
            let rec scan = function
              | "loop" :: n :: rest ->
                  name := n;
                  scan rest
              | "depth" :: d :: rest ->
                  (match int_of_string_opt d with
                  | Some v -> depth := v
                  | None -> error := Some (lineno + 1, "bad depth"));
                  scan rest
              | "trip" :: t :: rest ->
                  (match int_of_string_opt t with
                  | Some v -> trip := v
                  | None -> error := Some (lineno + 1, "bad trip"));
                  scan rest
              | [] -> ()
              | w :: _ -> error := Some (lineno + 1, Printf.sprintf "unexpected %S" w)
            in
            scan words
          end
          else if String.length line >= 9 && String.sub line 0 9 = "live_out:" then begin
            let names =
              List.filter (fun w -> w <> "")
                (String.split_on_char ' ' (String.sub line 9 (String.length line - 9)))
            in
            List.iter
              (fun n ->
                match Hashtbl.find_opt regs n with
                | Some r -> live_out := r :: !live_out
                | None -> error := Some (lineno + 1, Printf.sprintf "unknown live-out %S" n))
              names
          end
          else
            match op_of_string ~next_vreg:!next_vreg ~regs ~id:!next_op line with
            | Ok (op, nv) ->
                next_vreg := nv;
                incr next_op;
                ops := op :: !ops
            | Error m -> error := Some (lineno + 1, m)
      end)
    lines;
  match !error with
  | Some (lineno, m) -> Error (Printf.sprintf "line %d: %s" lineno m)
  | None -> (
      match List.rev !ops with
      | [] -> Error "no operations"
      | body -> (
          try
            let live_out =
              List.fold_left (fun s r -> Vreg.Set.add r s) Vreg.Set.empty !live_out
            in
            Ok (Loop.make ~depth:!depth ~live_out ~trip_count:!trip ~name:!name body)
          with Invalid_argument m -> Error m))

let loop_to_string loop =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "loop %s depth %d trip %d\n" (Loop.name loop) (Loop.depth loop)
       (Loop.trip_count loop));
  List.iter
    (fun op -> Buffer.add_string buf (Printf.sprintf "  %s\n" (Op.to_string op)))
    (Loop.ops loop);
  if not (Vreg.Set.is_empty (Loop.live_out loop)) then begin
    Buffer.add_string buf "live_out:";
    Vreg.Set.iter
      (fun r -> Buffer.add_string buf (Printf.sprintf " %s" (Vreg.to_string r)))
      (Loop.live_out loop);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
