(** Single-block innermost loops — the experimental unit of the paper.

    A loop is an ordered list of operations forming the body of an
    innermost loop with no control flow inside; iteration is implicit.
    Register dependences may be loop-carried: a use of a register that is
    (re)defined later in the body reads the value produced by the previous
    iteration (distance 1), exactly as in the paper's recurrence loops.

    [live_out] lists registers whose final values are consumed after the
    loop (e.g. a reduction sum); they constrain register allocation and
    anti-dependences. [depth] is the loop-nesting depth used by the RCG
    weight heuristic (innermost loops extracted from real programs sit at
    depth >= 1). *)

type t = private {
  name : string;
  ops : Op.t list;
  depth : int;
  live_out : Vreg.Set.t;
  trip_count : int;  (** assumed iteration count for pipeline expansion *)
}

val make : ?depth:int -> ?live_out:Vreg.Set.t -> ?trip_count:int -> name:string -> Op.t list -> t
(** [depth] defaults to 1, [live_out] to empty, [trip_count] to 100.
    Raises [Invalid_argument] when op ids are not distinct, a source
    register is never defined in the body and not flagged as loop
    invariant (any register with no defining op is treated as loop
    invariant — this is permitted), or the list is empty. *)

val name : t -> string
val ops : t -> Op.t list
val depth : t -> int
val live_out : t -> Vreg.Set.t
val trip_count : t -> int
val size : t -> int
(** Number of operations. *)

val op_by_id : t -> int -> Op.t
(** Raises [Not_found] for an unknown id. *)

val vregs : t -> Vreg.Set.t
(** Every register appearing as a def or use. *)

val defs_of : t -> Op.t list Vreg.Map.t
(** Map from register to the operations defining it, in body order. *)

val invariants : t -> Vreg.Set.t
(** Registers used but never defined in the body (loop invariants /
    incoming values). *)

val max_op_id : t -> int
val max_vreg_id : t -> int
(** Largest ids in use; fresh ids during copy insertion start above these. *)

val with_ops : t -> Op.t list -> t
(** Replace the body (re-validates). *)

val pp : Format.formatter -> t -> unit
