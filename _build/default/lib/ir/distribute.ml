(* Union-find over op positions, joined by shared registers or
   same-base memory references involving a store — a sound
   over-approximation of the DDG's weak connectivity that avoids a
   dependence-library dependency cycle (Ddg depends on Ir). *)

let split src =
  let ops = Array.of_list (Loop.ops src) in
  let n = Array.length ops in
  let parent = Array.init n (fun idx -> idx) in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); find parent.(x)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(ra) <- rb
  in
  (* registers join their defining and using ops *)
  let by_reg : (int, int) Hashtbl.t = Hashtbl.create 32 in
  Array.iteri
    (fun idx op ->
      List.iter
        (fun r ->
          match Hashtbl.find_opt by_reg (Vreg.id r) with
          | Some first -> union first idx
          | None -> Hashtbl.replace by_reg (Vreg.id r) idx)
        (Op.defs op @ Op.uses op))
    ops;
  (* a store joins everything touching its base *)
  let store_bases =
    Array.to_list ops
    |> List.filter_map (fun op ->
           if Mach.Opcode.equal (Op.opcode op) Mach.Opcode.Store then
             Option.map (fun (a : Addr.t) -> a.Addr.base) (Op.addr op)
           else None)
    |> List.sort_uniq compare
  in
  let by_base : (string, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun idx op ->
      match Op.addr op with
      | Some a when List.mem a.Addr.base store_bases -> (
          match Hashtbl.find_opt by_base a.Addr.base with
          | Some first -> union first idx
          | None -> Hashtbl.replace by_base a.Addr.base idx)
      | Some _ | None -> ())
    ops;
  (* collect pieces in order of first member *)
  let groups : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  for idx = n - 1 downto 0 do
    let r = find idx in
    Hashtbl.replace groups r (idx :: Option.value ~default:[] (Hashtbl.find_opt groups r))
  done;
  let roots =
    Hashtbl.fold (fun r members acc -> (List.hd members, r, members) :: acc) groups []
    |> List.sort compare
  in
  match roots with
  | [ _ ] | [] -> [ src ]
  | _ ->
      List.mapi
        (fun k (_, _, members) ->
          let body = List.map (fun idx -> ops.(idx)) members in
          let regs =
            List.fold_left
              (fun acc op ->
                List.fold_left (fun s r -> Vreg.Set.add r s) acc (Op.defs op @ Op.uses op))
              Vreg.Set.empty body
          in
          let live_out = Vreg.Set.inter (Loop.live_out src) regs in
          Loop.make ~depth:(Loop.depth src) ~live_out ~trip_count:(Loop.trip_count src)
            ~name:(Printf.sprintf "%s/%d" (Loop.name src) k)
            body)
        roots

let is_distributable src = List.length (split src) > 1
