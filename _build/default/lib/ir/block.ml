type t = { label : string; depth : int; ops : Op.t list }

let make ?(depth = 0) ~label ops =
  if label = "" then invalid_arg "Block.make: empty label";
  if depth < 0 then invalid_arg "Block.make: negative depth";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let id = Op.id op in
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Block %s: duplicate op id %d" label id);
      Hashtbl.add seen id ())
    ops;
  { label; depth; ops }

let label t = t.label
let depth t = t.depth
let ops t = t.ops
let size t = List.length t.ops

let vregs t =
  List.fold_left
    (fun acc op ->
      let acc = List.fold_left (fun s r -> Vreg.Set.add r s) acc (Op.defs op) in
      List.fold_left (fun s r -> Vreg.Set.add r s) acc (Op.uses op))
    Vreg.Set.empty t.ops

let pp ppf t =
  Format.fprintf ppf "@[<v>%s (depth %d):@," t.label t.depth;
  List.iter (fun op -> Format.fprintf ppf "  %a@," Op.pp op) t.ops;
  Format.fprintf ppf "@]"
