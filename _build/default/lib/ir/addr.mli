(** Symbolic memory addresses for affine array accesses.

    A memory operation in iteration [i] of a loop touches
    [base\[stride * i + offset\]]. This is the information a Fortran77
    front end would hand the dependence analyzer for the paper's
    single-block innermost loops, and it is enough to compute exact
    dependence distances between references to the same base (see
    [Ddg.Memdep]). Scalars are [stride = 0] accesses. *)

type t = private {
  base : string;  (** array or scalar symbol, the aliasing unit *)
  offset : int;
  stride : int;
}

val make : ?offset:int -> ?stride:int -> string -> t
(** [make base] defaults to a scalar access ([offset = 0], [stride = 0]). *)

val scalar : string -> t
(** Scalar symbol: [stride = 0], [offset = 0]. *)

val element : ?offset:int -> string -> t
(** Unit-stride array element [base\[i + offset\]]. *)

val same_base : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
