(** Loop unrolling.

    Replicates a single-block loop body [factor] times, renaming each
    copy's registers and adjusting affine addresses (stride × factor,
    offset + stride·j), so one iteration of the result performs [factor]
    source iterations. Recurrences chain through the copies: a
    loop-carried use in copy j reads copy j-1's value, and copy 0 reads
    the previous (unrolled) iteration's last copy. This increases
    data-independent parallelism exactly as the paper's Section 7
    suggests ("loop optimizations that can increase data-independent
    parallelism in innermost loops").

    The transformation is semantics-preserving: running the result
    [t] times equals running the source [factor·t] times (the test suite
    checks this with the interpreter). *)

val loop : factor:int -> Loop.t -> Loop.t * Vreg.t Vreg.Map.t
(** Returns the unrolled loop and the map from each source live-out
    register to the register holding its value in the unrolled loop
    (the last copy's instance). Trip count is divided (rounded up);
    [factor = 1] returns the loop unchanged with an identity map.
    Raises [Invalid_argument] when [factor < 1]. *)

val shift_iterations : by:int -> Loop.t -> Loop.t
(** The loop whose iteration [i] performs the source's iteration
    [i + by]: every affine address gains [stride·by]. Registers are
    untouched, so recurrences flow into the shifted loop from whatever
    executed the preceding iterations. The basis of peeling and
    remainder generation. *)

type pieces = {
  main : Loop.t;              (** the [factor]-way unrolled body *)
  main_trips : int;           (** iterations of [main] to run *)
  live_map : Vreg.t Vreg.Map.t;  (** source live-out -> main's register *)
  remainder : Loop.t option;  (** tail loop, shifted to the right start *)
  remainder_trips : int;
}

val with_remainder : factor:int -> trips:int -> Loop.t -> pieces
(** Production unrolling for an arbitrary trip count: run [main]
    [main_trips] times, then [remainder] [remainder_trips] times —
    together exactly [trips] source iterations (interpreter-verified in
    the tests). Recurrence registers keep their names across both loops,
    so values flow from main into the remainder; [remainder] is [None]
    when [factor] divides [trips]. Raises [Invalid_argument] when
    [factor < 1] or [trips < 0]. *)
