(** Virtual (symbolic) registers.

    The compiler front end generates code against an infinite register file;
    every value is a [Vreg.t]. Partitioning assigns each virtual register to
    a register bank, and Chaitin/Briggs later maps it to an architectural
    register within that bank. Identity is the integer [id]; the class and
    optional name ride along for latency lookup and printing. *)

type t = private {
  id : int;
  cls : Mach.Rclass.t;
  name : string option;  (** human-readable label, e.g. ["r5"] or ["xvel"] *)
}

val make : ?name:string -> id:int -> cls:Mach.Rclass.t -> unit -> t
(** Raises [Invalid_argument] on negative [id]. *)

val id : t -> int
val cls : t -> Mach.Rclass.t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
