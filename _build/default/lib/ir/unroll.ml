let loop ~factor src =
  if factor < 1 then invalid_arg "Unroll.loop: factor must be >= 1";
  if factor = 1 then
    ( src,
      Vreg.Set.fold (fun r acc -> Vreg.Map.add r r acc) (Loop.live_out src) Vreg.Map.empty )
  else begin
    let body = Array.of_list (Loop.ops src) in
    let n = Array.length body in
    let defs_of =
      let acc = ref Vreg.Map.empty in
      Array.iteri
        (fun idx op ->
          List.iter
            (fun d ->
              let prev = Option.value ~default:[] (Vreg.Map.find_opt d !acc) in
              acc := Vreg.Map.add d (prev @ [ idx ]) !acc)
            (Op.defs op))
        body;
      !acc
    in
    (* Registers read across the back edge are genuine recurrences: their
       chain is serial whichever names it runs through, and renaming the
       copies would sever the live-in value. They keep their name; only
       iteration-local temporaries get per-copy instances. *)
    let recurrent =
      let acc = ref Vreg.Set.empty in
      Array.iteri
        (fun q op ->
          List.iter
            (fun r ->
              match Vreg.Map.find_opt r defs_of with
              | None | Some [] -> ()
              | Some positions ->
                  if not (List.exists (fun p -> p < q) positions) then
                    acc := Vreg.Set.add r !acc)
            (Op.uses op))
        body;
      !acc
    in
    let next_vreg = ref (Loop.max_vreg_id src + 1) in
    let renames : (int * int, Vreg.t) Hashtbl.t = Hashtbl.create 64 in
    let renamed j r =
      if (not (Vreg.Map.mem r defs_of)) || Vreg.Set.mem r recurrent then r
      else
        match Hashtbl.find_opt renames (j, Vreg.id r) with
        | Some r' -> r'
        | None ->
            let r' =
              Vreg.make
                ~name:(Printf.sprintf "%s.%d" (Vreg.to_string r) j)
                ~id:!next_vreg ~cls:(Vreg.cls r) ()
            in
            incr next_vreg;
            Hashtbl.replace renames (j, Vreg.id r) r';
            r'
    in
    let next_op = ref 0 in
    let instance j q =
      let op = body.(q) in
      let srcs =
        List.map
          (fun r ->
            match Vreg.Map.find_opt r defs_of with
            | None | Some [] -> r
            | Some positions ->
                if List.exists (fun p -> p < q) positions then renamed j r
                else renamed ((j + factor - 1) mod factor) r)
          (Op.srcs op)
      in
      let dst = Option.map (renamed j) (Op.dst op) in
      let addr =
        Option.map
          (fun (a : Addr.t) ->
            Addr.make ~offset:(a.offset + (a.stride * j)) ~stride:(a.stride * factor) a.base)
          (Op.addr op)
      in
      let id = !next_op in
      incr next_op;
      Op.make ?dst ~srcs ?addr ~id ~opcode:(Op.opcode op) ~cls:(Op.cls op) ()
    in
    (* explicit loops: instance allocation order must follow body order *)
    let ops = ref [] in
    for j = 0 to factor - 1 do
      for q = 0 to n - 1 do
        ops := instance j q :: !ops
      done
    done;
    let ops = List.rev !ops in
    let live_map =
      Vreg.Set.fold
        (fun r acc -> Vreg.Map.add r (renamed (factor - 1) r) acc)
        (Loop.live_out src) Vreg.Map.empty
    in
    let live_out =
      Vreg.Map.fold (fun _ r' acc -> Vreg.Set.add r' acc) live_map Vreg.Set.empty
    in
    let trip = (Loop.trip_count src + factor - 1) / factor in
    ( Loop.make ~depth:(Loop.depth src) ~live_out ~trip_count:trip
        ~name:(Printf.sprintf "%s-x%d" (Loop.name src) factor)
        ops,
      live_map )
  end

let shift_iterations ~by src =
  let ops =
    List.map
      (fun op ->
        match Op.addr op with
        | Some a ->
            let addr =
              Addr.make ~offset:(a.Addr.offset + (a.Addr.stride * by)) ~stride:a.Addr.stride
                a.Addr.base
            in
            Op.make ?dst:(Op.dst op) ~srcs:(Op.srcs op) ~addr ?imm:(Op.imm op) ~id:(Op.id op)
              ~opcode:(Op.opcode op) ~cls:(Op.cls op) ()
        | None -> op)
      (Loop.ops src)
  in
  Loop.make ~depth:(Loop.depth src) ~live_out:(Loop.live_out src)
    ~trip_count:(max 1 (Loop.trip_count src - by))
    ~name:(Printf.sprintf "%s+%d" (Loop.name src) by)
    ops

type pieces = {
  main : Loop.t;
  main_trips : int;
  live_map : Vreg.t Vreg.Map.t;
  remainder : Loop.t option;
  remainder_trips : int;
}

let with_remainder ~factor ~trips src =
  if factor < 1 then invalid_arg "Unroll.with_remainder: factor must be >= 1";
  if trips < 0 then invalid_arg "Unroll.with_remainder: negative trips";
  let main, live_map = loop ~factor src in
  let main_trips = trips / factor in
  let rem = trips mod factor in
  let remainder =
    if rem = 0 then None else Some (shift_iterations ~by:(main_trips * factor) src)
  in
  { main; main_trips; live_map; remainder; remainder_trips = rem }
