type t = {
  name : string;
  ops : Op.t list;
  depth : int;
  live_out : Vreg.Set.t;
  trip_count : int;
}

let validate name ops =
  if ops = [] then invalid_arg (Printf.sprintf "Loop %s: empty body" name);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun op ->
      let id = Op.id op in
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Loop %s: duplicate op id %d" name id);
      Hashtbl.add seen id ())
    ops

let make ?(depth = 1) ?(live_out = Vreg.Set.empty) ?(trip_count = 100) ~name ops =
  validate name ops;
  if depth < 0 then invalid_arg "Loop.make: negative depth";
  if trip_count < 1 then invalid_arg "Loop.make: trip_count must be >= 1";
  { name; ops; depth; live_out; trip_count }

let name t = t.name
let ops t = t.ops
let depth t = t.depth
let live_out t = t.live_out
let trip_count t = t.trip_count
let size t = List.length t.ops

let op_by_id t id =
  match List.find_opt (fun op -> Op.id op = id) t.ops with
  | Some op -> op
  | None -> raise Not_found

let vregs t =
  List.fold_left
    (fun acc op ->
      let acc = List.fold_left (fun s r -> Vreg.Set.add r s) acc (Op.defs op) in
      List.fold_left (fun s r -> Vreg.Set.add r s) acc (Op.uses op))
    Vreg.Set.empty t.ops

let defs_of t =
  List.fold_left
    (fun acc op ->
      List.fold_left
        (fun acc d ->
          let prev = Option.value ~default:[] (Vreg.Map.find_opt d acc) in
          Vreg.Map.add d (prev @ [ op ]) acc)
        acc (Op.defs op))
    Vreg.Map.empty t.ops

let invariants t =
  let defined =
    List.fold_left
      (fun acc op -> List.fold_left (fun s r -> Vreg.Set.add r s) acc (Op.defs op))
      Vreg.Set.empty t.ops
  in
  List.fold_left
    (fun acc op ->
      List.fold_left
        (fun acc u -> if Vreg.Set.mem u defined then acc else Vreg.Set.add u acc)
        acc (Op.uses op))
    Vreg.Set.empty t.ops

let max_op_id t = List.fold_left (fun acc op -> max acc (Op.id op)) (-1) t.ops

let max_vreg_id t =
  Vreg.Set.fold (fun r acc -> max acc (Vreg.id r)) (vregs t) (-1)

let with_ops t ops =
  validate t.name ops;
  { t with ops }

let pp ppf t =
  Format.fprintf ppf "@[<v>loop %s (depth %d, %d ops):@," t.name t.depth (size t);
  List.iter (fun op -> Format.fprintf ppf "  %a@," Op.pp op) t.ops;
  Format.fprintf ppf "@]"
