type t = {
  mutable next_vreg : int;
  mutable next_op : int;
  mutable current : Op.t list;         (* reversed *)
  mutable current_label : string;
  mutable current_depth : int;
  mutable finished : Block.t list;     (* reversed *)
}

let create () =
  { next_vreg = 1; next_op = 0; current = []; current_label = "entry"; current_depth = 0;
    finished = [] }

let fresh ?name t cls =
  let id = t.next_vreg in
  t.next_vreg <- id + 1;
  Vreg.make ?name ~id ~cls ()

let emit t op = t.current <- op :: t.current

let next_op_id t =
  let id = t.next_op in
  t.next_op <- id + 1;
  id

let load ?name ?index t cls addr =
  let dst = fresh ?name t cls in
  let srcs = match index with Some i -> [ i ] | None -> [] in
  emit t (Op.make ~dst ~srcs ~addr ~id:(next_op_id t) ~opcode:Mach.Opcode.Load ~cls ());
  dst

let store ?index t cls addr value =
  let srcs = value :: (match index with Some i -> [ i ] | None -> []) in
  emit t (Op.make ~srcs ~addr ~id:(next_op_id t) ~opcode:Mach.Opcode.Store ~cls ())

let unop ?name t opcode cls a =
  let dst = fresh ?name t cls in
  emit t (Op.make ~dst ~srcs:[ a ] ~id:(next_op_id t) ~opcode ~cls ());
  dst

let binop ?name t opcode cls a b =
  let dst = fresh ?name t cls in
  emit t (Op.make ~dst ~srcs:[ a; b ] ~id:(next_op_id t) ~opcode ~cls ());
  dst

let ternop ?name t opcode cls a b c =
  let dst = fresh ?name t cls in
  emit t (Op.make ~dst ~srcs:[ a; b; c ] ~id:(next_op_id t) ~opcode ~cls ());
  dst

let define t opcode cls ~into srcs =
  emit t (Op.make ~dst:into ~srcs ~id:(next_op_id t) ~opcode ~cls ())

let const ?name t cls v =
  let dst = fresh ?name t cls in
  emit t (Op.make ~dst ~imm:v ~id:(next_op_id t) ~opcode:Mach.Opcode.Const ~cls ());
  dst

let copy ?name t src =
  let cls = Vreg.cls src in
  let dst = fresh ?name t cls in
  emit t (Op.make ~dst ~srcs:[ src ] ~id:(next_op_id t) ~opcode:Mach.Opcode.Copy ~cls ());
  dst

let op_count t = List.length t.current + List.fold_left (fun a b -> a + Block.size b) 0 t.finished

let loop ?depth ?(live_out = []) ?trip_count t ~name () =
  if t.finished <> [] then invalid_arg "Builder.loop: blocks were started; use Builder.func";
  let ops = List.rev t.current in
  let live_out = List.fold_left (fun s r -> Vreg.Set.add r s) Vreg.Set.empty live_out in
  Loop.make ?depth ~live_out ?trip_count ~name ops

let close_current t =
  let ops = List.rev t.current in
  if ops <> [] then
    t.finished <- Block.make ~depth:t.current_depth ~label:t.current_label ops :: t.finished;
  t.current <- []

let start_block ?(depth = 0) t label =
  close_current t;
  t.current_label <- label;
  t.current_depth <- depth

let func t ~name ~edges =
  close_current t;
  Func.make ~name ~blocks:(List.rev t.finished) ~edges
