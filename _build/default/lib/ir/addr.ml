type t = { base : string; offset : int; stride : int }

let make ?(offset = 0) ?(stride = 0) base =
  if base = "" then invalid_arg "Addr.make: empty base";
  { base; offset; stride }

let scalar base = make base
let element ?(offset = 0) base = make ~offset ~stride:1 base
let same_base a b = String.equal a.base b.base
let equal a b = same_base a b && a.offset = b.offset && a.stride = b.stride

let compare a b =
  let c = String.compare a.base b.base in
  if c <> 0 then c
  else
    let c = Int.compare a.offset b.offset in
    if c <> 0 then c else Int.compare a.stride b.stride

let to_string t =
  if t.stride = 0 && t.offset = 0 then t.base
  else if t.stride = 0 then Printf.sprintf "%s[%d]" t.base t.offset
  else if t.offset = 0 then Printf.sprintf "%s[%d*i]" t.base t.stride
  else Printf.sprintf "%s[%d*i%+d]" t.base t.stride t.offset

let pp ppf t = Format.pp_print_string ppf (to_string t)
