(** Imperative construction of IR.

    A builder hands out fresh virtual registers and operation ids and
    accumulates operations in program order, mirroring how a front end
    would lower source statements. One builder produces either a single
    {!Loop} or a multi-block {!Func}.

    Typical use (the paper's Section 4.2 example):
    {[
      let b = Builder.create () in
      let xvel = Builder.load b Float (Addr.scalar "xvel") in
      let t = Builder.load b Float (Addr.scalar "t") in
      let r5 = Builder.binop b Mul Float xvel t in
      ...
      Builder.store b Float (Addr.scalar "xpos") r10;
      let loop = Builder.loop b ~name:"example" ()
    ]} *)

type t

val create : unit -> t

val fresh : ?name:string -> t -> Mach.Rclass.t -> Vreg.t
(** A fresh virtual register that has not been defined yet; define it with
    {!define} or use it as a loop-invariant input. *)

val load : ?name:string -> ?index:Vreg.t -> t -> Mach.Rclass.t -> Addr.t -> Vreg.t
(** Emit a load and return its destination. *)

val store : ?index:Vreg.t -> t -> Mach.Rclass.t -> Addr.t -> Vreg.t -> unit

val unop : ?name:string -> t -> Mach.Opcode.t -> Mach.Rclass.t -> Vreg.t -> Vreg.t
val binop : ?name:string -> t -> Mach.Opcode.t -> Mach.Rclass.t -> Vreg.t -> Vreg.t -> Vreg.t
val ternop :
  ?name:string -> t -> Mach.Opcode.t -> Mach.Rclass.t -> Vreg.t -> Vreg.t -> Vreg.t -> Vreg.t

val define : t -> Mach.Opcode.t -> Mach.Rclass.t -> into:Vreg.t -> Vreg.t list -> unit
(** Emit an operation that (re)defines an existing register — needed for
    recurrences, e.g. [s = s + x]. *)

val const : ?name:string -> t -> Mach.Rclass.t -> int -> Vreg.t
(** Materialize an integer immediate (coerced for float destinations). *)

val copy : ?name:string -> t -> Vreg.t -> Vreg.t
(** Emit an explicit register copy. *)

val op_count : t -> int

val loop :
  ?depth:int -> ?live_out:Vreg.t list -> ?trip_count:int -> t -> name:string -> unit -> Loop.t
(** Finish as a single-block loop of everything emitted so far. *)

(** {2 Multi-block construction} *)

val start_block : ?depth:int -> t -> string -> unit
(** Close the current block (if any ops were emitted without a block, they
    form an implicit entry block ["entry"]) and start a new one. *)

val func : t -> name:string -> edges:(string * string) list -> Func.t
(** Finish as a function of all blocks emitted. *)
