(** Whole functions: a control-flow graph of basic blocks.

    Used by the whole-program partitioning path (the paper applies the same
    greedy method to entire functions in [Hiser et al. 1999]); our
    experiments centre on loops, but the RCG builder, list scheduler and
    register allocator all accept functions. *)

type t = private {
  name : string;
  blocks : Block.t list;          (** entry block first *)
  edges : (string * string) list; (** CFG edges between block labels *)
}

val make : name:string -> blocks:Block.t list -> edges:(string * string) list -> t
(** Raises [Invalid_argument] when blocks is empty, labels collide, op ids
    collide across blocks, or an edge mentions an unknown label. *)

val name : t -> string
val blocks : t -> Block.t list
val edges : t -> (string * string) list
val entry : t -> Block.t
val block : t -> string -> Block.t
(** Raises [Not_found]. *)

val successors : t -> string -> string list
val predecessors : t -> string -> string list
val size : t -> int
(** Total operation count. *)

val vregs : t -> Vreg.Set.t
val pp : Format.formatter -> t -> unit
