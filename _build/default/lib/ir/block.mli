(** Basic blocks for the whole-function code path.

    The paper's framework is "global in nature": the RCG is built across
    every basic block of a function and partitioned once. A block is a
    straight-line op list at some loop-nesting depth; unlike {!Loop}, uses
    never read across iterations. *)

type t = private {
  label : string;
  depth : int;     (** loop-nesting depth of this block *)
  ops : Op.t list;
}

val make : ?depth:int -> label:string -> Op.t list -> t
(** [depth] defaults to 0. Raises [Invalid_argument] on duplicate op ids
    or an empty label. An empty op list is allowed (join blocks). *)

val label : t -> string
val depth : t -> int
val ops : t -> Op.t list
val size : t -> int
val vregs : t -> Vreg.Set.t
val pp : Format.formatter -> t -> unit
