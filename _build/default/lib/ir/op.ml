type t = {
  id : int;
  opcode : Mach.Opcode.t;
  cls : Mach.Rclass.t;
  dst : Vreg.t option;
  srcs : Vreg.t list;
  addr : Addr.t option;
  imm : int option;
}

let shape_ok opcode ~dst ~srcs ~addr ~imm =
  let nsrc = List.length srcs in
  let dst_ok = Mach.Opcode.has_dest opcode = Option.is_some dst in
  let addr_ok = Mach.Opcode.is_memory opcode = Option.is_some addr in
  let imm_ok = Mach.Opcode.equal opcode Mach.Opcode.Const = Option.is_some imm in
  let srcs_ok =
    match opcode with
    | Mach.Opcode.Load -> nsrc <= 1
    | Mach.Opcode.Store -> nsrc >= 1 && nsrc <= 2
    | Mach.Opcode.Nop | Mach.Opcode.Const -> nsrc = 0
    | _ -> nsrc >= 1 && nsrc <= Mach.Opcode.arity opcode
  in
  dst_ok && addr_ok && srcs_ok && imm_ok

let make ?dst ?(srcs = []) ?addr ?imm ~id ~opcode ~cls () =
  if id < 0 then invalid_arg "Op.make: negative id";
  if not (shape_ok opcode ~dst ~srcs ~addr ~imm) then
    invalid_arg
      (Printf.sprintf "Op.make: inconsistent shape for %s (dst=%b, %d srcs, addr=%b, imm=%b)"
         (Mach.Opcode.to_string opcode) (Option.is_some dst) (List.length srcs)
         (Option.is_some addr) (Option.is_some imm));
  { id; opcode; cls; dst; srcs; addr; imm }

let id t = t.id
let opcode t = t.opcode
let cls t = t.cls
let dst t = t.dst
let srcs t = t.srcs
let addr t = t.addr
let imm t = t.imm
let defs t = match t.dst with Some d -> [ d ] | None -> []
let uses t = t.srcs
let latency table t = table t.opcode t.cls
let is_memory t = Mach.Opcode.is_memory t.opcode
let is_copy t = Mach.Opcode.is_copy t.opcode
let with_id t id = { t with id }

let subst_reg map r = match Vreg.Map.find_opt r map with Some r' -> r' | None -> r

let substitute t map = { t with srcs = List.map (subst_reg map) t.srcs }

let substitute_all t map =
  { t with srcs = List.map (subst_reg map) t.srcs; dst = Option.map (subst_reg map) t.dst }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let to_string t =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (Mach.Opcode.to_string t.opcode);
  (match t.cls with
  | Mach.Rclass.Float -> Buffer.add_string buf ".f"
  | Mach.Rclass.Int -> ());
  Buffer.add_char buf ' ';
  let operands =
    (match t.dst with Some d -> [ Vreg.to_string d ] | None -> [])
    @ (match (t.opcode, t.addr) with
      | Mach.Opcode.Store, Some a -> [ Addr.to_string a ]
      | _ -> [])
    @ List.map Vreg.to_string t.srcs
    @ (match (t.opcode, t.addr) with
      | Mach.Opcode.Load, Some a -> [ Addr.to_string a ]
      | _ -> [])
    @ (match t.imm with Some v -> [ "#" ^ string_of_int v ] | None -> [])
  in
  Buffer.add_string buf (String.concat ", " operands);
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
