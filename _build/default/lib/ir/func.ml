type t = { name : string; blocks : Block.t list; edges : (string * string) list }

let make ~name ~blocks ~edges =
  if blocks = [] then invalid_arg "Func.make: no blocks";
  let labels = Hashtbl.create 16 in
  List.iter
    (fun b ->
      let l = Block.label b in
      if Hashtbl.mem labels l then
        invalid_arg (Printf.sprintf "Func %s: duplicate block label %s" name l);
      Hashtbl.add labels l ())
    blocks;
  let ids = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun op ->
          let id = Op.id op in
          if Hashtbl.mem ids id then
            invalid_arg (Printf.sprintf "Func %s: duplicate op id %d across blocks" name id);
          Hashtbl.add ids id ())
        (Block.ops b))
    blocks;
  List.iter
    (fun (a, b) ->
      if not (Hashtbl.mem labels a && Hashtbl.mem labels b) then
        invalid_arg (Printf.sprintf "Func %s: edge %s->%s mentions unknown block" name a b))
    edges;
  { name; blocks; edges }

let name t = t.name
let blocks t = t.blocks
let edges t = t.edges

let entry t =
  match t.blocks with b :: _ -> b | [] -> assert false

let block t label =
  match List.find_opt (fun b -> String.equal (Block.label b) label) t.blocks with
  | Some b -> b
  | None -> raise Not_found

let successors t label =
  List.filter_map (fun (a, b) -> if String.equal a label then Some b else None) t.edges

let predecessors t label =
  List.filter_map (fun (a, b) -> if String.equal b label then Some a else None) t.edges

let size t = List.fold_left (fun acc b -> acc + Block.size b) 0 t.blocks

let vregs t =
  List.fold_left (fun acc b -> Vreg.Set.union acc (Block.vregs b)) Vreg.Set.empty t.blocks

let pp ppf t =
  Format.fprintf ppf "@[<v>func %s:@," t.name;
  List.iter (fun b -> Format.fprintf ppf "%a@," Block.pp b) t.blocks;
  List.iter (fun (a, b) -> Format.fprintf ppf "  edge %s -> %s@," a b) t.edges;
  Format.fprintf ppf "@]"
