(** Addressing lowering: from abstract affine addresses to explicit
    induction-variable arithmetic.

    The analyses work on symbolic addresses [base\[stride·i + offset\]];
    real machines compute addresses in integer registers. This pass makes
    that explicit: one integer induction variable per distinct stride,
    advanced at the bottom of the body ([iv += step], with the step
    materialized by a [Const]), and every strided memory operation
    rewritten to an indexed access [base\[offset\]] + iv.

    The lowered loop is ordinary IR — more (integer) operations, more
    dependences, an II that reflects address arithmetic — and computes
    exactly the same memory state (interpreter-verified in the tests),
    provided the returned induction variables enter the loop holding 0,
    the preheader code a front end would emit. *)

val loop : Loop.t -> Loop.t * (Vreg.t * int) list
(** Lower every strided access; scalars (stride 0) are untouched and a
    loop with no strided accesses is returned unchanged. The second
    component lists required entry values — each induction variable and
    its initial value (always 0). The result's name gains a ["-lowered"]
    suffix. Raises [Invalid_argument] if the loop already uses indexed
    accesses (one index register per access is the machine limit). *)
