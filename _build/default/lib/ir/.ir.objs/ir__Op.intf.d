lib/ir/op.mli: Addr Format Mach Map Set Vreg
