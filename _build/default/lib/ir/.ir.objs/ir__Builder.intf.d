lib/ir/builder.mli: Addr Func Loop Mach Vreg
