lib/ir/vreg.mli: Format Hashtbl Mach Map Set
