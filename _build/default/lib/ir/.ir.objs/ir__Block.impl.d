lib/ir/block.ml: Format Hashtbl List Op Printf Vreg
