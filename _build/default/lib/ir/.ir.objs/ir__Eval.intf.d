lib/ir/eval.mli: Format Loop Op Vreg
