lib/ir/unroll.mli: Loop Vreg
