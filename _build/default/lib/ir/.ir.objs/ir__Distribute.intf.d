lib/ir/distribute.mli: Loop
