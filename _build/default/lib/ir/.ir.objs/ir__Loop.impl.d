lib/ir/loop.ml: Format Hashtbl List Op Option Printf Vreg
