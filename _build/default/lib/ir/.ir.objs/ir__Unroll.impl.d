lib/ir/unroll.ml: Addr Array Hashtbl List Loop Op Option Printf Vreg
