lib/ir/vreg.ml: Format Hashtbl Int Mach Map Set
