lib/ir/eval.ml: Addr Float Format Hashtbl Int Int64 List Loop Mach Op Option Printf String Vreg
