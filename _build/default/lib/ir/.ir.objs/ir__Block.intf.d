lib/ir/block.mli: Format Op Vreg
