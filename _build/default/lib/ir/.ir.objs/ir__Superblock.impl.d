lib/ir/superblock.ml: Block Func List
