lib/ir/func.ml: Block Format Hashtbl List Op Printf String Vreg
