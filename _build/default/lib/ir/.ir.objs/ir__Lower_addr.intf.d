lib/ir/lower_addr.mli: Loop Vreg
