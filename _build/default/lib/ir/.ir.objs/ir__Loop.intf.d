lib/ir/loop.mli: Format Op Vreg
