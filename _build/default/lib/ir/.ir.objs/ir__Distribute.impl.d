lib/ir/distribute.ml: Addr Array Hashtbl List Loop Mach Op Option Printf Vreg
