lib/ir/parse.ml: Addr Buffer Hashtbl List Loop Mach Op Printf Result String Vreg
