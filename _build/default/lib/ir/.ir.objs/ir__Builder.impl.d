lib/ir/builder.ml: Block Func List Loop Mach Op Vreg
