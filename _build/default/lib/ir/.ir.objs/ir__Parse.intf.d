lib/ir/parse.mli: Hashtbl Loop Op Vreg
