lib/ir/op.ml: Addr Buffer Format Int List Mach Map Option Printf Set String Vreg
