lib/ir/addr.ml: Format Int Printf String
