lib/ir/superblock.mli: Func
