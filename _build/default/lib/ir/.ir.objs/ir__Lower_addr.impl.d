lib/ir/lower_addr.ml: Addr Int List Loop Mach Map Op Printf Vreg
