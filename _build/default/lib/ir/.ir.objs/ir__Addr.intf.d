lib/ir/addr.mli: Format
