type value = I of int | F of float

type state = {
  regs : (int, value) Hashtbl.t;
  mem : (string * int, value) Hashtbl.t;
}

let create () = { regs = Hashtbl.create 64; mem = Hashtbl.create 64 }

(* Deterministic "uninitialized" contents: a small hash, identical across
   equivalent programs. *)
let hash_int seed = (Hashtbl.hash seed mod 2003) - 1001

let set_reg st r v = Hashtbl.replace st.regs (Vreg.id r) v

let get_reg st r =
  match Hashtbl.find_opt st.regs (Vreg.id r) with
  | Some v -> v
  | None -> (
      let h = hash_int ("reg", Vreg.id r) in
      match Vreg.cls r with
      | Mach.Rclass.Int -> I h
      | Mach.Rclass.Float -> F (float_of_int h /. 16.0))

let set_mem st ~base ~index v = Hashtbl.replace st.mem (base, index) v

let get_mem st ~base ~index =
  match Hashtbl.find_opt st.mem (base, index) with
  | Some v -> v
  | None -> I (hash_int ("mem", base, index))

let mem_snapshot st =
  Hashtbl.fold (fun (b, i) v acc -> (b, i, v) :: acc) st.mem []
  |> List.sort (fun (b1, i1, _) (b2, i2, _) ->
         let c = String.compare b1 b2 in
         if c <> 0 then c else Int.compare i1 i2)

let as_int = function
  | I x -> x
  | F x -> if Float.is_finite x then int_of_float x else 0

let as_float = function I x -> float_of_int x | F x -> x

let coerce cls v =
  match cls with Mach.Rclass.Int -> I (as_int v) | Mach.Rclass.Float -> F (as_float v)

let int2 f a b = I (f (as_int a) (as_int b))
let float2 f a b = F (f (as_float a) (as_float b))

let arith cls fi ff a b =
  match cls with Mach.Rclass.Int -> int2 fi a b | Mach.Rclass.Float -> float2 ff a b

let shift_mask n = n land 62

let address ~iteration (a : Addr.t) extra = (a.stride * iteration) + a.offset + extra

let exec_op st ~iteration (op : Op.t) =
  let cls = Op.cls op in
  let src n =
    match List.nth_opt (Op.srcs op) n with
    | Some r -> get_reg st r
    | None -> invalid_arg (Printf.sprintf "Eval: %s missing operand %d" (Op.to_string op) n)
  in
  let put v =
    match Op.dst op with
    | Some d -> set_reg st d (coerce (Vreg.cls d) v)
    | None -> invalid_arg (Printf.sprintf "Eval: %s has no destination" (Op.to_string op))
  in
  match Op.opcode op with
  | Mach.Opcode.Nop -> ()
  | Mach.Opcode.Load ->
      let a = Option.get (Op.addr op) in
      let extra = match Op.srcs op with [] -> 0 | idx :: _ -> as_int (get_reg st idx) in
      put (coerce cls (get_mem st ~base:a.Addr.base ~index:(address ~iteration a extra)))
  | Mach.Opcode.Store ->
      let a = Option.get (Op.addr op) in
      let extra =
        match Op.srcs op with _ :: idx :: _ -> as_int (get_reg st idx) | _ -> 0
      in
      set_mem st ~base:a.Addr.base ~index:(address ~iteration a extra) (coerce cls (src 0))
  | Mach.Opcode.Add -> put (arith cls ( + ) ( +. ) (src 0) (src 1))
  | Mach.Opcode.Sub -> put (arith cls ( - ) ( -. ) (src 0) (src 1))
  | Mach.Opcode.Mul -> put (arith cls ( * ) ( *. ) (src 0) (src 1))
  | Mach.Opcode.Div ->
      let safe_div a b = if b = 0 then 0 else a / b in
      put (arith cls safe_div ( /. ) (src 0) (src 1))
  | Mach.Opcode.Neg ->
      put
        (match coerce cls (src 0) with
        | I x -> I (-x)
        | F x -> F (-.x))
  | Mach.Opcode.Abs ->
      put (match coerce cls (src 0) with I x -> I (abs x) | F x -> F (Float.abs x))
  | Mach.Opcode.Min -> put (arith cls min Float.min (src 0) (src 1))
  | Mach.Opcode.Max -> put (arith cls max Float.max (src 0) (src 1))
  | Mach.Opcode.And -> put (int2 ( land ) (src 0) (src 1))
  | Mach.Opcode.Or -> put (int2 ( lor ) (src 0) (src 1))
  | Mach.Opcode.Xor -> put (int2 ( lxor ) (src 0) (src 1))
  | Mach.Opcode.Shl -> put (int2 (fun a b -> a lsl shift_mask b) (src 0) (src 1))
  | Mach.Opcode.Shr -> put (int2 (fun a b -> a asr shift_mask b) (src 0) (src 1))
  | Mach.Opcode.Cmp -> put (I (compare (as_float (src 0)) (as_float (src 1))))
  | Mach.Opcode.Select -> put (if as_int (src 0) <> 0 then src 1 else src 2)
  | Mach.Opcode.Madd ->
      let m = arith cls ( * ) ( *. ) (src 0) (src 1) in
      put (arith cls ( + ) ( +. ) m (src 2))
  | Mach.Opcode.Convert -> put (coerce cls (src 0))
  | Mach.Opcode.Copy -> put (src 0)
  | Mach.Opcode.Const -> put (coerce cls (I (Option.get (Op.imm op))))

let run_ops st ?(iteration = 0) ops = List.iter (exec_op st ~iteration) ops

let run_loop st ~trips loop =
  for i = 0 to trips - 1 do
    run_ops st ~iteration:i (Loop.ops loop)
  done

let value_equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | F x, F y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
      || (Float.is_nan x && Float.is_nan y)
  | I _, F _ | F _, I _ -> false

let pp_value ppf = function
  | I x -> Format.fprintf ppf "%d" x
  | F x -> Format.fprintf ppf "%h" x
