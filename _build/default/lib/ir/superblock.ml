let mergeable func =
  List.find_opt
    (fun b ->
      let a = Block.label b in
      match Func.successors func a with
      | [ s ] -> (
          s <> a
          && (match Func.predecessors func s with [ p ] -> p = a | _ -> false)
          && Block.depth b = Block.depth (Func.block func s))
      | _ -> false)
    (Func.blocks func)

let merge_once func a_label =
  let s_label = List.hd (Func.successors func a_label) in
  let a = Func.block func a_label and s = Func.block func s_label in
  let merged =
    Block.make ~depth:(Block.depth a) ~label:a_label (Block.ops a @ Block.ops s)
  in
  let blocks =
    List.filter_map
      (fun b ->
        let l = Block.label b in
        if l = s_label then None else if l = a_label then Some merged else Some b)
      (Func.blocks func)
  in
  let edges =
    List.filter_map
      (fun (x, y) ->
        if x = a_label && y = s_label then None
        else
          let x = if x = s_label then a_label else x in
          let y = if y = s_label then a_label else y in
          Some (x, y))
      (Func.edges func)
    |> List.sort_uniq compare
  in
  Func.make ~name:(Func.name func) ~blocks ~edges

let rec merge_chains func =
  match mergeable func with
  | None -> func
  | Some b -> merge_chains (merge_once func (Block.label b))

let chain_count func =
  List.length
    (List.filter
       (fun b ->
         let a = Block.label b in
         match Func.successors func a with
         | [ s ] -> (
             s <> a
             && (match Func.predecessors func s with [ p ] -> p = a | _ -> false)
             && Block.depth b = Block.depth (Func.block func s))
         | _ -> false)
       (Func.blocks func))
