(** Superblock formation: merging straight-line block chains.

    The list scheduler cannot move operations across block boundaries, so
    a chain A → B where A is B's only predecessor and B is A's only
    successor wastes ILP at the seam. Merging such chains into one block
    is the degenerate, always-safe case of trace/superblock scheduling —
    the "any scheduling method (e.g. trace scheduling)" avenue the paper
    mentions — and measurably shortens whole-function schedules.

    Only same-depth neighbours merge, so the frequency-weighted cycle
    model of [Partition.Func_driver] keeps meaning. *)

val merge_chains : Func.t -> Func.t
(** Repeatedly merge every A → B with unique successor/predecessor and
    equal depth; the merged block keeps A's label and A's position. CFG
    edges are rewritten accordingly. Idempotent once stable. *)

val chain_count : Func.t -> int
(** Number of mergeable seams (0 after {!merge_chains}); for tests. *)
