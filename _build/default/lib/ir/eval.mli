(** Reference interpreter for the IR.

    Executes operation lists with sequential semantics over a register
    environment and a word-addressed symbolic memory. Used by the test
    suite to prove transformations sound: running a loop body [n] times
    sequentially must leave the same memory and live-out values as
    running the software-pipelined, partitioned, copy-rewritten,
    register-allocated expansion of it.

    Values are typed ints and floats. Loads of never-written locations
    read a deterministic hash of (base, address), so two executions agree
    on "uninitialized" data without any setup. *)

type value = I of int | F of float

type state

val create : unit -> state

val set_reg : state -> Vreg.t -> value -> unit
val get_reg : state -> Vreg.t -> value
(** Unset registers read as a deterministic hash of their id and class
    (so uninitialized inputs agree across equivalent programs that
    preserve register names for live-ins). *)

val set_mem : state -> base:string -> index:int -> value -> unit
val get_mem : state -> base:string -> index:int -> value

val mem_snapshot : state -> (string * int * value) list
(** All written locations, sorted — for equivalence checks. *)

val exec_op : state -> iteration:int -> Op.t -> unit
(** Execute one operation; [iteration] resolves affine addresses
    ([stride*iteration + offset], plus the index register for indexed
    access). Raises [Invalid_argument] for malformed operations. *)

val run_ops : state -> ?iteration:int -> Op.t list -> unit
(** Sequential execution ([iteration] defaults to 0 — flat code). *)

val run_loop : state -> trips:int -> Loop.t -> unit
(** Execute the loop body [trips] times with the iteration counter
    advancing, the reference semantics of a single-block loop. *)

val value_equal : value -> value -> bool
(** Exact on ints; on floats, bitwise or both-NaN. *)

val pp_value : Format.formatter -> value -> unit
