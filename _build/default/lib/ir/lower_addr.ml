module IntMap = Map.Make (Int)

let loop src =
  List.iter
    (fun op ->
      match (Op.opcode op, Op.addr op, Op.srcs op) with
      | Mach.Opcode.Load, Some _, _ :: _ ->
          invalid_arg "Lower_addr.loop: loop already uses indexed loads"
      | Mach.Opcode.Store, Some _, _ :: _ :: _ ->
          invalid_arg "Lower_addr.loop: loop already uses indexed stores"
      | _ -> ())
    (Loop.ops src);
  let strides =
    List.fold_left
      (fun acc op ->
        match Op.addr op with
        | Some a when a.Addr.stride <> 0 -> IntMap.add a.Addr.stride () acc
        | Some _ | None -> acc)
      IntMap.empty (Loop.ops src)
  in
  if IntMap.is_empty strides then (src, [])
  else begin
    let next_vreg = ref (Loop.max_vreg_id src + 1) in
    let next_op = ref (Loop.max_op_id src + 1) in
    let fresh name =
      let r = Vreg.make ~name ~id:!next_vreg ~cls:Mach.Rclass.Int () in
      incr next_vreg;
      r
    in
    let ivs =
      IntMap.mapi (fun s () -> fresh (Printf.sprintf "iv%d" s)) strides
    in
    let steps =
      IntMap.mapi (fun s () -> fresh (Printf.sprintf "step%d" s)) strides
    in
    (* Body: original ops with strided accesses indexed by iv, then the
       step constants and the iv updates at the bottom (so iteration 0
       reads the incoming iv value, 0). *)
    let rewritten =
      List.map
        (fun op ->
          match Op.addr op with
          | Some a when a.Addr.stride <> 0 -> (
              let iv = IntMap.find a.Addr.stride ivs in
              let addr = Addr.make ~offset:a.Addr.offset a.Addr.base in
              match Op.opcode op with
              | Mach.Opcode.Load ->
                  Op.make ?dst:(Op.dst op) ~srcs:[ iv ] ~addr ~id:(Op.id op)
                    ~opcode:Mach.Opcode.Load ~cls:(Op.cls op) ()
              | Mach.Opcode.Store ->
                  Op.make
                    ~srcs:(Op.srcs op @ [ iv ])
                    ~addr ~id:(Op.id op) ~opcode:Mach.Opcode.Store ~cls:(Op.cls op) ()
              | _ -> op)
          | Some _ | None -> op)
        (Loop.ops src)
    in
    let tail =
      IntMap.fold
        (fun s () acc ->
          let iv = IntMap.find s ivs and step = IntMap.find s steps in
          let cop =
            Op.make ~dst:step ~imm:s ~id:!next_op ~opcode:Mach.Opcode.Const
              ~cls:Mach.Rclass.Int ()
          in
          incr next_op;
          let upd =
            Op.make ~dst:iv ~srcs:[ iv; step ] ~id:!next_op ~opcode:Mach.Opcode.Add
              ~cls:Mach.Rclass.Int ()
          in
          incr next_op;
          acc @ [ cop; upd ])
        strides []
    in
    let live_out =
      IntMap.fold (fun _ iv acc -> Vreg.Set.add iv acc) ivs (Loop.live_out src)
    in
    ( Loop.make ~depth:(Loop.depth src) ~live_out ~trip_count:(Loop.trip_count src)
        ~name:(Loop.name src ^ "-lowered")
        (rewritten @ tail),
      IntMap.fold (fun _ iv acc -> (iv, 0) :: acc) ivs [] )
  end
