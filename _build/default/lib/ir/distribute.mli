(** Loop distribution (fission).

    Splitting a loop into independent loops — one per weakly-connected
    component of its dependence structure — is one of the "loop
    optimizations that can increase data-independent parallelism" the
    paper's future work names. Each piece pipelines with a smaller, often
    less recurrence-bound kernel, and partitions trivially (pieces share
    no registers).

    Two operations end up in the same piece when any dependence (register
    or memory, any distance) connects them, so executing the pieces one
    after another — each for the full trip count — computes exactly what
    the original interleaving computed (interpreter-verified). *)

val split : Loop.t -> Loop.t list
(** The distributed pieces in body order of their first operation; a
    connected loop yields [\[loop\]] unchanged. Ops keep their ids (ids
    stay unique per piece); live-outs are routed to the piece defining
    them. Piece names get ["/0"], ["/1"], … suffixes. *)

val is_distributable : Loop.t -> bool
(** More than one piece? *)
