type t = { id : int; cls : Mach.Rclass.t; name : string option }

let make ?name ~id ~cls () =
  if id < 0 then invalid_arg "Vreg.make: negative id";
  { id; cls; name }

let id t = t.id
let cls t = t.cls
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id

let to_string t =
  match t.name with
  | Some n -> n
  | None ->
      let prefix = match t.cls with Mach.Rclass.Int -> "r" | Mach.Rclass.Float -> "f" in
      prefix ^ string_of_int t.id

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
