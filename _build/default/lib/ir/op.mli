(** IR operations.

    One atomic machine operation: an opcode, at most one destination
    register, a list of register sources, and — for memory operations — a
    symbolic address. Identity is the integer [id], unique within a loop or
    function (the {!Builder} guarantees this); all graph structures (DDG,
    schedules, RCG construction) key on it. *)

type t = private {
  id : int;
  opcode : Mach.Opcode.t;
  cls : Mach.Rclass.t;       (** class the latency table is consulted with *)
  dst : Vreg.t option;
  srcs : Vreg.t list;
  addr : Addr.t option;      (** present iff the opcode is a memory op *)
  imm : int option;          (** present iff the opcode is [Const] *)
}

val make :
  ?dst:Vreg.t ->
  ?srcs:Vreg.t list ->
  ?addr:Addr.t ->
  ?imm:int ->
  id:int ->
  opcode:Mach.Opcode.t ->
  cls:Mach.Rclass.t ->
  unit ->
  t
(** Raises [Invalid_argument] when the shape is inconsistent with the
    opcode: destination present iff [Opcode.has_dest]; address present iff
    [Opcode.is_memory]; immediate present iff the opcode is [Const];
    loads take at most one register source (an index), stores one or two
    (value, optional index), [Nop] and [Const] none, and other opcodes
    between one and [Opcode.arity opcode] sources. *)

val id : t -> int
val opcode : t -> Mach.Opcode.t
val cls : t -> Mach.Rclass.t
val dst : t -> Vreg.t option
val srcs : t -> Vreg.t list
val addr : t -> Addr.t option
val imm : t -> int option

val defs : t -> Vreg.t list
(** Registers defined: [dst] as a (0|1)-element list. *)

val uses : t -> Vreg.t list
(** Registers read ([srcs]). *)

val latency : Mach.Latency.t -> t -> int
(** Result latency under the given table. *)

val is_memory : t -> bool
val is_copy : t -> bool

val with_id : t -> int -> t
(** Same operation under a new id (used when splicing op lists). *)

val substitute : t -> Vreg.t Vreg.Map.t -> t
(** Rewrite source operands through the map (dst unchanged); registers not
    in the map are kept. Used by copy insertion and modulo variable
    expansion. *)

val substitute_all : t -> Vreg.t Vreg.Map.t -> t
(** Like {!substitute} but also rewrites the destination. *)

val equal : t -> t -> bool
(** Identity ([id]) equality. *)

val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
