(** Textual IR: parse loops in the same surface syntax {!Op.to_string}
    prints, so dumps round-trip and users can hand the CLI their own
    kernels.

    {v
    loop daxpy depth 1 trip 100
      load.f x0, x[1*i]
      load.f y0, y[1*i]
      mul.f ax, a, x0
      add.f s0, y0, ax
      store.f y[1*i], s0
    live_out: s0
    v}

    - One operation per line; [#] starts a comment (except [#5] / [#-3],
      which is an immediate — e.g. [const c, #8]).
    - Opcode suffix [.f] selects the float class, no suffix is integer.
    - Operand order mirrors the printer: destination first; stores put
      the address first, loads put it last.
    - Registers are bare identifiers and default to the operation's
      class; an explicit [name:i] / [name:f] suffix overrides (e.g. the
      integer index of an indexed float load).
    - Addresses: [base] (scalar), [base\[3\]] (constant offset),
      [base\[4*i+2\]] (affine in the iteration counter).
    - The header line ([loop NAME \[depth D\] \[trip T\]]) and the
      trailing [live_out:] line are optional; defaults are name
      ["anonymous"], depth 1, trip 100, no live-outs. *)

val loop_of_string : string -> (Loop.t, string) result
(** Parse a whole loop; errors carry a line number and message. *)

val loop_to_string : Loop.t -> string
(** Print in the accepted syntax (header, body, live_out). *)

val op_of_string :
  next_vreg:int ->
  regs:(string, Vreg.t) Hashtbl.t ->
  id:int ->
  string ->
  (Op.t * int, string) result
(** Parse one operation line. [regs] maps names already seen to their
    registers and is extended in place; [next_vreg] seeds fresh ids and
    the bumped value is returned. Exposed for tests. *)
