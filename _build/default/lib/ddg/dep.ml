type kind = Flow | Anti | Output | Mem of kind_mem
and kind_mem = Mem_flow | Mem_anti | Mem_output

type t = { kind : kind; latency : int; distance : int }

let make ~kind ~latency ~distance =
  if latency < 0 then invalid_arg "Dep.make: negative latency";
  if distance < 0 then invalid_arg "Dep.make: negative distance";
  { kind; latency; distance }

let kind t = t.kind
let latency t = t.latency
let distance t = t.distance
let is_loop_carried t = t.distance > 0

let kind_to_string = function
  | Flow -> "flow"
  | Anti -> "anti"
  | Output -> "output"
  | Mem Mem_flow -> "mem-flow"
  | Mem Mem_anti -> "mem-anti"
  | Mem Mem_output -> "mem-output"

let to_string t =
  Printf.sprintf "%s(lat=%d,dist=%d)" (kind_to_string t.kind) t.latency t.distance

let pp ppf t = Format.pp_print_string ppf (to_string t)
