(** Affine memory-dependence testing.

    Two references to the same base, [a\[s·i + o1\]] (earlier in the body)
    and [a\[s·i + o2\]], conflict when [s·i1 + o1 = s·i2 + o2] has a
    solution with [i2 >= i1] (the later iteration executes the later
    textual op, or the same iteration when textual order suffices). For
    equal strides the distance is [(o1 - o2) / s] when integral; distinct
    bases never alias (Fortran-style no-alias assumption, matching the
    paper's loop extraction pipeline). *)

type verdict =
  | No_dep                  (** provably independent *)
  | Dep_at of int           (** dependence at this non-negative distance *)
  | Dep_all                 (** conservatively: dependence at every distance >= the given floor *)

val test : earlier:Ir.Addr.t -> later:Ir.Addr.t -> verdict
(** [test ~earlier ~later]: verdict for a dependence from the textually
    earlier reference to the later one within a single-block loop.
    Returns the smallest dependence distance:

    - different bases → [No_dep]
    - same stride [s <> 0]: distance [d = (o_earlier - o_later) / s] if
      integral and [>= 0] (a negative or fractional d means the later
      reference can never see the earlier one going forward) → [Dep_at d]
      or [No_dep]
    - both scalar ([s = 0]): same offset → [Dep_all] (the same location is
      touched every iteration); different offsets → [No_dep]
    - differing strides → [Dep_all] (conservative) *)

val ordering_dep :
  earlier:Ir.Op.t -> later:Ir.Op.t -> (Dep.kind_mem * int) option
(** Memory-ordering dependence between two ops if both are memory ops, at
    least one is a store, and the address test does not disprove it.
    Returns kind and distance. The conservative [Dep_all] verdict is
    represented as distance of the verdict's floor (0 or 1). *)
