let div_ceil a b = (a + b - 1) / b

let res_mii ~width n_ops =
  if width <= 0 then invalid_arg "Minii.res_mii: width must be positive";
  max 1 (div_ceil (max n_ops 0) width)

let res_mii_clustered ~machine ~ops_per_cluster ~copies_per_cluster =
  let m : Mach.Machine.t = machine in
  if Array.length ops_per_cluster <> m.clusters || Array.length copies_per_cluster <> m.clusters
  then invalid_arg "Minii.res_mii_clustered: array length mismatch";
  let per_cluster c =
    match m.copy_model with
    | Mach.Machine.Embedded ->
        div_ceil (ops_per_cluster.(c) + copies_per_cluster.(c)) m.fus_per_cluster
    | Mach.Machine.Copy_unit ->
        let fu_bound = div_ceil ops_per_cluster.(c) m.fus_per_cluster in
        let port_bound =
          if copies_per_cluster.(c) = 0 then 1
          else if m.copy_ports = 0 then max_int / 2
          else div_ceil copies_per_cluster.(c) m.copy_ports
        in
        max fu_bound port_bound
  in
  let cluster_bound =
    Array.to_list (Array.init m.clusters per_cluster) |> List.fold_left max 1
  in
  match m.copy_model with
  | Mach.Machine.Embedded -> cluster_bound
  | Mach.Machine.Copy_unit ->
      let total_copies = Array.fold_left ( + ) 0 copies_per_cluster in
      let bus_bound =
        if total_copies = 0 then 1
        else if m.busses = 0 then max_int / 2
        else div_ceil total_copies m.busses
      in
      max cluster_bound bus_bound

let upper_bound ddg =
  1 + List.fold_left (fun acc op -> acc + Graph.latency_of ddg op) 0 (Graph.ops_in_order ddg)

let feasible ddg ii =
  not
    (Graphlib.Cycles.has_positive_cycle
       ~weight:(fun (e : Dep.t Graphlib.Digraph.edge) ->
         Dep.latency e.label - (ii * Dep.distance e.label))
       (Graph.graph ddg))

let rec_mii ddg =
  (* Cycle weight Σlat − II·Σdist is strictly decreasing in II for any
     circuit (every circuit carries distance >= 1 in a well-formed body),
     so feasibility is monotone and binary search applies. *)
  let hi = upper_bound ddg in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if feasible ddg mid then search lo mid else search (mid + 1) hi
  in
  search 1 hi

let min_ii ~width ddg = max (res_mii ~width (Graph.size ddg)) (rec_mii ddg)
