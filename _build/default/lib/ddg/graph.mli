(** Data dependence graphs (the paper's "DDDs").

    Nodes are operation ids, edges are {!Dep.t} labels. Construction
    follows Section 4's framework: register dependences (flow, anti,
    output — including loop-carried distance-1 flow for registers read
    before being redefined, the recurrences that bound RecMII) plus
    memory-ordering dependences with exact affine distances (see
    {!Memdep}). Loop-carried register anti/output dependences are omitted
    by design: modulo variable expansion renames per-iteration instances
    (the standard assumption of Rau-style pipelining, realized here by
    [Sched.Expand.flatten]).

    Latency conventions: flow edges carry the defining op's latency; anti
    edges 0 (operands are read at issue); output edges 1; memory flow
    edges the store latency; other memory edges 1. *)

type t = private {
  graph : Dep.t Graphlib.Digraph.t;
  ops : (int, Ir.Op.t) Hashtbl.t;  (** op id -> op *)
  order : int list;                (** op ids in body (textual) order *)
  latency : Mach.Latency.t;
}

val of_loop : ?latency:Mach.Latency.t -> Ir.Loop.t -> t
(** Dependences of a single-block loop, including loop-carried edges.
    [latency] defaults to {!Mach.Latency.paper}. *)

val of_block : ?latency:Mach.Latency.t -> Ir.Block.t -> t
(** Dependences of straight-line code: no loop-carried edges. *)

val op : t -> int -> Ir.Op.t
(** Raises [Not_found] on unknown id. *)

val ops_in_order : t -> Ir.Op.t list
val size : t -> int
val graph : t -> Dep.t Graphlib.Digraph.t
val latency_of : t -> Ir.Op.t -> int

val preds : t -> int -> (int * Dep.t) list
val succs : t -> int -> (int * Dep.t) list

val loop_independent : t -> Dep.t Graphlib.Digraph.t
(** Subgraph of distance-0 edges; always a DAG for well-formed input. *)

val critical_path_length : t -> int
(** Longest latency chain through distance-0 edges plus the final op's own
    latency: a lower bound on any single-iteration schedule length. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering of the dependence graph: flow edges solid, anti
    dotted, output/memory dashed; loop-carried edges annotated with their
    distance. *)
