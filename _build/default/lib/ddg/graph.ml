type t = {
  graph : Dep.t Graphlib.Digraph.t;
  ops : (int, Ir.Op.t) Hashtbl.t;
  order : int list;
  latency : Mach.Latency.t;
}

let op t id =
  match Hashtbl.find_opt t.ops id with Some o -> o | None -> raise Not_found

let ops_in_order t = List.map (op t) t.order
let size t = List.length t.order
let graph t = t.graph
let latency_of t o = Ir.Op.latency t.latency o

let preds t id = List.map (fun (e : _ Graphlib.Digraph.edge) -> (e.src, e.label)) (Graphlib.Digraph.preds t.graph id)
let succs t id = List.map (fun (e : _ Graphlib.Digraph.edge) -> (e.dst, e.label)) (Graphlib.Digraph.succs t.graph id)

let add_dep g ~src ~dst dep = Graphlib.Digraph.add_edge g ~src ~dst dep

(* Register dependences between the ops of one body. [carried] selects
   whether cross-iteration (distance 1) edges are generated. *)
let build_register_deps ~latency ~carried g ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let positions_defining r =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if List.exists (Ir.Vreg.equal r) (Ir.Op.defs arr.(i)) then acc := i :: !acc
    done;
    !acc
  in
  (* Same-iteration edges. *)
  for p = 0 to n - 1 do
    let dp = arr.(p) in
    for q = p + 1 to n - 1 do
      let dq = arr.(q) in
      (* flow: p defines r, q uses r, no def of r strictly between *)
      List.iter
        (fun r ->
          if List.exists (Ir.Vreg.equal r) (Ir.Op.uses dq) then begin
            let killed =
              List.exists (fun k -> k > p && k < q) (positions_defining r)
            in
            if not killed then
              add_dep g ~src:(Ir.Op.id dp) ~dst:(Ir.Op.id dq)
                (Dep.make ~kind:Dep.Flow ~latency:(Ir.Op.latency latency dp) ~distance:0)
          end)
        (Ir.Op.defs dp);
      (* anti: p uses r, q defines r — but only when the use reads a
         same-iteration value. A use with no def before it reads the
         previous iteration's instance, which modulo variable expansion
         renames apart from the def at q, so no ordering is required
         (the induction-variable idiom: users read iv, the bottom update
         writes the next iteration's iv). *)
      List.iter
        (fun r ->
          if
            List.exists (Ir.Vreg.equal r) (Ir.Op.uses dp)
            && (carried = false || List.exists (fun k -> k < p) (positions_defining r))
          then
            add_dep g ~src:(Ir.Op.id dp) ~dst:(Ir.Op.id dq)
              (Dep.make ~kind:Dep.Anti ~latency:0 ~distance:0))
        (Ir.Op.defs dq);
      (* output: both define r *)
      List.iter
        (fun r ->
          if List.exists (Ir.Vreg.equal r) (Ir.Op.defs dp) then
            add_dep g ~src:(Ir.Op.id dp) ~dst:(Ir.Op.id dq)
              (Dep.make ~kind:Dep.Output ~latency:1 ~distance:0))
        (Ir.Op.defs dq)
    done
  done;
  if carried then
    (* Cross-iteration flow edges at distance 1: a use at position q whose
       register has no def strictly before q reads the previous
       iteration's last def — these close the real recurrences.
       Loop-carried anti and output dependences on registers are omitted
       on purpose: modulo variable expansion renames each iteration's
       instances (see [Sched.Expand]), which is the standard assumption of
       Rau's modulo scheduling and the reason overlapped lifetimes are
       legal. *)
    for q = 0 to n - 1 do
      let uq = arr.(q) in
      List.iter
        (fun r ->
          match positions_defining r with
          | [] -> () (* loop invariant *)
          | defs ->
              let first_def = List.hd defs in
              let last_def = List.nth defs (List.length defs - 1) in
              if first_def >= q then begin
                let dp = arr.(last_def) in
                add_dep g ~src:(Ir.Op.id dp) ~dst:(Ir.Op.id uq)
                  (Dep.make ~kind:Dep.Flow ~latency:(Ir.Op.latency latency dp) ~distance:1)
              end)
        (Ir.Op.uses uq)
    done

let mem_latency latency (kind : Dep.kind_mem) (earlier : Ir.Op.t) =
  match kind with
  | Dep.Mem_flow -> Ir.Op.latency latency earlier
  | Dep.Mem_anti | Dep.Mem_output -> 1

let build_memory_deps ~latency ~carried g ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let is_store o = Mach.Opcode.equal (Ir.Op.opcode o) Mach.Opcode.Store in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q || carried then begin
        let a = arr.(p) and b = arr.(q) in
        match (Ir.Op.addr a, Ir.Op.addr b) with
        | Some aa, Some ab when is_store a || is_store b ->
            let kind : Dep.kind_mem =
              match (is_store a, is_store b) with
              | true, false -> Dep.Mem_flow
              | false, true -> Dep.Mem_anti
              | true, true -> Dep.Mem_output
              | false, false -> assert false
            in
            let min_dist = if p < q then 0 else 1 in
            let verdict = Memdep.test ~earlier:aa ~later:ab in
            let emit d =
              if d >= min_dist && (carried || d = 0) then
                add_dep g ~src:(Ir.Op.id a) ~dst:(Ir.Op.id b)
                  (Dep.make ~kind:(Dep.Mem kind) ~latency:(mem_latency latency kind a)
                     ~distance:d)
            in
            (match verdict with
            | Memdep.No_dep -> ()
            | Memdep.Dep_at d -> emit d
            | Memdep.Dep_all -> emit min_dist)
        | _ -> ()
      end
    done
  done

let build ~latency ~carried ops =
  let g = Graphlib.Digraph.create () in
  List.iter (fun o -> Graphlib.Digraph.add_node g (Ir.Op.id o)) ops;
  build_register_deps ~latency ~carried g ops;
  build_memory_deps ~latency ~carried g ops;
  let tbl = Hashtbl.create (List.length ops) in
  List.iter (fun o -> Hashtbl.replace tbl (Ir.Op.id o) o) ops;
  { graph = g; ops = tbl; order = List.map Ir.Op.id ops; latency }

let of_loop ?(latency = Mach.Latency.paper) loop =
  build ~latency ~carried:true (Ir.Loop.ops loop)

let of_block ?(latency = Mach.Latency.paper) block =
  build ~latency ~carried:false (Ir.Block.ops block)

let loop_independent t =
  let g = Graphlib.Digraph.create () in
  List.iter (Graphlib.Digraph.add_node g) (Graphlib.Digraph.nodes t.graph);
  Graphlib.Digraph.iter_edges
    (fun e -> if Dep.distance e.label = 0 then Graphlib.Digraph.add_edge g ~src:e.src ~dst:e.dst e.label)
    t.graph;
  g

let critical_path_length t =
  let g = loop_independent t in
  let dist = Graphlib.Topo.longest_paths ~weight:(fun e -> Dep.latency e.label) g in
  Hashtbl.fold (fun id d acc -> max acc (d + latency_of t (op t id))) dist 0

let pp ppf t =
  Format.fprintf ppf "@[<v>ddg (%d ops, %d edges):@," (size t)
    (Graphlib.Digraph.edge_count t.graph);
  List.iter
    (fun id ->
      Format.fprintf ppf "  %a@," Ir.Op.pp (op t id);
      List.iter
        (fun (dst, dep) -> Format.fprintf ppf "    -> op%d %a@," dst Dep.pp dep)
        (succs t id))
    t.order;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph ddg {\n  node [shape=box];\n";
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [label=\"%s\"];\n" id
           (String.map (fun c -> if c = '"' then '\'' else c) (Ir.Op.to_string (op t id)))))
    t.order;
  Graphlib.Digraph.iter_edges
    (fun (e : Dep.t Graphlib.Digraph.edge) ->
      let style =
        match Dep.kind e.label with
        | Dep.Flow -> "solid"
        | Dep.Anti -> "dotted"
        | Dep.Output | Dep.Mem _ -> "dashed"
      in
      let label =
        if Dep.distance e.label > 0 then
          Printf.sprintf "%d (d%d)" (Dep.latency e.label) (Dep.distance e.label)
        else string_of_int (Dep.latency e.label)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %d -> %d [label=\"%s\", style=%s];\n" e.src e.dst label style))
    t.graph;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
