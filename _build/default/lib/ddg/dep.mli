(** Dependence edge labels.

    An edge (p, s, label) means: operation [s] in iteration [i] must start
    at least [latency] cycles after operation [p] issued in iteration
    [i - distance]. [distance = 0] is a loop-independent dependence;
    positive distances are loop-carried. Modulo scheduling's legality
    constraint is [t(s) - t(p) >= latency - II * distance]. *)

type kind =
  | Flow    (** true dependence: p defines a register s reads *)
  | Anti    (** s redefines a register p reads *)
  | Output  (** s redefines a register p defines *)
  | Mem of kind_mem  (** ordering between memory operations *)

and kind_mem = Mem_flow | Mem_anti | Mem_output

type t = private { kind : kind; latency : int; distance : int }

val make : kind:kind -> latency:int -> distance:int -> t
(** Raises [Invalid_argument] on negative latency or distance. *)

val kind : t -> kind
val latency : t -> int
val distance : t -> int

val is_loop_carried : t -> bool
val kind_to_string : kind -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
