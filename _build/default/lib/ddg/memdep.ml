type verdict = No_dep | Dep_at of int | Dep_all

let test ~earlier ~later =
  let e : Ir.Addr.t = earlier and l : Ir.Addr.t = later in
  if not (Ir.Addr.same_base e l) then No_dep
  else if e.stride = l.stride then begin
    (* Equal scalar references conflict in every iteration pair. *)
    if e.stride = 0 then if e.offset = l.offset then Dep_all else No_dep
    else
      let diff = e.offset - l.offset in
      if diff mod e.stride <> 0 then No_dep
      else
        let d = diff / e.stride in
        if d >= 0 then Dep_at d else No_dep
  end
  else Dep_all

let ordering_dep ~earlier ~later =
  let is_store op = Mach.Opcode.equal (Ir.Op.opcode op) Mach.Opcode.Store in
  match (Ir.Op.addr earlier, Ir.Op.addr later) with
  | Some ae, Some al when is_store earlier || is_store later ->
      let kind : Dep.kind_mem =
        match (is_store earlier, is_store later) with
        | true, false -> Dep.Mem_flow
        | false, true -> Dep.Mem_anti
        | true, true -> Dep.Mem_output
        | false, false -> assert false
      in
      (match test ~earlier:ae ~later:al with
      | No_dep -> None
      | Dep_at d -> Some (kind, d)
      | Dep_all -> Some (kind, 0))
  | _ -> None
