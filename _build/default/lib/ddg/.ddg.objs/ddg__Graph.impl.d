lib/ddg/graph.ml: Array Buffer Dep Format Graphlib Hashtbl Ir List Mach Memdep Printf String
