lib/ddg/dep.ml: Format Printf
