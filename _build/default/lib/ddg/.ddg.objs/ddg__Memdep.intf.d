lib/ddg/memdep.mli: Dep Ir
