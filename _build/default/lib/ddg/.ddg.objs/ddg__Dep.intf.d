lib/ddg/dep.mli: Format
