lib/ddg/minii.mli: Graph Mach
