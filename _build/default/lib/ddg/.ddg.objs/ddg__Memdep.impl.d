lib/ddg/memdep.ml: Dep Ir Mach
