lib/ddg/minii.ml: Array Dep Graph Graphlib List Mach
