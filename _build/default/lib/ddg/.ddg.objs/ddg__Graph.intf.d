lib/ddg/graph.mli: Dep Format Graphlib Hashtbl Ir Mach
