(** Minimum initiation interval analysis.

    Modulo scheduling repeats one kernel schedule every II cycles; II is
    bounded below by resource pressure (ResMII) and by recurrence circuits
    (RecMII). Rau's iterative modulo scheduler starts at
    [MinII = max ResMII RecMII] and increases II until a legal schedule is
    found. *)

val res_mii : width:int -> int -> int
(** [res_mii ~width n_ops]: with fully general functional units,
    ⌈n_ops / width⌉ (at least 1). *)

val res_mii_clustered :
  machine:Mach.Machine.t -> ops_per_cluster:int array -> copies_per_cluster:int array -> int
(** Cluster-aware resource bound. For the embedded model a cluster's load
    is its operations plus the copies it receives; for the copy-unit model
    copies instead bound II through per-cluster copy ports and through the
    global busses (Σ copies / busses). *)

val rec_mii : Graph.t -> int
(** Smallest II such that no recurrence circuit C has
    Σ latency(C) > II · Σ distance(C); 1 when the DDG is acyclic.
    Computed by binary search with positive-cycle detection under edge
    weight [latency − II·distance]. *)

val min_ii : width:int -> Graph.t -> int
(** [max (res_mii ...) (rec_mii ...)]. *)

val upper_bound : Graph.t -> int
(** A trivially schedulable II: total latency of all operations, plus 1.
    Any II at or above this admits a sequential schedule. *)
