(** Structured pipeline failures.

    Every driver in the code-generation pipeline ({!Partition.Driver},
    {!Partition.Func_driver}, {!Regalloc.Alloc} and the resilient
    ladder in [lib/robust]) reports failures as a value of this type
    instead of an opaque string: which stage of the Section-4 framework
    gave up, a stable diagnostic code (a {!Diag} code where an analyzer
    produced the finding, a [PIPE] code otherwise), and — for drivers
    that retry — the trace of every attempt that was made before
    surrendering. Callers can branch on stages and codes; messages are
    free to improve. *)

(** The steps of the paper's framework, in pipeline order, plus the
    cross-cutting verification stage. *)
type stage =
  | Ir_input            (** the source body itself is malformed *)
  | Ideal_schedule      (** step 2: monolithic modulo scheduling *)
  | Partitioning        (** step 3: register-to-bank assignment *)
  | Copy_insertion      (** step 4a: cross-bank copy insertion *)
  | Clustered_schedule  (** step 4b: clustered modulo (re)scheduling *)
  | Allocation          (** step 5: per-bank Chaitin/Briggs colouring *)
  | Verification        (** an independent analyzer rejected an artifact *)

type attempt = {
  at_stage : stage;   (** stage the attempt died in *)
  rung : string;      (** ladder rung label ([""] outside the resilient driver) *)
  at_code : string;   (** diagnostic code of the failure *)
  detail : string;
}
(** One failed recovery attempt, for the attempt trace. *)

type t = {
  stage : stage;          (** stage that ultimately failed *)
  code : string;          (** stable diagnostic code, e.g. ["SCH002"], ["PIPE005"] *)
  message : string;
  subject : string;       (** loop or function name *)
  attempts : attempt list;  (** earlier failed attempts, oldest first *)
}

val stage_name : stage -> string

val default_code : stage -> string
(** The [PIPE] code used when no analyzer code applies: PIPE002
    (ideal schedule infeasible) through PIPE007 (verification), IR000
    for malformed input. PIPE001 remains the legacy catch-all used by
    [rbp]. *)

val attempt : ?rung:string -> ?code:string -> stage -> string -> attempt
(** [code] defaults to {!default_code} of the stage. *)

val make : ?attempts:attempt list -> ?code:string -> stage:stage -> subject:string -> string -> t
(** [code] defaults to {!default_code} of the stage. *)

val of_diags :
  ?attempts:attempt list -> ?stage:stage -> subject:string -> Diag.t list -> t
(** Failure from analyzer findings: the code is the first
    error-severity diagnostic's code, the message renders the first few
    errors. [stage] defaults to [Verification]. The list must contain
    at least one error-severity diagnostic (raises [Invalid_argument]
    otherwise — calling this on a clean report is a caller bug). *)

val with_attempts : t -> attempt list -> t

val attempt_to_string : attempt -> string

val to_string : t -> string
(** One line: [<subject>: <stage> [<code>]: <message>], with the number
    of prior attempts appended when any were made. *)

val trace : t -> string list
(** The attempt trace rendered one line per attempt, oldest first. *)

val pp : Format.formatter -> t -> unit
