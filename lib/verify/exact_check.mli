(** Independent validation of optimality witnesses (codes EX001–EX006).

    The branch-and-bound solver in [lib/exact] claims, for a loop and
    machine, a lower bound on the initiation interval and — when it
    proves optimality — a witness: a bank assignment, the rewritten
    body with copies, and a clustered kernel achieving the bound. None
    of that is taken on faith. A {!claim} is re-checked here from the
    artifacts alone, reusing the independent {!Sched_check} and
    {!Partition_check} analyzers plus bound recomputation — no code
    from the solver:

    - EX001 (error): the claimed II differs from the witness kernel's.
    - EX002 (error): the witness kernel or rewritten body fails the
      independent schedule / partition analyzers (the underlying SCH/PT
      findings are included alongside).
    - EX003 (error): the rewritten body with its copies removed is not
      the original body — the "witness" solves a different loop.
    - EX004 (error): the claimed copy count differs from the number of
      copy ops actually present in the rewritten body.
    - EX005 (error): an incoherent bound — below 1 or above the claimed
      II it is supposed to bound from below.
    - EX006 (error): an optimal claim that is not tight (claimed II
      above its own lower bound) or that undercuts the
      assignment-independent bound recomputed here from the original
      loop (resource bound over the machine width, recurrence bound of
      the original DDG). *)

type claim = {
  original : Ir.Loop.t;        (** pre-partitioning body *)
  rewritten : Ir.Loop.t;       (** body with copies, as scheduled *)
  assignment : int Ir.Vreg.Map.t;
      (** bank per register, covering the rewritten body *)
  kernel : Sched.Kernel.t;     (** witness clustered kernel *)
  ddg : Ddg.Graph.t;           (** DDG of the rewritten body *)
  claimed_ii : int;
  claimed_copies : int;
  lower : int;                 (** claimed lower bound on any II *)
  optimal : bool;              (** solver says [claimed_ii = lower bound proven] *)
}

val check : machine:Mach.Machine.t -> claim -> Diag.t list
