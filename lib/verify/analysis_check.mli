(** Diagnostics from the independent dataflow analysis ([lib/analysis]).

    Bridges the analysis library's findings into the [AN0xx] diagnostic
    family: translation validation of the DDG (the analysis re-derives
    the dependence set from reaching-definitions facts and an affine
    address domain, then diffs it edge-by-edge against what [Ddg.Graph]
    built), transitively dead code only liveness iteration can see, and
    solver-convergence problems. See the code taxonomy in {!Diag}.

    The checker is total: an exception escaping the analysis engine is
    itself a finding (AN000), never a crash of the caller's pipeline. *)

val finding_diag : Analysis.Validate.finding -> Diag.t
(** The diagnostic for one DDG-diff finding — AN001/AN002 errors for the
    unsound directions, AN003–AN005 warnings for the conservative ones.
    Exposed so [rbp analyze] renders findings with the same codes the
    pipeline reports. *)

val check :
  ?obs:Obs.Trace.t ->
  ?ddg:Ddg.Graph.t ->
  ?latency:Mach.Latency.t ->
  ?remat_info:bool ->
  Ir.Loop.t ->
  Diag.t list
(** Validate [ddg] (built from the loop with [latency], default
    [Mach.Latency.paper], when absent — when present its own latency
    table wins so the comparison is apples-to-apples) against the
    independently derived dependence set, and report dead code.
    [remat_info] (default [false]) additionally emits AN008 info
    diagnostics for rematerializable constant-valued ops — off in the
    pipeline so [--strict] lints stay meaningful, on under
    [rbp analyze]. [obs] feeds the [analysis.*] counters. *)
