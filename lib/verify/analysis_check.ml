let op_loc op = Printf.sprintf "op %d (%s)" (Ir.Op.id op) (Ir.Op.to_string op)

let finding_diag (f : Analysis.Validate.finding) =
  let loc = Printf.sprintf "op %d -> op %d" f.Analysis.Validate.src f.Analysis.Validate.dst in
  let msg = Analysis.Validate.describe f in
  match f.Analysis.Validate.mismatch with
  | Analysis.Validate.Missing_in_ddg -> Diag.error Diag.Analysis ~code:"AN001" ~loc msg
  | Analysis.Validate.Distance_exceeds -> Diag.error Diag.Analysis ~code:"AN002" ~loc msg
  | Analysis.Validate.Extra_in_ddg -> Diag.warning Diag.Analysis ~code:"AN003" ~loc msg
  | Analysis.Validate.Distance_below -> Diag.warning Diag.Analysis ~code:"AN004" ~loc msg
  | Analysis.Validate.Latency_differs -> Diag.warning Diag.Analysis ~code:"AN005" ~loc msg

let syntactically_read ops =
  List.fold_left
    (fun s op ->
      List.fold_left (fun s r -> Ir.Vreg.Set.add r s) s (Ir.Op.uses op))
    Ir.Vreg.Set.empty ops

let check ?obs ?ddg ?(latency = Mach.Latency.paper) ?(remat_info = false) loop =
  try
    let ddg = match ddg with Some d -> d | None -> Ddg.Graph.of_loop ~latency loop in
    let latency = ddg.Ddg.Graph.latency in
    let live = Analysis.Liveness.of_loop loop in
    let vr = Analysis.Valrange.of_loop loop in
    let dep = Analysis.Depan.of_loop ~latency loop in
    let report = Analysis.Validate.run dep ddg in
    let iters st = st.Analysis.Solver.iterations in
    let wides st = st.Analysis.Solver.widenings in
    Obs.Trace.incr obs Obs.Counter.Analysis_iterations
      (iters live.Analysis.Liveness.stats
      + iters vr.Analysis.Valrange.stats
      + iters dep.Analysis.Depan.stats);
    Obs.Trace.incr obs Obs.Counter.Analysis_widened
      (wides live.Analysis.Liveness.stats
      + wides vr.Analysis.Valrange.stats
      + wides dep.Analysis.Depan.stats);
    Obs.Trace.incr obs Obs.Counter.Analysis_ddg_diff
      (List.length report.Analysis.Validate.findings);
    let diff = List.map finding_diag report.Analysis.Validate.findings in
    (* IR003 already flags definitions nothing ever reads; the dataflow
       version adds only the transitive tail of a dead chain — ops whose
       result is read, but exclusively by other dead ops. *)
    let read = syntactically_read (Ir.Loop.ops loop) in
    let dead =
      List.filter_map
        (fun op ->
          match Ir.Op.dst op with
          | Some d when Ir.Vreg.Set.mem d read ->
              Some
                (Diag.warning Diag.Analysis ~code:"AN006" ~loc:(op_loc op)
                   (Printf.sprintf
                      "register %s is read only by transitively dead code"
                      (Ir.Vreg.to_string d)))
          | _ -> None)
        (Analysis.Liveness.dead_ops loop)
    in
    let remat =
      if not remat_info then []
      else
        List.map
          (fun (op, v) ->
            Diag.info Diag.Analysis ~code:"AN008" ~loc:(op_loc op)
              (Printf.sprintf
                 "result is provably %d every iteration; rematerializable%s" v
                 (if Ir.Op.is_memory op then " (via its defining chain)" else "")))
          (Analysis.Valrange.constant_ops loop vr)
    in
    let converged =
      List.filter_map
        (fun (name, st) ->
          if st.Analysis.Solver.converged then None
          else
            Some
              (Diag.warning Diag.Analysis ~code:"AN007"
                 (Printf.sprintf "%s solve hit its iteration budget without converging"
                    name)))
        [
          ("liveness", live.Analysis.Liveness.stats);
          ("value-range", vr.Analysis.Valrange.stats);
          ("reaching-definitions", dep.Analysis.Depan.stats);
        ]
    in
    diff @ dead @ remat @ converged
  with exn ->
    [
      Diag.error Diag.Analysis ~code:"AN000"
        (Printf.sprintf "analysis engine failed: %s" (Printexc.to_string exn));
    ]
