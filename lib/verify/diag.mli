(** Diagnostics for the cross-stage pipeline verifier.

    Every analyzer in this library reports findings as a list of [t]:
    a stable error code, a severity, the pipeline stage the invariant
    belongs to, an optional location (an op, a register, a bank …) and a
    human-readable message. Codes are the contract the test suite and CLI
    pin down; messages are free to improve.

    {2 Code taxonomy}

    - [IR000]–[IR0xx] — intermediate-code shape ({!Ir_check}): parse
      failure (IR000), duplicate op ids (IR001), empty body (IR002),
      dead definitions (IR003), live-out registers absent from the body
      (IR004), operand class mismatches (IR005), shadowed definitions
      (IR006).
    - [SCH001]–[SCH0xx] — schedule legality ({!Sched_check}):
      unscheduled ops (SCH001), violated dependence edges (SCH002),
      oversubscribed resources (SCH003), invalid clusters (SCH004),
      placements of ops foreign to the DDG (SCH005).
    - [PT001]–[PT0xx] — partition / copy invariants
      ({!Partition_check}): unassigned registers (PT001), out-of-range
      banks (PT002), cross-bank operands surviving copy insertion
      (PT003), malformed copies (PT004), more copies than cross-bank
      value flow requires (PT005), per-bank pressure beyond the
      architectural file (PT006).
    - [AL001]–[AL0xx] — register-allocation validity ({!Alloc_check}):
      unmapped registers (AL001), invalid banks (AL002), register
      indices beyond the bank (AL003), simultaneously-live registers
      sharing one physical register (AL004), allocation contradicting
      the partition (AL005).
    - [AN000]–[AN0xx] — independent dataflow analysis
      ({!Analysis_check}): the analysis engine itself failed (AN000);
      translation validation of the DDG — a dependence the analysis
      requires is missing from the DDG (AN001) or present with a larger
      (weaker) distance (AN002), both unsoundness errors; a DDG edge the
      analysis cannot justify (AN003) or with a smaller distance than
      needed (AN004) and latency disagreements on matched edges (AN005),
      all precision warnings; transitively dead ops only liveness
      iteration can see (AN006, extending the syntactic IR003);
      a dataflow solve that hit its iteration budget without converging
      (AN007); rematerializable constant-valued ops (AN008, info,
      reported by [rbp analyze] only).
    - [EX001]–[EX0xx] — optimality-witness validation ({!Exact_check}),
      for solutions claimed by the branch-and-bound solver in
      [lib/exact]: claimed II disagreeing with the witness kernel
      (EX001); witness artifacts failing the independent schedule or
      partition analyzers (EX002); the rewritten body not being the
      original plus copies (EX003); claimed copy count disagreeing with
      the copies actually present (EX004); an incoherent bound —
      below 1 or above the claimed II (EX005); an [Optimal] claim whose
      II exceeds its own lower bound or undercuts the
      assignment-independent bound this library recomputes (EX006).
    - [PIPE001] — a pipeline stage failed outright, so downstream
      analyzers could not run. *)

type severity = Error | Warning | Info

type stage =
  | Ir         (** intermediate-code well-formedness *)
  | Sched      (** (modulo-)schedule legality *)
  | Partition  (** bank assignment + copy insertion *)
  | Alloc      (** per-bank register allocation *)
  | Analysis   (** independent dataflow analysis / DDG validation *)
  | Exact      (** optimality-witness validation for the exact solver *)
  | Pipe       (** stage-to-stage plumbing *)

type t = private {
  code : string;      (** stable, e.g. ["PT003"] *)
  severity : severity;
  stage : stage;
  loc : string option; (** op / register / bank the finding anchors to *)
  message : string;
}

val make : ?loc:string -> severity -> stage -> code:string -> string -> t
val error : ?loc:string -> stage -> code:string -> string -> t
val warning : ?loc:string -> stage -> code:string -> string -> t
val info : ?loc:string -> stage -> code:string -> string -> t

val severity_name : severity -> string
val stage_name : stage -> string

val to_string : t -> string
(** One-line rendering:
    [error[PT003] partition @ op 7: operand f3 lives in bank 1 …]. *)

val pp : Format.formatter -> t -> unit

val errors : t list -> t list
(** The error-severity subset. *)

val has_errors : t list -> bool

val has_code : string -> t list -> bool
(** Does any diagnostic carry this code? *)

val by_severity : t list -> t list
(** Stable sort: errors first, then warnings, then infos. *)

val summary : t list -> string
(** ["2 errors, 1 warning"]; ["clean"] when empty. *)
