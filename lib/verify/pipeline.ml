type alloc_view = {
  code : Ir.Op.t list;
  mapping : (int * int) Ir.Vreg.Map.t;
  live_out : Ir.Vreg.Set.t;
}

type stages = {
  machine : Mach.Machine.t;
  loop : Ir.Loop.t;
  ideal : (Ddg.Graph.t * Sched.Kernel.t) option;
  partition : (int Ir.Vreg.Map.t * Ir.Loop.t) option;
  clustered : (Ddg.Graph.t * Sched.Kernel.t) option;
  alloc : alloc_view option;
}

let stages ~machine loop =
  { machine; loop; ideal = None; partition = None; clustered = None; alloc = None }

let run ?obs s =
  let ir = Ir_check.loop s.loop in
  let ideal =
    match s.ideal with
    | None -> []
    | Some (ddg, kernel) ->
        Sched_check.kernel ~machine:(Mach.Machine.monolithic_of s.machine) ~ddg kernel
  in
  let partition =
    match s.partition with
    | None -> []
    | Some (assignment, rewritten) ->
        Partition_check.check ~machine:s.machine ~assignment ~original:s.loop rewritten
  in
  let clustered =
    match s.clustered with
    | None -> []
    | Some (ddg, kernel) -> Sched_check.kernel ~machine:s.machine ~ddg kernel
  in
  let alloc =
    match s.alloc with
    | None -> []
    | Some a ->
        let assignment = Option.map fst s.partition in
        Alloc_check.check ~machine:s.machine ?assignment ~mapping:a.mapping
          ~live_out:a.live_out a.code
  in
  (* Independent dataflow analysis last: it validates the DDGs the other
     stages were driven by, so its findings read as a postscript on them.
     The source loop is always checked (against the ideal-schedule DDG
     when present, a freshly built one otherwise); the copy-carrying
     rewritten body is checked against the clustered DDG. Copy insertion
     preserves op ids, so a finding on an untouched op (a dead chain,
     say) would repeat verbatim in the second pass — collapse exact
     duplicates, keeping first-occurrence order. *)
  let latency = s.machine.Mach.Machine.latency in
  let analysis =
    let both =
      Analysis_check.check ?obs ?ddg:(Option.map fst s.ideal) ~latency s.loop
      @
      match (s.partition, s.clustered) with
      | Some (_, rewritten), Some (ddg, _) ->
          Analysis_check.check ?obs ~ddg ~latency rewritten
      | Some (_, rewritten), None -> Analysis_check.check ?obs ~latency rewritten
      | None, _ -> []
    in
    List.fold_left (fun acc d -> if List.mem d acc then acc else d :: acc) [] both
    |> List.rev
  in
  ir @ ideal @ partition @ clustered @ alloc @ analysis

let verdict diags =
  match Diag.errors diags with
  | [] -> Ok ()
  | errs ->
      let shown = List.filteri (fun i _ -> i < 5) errs in
      let extra = List.length errs - List.length shown in
      let lines = List.map Diag.to_string shown in
      let lines =
        if extra > 0 then lines @ [ Printf.sprintf "… and %d more errors" extra ] else lines
      in
      Error (String.concat "\n" lines)
