type stage =
  | Ir_input
  | Ideal_schedule
  | Partitioning
  | Copy_insertion
  | Clustered_schedule
  | Allocation
  | Verification

type attempt = { at_stage : stage; rung : string; at_code : string; detail : string }

type t = {
  stage : stage;
  code : string;
  message : string;
  subject : string;
  attempts : attempt list;
}

let stage_name = function
  | Ir_input -> "ir-input"
  | Ideal_schedule -> "ideal-schedule"
  | Partitioning -> "partitioning"
  | Copy_insertion -> "copy-insertion"
  | Clustered_schedule -> "clustered-schedule"
  | Allocation -> "allocation"
  | Verification -> "verification"

let default_code = function
  | Ir_input -> "IR000"
  | Ideal_schedule -> "PIPE002"
  | Partitioning -> "PIPE003"
  | Copy_insertion -> "PIPE004"
  | Clustered_schedule -> "PIPE005"
  | Allocation -> "PIPE006"
  | Verification -> "PIPE007"

let attempt ?(rung = "") ?code stage detail =
  { at_stage = stage; rung; at_code = Option.value code ~default:(default_code stage); detail }

let make ?(attempts = []) ?code ~stage ~subject message =
  { stage; code = Option.value code ~default:(default_code stage); message; subject; attempts }

let of_diags ?(attempts = []) ?(stage = Verification) ~subject diags =
  match Diag.errors diags with
  | [] -> invalid_arg "Stage_error.of_diags: no error-severity diagnostic"
  | (first :: _) as errs ->
      let shown = List.filteri (fun i _ -> i < 3) errs in
      let extra = List.length errs - List.length shown in
      let lines = List.map Diag.to_string shown in
      let lines =
        if extra > 0 then lines @ [ Printf.sprintf "… and %d more errors" extra ] else lines
      in
      {
        stage;
        code = first.Diag.code;
        message = String.concat "; " lines;
        subject;
        attempts;
      }

let with_attempts t attempts = { t with attempts }

let attempt_to_string a =
  let rung = if a.rung = "" then "" else Printf.sprintf " (rung %s)" a.rung in
  Printf.sprintf "%s [%s]%s: %s" (stage_name a.at_stage) a.at_code rung a.detail

let to_string t =
  let tail =
    match List.length t.attempts with
    | 0 -> ""
    | 1 -> " (after 1 failed attempt)"
    | n -> Printf.sprintf " (after %d failed attempts)" n
  in
  Printf.sprintf "%s: %s [%s]: %s%s" t.subject (stage_name t.stage) t.code t.message tail

let trace t = List.map attempt_to_string t.attempts

let pp fmt t = Format.pp_print_string fmt (to_string t)
