let code_registers ops =
  List.fold_left
    (fun acc op ->
      List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op @ Ir.Op.uses op))
    Ir.Vreg.Set.empty ops

let mapping_shape ~machine ~assignment ~mapping regs =
  let m : Mach.Machine.t = machine in
  Ir.Vreg.Set.fold
    (fun r acc ->
      let loc = Ir.Vreg.to_string r in
      match Ir.Vreg.Map.find_opt r mapping with
      | None ->
          Diag.error Diag.Alloc ~code:"AL001" ~loc "register has no physical mapping" :: acc
      | Some (b, idx) ->
          let acc =
            if Mach.Machine.valid_cluster m b then acc
            else
              Diag.error Diag.Alloc ~code:"AL002" ~loc
                (Printf.sprintf "mapped to bank %d of a %d-bank machine" b m.clusters)
              :: acc
          in
          let acc =
            if idx >= 0 && idx < m.regs_per_bank then acc
            else
              Diag.error Diag.Alloc ~code:"AL003" ~loc
                (Printf.sprintf "register index %d outside the %d-register bank" idx
                   m.regs_per_bank)
              :: acc
          in
          (match assignment with
          | Some asn -> (
              match Ir.Vreg.Map.find_opt r asn with
              | Some b' when b' <> b ->
                  Diag.error Diag.Alloc ~code:"AL005" ~loc
                    (Printf.sprintf "allocated in bank %d but partitioned to bank %d" b b')
                  :: acc
              | _ -> acc)
          | None -> acc))
    regs []
  |> List.rev

(* Same-physical-register conflicts, independently rederived: at every
   program point, all live registers must occupy distinct physical
   registers; and a definition clobbers its physical register, so
   nothing else may be live in it just after the defining op (except a
   copy's own source, the coalescing exception). *)
let conflicts ~mapping ~live_out ops =
  let phys r = Ir.Vreg.Map.find_opt r mapping in
  let seen = Hashtbl.create 16 in
  let findings = ref [] in
  let conflict r1 r2 why =
    let a, b = if Ir.Vreg.id r1 <= Ir.Vreg.id r2 then (r1, r2) else (r2, r1) in
    let key = (Ir.Vreg.id a, Ir.Vreg.id b) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      findings :=
        Diag.error Diag.Alloc ~code:"AL004"
          ~loc:(Printf.sprintf "%s / %s" (Ir.Vreg.to_string a) (Ir.Vreg.to_string b))
          why
        :: !findings
    end
  in
  let pairwise live =
    let by_phys = Hashtbl.create 16 in
    Ir.Vreg.Set.iter
      (fun r ->
        match phys r with
        | None -> ()
        | Some p ->
            (match Hashtbl.find_opt by_phys p with
            | Some r' ->
                conflict r r'
                  (Printf.sprintf "simultaneously live registers share bank %d register %d"
                     (fst p) (snd p))
            | None -> ());
            Hashtbl.replace by_phys p r)
      live
  in
  let sets = Live.backward ops ~live_out in
  Array.iter pairwise sets;
  List.iteri
    (fun i op ->
      match Ir.Op.dst op with
      | None -> ()
      | Some d -> (
          match phys d with
          | None -> ()
          | Some p ->
              let after = sets.(i + 1) in
              let coalesced r =
                Ir.Op.is_copy op && List.exists (Ir.Vreg.equal r) (Ir.Op.srcs op)
              in
              Ir.Vreg.Set.iter
                (fun r ->
                  if (not (Ir.Vreg.equal r d)) && (not (coalesced r)) && phys r = Some p
                  then
                    conflict d r
                      (Printf.sprintf
                         "definition at op %d clobbers bank %d register %d while it is live"
                         (Ir.Op.id op) (fst p) (snd p)))
                after))
    ops;
  List.rev !findings

let check ~machine ?assignment ~mapping ~live_out ops =
  let regs = code_registers ops in
  mapping_shape ~machine ~assignment ~mapping regs @ conflicts ~mapping ~live_out ops
