type claim = {
  original : Ir.Loop.t;
  rewritten : Ir.Loop.t;
  assignment : int Ir.Vreg.Map.t;
  kernel : Sched.Kernel.t;
  ddg : Ddg.Graph.t;
  claimed_ii : int;
  claimed_copies : int;
  lower : int;
  optimal : bool;
}

let err = Diag.error Diag.Exact

let check ~machine c =
  let out = ref [] in
  let add d = out := d :: !out in
  (* EX001: the kernel is the witness; the claimed II must be its II. *)
  let kii = Sched.Kernel.ii c.kernel in
  if kii <> c.claimed_ii then
    add
      (err ~code:"EX001"
         (Printf.sprintf "claimed II %d but the witness kernel has II %d" c.claimed_ii kii));
  (* EX002: the witness artifacts must satisfy the independent analyzers. *)
  let sub =
    Diag.errors
      (Sched_check.kernel ~machine ~ddg:c.ddg c.kernel
      @ Partition_check.check ~machine ~assignment:c.assignment ~original:c.original
          c.rewritten)
  in
  if sub <> [] then
    add
      (err ~code:"EX002"
         (Printf.sprintf "witness artifacts fail independent verification (%s)"
            (Diag.summary sub)));
  List.iter add sub;
  (* EX003: stripping the copies must give back the original body. *)
  let stripped = List.filter (fun op -> not (Ir.Op.is_copy op)) (Ir.Loop.ops c.rewritten) in
  let orig = Ir.Loop.ops c.original in
  let same =
    List.length stripped = List.length orig && List.for_all2 Ir.Op.equal stripped orig
  in
  if not same then
    add (err ~code:"EX003" "rewritten body minus copies is not the original body");
  (* EX004: claimed copy count vs the copies actually present. *)
  let present = List.length (List.filter Ir.Op.is_copy (Ir.Loop.ops c.rewritten)) in
  if present <> c.claimed_copies then
    add
      (err ~code:"EX004"
         (Printf.sprintf "claimed %d copies but the rewritten body carries %d"
            c.claimed_copies present));
  (* EX005: the bound must be coherent with the II it bounds. *)
  if c.lower < 1 || c.lower > c.claimed_ii then
    add
      (err ~code:"EX005"
         (Printf.sprintf "lower bound %d is incoherent with claimed II %d" c.lower
            c.claimed_ii));
  (* EX006: optimality means tight, and never below the assignment-independent
     bound this library can recompute on its own. *)
  if c.optimal then begin
    if c.claimed_ii <> c.lower then
      add
        (err ~code:"EX006"
           (Printf.sprintf "optimal claim with II %d above its own lower bound %d"
              c.claimed_ii c.lower));
    let oddg = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency c.original in
    let static =
      max
        (Ddg.Minii.res_mii ~width:(Mach.Machine.width machine) (Ddg.Graph.size oddg))
        (Ddg.Minii.rec_mii oddg)
    in
    if c.claimed_ii < static then
      add
        (err ~code:"EX006"
           (Printf.sprintf
              "optimal claim with II %d below the recomputed machine-level bound %d"
              c.claimed_ii static))
  end;
  List.rev !out
