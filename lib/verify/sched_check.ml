let op_loc op = Printf.sprintf "op %d (%s)" (Ir.Op.id op) (Ir.Op.to_string op)

let coverage ~ddg placed =
  let scheduled = Hashtbl.create 32 in
  List.iter (fun (p : Sched.Schedule.placement) -> Hashtbl.replace scheduled (Ir.Op.id p.op) ())
    placed;
  let ddg_ids = Hashtbl.create 32 in
  List.iter (fun op -> Hashtbl.replace ddg_ids (Ir.Op.id op) ()) (Ddg.Graph.ops_in_order ddg);
  let missing =
    List.filter_map
      (fun op ->
        if Hashtbl.mem scheduled (Ir.Op.id op) then None
        else
          Some
            (Diag.error Diag.Sched ~code:"SCH001" ~loc:(op_loc op)
               "operation is not scheduled"))
      (Ddg.Graph.ops_in_order ddg)
  in
  let foreign =
    List.filter_map
      (fun (p : Sched.Schedule.placement) ->
        if Hashtbl.mem ddg_ids (Ir.Op.id p.op) then None
        else
          Some
            (Diag.error Diag.Sched ~code:"SCH005" ~loc:(op_loc p.op)
               "scheduled operation does not belong to the dependence graph"))
      placed
  in
  missing @ foreign

(* Every edge: t(dst) - t(src) >= latency - ii * distance. A flat
   schedule is the ii = infinity case restricted to distance-0 edges. *)
let edges ~graph ~ii cycle_of =
  List.rev
    (Graphlib.Digraph.fold_edges
       (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) acc ->
         match (cycle_of e.src, cycle_of e.dst) with
         | Some ts, Some td ->
             let need = Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label) in
             if td - ts >= need then acc
             else
               Diag.error Diag.Sched ~code:"SCH002"
                 ~loc:(Printf.sprintf "edge %d->%d" e.src e.dst)
                 (Printf.sprintf "%s dependence violated: cycle %d - %d < %d"
                    (Ddg.Dep.to_string e.label) td ts need)
               :: acc
         | None, _ | _, None -> acc (* reported by coverage *))
       graph [])

(* Per-(cluster, normalized cycle) capacity counting. Specialized unit
   mixes use Hall's condition: each class's demand beyond its dedicated
   units must fit in the General pool. *)
let resources ~machine ~normalize placed =
  let m : Mach.Machine.t = machine in
  let fu_slots = Hashtbl.create 64 in     (* (cluster, slot) -> fu ops *)
  let class_demand = Hashtbl.create 64 in (* (cluster, slot, class) -> ops *)
  let ports = Hashtbl.create 16 in        (* (cluster, slot) -> copies *)
  let busses = Hashtbl.create 16 in       (* slot -> copies *)
  let bad_cluster = ref [] in
  List.iter
    (fun (p : Sched.Schedule.placement) ->
      if not (Mach.Machine.valid_cluster m p.cluster) then
        bad_cluster :=
          Diag.error Diag.Sched ~code:"SCH004" ~loc:(op_loc p.op)
            (Printf.sprintf "placed on cluster %d of a %d-cluster machine" p.cluster
               m.clusters)
          :: !bad_cluster
      else begin
        let slot = normalize p.cycle in
        let bump tbl key = Hashtbl.replace tbl key
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
        in
        match (m.copy_model, Ir.Op.is_copy p.op) with
        | Mach.Machine.Copy_unit, true ->
            bump ports (p.cluster, slot);
            bump busses slot
        | (Mach.Machine.Embedded | Mach.Machine.Copy_unit), _ ->
            bump fu_slots (p.cluster, slot);
            if not (Mach.Machine.is_general_only m) then
              List.iter
                (fun fc -> bump class_demand (p.cluster, slot, fc))
                (Mach.Machine.allowed_classes (Ir.Op.opcode p.op) (Ir.Op.cls p.op))
      end)
    placed;
  let over tbl cap what =
    Hashtbl.fold
      (fun key n acc ->
        if n <= cap then acc
        else
          Diag.error Diag.Sched ~code:"SCH003" ~loc:(what key)
            (Printf.sprintf "%d issued where capacity is %d" n cap)
          :: acc)
      tbl []
  in
  let fu_over =
    over fu_slots m.fus_per_cluster (fun (c, s) ->
        Printf.sprintf "functional units, cluster %d slot %d" c s)
  in
  let port_over =
    over ports m.copy_ports (fun (c, s) -> Printf.sprintf "copy ports, cluster %d slot %d" c s)
  in
  let bus_over = over busses m.busses (fun s -> Printf.sprintf "busses, slot %d" s) in
  let hall =
    if Mach.Machine.is_general_only m then []
    else begin
      let cap_of fc = Option.value ~default:0 (List.assoc_opt fc m.fu_mix) in
      let general = cap_of Mach.Machine.General in
      let by_slot = Hashtbl.create 32 in
      Hashtbl.iter
        (fun (c, s, fc) n ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_slot (c, s)) in
          Hashtbl.replace by_slot (c, s) ((fc, n) :: cur))
        class_demand;
      Hashtbl.fold
        (fun (c, s) demands acc ->
          let overflow =
            List.fold_left (fun acc (fc, n) -> acc + max 0 (n - cap_of fc)) 0 demands
          in
          if overflow <= general then acc
          else
            Diag.error Diag.Sched ~code:"SCH003"
              ~loc:(Printf.sprintf "specialized units, cluster %d slot %d" c s)
              (Printf.sprintf "class overflow %d exceeds %d general units" overflow general)
            :: acc)
        by_slot []
    end
  in
  !bad_cluster @ fu_over @ port_over @ bus_over @ hall

let kernel ~machine ~ddg k =
  let placed = Sched.Kernel.placements k in
  let ii = Sched.Kernel.ii k in
  let cycle_of id = try Some (Sched.Kernel.cycle_of k id) with Not_found -> None in
  coverage ~ddg placed
  @ edges ~graph:(Ddg.Graph.graph ddg) ~ii cycle_of
  @ resources ~machine ~normalize:(fun c -> c mod ii) placed

let flat ~machine ~ddg sched =
  let placed = Sched.Schedule.placements sched in
  let cycle_of id = try Some (Sched.Schedule.cycle_of sched id) with Not_found -> None in
  coverage ~ddg placed
  @ edges ~graph:(Ddg.Graph.loop_independent ddg) ~ii:0 cycle_of
  @ resources ~machine ~normalize:(fun c -> c) placed
