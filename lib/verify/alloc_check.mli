(** Register-allocation validity analysis (codes AL001–AL005).

    Re-derives live ranges with {!Live} and checks the final
    register-to-(bank, index) mapping from the colouring definition: no
    two simultaneously live registers of one bank may share a physical
    register, and a definition clobbers whatever shares its physical
    register at that point (the copy-coalescing exception applies: a
    copy's destination may share with the source it reads).

    - AL001 (error): a register of the code with no physical mapping.
    - AL002 (error): a mapping naming a bank the machine lacks.
    - AL003 (error): a register index outside [regs_per_bank].
    - AL004 (error): two simultaneously live registers sharing one
      physical register, or a definition clobbering a live register.
    - AL005 (error): the mapping places a register in a different bank
      than the partition assignment — the allocator ignored the
      partition. *)

val check :
  machine:Mach.Machine.t ->
  ?assignment:int Ir.Vreg.Map.t ->
  mapping:(int * int) Ir.Vreg.Map.t ->
  live_out:Ir.Vreg.Set.t ->
  Ir.Op.t list ->
  Diag.t list
(** Check allocated straight-line code (a loop body should pass its
    wrap-around live-out, e.g. {!Live.loop_live_out}). [assignment]
    enables the AL005 cross-check against the partition. *)
