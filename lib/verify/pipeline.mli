(** Cross-stage verification driver.

    One loop flows through the paper's framework as a growing set of
    stage artifacts: the source body, the ideal modulo schedule, the
    bank assignment with its rewritten (copy-carrying) body, the
    clustered modulo schedule, and finally a per-bank register
    allocation. [run] threads whatever artifacts are present through
    every applicable analyzer and aggregates the diagnostics:

    - the source loop through {!Ir_check};
    - the ideal kernel through {!Sched_check} on the monolithic
      counterpart machine;
    - assignment + rewritten body through {!Partition_check} (with
      copy-count minimality against the source);
    - the clustered kernel through {!Sched_check};
    - the allocation through {!Alloc_check} (cross-checked against the
      partition);
    - the source and rewritten bodies through {!Analysis_check}, the
      independent dataflow engine's translation validation of the DDGs.

    Producers stay untrusted: every analyzer recomputes its invariant
    from definitions. *)

type alloc_view = {
  code : Ir.Op.t list;        (** allocated code, incl. any spill code *)
  mapping : (int * int) Ir.Vreg.Map.t;  (** register -> (bank, index) *)
  live_out : Ir.Vreg.Set.t;   (** live-out the allocation ran against *)
}

type stages = {
  machine : Mach.Machine.t;
  loop : Ir.Loop.t;
  ideal : (Ddg.Graph.t * Sched.Kernel.t) option;
      (** source DDG + ideal kernel (scheduled on the monolithic
          counterpart of [machine]) *)
  partition : (int Ir.Vreg.Map.t * Ir.Loop.t) option;
      (** bank assignment + rewritten body *)
  clustered : (Ddg.Graph.t * Sched.Kernel.t) option;
      (** rewritten-body DDG + clustered kernel *)
  alloc : alloc_view option;
}

val stages : machine:Mach.Machine.t -> Ir.Loop.t -> stages
(** A stage set holding only the source loop; fill fields in as the
    pipeline produces them. *)

val run : ?obs:Obs.Trace.t -> stages -> Diag.t list
(** Every applicable analyzer over every present artifact, in pipeline
    order, ending with the independent dataflow analysis
    ({!Analysis_check}): the source loop is validated against the ideal
    DDG (or a freshly built one), the rewritten body against the
    clustered DDG. [obs] feeds the [analysis.*] counters. *)

val verdict : Diag.t list -> (unit, string) Stdlib.result
(** [Ok ()] when no error-severity diagnostic is present, otherwise an
    [Error] rendering the first few errors one per line. *)
