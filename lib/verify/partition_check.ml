let op_loc op = Printf.sprintf "op %d (%s)" (Ir.Op.id op) (Ir.Op.to_string op)

let bank_of assignment r = Ir.Vreg.Map.find_opt r assignment

(* An operation executes where its destination lives; a store (or nop)
   where its first source lives; register-free ops default to bank 0. *)
let cluster_of_op assignment op =
  match Ir.Op.dst op with
  | Some d -> bank_of assignment d
  | None -> ( match Ir.Op.srcs op with r :: _ -> bank_of assignment r | [] -> Some 0)

let code_registers ops =
  List.fold_left
    (fun acc op ->
      List.fold_left (fun s r -> Ir.Vreg.Set.add r s) acc (Ir.Op.defs op @ Ir.Op.uses op))
    Ir.Vreg.Set.empty ops

let coverage ~machine ~assignment ops =
  let m : Mach.Machine.t = machine in
  Ir.Vreg.Set.fold
    (fun r acc ->
      match bank_of assignment r with
      | None ->
          Diag.error Diag.Partition ~code:"PT001" ~loc:(Ir.Vreg.to_string r)
            "register has no bank assignment"
          :: acc
      | Some b when not (Mach.Machine.valid_cluster m b) ->
          Diag.error Diag.Partition ~code:"PT002" ~loc:(Ir.Vreg.to_string r)
            (Printf.sprintf "assigned to bank %d of a %d-bank machine" b m.clusters)
          :: acc
      | Some _ -> acc)
    (code_registers ops) []
  |> List.rev

let locality ~assignment ops =
  List.concat_map
    (fun op ->
      if Ir.Op.is_copy op then []
      else
        match cluster_of_op assignment op with
        | None -> [] (* covered by PT001 *)
        | Some cluster ->
            List.filter_map
              (fun r ->
                match bank_of assignment r with
                | Some b when b <> cluster ->
                    Some
                      (Diag.error Diag.Partition ~code:"PT003" ~loc:(op_loc op)
                         (Printf.sprintf
                            "operand %s lives in bank %d but the operation executes on \
                             cluster %d"
                            (Ir.Vreg.to_string r) b cluster))
                | _ -> None)
              (Ir.Op.uses op))
    ops

let copy_shape ~assignment ops =
  List.concat_map
    (fun op ->
      if not (Ir.Op.is_copy op) then []
      else
        let malformed msg = [ Diag.error Diag.Partition ~code:"PT004" ~loc:(op_loc op) msg ] in
        match (Ir.Op.dst op, Ir.Op.srcs op) with
        | Some d, [ s ] -> (
            if Ir.Vreg.cls d <> Ir.Vreg.cls s then
              malformed "copy changes the register class"
            else
              match (bank_of assignment d, bank_of assignment s) with
              | Some bd, Some bs when bd = bs ->
                  malformed (Printf.sprintf "copy within bank %d moves nothing" bd)
              | _ -> [])
        | _ -> malformed "copy must read exactly one register and write one")
    ops

(* Which value of register r does a use at body position q read?  The
   cache key of a minimal copy-reuse scheme is (register, consuming
   cluster, reaching value). *)
type reaching = Invariant | Carried | Same_iter of int

let minimal_copies ~assignment loop =
  let ops = Array.of_list (Ir.Loop.ops loop) in
  let def_positions = Hashtbl.create 32 in
  Array.iteri
    (fun i op ->
      List.iter
        (fun d ->
          let k = Ir.Vreg.id d in
          Hashtbl.replace def_positions k
            (Option.value ~default:[] (Hashtbl.find_opt def_positions k) @ [ i ]))
        (Ir.Op.defs op))
    ops;
  let classify r q =
    match Hashtbl.find_opt def_positions (Ir.Vreg.id r) with
    | None | Some [] -> Invariant
    | Some positions -> (
        match List.rev (List.filter (fun p -> p < q) positions) with
        | [] -> Carried
        | p :: _ -> Same_iter p)
  in
  let transfers = Hashtbl.create 16 in
  Array.iteri
    (fun q op ->
      match cluster_of_op assignment op with
      | None -> ()
      | Some cluster ->
          List.iter
            (fun r ->
              match bank_of assignment r with
              | Some b when b <> cluster ->
                  Hashtbl.replace transfers (Ir.Vreg.id r, cluster, classify r q) ()
              | _ -> ())
            (Ir.Op.uses op))
    ops;
  Hashtbl.length transfers

let copy_minimality ~assignment ~original rewritten =
  let emitted = List.length (List.filter Ir.Op.is_copy (Ir.Loop.ops rewritten)) in
  let needed = minimal_copies ~assignment original in
  if emitted > needed then
    [
      Diag.warning Diag.Partition ~code:"PT005" ~loc:(Ir.Loop.name rewritten)
        (Printf.sprintf "%d copies emitted where %d cross-bank transfers suffice" emitted
           needed);
    ]
  else []

let pressure ~machine ~assignment loop =
  let m : Mach.Machine.t = machine in
  let ops = Ir.Loop.ops loop in
  let sets = Live.backward ops ~live_out:(Live.loop_live_out loop) in
  let worst = Array.make m.clusters 0 in
  Array.iter
    (fun live ->
      let per_bank = Array.make m.clusters 0 in
      Ir.Vreg.Set.iter
        (fun r ->
          match bank_of assignment r with
          | Some b when Mach.Machine.valid_cluster m b ->
              per_bank.(b) <- per_bank.(b) + 1
          | _ -> ())
        live;
      Array.iteri (fun b n -> if n > worst.(b) then worst.(b) <- n) per_bank)
    sets;
  let findings = ref [] in
  Array.iteri
    (fun b n ->
      if n > m.regs_per_bank then
        findings :=
          Diag.warning Diag.Partition ~code:"PT006" ~loc:(Printf.sprintf "bank %d" b)
            (Printf.sprintf "%d registers simultaneously live but the bank holds %d" n
               m.regs_per_bank)
          :: !findings)
    worst;
  List.rev !findings

let check ~machine ~assignment ?original rewritten =
  let ops = Ir.Loop.ops rewritten in
  coverage ~machine ~assignment ops
  @ locality ~assignment ops
  @ copy_shape ~assignment ops
  @ (match original with
    | Some o -> copy_minimality ~assignment ~original:o rewritten
    | None -> [])
  @ pressure ~machine ~assignment rewritten

let check_block ~machine ~assignment block =
  let ops = Ir.Block.ops block in
  if ops = [] then []
  else
    coverage ~machine ~assignment ops
    @ locality ~assignment ops
    @ copy_shape ~assignment ops
