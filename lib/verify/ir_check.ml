let op_loc op = Printf.sprintf "op %d (%s)" (Ir.Op.id op) (Ir.Op.to_string op)

let duplicate_ids ops =
  let seen = Hashtbl.create 32 in
  List.filter_map
    (fun op ->
      let id = Ir.Op.id op in
      if Hashtbl.mem seen id then
        Some
          (Diag.error Diag.Ir ~code:"IR001" ~loc:(op_loc op)
             (Printf.sprintf "duplicate operation id %d" id))
      else begin
        Hashtbl.add seen id ();
        None
      end)
    ops

let dead_defs ~live_out ops =
  let used =
    List.fold_left
      (fun s op -> List.fold_left (fun s u -> Ir.Vreg.Set.add u s) s (Ir.Op.uses op))
      Ir.Vreg.Set.empty ops
  in
  List.concat_map
    (fun op ->
      List.filter_map
        (fun d ->
          if Ir.Vreg.Set.mem d used || Ir.Vreg.Set.mem d live_out then None
          else
            Some
              (Diag.warning Diag.Ir ~code:"IR003" ~loc:(op_loc op)
                 (Printf.sprintf "register %s is defined but never read and not live-out"
                    (Ir.Vreg.to_string d))))
        (Ir.Op.defs op))
    ops

let class_mismatches ops =
  List.filter_map
    (fun op ->
      match Ir.Op.dst op with
      | Some d when Ir.Vreg.cls d <> Ir.Op.cls op ->
          Some
            (Diag.warning Diag.Ir ~code:"IR005" ~loc:(op_loc op)
               (Printf.sprintf "destination %s has class %s but the operation has class %s"
                  (Ir.Vreg.to_string d)
                  (Mach.Rclass.to_string (Ir.Vreg.cls d))
                  (Mach.Rclass.to_string (Ir.Op.cls op))))
      | _ -> None)
    ops

(* A def shadowed by a later def of the same register with no
   intervening read is dead: in-iteration consumers read positionally
   later, and a loop-carried read sees the *last* def of the previous
   iteration, never an earlier one. *)
let shadowed_defs ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let findings = ref [] in
  for p1 = 0 to n - 1 do
    List.iter
      (fun d ->
        let rec scan q =
          if q < n then
            if List.exists (Ir.Vreg.equal d) (Ir.Op.uses arr.(q)) then ()
            else if List.exists (Ir.Vreg.equal d) (Ir.Op.defs arr.(q)) then
              findings :=
                Diag.warning Diag.Ir ~code:"IR006" ~loc:(op_loc arr.(p1))
                  (Printf.sprintf "definition of %s is shadowed by op %d before any read"
                     (Ir.Vreg.to_string d)
                     (Ir.Op.id arr.(q)))
                :: !findings
            else scan (q + 1)
        in
        scan (p1 + 1))
      (Ir.Op.defs arr.(p1))
  done;
  List.rev !findings

let ops ?(live_out = Ir.Vreg.Set.empty) ops =
  if ops = [] then [ Diag.error Diag.Ir ~code:"IR002" "empty body" ]
  else
    duplicate_ids ops @ dead_defs ~live_out ops @ class_mismatches ops
    @ shadowed_defs ops

let loop l =
  let body = Ir.Loop.ops l in
  let present =
    List.fold_left
      (fun s op ->
        List.fold_left (fun s r -> Ir.Vreg.Set.add r s) s
          (Ir.Op.defs op @ Ir.Op.uses op))
      Ir.Vreg.Set.empty body
  in
  let missing_live_out =
    Ir.Vreg.Set.fold
      (fun r acc ->
        if Ir.Vreg.Set.mem r present then acc
        else
          Diag.error Diag.Ir ~code:"IR004" ~loc:(Ir.Vreg.to_string r)
            (Printf.sprintf "live-out register %s appears nowhere in the body of %s"
               (Ir.Vreg.to_string r) (Ir.Loop.name l))
          :: acc)
      (Ir.Loop.live_out l) []
  in
  missing_live_out @ ops ~live_out:(Live.loop_live_out l) body

let func f =
  let all_ops = List.concat_map Ir.Block.ops (Ir.Func.blocks f) in
  let dups = duplicate_ids all_ops in
  (* Per block: everything but dead-defs (a def may be read in another
     block; block-local dead-def analysis would be unsound). *)
  let per_block =
    List.concat_map
      (fun b ->
        let bops = Ir.Block.ops b in
        duplicate_ids bops @ class_mismatches bops)
      (Ir.Func.blocks f)
  in
  (* Function-level dead defs: never read in any block, not an exit value
     we can see — report only as warnings. *)
  dups @ per_block @ dead_defs ~live_out:Ir.Vreg.Set.empty all_ops
  |> List.sort_uniq compare
