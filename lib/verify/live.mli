(** Minimal liveness, written from the dataflow definitions.

    The verifier must not trust the producers it checks, so it carries
    its own liveness rather than reusing [Regalloc.Liveness] (which the
    allocator under test is built on). Straight-line liveness is one
    backward pass; a loop body wraps around: a register read before it
    is redefined is live across the back edge, and loop invariants are
    live throughout. *)

val backward : Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> Ir.Vreg.Set.t array
(** [backward ops ~live_out] has [length ops + 1] entries: entry [i] is
    the set live immediately {e before} op [i]; the last entry is
    [live_out] itself. *)

val loop_live_out : Ir.Loop.t -> Ir.Vreg.Set.t
(** Declared live-outs, plus every register carried into the next
    iteration (read before any in-body redefinition), plus loop
    invariants (registers with no in-body definition). *)
