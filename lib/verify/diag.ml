type severity = Error | Warning | Info

type stage = Ir | Sched | Partition | Alloc | Analysis | Exact | Pipe

type t = {
  code : string;
  severity : severity;
  stage : stage;
  loc : string option;
  message : string;
}

let make ?loc severity stage ~code message = { code; severity; stage; loc; message }
let error ?loc stage ~code message = make ?loc Error stage ~code message
let warning ?loc stage ~code message = make ?loc Warning stage ~code message
let info ?loc stage ~code message = make ?loc Info stage ~code message

let severity_name = function Error -> "error" | Warning -> "warning" | Info -> "info"

let stage_name = function
  | Ir -> "ir"
  | Sched -> "sched"
  | Partition -> "partition"
  | Alloc -> "alloc"
  | Analysis -> "analysis"
  | Exact -> "exact"
  | Pipe -> "pipeline"

let to_string d =
  let loc = match d.loc with None -> "" | Some l -> " @ " ^ l in
  Printf.sprintf "%s[%s] %s%s: %s" (severity_name d.severity) d.code (stage_name d.stage)
    loc d.message

let pp fmt d = Format.pp_print_string fmt (to_string d)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let has_code code ds = List.exists (fun d -> String.equal d.code code) ds

let rank = function Error -> 0 | Warning -> 1 | Info -> 2
let by_severity ds = List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) ds

let summary ds =
  let n sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  let part count noun = Printf.sprintf "%d %s%s" count noun (if count = 1 then "" else "s") in
  let parts =
    List.filter_map
      (fun (sev, noun) ->
        let c = n sev in
        if c = 0 then None else Some (part c noun))
      [ (Error, "error"); (Warning, "warning"); (Info, "info") ]
  in
  if parts = [] then "clean" else String.concat ", " parts
