(** Schedule-legality analysis (codes SCH001–SCH005).

    Re-verifies a schedule against the machine description and the DDG
    from the definitions alone — modulo legality is
    [t(dst) - t(src) >= latency - II * distance], resource legality is
    per-(cluster, slot) capacity counting with Hall's condition for
    specialized unit mixes — so scheduler bugs cannot vouch for
    themselves. Unlike [Sched.Check], findings are itemized diagnostics
    rather than a single first-failure string:

    - SCH001 (error): a DDG operation missing from the schedule.
    - SCH002 (error): a violated dependence edge.
    - SCH003 (error): an oversubscribed functional unit, copy port or
      bus.
    - SCH004 (error): a placement on a cluster the machine lacks.
    - SCH005 (error): a scheduled operation the DDG does not contain. *)

val kernel : machine:Mach.Machine.t -> ddg:Ddg.Graph.t -> Sched.Kernel.t -> Diag.t list
(** Check a modulo-schedule kernel; clusters come from the kernel's own
    placements, resource usage is folded by II. *)

val flat : machine:Mach.Machine.t -> ddg:Ddg.Graph.t -> Sched.Schedule.t -> Diag.t list
(** Check a straight-line schedule against the DDG's loop-independent
    edges, with unfolded per-cycle resource counting. *)
