(** Partition / copy-insertion analysis (codes PT001–PT006).

    After step 4 of the paper's framework every operand must be
    bank-local: an operation executes on the cluster of its destination
    register (a store on its value's cluster), and each source must
    live in that same bank, cross-bank values having been routed
    through explicit [Copy] operations. These checks re-derive operand
    locality from that definition alone — no reuse of
    [Partition.Copies] internals:

    - PT001 (error): a register of the code with no bank assignment.
    - PT002 (error): an assignment naming a bank the machine lacks.
    - PT003 (error): a non-copy operation reading a register from
      another bank — copy insertion failed or the assignment was
      corrupted after it.
    - PT004 (error): a malformed copy — wrong operand shape, a
      same-bank (pointless) copy, or a class-changing copy.
    - PT005 (warning): more copies in the rewritten body than distinct
      cross-bank (register, consuming cluster, reaching value)
      transfers require — copy reuse failed.
    - PT006 (warning): a bank whose maximum number of simultaneously
      live registers exceeds the architectural file, so per-bank
      colouring is guaranteed to spill. *)

val check :
  machine:Mach.Machine.t ->
  assignment:int Ir.Vreg.Map.t ->
  ?original:Ir.Loop.t ->
  Ir.Loop.t ->
  Diag.t list
(** Check a rewritten (post-copy-insertion) loop body. [original] is
    the pre-insertion body; when given, the copy count is compared
    against the minimal number of cross-bank transfers (PT005). *)

val check_block :
  machine:Mach.Machine.t -> assignment:int Ir.Vreg.Map.t -> Ir.Block.t -> Diag.t list
(** Straight-line variant for the whole-function path: locality and
    copy well-formedness only (blocks carry no live-out information, so
    no pressure finding). *)
