(** Intermediate-code shape analysis (codes IR001–IR006).

    Checks written from the IR's documented invariants, independent of
    the [Ir.Loop.make]/[Ir.Func.make] validation (which a mutated or
    hand-built artifact may have bypassed):

    - IR001 (error): duplicate operation ids.
    - IR002 (error): empty body.
    - IR003 (warning): dead definition — a register defined, never read
      and not live-out.
    - IR004 (error): a declared live-out register that appears nowhere
      in the body, so the loop cannot produce it.
    - IR005 (warning): an operation whose destination register class
      disagrees with the operation's own class.
    - IR006 (warning): shadowed definition — a register redefined before
      any read of the previous definition. *)

val ops : ?live_out:Ir.Vreg.Set.t -> Ir.Op.t list -> Diag.t list
(** Check a raw operation list (straight-line or loop body).
    [live_out] (default empty) suppresses dead-def findings. *)

val loop : Ir.Loop.t -> Diag.t list
(** Check a loop body; loop invariants and carried values are treated as
    live-out for the dead-def analysis, and declared live-outs are
    checked for presence (IR004). *)

val func : Ir.Func.t -> Diag.t list
(** Check every block of a function plus cross-block id uniqueness. *)
