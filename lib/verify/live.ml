let backward ops ~live_out =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let sets = Array.make (n + 1) live_out in
  for i = n - 1 downto 0 do
    let op = arr.(i) in
    let after = sets.(i + 1) in
    let minus_defs =
      List.fold_left (fun s d -> Ir.Vreg.Set.remove d s) after (Ir.Op.defs op)
    in
    sets.(i) <-
      List.fold_left (fun s u -> Ir.Vreg.Set.add u s) minus_defs (Ir.Op.uses op)
  done;
  sets

let loop_live_out loop =
  let ops = Ir.Loop.ops loop in
  (* First definition position of each register, if any. *)
  let first_def = Hashtbl.create 32 in
  List.iteri
    (fun i op ->
      List.iter
        (fun d ->
          if not (Hashtbl.mem first_def (Ir.Vreg.id d)) then
            Hashtbl.add first_def (Ir.Vreg.id d) i)
        (Ir.Op.defs op))
    ops;
  (* Carried or invariant: some use at position q precedes every def. *)
  let carried = ref Ir.Vreg.Set.empty in
  List.iteri
    (fun q op ->
      List.iter
        (fun u ->
          match Hashtbl.find_opt first_def (Ir.Vreg.id u) with
          | None -> carried := Ir.Vreg.Set.add u !carried (* invariant *)
          | Some d when q <= d -> carried := Ir.Vreg.Set.add u !carried
          | Some _ -> ())
        (Ir.Op.uses op))
    ops;
  Ir.Vreg.Set.union (Ir.Loop.live_out loop) !carried
