(** Independent dependence analysis over loop bodies.

    Recomputes the full dependence set of a single-block loop — register
    flow/anti/output and memory ordering, with cross-iteration
    distances — from first principles: register dependences fall out of
    the {!Reachdef} dataflow facts (a use reading a definition at
    distance [d] {e is} a flow dependence at distance [d]; a
    same-iteration read forbids later redefinitions, giving anti edges),
    and memory dependences from the {!Aaddr} affine solve. Nothing here
    consults [Ddg.Graph]'s edge construction — that independence is what
    makes {!Validate}'s diff a translation validation rather than a
    tautology.

    Edge conventions match the DDG contract so the two sets are directly
    comparable: flow latency is the defining op's latency, anti 0,
    output 1, memory flow the store's latency, other memory edges 1.
    Loop-carried register anti/output dependences are not generated —
    modulo variable expansion renames per-iteration instances, the
    standing assumption of the scheduler (see [Ddg.Graph]). *)

type edge = {
  src : int;  (** op id *)
  dst : int;  (** op id *)
  kind : Ddg.Dep.kind;
  latency : int;
  distance : int;
}

type t = {
  edges : edge list;
      (** deduplicated, sorted by (src, dst, kind, distance) *)
  reachdef : Reachdef.t;
  stats : Solver.stats;  (** the reaching-definitions solve *)
}

val of_loop : ?latency:Mach.Latency.t -> Ir.Loop.t -> t
(** [latency] defaults to [Mach.Latency.paper], the table [Ddg.Graph]
    uses. *)

val kind_rank : Ddg.Dep.kind -> int
(** Total order on kinds used for the deterministic edge sort. *)

val edge_to_string : edge -> string
