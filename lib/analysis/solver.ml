type stats = { iterations : int; widenings : int; converged : bool }

module type PROBLEM = sig
  module D : Lattice.DOMAIN

  val transfer : int -> D.t -> D.t
  val edge : src:int -> dst:int -> D.t -> D.t
end

module Make (P : PROBLEM) = struct
  module D = P.D

  type result = { input : D.t array; output : D.t array; stats : stats }

  let solve ?(widen_after = 8) ?max_iterations ~nodes ~edges ~init () =
    let max_iterations =
      match max_iterations with Some m -> m | None -> max 256 (64 * nodes)
    in
    let preds = Array.make nodes [] in
    let succs = Array.make nodes [] in
    List.iter
      (fun (src, dst) ->
        if src < 0 || src >= nodes || dst < 0 || dst >= nodes then
          invalid_arg "Solver.solve: edge endpoint out of range";
        preds.(dst) <- src :: preds.(dst);
        succs.(src) <- dst :: succs.(src))
      edges;
    (* Deterministic propagation order: predecessors in ascending node
       order, successors likewise. *)
    Array.iteri (fun i l -> preds.(i) <- List.sort_uniq compare l) preds;
    Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
    let input = Array.init nodes (fun i -> init i) in
    let output = Array.init nodes (fun i -> P.transfer i input.(i)) in
    let updates = Array.make nodes 0 in
    let queued = Array.make nodes true in
    let queue = Queue.create () in
    for i = 0 to nodes - 1 do
      Queue.add i queue
    done;
    let iterations = ref 0 in
    let widenings = ref 0 in
    let converged = ref true in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      queued.(v) <- false;
      if !iterations >= max_iterations then begin
        converged := false;
        Queue.clear queue
      end
      else begin
        incr iterations;
        let contribution =
          List.fold_left
            (fun acc p -> D.join acc (P.edge ~src:p ~dst:v output.(p)))
            (init v) preds.(v)
        in
        let next =
          if updates.(v) >= widen_after && not (D.equal contribution input.(v)) then begin
            incr widenings;
            D.widen ~old:input.(v) ~next:contribution
          end
          else D.join input.(v) contribution
        in
        if not (D.equal next input.(v)) then begin
          updates.(v) <- updates.(v) + 1;
          input.(v) <- next;
          output.(v) <- P.transfer v next;
          List.iter
            (fun s ->
              if not queued.(s) then begin
                queued.(s) <- true;
                Queue.add s queue
              end)
            succs.(v)
        end
      end
    done;
    {
      input;
      output;
      stats = { iterations = !iterations; widenings = !widenings; converged = !converged };
    }
end

let ring n = List.init n (fun i -> (i, (i + 1) mod n))
let ring_rev n = List.init n (fun i -> ((i + 1) mod n, i))
