module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : old:t -> next:t -> t
  val pp : Format.formatter -> t -> unit
end

module VregSet = struct
  type t = Ir.Vreg.Set.t

  let bottom = Ir.Vreg.Set.empty
  let equal = Ir.Vreg.Set.equal
  let join = Ir.Vreg.Set.union
  let widen ~old ~next = join old next

  let pp fmt s =
    Format.fprintf fmt "{%s}"
      (String.concat ", " (List.map Ir.Vreg.to_string (Ir.Vreg.Set.elements s)))
end

module VregMap (V : DOMAIN) = struct
  type t = V.t Ir.Vreg.Map.t

  let bottom = Ir.Vreg.Map.empty
  let find r m = match Ir.Vreg.Map.find_opt r m with Some v -> v | None -> V.bottom

  let equal a b = Ir.Vreg.Map.equal V.equal a b

  let merge f a b =
    Ir.Vreg.Map.merge
      (fun _ va vb ->
        match (va, vb) with
        | None, None -> None
        | Some v, None | None, Some v -> Some v
        | Some va, Some vb -> Some (f va vb))
      a b

  let join a b = merge V.join a b
  let widen ~old ~next = merge (fun o n -> V.widen ~old:o ~next:n) old next

  let pp fmt m =
    Format.fprintf fmt "@[<v>";
    Ir.Vreg.Map.iter
      (fun r v -> Format.fprintf fmt "%s -> %a@," (Ir.Vreg.to_string r) V.pp v)
      m;
    Format.fprintf fmt "@]"
end

module Flat (X : sig
  type t

  val equal : t -> t -> bool
  val to_string : t -> string
end) =
struct
  type v = X.t
  type flat = Bot | Known of v | Top
  type t = flat

  let bottom = Bot
  let known v = Known v

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Known x, Known y -> X.equal x y
    | _ -> false

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Top, _ | _, Top -> Top
    | Known x, Known y -> if X.equal x y then a else Top

  (* Height 3: widening is join. *)
  let widen ~old ~next = join old next

  let pp fmt = function
    | Bot -> Format.pp_print_string fmt "_"
    | Top -> Format.pp_print_string fmt "T"
    | Known v -> Format.pp_print_string fmt (X.to_string v)
end
