type t = {
  name : string;
  ops : int;
  max_live : int;
  class_max_live : (Mach.Rclass.t * int) list;
  dead : int;
  constants : int;
  remat : int;
  analysis_edges : int;
  ddg_edges : int;
  matched : int;
  diff_errors : int;
  diff_warnings : int;
  iterations : int;
  widenings : int;
}

let class_index cls =
  let rec go i = function
    | [] -> -1
    | c :: rest -> if Mach.Rclass.equal c cls then i else go (i + 1) rest
  in
  go 0 Mach.Rclass.all

let report ?latency ~name loop =
  let live = Liveness.of_loop loop in
  let vr = Valrange.of_loop loop in
  let dep = Depan.of_loop ?latency loop in
  let ddg = Ddg.Graph.of_loop ?latency loop in
  let diff = Validate.run dep ddg in
  let classes = Mach.Rclass.all in
  let per_class =
    Liveness.per_bank_max_live live ~banks:(List.length classes)
      ~bank_of:(fun r -> class_index (Ir.Vreg.cls r))
  in
  let errors, warnings =
    List.fold_left
      (fun (e, w) f -> if Validate.is_error f then (e + 1, w) else (e, w + 1))
      (0, 0) diff.Validate.findings
  in
  ( {
      name;
      ops = List.length (Ir.Loop.ops loop);
      max_live = Liveness.max_live live;
      class_max_live = List.mapi (fun i c -> (c, per_class.(i))) classes;
      dead = List.length (Liveness.dead_ops loop);
      constants = List.length (Valrange.constant_ops loop vr);
      remat = List.length (Valrange.remat_candidates loop vr);
      analysis_edges = diff.Validate.analysis_edges;
      ddg_edges = diff.Validate.ddg_edges;
      matched = diff.Validate.matched;
      diff_errors = errors;
      diff_warnings = warnings;
      iterations =
        live.Liveness.stats.Solver.iterations
        + vr.Valrange.stats.Solver.iterations
        + dep.Depan.stats.Solver.iterations;
      widenings =
        live.Liveness.stats.Solver.widenings
        + vr.Valrange.stats.Solver.widenings
        + dep.Depan.stats.Solver.widenings;
    },
    diff )

let of_loop ?latency ~name loop = fst (report ?latency ~name loop)

let to_json t =
  let open Obs.Json in
  Obj
    ([
       ("loop", Str t.name);
       ("ops", Num (float_of_int t.ops));
       ("max_live", Num (float_of_int t.max_live));
     ]
    @ List.map
        (fun (c, v) ->
          ( "max_live_" ^ String.lowercase_ascii (Mach.Rclass.to_string c),
            Num (float_of_int v) ))
        t.class_max_live
    @ [
        ("dead", Num (float_of_int t.dead));
        ("constants", Num (float_of_int t.constants));
        ("remat", Num (float_of_int t.remat));
        ("analysis_edges", Num (float_of_int t.analysis_edges));
        ("ddg_edges", Num (float_of_int t.ddg_edges));
        ("matched", Num (float_of_int t.matched));
        ("diff_errors", Num (float_of_int t.diff_errors));
        ("diff_warnings", Num (float_of_int t.diff_warnings));
        ("iterations", Num (float_of_int t.iterations));
        ("widenings", Num (float_of_int t.widenings));
      ])

let header =
  Printf.sprintf "%-14s %4s %8s %8s %8s %5s %6s %6s %7s %6s %5s" "loop" "ops"
    "maxlive" "live/int" "live/flt" "dead" "remat" "edges" "matched" "diff"
    "iters"

let to_row t =
  let cls c =
    match List.find_opt (fun (k, _) -> Mach.Rclass.equal k c) t.class_max_live with
    | Some (_, v) -> v
    | None -> 0
  in
  let diff =
    if t.diff_errors > 0 then Printf.sprintf "E%d" t.diff_errors
    else if t.diff_warnings > 0 then Printf.sprintf "W%d" t.diff_warnings
    else "ok"
  in
  Printf.sprintf "%-14s %4d %8d %8d %8d %5d %6d %6d %7d %6s %5d" t.name t.ops
    t.max_live (cls Mach.Rclass.Int) (cls Mach.Rclass.Float) t.dead t.remat
    t.analysis_edges t.matched diff t.iterations
