(** Constant and value-range propagation over loop bodies.

    An interval lattice per register: unknown inputs (loads, loop
    invariants, carried values at loop entry) are top; [Const]
    materializations seed singletons; arithmetic over [Ir.Op] transfers
    intervals forward. The loop's back edge feeds results around, so a
    recurrence like an induction variable keeps growing — the solver's
    widening snaps unstable bounds to infinity, which is where the
    [analysis.widened] counter comes from.

    Consumers: an op whose destination is a provable singleton every
    iteration is {e rematerializable} — recomputing it at a use site
    costs one cheap op and no register pressure across its whole
    lifetime, the alternative to spilling that ROADMAP item 5 wants
    ranked. *)

type iv = { lo : int option; hi : int option }
(** Inclusive bounds; [None] is unbounded on that side. *)

type value = Bot | Iv of iv

type t = {
  before : value Ir.Vreg.Map.t array;  (** abstract register state before op [i] *)
  stats : Solver.stats;
}

val of_loop : Ir.Loop.t -> t

val value_before : t -> pos:int -> Ir.Vreg.t -> value
(** Absent registers are [Iv] top for reads (unknown input) — the
    transfer treats them so — but reported as [Bot] here if never
    bound. *)

val constant_ops : Ir.Loop.t -> t -> (Ir.Op.t * int) list
(** Ops whose destination provably holds the same single integer in
    every iteration, with that value; body order. *)

val remat_candidates : Ir.Loop.t -> t -> Ir.Op.t list
(** The rematerializable subset: {!constant_ops} ops that define a
    register (always true) via a non-memory opcode — [Const] ops and
    arithmetic over constants. Body order. *)
