type t = { addr : Ir.Addr.t; store : bool; indexed : bool }

let of_op op =
  match Ir.Op.addr op with
  | None -> None
  | Some addr ->
      let store = Mach.Opcode.equal (Ir.Op.opcode op) Mach.Opcode.Store in
      (* A load's only register source is an index; a store's second is. *)
      let index_arity = if store then 2 else 1 in
      Some { addr; store; indexed = List.length (Ir.Op.srcs op) >= index_arity }

type verdict = Independent | At of int | All

let dependence ~src ~dst =
  let a = src.addr and b = dst.addr in
  if not (Ir.Addr.same_base a b) then Independent
  else if a.Ir.Addr.stride = b.Ir.Addr.stride then
    let s = a.Ir.Addr.stride in
    if s = 0 then
      if a.Ir.Addr.offset = b.Ir.Addr.offset then All else Independent
    else
      (* s*(i+d) + o_dst = s*i + o_src  =>  d = (o_src - o_dst) / s *)
      let diff = a.Ir.Addr.offset - b.Ir.Addr.offset in
      if diff mod s <> 0 then Independent
      else
        let d = diff / s in
        if d >= 0 then At d else Independent
  else All (* differing strides: the lattice of offsets interleaves *)

let to_string t =
  Printf.sprintf "%s%s%s"
    (if t.store then "st " else "ld ")
    (Ir.Addr.to_string t.addr)
    (if t.indexed then " [indexed]" else "")
