(** Translation validation of the DDG against the independent analysis.

    Diffs the dependence set {!Depan} derives from dataflow facts
    against the edges [Ddg.Graph] actually built, keyed on
    [(src, dst, kind)] — unique per ordered op pair because ops define
    at most one register and memory pairs get one verdict. The polarity
    matters:

    - an analysis edge {e missing} from the DDG (or present with a
      {e larger} distance) means the scheduler may overlap iterations a
      real dependence forbids — unsoundness, an error;
    - a DDG edge the analysis cannot justify (or with a {e smaller}
      distance than needed) only over-constrains the schedule —
      precision loss, a warning;
    - a latency disagreement on a matched edge is a bookkeeping
      inconsistency, reported as a warning.

    A dependence with distance [d] admits more schedules than the same
    dependence at [d' < d] (legality is [t(s) - t(p) >= latency - II*d]),
    which is why larger-than-analysis distances are the unsound
    direction. *)

type mismatch =
  | Missing_in_ddg      (** error: required edge absent *)
  | Distance_exceeds    (** error: DDG distance larger (weaker) than analysis *)
  | Extra_in_ddg        (** warning: edge the analysis cannot justify *)
  | Distance_below      (** warning: DDG tighter than required *)
  | Latency_differs     (** warning: latencies disagree on a matched edge *)

type finding = {
  mismatch : mismatch;
  src : int;
  dst : int;
  kind : Ddg.Dep.kind;
  analysis_distance : int option;
  ddg_distance : int option;
  analysis_latency : int option;
  ddg_latency : int option;
}

type report = {
  findings : finding list;  (** sorted by (src, dst, kind, mismatch) *)
  analysis_edges : int;
  ddg_edges : int;   (** distinct (src, dst, kind) keys in the DDG *)
  matched : int;     (** keys present on both sides with equal distance *)
}

val run : Depan.t -> Ddg.Graph.t -> report

val is_error : finding -> bool
(** [Missing_in_ddg] and [Distance_exceeds]. *)

val has_errors : report -> bool
val describe : finding -> string
