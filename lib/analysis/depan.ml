type edge = {
  src : int;
  dst : int;
  kind : Ddg.Dep.kind;
  latency : int;
  distance : int;
}

let kind_rank : Ddg.Dep.kind -> int = function
  | Ddg.Dep.Flow -> 0
  | Ddg.Dep.Anti -> 1
  | Ddg.Dep.Output -> 2
  | Ddg.Dep.Mem Ddg.Dep.Mem_flow -> 3
  | Ddg.Dep.Mem Ddg.Dep.Mem_anti -> 4
  | Ddg.Dep.Mem Ddg.Dep.Mem_output -> 5

let compare_edge a b =
  let c = compare a.src b.src in
  if c <> 0 then c
  else
    let c = compare a.dst b.dst in
    if c <> 0 then c
    else
      let c = compare (kind_rank a.kind) (kind_rank b.kind) in
      if c <> 0 then c else compare a.distance b.distance

type t = { edges : edge list; reachdef : Reachdef.t; stats : Solver.stats }

let distinct_uses op =
  List.fold_left
    (fun s r -> Ir.Vreg.Set.add r s)
    Ir.Vreg.Set.empty (Ir.Op.uses op)

let of_loop ?(latency = Mach.Latency.paper) loop =
  let arr = Array.of_list (Ir.Loop.ops loop) in
  let n = Array.length arr in
  let rd = Reachdef.of_loop loop in
  let op_by_id = Hashtbl.create n in
  Array.iter (fun op -> Hashtbl.replace op_by_id (Ir.Op.id op) op) arr;
  let lat_of id = Ir.Op.latency latency (Hashtbl.find op_by_id id) in
  (* Textual positions at which each register is (re)defined. *)
  let def_positions = Ir.Vreg.Tbl.create 16 in
  Array.iteri
    (fun i op ->
      List.iter
        (fun d ->
          let prev = Option.value ~default:[] (Ir.Vreg.Tbl.find_opt def_positions d) in
          Ir.Vreg.Tbl.replace def_positions d (prev @ [ i ]))
        (Ir.Op.defs op))
    arr;
  let edges = ref [] in
  let emit src dst kind latency distance =
    edges := { src; dst; kind; latency; distance } :: !edges
  in
  for q = 0 to n - 1 do
    let oq = arr.(q) in
    let qid = Ir.Op.id oq in
    Ir.Vreg.Set.iter
      (fun r ->
        (* Flow: the definition a use reads, at its iteration distance,
           is by construction a flow dependence at that distance. *)
        List.iter
          (fun (def_id, d) -> emit def_id qid Ddg.Dep.Flow (lat_of def_id) d)
          (Reachdef.reaching rd ~pos:q r);
        (* Anti: a same-iteration read pins every later redefinition of
           the register behind it. A read at distance >= 1 consumes the
           previous iteration's instance, which expansion renames, so it
           constrains nothing. *)
        let reads_current =
          List.exists (fun (_, d) -> d = 0) (Reachdef.reaching rd ~pos:q r)
        in
        if reads_current then
          List.iter
            (fun k ->
              if k > q then emit qid (Ir.Op.id arr.(k)) Ddg.Dep.Anti 0 0)
            (Option.value ~default:[] (Ir.Vreg.Tbl.find_opt def_positions r)))
      (distinct_uses oq)
  done;
  (* Output: every textual pair of definitions of one register, in
     order, must retire in order within an iteration. *)
  Ir.Vreg.Tbl.iter
    (fun _ positions ->
      List.iteri
        (fun i p ->
          List.iteri
            (fun j k ->
              if j > i then
                emit (Ir.Op.id arr.(p)) (Ir.Op.id arr.(k)) Ddg.Dep.Output 1 0)
            positions)
        positions)
    def_positions;
  (* Memory ordering via the abstract address domain. *)
  let refs =
    Array.to_list (Array.mapi (fun i op -> (i, op, Aaddr.of_op op)) arr)
  in
  let mem_lat (kind : Ddg.Dep.kind_mem) src_pos =
    match kind with
    | Ddg.Dep.Mem_flow -> Ir.Op.latency latency arr.(src_pos)
    | Ddg.Dep.Mem_anti | Ddg.Dep.Mem_output -> 1
  in
  List.iter
    (fun (p, op_p, ap) ->
      match ap with
      | None -> ()
      | Some a ->
          List.iter
            (fun (q, op_q, aq) ->
              match aq with
              | None -> ()
              | Some b when a.Aaddr.store || b.Aaddr.store ->
                  let kind : Ddg.Dep.kind_mem =
                    match (a.Aaddr.store, b.Aaddr.store) with
                    | true, false -> Ddg.Dep.Mem_flow
                    | false, true -> Ddg.Dep.Mem_anti
                    | true, true -> Ddg.Dep.Mem_output
                    | false, false -> assert false
                  in
                  (* A dependence into an earlier (or the same) textual
                     position needs at least one back-edge crossing. *)
                  let min_dist = if p < q then 0 else 1 in
                  let emit_mem d =
                    if d >= min_dist then
                      emit (Ir.Op.id op_p) (Ir.Op.id op_q) (Ddg.Dep.Mem kind)
                        (mem_lat kind p) d
                  in
                  (match Aaddr.dependence ~src:a ~dst:b with
                  | Aaddr.Independent -> ()
                  | Aaddr.At d -> emit_mem d
                  | Aaddr.All -> emit_mem min_dist)
              | Some _ -> ())
            refs)
    refs;
  let sorted = List.sort_uniq compare_edge !edges in
  { edges = sorted; reachdef = rd; stats = rd.Reachdef.stats }

let edge_to_string e =
  Printf.sprintf "op%d -> op%d %s lat=%d dist=%d" e.src e.dst
    (Ddg.Dep.kind_to_string e.kind)
    e.latency e.distance
