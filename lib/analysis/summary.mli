(** One loop's analysis results, flattened for reporting.

    The per-loop record the [rbp analyze] command and the ROADMAP item 5
    exporters consume: register-pressure bounds from cyclic liveness
    (whole-loop and per register class, the axis partitioning splits
    banks on), rematerialization and dead-code counts from value-range
    propagation, the independent dependence set size, the DDG diff
    verdict, and solver effort counters. *)

type t = {
  name : string;
  ops : int;
  max_live : int;            (** peak simultaneous live registers *)
  class_max_live : (Mach.Rclass.t * int) list;
      (** per-class peaks, in [Mach.Rclass.all] order *)
  dead : int;                (** transitively dead ops (liveness DCE) *)
  constants : int;           (** ops with a provably constant result *)
  remat : int;               (** rematerializable subset of [constants] *)
  analysis_edges : int;      (** independent dependence set size *)
  ddg_edges : int;           (** distinct DDG (src, dst, kind) keys *)
  matched : int;             (** keys agreeing on both sides *)
  diff_errors : int;         (** unsoundness findings (must be 0) *)
  diff_warnings : int;       (** precision findings *)
  iterations : int;          (** worklist iterations across all solves *)
  widenings : int;
}

val of_loop : ?latency:Mach.Latency.t -> name:string -> Ir.Loop.t -> t
(** Runs liveness, value-range, dependence analysis and the DDG diff on
    the loop. Total: analysis failure cannot raise out of here. *)

val report : ?latency:Mach.Latency.t -> name:string -> Ir.Loop.t -> t * Validate.report
(** Like {!of_loop} but also returns the underlying diff report for
    callers that print findings. *)

val to_json : t -> Obs.Json.t
(** Stable field order; suitable for JSONL streams. *)

val header : string
(** Column header matching {!to_row}. *)

val to_row : t -> string
(** Fixed-width human-readable table row. *)
