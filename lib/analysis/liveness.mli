(** Cyclic liveness over single-block loop bodies.

    The loop body is a ring: the value read by a use with no preceding
    def in the body is the previous iteration's last def, so liveness
    must close over the back edge. The analysis is the {!Solver}
    instance over the {!Lattice.VregSet} domain on the reversed ring,
    with the declared [live_out] (plus nothing else — carried and
    invariant registers emerge from the fixpoint) injected at the
    bottom of the body.

    The fixpoint equals the seeded single-pass answer of
    [Regalloc.Liveness.backward] (a qcheck property pins this), but is
    derived from the lattice equations alone — an independent oracle.

    MaxLive here is the *sequential-body* pressure: the number of
    registers simultaneously live at the worst program point of one
    iteration. Any schedule of the body needs at least this many
    registers in total (overlapping iterations via software pipelining
    only adds pressure), so the per-bank split is a sound lower bound
    for what each bank's allocator will face — the prediction ROADMAP
    item 5 consumes. *)

type t = {
  before : Ir.Vreg.Set.t array;  (** live registers just before op [i] *)
  after : Ir.Vreg.Set.t array;  (** live registers just after op [i] *)
  stats : Solver.stats;
}

val of_loop : Ir.Loop.t -> t

val of_ops : Ir.Op.t list -> live_out:Ir.Vreg.Set.t -> t
(** The same fixpoint over a bare body with a declared bottom-of-body
    live-out set. *)

val max_live : t -> int
(** Maximum cardinality of any live set, over all program points. *)

val per_bank_max_live : t -> banks:int -> bank_of:(Ir.Vreg.t -> int) -> int array
(** MaxLive restricted to each bank under the given assignment;
    registers mapped outside [0 .. banks-1] are ignored. Each bank's
    maximum is taken independently (different banks may peak at
    different program points). *)

val dead_ops : Ir.Loop.t -> Ir.Op.t list
(** Transitively dead operations, in body order: ops whose destination
    is not live after them, iterated to a fixpoint so a chain feeding
    only dead ops is entirely flagged. Stores and [Nop]s are never
    dead (stores are observable; nops define nothing). *)
