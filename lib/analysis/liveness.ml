type t = {
  before : Ir.Vreg.Set.t array;
  after : Ir.Vreg.Set.t array;
  stats : Solver.stats;
}

let set_of l = List.fold_left (fun s r -> Ir.Vreg.Set.add r s) Ir.Vreg.Set.empty l

(* Backward liveness as a forward problem on the reversed ring: solver
   node i's input is the live set *after* op i, its output the live set
   *before* op i. *)
let of_ops ops ~live_out =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let module P = struct
    module D = Lattice.VregSet

    let transfer i after =
      let op = arr.(i) in
      Ir.Vreg.Set.union (set_of (Ir.Op.uses op))
        (Ir.Vreg.Set.diff after (set_of (Ir.Op.defs op)))

    let edge ~src:_ ~dst:_ d = d
  end in
  let module S = Solver.Make (P) in
  let r =
    S.solve ~nodes:n ~edges:(Solver.ring_rev n)
      ~init:(fun i -> if i = n - 1 then live_out else Ir.Vreg.Set.empty)
      ()
  in
  { before = r.S.output; after = r.S.input; stats = r.S.stats }

let of_loop loop = of_ops (Ir.Loop.ops loop) ~live_out:(Ir.Loop.live_out loop)

let max_live t =
  let m = ref 0 in
  Array.iter (fun s -> m := max !m (Ir.Vreg.Set.cardinal s)) t.before;
  Array.iter (fun s -> m := max !m (Ir.Vreg.Set.cardinal s)) t.after;
  !m

let per_bank_max_live t ~banks ~bank_of =
  let peaks = Array.make (max banks 0) 0 in
  let count s =
    let here = Array.make (max banks 0) 0 in
    Ir.Vreg.Set.iter
      (fun r ->
        let b = bank_of r in
        if b >= 0 && b < banks then here.(b) <- here.(b) + 1)
      s;
    Array.iteri (fun b c -> peaks.(b) <- max peaks.(b) c) here
  in
  Array.iter count t.before;
  Array.iter count t.after;
  peaks

let dead_ops loop =
  let live_out = Ir.Loop.live_out loop in
  let removable op =
    match Ir.Op.dst op with
    | None -> false (* stores are observable; nops define nothing *)
    | Some _ -> true
  in
  (* Iterate liveness-based removal: a def not live after its op is
     dead; removing it can make its operands' defs dead in turn. *)
  let rec go ops dead =
    let l = of_ops ops ~live_out in
    let arr = Array.of_list ops in
    let newly =
      List.filteri
        (fun i _ ->
          let op = arr.(i) in
          removable op
          &&
          match Ir.Op.dst op with
          | Some d -> not (Ir.Vreg.Set.mem d l.after.(i))
          | None -> false)
        ops
    in
    if newly = [] then dead
    else
      let gone = set_ids newly in
      let remaining = List.filter (fun op -> not (Hashtbl.mem gone (Ir.Op.id op))) ops in
      go remaining (dead @ newly)
  and set_ids ops =
    let tbl = Hashtbl.create 8 in
    List.iter (fun op -> Hashtbl.replace tbl (Ir.Op.id op) ()) ops;
    tbl
  in
  let dead = go (Ir.Loop.ops loop) [] in
  (* Report in body order regardless of removal round. *)
  let order = Hashtbl.create 32 in
  List.iteri (fun i op -> Hashtbl.replace order (Ir.Op.id op) i) (Ir.Loop.ops loop);
  List.sort
    (fun a b ->
      compare (Hashtbl.find order (Ir.Op.id a)) (Hashtbl.find order (Ir.Op.id b)))
    dead
