(** Reaching definitions with iteration-distance tracking.

    A fact maps each register to the set of definitions that may reach
    a program point, each tagged with the minimum number of back-edge
    crossings since the defining op ran: distance 0 is this iteration,
    1 the previous, and distances are capped at {!dist_cap} (the cap is
    the domain's top along that axis, giving finite height without a
    real widening). Definitions kill strongly — a loop body is a
    single strand, so a def of [r] replaces every reaching def of [r].

    This is the fact base of the independent dependence analysis
    ({!Depan}): a use of [r] at position [q] reading definition [p] at
    distance [d] is exactly a flow dependence [(p, q, d)]. *)

val dist_cap : int
(** Distances at or above the cap collapse to it (2 — the dependence
    consumers only distinguish 0, 1, "more"). *)

type t = {
  before : (int * int) list Ir.Vreg.Map.t array;
      (** at each position, register to reaching [(def op id, min distance)]
          pairs, sorted by op id *)
  stats : Solver.stats;
}

val of_loop : Ir.Loop.t -> t

val reaching : t -> pos:int -> Ir.Vreg.t -> (int * int) list
(** Definitions of the register reaching the entry of the op at
    [pos], as [(def op id, min distance)] sorted by op id; empty for
    loop invariants (never defined in the body). *)
