let dist_cap = 2

(* Per-register fact: reaching definitions as a map from defining op id
   to the minimum distance (back-edge crossings) at which it reaches. *)
module Defs = struct
  module IdMap = Map.Make (Int)

  type t = int IdMap.t

  let bottom = IdMap.empty
  let equal a b = IdMap.equal ( = ) a b

  let join a b =
    IdMap.union (fun _ da db -> Some (min da db)) a b

  let widen ~old ~next = join old next (* finite height: ids x capped dists *)

  let pp fmt m =
    IdMap.iter (fun id d -> Format.fprintf fmt "op%d@%d " id d) m

  let single id = IdMap.singleton id 0
  let age m = IdMap.map (fun d -> min (d + 1) dist_cap) m
  let to_list m = IdMap.bindings m
end

module D = Lattice.VregMap (Defs)

type t = {
  before : (int * int) list Ir.Vreg.Map.t array;
  stats : Solver.stats;
}

let of_loop loop =
  let arr = Array.of_list (Ir.Loop.ops loop) in
  let n = Array.length arr in
  let module P = struct
    module D = D

    let transfer i fact =
      let op = arr.(i) in
      List.fold_left
        (fun fact d -> Ir.Vreg.Map.add d (Defs.single (Ir.Op.id op)) fact)
        fact (Ir.Op.defs op)

    (* The back edge ages every reaching definition by one iteration. *)
    let edge ~src ~dst fact =
      if src = n - 1 && dst = 0 then Ir.Vreg.Map.map Defs.age fact else fact
  end in
  let module S = Solver.Make (P) in
  let r = S.solve ~nodes:n ~edges:(Solver.ring n) ~init:(fun _ -> D.bottom) () in
  {
    before = Array.map (Ir.Vreg.Map.map Defs.to_list) r.S.input;
    stats = r.S.stats;
  }

let reaching t ~pos r =
  match Ir.Vreg.Map.find_opt r t.before.(pos) with Some l -> l | None -> []
