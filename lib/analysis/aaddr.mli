(** Abstract memory addresses for the independent dependence analysis.

    A memory reference abstracts to its affine address [base[stride*i +
    offset]] plus a flag recording whether the op also consumed an index
    register — a gather/scatter-style access the affine summary cannot
    see. The dependence test solves [stride*d = offset_src - offset_dst]
    over iteration distances [d], independently of [Ddg.Memdep] (that is
    the point: {!Validate} diffs the two).

    Modeling assumptions shared with the rest of the pipeline and
    documented in DESIGN.md §12: distinct bases never alias (the
    Fortran no-alias rule the loop extractor guarantees), and an index
    register perturbs only the offset within its own base — the affine
    verdict still applies to the base-level aliasing question. *)

type t = private {
  addr : Ir.Addr.t;
  store : bool;    (** writes memory *)
  indexed : bool;  (** an index register feeds the address *)
}

val of_op : Ir.Op.t -> t option
(** [None] for non-memory ops. *)

type verdict =
  | Independent
  | At of int  (** dependence exactly at this distance (>= 0) *)
  | All        (** dependence at every distance; emit at the pair's floor *)

val dependence : src:t -> dst:t -> verdict
(** Can [src] executed in iteration [i] touch the location [dst] touches
    in iteration [i + d]? Returns the smallest such [d >= 0], [All] when
    every distance conflicts (scalar same-offset, or incommensurable
    strides), [Independent] when none can. *)

val to_string : t -> string
