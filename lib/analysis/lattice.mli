(** Parameterized lattices for the dataflow engine.

    Every analysis in this library is an instance of one abstract
    recipe: a join-semilattice of facts with a bottom element, a
    monotone transfer function per operation, and (for domains of
    unbounded height) a widening operator that forces convergence. The
    {!Solver} functor consumes a {!DOMAIN}; the constructions below
    build the concrete domains the four shipped analyses use — and any
    future analysis can reuse them. *)

module type DOMAIN = sig
  type t

  val bottom : t
  (** Least element: "no fact yet". The solver starts every program
      point here. *)

  val equal : t -> t -> bool

  val join : t -> t -> t
  (** Least upper bound; must be commutative, associative, idempotent,
      with [bottom] as identity. *)

  val widen : old:t -> next:t -> t
  (** Accelerated join applied once a program point has been updated
      more than the solver's widening threshold: must satisfy
      [join old next <= widen ~old ~next] and guarantee that every
      ascending chain of widenings stabilizes. Finite-height domains
      simply use [join]. *)

  val pp : Format.formatter -> t -> unit
end

(** Powerset of virtual registers ordered by inclusion — the liveness
    domain. Finite height (bounded by the loop's register count), so
    [widen] is [join]. *)
module VregSet : DOMAIN with type t = Ir.Vreg.Set.t

(** Pointwise lift of a value lattice to maps keyed by virtual
    register; an absent binding is the value lattice's bottom. The
    reaching-definitions and value-range domains are both instances. *)
module VregMap (V : DOMAIN) : sig
  include DOMAIN with type t = V.t Ir.Vreg.Map.t

  val find : Ir.Vreg.t -> t -> V.t
  (** The binding, or [V.bottom] when absent. *)
end

(** Flat (three-level) lattice over an arbitrary value: bottom, a
    single known value, or top. The classic constant-propagation
    shape. *)
module Flat (X : sig
  type t

  val equal : t -> t -> bool
  val to_string : t -> string
end) : sig
  type v = X.t

  type flat = Bot | Known of v | Top

  include DOMAIN with type t = flat

  val known : v -> t
end
