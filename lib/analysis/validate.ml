type mismatch =
  | Missing_in_ddg
  | Distance_exceeds
  | Extra_in_ddg
  | Distance_below
  | Latency_differs

type finding = {
  mismatch : mismatch;
  src : int;
  dst : int;
  kind : Ddg.Dep.kind;
  analysis_distance : int option;
  ddg_distance : int option;
  analysis_latency : int option;
  ddg_latency : int option;
}

type report = {
  findings : finding list;
  analysis_edges : int;
  ddg_edges : int;
  matched : int;
}

let mismatch_rank = function
  | Missing_in_ddg -> 0
  | Distance_exceeds -> 1
  | Extra_in_ddg -> 2
  | Distance_below -> 3
  | Latency_differs -> 4

module Key = struct
  type t = int * int * int (* src, dst, kind rank *)

  let compare = compare
end

module KMap = Map.Make (Key)

let key src dst kind = (src, dst, Depan.kind_rank kind)

let kind_of_rank = function
  | 0 -> Ddg.Dep.Flow
  | 1 -> Ddg.Dep.Anti
  | 2 -> Ddg.Dep.Output
  | 3 -> Ddg.Dep.Mem Ddg.Dep.Mem_flow
  | 4 -> Ddg.Dep.Mem Ddg.Dep.Mem_anti
  | _ -> Ddg.Dep.Mem Ddg.Dep.Mem_output

let run (dep : Depan.t) ddg =
  (* Keep the smallest distance per key on both sides: that is the
     binding constraint, and the DDG can legitimately carry duplicate
     identical edges (duplicated source operands). *)
  let tighten m k (dist, lat) =
    KMap.update k
      (function
        | None -> Some (dist, lat)
        | Some (d0, l0) -> if dist < d0 then Some (dist, lat) else Some (d0, l0))
      m
  in
  let analysis =
    List.fold_left
      (fun m (e : Depan.edge) ->
        tighten m (key e.Depan.src e.Depan.dst e.Depan.kind)
          (e.Depan.distance, e.Depan.latency))
      KMap.empty dep.Depan.edges
  in
  let produced = ref KMap.empty in
  Graphlib.Digraph.iter_edges
    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
      produced :=
        tighten !produced
          (key e.src e.dst (Ddg.Dep.kind e.label))
          (Ddg.Dep.distance e.label, Ddg.Dep.latency e.label))
    (Ddg.Graph.graph ddg);
  let produced = !produced in
  let findings = ref [] in
  let matched = ref 0 in
  let add mismatch (src, dst, rank) ?ad ?dd ?al ?dl () =
    findings :=
      {
        mismatch;
        src;
        dst;
        kind = kind_of_rank rank;
        analysis_distance = ad;
        ddg_distance = dd;
        analysis_latency = al;
        ddg_latency = dl;
      }
      :: !findings
  in
  KMap.iter
    (fun k (ad, al) ->
      match KMap.find_opt k produced with
      | None -> add Missing_in_ddg k ~ad ~al ()
      | Some (dd, dl) ->
          if dd > ad then add Distance_exceeds k ~ad ~dd ~al ~dl ()
          else if dd < ad then add Distance_below k ~ad ~dd ~al ~dl ()
          else begin
            incr matched;
            if dl <> al then add Latency_differs k ~ad ~dd ~al ~dl ()
          end)
    analysis;
  KMap.iter
    (fun k (dd, dl) ->
      if not (KMap.mem k analysis) then add Extra_in_ddg k ~dd ~dl ())
    produced;
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (a.src, a.dst, Depan.kind_rank a.kind) (b.src, b.dst, Depan.kind_rank b.kind) in
        if c <> 0 then c else compare (mismatch_rank a.mismatch) (mismatch_rank b.mismatch))
      !findings
  in
  {
    findings = sorted;
    analysis_edges = KMap.cardinal analysis;
    ddg_edges = KMap.cardinal produced;
    matched = !matched;
  }

let is_error f =
  match f.mismatch with
  | Missing_in_ddg | Distance_exceeds -> true
  | Extra_in_ddg | Distance_below | Latency_differs -> false

let has_errors r = List.exists is_error r.findings

let opt = function None -> "-" | Some v -> string_of_int v

let describe f =
  let k = Ddg.Dep.kind_to_string f.kind in
  match f.mismatch with
  | Missing_in_ddg ->
      Printf.sprintf
        "op%d -> op%d %s (dist %s) required by analysis but absent from ddg"
        f.src f.dst k (opt f.analysis_distance)
  | Distance_exceeds ->
      Printf.sprintf
        "op%d -> op%d %s: ddg distance %s exceeds analysis distance %s (under-constrained)"
        f.src f.dst k (opt f.ddg_distance) (opt f.analysis_distance)
  | Extra_in_ddg ->
      Printf.sprintf
        "op%d -> op%d %s (dist %s) in ddg but not justified by analysis"
        f.src f.dst k (opt f.ddg_distance)
  | Distance_below ->
      Printf.sprintf
        "op%d -> op%d %s: ddg distance %s below analysis distance %s (over-conservative)"
        f.src f.dst k (opt f.ddg_distance) (opt f.analysis_distance)
  | Latency_differs ->
      Printf.sprintf "op%d -> op%d %s: ddg latency %s, analysis latency %s"
        f.src f.dst k (opt f.ddg_latency) (opt f.analysis_latency)
