type iv = { lo : int option; hi : int option }
type value = Bot | Iv of iv

let top = Iv { lo = None; hi = None }
let singleton v = Iv { lo = Some v; hi = Some v }

(* Bounds beyond this are treated as unbounded: keeps interval
   arithmetic far from native-int overflow. *)
let limit = 1 lsl 42

let norm_bound = function
  | Some v when v > -limit && v < limit -> Some v
  | _ -> None

let norm { lo; hi } = { lo = norm_bound lo; hi = norm_bound hi }

module V = struct
  type t = value

  let bottom = Bot

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Iv a, Iv b -> a.lo = b.lo && a.hi = b.hi
    | _ -> false

  let bmin a b =
    match (a, b) with Some x, Some y -> Some (min x y) | _ -> None

  let bmax a b =
    match (a, b) with Some x, Some y -> Some (max x y) | _ -> None

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Iv a, Iv b -> Iv { lo = bmin a.lo b.lo; hi = bmax a.hi b.hi }

  (* Classic interval widening: a bound that moved since the last
     visit jumps straight to infinity. *)
  let widen ~old ~next =
    match (old, next) with
    | Bot, x | x, Bot -> x
    | Iv o, Iv n ->
        Iv
          {
            lo = (if n.lo = o.lo then o.lo else None);
            hi = (if n.hi = o.hi then o.hi else None);
          }

  let pp fmt = function
    | Bot -> Format.pp_print_string fmt "_"
    | Iv { lo; hi } ->
        let b = function None -> "inf" | Some v -> string_of_int v in
        Format.fprintf fmt "[%s,%s]" (b lo) (b hi)
end

module D = Lattice.VregMap (V)

type t = { before : value Ir.Vreg.Map.t array; stats : Solver.stats }

let read fact r =
  match Ir.Vreg.Map.find_opt r fact with
  | Some (Iv iv) -> Iv iv
  | Some Bot | None -> top (* unknown input *)

let lift2 f a b =
  match (a, b) with
  | Iv { lo = Some al; hi = Some ah }, Iv { lo = Some bl; hi = Some bh } ->
      f (al, ah) (bl, bh)
  | _ -> top

let add_iv a b =
  lift2 (fun (al, ah) (bl, bh) -> Iv (norm { lo = Some (al + bl); hi = Some (ah + bh) })) a b

let sub_iv a b =
  lift2 (fun (al, ah) (bl, bh) -> Iv (norm { lo = Some (al - bh); hi = Some (ah - bl) })) a b

let neg_iv = function
  | Iv { lo; hi } ->
      Iv (norm { lo = Option.map (fun v -> -v) hi; hi = Option.map (fun v -> -v) lo })
  | Bot -> top

let abs_iv = function
  | Iv { lo = Some l; hi = Some h } ->
      let al = abs l and ah = abs h in
      let lo = if l <= 0 && h >= 0 then 0 else min al ah in
      Iv (norm { lo = Some lo; hi = Some (max al ah) })
  | _ -> top

let min_iv a b = lift2 (fun (al, ah) (bl, bh) -> Iv (norm { lo = Some (min al bl); hi = Some (min ah bh) })) a b
let max_iv a b = lift2 (fun (al, ah) (bl, bh) -> Iv (norm { lo = Some (max al bl); hi = Some (max ah bh) })) a b

let mul_iv a b =
  (* Singletons only: enough to fold constant expressions without
     sign-case interval gymnastics. *)
  match (a, b) with
  | Iv { lo = Some al; hi = Some ah }, Iv { lo = Some bl; hi = Some bh }
    when al = ah && bl = bh ->
      Iv (norm { lo = Some (al * bl); hi = Some (al * bl) })
  | _ -> top

(* Folding is restricted to the integer class: float ops on coerced
   immediates would need real arithmetic to stay truthful. *)
let eval_op op fact =
  let int_cls = Ir.Op.cls op = Mach.Rclass.Int in
  let src i =
    match List.nth_opt (Ir.Op.srcs op) i with
    | Some r -> read fact r
    | None -> top (* shapes with fewer sources than arity stay unknown *)
  in
  match Ir.Op.opcode op with
  | Mach.Opcode.Const -> (
      match Ir.Op.imm op with Some v -> singleton v | None -> top)
  | Mach.Opcode.Copy -> src 0
  | _ when not int_cls -> top
  | Mach.Opcode.Add -> add_iv (src 0) (src 1)
  | Mach.Opcode.Sub -> sub_iv (src 0) (src 1)
  | Mach.Opcode.Neg -> neg_iv (src 0)
  | Mach.Opcode.Abs -> abs_iv (src 0)
  | Mach.Opcode.Min -> min_iv (src 0) (src 1)
  | Mach.Opcode.Max -> max_iv (src 0) (src 1)
  | Mach.Opcode.Mul -> mul_iv (src 0) (src 1)
  | _ -> top

let entry_unknowns ops =
  (* Registers whose first read precedes every def: loop invariants and
     values carried in from outside at iteration 0. *)
  let defined = Hashtbl.create 16 in
  let unknown = ref Ir.Vreg.Set.empty in
  List.iter
    (fun op ->
      List.iter
        (fun u ->
          if not (Hashtbl.mem defined (Ir.Vreg.id u)) then
            unknown := Ir.Vreg.Set.add u !unknown)
        (Ir.Op.uses op);
      List.iter (fun d -> Hashtbl.replace defined (Ir.Vreg.id d) ()) (Ir.Op.defs op))
    ops;
  !unknown

let of_loop loop =
  let ops = Ir.Loop.ops loop in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let entry =
    Ir.Vreg.Set.fold
      (fun r m -> Ir.Vreg.Map.add r top m)
      (entry_unknowns ops) Ir.Vreg.Map.empty
  in
  let module P = struct
    module D = D

    let transfer i fact =
      let op = arr.(i) in
      match Ir.Op.dst op with
      | None -> fact
      | Some d -> Ir.Vreg.Map.add d (eval_op op fact) fact

    let edge ~src:_ ~dst:_ fact = fact
  end in
  let module S = Solver.Make (P) in
  let r =
    S.solve ~widen_after:3 ~nodes:n ~edges:(Solver.ring n)
      ~init:(fun i -> if i = 0 then entry else D.bottom)
      ()
  in
  { before = r.S.input; stats = r.S.stats }

let value_before t ~pos r =
  match Ir.Vreg.Map.find_opt r t.before.(pos) with Some v -> v | None -> Bot

let constant_ops loop t =
  let ops = Ir.Loop.ops loop in
  List.filteri (fun _ _ -> true) ops
  |> List.mapi (fun i op -> (i, op))
  |> List.filter_map (fun (i, op) ->
         match Ir.Op.dst op with
         | None -> None
         | Some _ -> (
             match eval_op op t.before.(i) with
             | Iv { lo = Some l; hi = Some h } when l = h -> Some (op, l)
             | _ -> None))

let remat_candidates loop t =
  List.filter_map
    (fun (op, _) -> if Ir.Op.is_memory op then None else Some op)
    (constant_ops loop t)
