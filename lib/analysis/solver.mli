(** Generic worklist fixpoint solver.

    A dataflow problem is a {!Lattice.DOMAIN} plus a node transfer
    function and an optional edge transfer (the identity for ordinary
    edges; the loop back edge uses it to age facts across iterations,
    e.g. bumping reaching-definition distances). Nodes are integers
    [0 .. nodes-1]; for the single-block loops of this code base they
    are body positions and the graph is a ring, but the solver accepts
    any finite edge list, so future multi-block analyses reuse it
    unchanged.

    The solver runs the classic chaotic iteration: seed every node,
    recompute a node's input as the join of its predecessors' outputs
    (plus its boundary fact), re-queue successors on change. After
    [widen_after] updates of one node the join is replaced by the
    domain's widening, which bounds the chain height; a hard iteration
    budget turns a (buggy, non-monotone) diverging instance into a
    reported non-convergence instead of a hang — analyses surface that
    as an AN000 diagnostic rather than trusting a partial fixpoint. *)

type stats = {
  iterations : int;  (** node recomputations until the fixpoint *)
  widenings : int;  (** joins replaced by widening *)
  converged : bool;  (** false only when the iteration budget ran out *)
}

module type PROBLEM = sig
  module D : Lattice.DOMAIN

  val transfer : int -> D.t -> D.t
  (** Flow the fact through node [i] (input to output). *)

  val edge : src:int -> dst:int -> D.t -> D.t
  (** Transform the fact flowing along an edge; identity for all edges
      unless the problem ages facts (back edges). *)
end

module Make (P : PROBLEM) : sig
  type result = {
    input : P.D.t array;  (** fixpoint fact at each node's entry *)
    output : P.D.t array;  (** [transfer i input.(i)] *)
    stats : stats;
  }

  val solve :
    ?widen_after:int ->
    ?max_iterations:int ->
    nodes:int ->
    edges:(int * int) list ->
    init:(int -> P.D.t) ->
    unit ->
    result
  (** [init i] is the boundary fact joined into node [i]'s input (the
      contribution of edges from outside the analyzed region);
      [P.D.bottom] for interior nodes. [widen_after] defaults to 8
      updates per node; [max_iterations] to [max 256 (64 * nodes)]. *)
end

val ring : int -> (int * int) list
(** Forward ring [i -> i+1] with back edge [n-1 -> 0]: the CFG of a
    single-block loop body. *)

val ring_rev : int -> (int * int) list
(** The reversed ring — backward analyses run forward over it. *)
