(** RCG construction from an ideal schedule (Section 5).

    Walking the ideal schedule instruction by instruction:

    - every (defined, used) register pair within one operation adds a
      positive edge — keeping them in one bank avoids a copy;
    - every pair of registers defined by two different operations of the
      same instruction adds a negative edge — the ideal schedule proved
      they can issue simultaneously, which clustered hardware can only do
      when they sit in different banks.

    Each contribution is the operation's {!Weights.contribution} factor
    (nesting depth, DDD density, flexibility); the absolute value also
    accumulates onto the endpoint node weights, ordering greedy
    placement. *)

type source = {
  instructions : Ir.Op.t list list;
      (** rows of the ideal schedule (kernel rows for pipelined loops) *)
  flexibility : int -> int;  (** op id -> Flexibility(O) >= 1 *)
  depth : int -> int;        (** op id -> loop-nesting depth *)
  density : int -> float;    (** op id -> DDD density of its block *)
}

val build : ?obs:Obs.Trace.t -> ?weights:Weights.t -> source -> Graph.t
(** With [?obs] every operation factor becomes an
    {!Obs.Events.Rcg_factor} event and every edge contribution an
    {!Obs.Events.Rcg_edge} — the evidence [rbp explain] renders. With
    [obs] absent the build is byte-identical to the untraced one. *)

val source_of_kernel :
  ddg:Ddg.Graph.t -> depth:int -> Sched.Kernel.t -> source
(** Ideal-kernel source for a software-pipelined loop: flexibility from
    {!Sched.Slack} over the loop's DDG, constant depth, density = ops/II. *)

val source_of_schedule :
  ddg:Ddg.Graph.t -> depth:int -> Sched.Schedule.t -> source
(** Flat-schedule source for straight-line code: density =
    ops / issue-length. *)

val of_loop_res :
  ?obs:Obs.Trace.t ->
  ?weights:Weights.t ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  (Graph.t, string) Stdlib.result
(** Ideal-pipeline the loop on the monolithic machine of the same width
    and build the RCG from the resulting kernel. An unschedulable loop
    is input-dependent, so it is an [Error], not an exception. *)

val of_loop :
  ?obs:Obs.Trace.t ->
  ?weights:Weights.t ->
  machine:Mach.Machine.t ->
  Ir.Loop.t ->
  Graph.t
(** Raising convenience wrapper over {!of_loop_res} for callers that
    already know the loop pipelines (tests, demos). Raises
    [Invalid_argument] otherwise. *)

val of_func :
  ?weights:Weights.t -> machine:Mach.Machine.t -> Ir.Func.t -> Graph.t
(** Whole-function RCG: each block is ideal-list-scheduled and all blocks
    contribute to one graph — the global view the paper advertises. *)
