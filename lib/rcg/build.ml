type source = {
  instructions : Ir.Op.t list list;
  flexibility : int -> int;
  depth : int -> int;
  density : int -> float;
}

let op_factor w src (op : Ir.Op.t) =
  let id = Ir.Op.id op in
  Weights.contribution w ~flexibility:(src.flexibility id) ~depth:(src.depth id)
    ~density:(src.density id)

let build ?obs ?(weights = Weights.default) src =
  let g = Graph.create () in
  let w = weights in
  let traced = obs <> None in
  let emit_edge a b term wgt =
    if traced then
      Obs.Trace.emit obs
        (Obs.Events.Rcg_edge
           { a = Ir.Vreg.to_string a; b = Ir.Vreg.to_string b; term; w = wgt })
  in
  List.iter
    (fun row ->
      (* Attraction: defs and uses of one operation. *)
      List.iter
        (fun op ->
          List.iter (Graph.add_register g) (Ir.Op.defs op);
          List.iter (Graph.add_register g) (Ir.Op.uses op);
          let factor = op_factor w src op in
          if traced then begin
            let id = Ir.Op.id op in
            Obs.Trace.emit obs
              (Obs.Events.Rcg_factor
                 {
                   op = id;
                   flexibility = src.flexibility id;
                   depth = src.depth id;
                   density = src.density id;
                   factor;
                 })
          end;
          let f = w.Weights.attract_scale *. factor in
          if f <> 0.0 then
            List.iter
              (fun d ->
                List.iter
                  (fun u ->
                    if not (Ir.Vreg.equal d u) then begin
                      Graph.add_edge_weight g d u f;
                      Graph.add_node_weight g d f;
                      Graph.add_node_weight g u f;
                      emit_edge d u Obs.Events.Attract f
                    end)
                  (Ir.Op.uses op))
              (Ir.Op.defs op))
        row;
      (* Repulsion: defs of distinct operations sharing the instruction. *)
      if w.Weights.repel_scale <> 0.0 then begin
        let rec pairs = function
          | [] -> ()
          | o1 :: rest ->
              List.iter
                (fun o2 ->
                  let f =
                    w.Weights.repel_scale *. (op_factor w src o1 +. op_factor w src o2) /. 2.0
                  in
                  List.iter
                    (fun d1 ->
                      List.iter
                        (fun d2 ->
                          if not (Ir.Vreg.equal d1 d2) then begin
                            Graph.add_edge_weight g d1 d2 (-.f);
                            Graph.add_node_weight g d1 f;
                            Graph.add_node_weight g d2 f;
                            emit_edge d1 d2 Obs.Events.Repel (-.f)
                          end)
                        (Ir.Op.defs o2))
                    (Ir.Op.defs o1))
                rest;
              pairs rest
        in
        pairs row
      end)
    src.instructions;
  g

let source_of_kernel ~ddg ~depth (kernel : Sched.Kernel.t) =
  let slack = Sched.Slack.analyze ddg in
  let dens =
    float_of_int (Sched.Kernel.op_count kernel) /. float_of_int (Sched.Kernel.ii kernel)
  in
  {
    instructions = List.map snd (Sched.Kernel.kernel_rows kernel);
    flexibility = (fun id -> Sched.Slack.flexibility slack id);
    depth = (fun _ -> depth);
    density = (fun _ -> dens);
  }

let source_of_schedule ~ddg ~depth (sched : Sched.Schedule.t) =
  let slack = Sched.Slack.analyze ddg in
  let il = max 1 (Sched.Schedule.issue_length sched) in
  let dens = float_of_int (Sched.Schedule.op_count sched) /. float_of_int il in
  {
    instructions = List.map snd (Sched.Schedule.instructions sched);
    flexibility = (fun id -> Sched.Slack.flexibility slack id);
    depth = (fun _ -> depth);
    density = (fun _ -> dens);
  }

let of_loop_res ?obs ?weights ~machine loop =
  let ddg = Ddg.Graph.of_loop ~latency:machine.Mach.Machine.latency loop in
  match Sched.Modulo.ideal ~machine ddg with
  | None ->
      Error
        (Printf.sprintf "loop %s: no feasible II for the ideal pipeline, cannot build RCG"
           (Ir.Loop.name loop))
  | Some outcome ->
      Ok
        (build ?obs ?weights
           (source_of_kernel ~ddg ~depth:(Ir.Loop.depth loop) outcome.Sched.Modulo.kernel))

let of_loop ?obs ?weights ~machine loop =
  (* Raising wrapper for contexts that already proved the loop pipelines
     (tests, demos); anything driven by user input goes through
     [of_loop_res] — an unschedulable loop is data, not a bug. *)
  match of_loop_res ?obs ?weights ~machine loop with
  | Ok g -> g
  | Error msg -> invalid_arg ("Rcg.Build.of_loop: " ^ msg)

let of_func ?weights ~machine func =
  (* One source per block; merge by building into a fresh graph from the
     concatenation — flexibility and density are per-block. *)
  let g = Graph.create () in
  let weights = Option.value ~default:Weights.default weights in
  List.iter
    (fun block ->
      if Ir.Block.ops block <> [] then begin
        let ddg = Ddg.Graph.of_block ~latency:machine.Mach.Machine.latency block in
        let sched = Sched.List_sched.ideal ~machine ddg in
        let src = source_of_schedule ~ddg ~depth:(Ir.Block.depth block) sched in
        let sub = build ~weights src in
        List.iter
          (fun r ->
            Graph.add_register g r;
            Graph.add_node_weight g r (Graph.node_weight sub r))
          (Graph.registers sub);
        List.iter
          (fun r ->
            List.iter
              (fun (m, wgt) ->
                if Ir.Vreg.compare r m < 0 then Graph.add_edge_weight g r m wgt)
              (Graph.neighbors sub r))
          (Graph.registers sub)
      end)
    (Ir.Func.blocks func);
  g
