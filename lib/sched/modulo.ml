type outcome = {
  kernel : Kernel.t;
  ii : int;
  mii : int;
  placements_tried : int;
  evictions : int;
  iis_tried : int;
  budget_exhausted : int;
}

(* Height-based priority for a given II: H(v) = max over out-edges of
   H(dst) + latency - II*distance (at least 0). Converges iff the
   II-adjusted graph has no positive cycle, i.e. II >= RecMII. *)
let heights ddg ~ii =
  let g = Ddg.Graph.graph ddg in
  let n = Graphlib.Digraph.node_count g in
  let h = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace h id 0) (Graphlib.Digraph.nodes g);
  let relax () =
    let changed = ref false in
    Graphlib.Digraph.iter_edges
      (fun e ->
        let w = Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label) in
        let cand = Hashtbl.find h e.dst + w in
        if cand > Hashtbl.find h e.src then begin
          Hashtbl.replace h e.src cand;
          changed := true
        end)
      g;
    !changed
  in
  let rec run i = if i > n + 1 then None else if relax () then run (i + 1) else Some h in
  run 0

let self_edges_feasible ddg ~ii =
  List.for_all
    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
      e.src <> e.dst || Ddg.Dep.latency e.label <= ii * Ddg.Dep.distance e.label)
    (Graphlib.Digraph.edges (Ddg.Graph.graph ddg))

type effort = {
  tried : int ref; (* placement steps, i.e. budget spent *)
  evicted : int ref;
  exhausted : int ref; (* IIs abandoned because the budget ran out *)
}

(* One attempt at the given II. Returns the op->cycle map on success,
   or the cause the II was abandoned — the vocabulary of
   [Obs.Events.Ii_escalate]: "rec_mii" (heights diverge), "self_edge",
   "resource" (a request no cycle of the MRT can hold), "budget". *)
let try_ii ~obs ~cluster_of ~budget ~machine ~ii ddg effort =
  match heights ddg ~ii with
  | None -> Error "rec_mii"
  | Some h ->
      if not (self_edges_feasible ddg ~ii) then Error "self_edge"
      else begin
        let g = Ddg.Graph.graph ddg in
        let ids = Graphlib.Digraph.nodes g in
        let time : (int, int) Hashtbl.t = Hashtbl.create 64 in
        let last_time = Hashtbl.create 64 in
        let mrt = Restab.create_modulo machine ~ii in
        let request id =
          Restab.request_for machine ~cluster:(cluster_of id) (Ddg.Graph.op ddg id)
        in
        let unscheduled = Hashtbl.create 64 in
        List.iter (fun id -> Hashtbl.replace unscheduled id ()) ids;
        let pick () =
          Hashtbl.fold
            (fun id () best ->
              match best with
              | None -> Some id
              | Some b ->
                  let hb = Hashtbl.find h b and hid = Hashtbl.find h id in
                  if hid > hb || (hid = hb && id < b) then Some id else best)
            unscheduled None
        in
        let unschedule ~by ~cycle ~reason id =
          incr effort.evicted;
          Obs.Trace.incr obs Obs.Counter.Sched_evictions 1;
          if obs <> None then
            Obs.Trace.emit obs (Obs.Events.Sched_evict { op = id; by; cycle; reason });
          Restab.release_op mrt ~op:id;
          Hashtbl.remove time id;
          Hashtbl.replace unscheduled id ()
        in
        let budget = ref budget in
        let failure = ref None in
        let running = ref true in
        while !running do
          match pick () with
          | None -> running := false
          | Some id ->
              if !budget <= 0 then begin
                incr effort.exhausted;
                Obs.Trace.incr obs Obs.Counter.Sched_budget_exhausted 1;
                failure := Some "budget";
                running := false
              end
              else begin
                decr budget;
                incr effort.tried;
                Obs.Trace.incr obs Obs.Counter.Sched_placements 1;
                let estart =
                  List.fold_left
                    (fun acc (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
                      match Hashtbl.find_opt time e.src with
                      | None -> acc
                      | Some tp ->
                          max acc
                            (tp + Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label)))
                    0
                    (Graphlib.Digraph.preds g id)
                in
                let start =
                  match Hashtbl.find_opt last_time id with
                  | None -> estart
                  | Some prev -> max estart (prev + 1)
                in
                let req = request id in
                if not (Restab.satisfiable mrt req) then begin
                  failure := Some "resource";
                  running := false
                end
                else begin
                  let rec first_fit k =
                    if k >= ii then None
                    else if Restab.fits mrt ~cycle:(start + k) req then Some (start + k)
                    else first_fit (k + 1)
                  in
                  let t = match first_fit 0 with Some t -> t | None -> start in
                  if not (Restab.fits mrt ~cycle:t req) then
                    List.iter
                      (unschedule ~by:id ~cycle:t ~reason:"conflict")
                      (Restab.conflicting_ops mrt ~cycle:t req);
                  Restab.reserve mrt ~cycle:t ~op:id req;
                  Hashtbl.replace time id t;
                  Hashtbl.replace last_time id t;
                  Hashtbl.remove unscheduled id;
                  (* Evict scheduled successors whose dependence from us is
                     now violated (predecessor constraints hold because
                     t >= estart). *)
                  List.iter
                    (fun (e : Ddg.Dep.t Graphlib.Digraph.edge) ->
                      if e.dst <> id then
                        match Hashtbl.find_opt time e.dst with
                        | None -> ()
                        | Some ts ->
                            let need =
                              t + Ddg.Dep.latency e.label - (ii * Ddg.Dep.distance e.label)
                            in
                            if ts < need then
                              unschedule ~by:id ~cycle:ts ~reason:"dependence" e.dst)
                    (Graphlib.Digraph.succs g id)
                end
              end
        done;
        match !failure with
        | Some cause -> Error cause
        | None ->
            if Hashtbl.length unscheduled = 0 then Ok time
            else Error "budget" (* unreachable: pick () returned None *)
      end

let schedule ?obs ?cluster_of ?(budget_ratio = 10) ?max_ii ~machine ~mii ddg =
  let m : Mach.Machine.t = machine in
  let cluster_of =
    match cluster_of with
    | Some f -> f
    | None ->
        if m.clusters > 1 then
          (* True internal invariant, kept as an exception: which machine a
             caller schedules on is decided in code, not by input data —
             Partition.Driver always supplies [cluster_of] on clustered
             machines (after validating the assignment it derives it from). *)
          invalid_arg "Modulo.schedule: multi-cluster machine needs cluster_of";
        fun _ -> 0
  in
  (* True internal invariant: MII comes from Ddg.Minii, whose bounds are
     >= 1 by construction; a smaller value can only be a caller bug. *)
  if mii < 1 then invalid_arg "Modulo.schedule: mii must be >= 1";
  let max_ii = match max_ii with Some x -> x | None -> max mii (Ddg.Minii.upper_bound ddg) in
  let n = Ddg.Graph.size ddg in
  let effort = { tried = ref 0; evicted = ref 0; exhausted = ref 0 } in
  Obs.Trace.span obs "modulo.schedule"
    ~attrs:[ ("mii", string_of_int mii); ("ops", string_of_int n) ]
  @@ fun () ->
  let iis_tried = ref 0 in
  let rec attempt ii =
    if ii > max_ii then None
    else begin
      incr iis_tried;
      let result =
        Obs.Trace.span obs "modulo.try_ii" ~attrs:[ ("ii", string_of_int ii) ] (fun () ->
            try_ii ~obs ~cluster_of ~budget:(budget_ratio * n) ~machine:m ~ii ddg effort)
      in
      match result with
      | Ok time ->
          Obs.Trace.add_attr obs "ii" (string_of_int ii);
          let placements =
            Hashtbl.fold
              (fun id t acc ->
                { Schedule.op = Ddg.Graph.op ddg id; cycle = t; cluster = cluster_of id }
                :: acc)
              time []
          in
          Some
            {
              kernel = Kernel.make ~ii placements;
              ii;
              mii;
              placements_tried = !(effort.tried);
              evictions = !(effort.evicted);
              iis_tried = !iis_tried;
              budget_exhausted = !(effort.exhausted);
            }
      | Error cause ->
          Obs.Trace.incr obs Obs.Counter.Sched_ii_escalations 1;
          if obs <> None then
            Obs.Trace.emit obs (Obs.Events.Ii_escalate { ii; cause });
          attempt (ii + 1)
    end
  in
  attempt mii

let schedule_at ?obs ?cluster_of ?budget_ratio ~machine ~ii ddg =
  schedule ?obs ?cluster_of ?budget_ratio ~machine ~mii:ii ~max_ii:ii ddg

let clustered_mii ~machine ~ops_per_cluster ~copies_per_cluster ddg =
  max
    (Ddg.Minii.res_mii_clustered ~machine ~ops_per_cluster ~copies_per_cluster)
    (Ddg.Minii.rec_mii ddg)

let ideal ?obs ?budget_ratio ~machine ddg =
  let m : Mach.Machine.t = machine in
  let mono = Mach.Machine.monolithic_of m in
  let mii = Ddg.Minii.min_ii ~width:(Mach.Machine.width m) ddg in
  schedule ?obs ?budget_ratio ~machine:mono ~mii ddg
