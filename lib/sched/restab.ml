type request =
  | Fu of int
  | Fu_typed of int * Mach.Machine.fu_class list
  | Copy_to of int

type klass = KFu of int * Mach.Machine.fu_class | KPort of int | KBus

type t = {
  machine : Mach.Machine.t;
  ii : int option;
  (* (class, normalized cycle) -> holding ops, most recent first *)
  held : (klass * int, int list) Hashtbl.t;
  (* op -> slots it holds *)
  by_op : (int, (klass * int) list) Hashtbl.t;
}

let create_flat machine = { machine; ii = None; held = Hashtbl.create 64; by_op = Hashtbl.create 64 }

let create_modulo machine ~ii =
  (* True internal invariant: the schedulers only create tables for candidate
     IIs in [mii, max_ii] with mii >= 1 (enforced in Modulo.schedule). *)
  if ii < 1 then invalid_arg "Restab.create_modulo: ii must be >= 1";
  { machine; ii = Some ii; held = Hashtbl.create 64; by_op = Hashtbl.create 64 }

let ii t = t.ii

let norm t cycle =
  if cycle < 0 then invalid_arg "Restab: negative cycle";
  match t.ii with None -> cycle | Some ii -> cycle mod ii

let fu_capacity t fu_class =
  match List.assoc_opt fu_class t.machine.Mach.Machine.fu_mix with
  | Some n -> n
  | None -> 0

let capacity t = function
  | KFu (_, fc) -> fu_capacity t fc
  | KPort _ -> t.machine.Mach.Machine.copy_ports
  | KBus -> t.machine.Mach.Machine.busses

let holders t klass cycle =
  Option.value ~default:[] (Hashtbl.find_opt t.held (klass, cycle))

let has_room t klass cycle = List.length (holders t klass cycle) < capacity t klass

(* Acceptable unit classes in reservation preference order: specialized
   units first, General as the fallback, so General slots stay free for
   operations that have no specialized home. *)
let fu_alternatives cluster = function
  | Fu _ -> [ KFu (cluster, Mach.Machine.General) ]
  | Fu_typed (_, alts) ->
      List.map (fun a -> KFu (cluster, a)) alts @ [ KFu (cluster, Mach.Machine.General) ]
  | Copy_to _ -> invalid_arg "Restab.fu_alternatives: not an FU request"

let fits t ~cycle req =
  let cycle = norm t cycle in
  match req with
  | Fu c | Fu_typed (c, _) -> List.exists (fun k -> has_room t k cycle) (fu_alternatives c req)
  | Copy_to c -> has_room t (KPort c) cycle && has_room t KBus cycle

let claim t klass cycle op =
  Hashtbl.replace t.held (klass, cycle) (op :: holders t klass cycle);
  let slots = Option.value ~default:[] (Hashtbl.find_opt t.by_op op) in
  Hashtbl.replace t.by_op op ((klass, cycle) :: slots)

let reserve t ~cycle ~op req =
  if not (fits t ~cycle req) then invalid_arg "Restab.reserve: does not fit";
  let cycle = norm t cycle in
  match req with
  | Fu c | Fu_typed (c, _) ->
      let klass =
        List.find (fun k -> has_room t k cycle) (fu_alternatives c req)
      in
      claim t klass cycle op
  | Copy_to c ->
      claim t (KPort c) cycle op;
      claim t KBus cycle op

let release_op t ~op =
  match Hashtbl.find_opt t.by_op op with
  | None -> ()
  | Some slots ->
      List.iter
        (fun (klass, cycle) ->
          let rest = List.filter (fun o -> o <> op) (holders t klass cycle) in
          Hashtbl.replace t.held (klass, cycle) rest)
        slots;
      Hashtbl.remove t.by_op op

(* Victims whose release makes the request fit: for FU requests, the most
   recently placed holder among the acceptable classes; for copies, one
   victim per saturated resource. *)
let conflicting_ops t ~cycle req =
  if fits t ~cycle req then []
  else
    let cycle = norm t cycle in
    match req with
    | Fu c | Fu_typed (c, _) ->
        let rec first_victim = function
          | [] -> []
          | klass :: rest -> (
              match holders t klass cycle with
              | victim :: _ when capacity t klass > 0 -> [ victim ]
              | _ -> first_victim rest)
        in
        first_victim (fu_alternatives c req)
    | Copy_to c ->
        List.filter_map
          (fun klass ->
            if has_room t klass cycle then None
            else match holders t klass cycle with v :: _ -> Some v | [] -> None)
          [ KPort c; KBus ]
        |> List.sort_uniq Int.compare

let satisfiable t req =
  match req with
  | Fu c | Fu_typed (c, _) ->
      List.exists (fun k -> capacity t k > 0) (fu_alternatives c req)
  | Copy_to _ ->
      t.machine.Mach.Machine.copy_ports > 0 && t.machine.Mach.Machine.busses > 0

let request_for machine ~cluster (op : Ir.Op.t) =
  (* Kept as an exception because every pipeline entry point validates bank
     assignments (Assign.all_in_range) before deriving cluster maps, so an
     out-of-range cluster here means a scheduler bug, not bad input. *)
  if not (Mach.Machine.valid_cluster machine cluster) then
    invalid_arg "Restab.request_for: bad cluster";
  match (machine.Mach.Machine.copy_model, Ir.Op.is_copy op) with
  | Mach.Machine.Copy_unit, true -> Copy_to cluster
  | (Mach.Machine.Embedded | Mach.Machine.Copy_unit), _ ->
      if Mach.Machine.is_general_only machine then Fu cluster
      else Fu_typed (cluster, Mach.Machine.allowed_classes (Ir.Op.opcode op) (Ir.Op.cls op))
